GO ?= go

.PHONY: all build test race vet bench-smoke check bench-json

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench-smoke runs the interval-vs-node benchmarks once each: a fast
# sanity check that the path-search hot path still finds the long
# connection and that the benchmark harness compiles and runs.
bench-smoke:
	$(GO) test -run '^$$' -bench 'IntervalVsNode' -benchtime 1x .

# check is the pre-merge gate: vet, build, the full test suite under the
# race detector, and the benchmark smoke test.
check: vet build race bench-smoke

# bench-json regenerates the committed benchmark artifact (small suite
# plus the path-search micro-benchmarks).
bench-json:
	$(GO) run ./cmd/routebench -suite small -bench-json BENCH_pathsearch.json
