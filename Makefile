GO ?= go

.PHONY: all build test race test-race vet bench-smoke trace-smoke fuzz-smoke fuzz-eco-smoke fuzz-scale-smoke alloc-guard service-smoke steiner-smoke scale-smoke check bench-json bench-pathsearch bench-scaling bench-eco bench-service bench-steiner bench-scale

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# test-race is the targeted race lane: the lock-free fast-grid and
# striped interval-map stress tests, the work-stealing scheduler's
# forced-steal bit-identity sweep (Workers 1,2,4,8 with injected
# steals), plus the ECO differential equivalence suite (whose
# incremental runs exercise replay, restricted global routing, and
# parallel detail together), all under the race detector.
test-race:
	$(GO) test -race -run 'TestConcurrentReadsDuringCommits' ./internal/fastgrid
	$(GO) test -race -run 'TestStripedConcurrentDisjoint|TestStripedMatchesMap' ./internal/intervalmap
	$(GO) test -race -run 'TestForcedStealEquivalence|TestRunScheduledExecution' ./internal/detail
	$(GO) test -race -run 'TestECOEquivalence' ./internal/verify
	$(GO) test -race ./internal/incremental
	$(GO) test -race ./internal/service

vet:
	$(GO) vet ./...

# bench-smoke runs the interval-vs-node benchmarks once each: a fast
# sanity check that the path-search hot path still finds the long
# connection and that the benchmark harness compiles and runs.
bench-smoke:
	$(GO) test -run '^$$' -bench 'IntervalVsNode' -benchtime 1x .

# trace-smoke routes a tiny chip with -trace and validates that every
# line of the trace parses as JSON and that the BonnRoute stage spans,
# per-phase global spans and per-round detail spans are all present.
trace-smoke:
	$(GO) run ./cmd/bonnroute -flow br -rows 4 -cols 8 -nets 16 -trace /tmp/bonnroute-trace.jsonl >/dev/null
	$(GO) run ./cmd/tracelint -require-stages /tmp/bonnroute-trace.jsonl

# fuzz-smoke sweeps ten fixed-seed random scenarios through the full
# BonnRoute flow and every independent verifier (shape conservation,
# brute-force spacing, connectivity, capacity, the fast-grid
# differential, determinism double-run). Fixed seeds keep the lane
# deterministic; widen with -seeds/-base-seed for a real hunt.
fuzz-smoke:
	$(GO) run ./cmd/routefuzz -seeds 10 -base-seed 1000

# fuzz-eco-smoke sweeps fixed-seed random scenarios through the ECO
# path: each seed routes a chip, applies a seeded random delta both
# incrementally and from scratch, and requires every verifier pass to
# hold on both with identical opens/overflow plus worker-count
# bit-identity of the incremental result.
fuzz-eco-smoke:
	$(GO) run ./cmd/routefuzz -eco -seeds 4 -base-seed 2000

# fuzz-scale-smoke sweeps fixed-seed scenarios through the scale-tier
# slice: each seed routes the same chip unsharded/serial and sharded
# (congestion-region tiles)/parallel, requires bit-identical results,
# and runs the verifier with the seeded sampled spacing mode engaged.
fuzz-scale-smoke:
	$(GO) run ./cmd/routefuzz -scale -seeds 3 -base-seed 3000 -nets 120 -steiner-diff 0

# scale-smoke is the order-of-magnitude gate below the 10⁵-net bench:
# a 10⁴-net ScaledParams chip routed end to end and verified with the
# sampled pass matrix, plus the full-flow sharded-vs-unsharded worker
# bit-identity check. Behind the `scale` build tag so `go test ./...`
# never pays for it; takes several minutes on one core.
scale-smoke:
	$(GO) test -tags scale -timeout 60m -run 'TestScaleSmoke|TestShardedFlowBitIdentity' ./internal/scale

# alloc-guard re-runs the steady-state allocation tests: the no-op
# tracer must stay allocation-free, the pooled path-search engine must
# keep its per-search allocation budget — both serially and with four
# engines searching concurrently (the Workers=4 regime) — cached
# future-cost requests (the rip-up retry / ECO re-query path) must be
# allocation-free, the region-task scheduler's own dispatch overhead
# must stay bounded so the parallel path cannot erode those budgets,
# and the Steiner oracles (Path Composition and the exact goal-oriented
# search) must hold their steady-state per-call budgets once warm.
# The scale lane pins deterministic bytes-per-net budgets (shape grid
# and fast grid on freshly built 10³- and 10⁴-net spaces, interval map
# per run) with +10% headroom: the accounting derives from element
# counts, so any overshoot is a data-structure layout regression.
alloc-guard:
	$(GO) test -run 'TestNoopTracerAllocs' ./internal/obs
	$(GO) test -run 'TestSteadyStateAllocs|TestParallelSteadyStateAllocs|TestFutureSteadyStateAllocs' ./internal/pathsearch
	$(GO) test -run 'TestSchedulerAllocs' ./internal/detail
	$(GO) test -run 'TestOracleSteadyStateAllocs' ./internal/steiner
	$(GO) test -tags scale -timeout 30m -run 'TestBytesPerNetBudget|TestIntervalMapBytesPerRun' ./internal/scale

# service-smoke starts the routing daemon on a loopback port, walks one
# session through create → reroute → assess → result → delete over real
# HTTP, and shuts down gracefully. Self-contained (the daemon drives
# its own round-trip), so no curl or port coordination is needed.
service-smoke:
	$(GO) run ./cmd/routed -smoke

# steiner-smoke is the exact-oracle differential gate: every seeded
# ≤9-group instance must come back provably optimal (matching an
# independent reference solver) and never costlier than Path
# Composition. fuzz-smoke runs a 64-instance slice of the same check;
# this lane runs the full 400-instance suite plus the planar-RSMT
# equivalence.
steiner-smoke:
	$(GO) test -run 'TestExactDifferential|TestExactPlanarMatchesRSMT' ./internal/steiner

# check is the pre-merge gate: vet, build, the full test suite, the
# targeted race lane, the benchmark smoke test, the trace smoke test,
# the verifier fuzz sweeps (plain, ECO, and scale), the Steiner oracle
# differential, the allocation guards (including the scale-tier memory
# budgets), the service daemon round-trip, and the 10⁴-net scale smoke.
# (`make race` — the whole suite under -race — stays available as the
# long-form lane.)
check: vet build test test-race bench-smoke trace-smoke fuzz-smoke fuzz-eco-smoke fuzz-scale-smoke steiner-smoke alloc-guard service-smoke scale-smoke

# bench-json regenerates the committed benchmark artifact (small suite
# plus the path-search micro-benchmarks). Each chip's flows carry a `pi`
# label and full (explicit-zero) search_stats; the BR+cleanup vs
# BR+cleanup-piR pair is the committed search-effort comparison for the
# reduced-graph future cost.
bench-json:
	$(GO) run ./cmd/routebench -suite small -bench-json BENCH_pathsearch.json

# bench-pathsearch is the canonical name for the path-search artifact
# regeneration lane (alias of bench-json).
bench-pathsearch: bench-json

# bench-scaling runs the measured detail-stage workers sweep: each
# worker count W runs at GOMAXPROCS=W (one warmup, median of 3 measured
# runs; host CPU recorded in the artifact) and the quality fields are
# diffed against the committed BENCH_parallel.json — any drift in
# routed/netlength/vias/errors/unrouted, across worker counts, runs, or
# against the artifact, fails the target. Regenerate the artifact with:
#   go run ./cmd/routebench -workers-sweep 1,2,4,8 -sweep-runs 7 -suite scaling -bench-json BENCH_parallel.json
# (the committed artifact uses median-of-7; the gate below uses the
# faster default of 3 since it only diffs quality fields)
bench-scaling:
	$(GO) run ./cmd/routebench -workers-sweep 1,2,4,8 -suite scaling -diff-parallel BENCH_parallel.json

# bench-eco regenerates the committed incremental-rerouting artifact:
# each eco-suite chip is routed, a small (<10%) random delta is applied,
# and incremental.Reroute is timed against a from-scratch reroute of the
# same mutated chip. Both results must clear every verifier pass.
bench-eco:
	$(GO) run ./cmd/routebench -eco -suite eco -bench-json BENCH_eco.json

# bench-steiner regenerates the committed Steiner-oracle artifact: each
# medium-suite chip is prepared exactly as the global stage would (grid
# graph + estimated capacities), then every net is answered by both the
# exact goal-oriented oracle and Path Composition under identical edge
# costs. The artifact records per-degree-bucket net counts, tree wire
# length, vias, mean oracle runtime, and how many nets the exact oracle
# certified or strictly improved.
bench-steiner:
	$(GO) run ./cmd/routebench -steiner -suite medium -bench-json BENCH_steiner.json

# bench-service regenerates the committed service-daemon artifact: one
# session created over loopback HTTP, then a 30-delta seeded ECO stream
# where every delta is pre-screened via /assess and applied via
# /reroute. The artifact records p50/p99 latencies for both endpoints,
# reroute throughput, and the assess-vs-reroute median speedup.
bench-service:
	$(GO) run ./cmd/routebench -service -bench-json BENCH_service.json

# bench-scale regenerates the committed scale artifact: the 10⁵-net
# ScaledParams chip routed end to end (global sharded by congestion-
# region tiles) and verified with the sampled pass matrix — the spacing
# sample seed, fast-grid strides, peak RSS, bytes-per-net, and the
# deterministic structure footprints are all recorded in the artifact.
# Takes on the order of an hour on one core; scale down with
# `-scale-nets` for a spot check.
bench-scale:
	$(GO) run ./cmd/routebench -suite huge -bench-json BENCH_scale.json
