// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§5.3) plus the in-text statistics and the DESIGN.md
// ablations. Each benchmark reports the paper's quantities through
// b.ReportMetric, so `go test -bench . -benchmem` reproduces the rows;
// cmd/routebench prints the same data as formatted tables.
//
// Experiment index (see DESIGN.md §4):
//
//	BenchmarkTableI_*            — full flows, Table I
//	BenchmarkTableII             — global detour ratios by terminal count
//	BenchmarkTableIII_*          — global routing comparison
//	BenchmarkFig1ResourceCurves  — convex γ curves
//	BenchmarkFig2LineEnd         — wire model / line-end policy
//	BenchmarkFig5TauFeasible     — τ-feasible off-track search
//	BenchmarkIntervalVsNode*     — Algorithm 4 vs node Dijkstra (§4.1 ≥6×)
//	BenchmarkFastGrid*           — fast grid on/off (§3.6 5.29×, 97.89 %)
//	BenchmarkFutureCosts*        — none vs π_H vs π_P
//	BenchmarkSharingConvergence  — λ vs phase count t (§2.3 t=125, ε=1)
//	BenchmarkRoundingRepair      — §2.4 rounding/repair statistics
//	BenchmarkSteinerOracleRoot   — §2.2 oracle timing (≈0.3 ms in paper)
//	BenchmarkPinAccessQuality    — conflict-free vs greedy access
//	BenchmarkTrackOptimization   — optimized vs uniform tracks
//	BenchmarkStackedViaModel     — §2.5 stacked-via lattice model
package bonnroute_test

import (
	"context"

	"math/rand"
	"testing"

	"bonnroute"
	"bonnroute/internal/baseline"
	"bonnroute/internal/blockgrid"
	"bonnroute/internal/capest"
	"bonnroute/internal/core"
	"bonnroute/internal/detail"
	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
	"bonnroute/internal/pathsearch"
	"bonnroute/internal/report"
	"bonnroute/internal/rules"
	"bonnroute/internal/sharing"
	"bonnroute/internal/steiner"
	"bonnroute/internal/tracks"
)

// benchChip is the Table I workload: one representative medium design.
func benchChip() *bonnroute.Chip {
	return bonnroute.GenerateChip(bonnroute.ChipParams{
		Seed: 11, Rows: 8, Cols: 24, NumNets: 140,
		NumLayers: 6, LocalityRadius: 10, PowerStripePeriod: 6,
	})
}

func reportFlow(b *testing.B, res *bonnroute.Result) {
	b.ReportMetric(float64(res.Metrics.Netlength), "netlength")
	b.ReportMetric(float64(res.Metrics.Vias), "vias")
	b.ReportMetric(float64(res.Metrics.Scenic25), "scenic25")
	b.ReportMetric(float64(res.Metrics.Scenic50), "scenic50")
	b.ReportMetric(float64(res.Metrics.Errors), "errors")
	b.ReportMetric(float64(res.Metrics.Unrouted), "unrouted")
}

// --- Table I ---

func BenchmarkTableI_ISR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bonnroute.RouteBaselineWithOptions(context.Background(), benchChip(), bonnroute.Options{Seed: 11})
		if i == b.N-1 {
			reportFlow(b, res)
		}
	}
}

func BenchmarkTableI_BRCleanup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bonnroute.RouteWithOptions(context.Background(), benchChip(), bonnroute.Options{Seed: 11})
		if i == b.N-1 {
			reportFlow(b, res)
			b.ReportMetric(res.FastGridHitRate, "fg-hitrate")
		}
	}
}

// --- Table II ---

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchChip()
		res := bonnroute.RouteWithOptions(context.Background(), c, bonnroute.Options{Seed: 11})
		if i < b.N-1 || res.Global == nil {
			continue
		}
		g := core.BuildGlobalGraph(c, 8)
		baselines := report.SteinerBaselinesAt(c, func(pi int) geom.Point {
			tx, ty := g.TileOf(c.Pins[pi].Center())
			return g.TileRect(tx, ty).Center()
		})
		perNet := make([]report.NetLength, len(c.Nets))
		for ni := range c.Nets {
			perNet[ni] = report.NetLength{
				Length: res.Global.PerNetLength[ni],
				Routed: res.Global.PerNetLength[ni] > 0,
			}
		}
		for _, row := range report.TableII(c, perNet, baselines) {
			if row.Steiner > 0 {
				b.ReportMetric(row.Ratio(), "ratio-"+row.Label[:1])
			}
		}
	}
}

// --- Table III ---

func BenchmarkTableIII_BRGlobal(b *testing.B) {
	c := benchChip()
	r := detail.New(c, detail.Options{})
	g := core.BuildGlobalGraph(c, 8)
	capest.Compute(c, r.TG, g, capest.Params{})
	capest.ReduceForIntraTile(c, g)
	specs := core.NetSpecs(c, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver := sharing.New(g, specs, sharing.Options{Phases: 32, Seed: 11})
		sres := solver.Run(context.Background())
		if i == b.N-1 {
			var length int64
			vias := 0
			for ni := range sres.Nets {
				t := sres.Nets[ni].Tree()
				edges := make([]int, len(t))
				for j, e := range t {
					edges[j] = int(e)
				}
				length += steiner.TreeLength(g, edges)
				vias += steiner.CountVias(g, edges)
			}
			b.ReportMetric(float64(length), "netlength")
			b.ReportMetric(float64(vias), "vias")
			b.ReportMetric(sres.LambdaFrac, "lambda")
			b.ReportMetric(float64(sres.AlgTime.Microseconds()), "alg2-us")
			b.ReportMetric(float64(sres.RepairTime.Microseconds()), "rr-us")
		}
	}
}

func BenchmarkTableIII_ISRGlobal(b *testing.B) {
	c := benchChip()
	r := detail.New(c, detail.Options{})
	g := core.BuildGlobalGraph(c, 8)
	capest.Compute(c, r.TG, g, capest.Params{})
	specs := core.NetSpecs(c, g)
	var gnets []baseline.GNet
	for _, s := range specs {
		gnets = append(gnets, baseline.GNet{ID: s.ID, Terminals: s.Terminals, Width: s.Width})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gres := baseline.GlobalRoute(context.Background(), g, gnets, baseline.GlobalOptions{})
		if i == b.N-1 {
			var length int64
			vias := 0
			for _, t := range gres.Trees {
				edges := make([]int, len(t))
				for j, e := range t {
					edges[j] = int(e)
				}
				length += steiner.TreeLength(g, edges)
				vias += steiner.CountVias(g, edges)
			}
			b.ReportMetric(float64(length), "netlength")
			b.ReportMetric(float64(vias), "vias")
			b.ReportMetric(float64(gres.Overflowed), "overflow")
		}
	}
}

// --- Fig. 1: convex resource-consumption curves ---

func BenchmarkFig1ResourceCurves(b *testing.B) {
	// γ for power is convex and decreasing in extra space; capacity is
	// linear increasing. The bench tabulates and verifies convexity.
	power := func(s float64) float64 { return 0.7/(1+s) + 0.3 }
	space := func(w, s float64) float64 { return w + s }
	for i := 0; i < b.N; i++ {
		prev2, prev1 := power(0.0), power(0.25)
		for s := 0.5; s <= 3.0; s += 0.25 {
			cur := power(s)
			// Convexity: successive differences are nondecreasing (the
			// curve is decreasing, so differences are negative and rise
			// toward zero).
			if cur-prev1 < prev1-prev2-1e-12 {
				b.Fatal("power curve not convex")
			}
			prev2, prev1 = prev1, cur
		}
		if space(1, 2) != 3 {
			b.Fatal("space curve wrong")
		}
	}
	b.ReportMetric(power(0), "power@0")
	b.ReportMetric(power(1), "power@1")
	b.ReportMetric(power(3), "power@3")
}

// --- Fig. 2: line-end policy / wire models ---

func BenchmarkFig2LineEnd(b *testing.B) {
	deck := rules.DefaultDeck(rules.DeckParams{NumLayers: 4, Pitch: 40})
	wt := deck.StandardWireType()
	pref := wt.Oriented(0, geom.Horizontal, geom.Horizontal)
	jog := wt.Oriented(0, geom.Vertical, geom.Horizontal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := pref.Metal(geom.Pt(0, 0), geom.Pt(1000, 0))
		j := jog.Metal(geom.Pt(0, 0), geom.Pt(0, 80))
		if m.Empty() || j.Empty() {
			b.Fatal("empty metal")
		}
	}
	b.ReportMetric(float64(pref.Shape.W()-jog.Shape.W()), "lineend-extension-x2")
}

// --- Fig. 5: τ-feasible path search ---

func BenchmarkFig5TauFeasible(b *testing.B) {
	obst := []geom.Rect{geom.R(60, -40, 80, 40), geom.R(140, 0, 160, 90)}
	bounds := geom.R(-100, -100, 400, 300)
	b.ResetTimer()
	found := 0
	for i := 0; i < b.N; i++ {
		pts, _, ok := blockgrid.Search(obst, geom.Pt(0, 0), geom.Pt(250, 5), 20, bounds)
		if ok && blockgrid.SegmentsOK(pts, 20, obst) {
			found++
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "feasible-rate")
}

// --- §4.1: interval vs node labelling (the ≥6× claim) ---

func longSearchWorld() (*pathsearch.Config, []geom.Point3, []geom.Point3) {
	size := 8000
	nLayers := 4
	dirs := make([]geom.Direction, nLayers)
	coords := make([][]int, nLayers)
	for z := 0; z < nLayers; z++ {
		if z%2 == 0 {
			dirs[z] = geom.Horizontal
		} else {
			dirs[z] = geom.Vertical
		}
		for c := 20; c < size; c += 40 {
			coords[z] = append(coords[z], c)
		}
	}
	tg := tracks.BuildGraph(geom.R(0, 0, size, size), dirs, coords)
	costs := pathsearch.UniformCosts(nLayers, 3, 160)
	cfg := &pathsearch.Config{
		Tracks: tg,
		Costs:  costs,
		Pi: pathsearch.NewHFuture(nLayers, costs,
			map[int][]geom.Rect{0: {geom.R(7780, 20, 7781, 21)}}),
		WireRuns: func(z, ti, lo, hi int, visit func(lo, hi int, need drc.Need)) {},
		JogNeed:  func(z, lowerTi, along int) drc.Need { return 0 },
		ViaNeed:  func(v, botTi, topTi int, pos geom.Point) drc.Need { return 0 },
	}
	S := []geom.Point3{geom.Pt3(20, 20, 0)}
	T := []geom.Point3{geom.Pt3(7780, 20, 0)}
	return cfg, S, T
}

func BenchmarkIntervalVsNode_Interval(b *testing.B) {
	cfg, S, T := longSearchWorld()
	var pops int
	for i := 0; i < b.N; i++ {
		p := pathsearch.Search(cfg, S, T)
		if p == nil {
			b.Fatal("no path")
		}
		pops = p.Stats.HeapPops
	}
	b.ReportMetric(float64(pops), "heap-pops")
}

func BenchmarkIntervalVsNode_Node(b *testing.B) {
	cfg, S, T := longSearchWorld()
	var pops int
	for i := 0; i < b.N; i++ {
		p := pathsearch.NodeSearch(cfg, S, T)
		if p == nil {
			b.Fatal("no path")
		}
		pops = p.Stats.HeapPops
	}
	b.ReportMetric(float64(pops), "heap-pops")
}

// BenchmarkIntervalVsNode_IntervalSteady is the router-worker regime: one
// engine held across searches, so arena, queue, and label pools are warm.
// This is the allocation-free steady state the engine exists for; the
// plain Interval benchmark above includes the sync.Pool checkout.
func BenchmarkIntervalVsNode_IntervalSteady(b *testing.B) {
	cfg, S, T := longSearchWorld()
	e := pathsearch.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Search(cfg, S, T) == nil {
			b.Fatal("no path")
		}
	}
}

// --- §3.6: fast grid on/off ---

func fastGridChip() *bonnroute.Chip {
	// Dense: high utilization on a 4-layer stack, so legality queries hit
	// many shapes — the regime the fast grid exists for.
	return bonnroute.GenerateChip(bonnroute.ChipParams{
		Seed: 21, Rows: 10, Cols: 32, NumNets: 260,
		NumLayers: 4, LocalityRadius: 14, Utilization: 92,
		PowerStripePeriod: 4,
	})
}

func BenchmarkFastGrid_On(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer() // construction excluded: measure the routing phase
		r := detail.New(fastGridChip(), detail.Options{})
		b.StartTimer()
		r.Route(context.Background())
		if i == b.N-1 {
			b.ReportMetric(r.FastGridHitRate(), "hit-rate")
		}
	}
}

func BenchmarkFastGrid_Off(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := detail.New(fastGridChip(), detail.Options{NoFastGrid: true})
		b.StartTimer()
		r.Route(context.Background())
	}
}

// BenchmarkFastGridQuery isolates the §3.6 query-level speedup (the
// paper's 5.29×): answering an on-track legality question from the
// bit-packed cache versus asking the distance rule checking module.
func BenchmarkFastGridQuery_Cache(b *testing.B) {
	c := fastGridChip()
	r := detail.New(c, detail.Options{})
	r.Route(context.Background())
	wt := c.WireTypes[0]
	rng := rand.New(rand.NewSource(5))
	type q struct{ z, ti, along int }
	qs := make([]q, 4096)
	for i := range qs {
		z := rng.Intn(c.NumLayers())
		ti := rng.Intn(len(r.TG.Layers[z].Coords))
		span := c.Area.Span(c.Dir(z))
		qs[i] = q{z, ti, span.Lo + rng.Intn(span.Len())}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := qs[i%len(qs)]
		r.FG.WireNeed(k.z, k.ti, k.along, wt)
	}
}

func BenchmarkFastGridQuery_Checker(b *testing.B) {
	c := fastGridChip()
	r := detail.New(c, detail.Options{})
	r.Route(context.Background())
	wt := c.WireTypes[0]
	rng := rand.New(rand.NewSource(5))
	type q struct {
		z    int
		rect geom.Rect
		cl   rules.ShapeClass
	}
	qs := make([]q, 4096)
	for i := range qs {
		z := rng.Intn(c.NumLayers())
		layer := &r.TG.Layers[z]
		ti := rng.Intn(len(layer.Coords))
		span := c.Area.Span(c.Dir(z))
		along := span.Lo + rng.Intn(span.Len())
		m := wt.Oriented(z, layer.Dir, layer.Dir)
		var pt geom.Point
		if layer.Dir == geom.Horizontal {
			pt = geom.Pt(along, layer.Coords[ti])
		} else {
			pt = geom.Pt(layer.Coords[ti], along)
		}
		qs[i] = q{z, m.Shape.Translated(pt), m.Class}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := qs[i%len(qs)]
		r.Space.RectNeed(k.z, k.rect, k.cl, drc.AnyNet)
	}
}

// --- §4.1: future costs ---

func BenchmarkFutureCosts(b *testing.B) {
	mk := func(name string, pi func(costs pathsearch.Costs) pathsearch.FutureCost) {
		b.Run(name, func(b *testing.B) {
			cfg, S, T := longSearchWorld()
			if pi != nil {
				cfg.Pi = pi(cfg.Costs)
			} else {
				cfg.Pi = nil
			}
			var labels int
			for i := 0; i < b.N; i++ {
				p := pathsearch.Search(cfg, S, T)
				if p == nil {
					b.Fatal("no path")
				}
				labels = p.Stats.Labels
			}
			b.ReportMetric(float64(labels), "labels")
		})
	}
	mk("none", nil)
	mk("piH", func(costs pathsearch.Costs) pathsearch.FutureCost {
		return pathsearch.NewHFuture(4, costs, map[int][]geom.Rect{0: {geom.R(7780, 20, 7781, 21)}})
	})
	mk("piP", func(costs pathsearch.Costs) pathsearch.FutureCost {
		return pathsearch.NewPFuture(4, costs, map[int][]geom.Rect{0: {geom.R(7780, 20, 7781, 21)}},
			geom.R(0, 0, 8000, 8000), pathsearch.PFutureConfig{Cell: 320})
	})
}

// --- §2.3: resource sharing convergence (t, ε) ---

func BenchmarkSharingConvergence(b *testing.B) {
	c := benchChip()
	r := detail.New(c, detail.Options{})
	g := core.BuildGlobalGraph(c, 8)
	capest.Compute(c, r.TG, g, capest.Params{})
	specs := core.NetSpecs(c, g)
	for _, t := range []int{8, 32, 125} {
		b.Run("t="+itoa(t), func(b *testing.B) {
			var lambda float64
			for i := 0; i < b.N; i++ {
				res := sharing.New(g, specs, sharing.Options{Phases: t, Seed: 11}).Run(context.Background())
				lambda = res.LambdaFrac
			}
			b.ReportMetric(lambda, "lambda")
		})
	}
}

// --- §2.4: rounding and repair ---

func BenchmarkRoundingRepair(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical, geom.Horizontal, geom.Vertical}
	// A contended random instance.
	gg := core.BuildGlobalGraph(bonnroute.GenerateChip(bonnroute.ChipParams{
		Seed: 31, Rows: 8, Cols: 16, NumNets: 10}), 8)
	_ = dirs
	for e := range gg.Cap {
		gg.Cap[e] = 4
	}
	var specs []sharing.NetSpec
	for i := 0; i < 150; i++ {
		x0, y0 := rng.Intn(gg.NX), rng.Intn(gg.NY)
		x1, y1 := rng.Intn(gg.NX), rng.Intn(gg.NY)
		if x0 == x1 && y0 == y1 {
			continue
		}
		specs = append(specs, sharing.NetSpec{
			ID:        len(specs),
			Terminals: [][]int{{gg.Vertex(x0, y0, 0)}, {gg.Vertex(x1, y1, rng.Intn(2))}},
			Width:     1,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sharing.New(gg, specs, sharing.Options{Phases: 24, Seed: int64(i)}).Run(context.Background())
		if i == b.N-1 {
			b.ReportMetric(float64(res.RoundingViolations), "violations")
			b.ReportMetric(float64(res.RechooseChanges), "rechosen")
			b.ReportMetric(float64(res.Rerouted), "rerouted")
			b.ReportMetric(float64(res.RechooseChanges+res.Rerouted)/float64(len(specs)), "repair-frac")
		}
	}
}

// --- §2.2: Steiner oracle timing ---

func BenchmarkSteinerOracleRoot(b *testing.B) {
	c := benchChip()
	r := detail.New(c, detail.Options{})
	g := core.BuildGlobalGraph(c, 8)
	capest.Compute(c, r.TG, g, capest.Params{})
	specs := core.NetSpecs(c, g)
	oracle := steiner.NewOracle(g)
	cost := func(e int) float64 {
		if g.Cap[e] <= 0 {
			return -1
		}
		return float64(g.EdgeLength(e)) + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := &specs[i%len(specs)]
		oracle.Tree(cost, spec.Terminals)
	}
}

// --- §4.3 ablation: conflict-free vs greedy pin access ---

func BenchmarkPinAccessQuality(b *testing.B) {
	run := func(name string, greedy bool) {
		b.Run(name, func(b *testing.B) {
			var errs, routed int
			for i := 0; i < b.N; i++ {
				c := fastGridChip()
				r := detail.New(c, detail.Options{GreedyAccess: greedy})
				res := r.Route(context.Background())
				routed = res.Routed
				errs = auditErrors(r)
			}
			b.ReportMetric(float64(routed), "routed")
			b.ReportMetric(float64(errs), "errors")
		})
	}
	run("conflict-free", false)
	run("greedy", true)
}

// --- §3.5 ablation: optimized vs uniform tracks ---

func BenchmarkTrackOptimization(b *testing.B) {
	run := func(name string, uniform bool) {
		b.Run(name, func(b *testing.B) {
			var length float64
			var vias int
			for i := 0; i < b.N; i++ {
				c := fastGridChip()
				r := detail.New(c, detail.Options{UniformTracks: uniform})
				r.Route(context.Background())
				length = 0
				vias = 0
				for ni := range c.Nets {
					st := r.NetStats(ni)
					if st.Routed {
						length += float64(st.Length)
						vias += st.Vias
					}
				}
			}
			b.ReportMetric(length, "netlength")
			b.ReportMetric(float64(vias), "vias")
		})
	}
	run("optimized", false)
	run("uniform", true)
}

// --- §2.5: stacked-via lattice model ---

func BenchmarkStackedViaModel(b *testing.B) {
	var l float64
	for i := 0; i < b.N; i++ {
		l = capest.StackedViaColumnLoad(8, 2, 40, 40)
	}
	b.ReportMetric(l, "max-col-load")
}

// --- helpers ---

func auditErrors(r *detail.Router) int {
	c := r.Chip
	netPins := map[int32][]drc.LayerRect{}
	for ni := range c.Nets {
		if !r.NetStats(ni).Routed {
			continue
		}
		for _, pi := range c.Nets[ni].Pins {
			p := &c.Pins[pi]
			netPins[int32(ni)] = append(netPins[int32(ni)], drc.LayerRect{
				Rect: p.Shapes[0].Rect, Layer: p.Shapes[0].Layer,
			})
		}
	}
	return r.Space.Audit(c.Area, netPins).Errors()
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}
