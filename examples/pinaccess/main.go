// Pinaccess: demonstrate off-track pin access (paper §4.3) — the
// τ-feasible blockage-grid search builds a catalogue of DRC-clean access
// paths per pin, and the branch-and-bound with destructive bounding
// selects a conflict-free solution per circuit (the Fig. 7 situation,
// where greedy nearest-endpoint choices collide).
//
// Run with:
//
//	go run ./examples/pinaccess
package main

import (
	"fmt"

	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
	"bonnroute/internal/pinaccess"
	"bonnroute/internal/tracks"
)

func main() {
	c := chip.Generate(chip.GenParams{Seed: 3, Rows: 4, Cols: 12, NumNets: 30})

	// Tracks per layer (uniform here; the router optimizes them).
	dirs := make([]geom.Direction, c.NumLayers())
	coords := make([][]int, c.NumLayers())
	for z := 0; z < c.NumLayers(); z++ {
		dirs[z] = c.Dir(z)
		lr := c.Deck.Layers[z]
		span := c.Area.Span(c.Dir(z).Perp())
		for t := span.Lo + lr.Pitch/2; t < span.Hi; t += lr.Pitch {
			coords[z] = append(coords[z], t)
		}
	}
	tg := tracks.BuildGraph(c.Area, dirs, coords)

	// Pick the cell with the most pins (the hardest access problem).
	best, bestPins := -1, 0
	for i := range c.Cells {
		if n := len(c.Protos[c.Cells[i].Proto].Pins); n > bestPins {
			best, bestPins = i, n
		}
	}
	proto := &c.Protos[c.Cells[best].Proto]
	fmt.Printf("circuit class %q: %d pins, %d internal blockages\n",
		proto.Name, len(proto.Pins), len(proto.Blockages))

	cat := pinaccess.BuildCatalogue(c, tg, best, pinaccess.Params{})
	for pi, cands := range cat.PerPin {
		fmt.Printf("\npin %d: %d candidate access paths\n", pi, len(cands))
		for ci, a := range cands {
			mark := "  "
			if ci == cat.Chosen[pi] {
				mark = "=>" // the conflict-free primary path
			}
			fmt.Printf("  %s candidate %d: length %4d DBU, %d bends, ends on-track at %v (layer %d)\n",
				mark, ci, a.Length, len(a.Points)-2, a.End, a.Layer)
		}
	}

	// Verify the selection is pairwise conflict-free.
	hw := c.Deck.Layers[0].MinWidth / 2
	sp := c.Deck.Layers[0].Spacing[0].Spacing
	clean := true
	for pi := range cat.Chosen {
		if cat.Chosen[pi] < 0 {
			continue
		}
		for qi := pi + 1; qi < len(cat.Chosen); qi++ {
			if cat.Chosen[qi] < 0 {
				continue
			}
			a := &cat.PerPin[pi][cat.Chosen[pi]]
			b := &cat.PerPin[qi][cat.Chosen[qi]]
			if pinaccess.Conflicts(a, b, hw, sp) {
				clean = false
			}
		}
	}
	fmt.Printf("\nconflict-free selection verified: %v\n", clean)
}
