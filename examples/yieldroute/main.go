// Yieldroute: extra space assignment (paper §2.1, Fig. 1) — with a
// convex power/yield resource in the min-max resource sharing problem,
// nets take extra space next to their wires where capacity is plentiful
// (reducing coupling, improving yield) and give it up where the chip is
// congested.
//
// Run with:
//
//	go run ./examples/yieldroute
package main

import (
	"context"
	"fmt"

	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
	"bonnroute/internal/sharing"
)

func main() {
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 4000, 800), 200, 200, dirs)
	// Left half roomy, right half tight: a full extra track (width 1 +
	// extra 1 = 2) does not fit in capacity 1.6, a half track does.
	for e := range g.Cap {
		a, _ := g.EdgeEndpoints(e)
		tx, _, _ := g.VertexCoords(a)
		if tx < g.NX/2 {
			g.Cap[e] = 20
		} else {
			g.Cap[e] = 1.6
		}
	}

	// Nets crossing the whole channel, allowed to take extra space.
	var nets []sharing.NetSpec
	for i := 0; i < 3; i++ {
		nets = append(nets, sharing.NetSpec{
			ID:         i,
			Terminals:  [][]int{{g.Vertex(0, i, 0)}, {g.Vertex(g.NX-1, i, 0)}},
			Width:      1,
			AllowExtra: true,
		})
	}

	solver := sharing.New(g, nets, sharing.Options{
		Phases: 24, Seed: 5,
		PowerCap: 50, // enables the convex power resource of Fig. 1
	})
	res := solver.Run(context.Background())

	fmt.Println("extra space taken per tree edge (left half roomy, right half tight):")
	for ni := range nets {
		nr := &res.Nets[ni]
		if nr.Chosen < 0 {
			continue
		}
		cand := nr.Candidates[nr.Chosen]
		var leftExtra, rightExtra float64
		var leftN, rightN int
		for i, e := range cand.Edges {
			if g.IsVia(int(e)) {
				continue
			}
			a, _ := g.EdgeEndpoints(int(e))
			tx, _, _ := g.VertexCoords(a)
			if tx < g.NX/2 {
				leftExtra += float64(cand.Extra[i])
				leftN++
			} else {
				rightExtra += float64(cand.Extra[i])
				rightN++
			}
		}
		avg := func(s float64, n int) float64 {
			if n == 0 {
				return 0
			}
			return s / float64(n)
		}
		fmt.Printf("  net %d: avg extra space left %.2f tracks, right %.2f tracks\n",
			ni, avg(leftExtra, leftN), avg(rightExtra, rightN))
	}
	fmt.Println("\n(the convex power curve of Fig. 1 rewards extra space; edge capacity")
	fmt.Println(" prices make it expensive exactly where the chip is tight)")
}
