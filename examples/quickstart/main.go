// Quickstart: generate a small synthetic chip, run the full BonnRoute
// flow (resource-sharing global routing → interval-based detailed
// routing → DRC cleanup), and print the routing metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/report"
)

func main() {
	// A 6×16-slot standard-cell design with 60 nets on 6 wiring layers.
	c := chip.Generate(chip.GenParams{
		Seed: 42, Rows: 6, Cols: 16, NumNets: 60,
		PowerStripePeriod: 6,
	})
	fmt.Printf("chip: %d cells, %d nets, %d pins, area %dx%d DBU\n",
		len(c.Cells), len(c.Nets), len(c.Pins), c.Area.W(), c.Area.H())

	res := core.RouteBonnRoute(c, core.Options{Seed: 42})

	fmt.Printf("\nglobal routing: λ = %.3f (≤ 1 means within capacity), "+
		"%d oracle calls, %d reused\n",
		res.Global.Lambda, res.Global.OracleCalls, res.Global.OracleReuses)
	fmt.Printf("detailed routing: %d/%d nets routed, fast-grid hit rate %.2f%%\n",
		res.Detail.Routed, len(c.Nets), 100*res.FastGridHitRate)
	fmt.Printf("audit: %d diff-net, %d same-net, %d opens\n",
		res.Audit.DiffNetViolations,
		res.Audit.MinAreaViolations+res.Audit.NotchViolations+res.Audit.ShortEdgeShapes,
		res.Audit.Opens)

	fmt.Println()
	fmt.Print(report.FormatTableI([]report.Metrics{res.Metrics}))
}
