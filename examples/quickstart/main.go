// Quickstart: generate a small synthetic chip, run the full BonnRoute
// flow (resource-sharing global routing → interval-based detailed
// routing → DRC cleanup), and print the routing metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"bonnroute"
)

func main() {
	// A 6×16-slot standard-cell design with 60 nets on 6 wiring layers.
	c := bonnroute.GenerateChip(bonnroute.ChipParams{
		Seed: 42, Rows: 6, Cols: 16, NumNets: 60,
		PowerStripePeriod: 6,
	})
	fmt.Printf("chip: %d cells, %d nets, %d pins, area %dx%d DBU\n",
		len(c.Cells), len(c.Nets), len(c.Pins), c.Area.W(), c.Area.H())

	// A progress sink shows the stage/phase/round spans live; drop the
	// tracer option (or pass nil) to run silently at zero cost.
	tracer := bonnroute.NewTracer(bonnroute.NewProgressSink(os.Stderr))
	res := bonnroute.Route(context.Background(), c,
		bonnroute.WithSeed(42),
		bonnroute.WithTracer(tracer),
	)

	fmt.Printf("\nglobal routing: λ = %.3f (≤ 1 means within capacity), "+
		"%d oracle calls, %d reused\n",
		res.Global.Lambda, res.Global.OracleCalls, res.Global.OracleReuses)
	fmt.Printf("detailed routing: %d/%d nets routed, fast-grid hit rate %.2f%%\n",
		res.Detail.Routed, len(c.Nets), 100*res.FastGridHitRate)
	fmt.Printf("audit: %d diff-net, %d same-net, %d opens\n",
		res.Audit.DiffNetViolations,
		res.Audit.MinAreaViolations+res.Audit.NotchViolations+res.Audit.ShortEdgeShapes,
		res.Audit.Opens)

	fmt.Println()
	fmt.Print(bonnroute.FormatMetrics([]bonnroute.Metrics{res.Metrics}))
}
