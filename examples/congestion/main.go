// Congestion: build a deliberately contended global routing instance and
// watch the min-max resource sharing algorithm (paper Algorithm 2)
// converge — prices steer the Steiner oracle away from overloaded edges
// phase by phase, and randomized rounding plus rechoose/reroute produce
// an integral solution within capacity.
//
// Run with:
//
//	go run ./examples/congestion
package main

import (
	"context"
	"fmt"
	"strings"

	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
	"bonnroute/internal/sharing"
)

func main() {
	// A narrow channel: 20×3 tiles on two layers; every horizontal edge
	// fits two standard wires, vertical edges are roomy.
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 4000, 600), 200, 200, dirs)
	for e := range g.Cap {
		if g.IsVia(e) || g.EdgeLayer(e) == 1 {
			g.Cap[e] = 12
		} else {
			g.Cap[e] = 2
		}
	}

	// Six nets all wanting the same row: feasible only by spreading.
	var nets []sharing.NetSpec
	for i := 0; i < 6; i++ {
		nets = append(nets, sharing.NetSpec{
			ID:        i,
			Terminals: [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(g.NX-1, 0, 0)}},
			Width:     1,
		})
	}

	solver := sharing.New(g, nets, sharing.Options{Phases: 24, Seed: 7})
	res := solver.Run(context.Background())

	fmt.Println("per-phase maximum load λ (Algorithm 2 converging):")
	for p, l := range res.LambdaHistory {
		bar := strings.Repeat("#", int(l*20))
		fmt.Printf("  phase %2d: %5.2f %s\n", p+1, l, bar)
	}
	fmt.Printf("\nfractional λ* estimate: %.3f\n", res.LambdaFrac)
	fmt.Printf("rounding violations: %d, repaired by rechoosing: %d, rerouted: %d\n",
		res.RoundingViolations, res.RechooseChanges, res.Rerouted)

	load := solver.EdgeLoads(res)
	over := 0
	for e, l := range load {
		if l > g.Cap[e]+1e-9 {
			over++
		}
	}
	fmt.Printf("overloaded edges after repair: %d\n", over)

	// Show how the six nets spread across the three rows.
	fmt.Println("\nrow usage of each net's tree (row 0 fits only 2 nets):")
	for ni := range nets {
		rows := map[int]bool{}
		for _, e := range res.Nets[ni].Tree() {
			if !g.IsVia(int(e)) && g.EdgeLayer(int(e)) == 0 {
				a, _ := g.EdgeEndpoints(int(e))
				_, ty, _ := g.VertexCoords(a)
				rows[ty] = true
			}
		}
		fmt.Printf("  net %d: rows %v\n", ni, keys(rows))
	}
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
