module bonnroute

go 1.22
