package bonnroute_test

import (
	"context"
	"errors"
	"testing"

	"bonnroute"
)

func sessionChip() *bonnroute.Chip {
	return bonnroute.GenerateChip(bonnroute.ChipParams{
		Seed: 31, Rows: 4, Cols: 12, NumNets: 28, NumLayers: 4, LocalityRadius: 4,
	})
}

// A session reroute with the pinned options must be bit-equal in the
// headline metrics to the deprecated bare Reroute fed the same options
// by hand — the session only removes the pairing hazard, it must not
// change results.
func TestSessionMatchesBareReroute(t *testing.T) {
	ctx := context.Background()
	opts := []bonnroute.Option{bonnroute.WithSeed(31)}

	s, err := bonnroute.NewSession(ctx, sessionChip(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 1 {
		t.Fatalf("fresh session generation = %d, want 1", s.Generation())
	}
	delta := bonnroute.RandomDelta(s.Chip(), 7, bonnroute.EcoGenConfig{})

	prev := bonnroute.Route(ctx, sessionChip(), opts...)
	want, wantStats, err := bonnroute.Reroute(ctx, prev, delta, opts...)
	if err != nil {
		t.Fatal(err)
	}

	got, gotStats, err := s.Reroute(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 2 {
		t.Fatalf("generation after commit = %d, want 2", s.Generation())
	}
	if got.Metrics.Netlength != want.Metrics.Netlength ||
		got.Metrics.Vias != want.Metrics.Vias ||
		got.Metrics.Errors != want.Metrics.Errors ||
		got.Metrics.Unrouted != want.Metrics.Unrouted {
		t.Fatalf("session result differs from bare Reroute:\n  session %+v\n  bare    %+v",
			got.Metrics, want.Metrics)
	}
	if gotStats.DirtyNets != wantStats.DirtyNets || gotStats.ReplayedNets != wantStats.ReplayedNets {
		t.Fatalf("eco stats differ: session %+v, bare %+v", gotStats, wantStats)
	}
	if s.Result() != got {
		t.Fatal("session must serve the committed result")
	}
}

func TestSessionStaleGeneration(t *testing.T) {
	ctx := context.Background()
	s, err := bonnroute.NewSession(ctx, sessionChip(), bonnroute.WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	d1 := bonnroute.RandomDelta(s.Chip(), 7, bonnroute.EcoGenConfig{})
	if _, _, _, err := s.RerouteAt(ctx, 1, d1); err != nil {
		t.Fatal(err)
	}
	// A delta built against generation 1 must now be rejected, not
	// silently applied on top of generation 2.
	d2 := bonnroute.Delta{RemoveNets: []int{0}}
	_, _, gen, err := s.RerouteAt(ctx, 1, d2)
	if !errors.Is(err, bonnroute.ErrStaleGeneration) {
		t.Fatalf("stale submission: got err %v, want ErrStaleGeneration", err)
	}
	if gen != 2 {
		t.Fatalf("rejection must report the current generation, got %d", gen)
	}
	// Generation 0 skips the check.
	if _, _, _, err := s.RerouteAt(ctx, 0, d2); err != nil {
		t.Fatal(err)
	}
}

// A cancelled reroute must not commit: the session keeps serving its
// previous result and generation.
func TestSessionCancelledRerouteNotCommitted(t *testing.T) {
	s, err := bonnroute.NewSession(context.Background(), sessionChip(), bonnroute.WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	before, _, genBefore := s.Snapshot()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := bonnroute.RandomDelta(s.Chip(), 7, bonnroute.EcoGenConfig{})
	_, _, err = s.Reroute(ctx, d)
	if !errors.Is(err, bonnroute.ErrCancelled) {
		t.Fatalf("got err %v, want ErrCancelled", err)
	}
	after, _, genAfter := s.Snapshot()
	if after != before || genAfter != genBefore {
		t.Fatal("cancelled reroute must not change the session")
	}
}

func TestNewSessionCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := bonnroute.NewSession(ctx, sessionChip()); !errors.Is(err, bonnroute.ErrCancelled) {
		t.Fatalf("got err %v, want ErrCancelled", err)
	}
}

func TestSessionFromResult(t *testing.T) {
	ctx := context.Background()
	res := bonnroute.Route(ctx, sessionChip(), bonnroute.WithSeed(31))
	s, err := bonnroute.SessionFromResult(res, bonnroute.WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	if s.Result() != res || s.Generation() != 1 {
		t.Fatal("SessionFromResult must pin the given result at generation 1")
	}
	if _, err := bonnroute.SessionFromResult(nil); err == nil {
		t.Fatal("nil result must be rejected")
	}
}
