package bonnroute

import (
	"testing"

	"bonnroute/internal/obs"
)

// The functional options must compose left to right onto a zero
// core.Options (core applies its own defaults afterwards).
func TestOptionComposition(t *testing.T) {
	tr := obs.New(obs.NewMemorySink())
	o := buildOptions([]Option{
		WithWorkers(8),
		WithSeed(7),
		WithTracer(tr),
		WithGlobalConfig(GlobalConfig{Phases: 16, TileTracks: 10, PowerCap: 50}),
		WithDetailConfig(DetailConfig{UsePFuture: true}),
	})
	if o.Workers != 8 || o.Seed != 7 || o.Tracer != tr {
		t.Fatalf("basic options not applied: %+v", o)
	}
	if o.GlobalPhases != 16 || o.TileTracks != 10 || o.PowerCap != 50 {
		t.Fatalf("global config not applied: %+v", o)
	}
	if !o.UsePFuture {
		t.Fatalf("detail config not applied: %+v", o)
	}
	if o.SkipGlobal {
		t.Fatal("SkipGlobal must default to false")
	}
}

// Later options win over earlier ones.
func TestOptionPrecedence(t *testing.T) {
	o := buildOptions([]Option{WithWorkers(2), WithWorkers(4), WithSeed(1), WithSeed(9)})
	if o.Workers != 4 || o.Seed != 9 {
		t.Fatalf("later option must win: %+v", o)
	}
}

// Zero-valued GlobalConfig fields keep whatever is already set — the
// sub-config only overrides fields the caller filled in.
func TestGlobalConfigZeroFieldsPreserved(t *testing.T) {
	o := buildOptions([]Option{
		WithGlobalConfig(GlobalConfig{Phases: 12, TileTracks: 9}),
		WithGlobalConfig(GlobalConfig{PowerCap: 30}), // Phases/TileTracks zero
	})
	if o.GlobalPhases != 12 || o.TileTracks != 9 || o.PowerCap != 30 {
		t.Fatalf("zero fields clobbered earlier settings: %+v", o)
	}
}

// With no options at all, buildOptions yields the zero Options —
// core.setDefaults supplies Workers=1, Phases=32, TileTracks=8.
func TestOptionDefaultsAreZero(t *testing.T) {
	o := buildOptions(nil)
	if o != (Options{}) {
		t.Fatalf("no options must mean zero Options, got %+v", o)
	}
}

func TestWithoutGlobalAndNilOption(t *testing.T) {
	o := buildOptions([]Option{nil, WithoutGlobal(), nil})
	if !o.SkipGlobal {
		t.Fatal("WithoutGlobal must set SkipGlobal")
	}
}
