package bonnroute

import (
	"testing"

	"bonnroute/internal/obs"
)

// The functional options must compose left to right onto a zero
// core.Options (core applies its own defaults afterwards).
func TestOptionComposition(t *testing.T) {
	tr := obs.New(obs.NewMemorySink())
	o := buildOptions([]Option{
		WithWorkers(8),
		WithSeed(7),
		WithTracer(tr),
		WithGlobalConfig(GlobalConfig{Phases: 16, TileTracks: 10, PowerCap: 50}),
		WithDetailConfig(DetailConfig{UsePFuture: true}),
	})
	if o.Workers != 8 || o.Seed != 7 || o.Tracer != tr {
		t.Fatalf("basic options not applied: %+v", o)
	}
	if o.GlobalPhases != 16 || o.TileTracks != 10 || o.PowerCap != 50 {
		t.Fatalf("global config not applied: %+v", o)
	}
	if !o.UsePFuture {
		t.Fatalf("detail config not applied: %+v", o)
	}
	if o.SkipGlobal {
		t.Fatal("SkipGlobal must default to false")
	}
}

// Later options win over earlier ones.
func TestOptionPrecedence(t *testing.T) {
	o := buildOptions([]Option{WithWorkers(2), WithWorkers(4), WithSeed(1), WithSeed(9)})
	if o.Workers != 4 || o.Seed != 9 {
		t.Fatalf("later option must win: %+v", o)
	}
}

// Zero-valued GlobalConfig fields keep whatever is already set — the
// sub-config only overrides fields the caller filled in.
func TestGlobalConfigZeroFieldsPreserved(t *testing.T) {
	o := buildOptions([]Option{
		WithGlobalConfig(GlobalConfig{Phases: 12, TileTracks: 9}),
		WithGlobalConfig(GlobalConfig{PowerCap: 30}), // Phases/TileTracks zero
	})
	if o.GlobalPhases != 12 || o.TileTracks != 9 || o.PowerCap != 30 {
		t.Fatalf("zero fields clobbered earlier settings: %+v", o)
	}
}

// With no options at all, buildOptions yields the zero Options —
// core.setDefaults supplies Workers=1, Phases=32, TileTracks=8.
func TestOptionDefaultsAreZero(t *testing.T) {
	o := buildOptions(nil)
	if o != (Options{}) {
		t.Fatalf("no options must mean zero Options, got %+v", o)
	}
}

func TestWithoutGlobalAndNilOption(t *testing.T) {
	o := buildOptions([]Option{nil, WithoutGlobal(), nil})
	if !o.SkipGlobal {
		t.Fatal("WithoutGlobal must set SkipGlobal")
	}
}

// The SetX accessors make zero and false expressible: a field set
// explicitly applies even when its value is the zero value, where the
// struct-literal form would merge (keep the earlier setting).
func TestGlobalConfigExplicitZero(t *testing.T) {
	o := buildOptions([]Option{
		WithGlobalConfig(GlobalConfig{Phases: 12, TileTracks: 9, PowerCap: 30}),
		WithGlobalConfig(GlobalConfig{}.SetPhases(0).SetTileTracks(0).SetPowerCap(0)),
	})
	if o.GlobalPhases != 0 || o.TileTracks != 0 || o.PowerCap != 0 {
		t.Fatalf("explicit zeros must clear earlier settings: %+v", o)
	}

	// SetSkip(false) re-enables global routing after WithoutGlobal —
	// the literal GlobalConfig{Skip: false} cannot.
	o = buildOptions([]Option{WithoutGlobal(), WithGlobalConfig(GlobalConfig{})})
	if !o.SkipGlobal {
		t.Fatal("literal zero Skip must keep the earlier SkipGlobal")
	}
	o = buildOptions([]Option{WithoutGlobal(), WithGlobalConfig(GlobalConfig{}.SetSkip(false))})
	if o.SkipGlobal {
		t.Fatal("SetSkip(false) must re-enable global routing")
	}
}

// ExactSteiner follows the same semantics: non-zero literals merge in,
// SetExactSteiner makes 0 (restore default) and -1 (disable) expressible.
func TestGlobalConfigExactSteiner(t *testing.T) {
	o := buildOptions([]Option{WithGlobalConfig(GlobalConfig{ExactSteiner: 7})})
	if o.ExactSteinerMax != 7 {
		t.Fatalf("literal ExactSteiner not applied: %+v", o)
	}
	o = buildOptions([]Option{
		WithGlobalConfig(GlobalConfig{ExactSteiner: 7}),
		WithGlobalConfig(GlobalConfig{Phases: 16}), // zero ExactSteiner merges
	})
	if o.ExactSteinerMax != 7 {
		t.Fatalf("literal zero must keep the earlier threshold: %+v", o)
	}
	o = buildOptions([]Option{
		WithGlobalConfig(GlobalConfig{ExactSteiner: 7}),
		WithGlobalConfig(GlobalConfig{}.SetExactSteiner(0)),
	})
	if o.ExactSteinerMax != 0 {
		t.Fatalf("SetExactSteiner(0) must restore the core default: %+v", o)
	}
	o = buildOptions([]Option{WithGlobalConfig(GlobalConfig{ExactSteiner: -1})})
	if o.ExactSteinerMax != -1 {
		t.Fatalf("disabling via negative literal must apply: %+v", o)
	}
}

func TestDetailConfigExplicitFalse(t *testing.T) {
	o := buildOptions([]Option{
		WithDetailConfig(DetailConfig{UsePFuture: true}),
		WithDetailConfig(DetailConfig{}), // literal zero merges
	})
	if !o.UsePFuture {
		t.Fatal("literal zero UsePFuture must keep the earlier setting")
	}
	o = buildOptions([]Option{
		WithDetailConfig(DetailConfig{UsePFuture: true}),
		WithDetailConfig(DetailConfig{}.SetUsePFuture(false)),
	})
	if o.UsePFuture {
		t.Fatal("SetUsePFuture(false) must disable the future cost")
	}
}

// WithOptions replaces everything before it; later options still win.
func TestWithOptionsComposition(t *testing.T) {
	o := buildOptions([]Option{
		WithWorkers(8),
		WithOptions(Options{Seed: 5, GlobalPhases: 7}),
		WithWorkers(2),
	})
	if o.Workers != 2 || o.Seed != 5 || o.GlobalPhases != 7 {
		t.Fatalf("WithOptions composition wrong: %+v", o)
	}
	if o.TileTracks != 0 {
		t.Fatalf("WithOptions must replace, not merge: %+v", o)
	}
}
