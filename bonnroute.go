// Package bonnroute is a from-scratch reproduction of "BonnRoute:
// Algorithms and Data Structures for Fast and Good VLSI Routing" (Gester,
// Müller, Nieberg, Panten, Schulte, Vygen; DAC 2012 / ACM TODAES 2013).
//
// The package exposes the complete routing system: synthetic chip
// generation (the stand-in for the paper's proprietary IBM designs), the
// BonnRoute flow — min-max resource sharing global routing (Algorithm 2)
// over capacities from usable-track estimation, interval-based detailed
// routing (Algorithm 4) on optimized tracks backed by the shape-grid /
// fast-grid routing-space representation, τ-feasible off-track pin access
// with conflict-free selection, and a DRC cleanup pass — and the
// classical "industry standard router" baseline used as the comparator in
// the paper's evaluation.
//
// Quick start:
//
//	c := bonnroute.GenerateChip(bonnroute.ChipParams{Seed: 1, Rows: 8, Cols: 16, NumNets: 80})
//	res := bonnroute.Route(c, bonnroute.Options{Seed: 1})
//	fmt.Println(res.Metrics)
//
// The building blocks live in internal packages, one per subsystem of the
// paper (see DESIGN.md for the full inventory); this package is the
// stable façade.
package bonnroute

import (
	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/report"
)

// ChipParams parameterize the synthetic chip generator (the substitute
// for the paper's IBM designs; every value is documented on the
// underlying type).
type ChipParams = chip.GenParams

// Chip is a complete routing instance: layers, cells, pins, blockages,
// and nets.
type Chip = chip.Chip

// Options tune a routing run (workers, resource-sharing phases, seeds).
type Options = core.Options

// Result is a completed flow: global and detailed statistics, the DRC
// audit, per-net geometry, and the Table-I-style metrics row.
type Result = core.Result

// Metrics is one Table-I row (runtime, netlength, vias, scenic nets,
// errors).
type Metrics = report.Metrics

// GenerateChip builds a deterministic synthetic chip.
func GenerateChip(p ChipParams) *Chip { return chip.Generate(p) }

// Route runs the full BonnRoute flow on the chip: resource-sharing global
// routing, interval-based detailed routing, DRC cleanup.
func Route(c *Chip, opt Options) *Result { return core.RouteBonnRoute(c, opt) }

// RouteBaseline runs the ISR-like classical flow (sequential negotiated
// global routing, node-based maze detailed routing) — the comparator of
// the paper's Tables I and III.
func RouteBaseline(c *Chip, opt Options) *Result { return core.RouteBaseline(c, opt) }

// FormatMetrics renders Table-I-style rows.
func FormatMetrics(rows []Metrics) string { return report.FormatTableI(rows) }
