// Package bonnroute is a from-scratch reproduction of "BonnRoute:
// Algorithms and Data Structures for Fast and Good VLSI Routing" (Gester,
// Müller, Nieberg, Panten, Schulte, Vygen; DAC 2012 / ACM TODAES 2013).
//
// The package exposes the complete routing system: synthetic chip
// generation (the stand-in for the paper's proprietary IBM designs), the
// BonnRoute flow — min-max resource sharing global routing (Algorithm 2)
// over capacities from usable-track estimation, interval-based detailed
// routing (Algorithm 4) on optimized tracks backed by the shape-grid /
// fast-grid routing-space representation, τ-feasible off-track pin access
// with conflict-free selection, and a DRC cleanup pass — and the
// classical "industry standard router" baseline used as the comparator in
// the paper's evaluation.
//
// Quick start:
//
//	c := bonnroute.GenerateChip(bonnroute.ChipParams{Seed: 1, Rows: 8, Cols: 16, NumNets: 80})
//	res := bonnroute.Route(context.Background(), c, bonnroute.WithSeed(1))
//	fmt.Println(res.Metrics)
//
// Runs are configured with functional options (WithWorkers, WithSeed,
// WithTracer, WithGlobalConfig, WithDetailConfig, ...); the context
// carries cancellation — cancel it and the flow stops at the next stage,
// phase or round boundary and returns a partial Result with Cancelled
// set. Attach a Tracer (NewTracer over JSONL, progress or in-memory
// sinks) to observe every stage, global-routing phase and detailed-
// routing round as spans with metrics.
//
// For incremental (ECO) work, NewSession pins a chip, its finished
// Result and the exact options used, and Session.Reroute applies deltas
// against that pinned state with optimistic generation tokens — the
// session-oriented API the routing service daemon (cmd/routed) serves
// over HTTP. Summarize produces the trimmed, JSON-stable ResultSummary
// wire view of a Result.
//
// The building blocks live in internal packages, one per subsystem of the
// paper (see DESIGN.md for the full inventory); this package is the
// stable façade.
package bonnroute

import (
	"context"
	"io"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/detail"
	"bonnroute/internal/incremental"
	"bonnroute/internal/obs"
	"bonnroute/internal/report"
)

// ECO (incremental rerouting) re-exports: a Delta describes a scenario
// change against an already-routed chip — nets added (NewNet) or
// removed, pins moved (PinMove), blockages dropped in — and EcoStats
// reports what Reroute reused versus redid. PinShape and Obstacle are
// the chip geometry types deltas are built from.
type (
	Delta    = incremental.Delta
	NewNet   = incremental.NewNet
	PinMove  = incremental.PinMove
	EcoStats = incremental.Stats
	PinShape = chip.PinShape
	Obstacle = chip.Obstacle
)

// ChipParams parameterize the synthetic chip generator (the substitute
// for the paper's IBM designs; every value is documented on the
// underlying type).
type ChipParams = chip.GenParams

// Chip is a complete routing instance: layers, cells, pins, blockages,
// and nets.
type Chip = chip.Chip

// Options is the low-level configuration struct consumed by
// RouteWithOptions; prefer the functional options of Route.
type Options = core.Options

// Result is a completed flow: global and detailed statistics, the DRC
// audit, per-net geometry, and the Table-I-style metrics row.
type Result = core.Result

// Metrics is one Table-I row (runtime, netlength, vias, scenic nets,
// errors).
type Metrics = report.Metrics

// ResultSummary is the trimmed, JSON-stable wire view of a Result
// (metrics, audit counts, per-net status — no geometry); the routing
// service serves these over HTTP.
type ResultSummary = core.ResultSummary

// Summarize builds the wire view of a Result.
func Summarize(res *Result) ResultSummary { return core.Summarize(res) }

// Observability re-exports: a Tracer fans spans, events, counters and
// gauges out to Sinks; nil tracers and spans are no-ops, so tracing can
// be left off at zero cost.
type (
	Tracer     = obs.Tracer
	Span       = obs.Span
	Sink       = obs.Sink
	SinkFunc   = obs.SinkFunc
	Record     = obs.Record
	MemorySink = obs.MemorySink
)

// NewTracer builds a tracer over the given sinks; with no sinks it
// returns nil, which is valid and free everywhere a tracer is accepted.
func NewTracer(sinks ...Sink) *Tracer { return obs.New(sinks...) }

// NewJSONLSink streams trace records as JSON lines to w.
func NewJSONLSink(w io.Writer) *obs.JSONLSink { return obs.NewJSONLSink(w) }

// NewProgressSink writes an indented, human-readable live log to w.
func NewProgressSink(w io.Writer) *obs.ProgressSink { return obs.NewProgressSink(w) }

// NewMemorySink collects records in memory for inspection (tests).
func NewMemorySink() *MemorySink { return obs.NewMemorySink() }

// GlobalConfig collects the global-routing knobs for WithGlobalConfig.
//
// A plain struct literal keeps the historical merge semantics: zero
// fields leave whatever an earlier option set. That makes zero and
// false inexpressible from a literal, so every field also has a SetX
// accessor that marks it explicitly set — SetPowerCap(0) really
// disables the power resource and SetSkip(false) really re-enables
// global routing, where the literal forms would silently be no-ops.
type GlobalConfig struct {
	// Phases is Algorithm 2's t (default 32).
	Phases int
	// TileTracks sets the global tile size in tracks (default 8).
	TileTracks int
	// PowerCap enables the power resource when positive.
	PowerCap float64
	// Skip routes without global guidance (detailed-only mode).
	Skip bool
	// ExactSteiner is the net-degree threshold for the exact
	// goal-oriented Steiner oracle: nets whose terminals merge to at
	// most this many groups get provably minimum trees, larger nets the
	// Path Composition heuristic. 0 keeps the core default (9); use
	// SetExactSteiner(-1) to disable the exact oracle entirely.
	ExactSteiner int

	set uint8
}

const (
	gcPhases = 1 << iota
	gcTileTracks
	gcPowerCap
	gcSkip
	gcExactSteiner
)

// SetPhases returns a copy with Phases explicitly set; 0 restores the
// core default (32) even when an earlier option raised it.
func (g GlobalConfig) SetPhases(n int) GlobalConfig {
	g.Phases, g.set = n, g.set|gcPhases
	return g
}

// SetTileTracks returns a copy with TileTracks explicitly set; 0
// restores the core default (8).
func (g GlobalConfig) SetTileTracks(n int) GlobalConfig {
	g.TileTracks, g.set = n, g.set|gcTileTracks
	return g
}

// SetPowerCap returns a copy with PowerCap explicitly set; 0 disables
// the power resource even when an earlier option enabled it.
func (g GlobalConfig) SetPowerCap(v float64) GlobalConfig {
	g.PowerCap, g.set = v, g.set|gcPowerCap
	return g
}

// SetSkip returns a copy with Skip explicitly set; false re-enables
// global routing even after WithoutGlobal or an earlier Skip.
func (g GlobalConfig) SetSkip(b bool) GlobalConfig {
	g.Skip, g.set = b, g.set|gcSkip
	return g
}

// SetExactSteiner returns a copy with ExactSteiner explicitly set: 0
// restores the core default threshold (9) even when an earlier option
// changed it, and negative values disable the exact oracle — both
// inexpressible from a struct literal, whose zero field merely merges.
func (g GlobalConfig) SetExactSteiner(n int) GlobalConfig {
	g.ExactSteiner, g.set = n, g.set|gcExactSteiner
	return g
}

// FutureMode selects the future-cost family driving detailed routing's
// goal-oriented search: FutureDefault (legacy π_H / UsePFuture behavior,
// bit-identical to earlier releases), FutureAuto (per-net reduced-graph
// π_R by degree/bbox heuristics — what incremental reroutes default to),
// or FutureReduced (always π_R). See DESIGN.md §12.
type FutureMode = detail.FutureMode

// Future-cost modes for DetailConfig.FutureMode.
const (
	FutureDefault = detail.FutureDefault
	FutureAuto    = detail.FutureAuto
	FutureReduced = detail.FutureReduced
)

// DetailConfig collects the detailed-routing knobs for WithDetailConfig.
// Like GlobalConfig, struct-literal fields merge (zero keeps earlier
// settings) and SetX accessors set explicitly, including to false.
type DetailConfig struct {
	// UsePFuture enables the blockage-aware future cost (§3.5).
	UsePFuture bool
	// FutureMode selects the future-cost family (π_H/auto/reduced).
	FutureMode FutureMode

	set uint8
}

const (
	dcUsePFuture = 1 << iota
	dcFutureMode
)

// SetUsePFuture returns a copy with UsePFuture explicitly set; false
// disables the blockage-aware future cost even when an earlier option
// enabled it.
func (d DetailConfig) SetUsePFuture(b bool) DetailConfig {
	d.UsePFuture, d.set = b, d.set|dcUsePFuture
	return d
}

// SetFutureMode returns a copy with FutureMode explicitly set;
// FutureDefault restores the legacy selection even when an earlier
// option chose another mode.
func (d DetailConfig) SetFutureMode(m FutureMode) DetailConfig {
	d.FutureMode, d.set = m, d.set|dcFutureMode
	return d
}

// Option configures a routing run.
type Option func(*core.Options)

// WithWorkers sets the parallelism of both routing stages (default 1).
func WithWorkers(n int) Option { return func(o *core.Options) { o.Workers = n } }

// WithSeed seeds the randomized rounding of global routing.
func WithSeed(seed int64) Option { return func(o *core.Options) { o.Seed = seed } }

// WithTracer attaches an observability tracer; nil disables tracing.
func WithTracer(t *Tracer) Option { return func(o *core.Options) { o.Tracer = t } }

// WithGlobalConfig applies the global-routing configuration. Fields of
// a plain struct literal merge: zero values keep whatever is already
// set. Fields marked with the SetX accessors apply unconditionally,
// which is the only way to express zero and false (SetPowerCap(0),
// SetSkip(false), ...).
func WithGlobalConfig(g GlobalConfig) Option {
	return func(o *core.Options) {
		if g.Phases > 0 || g.set&gcPhases != 0 {
			o.GlobalPhases = g.Phases
		}
		if g.TileTracks > 0 || g.set&gcTileTracks != 0 {
			o.TileTracks = g.TileTracks
		}
		if g.PowerCap > 0 || g.set&gcPowerCap != 0 {
			o.PowerCap = g.PowerCap
		}
		if g.set&gcSkip != 0 {
			o.SkipGlobal = g.Skip
		} else if g.Skip {
			o.SkipGlobal = true
		}
		if g.ExactSteiner != 0 || g.set&gcExactSteiner != 0 {
			o.ExactSteinerMax = g.ExactSteiner
		}
	}
}

// WithDetailConfig applies the detailed-routing configuration, with the
// same merge-vs-explicit semantics as WithGlobalConfig.
func WithDetailConfig(d DetailConfig) Option {
	return func(o *core.Options) {
		if d.set&dcUsePFuture != 0 {
			o.UsePFuture = d.UsePFuture
		} else if d.UsePFuture {
			o.UsePFuture = true
		}
		if d.set&dcFutureMode != 0 {
			o.FutureMode = d.FutureMode
		} else if d.FutureMode != FutureDefault {
			o.FutureMode = d.FutureMode
		}
	}
}

// WithoutGlobal is shorthand for WithGlobalConfig(GlobalConfig{Skip: true}).
func WithoutGlobal() Option { return func(o *core.Options) { o.SkipGlobal = true } }

// WithOptions replaces the whole option struct with a caller-held
// core.Options — the single documented escape hatch for callers that
// assemble configurations outside the functional options. It composes
// like any other option: it overwrites everything applied before it,
// and later options still win over it, so it normally goes first:
//
//	bonnroute.Route(ctx, c, bonnroute.WithOptions(opt), bonnroute.WithWorkers(4))
func WithOptions(opt Options) Option {
	return func(o *core.Options) { *o = opt }
}

// WithEcoThreshold sets the dirty-fraction above which Reroute falls
// back to a full from-scratch run (default 0.35; negative never falls
// back).
func WithEcoThreshold(f float64) Option {
	return func(o *core.Options) { o.EcoThreshold = f }
}

func buildOptions(opts []Option) core.Options {
	var o core.Options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// GenerateChip builds a deterministic synthetic chip.
func GenerateChip(p ChipParams) *Chip { return chip.Generate(p) }

// Route runs the full BonnRoute flow on the chip: resource-sharing global
// routing, interval-based detailed routing, DRC cleanup. Cancelling ctx
// stops the flow at the next stage, phase or round boundary; the
// returned Result is then partial with Cancelled set.
func Route(ctx context.Context, c *Chip, opts ...Option) *Result {
	return core.RouteBonnRoute(ctx, c, buildOptions(opts))
}

// RouteBaseline runs the ISR-like classical flow (sequential negotiated
// global routing, node-based maze detailed routing) — the comparator of
// the paper's Tables I and III. Context semantics match Route.
func RouteBaseline(ctx context.Context, c *Chip, opts ...Option) *Result {
	return core.RouteBaseline(ctx, c, buildOptions(opts))
}

// Reroute applies an ECO delta to a finished run: committed wiring of
// clean nets is reused verbatim, only affected global edges are
// re-priced, and only the dirty set goes back through the detail
// pipeline (full from-scratch fallback above WithEcoThreshold). An
// empty delta returns prev itself, bit-identical. prev is never
// modified.
//
// The options MUST match the ones prev was routed with — in particular
// the seed, or the incremental result silently loses the determinism
// contract. Nothing in this signature enforces that pairing, which is
// why it is deprecated in favour of Session, where the options are
// pinned once and every reroute reuses them.
//
// Deprecated: use NewSession (or SessionFromResult) and
// Session.Reroute, which cannot mispair options with the result.
func Reroute(ctx context.Context, prev *Result, delta Delta, opts ...Option) (*Result, *EcoStats, error) {
	return incremental.Reroute(ctx, prev, delta, buildOptions(opts))
}

// RandomDelta builds a seeded random ECO scenario against a chip:
// useful for stress tests and benchmarks. The zero GenConfig scales the
// delta to roughly 3% of the chip's nets.
func RandomDelta(c *Chip, seed int64, cfg incremental.GenConfig) Delta {
	return incremental.RandomDelta(c, seed, cfg)
}

// EcoGenConfig sizes RandomDelta.
type EcoGenConfig = incremental.GenConfig

// RouteWithOptions is the old escape hatch for callers that already
// hold a fully-populated core.Options.
//
// Deprecated: use Route(ctx, c, WithOptions(opt)) — the same escape
// hatch as a composable functional option.
func RouteWithOptions(ctx context.Context, c *Chip, opt Options) *Result {
	return Route(ctx, c, WithOptions(opt))
}

// RouteBaselineWithOptions is the old baseline-flow escape hatch.
//
// Deprecated: use RouteBaseline(ctx, c, WithOptions(opt)).
func RouteBaselineWithOptions(ctx context.Context, c *Chip, opt Options) *Result {
	return RouteBaseline(ctx, c, WithOptions(opt))
}

// FormatMetrics renders Table-I-style rows.
func FormatMetrics(rows []Metrics) string { return report.FormatTableI(rows) }
