package bonnroute

import (
	"context"
	"errors"
	"sync"

	"bonnroute/internal/core"
	"bonnroute/internal/incremental"
)

// ErrStaleGeneration is returned by Session.RerouteAt when the caller's
// generation token no longer matches the session: another reroute
// committed in between, and applying this delta would silently build on
// a result the caller has never seen.
var ErrStaleGeneration = errors.New("bonnroute: stale session generation")

// ErrCancelled is returned by session operations whose routing flow was
// stopped by context cancellation before it could finish; the session
// keeps its previous result (nothing partial is ever committed).
var ErrCancelled = errors.New("bonnroute: routing cancelled")

// Session pins a chip together with its finished routing Result and the
// exact Options the result was produced with. It exists to remove the
// pairing hazard of the bare Reroute function: an ECO applied with
// options that differ from the previous run's (above all the seed)
// silently loses the determinism contract. A Session cannot get into
// that state — every Reroute reuses the pinned options.
//
// Sessions serialize: concurrent Reroute calls are applied one at a
// time, each against the result the previous one committed. Every
// committed reroute increments the session's generation; RerouteAt
// makes the expected generation explicit so stale submissions (built
// against a result that has since been replaced) are rejected with
// ErrStaleGeneration instead of being silently misapplied. This is the
// optimistic-concurrency primitive the routing service daemon
// (cmd/routed) builds its per-session queues on.
//
// A cancelled or failed reroute commits nothing: the session's chip,
// result and generation are unchanged, and the partial result (when the
// flow produced one) is returned alongside the error for inspection.
type Session struct {
	mu   sync.Mutex
	chip *Chip
	opt  core.Options
	res  *Result
	eco  *EcoStats
	gen  uint64
}

// NewSession routes the chip with the given options and pins the
// finished result. Cancelling ctx aborts the initial route and returns
// the context's error (wrapped with ErrCancelled); no session is
// created from a partial result.
func NewSession(ctx context.Context, c *Chip, opts ...Option) (*Session, error) {
	if c == nil {
		return nil, errors.New("bonnroute: NewSession needs a chip")
	}
	o := buildOptions(opts)
	res := core.RouteBonnRoute(ctx, c, o)
	if res.Cancelled {
		if err := ctx.Err(); err != nil {
			return nil, errors.Join(ErrCancelled, err)
		}
		return nil, ErrCancelled
	}
	return &Session{chip: c, opt: o, res: res, gen: 1}, nil
}

// SessionFromResult pins an already-finished Result (routed by Route or
// a previous session) together with the options it was produced with.
// The caller vouches that opts match the run that produced res — this
// is the one place the pairing hazard survives, kept for callers that
// route outside a session and want to graduate into one.
func SessionFromResult(res *Result, opts ...Option) (*Session, error) {
	if res == nil || res.Chip == nil || res.Router == nil {
		return nil, errors.New("bonnroute: SessionFromResult needs a finished routing Result")
	}
	if res.Cancelled {
		return nil, errors.New("bonnroute: cannot pin a cancelled (partial) Result")
	}
	return &Session{chip: res.Chip, opt: buildOptions(opts), res: res, gen: 1}, nil
}

// Chip returns the session's current chip (the mutated chip after
// committed reroutes).
func (s *Session) Chip() *Chip {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chip
}

// Result returns the session's current finished Result. The result is
// shared, not copied; treat it as read-only.
func (s *Session) Result() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res
}

// Generation returns the session's current result generation. It starts
// at 1 and increments on every committed reroute.
func (s *Session) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Snapshot returns the current result, the EcoStats of the last
// committed reroute (nil right after creation), and the generation, all
// consistent with each other.
func (s *Session) Snapshot() (*Result, *EcoStats, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res, s.eco, s.gen
}

// Options returns a copy of the pinned options.
func (s *Session) Options() Options {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opt
}

// SetTracer swaps the observability tracer of the pinned options (nil
// detaches). Tracing never influences routing results, so this is the
// one pinned option that may change over a session's lifetime — the
// service daemon attaches a streaming tracer for the initial route and
// detaches it afterwards.
func (s *Session) SetTracer(t *Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opt.Tracer = t
}

// Reroute applies an ECO delta against the session's current result
// with the pinned options, committing the outcome and bumping the
// generation. Calls serialize; each sees the previous call's committed
// state. See RerouteAt for the explicit-generation form.
func (s *Session) Reroute(ctx context.Context, delta Delta) (*Result, *EcoStats, error) {
	res, st, _, err := s.RerouteAt(ctx, 0, delta)
	return res, st, err
}

// RerouteAt is Reroute with an optimistic generation token: fromGen is
// the generation the caller built the delta against, and the call is
// rejected with ErrStaleGeneration when the session has moved on
// (fromGen 0 skips the check). The returned generation is the session's
// generation after the call — on success the newly committed one, on
// rejection or error the unchanged current one.
//
// A reroute that errors or is cancelled mid-flow commits nothing; the
// partial result (if any) is returned with the error for inspection
// but the session still serves its previous result.
func (s *Session) RerouteAt(ctx context.Context, fromGen uint64, delta Delta) (*Result, *EcoStats, uint64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if fromGen != 0 && fromGen != s.gen {
		return nil, nil, s.gen, ErrStaleGeneration
	}
	res, st, err := incremental.Reroute(ctx, s.res, delta, s.opt)
	if err != nil {
		return nil, nil, s.gen, err
	}
	if res.Cancelled {
		if cerr := ctx.Err(); cerr != nil {
			err = errors.Join(ErrCancelled, cerr)
		} else {
			err = ErrCancelled
		}
		return res, st, s.gen, err
	}
	if !st.NoOp {
		s.res = res
		s.chip = res.Chip
		s.eco = st
		s.gen++
	}
	return res, st, s.gen, nil
}
