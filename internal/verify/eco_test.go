package verify

import (
	"context"
	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/incremental"
)

// TestECOEquivalenceMatrix is the differential equivalence suite: a
// seeded scenario matrix where each delta is applied both incrementally
// and from scratch. Every verification pass must hold on both results,
// the opens/overflow/unrouted counts must match, and the incremental
// route must be bit-identical between Workers=1 and Workers=4.
func TestECOEquivalenceMatrix(t *testing.T) {
	cases := []struct {
		name      string
		params    chip.GenParams
		deltaSeed int64
	}{
		{"small-a", chip.GenParams{Seed: 101, Rows: 5, Cols: 20, NumNets: 36, NumLayers: 4, LocalityRadius: 3}, 1},
		{"small-b", chip.GenParams{Seed: 202, Rows: 5, Cols: 20, NumNets: 36, NumLayers: 4, LocalityRadius: 3}, 2},
		{"tall", chip.GenParams{Seed: 303, Rows: 8, Cols: 12, NumNets: 40, NumLayers: 6, LocalityRadius: 4}, 3},
		{"dense", chip.GenParams{Seed: 404, Rows: 6, Cols: 24, NumNets: 64, NumLayers: 4, LocalityRadius: 3}, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			viol := ECOEquivalence(context.Background(), tc.params,
				core.Options{Seed: tc.params.Seed, Workers: 1},
				ECOOptions{DeltaSeed: tc.deltaSeed, WorkersB: 4})
			for _, v := range viol {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestECOEquivalenceRemoveOnly pins the cheapest delta class: pure net
// removal dirties nothing (removal only frees space), so the entire
// surviving netlist must replay and still verify clean on both sides.
func TestECOEquivalenceRemoveOnly(t *testing.T) {
	params := chip.GenParams{Seed: 77, Rows: 5, Cols: 20, NumNets: 36, NumLayers: 4, LocalityRadius: 3}
	d := incremental.Delta{RemoveNets: []int{3, 17}}
	viol := ECOEquivalence(context.Background(), params,
		core.Options{Seed: 77, Workers: 1},
		ECOOptions{Delta: &d, WorkersB: 2})
	for _, v := range viol {
		t.Errorf("%s", v)
	}
}
