// Package verify is an independent, from-scratch checker for finished
// routing results. The router and its audit share the incremental data
// structures (shape grids, fast grid, interval maps) that routing
// mutates — a bookkeeping bug there would corrupt the routing and its
// own audit in the same way, so neither would notice. Every pass here
// re-derives its answer with simple O(n²)-tolerant reference algorithms
// from the router's declarative bookkeeping and the chip alone:
//
//   - conservation: the shapes the space actually holds are exactly the
//     chip's fixed geometry plus what each net claims to have committed;
//   - spacing: brute-force diff-net check over all reconstructed shape
//     pairs, compared against the audit's grid-driven count;
//   - connectivity: union-find opens per net from raw geometry,
//     compared against the audit's count;
//   - capacity: global-edge loads re-accumulated from the chosen trees,
//     compared element-wise against the solver's loads and the overflow
//     count;
//   - fastgrid: sampled differential of every fast-grid verdict against
//     a first-principles rule-checker query.
//
// The determinism double-run check lives in determinism.go.
package verify

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bonnroute/internal/core"
	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
)

// Violation is one verifier finding.
type Violation struct {
	Pass   string // conservation | spacing | connectivity | capacity | fastgrid | determinism
	Detail string
}

func (v Violation) String() string { return v.Pass + ": " + v.Detail }

// Report collects the findings of one verification run.
type Report struct {
	Violations []Violation

	// Work counters, for reporting coverage.
	ShapesChecked  int // shapes compared in the conservation pass
	PairsChecked   int // brute-force pairs evaluated in the spacing pass
	NetsChecked    int // nets whose connectivity was re-derived
	EdgesChecked   int // global edges re-accumulated
	SamplesChecked int // fast-grid sample points compared

	// SpacingSampled reports that at least one wiring plane exceeded
	// Options.SpacingSampleCap and the spacing pass ran in sampled mode
	// there; SpacingSampleSeed is the seed that drew the sample, recorded
	// so artifacts can reproduce the exact pair set.
	SpacingSampled    bool
	SpacingSampleSeed int64
}

// OK reports a clean run.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// maxPerPass caps recorded findings per pass so a systematic breakage
// doesn't produce one finding per shape.
const maxPerPass = 32

type reporter struct {
	rep  *Report
	pass string
	n    int
}

func (p *reporter) addf(format string, args ...any) {
	p.n++
	if p.n > maxPerPass {
		if p.n == maxPerPass+1 {
			p.rep.Violations = append(p.rep.Violations,
				Violation{Pass: p.pass, Detail: "further findings suppressed"})
		}
		return
	}
	p.rep.Violations = append(p.rep.Violations,
		Violation{Pass: p.pass, Detail: fmt.Sprintf(format, args...)})
}

// Options tune a verification run.
type Options struct {
	// FastGridStride is the along-track sampling step of the fast-grid
	// differential pass in DBU; 0 uses the layer pitch.
	FastGridStride int
	// FastGridTrackStride subsamples the tracks the fast-grid pass
	// visits (every k-th track, and every k-th track pair for via
	// verdicts); 0 or 1 visits every track. Deterministic: the stride
	// fully determines the sample, so recording it in an artifact
	// replays the identical point set.
	FastGridTrackStride int
	// SkipFastGrid disables the (comparatively slow) fast-grid pass.
	SkipFastGrid bool
	// SpacingSampleCap bounds the quadratic spacing pass for large
	// designs: a wiring plane holding more than this many shapes is
	// checked in sampled mode — SpacingSampleCap shapes are drawn by a
	// deterministic seeded permutation (SpacingSampleSeed, recorded in
	// the report) and each drawn shape is checked against EVERY shape of
	// its plane, so a violating pair is found whenever either endpoint
	// is drawn; pairs with both endpoints drawn are counted once. The
	// audit comparison then turns one-sided: every counted pair is a
	// genuine diff-net violation, so the sampled count exceeding the
	// audit's total proves the audit undercounts, while an exact match
	// is no longer required. 0 keeps the exhaustive all-pairs check.
	SpacingSampleCap int
	// SpacingSampleSeed seeds the sampled spacing mode. The seed fully
	// determines the sample — re-running with the seed recorded in a
	// report replays the identical pair set.
	SpacingSampleSeed int64
}

// Run executes every in-process pass against a finished result.
func Run(res *core.Result, opt Options) *Report {
	rep := &Report{}
	exp := reconstruct(res)
	checkConservation(rep, res, exp)
	checkSpacing(rep, res, exp, opt)
	checkConnectivity(rep, res, exp)
	checkCapacity(rep, res)
	if !opt.SkipFastGrid {
		checkFastGrid(rep, res, opt)
	}
	return rep
}

// planeKey addresses one shape plane: a wiring layer or a cut layer.
type planeKey struct {
	plane int
	cut   bool
}

// expected is the from-scratch reconstruction of the routing space:
// what every plane must hold, and which net claims each shape.
type expected struct {
	planes map[planeKey]map[shapegrid.Shape]bool
	// perNet[ni] lists net ni's wiring shapes (pins included) and cut
	// shapes — the raw geometry the connectivity pass runs on.
	perNetWiring map[int][]layerShape
	perNetCuts   map[int][]layerShape
}

type layerShape struct {
	z  int
	sh shapegrid.Shape
}

// reconstruct builds the expected space contents from the chip's fixed
// geometry plus each net's claimed committed shapes. It never queries
// the shape grids.
func reconstruct(res *core.Result) *expected {
	c := res.Chip
	r := res.Router
	exp := &expected{
		planes:       map[planeKey]map[shapegrid.Shape]bool{},
		perNetWiring: map[int][]layerShape{},
		perNetCuts:   map[int][]layerShape{},
	}
	add := func(k planeKey, sh shapegrid.Shape) {
		m := exp.planes[k]
		if m == nil {
			m = map[shapegrid.Shape]bool{}
			exp.planes[k] = m
		}
		m[sh] = true
	}
	for _, o := range c.AllObstacles() {
		add(planeKey{o.Layer, false}, shapegrid.Shape{
			Rect:  o.Rect,
			Net:   shapegrid.NoNet,
			Class: rules.ClassBlockage,
			Ripup: shapegrid.RipupNever,
			Kind:  shapegrid.KindBlockage,
		})
	}
	for pi := range c.Pins {
		p := &c.Pins[pi]
		for _, s := range p.Shapes {
			sh := shapegrid.Shape{
				Rect:  s.Rect,
				Net:   int32(p.Net),
				Class: rules.ClassStandard,
				Ripup: shapegrid.RipupNever,
				Kind:  shapegrid.KindPin,
			}
			add(planeKey{s.Layer, false}, sh)
			exp.perNetWiring[p.Net] = append(exp.perNetWiring[p.Net], layerShape{s.Layer, sh})
		}
	}
	for ni := range c.Nets {
		for _, rec := range r.CommittedShapes(ni) {
			add(planeKey{rec.Plane, rec.Cut}, rec.Shape)
			if rec.Cut {
				exp.perNetCuts[ni] = append(exp.perNetCuts[ni], layerShape{rec.Plane, rec.Shape})
			} else {
				exp.perNetWiring[ni] = append(exp.perNetWiring[ni], layerShape{rec.Plane, rec.Shape})
			}
		}
	}
	return exp
}

// checkConservation compares the reconstruction against the live shape
// grids, both directions, per plane.
func checkConservation(rep *Report, res *core.Result, exp *expected) {
	p := &reporter{rep: rep, pass: "conservation"}
	r := res.Router
	area := res.Chip.Area.Expanded(64 * res.Chip.Deck.Layers[0].Pitch)

	check := func(k planeKey, liveShapes []shapegrid.Shape) {
		live := make(map[shapegrid.Shape]bool, len(liveShapes))
		for _, sh := range liveShapes {
			live[sh] = true
		}
		want := exp.planes[k]
		rep.ShapesChecked += len(live) + len(want)
		for sh := range live {
			if !want[sh] {
				p.addf("plane %v holds unclaimed shape %+v (phantom metal: no net or fixed geometry accounts for it)", k, sh)
			}
		}
		for sh := range want {
			if !live[sh] {
				p.addf("plane %v is missing claimed shape %+v (bookkeeping says committed, space disagrees)", k, sh)
			}
		}
	}
	for z := range r.Space.Wiring {
		check(planeKey{z, false}, r.Space.Wiring[z].QueryAll(area))
	}
	for v := range r.Space.Cuts {
		check(planeKey{v, true}, r.Space.Cuts[v].QueryAll(area))
	}
}

// spacingViolates is the reference diff-net predicate, restated from
// the deck rules: overlap, or gap below the class/width/run-length
// dependent spacing.
func spacingViolates(deck *rules.Deck, z int, a, b shapegrid.Shape) bool {
	if a.Rect.Intersects(b.Rect) {
		return true
	}
	var rl int
	switch {
	case a.Rect.DistY(b.Rect) > 0 && a.Rect.DistX(b.Rect) == 0:
		rl = a.Rect.RunLength(b.Rect, geom.Horizontal)
	case a.Rect.DistX(b.Rect) > 0 && a.Rect.DistY(b.Rect) == 0:
		rl = a.Rect.RunLength(b.Rect, geom.Vertical)
	}
	sp := deck.Spacing(z, a.Class, b.Class, a.Rect.Width(), b.Rect.Width(), rl)
	return a.Rect.Dist2Sq(b.Rect) < int64(sp)*int64(sp)
}

// checkSpacing brute-forces diff-net spacing over reconstructed shapes
// of each wiring plane — no grid, no neighborhood query, no margin
// logic — and compares against the audit. Planes larger than
// opt.SpacingSampleCap run in sampled mode (see Options); the audit
// comparison is exact when every plane was exhaustive and one-sided
// otherwise.
func checkSpacing(rep *Report, res *core.Result, exp *expected, opt Options) {
	p := &reporter{rep: rep, pass: "spacing"}
	deck := res.Chip.Deck
	count := 0
	sampled := false
	// checkPair applies the diff-net filter shared by both modes and
	// counts a violating pair at most once across the whole pass.
	checkPair := func(z int, a, b shapegrid.Shape) {
		if a.Net == b.Net && a.Net != shapegrid.NoNet {
			return
		}
		routedA := a.Kind == shapegrid.KindWire || a.Kind == shapegrid.KindVia
		routedB := b.Kind == shapegrid.KindWire || b.Kind == shapegrid.KindVia
		if !routedA && !routedB {
			return // placement-vs-placement is not the router's error
		}
		rep.PairsChecked++
		if spacingViolates(deck, z, a, b) {
			count++
		}
	}
	for z := range res.Router.Space.Wiring {
		shapes := sortedShapes(exp.planes[planeKey{z, false}])
		if opt.SpacingSampleCap > 0 && len(shapes) > opt.SpacingSampleCap {
			sampled = true
			// Deterministic per-plane sample: the seed and the canonical
			// sortedShapes order fully determine the drawn set.
			rng := rand.New(rand.NewSource(opt.SpacingSampleSeed + int64(z)))
			drawn := rng.Perm(len(shapes))[:opt.SpacingSampleCap]
			inSample := make([]bool, len(shapes))
			for _, i := range drawn {
				inSample[i] = true
			}
			for _, i := range drawn {
				for j := range shapes {
					if j == i || (inSample[j] && j < i) {
						continue // both drawn: count the pair once
					}
					checkPair(z, shapes[i], shapes[j])
				}
			}
		} else {
			for i := range shapes {
				for j := i + 1; j < len(shapes); j++ {
					checkPair(z, shapes[i], shapes[j])
				}
			}
		}
	}
	if sampled {
		rep.SpacingSampled = true
		rep.SpacingSampleSeed = opt.SpacingSampleSeed
		if count > res.Audit.DiffNetViolations {
			p.addf("sampled diff-net count %d exceeds audit's total %d (every sampled pair is a real violation, so the audit undercounts; seed %d replays the sample)",
				count, res.Audit.DiffNetViolations, opt.SpacingSampleSeed)
		}
	} else if count != res.Audit.DiffNetViolations {
		p.addf("brute-force diff-net count %d != audit's %d (the audit's neighborhood query and the raw geometry disagree)",
			count, res.Audit.DiffNetViolations)
	}
}

func sortedShapes(m map[shapegrid.Shape]bool) []shapegrid.Shape {
	out := make([]shapegrid.Shape, 0, len(m))
	for sh := range m {
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rect != b.Rect {
			if a.Rect.XMin != b.Rect.XMin {
				return a.Rect.XMin < b.Rect.XMin
			}
			if a.Rect.YMin != b.Rect.YMin {
				return a.Rect.YMin < b.Rect.YMin
			}
			if a.Rect.XMax != b.Rect.XMax {
				return a.Rect.XMax < b.Rect.XMax
			}
			return a.Rect.YMax < b.Rect.YMax
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Ripup != b.Ripup {
			return a.Ripup < b.Ripup
		}
		return a.Kind < b.Kind
	})
	return out
}

// checkConnectivity re-derives opens per routed net with a union-find
// over raw geometry (same-layer touching shapes merge; via cuts join
// the two adjacent layers; pins join what they touch) and compares the
// total against the audit. The pin policy mirrors the flows' audit
// call: routed nets only, one representative rectangle per pin.
func checkConnectivity(rep *Report, res *core.Result, exp *expected) {
	p := &reporter{rep: rep, pass: "connectivity"}
	c := res.Chip
	opens := 0
	for ni := range c.Nets {
		if !res.Router.NetStats(ni).Routed {
			continue
		}
		rep.NetsChecked++
		shapes := exp.perNetWiring[ni]
		d := newDSU(len(shapes) + len(c.Nets[ni].Pins))
		for i := range shapes {
			for j := i + 1; j < len(shapes); j++ {
				if shapes[i].z == shapes[j].z && shapes[i].sh.Rect.Touches(shapes[j].sh.Rect) {
					d.union(i, j)
				}
			}
		}
		for _, cut := range exp.perNetCuts[ni] {
			if cut.sh.Class != rules.ClassViaCut {
				continue // projections are rule metal, not connectivity
			}
			first := -1
			for i := range shapes {
				if (shapes[i].z == cut.z || shapes[i].z == cut.z+1) && shapes[i].sh.Rect.Touches(cut.sh.Rect) {
					if first < 0 {
						first = i
					} else {
						d.union(first, i)
					}
				}
			}
		}
		// Pins: one representative rectangle each, joined to touching
		// net shapes on the pin's layer and to touching sibling pins.
		n := len(shapes)
		pins := c.Nets[ni].Pins
		for k, pi := range pins {
			ps := c.Pins[pi].Shapes[0]
			for i := range shapes {
				if shapes[i].z == ps.Layer && shapes[i].sh.Rect.Touches(ps.Rect) {
					d.union(n+k, i)
				}
			}
			for q := 0; q < k; q++ {
				qs := c.Pins[pins[q]].Shapes[0]
				if qs.Layer == ps.Layer && qs.Rect.Touches(ps.Rect) {
					d.union(n+k, n+q)
				}
			}
		}
		roots := map[int]bool{}
		for k := range pins {
			roots[d.find(n+k)] = true
		}
		if len(roots) > 1 {
			opens += len(roots) - 1
		}
	}
	if opens != res.Audit.Opens {
		p.addf("union-find opens %d != audit's %d", opens, res.Audit.Opens)
	}
}

// checkCapacity re-accumulates global-edge loads from the chosen trees
// and compares them against the solver's reported loads (element-wise)
// and the flow's overflow count.
func checkCapacity(rep *Report, res *core.Result) {
	p := &reporter{rep: rep, pass: "capacity"}
	a := res.Assignment
	if a == nil || a.Graph == nil {
		return
	}
	g := a.Graph
	load := make([]float64, g.NumEdges())
	rep.EdgesChecked = g.NumEdges()
	for ni, tree := range a.Trees {
		w := 1.0
		if a.Widths != nil {
			w = a.Widths[ni]
		}
		for i, e := range tree {
			if int(e) < 0 || int(e) >= len(load) {
				p.addf("net %d tree references edge %d outside the graph (%d edges)", ni, e, len(load))
				continue
			}
			x := w
			if a.Extras != nil && a.Extras[ni] != nil && i < len(a.Extras[ni]) {
				x += float64(a.Extras[ni][i])
			}
			load[e] += x
		}
	}
	if a.Loads != nil {
		for e := range load {
			if math.Abs(load[e]-a.Loads[e]) > 1e-6 {
				p.addf("edge %d: re-accumulated load %g != reported load %g", e, load[e], a.Loads[e])
			}
		}
	}
	over := 0
	for e := range load {
		if load[e] > g.Cap[e]+1e-9 {
			over++
		}
	}
	if res.Global != nil && over != res.Global.Overflowed {
		p.addf("re-derived overflow count %d != flow's %d", over, res.Global.Overflowed)
	}
}

// checkFastGrid samples every track of every layer and compares the
// fast grid's cached verdicts — wire need, jog-up need, via need —
// against first-principles rule-checker queries with AnyNet.
func checkFastGrid(rep *Report, res *core.Result, opt Options) {
	p := &reporter{rep: rep, pass: "fastgrid"}
	r := res.Router
	c := res.Chip
	wt := c.WireTypes[0]
	if r.FG.Slot(wt) < 0 {
		return // wire type not cached: nothing to differ from
	}
	tstride := opt.FastGridTrackStride
	if tstride <= 0 {
		tstride = 1
	}
	for z := range r.TG.Layers {
		layer := &r.TG.Layers[z]
		stride := opt.FastGridStride
		if stride <= 0 {
			stride = c.Deck.Layers[z].Pitch
		}
		pm := wt.Oriented(z, layer.Dir, layer.Dir)
		span := c.Area.Span(layer.Dir)
		for ti := 0; ti < len(layer.Coords); ti += tstride {
			coord := layer.Coords[ti]
			for along := span.Lo; along < span.Hi; along += stride {
				var pt geom.Point
				if layer.Dir == geom.Horizontal {
					pt = geom.Pt(along, coord)
				} else {
					pt = geom.Pt(coord, along)
				}
				rep.SamplesChecked++
				want := r.Space.RectNeed(z, pm.Shape.Translated(pt), pm.Class, drc.AnyNet)
				got, ok := r.FG.WireNeed(z, ti, along, wt)
				if !ok || got != want {
					p.addf("wire: layer %d track %d along %d: fast grid %d, rule checker %d", z, ti, along, got, want)
				}
				if ti+1 < len(layer.Coords) {
					c1 := layer.Coords[ti+1]
					var a, b geom.Point
					if layer.Dir == geom.Horizontal {
						a, b = geom.Pt(along, coord), geom.Pt(along, c1)
					} else {
						a, b = geom.Pt(coord, along), geom.Pt(c1, along)
					}
					rep.SamplesChecked++
					jwant := r.Space.SegmentNeed(z, a, b, wt, drc.AnyNet)
					jgot, jok := r.FG.JogUpNeed(z, ti, along, wt)
					if !jok || jgot != jwant {
						p.addf("jog: layer %d track %d along %d: fast grid %d, rule checker %d", z, ti, along, jgot, jwant)
					}
				}
			}
		}
	}
	// Via verdicts at (subsampled) track crossings of each via layer.
	vstride := max(2, tstride)
	for v := 0; v+1 < c.NumLayers(); v++ {
		lo, hi := &r.TG.Layers[v], &r.TG.Layers[v+1]
		for bi := 0; bi < len(lo.Coords); bi += vstride {
			for tj := 0; tj < len(hi.Coords); tj += vstride {
				var pos geom.Point
				if lo.Dir == geom.Horizontal {
					pos = geom.Pt(hi.Coords[tj], lo.Coords[bi])
				} else {
					pos = geom.Pt(lo.Coords[bi], hi.Coords[tj])
				}
				rep.SamplesChecked++
				want := r.Space.ViaNeed(v, pos, wt, drc.AnyNet)
				got, ok := r.FG.ViaNeed(v, bi, tj, pos, wt)
				if !ok || got != want {
					p.addf("via: layer %d at %v: fast grid %d, rule checker %d", v, pos, got, want)
				}
			}
		}
	}
}

// dsu is a plain union-find.
type dsu struct{ parent []int }

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d.parent[ra] = rb
	}
}
