package verify

import (
	"context"
	"fmt"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/incremental"
)

// ECOOptions configures one ECOEquivalence check.
type ECOOptions struct {
	// Delta is the scenario applied to the routed chip. Nil derives a
	// seeded random delta (DeltaSeed) scaled to the chip.
	Delta *incremental.Delta
	// DeltaSeed seeds the random delta when Delta is nil.
	DeltaSeed int64
	// Gen sizes the random delta (zero scales with the chip). Negative
	// fields drop that mutation class — the fuzz shrinker uses this to
	// minimize ECO scenarios component by component.
	Gen incremental.GenConfig
	// WorkersB, when > 0, reruns the incremental route with this worker
	// count and requires the result to be bit-identical to the first
	// (incremental determinism).
	WorkersB int
	// SkipFastGrid propagates to the per-result verification runs.
	SkipFastGrid bool
}

// ECOEquivalence is the differential equivalence check for the ECO
// engine: route the generated chip, apply a delta both incrementally
// (incremental.Reroute over the finished result) and from scratch
// (RouteBonnRoute on the mutated chip), and require
//
//   - every verification pass (shape conservation, brute-force spacing,
//     connectivity, load re-accumulation, fast grid) to hold on BOTH
//     results,
//   - identical opens and overflow counts between them, and
//   - (with WorkersB set) the incremental route to be bit-identical
//     across worker counts for the fixed seed.
//
// Violations carry pass "eco" when they concern the equivalence itself;
// per-result pass findings are prefixed with which route they came from.
func ECOEquivalence(ctx context.Context, params chip.GenParams, opt core.Options, eopt ECOOptions) []Violation {
	if ctx == nil {
		ctx = context.Background()
	}
	c := chip.Generate(params)
	prev := core.RouteBonnRoute(ctx, c, opt)

	var delta incremental.Delta
	if eopt.Delta != nil {
		delta = *eopt.Delta
	} else {
		delta = incremental.RandomDelta(c, eopt.DeltaSeed, eopt.Gen)
	}

	var viol []Violation
	inc, st, err := incremental.Reroute(ctx, prev, delta, opt)
	if err != nil {
		return []Violation{{Pass: "eco", Detail: fmt.Sprintf("Reroute failed: %v", err)}}
	}
	if st.NoOp && !delta.Empty() {
		viol = append(viol, Violation{Pass: "eco",
			Detail: "non-empty delta reported as no-op"})
	}
	scratch := core.RouteBonnRoute(ctx, inc.Chip, opt)

	vopt := Options{SkipFastGrid: eopt.SkipFastGrid}
	for _, v := range Run(inc, vopt).Violations {
		v.Detail = "incremental: " + v.Detail
		viol = append(viol, v)
	}
	for _, v := range Run(scratch, vopt).Violations {
		v.Detail = "from-scratch: " + v.Detail
		viol = append(viol, v)
	}

	if inc.Audit.Opens != scratch.Audit.Opens {
		viol = append(viol, Violation{Pass: "eco", Detail: fmt.Sprintf(
			"opens differ: incremental %d, from-scratch %d", inc.Audit.Opens, scratch.Audit.Opens)})
	}
	io, so := 0, 0
	if inc.Global != nil {
		io = inc.Global.Overflowed
	}
	if scratch.Global != nil {
		so = scratch.Global.Overflowed
	}
	if io != so {
		viol = append(viol, Violation{Pass: "eco", Detail: fmt.Sprintf(
			"overflow differs: incremental %d, from-scratch %d", io, so)})
	}
	if inc.Metrics.Unrouted != scratch.Metrics.Unrouted {
		viol = append(viol, Violation{Pass: "eco", Detail: fmt.Sprintf(
			"unrouted differs: incremental %d, from-scratch %d",
			inc.Metrics.Unrouted, scratch.Metrics.Unrouted)})
	}

	if eopt.WorkersB > 0 {
		o2 := opt
		o2.Workers = eopt.WorkersB
		inc2, _, err := incremental.Reroute(ctx, prev, delta, o2)
		if err != nil {
			viol = append(viol, Violation{Pass: "eco", Detail: fmt.Sprintf(
				"Workers=%d Reroute failed: %v", eopt.WorkersB, err)})
		} else {
			for _, v := range CompareResults(inc, inc2) {
				v.Detail = fmt.Sprintf("eco Workers %d vs %d: %s", opt.Workers, eopt.WorkersB, v.Detail)
				viol = append(viol, v)
			}
		}
	}
	return viol
}
