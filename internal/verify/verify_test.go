package verify

import (
	"context"
	"strings"
	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
)

func routeSmall(t *testing.T) *core.Result {
	t.Helper()
	c := chip.Generate(chip.GenParams{
		Seed: 17, Rows: 5, Cols: 24, NumNets: 40, NumLayers: 4, LocalityRadius: 3,
	})
	return core.RouteBonnRoute(context.Background(), c, core.Options{Seed: 17, Workers: 2})
}

func passes(viol []Violation) map[string]bool {
	m := map[string]bool{}
	for _, v := range viol {
		m[v.Pass] = true
	}
	return m
}

// TestVerify runs one flow and then drives every pass through a clean
// check plus targeted corruptions, in an order that saves the
// state-mutating corruption for last. Each corruption must trip exactly
// the pass that owns the invariant — that is the verifier's liveness
// proof (a checker that cannot fail proves nothing).
func TestVerify(t *testing.T) {
	res := routeSmall(t)

	t.Run("clean", func(t *testing.T) {
		rep := Run(res, Options{})
		if !rep.OK() {
			for _, v := range rep.Violations {
				t.Errorf("unexpected violation: %s", v)
			}
		}
		if rep.ShapesChecked == 0 || rep.PairsChecked == 0 || rep.NetsChecked == 0 ||
			rep.EdgesChecked == 0 || rep.SamplesChecked == 0 {
			t.Fatalf("a pass did no work: %+v", rep)
		}
	})

	t.Run("spacing detects audit drift", func(t *testing.T) {
		tampered := *res
		tampered.Audit.DiffNetViolations += 3
		got := passes(Run(&tampered, Options{SkipFastGrid: true}).Violations)
		if !got["spacing"] || len(got) != 1 {
			t.Fatalf("want exactly the spacing pass to fail, got %v", got)
		}
	})

	t.Run("connectivity detects opens drift", func(t *testing.T) {
		tampered := *res
		tampered.Audit.Opens += 1
		got := passes(Run(&tampered, Options{SkipFastGrid: true}).Violations)
		if !got["connectivity"] || len(got) != 1 {
			t.Fatalf("want exactly the connectivity pass to fail, got %v", got)
		}
	})

	t.Run("capacity detects load corruption", func(t *testing.T) {
		if res.Assignment == nil || len(res.Assignment.Loads) == 0 {
			t.Fatal("flow produced no assignment to corrupt")
		}
		res.Assignment.Loads[0] += 0.5
		defer func() { res.Assignment.Loads[0] -= 0.5 }()
		got := passes(Run(res, Options{SkipFastGrid: true}).Violations)
		if !got["capacity"] || len(got) != 1 {
			t.Fatalf("want exactly the capacity pass to fail, got %v", got)
		}
	})

	t.Run("capacity detects tree corruption", func(t *testing.T) {
		a := res.Assignment
		var ni int
		for ni = range a.Trees {
			if len(a.Trees[ni]) > 0 {
				break
			}
		}
		if len(a.Trees[ni]) == 0 {
			t.Fatal("no net has a routed tree")
		}
		old := a.Trees[ni][0]
		a.Trees[ni][0] = old ^ 1 // reroute one net over a different edge
		defer func() { a.Trees[ni][0] = old }()
		if got := passes(Run(res, Options{SkipFastGrid: true}).Violations); !got["capacity"] {
			t.Fatalf("want the capacity pass to fail, got %v", got)
		}
	})

	t.Run("conservation detects missing shape", func(t *testing.T) {
		// Pull one fixed obstacle out of the space: bookkeeping still
		// claims it, the grids no longer hold it.
		obs := res.Chip.AllObstacles()
		if len(obs) == 0 {
			t.Skip("chip has no obstacles")
		}
		o := obs[0]
		exp := reconstruct(res)
		for cand := range exp.planes[planeKey{o.Layer, false}] {
			if cand.Rect == o.Rect && cand.Net == -1 { // shapegrid.NoNet
				if !res.Router.Space.RemoveShape(o.Layer, cand) {
					t.Fatal("obstacle shape not present in the space")
				}
				defer res.Router.Space.AddShape(o.Layer, cand)
				break
			}
		}
		rep := Run(res, Options{SkipFastGrid: true})
		found := false
		for _, v := range rep.Violations {
			if v.Pass == "conservation" && strings.Contains(v.Detail, "missing claimed shape") {
				found = true
			}
		}
		if !found {
			t.Fatalf("want a missing-shape conservation finding, got %v", rep.Violations)
		}
	})

	// Mutates the routing space for good: keep this subtest last.
	t.Run("conservation detects phantom shape", func(t *testing.T) {
		mid := geom.Rect{
			XMin: res.Chip.Area.XMin + 100, YMin: res.Chip.Area.YMin + 100,
			XMax: res.Chip.Area.XMin + 160, YMax: res.Chip.Area.YMin + 140,
		}
		res.Router.Space.AddObstacle(0, mid)
		rep := Run(res, Options{SkipFastGrid: true})
		found := false
		for _, v := range rep.Violations {
			if v.Pass == "conservation" && strings.Contains(v.Detail, "unclaimed shape") {
				found = true
			}
		}
		if !found {
			t.Fatalf("want an unclaimed-shape conservation finding, got %v", rep.Violations)
		}
	})
}

// TestFastGridPassIsLive corrupts the fast grid relative to the rule
// checker — an obstacle added to the space without the corresponding
// invalidation callback — and requires the differential pass to notice.
func TestFastGridPassIsLive(t *testing.T) {
	res := routeSmall(t)
	l0 := &res.Router.TG.Layers[0]
	c0 := l0.Coords[len(l0.Coords)/2]
	var r geom.Rect
	if l0.Dir == geom.Horizontal {
		mid := (res.Chip.Area.XMin + res.Chip.Area.XMax) / 2
		r = geom.Rect{XMin: mid, YMin: c0 - 10, XMax: mid + 200, YMax: c0 + 10}
	} else {
		mid := (res.Chip.Area.YMin + res.Chip.Area.YMax) / 2
		r = geom.Rect{XMin: c0 - 10, YMin: mid, XMax: c0 + 10, YMax: mid + 200}
	}
	res.Router.Space.AddObstacle(0, r) // no FG.OnWiringChange: cache is now stale
	got := passes(Run(res, Options{}).Violations)
	if !got["fastgrid"] {
		t.Fatalf("want the fastgrid pass to fail on a stale cache, got %v", got)
	}
}

// TestCompareResultsFlagsDifferences proves the determinism comparator
// itself is live: identical results compare clean, genuinely different
// routings do not.
func TestCompareResultsFlagsDifferences(t *testing.T) {
	gen := func(seed int64) *core.Result {
		c := chip.Generate(chip.GenParams{
			Seed: seed, Rows: 4, Cols: 10, NumNets: 16, NumLayers: 4, LocalityRadius: 3,
		})
		return core.RouteBonnRoute(context.Background(), c, core.Options{Seed: 17, Workers: 1})
	}
	a := gen(3)
	if viol := CompareResults(a, a); len(viol) != 0 {
		t.Fatalf("self-comparison must be clean, got %v", viol)
	}
	b := gen(4)
	if viol := CompareResults(a, b); len(viol) == 0 {
		t.Fatal("different chips routed identically — comparator is dead")
	}
}

// Fuzz regressions (e.g. the seed-1007 via-staleness case) live in the
// golden corpus under testdata/ and run via TestGoldenCorpus in
// corpus_test.go — add new reproducers there as JSON, not as code.

// TestDeterminism is the double-run check itself on a small chip.
func TestDeterminism(t *testing.T) {
	viol := Determinism(context.Background(), chip.GenParams{
		Seed: 11, Rows: 4, Cols: 12, NumNets: 24, NumLayers: 4, LocalityRadius: 3,
	}, core.Options{Seed: 11}, 1, 4)
	for _, v := range viol {
		t.Errorf("%s", v)
	}
}

// TestSpacingSampledMode covers the deterministic sampled spacing mode:
// a clean result stays clean under sampling, the same seed replays the
// identical pair set, and — the mutation self-test — a planted diff-net
// violation is still caught. The plant is a wire rectangle spanning the
// whole chip on a fresh net id: every sampled shape of another net
// violates against it, so detection is guaranteed for ANY seed, not just
// a lucky draw.
func TestSpacingSampledMode(t *testing.T) {
	res := routeSmall(t)
	const cap = 16

	exhaustive := Run(res, Options{SkipFastGrid: true})
	if !exhaustive.OK() {
		t.Fatalf("exhaustive run not clean: %v", exhaustive.Violations)
	}
	if exhaustive.SpacingSampled {
		t.Fatal("exhaustive run reported sampling")
	}

	t.Run("clean and deterministic", func(t *testing.T) {
		a := Run(res, Options{SkipFastGrid: true, SpacingSampleCap: cap, SpacingSampleSeed: 42})
		if !a.OK() {
			t.Fatalf("sampled run not clean: %v", a.Violations)
		}
		if !a.SpacingSampled || a.SpacingSampleSeed != 42 {
			t.Fatalf("sampling not recorded: sampled=%v seed=%d", a.SpacingSampled, a.SpacingSampleSeed)
		}
		if a.PairsChecked >= exhaustive.PairsChecked {
			t.Fatalf("sampled mode checked %d pairs, exhaustive %d — cap had no effect",
				a.PairsChecked, exhaustive.PairsChecked)
		}
		b := Run(res, Options{SkipFastGrid: true, SpacingSampleCap: cap, SpacingSampleSeed: 42})
		if b.PairsChecked != a.PairsChecked || len(b.Violations) != len(a.Violations) {
			t.Fatalf("same seed, different run: %d/%d pairs, %d/%d violations",
				a.PairsChecked, b.PairsChecked, len(a.Violations), len(b.Violations))
		}
	})

	t.Run("mutation self-test", func(t *testing.T) {
		exp := reconstruct(res)
		planted := shapegrid.Shape{
			Rect:  res.Chip.Area,
			Net:   int32(len(res.Chip.Nets)),
			Class: rules.ClassStandard,
			Ripup: shapegrid.RipupNever,
			Kind:  shapegrid.KindWire,
		}
		exp.planes[planeKey{0, false}][planted] = true
		for _, seed := range []int64{0, 1, 99} {
			rep := &Report{}
			checkSpacing(rep, res, exp, Options{SpacingSampleCap: cap, SpacingSampleSeed: seed})
			if !rep.SpacingSampled {
				t.Fatalf("seed %d: plane below cap, sampled mode never engaged", seed)
			}
			found := false
			for _, v := range rep.Violations {
				if v.Pass == "spacing" && strings.Contains(v.Detail, "exceeds audit") {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed %d: sampled pass missed the planted violation", seed)
			}
		}
	})
}
