package verify

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/incremental"
)

// The golden regression corpus: every minimal reproducer the fuzz
// harness (cmd/routefuzz) has printed is checked into testdata/ as a
// JSON scenario and replayed here as an ordinary test case, so CI never
// depends on re-fuzzing to keep an old bug fixed. Add a file, not code:
// the loader runs whatever it finds.
//
// Schema (unknown fields are rejected):
//
//	{
//	  "name":        "short-slug",
//	  "comment":     "what the bug was / why this scenario is pinned",
//	  "gen":         {chip.GenParams fields},
//	  "options":     {"Seed": n, "Workers": n, "SkipGlobal": b, "UsePFuture": b},
//	  "determinism": [workersA, workersB],          // optional double-run
//	  "eco":         {"DeltaSeed": n, "WorkersB": n, // optional ECO check
//	                  "Gen": {incremental.GenConfig fields}}
//	}
type corpusCase struct {
	Name        string
	Comment     string
	Gen         chip.GenParams
	Options     corpusOptions
	Determinism []int
	Eco         *corpusEco
}

type corpusOptions struct {
	Seed       int64
	Workers    int
	SkipGlobal bool
	UsePFuture bool
}

type corpusEco struct {
	DeltaSeed int64
	WorkersB  int
	Gen       incremental.GenConfig
}

func (o corpusOptions) core() core.Options {
	return core.Options{
		Seed: o.Seed, Workers: o.Workers,
		SkipGlobal: o.SkipGlobal, UsePFuture: o.UsePFuture,
	}
}

func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("golden corpus is empty — testdata/*.json missing")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var tc corpusCase
		if err := dec.Decode(&tc); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if tc.Name == "" || tc.Comment == "" {
			t.Fatalf("%s: corpus cases need a name and a comment", f)
		}
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			ctx := context.Background()
			if tc.Eco != nil {
				viol := ECOEquivalence(ctx, tc.Gen, tc.Options.core(), ECOOptions{
					DeltaSeed: tc.Eco.DeltaSeed,
					Gen:       tc.Eco.Gen,
					WorkersB:  tc.Eco.WorkersB,
				})
				for _, v := range viol {
					t.Errorf("%s", v)
				}
				return
			}
			res := core.RouteBonnRoute(ctx, chip.Generate(tc.Gen), tc.Options.core())
			for _, v := range Run(res, Options{}).Violations {
				t.Errorf("%s", v)
			}
			if len(tc.Determinism) == 2 {
				viol := Determinism(ctx, tc.Gen, tc.Options.core(),
					tc.Determinism[0], tc.Determinism[1])
				for _, v := range viol {
					t.Errorf("%s", v)
				}
			}
		})
	}
}
