package verify

import (
	"context"
	"fmt"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
)

// Determinism runs the BonnRoute flow twice on independently generated
// copies of the same chip — same seed, different worker counts — and
// returns every observable difference. The parallel rounds partition
// work into interaction-disjoint region tasks whose work-stealing
// assignment cannot affect committed wiring, and failures merge in
// canonical task order, so the outcome must be bit-identical
// regardless of Workers; any difference is a scheduling leak
// (iteration-order dependence, racy tie-break, shared-state
// corruption).
func Determinism(ctx context.Context, params chip.GenParams, opt core.Options, workersA, workersB int) []Violation {
	run := func(workers int) *core.Result {
		o := opt
		o.Workers = workers
		return core.RouteBonnRoute(ctx, chip.Generate(params), o)
	}
	a := run(workersA)
	b := run(workersB)
	viol := CompareResults(a, b)
	for i := range viol {
		viol[i].Detail = fmt.Sprintf("Workers %d vs %d: %s", workersA, workersB, viol[i].Detail)
	}
	return viol
}

// CompareResults returns the observable differences between two flow
// results that determinism requires to be identical: the quality
// metrics, the global-routing lambda, the per-net reported geometry,
// and the per-net committed segments.
func CompareResults(a, b *core.Result) []Violation {
	p := &reporter{rep: &Report{}, pass: "determinism"}
	am, bm := a.Metrics, b.Metrics
	if am.Netlength != bm.Netlength {
		p.addf("netlength %d != %d", am.Netlength, bm.Netlength)
	}
	if am.Vias != bm.Vias {
		p.addf("vias %d != %d", am.Vias, bm.Vias)
	}
	if am.Errors != bm.Errors {
		p.addf("errors %d != %d", am.Errors, bm.Errors)
	}
	if am.Unrouted != bm.Unrouted {
		p.addf("unrouted %d != %d", am.Unrouted, bm.Unrouted)
	}
	if am.Scenic25 != bm.Scenic25 || am.Scenic50 != bm.Scenic50 {
		p.addf("scenic %d/%d != %d/%d", am.Scenic25, am.Scenic50, bm.Scenic25, bm.Scenic50)
	}
	if a.Global != nil && b.Global != nil && a.Global.Lambda != b.Global.Lambda {
		p.addf("lambda %v != %v", a.Global.Lambda, b.Global.Lambda)
	}
	if len(a.PerNet) != len(b.PerNet) {
		p.addf("per-net report length %d != %d", len(a.PerNet), len(b.PerNet))
	} else {
		for ni := range a.PerNet {
			if a.PerNet[ni] != b.PerNet[ni] {
				p.addf("net %d geometry %+v != %+v", ni, a.PerNet[ni], b.PerNet[ni])
			}
		}
	}
	if a.Router != nil && b.Router != nil && a.Chip != nil && b.Chip != nil &&
		len(a.Chip.Nets) == len(b.Chip.Nets) {
		for ni := range a.Chip.Nets {
			sa, sb := a.Router.Segments(ni), b.Router.Segments(ni)
			if len(sa) != len(sb) {
				p.addf("net %d segment count %d != %d", ni, len(sa), len(sb))
				continue
			}
			for i := range sa {
				if sa[i] != sb[i] {
					p.addf("net %d segment %d: %+v != %+v", ni, i, sa[i], sb[i])
					break
				}
			}
		}
	}
	return p.rep.Violations
}
