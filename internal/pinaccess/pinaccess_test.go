package pinaccess

import (
	"testing"

	"bonnroute/internal/blockgrid"
	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
	"bonnroute/internal/tracks"
)

func testChipAndTracks() (*chip.Chip, *tracks.Graph) {
	c := chip.Generate(chip.GenParams{Seed: 1, Rows: 3, Cols: 8, NumNets: 10})
	dirs := make([]geom.Direction, c.NumLayers())
	coords := make([][]int, c.NumLayers())
	for z := 0; z < c.NumLayers(); z++ {
		dirs[z] = c.Dir(z)
		lr := c.Deck.Layers[z]
		span := c.Area.Span(c.Dir(z).Perp())
		for t := span.Lo + lr.Pitch/2; t < span.Hi; t += lr.Pitch {
			coords[z] = append(coords[z], t)
		}
	}
	return c, tracks.BuildGraph(c.Area, dirs, coords)
}

func TestBuildCatalogue(t *testing.T) {
	c, tg := testChipAndTracks()
	// Pick a cell with ≥ 2 pins.
	cellIdx := -1
	for i := range c.Cells {
		if len(c.Protos[c.Cells[i].Proto].Pins) >= 2 {
			cellIdx = i
			break
		}
	}
	if cellIdx < 0 {
		t.Skip("no multi-pin cell")
	}
	cat := BuildCatalogue(c, tg, cellIdx, Params{})
	proto := &c.Protos[c.Cells[cellIdx].Proto]
	if len(cat.PerPin) != len(proto.Pins) {
		t.Fatalf("catalogue size %d != pins %d", len(cat.PerPin), len(proto.Pins))
	}
	gotAny := false
	for pi, cands := range cat.PerPin {
		for _, a := range cands {
			gotAny = true
			// Every candidate is τ-feasible.
			tau := c.Deck.Layers[a.Layer].MinSegLen
			if !blockgrid.SegmentsOK(a.Points, tau, nil) {
				t.Fatalf("pin %d: candidate violates τ: %v", pi, a.Points)
			}
			// Endpoint is the last waypoint.
			if a.Points[len(a.Points)-1] != a.End {
				t.Fatalf("pin %d: endpoint mismatch", pi)
			}
		}
		// Candidates sorted by length.
		for i := 1; i < len(cands); i++ {
			if cands[i].Length < cands[i-1].Length {
				t.Fatalf("pin %d: candidates unsorted", pi)
			}
		}
	}
	if !gotAny {
		t.Fatal("no candidates generated at all")
	}
	// The chosen selection must be pairwise conflict-free.
	hw := c.Deck.Layers[0].MinWidth / 2
	sp := c.Deck.Layers[0].Spacing[0].Spacing
	for pi := range cat.Chosen {
		if cat.Chosen[pi] < 0 {
			continue
		}
		a := &cat.PerPin[pi][cat.Chosen[pi]]
		for qi := pi + 1; qi < len(cat.Chosen); qi++ {
			if cat.Chosen[qi] < 0 {
				continue
			}
			b := &cat.PerPin[qi][cat.Chosen[qi]]
			if Conflicts(a, b, hw, sp) {
				t.Fatalf("chosen paths of pins %d and %d conflict", pi, qi)
			}
		}
	}
}

func TestCatalogueTranslation(t *testing.T) {
	a := AccessPath{
		Pin: 0, Layer: 0,
		Points: []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		End:    geom.Pt(10, 0), Length: 10,
	}
	b := a.Translated(geom.Pt(100, 50))
	if b.Points[0] != geom.Pt(100, 50) || b.End != geom.Pt(110, 50) {
		t.Fatalf("translation wrong: %+v", b)
	}
	// Original untouched.
	if a.Points[0] != geom.Pt(0, 0) {
		t.Fatal("translation mutated the source")
	}
}

func TestClassKeySharing(t *testing.T) {
	c, _ := testChipAndTracks()
	pitch := c.Deck.Layers[0].Pitch
	byKey := map[string][]int{}
	for i := range c.Cells {
		byKey[ClassKey(c, i, pitch)] = append(byKey[ClassKey(c, i, pitch)], i)
	}
	if len(byKey) >= len(c.Cells) {
		t.Fatalf("no class sharing: %d classes for %d cells", len(byKey), len(c.Cells))
	}
	// Same class ⇒ same prototype and mirroring.
	for _, cells := range byKey {
		for _, i := range cells[1:] {
			if c.Cells[i].Proto != c.Cells[cells[0]].Proto ||
				c.Cells[i].Mirrored != c.Cells[cells[0]].Mirrored {
				t.Fatal("class mixes prototypes")
			}
		}
	}
}

// TestFigure7ConflictFree reproduces the paper's Fig. 7 situation: pins
// whose greedy nearest-endpoint choices collide, while a conflict-free
// selection exists and is found.
func TestFigure7ConflictFree(t *testing.T) {
	mk := func(pin int, pts ...geom.Point) AccessPath {
		l := 0
		for i := 1; i < len(pts); i++ {
			l += pts[i-1].Dist1(pts[i])
		}
		return AccessPath{Pin: pin, Layer: 0, Points: pts, End: pts[len(pts)-1], Length: l}
	}
	// Pin 0 at (40,0), pin 1 at (50,30) / (40,30). The short choices
	// collide near (50,0)–(50,12); each long alternative is clean with
	// the other pin's short choice.
	perPin := [][]AccessPath{
		{mk(0, geom.Pt(40, 0), geom.Pt(50, 0)), mk(0, geom.Pt(40, 0), geom.Pt(20, 0))},
		{mk(1, geom.Pt(50, 30), geom.Pt(50, 12)), mk(1, geom.Pt(40, 30), geom.Pt(100, 30))},
	}
	conflict := func(a, b *AccessPath) bool { return Conflicts(a, b, 4, 12) }
	// Greedy would pick A0 and B0 which conflict (segments 8 apart < 12).
	if !conflict(&perPin[0][0], &perPin[1][0]) {
		t.Fatal("test setup: greedy pair must conflict")
	}
	sel, nodes, ok := ConflictFree(perPin, conflict)
	if !ok {
		t.Fatal("no conflict-free solution found")
	}
	a := &perPin[0][sel[0]]
	b := &perPin[1][sel[1]]
	if conflict(a, b) {
		t.Fatal("selected paths conflict")
	}
	if nodes <= 0 {
		t.Fatalf("branch-and-bound node count not reported: %d", nodes)
	}
}

func TestConflictFreeInfeasible(t *testing.T) {
	mk := func(pin int, pts ...geom.Point) AccessPath {
		return AccessPath{Pin: pin, Layer: 0, Points: pts, End: pts[len(pts)-1], Length: 10}
	}
	// Both pins have exactly one candidate and those collide.
	perPin := [][]AccessPath{
		{mk(0, geom.Pt(0, 0), geom.Pt(10, 0))},
		{mk(1, geom.Pt(0, 2), geom.Pt(10, 2))},
	}
	_, _, ok := ConflictFree(perPin, func(a, b *AccessPath) bool { return Conflicts(a, b, 4, 12) })
	if ok {
		t.Fatal("expected infeasibility")
	}
}

func TestConflictFreeEmptyPins(t *testing.T) {
	sel, _, ok := ConflictFree([][]AccessPath{nil, nil}, func(a, b *AccessPath) bool { return false })
	if !ok || sel[0] != -1 || sel[1] != -1 {
		t.Fatalf("empty pins: %v %v", sel, ok)
	}
}

func TestConflictsGeometry(t *testing.T) {
	mk := func(pts ...geom.Point) AccessPath {
		return AccessPath{Layer: 0, Points: pts}
	}
	a := mk(geom.Pt(0, 0), geom.Pt(100, 0))
	// Parallel at distance 20 edge-to-edge with hw=4: centers 28 apart.
	b := mk(geom.Pt(0, 28), geom.Pt(100, 28))
	if Conflicts(&a, &b, 4, 20) {
		t.Fatal("paths 20 apart with spacing 20 must not conflict")
	}
	cPath := mk(geom.Pt(0, 27), geom.Pt(100, 27))
	if !Conflicts(&a, &cPath, 4, 20) {
		t.Fatal("paths 19 apart with spacing 20 must conflict")
	}
	// Different layers never conflict.
	d := mk(geom.Pt(0, 0), geom.Pt(100, 0))
	d.Layer = 1
	if Conflicts(&a, &d, 4, 20) {
		t.Fatal("cross-layer conflict")
	}
}

// The branch and bound must find the optimal (minimum total length)
// selection on a small instance where greedy fails.
func TestConflictFreeOptimality(t *testing.T) {
	mk := func(pin, length int, endX int) AccessPath {
		return AccessPath{
			Pin: pin, Layer: 0,
			Points: []geom.Point{geom.Pt(0, pin*100), geom.Pt(endX, pin*100)},
			End:    geom.Pt(endX, pin*100), Length: length,
		}
	}
	// No geometric conflicts (pins far apart): optimum = pick shortest
	// everywhere.
	perPin := [][]AccessPath{
		{mk(0, 30, 30), mk(0, 10, 10)},
		{mk(1, 5, 5), mk(1, 50, 50)},
	}
	sel, _, ok := ConflictFree(perPin, func(a, b *AccessPath) bool { return false })
	if !ok {
		t.Fatal("no solution")
	}
	total := perPin[0][sel[0]].Length + perPin[1][sel[1]].Length
	if total != 15 {
		t.Fatalf("total = %d, want 15", total)
	}
}
