// Package pinaccess implements BonnRoute's off-track pin access (paper
// §4.3): for each pin a catalogue of several DRC-clean access paths
// connecting it to nearby on-track points is precomputed with the
// τ-feasible blockage-grid search (§3.8); per circuit a conflict-free
// selection — one path per pin, pairwise clean also under diff-net rules
// — is found by branch and bound with destructive bounding, scored by
// endpoint spreading, blocked tracks, and length (Fig. 7). Catalogues
// are shared between geometrically equivalent cell instances (circuit
// classes).
package pinaccess

import (
	"fmt"
	"sort"

	"bonnroute/internal/blockgrid"
	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
	"bonnroute/internal/tracks"
)

// AccessPath is one candidate connection from a pin to an on-track point.
type AccessPath struct {
	// Pin is the prototype pin index.
	Pin int
	// Layer is the wiring layer the path runs on.
	Layer int
	// Points runs from a point on the pin metal to End; all segments
	// honour the layer's minimum segment length.
	Points []geom.Point
	// End is the on-track endpoint (a track-graph vertex position).
	End geom.Point
	// Length is the total ℓ1 length.
	Length int
}

// Translated returns the path moved by offset (instance placement).
func (a AccessPath) Translated(off geom.Point) AccessPath {
	out := a
	out.Points = make([]geom.Point, len(a.Points))
	for i, p := range a.Points {
		out.Points[i] = p.Add(off)
	}
	out.End = a.End.Add(off)
	return out
}

// Ref is a compact reference to an access-path instance: a pointer to
// the shared prototype-frame path (owned by a catalogue and shared by
// every cell instance of the circuit class) plus the instance's
// placement offset. The detail router stores one Ref per pin — 24 bytes,
// no allocation — instead of a translated per-pin copy of the whole
// path, which is what keeps pin-access bookkeeping affordable at 10⁵
// nets. Paths that are inherently per-pin (dynamic stubs, ECO hints)
// wrap their own AccessPath with a zero offset.
type Ref struct {
	Path *AccessPath
	Off  geom.Point
}

// Valid reports whether the ref points at a path.
func (r Ref) Valid() bool { return r.Path != nil }

// Layer returns the wiring layer the path runs on.
func (r Ref) Layer() int { return r.Path.Layer }

// NumPoints returns the number of path points.
func (r Ref) NumPoints() int { return len(r.Path.Points) }

// Point returns the i-th path point in the instance frame.
func (r Ref) Point(i int) geom.Point { return r.Path.Points[i].Add(r.Off) }

// End returns the on-track endpoint in the instance frame.
func (r Ref) End() geom.Point { return r.Path.End.Add(r.Off) }

// Length returns the total ℓ1 length (translation-invariant).
func (r Ref) Length() int { return r.Path.Length }

// Materialize returns a standalone instance-frame copy of the path.
func (r Ref) Materialize() *AccessPath {
	ap := r.Path.Translated(r.Off)
	return &ap
}

// Catalogue holds the candidate paths of one circuit class.
type Catalogue struct {
	// PerPin[pi] lists candidates for prototype pin pi, best first.
	PerPin [][]AccessPath
	// Chosen[pi] indexes the conflict-free primary access path per pin
	// (-1 when the pin has no candidates).
	Chosen []int
	// BBNodes is the number of branch-and-bound search nodes expanded by
	// the conflict-free selection for this catalogue (an observability
	// statistic: the §4.3 search effort).
	BBNodes int
}

// Params tune catalogue construction.
type Params struct {
	// Radius is how far (in DBU) from the pin on-track endpoints are
	// sought; 0 uses 4 pitches.
	Radius int
	// MaxCandidates bounds the catalogue size per pin; 0 uses 6.
	MaxCandidates int
	// Spacing is the diff-net clearance used in the pairwise conflict
	// test; 0 uses the layer-0 base spacing.
	Spacing int
	// HalfWidth is the wire half-width of access metal; 0 derives it
	// from the deck.
	HalfWidth int
}

// ClassKey identifies the circuit class of a placed cell: prototype,
// mirroring, and the cell origin's phase relative to the track lattice
// (cells whose surroundings align identically share catalogues; the
// synthetic generator places cells on slot multiples, so the phase is
// usually constant).
func ClassKey(c *chip.Chip, cellIdx int, pitch int) string {
	cell := &c.Cells[cellIdx]
	return fmt.Sprintf("p%d-m%v-ox%d-oy%d",
		cell.Proto, cell.Mirrored, cell.Origin.X%pitch, cell.Origin.Y%pitch)
}

// BuildCatalogue computes the access-path catalogue of the circuit class
// represented by cell cellIdx, in instance coordinates of that cell (the
// caller translates for other instances of the same class by the origin
// difference).
func BuildCatalogue(c *chip.Chip, tg *tracks.Graph, cellIdx int, p Params) *Catalogue {
	cell := &c.Cells[cellIdx]
	proto := &c.Protos[cell.Proto]
	deck := c.Deck
	pitch := deck.Layers[0].Pitch
	if p.Radius <= 0 {
		p.Radius = 4 * pitch
	}
	if p.MaxCandidates <= 0 {
		p.MaxCandidates = 6
	}
	if p.Spacing <= 0 {
		p.Spacing = deck.Layers[0].Spacing[0].Spacing
	}
	if p.HalfWidth <= 0 {
		p.HalfWidth = deck.Layers[0].MinWidth / 2
	}

	cat := &Catalogue{
		PerPin: make([][]AccessPath, len(proto.Pins)),
		Chosen: make([]int, len(proto.Pins)),
	}

	// One searcher serves every endpoint probe of the catalogue, so the
	// grid and Dijkstra buffers are built once per class, not per probe.
	sr := blockgrid.NewSearcher()

	// Obstacles per layer in instance coordinates: cell blockages plus
	// the other pins of the same cell, inflated by half-width + spacing.
	infl := p.HalfWidth + p.Spacing
	obstaclesFor := func(pi, layer int) []geom.Rect {
		var out []geom.Rect
		for _, b := range proto.Blockages {
			if b.Layer == layer {
				out = append(out, cellRect(c, cell, b.Rect).Expanded(infl))
			}
		}
		for qi, shapes := range proto.Pins {
			if qi == pi {
				continue
			}
			for _, ps := range shapes {
				if ps.Layer == layer {
					out = append(out, cellRect(c, cell, ps.Rect).Expanded(infl))
				}
			}
		}
		return out
	}

	for pi, shapes := range proto.Pins {
		cat.Chosen[pi] = -1
		for _, ps := range shapes {
			layer := ps.Layer
			rect := cellRect(c, cell, ps.Rect)
			tau := deck.Layers[layer].MinSegLen
			start := rect.Center()
			bounds := rect.Expanded(p.Radius + 2*tau)
			obst := obstaclesFor(pi, layer)

			for _, end := range onTrackEndpoints(tg, layer, rect, p.Radius) {
				pts, length, ok := sr.Search(obst, start, end, tau, bounds)
				if !ok {
					continue
				}
				cat.PerPin[pi] = append(cat.PerPin[pi], AccessPath{
					Pin: pi, Layer: layer,
					Points: blockgrid.MergeCollinear(pts),
					End:    end, Length: length,
				})
			}
		}
		sort.Slice(cat.PerPin[pi], func(a, b int) bool {
			return cat.PerPin[pi][a].Length < cat.PerPin[pi][b].Length
		})
		if len(cat.PerPin[pi]) > p.MaxCandidates {
			cat.PerPin[pi] = cat.PerPin[pi][:p.MaxCandidates]
		}
	}

	sel, nodes, ok := ConflictFree(cat.PerPin, func(a, b *AccessPath) bool {
		return Conflicts(a, b, p.HalfWidth, p.Spacing)
	})
	cat.BBNodes = nodes
	if ok {
		copy(cat.Chosen, sel)
	} else {
		// Degenerate fallback: greedy per pin (some pins lose access).
		for pi := range cat.PerPin {
			if len(cat.PerPin[pi]) > 0 {
				cat.Chosen[pi] = 0
			}
		}
	}
	return cat
}

func cellRect(c *chip.Chip, cell *chip.Cell, r geom.Rect) geom.Rect {
	if cell.Mirrored {
		proto := &c.Protos[cell.Proto]
		w := proto.Size.XMax
		r = geom.Rect{XMin: w - r.XMax, YMin: r.YMin, XMax: w - r.XMin, YMax: r.YMax}
	}
	return r.Translated(cell.Origin)
}

// onTrackEndpoints lists track-graph vertices of the layer within radius
// of the pin, nearest first.
func onTrackEndpoints(tg *tracks.Graph, layer int, pin geom.Rect, radius int) []geom.Point {
	if layer >= tg.NumLayers() {
		return nil
	}
	l := &tg.Layers[layer]
	ctr := pin.Center()
	win := pin.Expanded(radius)
	var out []geom.Point
	ortho := win.Span(l.Dir.Perp())
	along := win.Span(l.Dir)
	for _, tc := range l.TracksRange(ortho.Lo, ortho.Hi) {
		for _, cc := range l.CrossRange(along.Lo, along.Hi) {
			var pt geom.Point
			if l.Dir == geom.Horizontal {
				pt = geom.Pt(cc, tc)
			} else {
				pt = geom.Pt(tc, cc)
			}
			out = append(out, pt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return ctr.Dist1(out[i]) < ctr.Dist1(out[j]) })
	if len(out) > 24 {
		out = out[:24]
	}
	return out
}

// Conflicts reports whether two access paths (of different pins, hence
// different nets) violate the diff-net clearance: any pair of their
// metal segments closer than spacing. Paths on different layers never
// conflict.
func Conflicts(a, b *AccessPath, halfWidth, spacing int) bool {
	if a.Layer != b.Layer {
		return false
	}
	for i := 1; i < len(a.Points); i++ {
		ra := segMetal(a.Points[i-1], a.Points[i], halfWidth)
		for j := 1; j < len(b.Points); j++ {
			rb := segMetal(b.Points[j-1], b.Points[j], halfWidth)
			if ra.Dist2Sq(rb) < int64(spacing)*int64(spacing) {
				return true
			}
		}
	}
	return false
}

func segMetal(a, b geom.Point, hw int) geom.Rect {
	return geom.MinkowskiSeg(geom.Rect{XMin: -hw, YMin: -hw, XMax: hw, YMax: hw}, a, b)
}

// ConflictFree selects one candidate per pin such that the selection is
// pairwise conflict-free and the total score — path length minus an
// endpoint-spreading bonus — is minimal. It is the branch and bound with
// destructive bounding of §4.3: candidates that conflict with every
// candidate of some other pin are deleted up front (and recursively), and
// the search prunes on a partial-cost lower bound. ok is false when no
// conflict-free selection exists. Pins without candidates are skipped
// (their selection stays -1). nodes reports how many branch-and-bound
// search nodes were expanded — the per-circuit effort statistic the
// observability layer surfaces.
func ConflictFree(perPin [][]AccessPath, conflict func(a, b *AccessPath) bool) (sel []int, nodes int, ok bool) {
	n := len(perPin)
	sel = make([]int, n)
	for i := range sel {
		sel[i] = -1
	}
	// Active pins (with candidates), ordered fewest-candidates-first.
	var order []int
	for pi := range perPin {
		if len(perPin[pi]) > 0 {
			order = append(order, pi)
		}
	}
	if len(order) == 0 {
		return sel, 0, true
	}

	// Destructive bounding: repeatedly delete candidates that conflict
	// with all candidates of another pin.
	alive := make([][]bool, n)
	for pi := range perPin {
		alive[pi] = make([]bool, len(perPin[pi]))
		for ci := range alive[pi] {
			alive[pi][ci] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for _, pi := range order {
			for ci := range perPin[pi] {
				if !alive[pi][ci] {
					continue
				}
				for _, qi := range order {
					if qi == pi {
						continue
					}
					allConflict := true
					for di := range perPin[qi] {
						if alive[qi][di] && !conflict(&perPin[pi][ci], &perPin[qi][di]) {
							allConflict = false
							break
						}
					}
					if allConflict {
						alive[pi][ci] = false
						changed = true
						break
					}
				}
			}
		}
	}
	for _, pi := range order {
		any := false
		for _, a := range alive[pi] {
			if a {
				any = true
				break
			}
		}
		if !any {
			return sel, nodes, false
		}
	}

	sort.Slice(order, func(i, j int) bool {
		return countAlive(alive[order[i]]) < countAlive(alive[order[j]])
	})

	best := int(^uint(0) >> 2)
	bestSel := make([]int, n)
	found := false
	cur := make([]int, n)
	for i := range cur {
		cur[i] = -1
	}

	// Lower bound of remaining pins: each at least its cheapest alive
	// candidate.
	minRest := make([]int, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		pi := order[i]
		cheapest := int(^uint(0) >> 2)
		for ci := range perPin[pi] {
			if alive[pi][ci] && perPin[pi][ci].Length < cheapest {
				cheapest = perPin[pi][ci].Length
			}
		}
		minRest[i] = minRest[i+1] + cheapest
	}

	// The spreading bonus subtracts up to maxBonus from a completed
	// selection; the prune bound must concede it.
	maxBonus := 0
	for i, pi := range order {
		for _, qi := range order[i+1:] {
			for ci := range perPin[pi] {
				for di := range perPin[qi] {
					if d := perPin[pi][ci].End.Dist1(perPin[qi][di].End) / 8; d > maxBonus {
						maxBonus = d
					}
				}
			}
		}
	}

	var rec func(i, cost int)
	rec = func(i, cost int) {
		nodes++
		if cost+minRest[i]-maxBonus >= best {
			return
		}
		if i == len(order) {
			total := cost - spreadBonus(perPin, cur, order)
			if total < best {
				best = total
				copy(bestSel, cur)
				found = true
			}
			return
		}
		pi := order[i]
		for ci := range perPin[pi] {
			if !alive[pi][ci] {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				qi := order[j]
				if conflict(&perPin[pi][ci], &perPin[qi][cur[qi]]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur[pi] = ci
			rec(i+1, cost+perPin[pi][ci].Length)
			cur[pi] = -1
		}
	}
	rec(0, 0)
	if !found {
		return sel, nodes, false
	}
	return bestSel, nodes, true
}

// spreadBonus rewards selections whose endpoints are far apart (the
// §4.3 spreading criterion anticipating local congestion).
func spreadBonus(perPin [][]AccessPath, sel []int, order []int) int {
	minD := int(^uint(0) >> 2)
	cnt := 0
	for i, pi := range order {
		for _, qi := range order[i+1:] {
			a := &perPin[pi][sel[pi]]
			b := &perPin[qi][sel[qi]]
			if d := a.End.Dist1(b.End); d < minD {
				minD = d
			}
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	// Spreading is a tiebreaker relative to path length: anticipating
	// congestion must not buy detours wholesale.
	return minD / 8
}

func countAlive(a []bool) int {
	n := 0
	for _, x := range a {
		if x {
			n++
		}
	}
	return n
}
