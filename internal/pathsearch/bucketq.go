package pathsearch

import "math/bits"

// pqItem is a priority-queue entry: either a fresh label (side 0), a sweep
// continuation for one frontier of a label (side ±1), or a node-search
// state (label = state index). seq is the global insertion counter; equal
// keys pop newest-first (LIFO), so pop order — and therefore routing
// output — is identical between the bucket queue and the heap fallback,
// and deterministic across runs. LIFO ties finish the most recent
// exploration before revisiting equal-cost alternatives, which measures
// slightly better route quality than FIFO on the benchmark chips.
type pqItem struct {
	key   int
	seq   int32
	label int32
	side  int8
}

func (a pqItem) less(b pqItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq > b.seq
}

// pqHeap is a concrete-typed binary min-heap ordered by (key, seq).
// Hand-rolled sift avoids the interface{} boxing of container/heap, which
// costs one allocation per Push.
type pqHeap []pqItem

func (h *pqHeap) push(it pqItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].less(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *pqHeap) pop() pqItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l].less(s[m]) {
			m = l
		}
		if r < n && s[r].less(s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// bucketWindow is the key window of the Dial queue. It must exceed the
// maximum key increase of a single queue event (≈ 2× the largest edge
// cost); beginSearch verifies this and falls back to the heap otherwise.
const (
	bucketWindow = 1 << 13
	bucketMask   = bucketWindow - 1
)

// bucketQueue is a monotone Dial-style priority queue for integer keys.
// Keys within the active window [cur, cur+bucketWindow) map to one bucket
// each (popped newest-first); an occupancy bitset finds the next nonempty
// bucket.
// Keys outside the window — including keys below the cursor, which a
// locally-infeasible π_P can produce — overflow into a (key, seq) heap
// consulted on every pop, so ordering stays exact, not just approximate.
type bucketQueue struct {
	buckets [bucketWindow][]pqItem
	occ     [bucketWindow / 64]uint64
	cur     int
	n       int // items held in buckets
	started bool
	over    pqHeap
}

func (q *bucketQueue) reset() {
	for w, bm := range q.occ {
		for bm != 0 {
			b := w*64 + bits.TrailingZeros64(bm)
			bm &= bm - 1
			q.buckets[b] = q.buckets[b][:0]
		}
		q.occ[w] = 0
	}
	q.cur = 0
	q.n = 0
	q.started = false
	q.over = q.over[:0]
}

func (q *bucketQueue) empty() bool { return q.n == 0 && len(q.over) == 0 }

func (q *bucketQueue) push(it pqItem) {
	if !q.started {
		q.started = true
		q.cur = it.key
	}
	if it.key < q.cur || it.key >= q.cur+bucketWindow {
		q.over.push(it)
		return
	}
	b := it.key & bucketMask
	q.buckets[b] = append(q.buckets[b], it)
	q.occ[b/64] |= 1 << (b % 64)
	q.n++
}

// nextBucket returns the smallest occupied bucket key ≥ cur, scanning the
// occupancy bitset forward from the cursor with wrap-around. Every stored
// item has key in [cur, cur+bucketWindow), so cyclic distance from the
// cursor bit is exactly key − cur. Caller guarantees n > 0.
func (q *bucketQueue) nextBucket() int {
	start := q.cur & bucketMask
	w, off := start>>6, start&63
	if bm := q.occ[w] >> off; bm != 0 {
		return q.cur + bits.TrailingZeros64(bm)
	}
	for i := 1; i <= len(q.occ); i++ {
		wi := (w + i) & (len(q.occ) - 1)
		if bm := q.occ[wi]; bm != 0 {
			return q.cur + i*64 - off + bits.TrailingZeros64(bm)
		}
	}
	panic("pathsearch: bucket queue occupancy desync")
}

func (q *bucketQueue) pop() (pqItem, bool) {
	if q.empty() {
		return pqItem{}, false
	}
	var bkey = -1
	if q.n > 0 {
		bkey = q.nextBucket()
	}
	// Merge the overflow heap by (key, seq): all in-window items of one
	// key share one bucket and pop newest-first, so comparing the bucket
	// back against the overflow top yields the exact global order.
	if len(q.over) > 0 {
		if q.n == 0 {
			it := q.over.pop()
			if it.key > q.cur {
				q.cur = it.key
			}
			return it, true
		}
		top := q.over[0]
		b := bkey & bucketMask
		front := q.buckets[b][len(q.buckets[b])-1]
		if top.less(front) {
			it := q.over.pop()
			if it.key > q.cur {
				q.cur = it.key
			}
			return it, true
		}
	}
	b := bkey & bucketMask
	last := len(q.buckets[b]) - 1
	it := q.buckets[b][last]
	q.buckets[b] = q.buckets[b][:last]
	q.n--
	if last == 0 {
		q.occ[b/64] &^= 1 << (b % 64)
	}
	q.cur = it.key
	return it, true
}

// searchQueue is the queue facade the searches use: the Dial bucket queue
// when edge costs permit (integer keys, bounded step), the binary heap
// otherwise. Both pop in (key asc, seq desc) order, so the choice cannot
// change routing results.
type searchQueue struct {
	useBuckets bool
	bq         *bucketQueue
	hq         pqHeap
}

func (q *searchQueue) reset(useBuckets bool) {
	q.useBuckets = useBuckets
	q.hq = q.hq[:0]
	if useBuckets {
		if q.bq == nil {
			q.bq = &bucketQueue{}
		}
		q.bq.reset()
	}
}

func (q *searchQueue) push(it pqItem) {
	if q.useBuckets {
		q.bq.push(it)
	} else {
		q.hq.push(it)
	}
}

func (q *searchQueue) pop() (pqItem, bool) {
	if q.useBuckets {
		return q.bq.pop()
	}
	if len(q.hq) == 0 {
		return pqItem{}, false
	}
	return q.hq.pop(), true
}

func (q *searchQueue) empty() bool {
	if q.useBuckets {
		return q.bq.empty()
	}
	return len(q.hq) == 0
}
