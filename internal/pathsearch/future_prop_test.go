package pathsearch

import (
	"fmt"
	"math/rand"
	"testing"

	"bonnroute/internal/geom"
)

// futureScenario is one synthetic world + target set the future-cost
// property tests run every π implementation against.
type futureScenario struct {
	name    string
	world   *testWorld
	costs   Costs
	targets map[int][]geom.Rect
	T       []geom.Point3
}

func futureScenarios() []futureScenario {
	mk := func(name string, pts []geom.Point3, block func(w *testWorld)) futureScenario {
		w := newWorld(4, 10, 300)
		if block != nil {
			block(w)
		}
		targets := map[int][]geom.Rect{}
		for _, p := range pts {
			targets[p.Z] = append(targets[p.Z],
				geom.Rect{XMin: p.X, YMin: p.Y, XMax: p.X + 1, YMax: p.Y + 1})
		}
		return futureScenario{
			name: name, world: w, costs: UniformCosts(4, 3, 50),
			targets: targets, T: pts,
		}
	}
	return []futureScenario{
		mk("free", []geom.Point3{geom.Pt3(245, 45, 0)}, nil),
		mk("wall", []geom.Point3{geom.Pt3(245, 45, 0)}, func(w *testWorld) {
			// A wall across the middle of every layer, wide enough to cover
			// whole coarse-grid cells, leaving only a narrow corridor at the
			// top: crossing it forces a long detour the reduced grid must see.
			for z := 0; z < 4; z++ {
				w.block(z, geom.R(120, 0, 200, 280))
			}
		}),
		mk("multi-target", []geom.Point3{
			geom.Pt3(245, 45, 0), geom.Pt3(55, 245, 2), geom.Pt3(155, 155, 1),
		}, func(w *testWorld) {
			w.block(0, geom.R(80, 80, 120, 200))
			w.block(1, geom.R(180, 40, 220, 120))
		}),
	}
}

// trackVertices enumerates the scenario's track-graph vertices.
func trackVertices(w *testWorld) []geom.Point3 {
	var out []geom.Point3
	for z := range w.tg.Layers {
		layer := &w.tg.Layers[z]
		for _, c := range layer.Coords {
			for _, along := range layer.Cross {
				if layer.Dir == geom.Horizontal {
					out = append(out, geom.Pt3(along, c, z))
				} else {
					out = append(out, geom.Pt3(c, along, z))
				}
			}
		}
	}
	return out
}

// buildFutures constructs every FutureCost implementation over the
// scenario, returning name → π plus the per-π feasibility slack the
// coarse grids are allowed (0 for the exact π_H; one cell at the
// crossing axis' heaviest weight for the quantized grids, as documented
// on PFuture.At / RFuture.At).
func buildFutures(sc futureScenario, cell int) (map[string]FutureCost, map[string]int) {
	bounds := sc.world.tg.Area
	blocked := func(z int, cellRect geom.Rect) bool {
		for _, r := range sc.world.blocked[z] {
			if r.ContainsRect(cellRect) {
				return true
			}
		}
		return false
	}
	dirs := make([]geom.Direction, len(sc.world.tg.Layers))
	betaMax := 1
	for z := range dirs {
		dirs[z] = sc.world.tg.Layers[z].Dir
		if sc.costs.BetaJog[z] > betaMax {
			betaMax = sc.costs.BetaJog[z]
		}
	}
	nl := len(dirs)
	pis := map[string]FutureCost{
		"HFuture": NewHFuture(nl, sc.costs, sc.targets),
		"PFuture": NewPFuture(nl, sc.costs, sc.targets, bounds,
			PFutureConfig{Cell: cell, Blocked: blocked}),
		"RFuture": NewRFuture(nl, sc.costs, sc.targets, bounds,
			RFutureConfig{Cell: cell, Dirs: dirs, Blocked: blocked}),
	}
	slack := map[string]int{"HFuture": 0, "PFuture": cell, "RFuture": betaMax * cell}
	return pis, slack
}

// TestFutureFeasibility samples track-graph edges and asserts
// π(u) ≤ c(u,v) + π(v) (+ the documented per-π quantization slack) for
// every FutureCost implementation: the property the goal-directed search
// needs for nonnegative reduced costs.
func TestFutureFeasibility(t *testing.T) {
	const cell = 40
	for _, sc := range futureScenarios() {
		pis, slack := buildFutures(sc, cell)
		verts := trackVertices(sc.world)
		rng := rand.New(rand.NewSource(7))
		check := func(name string, pi FutureCost, u, v geom.Point3, c int) {
			d := pi.At(u.X, u.Y, u.Z) - c - pi.At(v.X, v.Y, v.Z)
			if d > slack[name] {
				t.Fatalf("%s/%s: infeasible edge %v -> %v cost %d: π(u)-c-π(v) = %d > slack %d",
					sc.name, name, u, v, c, d, slack[name])
			}
		}
		// Only edges that exist in the real track graph count: a segment
		// through a blocked rect is NeedNever in the harness config.
		clear := func(z int, a, b geom.Point3) bool {
			seg := geom.Rect{
				XMin: min(a.X, b.X), YMin: min(a.Y, b.Y),
				XMax: max(a.X, b.X) + 1, YMax: max(a.Y, b.Y) + 1,
			}
			for _, r := range sc.world.blocked[z] {
				if r.Intersects(seg) {
					return false
				}
			}
			return true
		}
		for i := 0; i < 4000; i++ {
			u := verts[rng.Intn(len(verts))]
			layer := &sc.world.tg.Layers[u.Z]
			var edges []struct {
				v geom.Point3
				c int
			}
			add := func(v geom.Point3, c int) {
				if u.Z == v.Z && !clear(u.Z, u, v) {
					return
				}
				if u.Z != v.Z && (!clear(u.Z, u, u) || !clear(v.Z, v, v)) {
					return
				}
				edges = append(edges, struct {
					v geom.Point3
					c int
				}{v, c})
			}
			// Along-track step to a random other crossing on the track.
			along := layer.Cross[rng.Intn(len(layer.Cross))]
			if v := u; layer.Dir == geom.Horizontal {
				v.X = along
				add(v, abs(v.X-u.X))
			} else {
				v.Y = along
				add(v, abs(v.Y-u.Y))
			}
			// Jog to the adjacent track.
			ti := layer.TrackAt(geom.Pt(u.X, u.Y).Coord(layer.Dir.Perp()))
			if ti >= 0 && ti+1 < len(layer.Coords) {
				gap := layer.Coords[ti+1] - layer.Coords[ti]
				v := u
				if layer.Dir == geom.Horizontal {
					v.Y += gap
				} else {
					v.X += gap
				}
				add(v, sc.costs.BetaJog[u.Z]*gap)
			}
			// Via up.
			if u.Z+1 < len(sc.world.tg.Layers) {
				add(geom.Pt3(u.X, u.Y, u.Z+1), sc.costs.GammaVia[u.Z])
			}
			for name, pi := range pis {
				for _, e := range edges {
					// Feasibility is symmetric for undirected edges: check
					// both orientations.
					check(name, pi, u, e.v, e.c)
					check(name, pi, e.v, u, e.c)
				}
			}
		}
	}
}

// TestFutureAdmissibility compares every π against exact distances: for
// sampled vertices u, π(u) must not exceed the cost of a shortest path
// from u to the target set (computed by the node-based reference
// Dijkstra with π ≡ 0).
func TestFutureAdmissibility(t *testing.T) {
	const cell = 40
	for _, sc := range futureScenarios() {
		pis, _ := buildFutures(sc, cell)
		verts := trackVertices(sc.world)
		rng := rand.New(rand.NewSource(11))
		cfg := sc.world.config(sc.costs, nil, nil)
		checked := 0
		for i := 0; i < len(verts) && checked < 60; i++ {
			u := verts[rng.Intn(len(verts))]
			if sc.world.isBlocked(u.Z, u.X, u.Y) {
				continue
			}
			p := NodeSearch(cfg, []geom.Point3{u}, sc.T)
			if p == nil {
				continue
			}
			checked++
			for name, pi := range pis {
				if got := pi.At(u.X, u.Y, u.Z); got > p.Cost {
					t.Fatalf("%s/%s: inadmissible at %v: π = %d > exact %d",
						sc.name, name, u, got, p.Cost)
				}
			}
		}
		if checked < 20 {
			t.Fatalf("%s: only %d vertices reached the targets", sc.name, checked)
		}
		// π must vanish on the targets themselves.
		for _, tp := range sc.T {
			for name, pi := range pis {
				if got := pi.At(tp.X, tp.Y, tp.Z); got != 0 {
					t.Fatalf("%s/%s: π(target %v) = %d, want 0", sc.name, name, tp, got)
				}
			}
		}
	}
}

// TestFutureDominance asserts the coarse-grid bounds never fall below
// π_H pointwise (both take the max with it by construction) and that the
// reduced grid actually strengthens the bound somewhere on the detour
// scenario — otherwise the stronger machinery is dead weight.
func TestFutureDominance(t *testing.T) {
	const cell = 40
	for _, sc := range futureScenarios() {
		pis, _ := buildFutures(sc, cell)
		h := pis["HFuture"]
		stronger := 0
		for _, u := range trackVertices(sc.world) {
			hb := h.At(u.X, u.Y, u.Z)
			for _, name := range []string{"PFuture", "RFuture"} {
				if got := pis[name].At(u.X, u.Y, u.Z); got < hb {
					t.Fatalf("%s/%s: %d < π_H %d at %v", sc.name, name, got, hb, u)
				}
			}
			if pis["RFuture"].At(u.X, u.Y, u.Z) > hb {
				stronger++
			}
		}
		if sc.name == "wall" && stronger == 0 {
			t.Fatalf("%s: π_R never exceeds π_H despite the wall", sc.name)
		}
	}
}

// TestRFutureCacheReuse pins the engine-side incremental reuse contract:
// identical re-queries hit (counted in PiReused, pointer-identical), a
// NoteDirty region intersecting the entry's bounds invalidates exactly,
// disjoint dirty regions do not, parameter changes rebuild, and the LRU
// stays bounded.
func TestRFutureCacheReuse(t *testing.T) {
	sc := futureScenarios()[1] // wall
	dirs := make([]geom.Direction, len(sc.world.tg.Layers))
	for z := range dirs {
		dirs[z] = sc.world.tg.Layers[z].Dir
	}
	blocked := func(z int, cellRect geom.Rect) bool { return false }
	bounds := sc.world.tg.Area
	e := NewEngine()

	rf1 := e.RFutureFor(1, 4, sc.costs, dirs, sc.T, bounds, 40, blocked)
	base := e.Stats().PiReused
	rf2 := e.RFutureFor(1, 4, sc.costs, dirs, sc.T, bounds, 40, blocked)
	if rf1 != rf2 || e.Stats().PiReused != base+1 {
		t.Fatalf("identical re-query did not hit (reused %d -> %d)", base, e.Stats().PiReused)
	}

	// A dirty region outside the entry's bounds must not invalidate.
	e.NoteDirty(0, geom.R(10000, 10000, 10010, 10010))
	if rf3 := e.RFutureFor(1, 4, sc.costs, dirs, sc.T, bounds, 40, blocked); rf3 != rf1 {
		t.Fatal("disjoint dirty region invalidated the cache")
	}
	// A dirty region intersecting the bounds must.
	e.NoteDirty(0, geom.R(100, 100, 120, 120))
	if rf4 := e.RFutureFor(1, 4, sc.costs, dirs, sc.T, bounds, 40, blocked); rf4 == rf1 {
		t.Fatal("intersecting dirty region did not invalidate")
	}
	// Changed targets rebuild.
	T2 := append(append([]geom.Point3(nil), sc.T...), geom.Pt3(25, 25, 1))
	if rf5 := e.RFutureFor(1, 4, sc.costs, dirs, T2, bounds, 40, blocked); rf5 == rf1 {
		t.Fatal("changed targets served a stale π")
	}
	// The LRU holds rfCacheSize entries; a sweep of distinct nets evicts
	// the oldest, and the evicted net rebuilds (no hit).
	for net := int32(10); net < int32(10+rfCacheSize); net++ {
		e.RFutureFor(net, 4, sc.costs, dirs, sc.T, bounds, 40, blocked)
	}
	reused := e.Stats().PiReused
	e.RFutureFor(1, 4, sc.costs, dirs, T2, bounds, 40, blocked)
	if e.Stats().PiReused != reused {
		t.Fatal("evicted entry claimed a cache hit")
	}
	if len(e.fc.rf) > rfCacheSize {
		t.Fatalf("cache grew to %d entries (cap %d)", len(e.fc.rf), rfCacheSize)
	}
}

// TestFutureSteadyStateAllocs pins the alloc budget of future-cost
// construction in steady state: engine-cached π requests (the rip-up
// retry / ECO re-query path) must not allocate at all.
func TestFutureSteadyStateAllocs(t *testing.T) {
	sc := futureScenarios()[0]
	dirs := make([]geom.Direction, len(sc.world.tg.Layers))
	for z := range dirs {
		dirs[z] = sc.world.tg.Layers[z].Dir
	}
	blocked := func(z int, cellRect geom.Rect) bool { return false }
	bounds := sc.world.tg.Area
	e := NewEngine()
	e.RFutureFor(3, 4, sc.costs, dirs, sc.T, bounds, 40, blocked)
	e.HFutureFor(3, 4, sc.costs, sc.T)
	allocs := testing.AllocsPerRun(100, func() {
		e.RFutureFor(3, 4, sc.costs, dirs, sc.T, bounds, 40, blocked)
		e.HFutureFor(3, 4, sc.costs, sc.T)
	})
	if allocs > 0 {
		t.Fatalf("cached future-cost requests allocate %.1f/op, want 0", allocs)
	}
}

// TestRFutureEmptyTargets mirrors TestHFutureNoTargets: with nothing to
// aim at, π must be identically zero (a feasible no-op potential).
func TestRFutureEmptyTargets(t *testing.T) {
	rf := NewRFuture(4, UniformCosts(4, 3, 50), nil, geom.R(0, 0, 300, 300),
		RFutureConfig{Cell: 40})
	for _, p := range []geom.Point3{geom.Pt3(0, 0, 0), geom.Pt3(150, 150, 2)} {
		if got := rf.At(p.X, p.Y, p.Z); got != 0 {
			t.Fatalf("π_R%v = %d, want 0", p, got)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

var _ = fmt.Sprintf // keep fmt for debugging helpers
