package pathsearch

import (
	"bonnroute/internal/geom"
)

// FutureCost is the potential function π of the goal-directed search: a
// lower bound on the cost from a vertex to the target set, with π ≡ 0 on
// targets. It must be feasible (reduced costs nonnegative), which both
// implementations guarantee, and 1-Lipschitz along tracks with respect to
// wire cost, which the interval search exploits.
type FutureCost interface {
	At(x, y, z int) int
}

// Costs bundles the edge cost parameters of the track graph (paper
// §4.1): wire cost is ℓ1 length, jogs are scaled by BetaJog per unit, and
// a via between layers z and z+1 costs GammaVia[z].
type Costs struct {
	// BetaJog[z] ≥ 1 is the non-preferred-direction penalty multiplier.
	BetaJog []int
	// GammaVia[v] > 0 is the via cost between wiring layers v and v+1.
	GammaVia []int
}

// UniformCosts builds the usual parameterization: β on every layer, γ per
// via layer.
func UniformCosts(numLayers, beta, gamma int) Costs {
	c := Costs{BetaJog: make([]int, numLayers), GammaVia: make([]int, numLayers-1)}
	for z := range c.BetaJog {
		c.BetaJog[z] = beta
	}
	for v := range c.GammaVia {
		c.GammaVia[v] = gamma
	}
	return c
}

// viaLB computes, per layer, the cheapest via cost to reach any layer
// marked in targetLayers (the lb_via term of π_H, Hetzel 1998).
// targetLayers is indexed by layer; entries beyond its length read false,
// so callers can pass a pooled buffer sized to numLayers.
func viaLB(numLayers int, gamma []int, targetLayers []bool) []int {
	const inf = int(^uint(0) >> 2)
	lb := make([]int, numLayers)
	for z := range lb {
		if z >= len(targetLayers) || !targetLayers[z] {
			lb[z] = inf
		}
	}
	// Two relaxation sweeps (up then down) suffice on a path graph.
	for z := 1; z < numLayers; z++ {
		if lb[z-1]+gamma[z-1] < lb[z] {
			lb[z] = lb[z-1] + gamma[z-1]
		}
	}
	for z := numLayers - 2; z >= 0; z-- {
		if lb[z+1]+gamma[z] < lb[z] {
			lb[z] = lb[z+1] + gamma[z]
		}
	}
	return lb
}

// HFuture is π_H (paper §4.1): lb_wire(x, y) + lb_via(z), where lb_wire
// is the ℓ1 distance to the target rectangles projected to one plane and
// lb_via the minimum via cost to a target layer. Simple and fast; its
// weakness is blindness to blockages.
type HFuture struct {
	rects []geom.Rect
	viaLB []int
}

// NewHFuture builds π_H from the target vertex rectangles. targets maps
// layer → covering rectangles of the target vertices on that layer.
func NewHFuture(numLayers int, costs Costs, targets map[int][]geom.Rect) *HFuture {
	f := &HFuture{}
	tl := make([]bool, numLayers)
	for z, rs := range targets {
		if z >= 0 && z < numLayers {
			tl[z] = true
		}
		f.rects = append(f.rects, rs...)
	}
	f.viaLB = viaLB(numLayers, costs.GammaVia, tl)
	return f
}

// At returns π_H(x, y, z).
func (f *HFuture) At(x, y, z int) int {
	best := int(^uint(0) >> 2)
	p := geom.Pt(x, y)
	for _, r := range f.rects {
		if d := r.Dist1Pt(p); d < best {
			best = d
		}
	}
	if best == int(^uint(0)>>2) {
		return 0
	}
	return best + f.viaLB[z]
}

// futureCache holds the engine's reusable future-cost machinery: the
// last-built HFuture (reused verbatim across rip-up retries of the same
// net, whose target set is unchanged), a memo of via-lower-bound vectors
// keyed by target-layer bitmask (shared across nets whose targets touch
// the same layers, valid while GammaVia is unchanged), a pooled
// target-layer scratch buffer, and the reduced-graph (RFuture) cache with
// its dirty-region invalidation log.
type futureCache struct {
	gamma   []int
	nl      int
	viaLBs  map[uint64][]int
	lastNet int32
	lastNL  int
	lastPts []geom.Point3
	lastPi  *HFuture
	tl      []bool // pooled target-layer mask handed to viaLB

	// Reduced-graph cache: a small LRU of RFuture structures keyed by
	// net and validated against the full parameter set plus the dirty
	// log (NoteDirty), so reuse is exact — a cached π is returned only
	// when rebuilding it would produce a bit-identical structure.
	rf       []rfEntry
	rfClock  uint64
	dirtyGen uint64
	dirtyLog []dirtyRegion
}

// rfEntry is one cached reduced-graph future cost with everything needed
// to decide whether a new request would rebuild it identically.
type rfEntry struct {
	net    int32
	nl     int
	cell   int
	bounds geom.Rect
	beta   []int
	gamma  []int
	dirs   []geom.Direction
	pts    []geom.Point3
	rf     *RFuture
	gen    uint64 // dirty generation the entry is known valid at
	stamp  uint64 // LRU clock
}

// dirtyRegion is one NoteDirty record: geometry on layer z changed after
// generation gen-1.
type dirtyRegion struct {
	gen uint64
	z   int
	r   geom.Rect
}

// rfCacheSize bounds the engine's reduced-graph LRU; rip-up retries and
// ECO re-queries of the same few nets hit within a handful of entries.
const rfCacheSize = 8

// dirtyLogCap bounds the invalidation log; past it the cache is dropped
// wholesale (exactness-preserving compaction) and the log truncated.
const dirtyLogCap = 64

// HFutureFor returns π_H for the given target points, identified by net.
// Identical consecutive requests (same net, layer count, costs, and
// points) return the cached structure; the per-layer via lower bound is
// memoized across nets by target-layer set. Cache hits are counted in
// Stats.PiReused.
func (e *Engine) HFutureFor(net int32, numLayers int, costs Costs, pts []geom.Point3) *HFuture {
	fc := &e.fc
	if fc.nl != numLayers || !intsEqual(fc.gamma, costs.GammaVia) {
		fc.gamma = append(fc.gamma[:0], costs.GammaVia...)
		fc.nl = numLayers
		fc.viaLBs = nil
		fc.lastPi = nil
	}
	if fc.lastPi != nil && fc.lastNet == net && fc.lastNL == numLayers && pts3Equal(fc.lastPts, pts) {
		e.total.PiReused++
		return fc.lastPi
	}

	// Targets are 1-unit rects around each point — the same geometry the
	// map-based NewHFuture path produces, so cached and uncached π agree.
	f := &HFuture{rects: make([]geom.Rect, 0, len(pts))}
	var mask uint64
	maskable := true
	for _, p := range pts {
		f.rects = append(f.rects, geom.Rect{XMin: p.X, YMin: p.Y, XMax: p.X + 1, YMax: p.Y + 1})
		if p.Z >= 0 && p.Z < 64 {
			mask |= 1 << uint(p.Z)
		} else {
			maskable = false
		}
	}
	if maskable {
		if lb, ok := fc.viaLBs[mask]; ok {
			f.viaLB = lb
			e.total.PiReused++
		} else {
			f.viaLB = viaLB(numLayers, costs.GammaVia, fc.targetLayers(numLayers, pts))
			if fc.viaLBs == nil {
				fc.viaLBs = map[uint64][]int{}
			}
			fc.viaLBs[mask] = f.viaLB
		}
	} else {
		f.viaLB = viaLB(numLayers, costs.GammaVia, fc.targetLayers(numLayers, pts))
	}

	fc.lastNet = net
	fc.lastNL = numLayers
	fc.lastPts = append(fc.lastPts[:0], pts...)
	fc.lastPi = f
	return f
}

// targetLayers fills the cache's pooled layer mask from the target
// points, replacing the per-call map the viaLB path used to allocate.
func (fc *futureCache) targetLayers(numLayers int, pts []geom.Point3) []bool {
	if cap(fc.tl) < numLayers {
		fc.tl = make([]bool, numLayers)
	}
	fc.tl = fc.tl[:numLayers]
	for i := range fc.tl {
		fc.tl[i] = false
	}
	for _, p := range pts {
		if p.Z >= 0 && p.Z < numLayers {
			fc.tl[p.Z] = true
		}
	}
	return fc.tl
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pts3Equal(a, b []geom.Point3) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PFuture is the blockage-aware future cost π_P (Peyer et al. 2009,
// paper §4.1): exact backward Dijkstra distances on a coarsened grid
// that keeps large blockages, lower-bounded against π_H so it is never
// weaker. It costs more to set up, so the router uses it only for
// connections whose global route already contains a large detour.
type PFuture struct {
	h      *HFuture
	bounds geom.Rect
	cell   int
	nx, ny int
	layers int
	dist   []int32 // [z][cy][cx] flattened, -1 = unreached
}

// PFutureConfig parameterizes the coarse grid.
type PFutureConfig struct {
	// Cell is the coarse cell edge length.
	Cell int
	// Blocked reports whether the coarse cell (rect on layer z) is
	// impassable. Only report true when the cell is genuinely fully
	// blocked, otherwise the bound becomes inadmissible.
	Blocked func(z int, cellRect geom.Rect) bool
}

// NewPFuture builds π_P over bounds with the given coarse cell size.
func NewPFuture(numLayers int, costs Costs, targets map[int][]geom.Rect,
	bounds geom.Rect, cfg PFutureConfig) *PFuture {
	h := NewHFuture(numLayers, costs, targets)
	cell := cfg.Cell
	if cell <= 0 {
		cell = 1 + max(bounds.W(), bounds.H())/64
	}
	nx := (bounds.W() + cell - 1) / cell
	ny := (bounds.H() + cell - 1) / cell
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	p := &PFuture{h: h, bounds: bounds, cell: cell, nx: nx, ny: ny, layers: numLayers}
	n := numLayers * nx * ny
	p.dist = make([]int32, n)
	for i := range p.dist {
		p.dist[i] = -1
	}
	blocked := make([]bool, n)
	if cfg.Blocked != nil {
		for z := 0; z < numLayers; z++ {
			for cy := 0; cy < ny; cy++ {
				for cx := 0; cx < nx; cx++ {
					r := p.cellRect(cx, cy)
					blocked[p.idx(cx, cy, z)] = cfg.Blocked(z, r)
				}
			}
		}
	}

	// Multi-source backward Dijkstra from target cells.
	var pq distHeap
	push := func(cx, cy, z int, d int32) {
		if cx < 0 || cx >= nx || cy < 0 || cy >= ny || z < 0 || z >= numLayers {
			return
		}
		i := p.idx(cx, cy, z)
		if blocked[i] {
			return
		}
		if p.dist[i] >= 0 && p.dist[i] <= d {
			return
		}
		p.dist[i] = d
		pq.push(distItem{d: d, node: int32(i)})
	}
	for z, rs := range targets {
		for _, r := range rs {
			c0x, c0y := p.cellOf(r.XMin, r.YMin)
			c1x, c1y := p.cellOf(r.XMax, r.YMax)
			for cy := c0y; cy <= c1y; cy++ {
				for cx := c0x; cx <= c1x; cx++ {
					push(cx, cy, z, 0)
				}
			}
		}
	}
	for {
		it, ok := pq.pop()
		if !ok {
			break
		}
		i := int(it.node)
		if p.dist[i] != it.d {
			continue
		}
		z := i / (nx * ny)
		rem := i % (nx * ny)
		cy, cx := rem/nx, rem%nx
		step := int32(cell)
		push(cx-1, cy, z, it.d+step)
		push(cx+1, cy, z, it.d+step)
		push(cx, cy-1, z, it.d+step)
		push(cx, cy+1, z, it.d+step)
		if z > 0 {
			push(cx, cy, z-1, it.d+int32(costs.GammaVia[z-1]))
		}
		if z+1 < numLayers {
			push(cx, cy, z+1, it.d+int32(costs.GammaVia[z]))
		}
	}
	return p
}

func (p *PFuture) idx(cx, cy, z int) int { return (z*p.ny+cy)*p.nx + cx }

func (p *PFuture) cellOf(x, y int) (int, int) {
	cx := (x - p.bounds.XMin) / p.cell
	cy := (y - p.bounds.YMin) / p.cell
	if cx < 0 {
		cx = 0
	} else if cx >= p.nx {
		cx = p.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= p.ny {
		cy = p.ny - 1
	}
	return cx, cy
}

func (p *PFuture) cellRect(cx, cy int) geom.Rect {
	return geom.Rect{
		XMin: p.bounds.XMin + cx*p.cell,
		YMin: p.bounds.YMin + cy*p.cell,
		XMax: p.bounds.XMin + (cx+1)*p.cell,
		YMax: p.bounds.YMin + (cy+1)*p.cell,
	}
}

// At returns π_P(x, y, z) ≥ π_H(x, y, z). The coarse distance is slacked
// by four cell lengths so it remains an admissible lower bound despite
// grid discretization. Note that cell quantization can still make the
// potential locally infeasible (reduced edge costs can dip slightly
// negative across cell boundaries); the interval search is
// label-correcting, so results stay exact for any admissible bound.
func (p *PFuture) At(x, y, z int) int {
	hb := p.h.At(x, y, z)
	cx, cy := p.cellOf(x, y)
	d := p.dist[p.idx(cx, cy, z)]
	if d < 0 {
		// Unreachable in the coarse model (e.g. inside a blocked cell):
		// fall back to π_H rather than claim infinity.
		return hb
	}
	pb := int(d) - 4*p.cell
	if pb > hb {
		return pb
	}
	return hb
}

// distItem is one coarse-grid Dijkstra queue entry: tentative distance
// plus the flattened node index. Ties break on the node index, so the
// settle order — and with it every dist array — is deterministic.
type distItem struct {
	d    int32
	node int32
}

// distHeap is a plain typed binary min-heap for future-cost construction.
// It replaces the old container/heap cellHeap, whose interface{} boxing
// allocated on every Push/Pop inside NewPFuture.
type distHeap []distItem

func (h distItem) less(o distItem) bool {
	return h.d < o.d || (h.d == o.d && h.node < o.node)
}

func (h *distHeap) push(it distItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *distHeap) pop() (distItem, bool) {
	s := *h
	if len(s) == 0 {
		return distItem{}, false
	}
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l].less(s[small]) {
			small = l
		}
		if r < n && s[r].less(s[small]) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top, true
}

// RFuture is the layer-aware reduced-graph future cost π_R (after
// Ahrens et al., "Faster Goal-Oriented Shortest Path Search for Bulk and
// Incremental Detailed Routing"): exact backward Dijkstra distances on a
// compressed grid whose edge weights respect the per-layer cost model —
// an x-step on layer z costs wx[z]·cell where wx[z] is 1 when x is the
// layer's preferred direction and BetaJog[z] otherwise (symmetrically
// wy), and layer changes cost the exact GammaVia — instead of PFuture's
// uniform unit-weight cells. Distances are slacked by the anisotropic
// generalization of PFuture's discretization bound and maxed pointwise
// with π_H, so π_R ≥ π_H by construction and feasibility degrades no
// further than the already-documented PFuture quantization (the interval
// search is label-correcting, so results stay exact).
type RFuture struct {
	h      *HFuture
	bounds geom.Rect
	cell   int
	nx, ny int
	layers int
	slack  []int32 // per query layer: discretization slack subtracted in At
	dist   []int32 // [z][cy][cx] flattened, -1 = unreached
}

// RFutureConfig parameterizes the reduced grid.
type RFutureConfig struct {
	// Cell is the coarse cell edge length; 0 picks 1 + max(W,H)/64.
	Cell int
	// Dirs are the per-layer preferred directions (tracks.Layer.Dir).
	// When nil, both axes weigh 1 on every layer and π_R degenerates to
	// a via-exact PFuture.
	Dirs []geom.Direction
	// Blocked reports whether the coarse cell (rect on layer z) is
	// impassable. Only report true when the cell is genuinely fully
	// blocked, otherwise the bound becomes inadmissible.
	Blocked func(z int, cellRect geom.Rect) bool
}

// NewRFuture builds π_R over bounds. targets maps layer → covering
// rectangles of the target vertices on that layer.
func NewRFuture(numLayers int, costs Costs, targets map[int][]geom.Rect,
	bounds geom.Rect, cfg RFutureConfig) *RFuture {
	h := NewHFuture(numLayers, costs, targets)
	cell := cfg.Cell
	if cell <= 0 {
		cell = 1 + max(bounds.W(), bounds.H())/64
	}
	nx := (bounds.W() + cell - 1) / cell
	ny := (bounds.H() + cell - 1) / cell
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	// Per-layer axis weights: 1 along the preferred direction, BetaJog
	// across it.
	wx := make([]int32, numLayers)
	wy := make([]int32, numLayers)
	for z := 0; z < numLayers; z++ {
		wx[z], wy[z] = 1, 1
		if z < len(cfg.Dirs) && z < len(costs.BetaJog) {
			if cfg.Dirs[z] == geom.Horizontal {
				wy[z] = int32(costs.BetaJog[z])
			} else {
				wx[z] = int32(costs.BetaJog[z])
			}
		}
	}
	// The discretization slack generalizes PFuture's 4·cell: the true
	// path can under-travel the modeled crossings by up to one cell per
	// axis at each endpoint, charged at that endpoint's own layer weights
	// — (wx[z]+wy[z])·cell at the query layer plus the worst such sum over
	// the layers actually holding targets. All weights 1 recovers exactly
	// PFuture's 4·cell.
	tSide := int32(0)
	for z := range targets {
		if z >= 0 && z < numLayers {
			if s := (wx[z] + wy[z]) * int32(cell); s > tSide {
				tSide = s
			}
		}
	}
	slack := make([]int32, numLayers)
	for z := 0; z < numLayers; z++ {
		slack[z] = (wx[z]+wy[z])*int32(cell) + tSide
	}
	p := &RFuture{
		h: h, bounds: bounds, cell: cell, nx: nx, ny: ny, layers: numLayers,
		slack: slack,
	}
	n := numLayers * nx * ny
	p.dist = make([]int32, n)
	for i := range p.dist {
		p.dist[i] = -1
	}
	blocked := make([]bool, n)
	if cfg.Blocked != nil {
		for z := 0; z < numLayers; z++ {
			for cy := 0; cy < ny; cy++ {
				for cx := 0; cx < nx; cx++ {
					blocked[p.idx(cx, cy, z)] = cfg.Blocked(z, p.cellRect(cx, cy))
				}
			}
		}
	}

	// Multi-source backward Dijkstra from target cells under the
	// anisotropic weights.
	var pq distHeap
	push := func(cx, cy, z int, d int32) {
		if cx < 0 || cx >= nx || cy < 0 || cy >= ny || z < 0 || z >= numLayers {
			return
		}
		i := p.idx(cx, cy, z)
		if blocked[i] {
			return
		}
		if p.dist[i] >= 0 && p.dist[i] <= d {
			return
		}
		p.dist[i] = d
		pq.push(distItem{d: d, node: int32(i)})
	}
	for z, rs := range targets {
		for _, r := range rs {
			c0x, c0y := p.cellOf(r.XMin, r.YMin)
			c1x, c1y := p.cellOf(r.XMax, r.YMax)
			for cy := c0y; cy <= c1y; cy++ {
				for cx := c0x; cx <= c1x; cx++ {
					push(cx, cy, z, 0)
				}
			}
		}
	}
	for {
		it, ok := pq.pop()
		if !ok {
			break
		}
		i := int(it.node)
		if p.dist[i] != it.d {
			continue
		}
		z := i / (nx * ny)
		rem := i % (nx * ny)
		cy, cx := rem/nx, rem%nx
		stepX := wx[z] * int32(cell)
		stepY := wy[z] * int32(cell)
		push(cx-1, cy, z, it.d+stepX)
		push(cx+1, cy, z, it.d+stepX)
		push(cx, cy-1, z, it.d+stepY)
		push(cx, cy+1, z, it.d+stepY)
		if z > 0 {
			push(cx, cy, z-1, it.d+int32(costs.GammaVia[z-1]))
		}
		if z+1 < numLayers {
			push(cx, cy, z+1, it.d+int32(costs.GammaVia[z]))
		}
	}
	return p
}

func (p *RFuture) idx(cx, cy, z int) int { return (z*p.ny+cy)*p.nx + cx }

func (p *RFuture) cellOf(x, y int) (int, int) {
	cx := (x - p.bounds.XMin) / p.cell
	cy := (y - p.bounds.YMin) / p.cell
	if cx < 0 {
		cx = 0
	} else if cx >= p.nx {
		cx = p.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= p.ny {
		cy = p.ny - 1
	}
	return cx, cy
}

func (p *RFuture) cellRect(cx, cy int) geom.Rect {
	return geom.Rect{
		XMin: p.bounds.XMin + cx*p.cell,
		YMin: p.bounds.YMin + cy*p.cell,
		XMax: p.bounds.XMin + (cx+1)*p.cell,
		YMax: p.bounds.YMin + (cy+1)*p.cell,
	}
}

// At returns π_R(x, y, z) ≥ π_H(x, y, z). Like PFuture.At, the coarse
// distance is slacked for admissibility and the potential can still be
// locally infeasible across cell boundaries (bounded by one cell at the
// crossing axis' layer weight); the label-correcting interval search
// keeps results exact regardless.
func (p *RFuture) At(x, y, z int) int {
	hb := p.h.At(x, y, z)
	cx, cy := p.cellOf(x, y)
	d := p.dist[p.idx(cx, cy, z)]
	if d < 0 {
		return hb
	}
	rb := int(d) - int(p.slack[z])
	if rb > hb {
		return rb
	}
	return hb
}

// NoteDirty records that the cost landscape changed inside rect on layer
// z (an obstacle appeared or vanished, a cell's blockage verdict may have
// flipped). Cached reduced-graph future costs whose bounds intersect a
// region dirtied after they were built are invalidated exactly; entries
// elsewhere keep serving (their rebuild would be bit-identical, so reuse
// never changes results — only speed). A negative z marks every layer.
func (e *Engine) NoteDirty(z int, rect geom.Rect) {
	fc := &e.fc
	fc.dirtyGen++
	if len(fc.dirtyLog) >= dirtyLogCap {
		// Compaction: dropping the whole cache lets the log restart while
		// keeping the invariant "entry valid ⇔ no intersecting dirty
		// region since its generation".
		fc.rf = fc.rf[:0]
		fc.dirtyLog = fc.dirtyLog[:0]
	}
	fc.dirtyLog = append(fc.dirtyLog, dirtyRegion{gen: fc.dirtyGen, z: z, r: rect})
}

// rfValid reports whether entry en survives every dirty region recorded
// after it was built, advancing its generation when it does (so later
// checks scan only new log entries).
func (fc *futureCache) rfValid(en *rfEntry) bool {
	if en.gen == fc.dirtyGen {
		return true
	}
	for i := len(fc.dirtyLog) - 1; i >= 0; i-- {
		dr := &fc.dirtyLog[i]
		if dr.gen <= en.gen {
			break
		}
		if (dr.z < 0 || dr.z < en.nl) && !dr.r.Intersection(en.bounds).Empty() {
			return false
		}
	}
	en.gen = fc.dirtyGen
	return true
}

// RFutureFor returns the reduced-graph future cost for the given net and
// parameters, serving it from the engine's LRU when an entry with the
// identical parameter set exists and no intersecting NoteDirty region
// was recorded since it was built. blocked is consulted only on a
// rebuild; callers must keep it consistent with the dirty log (changes
// to the blockage landscape must be announced via NoteDirty). Cache hits
// are counted in Stats.PiReused. Hits allocate nothing, which the
// alloc-guard pins.
func (e *Engine) RFutureFor(net int32, numLayers int, costs Costs, dirs []geom.Direction,
	pts []geom.Point3, bounds geom.Rect, cell int,
	blocked func(z int, cellRect geom.Rect) bool) *RFuture {
	fc := &e.fc
	for i := range fc.rf {
		en := &fc.rf[i]
		if en.net != net || en.nl != numLayers || en.cell != cell || en.bounds != bounds ||
			!intsEqual(en.beta, costs.BetaJog) || !intsEqual(en.gamma, costs.GammaVia) ||
			!dirsEqual(en.dirs, dirs) || !pts3Equal(en.pts, pts) {
			continue
		}
		if !fc.rfValid(en) {
			// Exact invalidation: drop the entry and rebuild below.
			fc.rf[i] = fc.rf[len(fc.rf)-1]
			fc.rf = fc.rf[:len(fc.rf)-1]
			break
		}
		fc.rfClock++
		en.stamp = fc.rfClock
		e.total.PiReused++
		return en.rf
	}

	targets := make(map[int][]geom.Rect, len(pts))
	for _, p := range pts {
		targets[p.Z] = append(targets[p.Z], geom.Rect{XMin: p.X, YMin: p.Y, XMax: p.X + 1, YMax: p.Y + 1})
	}
	rf := NewRFuture(numLayers, costs, targets, bounds,
		RFutureConfig{Cell: cell, Dirs: dirs, Blocked: blocked})

	fc.rfClock++
	en := rfEntry{
		net: net, nl: numLayers, cell: cell, bounds: bounds,
		beta:  append([]int(nil), costs.BetaJog...),
		gamma: append([]int(nil), costs.GammaVia...),
		dirs:  append([]geom.Direction(nil), dirs...),
		pts:   append([]geom.Point3(nil), pts...),
		rf:    rf, gen: fc.dirtyGen, stamp: fc.rfClock,
	}
	if len(fc.rf) < rfCacheSize {
		fc.rf = append(fc.rf, en)
	} else {
		oldest := 0
		for i := 1; i < len(fc.rf); i++ {
			if fc.rf[i].stamp < fc.rf[oldest].stamp {
				oldest = i
			}
		}
		fc.rf[oldest] = en
	}
	return rf
}

func dirsEqual(a, b []geom.Direction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
