package pathsearch

import (
	"container/heap"

	"bonnroute/internal/geom"
)

// FutureCost is the potential function π of the goal-directed search: a
// lower bound on the cost from a vertex to the target set, with π ≡ 0 on
// targets. It must be feasible (reduced costs nonnegative), which both
// implementations guarantee, and 1-Lipschitz along tracks with respect to
// wire cost, which the interval search exploits.
type FutureCost interface {
	At(x, y, z int) int
}

// Costs bundles the edge cost parameters of the track graph (paper
// §4.1): wire cost is ℓ1 length, jogs are scaled by BetaJog per unit, and
// a via between layers z and z+1 costs GammaVia[z].
type Costs struct {
	// BetaJog[z] ≥ 1 is the non-preferred-direction penalty multiplier.
	BetaJog []int
	// GammaVia[v] > 0 is the via cost between wiring layers v and v+1.
	GammaVia []int
}

// UniformCosts builds the usual parameterization: β on every layer, γ per
// via layer.
func UniformCosts(numLayers, beta, gamma int) Costs {
	c := Costs{BetaJog: make([]int, numLayers), GammaVia: make([]int, numLayers-1)}
	for z := range c.BetaJog {
		c.BetaJog[z] = beta
	}
	for v := range c.GammaVia {
		c.GammaVia[v] = gamma
	}
	return c
}

// viaLB computes, per layer, the cheapest via cost to reach any layer in
// targetLayers (the lb_via term of π_H, Hetzel 1998).
func viaLB(numLayers int, gamma []int, targetLayers map[int]bool) []int {
	const inf = int(^uint(0) >> 2)
	lb := make([]int, numLayers)
	for z := range lb {
		if !targetLayers[z] {
			lb[z] = inf
		}
	}
	// Two relaxation sweeps (up then down) suffice on a path graph.
	for z := 1; z < numLayers; z++ {
		if lb[z-1]+gamma[z-1] < lb[z] {
			lb[z] = lb[z-1] + gamma[z-1]
		}
	}
	for z := numLayers - 2; z >= 0; z-- {
		if lb[z+1]+gamma[z] < lb[z] {
			lb[z] = lb[z+1] + gamma[z]
		}
	}
	return lb
}

// HFuture is π_H (paper §4.1): lb_wire(x, y) + lb_via(z), where lb_wire
// is the ℓ1 distance to the target rectangles projected to one plane and
// lb_via the minimum via cost to a target layer. Simple and fast; its
// weakness is blindness to blockages.
type HFuture struct {
	rects []geom.Rect
	viaLB []int
}

// NewHFuture builds π_H from the target vertex rectangles. targets maps
// layer → covering rectangles of the target vertices on that layer.
func NewHFuture(numLayers int, costs Costs, targets map[int][]geom.Rect) *HFuture {
	f := &HFuture{}
	tl := map[int]bool{}
	for z, rs := range targets {
		tl[z] = true
		f.rects = append(f.rects, rs...)
	}
	f.viaLB = viaLB(numLayers, costs.GammaVia, tl)
	return f
}

// At returns π_H(x, y, z).
func (f *HFuture) At(x, y, z int) int {
	best := int(^uint(0) >> 2)
	p := geom.Pt(x, y)
	for _, r := range f.rects {
		if d := r.Dist1Pt(p); d < best {
			best = d
		}
	}
	if best == int(^uint(0)>>2) {
		return 0
	}
	return best + f.viaLB[z]
}

// futureCache holds the engine's reusable π_H machinery: the last-built
// HFuture (reused verbatim across rip-up retries of the same net, whose
// target set is unchanged) and a memo of via-lower-bound vectors keyed by
// target-layer bitmask (shared across nets whose targets touch the same
// layers, valid while GammaVia is unchanged).
type futureCache struct {
	gamma   []int
	nl      int
	viaLBs  map[uint64][]int
	lastNet int32
	lastNL  int
	lastPts []geom.Point3
	lastPi  *HFuture
}

// HFutureFor returns π_H for the given target points, identified by net.
// Identical consecutive requests (same net, layer count, costs, and
// points) return the cached structure; the per-layer via lower bound is
// memoized across nets by target-layer set. Cache hits are counted in
// Stats.PiReused.
func (e *Engine) HFutureFor(net int32, numLayers int, costs Costs, pts []geom.Point3) *HFuture {
	fc := &e.fc
	if fc.nl != numLayers || !intsEqual(fc.gamma, costs.GammaVia) {
		fc.gamma = append(fc.gamma[:0], costs.GammaVia...)
		fc.nl = numLayers
		fc.viaLBs = nil
		fc.lastPi = nil
	}
	if fc.lastPi != nil && fc.lastNet == net && fc.lastNL == numLayers && pts3Equal(fc.lastPts, pts) {
		e.total.PiReused++
		return fc.lastPi
	}

	// Targets are 1-unit rects around each point — the same geometry the
	// map-based NewHFuture path produces, so cached and uncached π agree.
	f := &HFuture{rects: make([]geom.Rect, 0, len(pts))}
	var mask uint64
	maskable := true
	for _, p := range pts {
		f.rects = append(f.rects, geom.Rect{XMin: p.X, YMin: p.Y, XMax: p.X + 1, YMax: p.Y + 1})
		if p.Z >= 0 && p.Z < 64 {
			mask |= 1 << uint(p.Z)
		} else {
			maskable = false
		}
	}
	if maskable {
		if lb, ok := fc.viaLBs[mask]; ok {
			f.viaLB = lb
			e.total.PiReused++
		} else {
			tl := make(map[int]bool, len(pts))
			for _, p := range pts {
				tl[p.Z] = true
			}
			f.viaLB = viaLB(numLayers, costs.GammaVia, tl)
			if fc.viaLBs == nil {
				fc.viaLBs = map[uint64][]int{}
			}
			fc.viaLBs[mask] = f.viaLB
		}
	} else {
		tl := make(map[int]bool, len(pts))
		for _, p := range pts {
			tl[p.Z] = true
		}
		f.viaLB = viaLB(numLayers, costs.GammaVia, tl)
	}

	fc.lastNet = net
	fc.lastNL = numLayers
	fc.lastPts = append(fc.lastPts[:0], pts...)
	fc.lastPi = f
	return f
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pts3Equal(a, b []geom.Point3) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PFuture is the blockage-aware future cost π_P (Peyer et al. 2009,
// paper §4.1): exact backward Dijkstra distances on a coarsened grid
// that keeps large blockages, lower-bounded against π_H so it is never
// weaker. It costs more to set up, so the router uses it only for
// connections whose global route already contains a large detour.
type PFuture struct {
	h      *HFuture
	bounds geom.Rect
	cell   int
	nx, ny int
	layers int
	dist   []int32 // [z][cy][cx] flattened, -1 = unreached
}

// PFutureConfig parameterizes the coarse grid.
type PFutureConfig struct {
	// Cell is the coarse cell edge length.
	Cell int
	// Blocked reports whether the coarse cell (rect on layer z) is
	// impassable. Only report true when the cell is genuinely fully
	// blocked, otherwise the bound becomes inadmissible.
	Blocked func(z int, cellRect geom.Rect) bool
}

// NewPFuture builds π_P over bounds with the given coarse cell size.
func NewPFuture(numLayers int, costs Costs, targets map[int][]geom.Rect,
	bounds geom.Rect, cfg PFutureConfig) *PFuture {
	h := NewHFuture(numLayers, costs, targets)
	cell := cfg.Cell
	if cell <= 0 {
		cell = 1 + max(bounds.W(), bounds.H())/64
	}
	nx := (bounds.W() + cell - 1) / cell
	ny := (bounds.H() + cell - 1) / cell
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	p := &PFuture{h: h, bounds: bounds, cell: cell, nx: nx, ny: ny, layers: numLayers}
	n := numLayers * nx * ny
	p.dist = make([]int32, n)
	for i := range p.dist {
		p.dist[i] = -1
	}
	blocked := make([]bool, n)
	if cfg.Blocked != nil {
		for z := 0; z < numLayers; z++ {
			for cy := 0; cy < ny; cy++ {
				for cx := 0; cx < nx; cx++ {
					r := p.cellRect(cx, cy)
					blocked[p.idx(cx, cy, z)] = cfg.Blocked(z, r)
				}
			}
		}
	}

	// Multi-source backward Dijkstra from target cells.
	pq := &cellHeap{}
	push := func(cx, cy, z int, d int32) {
		if cx < 0 || cx >= nx || cy < 0 || cy >= ny || z < 0 || z >= numLayers {
			return
		}
		i := p.idx(cx, cy, z)
		if blocked[i] {
			return
		}
		if p.dist[i] >= 0 && p.dist[i] <= d {
			return
		}
		p.dist[i] = d
		heap.Push(pq, cellItem{d, cx, cy, z})
	}
	for z, rs := range targets {
		for _, r := range rs {
			c0x, c0y := p.cellOf(r.XMin, r.YMin)
			c1x, c1y := p.cellOf(r.XMax, r.YMax)
			for cy := c0y; cy <= c1y; cy++ {
				for cx := c0x; cx <= c1x; cx++ {
					push(cx, cy, z, 0)
				}
			}
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(cellItem)
		i := p.idx(it.cx, it.cy, it.z)
		if p.dist[i] != it.d {
			continue
		}
		step := int32(cell)
		push(it.cx-1, it.cy, it.z, it.d+step)
		push(it.cx+1, it.cy, it.z, it.d+step)
		push(it.cx, it.cy-1, it.z, it.d+step)
		push(it.cx, it.cy+1, it.z, it.d+step)
		if it.z > 0 {
			push(it.cx, it.cy, it.z-1, it.d+int32(costs.GammaVia[it.z-1]))
		}
		if it.z+1 < numLayers {
			push(it.cx, it.cy, it.z+1, it.d+int32(costs.GammaVia[it.z]))
		}
	}
	return p
}

func (p *PFuture) idx(cx, cy, z int) int { return (z*p.ny+cy)*p.nx + cx }

func (p *PFuture) cellOf(x, y int) (int, int) {
	cx := (x - p.bounds.XMin) / p.cell
	cy := (y - p.bounds.YMin) / p.cell
	if cx < 0 {
		cx = 0
	} else if cx >= p.nx {
		cx = p.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= p.ny {
		cy = p.ny - 1
	}
	return cx, cy
}

func (p *PFuture) cellRect(cx, cy int) geom.Rect {
	return geom.Rect{
		XMin: p.bounds.XMin + cx*p.cell,
		YMin: p.bounds.YMin + cy*p.cell,
		XMax: p.bounds.XMin + (cx+1)*p.cell,
		YMax: p.bounds.YMin + (cy+1)*p.cell,
	}
}

// At returns π_P(x, y, z) ≥ π_H(x, y, z). The coarse distance is slacked
// by four cell lengths so it remains an admissible lower bound despite
// grid discretization. Note that cell quantization can still make the
// potential locally infeasible (reduced edge costs can dip slightly
// negative across cell boundaries); the interval search is
// label-correcting, so results stay exact for any admissible bound.
func (p *PFuture) At(x, y, z int) int {
	hb := p.h.At(x, y, z)
	cx, cy := p.cellOf(x, y)
	d := p.dist[p.idx(cx, cy, z)]
	if d < 0 {
		// Unreachable in the coarse model (e.g. inside a blocked cell):
		// fall back to π_H rather than claim infinity.
		return hb
	}
	pb := int(d) - 4*p.cell
	if pb > hb {
		return pb
	}
	return hb
}

type cellItem struct {
	d         int32
	cx, cy, z int
}

type cellHeap []cellItem

func (h cellHeap) Len() int            { return len(h) }
func (h cellHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h cellHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x interface{}) { *h = append(*h, x.(cellItem)) }
func (h *cellHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
