// Package pathsearch implements BonnRoute's on-track path search (paper
// §4.1): a generalization of Dijkstra's algorithm that labels intervals
// of track-graph vertices instead of single vertices (Algorithm 4, after
// Hetzel and Peyer et al.), with goal-directed future costs π_H (ℓ1 +
// via lower bound) and π_P (blockage-aware), rip-up cost modes, and wire
// spreading costs (§4.2). A plain node-based Dijkstra over the same
// implicit graph is included as the correctness reference and as the
// baseline for the ≥6× interval-labelling speedup statistic.
package pathsearch

import (
	"bonnroute/internal/geom"
)

// Area is the routing area R ⊆ V(G_T) a search is restricted to: a union
// of rectangles per wiring layer (the corridor of global-routing tiles in
// the full flow, §4.4).
type Area struct {
	perLayer [][]geom.Rect
}

// NewArea creates an area over the given number of layers.
func NewArea(numLayers int) *Area {
	return &Area{perLayer: make([][]geom.Rect, numLayers)}
}

// FullArea returns an area covering rect on every layer.
func FullArea(numLayers int, rect geom.Rect) *Area {
	a := NewArea(numLayers)
	for z := range a.perLayer {
		a.perLayer[z] = []geom.Rect{rect}
	}
	return a
}

// Add includes rect on layer z.
func (a *Area) Add(z int, rect geom.Rect) {
	if z >= 0 && z < len(a.perLayer) && !rect.Empty() {
		a.perLayer[z] = append(a.perLayer[z], rect)
	}
}

// Contains reports whether the vertex (x, y, z) lies in the area.
func (a *Area) Contains(x, y, z int) bool {
	if z < 0 || z >= len(a.perLayer) {
		return false
	}
	p := geom.Pt(x, y)
	for _, r := range a.perLayer[z] {
		if r.ContainsClosed(p) {
			return true
		}
	}
	return false
}

// TrackSpans returns the sorted disjoint along-track spans of the area on
// the track of layer z (preferred direction dir) at orthogonal coordinate
// c. Endpoints are inclusive (a vertex on the area border is usable).
func (a *Area) TrackSpans(z int, dir geom.Direction, c int) []geom.Interval {
	return a.AppendTrackSpans(nil, z, dir, c)
}

// AppendTrackSpans is TrackSpans writing into dst (typically a reused
// scratch buffer), avoiding a per-call allocation on the search hot path.
func (a *Area) AppendTrackSpans(dst []geom.Interval, z int, dir geom.Direction, c int) []geom.Interval {
	if z < 0 || z >= len(a.perLayer) {
		return dst
	}
	base := len(dst)
	for _, r := range a.perLayer[z] {
		o := r.Span(dir.Perp())
		if c < o.Lo || c > o.Hi {
			continue
		}
		s := r.Span(dir)
		dst = append(dst, geom.Interval{Lo: s.Lo, Hi: s.Hi + 1}) // inclusive hi
	}
	spans := dst[base:]
	if len(spans) <= 1 {
		return dst
	}
	// Insertion sort: span counts per track are tiny, and sort.Slice's
	// closure would allocate.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].Lo < spans[j-1].Lo; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.Lo <= last.Hi {
			if s.Hi > last.Hi {
				last.Hi = s.Hi
			}
		} else {
			out = append(out, s)
		}
	}
	return dst[:base+len(out)]
}

// Bounds returns the bounding box over all layers (used to bound
// future-cost preprocessing).
func (a *Area) Bounds() geom.Rect {
	var b geom.Rect
	for _, rs := range a.perLayer {
		for _, r := range rs {
			b = b.Union(r)
		}
	}
	return b
}

// NumLayers returns the number of layers the area spans.
func (a *Area) NumLayers() int { return len(a.perLayer) }
