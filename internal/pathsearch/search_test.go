package pathsearch

import (
	"math/rand"
	"testing"

	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
	"bonnroute/internal/tracks"
)

// testWorld is a synthetic legality environment: a set of blocked rects
// per layer; wire positions are blocked when the vertex lies in a rect,
// jogs when either endpoint or the gap is blocked, vias when the point is
// blocked on either layer.
type testWorld struct {
	tg      *tracks.Graph
	blocked [][]geom.Rect // per layer
}

func newWorld(nLayers, pitch, size int) *testWorld {
	area := geom.R(0, 0, size, size)
	dirs := make([]geom.Direction, nLayers)
	coords := make([][]int, nLayers)
	for z := 0; z < nLayers; z++ {
		if z%2 == 0 {
			dirs[z] = geom.Horizontal
		} else {
			dirs[z] = geom.Vertical
		}
		for c := pitch / 2; c < size; c += pitch {
			coords[z] = append(coords[z], c)
		}
	}
	return &testWorld{
		tg:      tracks.BuildGraph(area, dirs, coords),
		blocked: make([][]geom.Rect, nLayers),
	}
}

func (w *testWorld) block(z int, r geom.Rect) { w.blocked[z] = append(w.blocked[z], r) }

func (w *testWorld) isBlocked(z, x, y int) bool {
	p := geom.Pt(x, y)
	for _, r := range w.blocked[z] {
		if r.ContainsClosed(p) {
			return true
		}
	}
	return false
}

func (w *testWorld) config(costs Costs, pi FutureCost, area *Area) *Config {
	return &Config{
		Tracks: w.tg,
		Costs:  costs,
		Pi:     pi,
		Area:   area,
		WireRuns: func(z, ti, lo, hi int, visit func(lo, hi int, need drc.Need)) {
			layer := &w.tg.Layers[z]
			c := layer.Coords[ti]
			// Emit blocked sub-runs of [lo, hi] (treating the wire as the
			// point vertex; the synthetic world has no widths).
			for _, r := range w.blocked[z] {
				o := r.Span(layer.Dir.Perp())
				if c < o.Lo || c > o.Hi {
					continue
				}
				s := r.Span(layer.Dir)
				a, b := max(s.Lo, lo), min(s.Hi, hi+1)
				if a < b {
					visit(a, b, drc.NeedNever)
				} else if a == b && a >= lo && a <= hi {
					visit(a, a+1, drc.NeedNever)
				}
			}
		},
		JogNeed: func(z, lowerTi, along int) drc.Need {
			layer := &w.tg.Layers[z]
			c0, c1 := layer.Coords[lowerTi], layer.Coords[lowerTi+1]
			for c := c0; c <= c1; c++ {
				var x, y int
				if layer.Dir == geom.Horizontal {
					x, y = along, c
				} else {
					x, y = c, along
				}
				if w.isBlocked(z, x, y) {
					return drc.NeedNever
				}
			}
			return 0
		},
		ViaNeed: func(v, botTi, topTi int, pos geom.Point) drc.Need {
			if w.isBlocked(v, pos.X, pos.Y) || w.isBlocked(v+1, pos.X, pos.Y) {
				return drc.NeedNever
			}
			return 0
		},
	}
}

func TestStraightLine(t *testing.T) {
	w := newWorld(2, 10, 200)
	cfg := w.config(UniformCosts(2, 3, 50), nil, nil)
	// Track y=5 (layer 0 horizontal); crossings at x = 5, 15, ...
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(155, 5, 0)}
	p := Search(cfg, S, T)
	if p == nil {
		t.Fatal("no path")
	}
	if p.Cost != 150 {
		t.Fatalf("cost = %d, want 150", p.Cost)
	}
	if len(p.Points) != 2 {
		t.Fatalf("points = %v", p.Points)
	}
}

func TestLayerChange(t *testing.T) {
	w := newWorld(2, 10, 200)
	cfg := w.config(UniformCosts(2, 3, 50), nil, nil)
	// Source on layer 0 track y=5, target on layer 1 track x=105: the
	// path runs along y=5 to x=105, then vias up, then along x=105.
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(105, 95, 1)}
	p := Search(cfg, S, T)
	if p == nil {
		t.Fatal("no path")
	}
	want := 100 + 50 + 90 // wire + via + wire
	if p.Cost != want {
		t.Fatalf("cost = %d, want %d", p.Cost, want)
	}
}

func TestDetourAroundBlockage(t *testing.T) {
	w := newWorld(2, 10, 200)
	// Wall on layer 0 across the straight route, with a hole far up.
	w.block(0, geom.R(80, 0, 90, 150))
	// Wall on layer 1 too so the via shortcut must go around as well.
	w.block(1, geom.R(80, 0, 90, 150))
	cfg := w.config(UniformCosts(2, 1, 1), nil, nil) // cheap jogs/vias
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(155, 5, 0)}
	p := Search(cfg, S, T)
	if p == nil {
		t.Fatal("no path")
	}
	if p.Cost <= 150 {
		t.Fatalf("cost = %d: detour must exceed straight distance", p.Cost)
	}
	// Path must not touch blocked vertices.
	for _, pt := range p.Points {
		if w.isBlocked(pt.Z, pt.X, pt.Y) {
			t.Fatalf("path point %v is blocked", pt)
		}
	}
}

func TestNoPath(t *testing.T) {
	w := newWorld(2, 10, 100)
	// Complete wall on both layers.
	w.block(0, geom.R(40, 0, 60, 100))
	w.block(1, geom.R(40, 0, 60, 100))
	cfg := w.config(UniformCosts(2, 3, 50), nil, nil)
	p := Search(cfg, []geom.Point3{geom.Pt3(5, 5, 0)}, []geom.Point3{geom.Pt3(95, 5, 0)})
	if p != nil {
		t.Fatalf("expected no path, got cost %d", p.Cost)
	}
}

func TestAreaRestriction(t *testing.T) {
	w := newWorld(2, 10, 200)
	costs := UniformCosts(2, 3, 50)
	// Without restriction a path exists.
	if p := Search(w.config(costs, nil, nil), []geom.Point3{geom.Pt3(5, 5, 0)}, []geom.Point3{geom.Pt3(155, 5, 0)}); p == nil {
		t.Fatal("unrestricted search failed")
	}
	// Restrict to a box excluding the target.
	area := FullArea(2, geom.R(0, 0, 100, 100))
	if p := Search(w.config(costs, nil, area), []geom.Point3{geom.Pt3(5, 5, 0)}, []geom.Point3{geom.Pt3(155, 5, 0)}); p != nil {
		t.Fatal("search escaped the routing area")
	}
}

func TestSourceEqualsTarget(t *testing.T) {
	w := newWorld(2, 10, 100)
	cfg := w.config(UniformCosts(2, 3, 50), nil, nil)
	pt := geom.Pt3(5, 5, 0)
	p := Search(cfg, []geom.Point3{pt}, []geom.Point3{pt})
	if p == nil || p.Cost != 0 {
		t.Fatalf("self path: %+v", p)
	}
}

func TestMultiSourceMultiTarget(t *testing.T) {
	w := newWorld(2, 10, 200)
	cfg := w.config(UniformCosts(2, 3, 50), nil, nil)
	S := []geom.Point3{geom.Pt3(5, 5, 0), geom.Pt3(5, 95, 0)}
	T := []geom.Point3{geom.Pt3(195, 95, 0), geom.Pt3(45, 95, 0)}
	p := Search(cfg, S, T)
	if p == nil {
		t.Fatal("no path")
	}
	// Best pair: (5,95) -> (45,95): cost 40.
	if p.Cost != 40 {
		t.Fatalf("cost = %d, want 40", p.Cost)
	}
}

func TestFutureCostReducesWork(t *testing.T) {
	w := newWorld(2, 10, 400)
	costs := UniformCosts(2, 3, 50)
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(355, 5, 0)}

	plain := Search(w.config(costs, nil, nil), S, T)
	pi := NewHFuture(2, costs, map[int][]geom.Rect{0: {geom.R(355, 5, 356, 6)}})
	directed := Search(w.config(costs, pi, nil), S, T)
	if plain == nil || directed == nil {
		t.Fatal("searches failed")
	}
	if plain.Cost != directed.Cost {
		t.Fatalf("π changed cost: %d vs %d", plain.Cost, directed.Cost)
	}
	if directed.Stats.Labels >= plain.Stats.Labels {
		t.Fatalf("π_H must reduce labels: %d vs %d", directed.Stats.Labels, plain.Stats.Labels)
	}
}

func TestRipupMode(t *testing.T) {
	w := newWorld(2, 10, 200)
	costs := UniformCosts(2, 3, 50)
	cfg := w.config(costs, nil, nil)
	// Synthetic rip-up world: positions x in [80,90] on layer 0 need
	// effort 2.
	baseRuns := cfg.WireRuns
	cfg.WireRuns = func(z, ti, lo, hi int, visit func(lo, hi int, need drc.Need)) {
		baseRuns(z, ti, lo, hi, visit)
		if z == 0 {
			a, b := max(80, lo), min(91, hi+1)
			if a < b {
				visit(a, b, 2)
			}
		}
	}
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(155, 5, 0)}

	// MaxNeed 0: the rip-up band is a wall on layer 0; path detours.
	p0 := Search(cfg, S, T)
	if p0 == nil || p0.Cost <= 150 {
		t.Fatalf("MaxNeed 0 must detour: %+v", p0)
	}
	// MaxNeed 2 with a small penalty: going through is cheaper.
	cfg.MaxNeed = 2
	cfg.RipupPenalty = func(n drc.Need) int { return 10 * int(n) }
	p2 := Search(cfg, S, T)
	if p2 == nil {
		t.Fatal("ripup search failed")
	}
	if p2.Cost != 150+20 {
		t.Fatalf("ripup cost = %d, want 170", p2.Cost)
	}
	// With a huge penalty the detour wins again.
	cfg.RipupPenalty = func(n drc.Need) int { return 100000 }
	p3 := Search(cfg, S, T)
	if p3 == nil || p3.Cost != p0.Cost {
		t.Fatalf("huge penalty must reproduce detour: %+v vs %+v", p3, p0)
	}
}

func TestRipupPanicsWithoutPenalty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w := newWorld(2, 10, 100)
	cfg := w.config(UniformCosts(2, 3, 50), nil, nil)
	cfg.MaxNeed = 1
	Search(cfg, []geom.Point3{geom.Pt3(5, 5, 0)}, []geom.Point3{geom.Pt3(95, 5, 0)})
}

func TestSpreadCost(t *testing.T) {
	w := newWorld(2, 10, 200)
	costs := UniformCosts(2, 1, 1)
	cfg := w.config(costs, nil, nil)
	// Penalize track 1 of layer 0 (y=15), which lies between the source
	// track (y=5) and the target track (y=25): the spreading cost makes
	// the router climb to layer 1 instead of jogging across the
	// penalized track.
	cfg.SpreadCost = func(z, ti, lo, hi int) int {
		if z == 0 && ti == 1 {
			return 1000
		}
		return 0
	}
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(155, 25, 0)}
	p := Search(cfg, S, T)
	if p == nil {
		t.Fatal("no path")
	}
	if p.Cost >= 1000 {
		t.Fatalf("path paid the spreading penalty: cost %d, points %v", p.Cost, p.Points)
	}
	for _, pt := range p.Points {
		if pt.Z == 0 && pt.Y == 15 {
			t.Fatalf("path touches the penalized track: %v", p.Points)
		}
	}
}

// TestFigure6Scenario recreates the situation of paper Fig. 6: horizontal
// preferred direction, β = 2, unusable stretches forcing the path to
// combine track segments, jogs and detours.
func TestFigure6Scenario(t *testing.T) {
	// Two layers so the track graph has crossings, but the routing area
	// is restricted to layer 0 — a single-plane search as in the figure.
	w := newWorld(2, 10, 120)
	// Unusable zigzag stretches as in the figure.
	w.block(0, geom.R(30, 20, 80, 30)) // blocks track y=25 partly
	w.block(0, geom.R(0, 40, 60, 50))  // blocks track y=45 partly
	costs := UniformCosts(2, 2, 1)
	area := NewArea(2)
	area.Add(0, geom.R(0, 0, 120, 120))
	cfg := w.config(costs, nil, area)
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(115, 65, 0)}
	p := Search(cfg, S, T)
	if p == nil {
		t.Fatal("no path")
	}
	// Reference check.
	ref := NodeSearch(cfg, S, T)
	if ref == nil || ref.Cost != p.Cost {
		t.Fatalf("interval %d vs node %v", p.Cost, ref)
	}
	// β = 2: total cost = wire(x) + 2·jog(y); x-distance 110, y 60.
	if p.Cost != 110+2*60 {
		t.Fatalf("cost = %d, want %d", p.Cost, 110+2*60)
	}
}

// TestIntervalMatchesNodeSearch fuzzes both searches on random worlds.
func TestIntervalMatchesNodeSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		w := newWorld(3, 10, 150)
		for i := 0; i < rng.Intn(8); i++ {
			z := rng.Intn(3)
			x, y := rng.Intn(140), rng.Intn(140)
			w.block(z, geom.R(x, y, x+5+rng.Intn(60), y+5+rng.Intn(25)))
		}
		costs := UniformCosts(3, 1+rng.Intn(3), 1+rng.Intn(80))
		var pi FutureCost
		tx, ty := 5+10*rng.Intn(14), 5+10*rng.Intn(14)
		tz := rng.Intn(3)
		T := []geom.Point3{geom.Pt3(tx, ty, tz)}
		if tz%2 == 1 { // vertical layer: x is track coord
			T[0] = geom.Pt3(tx, ty, tz)
		}
		S := []geom.Point3{geom.Pt3(5+10*rng.Intn(14), 5+10*rng.Intn(14), rng.Intn(3))}
		if rng.Intn(2) == 0 {
			pi = NewHFuture(3, costs, map[int][]geom.Rect{tz: {geom.R(tx, ty, tx+1, ty+1)}})
		}
		a := Search(w.config(costs, pi, nil), S, T)
		b := NodeSearch(w.config(costs, nil, nil), S, T)
		switch {
		case a == nil && b == nil:
		case a == nil || b == nil:
			t.Fatalf("trial %d: existence mismatch (interval %v, node %v)", trial, a, b)
		case a.Cost != b.Cost:
			t.Fatalf("trial %d: cost %d vs %d (S=%v T=%v)", trial, a.Cost, b.Cost, S, T)
		}
	}
}

// TestIntervalBeatsNodeOnLongPaths verifies the structural advantage
// behind the paper's ≥6× claim: far fewer heap operations on
// long-distance connections.
func TestIntervalBeatsNodeOnLongPaths(t *testing.T) {
	w := newWorld(2, 10, 2000)
	costs := UniformCosts(2, 3, 50)
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(1995, 5, 0)}
	pi := NewHFuture(2, costs, map[int][]geom.Rect{0: {geom.R(1995, 5, 1996, 6)}})
	a := Search(w.config(costs, pi, nil), S, T)
	b := NodeSearch(w.config(costs, pi, nil), S, T)
	if a == nil || b == nil || a.Cost != b.Cost {
		t.Fatalf("mismatch: %v %v", a, b)
	}
	if a.Stats.HeapPops*10 > b.Stats.HeapPops {
		t.Fatalf("interval pops %d not ≪ node pops %d", a.Stats.HeapPops, b.Stats.HeapPops)
	}
}

func TestPFutureAdmissibleAndDirected(t *testing.T) {
	w := newWorld(2, 10, 400)
	// A large blockage π_H cannot see through.
	w.block(0, geom.R(150, 0, 170, 380))
	w.block(1, geom.R(150, 0, 170, 380))
	costs := UniformCosts(2, 3, 50)
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(355, 5, 0)}
	targets := map[int][]geom.Rect{0: {geom.R(355, 5, 356, 6)}}

	plain := Search(w.config(costs, nil, nil), S, T)
	if plain == nil {
		t.Fatal("no path")
	}
	h := NewHFuture(2, costs, targets)
	ph := Search(w.config(costs, h, nil), S, T)

	p := NewPFuture(2, costs, targets, geom.R(0, 0, 400, 400), PFutureConfig{
		Cell: 40,
		Blocked: func(z int, cell geom.Rect) bool {
			for _, r := range w.blocked[z] {
				if r.ContainsRect(cell) {
					return true
				}
			}
			return false
		},
	})
	pp := Search(w.config(costs, p, nil), S, T)
	if ph == nil || pp == nil {
		t.Fatal("directed searches failed")
	}
	if ph.Cost != plain.Cost || pp.Cost != plain.Cost {
		t.Fatalf("future costs changed the answer: plain %d πH %d πP %d", plain.Cost, ph.Cost, pp.Cost)
	}
	// π_P must not do more work than π_H here (it sees the wall).
	if pp.Stats.Labels > ph.Stats.Labels {
		t.Fatalf("π_P labels %d > π_H labels %d", pp.Stats.Labels, ph.Stats.Labels)
	}
}

func TestViaLB(t *testing.T) {
	lb := viaLB(4, []int{10, 20, 30}, []bool{false, false, true, false})
	want := []int{30, 20, 0, 30}
	for i := range want {
		if lb[i] != want[i] {
			t.Fatalf("viaLB = %v, want %v", lb, want)
		}
	}
}

func TestCompressWaypoints(t *testing.T) {
	pts := []geom.Point3{
		geom.Pt3(0, 0, 0), geom.Pt3(10, 0, 0), geom.Pt3(20, 0, 0), // collinear
		geom.Pt3(20, 10, 0), geom.Pt3(20, 10, 1), geom.Pt3(20, 10, 2), // via stack
		geom.Pt3(30, 10, 2),
	}
	got := compressWaypoints(pts)
	want := []geom.Point3{
		geom.Pt3(0, 0, 0), geom.Pt3(20, 0, 0), geom.Pt3(20, 10, 0),
		geom.Pt3(20, 10, 2), geom.Pt3(30, 10, 2),
	}
	if len(got) != len(want) {
		t.Fatalf("compress = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("compress = %v, want %v", got, want)
		}
	}
}
