package pathsearch

import (
	"testing"

	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
)

// TestViaStackClimb: a target three layers up forces a via stack; cost
// accounts one γ per layer crossing.
func TestViaStackClimb(t *testing.T) {
	w := newWorld(4, 10, 200)
	costs := UniformCosts(4, 3, 50)
	cfg := w.config(costs, nil, nil)
	S := []geom.Point3{geom.Pt3(105, 105, 0)}
	T := []geom.Point3{geom.Pt3(105, 105, 3)}
	p := Search(cfg, S, T)
	if p == nil {
		t.Fatal("no path")
	}
	if p.Cost != 3*50 {
		t.Fatalf("cost = %d, want 150 (three vias)", p.Cost)
	}
	// The waypoint list is a pure via stack.
	for _, pt := range p.Points {
		if pt.X != 105 || pt.Y != 105 {
			t.Fatalf("stack moved laterally: %v", p.Points)
		}
	}
}

// TestGammaSensitivity: raising the via cost shifts the optimum from a
// two-via layer change to a same-layer jog detour.
func TestGammaSensitivity(t *testing.T) {
	w := newWorld(2, 10, 400)
	S := []geom.Point3{geom.Pt3(5, 105, 0)}
	T := []geom.Point3{geom.Pt3(395, 125, 0)} // two tracks up

	cheap := Search(w.config(UniformCosts(2, 9, 1), nil, nil), S, T)
	dear := Search(w.config(UniformCosts(2, 1, 10000), nil, nil), S, T)
	if cheap == nil || dear == nil {
		t.Fatal("searches failed")
	}
	countVias := func(p *Path) int {
		n := 0
		for i := 1; i < len(p.Points); i++ {
			if p.Points[i].Z != p.Points[i-1].Z {
				n++
			}
		}
		return n
	}
	if countVias(dear) != 0 {
		t.Fatalf("expensive vias still used: %v", dear.Points)
	}
	if countVias(cheap) == 0 {
		t.Fatalf("cheap vias unused with expensive jogs: %v", cheap.Points)
	}
}

// TestMultiRectArea: a routing area made of two rects connected on
// another layer only.
func TestMultiRectArea(t *testing.T) {
	w := newWorld(2, 10, 400)
	area := NewArea(2)
	area.Add(0, geom.R(0, 0, 150, 400))
	area.Add(0, geom.R(250, 0, 400, 400))
	area.Add(1, geom.R(0, 0, 400, 400)) // bridge layer
	costs := UniformCosts(2, 3, 50)
	S := []geom.Point3{geom.Pt3(5, 105, 0)}
	T := []geom.Point3{geom.Pt3(395, 105, 0)}
	p := Search(w.config(costs, nil, area), S, T)
	if p == nil {
		t.Fatal("no path across the layer bridge")
	}
	// The path must change layers to cross the gap.
	crossed := false
	for _, pt := range p.Points {
		if pt.Z == 1 {
			crossed = true
		}
	}
	if !crossed {
		t.Fatalf("path stayed on the cut layer: %v", p.Points)
	}
}

// TestRipupPrefersCheapestVictims: with two rip-up bands of different
// levels, the search pays for the cheaper one.
func TestRipupLevels(t *testing.T) {
	w := newWorld(2, 10, 300)
	cfg := w.config(UniformCosts(2, 3, 50), nil, nil)
	base := cfg.WireRuns
	cfg.WireRuns = func(z, ti, lo, hi int, visit func(lo, hi int, need drc.Need)) {
		base(z, ti, lo, hi, visit)
		if z == 0 {
			visit(100, 111, 2) // standard-level band across all tracks
		}
		if z == 1 {
			visit(lo, hi+1, 4) // the whole bridge layer needs critical rip-up
		}
	}
	cfg.MaxNeed = 4
	cfg.RipupPenalty = func(n drc.Need) int { return 100 * int(n) }
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(295, 5, 0)}
	p := Search(cfg, S, T)
	if p == nil {
		t.Fatal("no path")
	}
	// Straight through the level-2 band: 290 + penalty 200 = 490; any
	// level-4 (layer 1) usage would cost penalty 400 plus via costs.
	if p.Cost != 290+200 {
		t.Fatalf("cost = %d, want 490", p.Cost)
	}
}

// TestAreaTrackSpans verifies span merging of overlapping area rects.
func TestAreaTrackSpans(t *testing.T) {
	a := NewArea(1)
	a.Add(0, geom.R(0, 0, 100, 50))
	a.Add(0, geom.R(80, 0, 200, 50))
	a.Add(0, geom.R(300, 0, 400, 50))
	spans := a.TrackSpans(0, geom.Horizontal, 25)
	if len(spans) != 2 {
		t.Fatalf("spans = %v, want 2 (merged + separate)", spans)
	}
	if spans[0].Lo != 0 || spans[0].Hi != 201 {
		t.Fatalf("merged span = %v", spans[0])
	}
	// Off-area track: nothing.
	if got := a.TrackSpans(0, geom.Horizontal, 60); len(got) != 0 {
		t.Fatalf("off-area spans = %v", got)
	}
	// Layer out of range.
	if got := a.TrackSpans(5, geom.Horizontal, 25); got != nil {
		t.Fatal("bad layer must return nil")
	}
}

// TestHFutureNoTargets: π with no rectangles returns 0 (degenerate but
// must not crash).
func TestHFutureNoTargets(t *testing.T) {
	f := NewHFuture(2, UniformCosts(2, 3, 50), nil)
	if f.At(100, 100, 0) != 0 {
		t.Fatal("empty-target π must be 0")
	}
}
