package pathsearch

import (
	"math/rand"
	"testing"

	"bonnroute/internal/geom"
)

// Scratch review test: admissibility of RFuture under NON-uniform
// per-layer jog weights and random blockages/cells.
func TestScratchRFutureAdmissibilityNonUniform(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		w := newWorld(4, 10, 300)
		costs := UniformCosts(4, 3, 50)
		for z := range costs.BetaJog {
			costs.BetaJog[z] = 1 + rng.Intn(9) // 1..9, non-uniform
		}
		for z := range costs.GammaVia {
			costs.GammaVia[z] = 5 + rng.Intn(100)
		}
		// random blockages
		nb := rng.Intn(4)
		for i := 0; i < nb; i++ {
			z := rng.Intn(4)
			x0, y0 := rng.Intn(250), rng.Intn(250)
			w.block(z, geom.R(x0, y0, x0+20+rng.Intn(80), y0+20+rng.Intn(80)))
		}
		// random targets
		var T []geom.Point3
		nT := 1 + rng.Intn(3)
		for i := 0; i < nT; i++ {
			T = append(T, geom.Pt3(5+rng.Intn(290), 5+rng.Intn(290), rng.Intn(4)))
		}
		targets := map[int][]geom.Rect{}
		ok := true
		for _, p := range T {
			if w.isBlocked(p.Z, p.X, p.Y) {
				ok = false
			}
			targets[p.Z] = append(targets[p.Z], geom.Rect{XMin: p.X, YMin: p.Y, XMax: p.X + 1, YMax: p.Y + 1})
		}
		if !ok {
			continue
		}
		dirs := make([]geom.Direction, 4)
		for z := range dirs {
			dirs[z] = w.tg.Layers[z].Dir
		}
		blocked := func(z int, cellRect geom.Rect) bool {
			for _, r := range w.blocked[z] {
				if r.ContainsRect(cellRect) {
					return true
				}
			}
			return false
		}
		cell := 10 + rng.Intn(60)
		rf := NewRFuture(4, costs, targets, w.tg.Area, RFutureConfig{Cell: cell, Dirs: dirs, Blocked: blocked})
		cfg := w.config(costs, nil, nil)
		verts := trackVertices(w)
		checked := 0
		for i := 0; i < len(verts) && checked < 40; i++ {
			u := verts[rng.Intn(len(verts))]
			if w.isBlocked(u.Z, u.X, u.Y) {
				continue
			}
			p := NodeSearch(cfg, []geom.Point3{u}, T)
			if p == nil {
				continue
			}
			checked++
			if got := rf.At(u.X, u.Y, u.Z); got > p.Cost {
				t.Fatalf("trial %d cell %d: inadmissible at %v: pi=%d > exact %d (beta=%v gamma=%v targets=%v)",
					trial, cell, u, got, p.Cost, costs.BetaJog, costs.GammaVia, T)
			}
		}
	}
}
