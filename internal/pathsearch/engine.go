package pathsearch

import (
	"sync"

	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
	"bonnroute/internal/tracks"
)

// Engine owns all mutable path-search state for the lifetime of a router
// worker. A search allocates from the engine's pools — interval arena,
// label store, priority queue, expansion table — and an O(1) epoch bump
// resets everything for the next search, so steady-state searches cost a
// small constant number of allocations (the returned Path) instead of
// rebuilding heaps and hash maps per net. One Engine serves one goroutine
// at a time; create one per worker and reuse it across rounds.
type Engine struct {
	// Per-search wiring (valid only while a search runs).
	cfg  *Config
	tg   *tracks.Graph
	area *Area

	epoch uint32
	seq   int32 // queue insertion counter (deterministic tie-break)

	// Interval store: arena-allocated ivals plus a flat per-track cache
	// (indexed by trackBase[z]+ti) that is invalidated by epoch, not by
	// reallocation.
	arena       ivalArena
	trackBase   []int32
	trackCache  []trackEntry
	cachedTG    *tracks.Graph
	maxGap      []int // per layer: max adjacent-track gap (bucket gating)
	maxCrossGap int   // max adjacent-crossing gap over all layers

	// Label store and priority queue.
	labels []label
	pq     searchQueue

	// Expanded-crossing table keyed by (ival id, position).
	exp expTable

	// Scratch buffers for interval materialization. runVisitor is a
	// one-time-allocated closure handed to Config.WireRuns (a fresh
	// closure per call would escape to the heap); it clips to runSpan and
	// collects into runBuf.
	spanBuf    []geom.Interval
	runBuf     []needRun
	runSpan    geom.Interval
	runVisitor func(lo, hi int, need drc.Need)
	posBuf     []int
	needBuf    []drc.Need

	// Node-search pools (the reference Dijkstra shares the engine so the
	// interval-vs-node comparison isolates the labelling strategy).
	nodes   []nodeState
	nodeTab expTable
	nbrBuf  []nodeNbr
	npq     searchQueue

	// Future-cost cache (π_H reuse across rip-up retries, via-lower-bound
	// memo across nets sharing target layers).
	fc futureCache

	// Cached whole-graph Area for searches with cfg.Area == nil.
	fullArea   *Area
	fullAreaTG *tracks.Graph

	// total accumulates effort across searches; stats is the in-flight
	// search's tally.
	total Stats
	stats Stats

	best        int
	bestLabel   int32
	bestPos     int
	targetCount int
}

// NewEngine returns an empty engine. Pools grow on demand and are
// retained across searches.
func NewEngine() *Engine {
	return &Engine{}
}

// Stats returns the effort accumulated over all completed searches since
// the last TakeStats.
func (e *Engine) Stats() Stats { return e.total }

// TakeStats returns the accumulated effort and resets the tally — the
// explicit merge step for aggregating per-worker engines without shared
// counters.
func (e *Engine) TakeStats() Stats {
	s := e.total
	e.total = Stats{}
	return s
}

// enginePool backs the package-level Search/NodeSearch wrappers so
// one-shot callers still amortize pool memory across calls.
var enginePool = sync.Pool{New: func() interface{} { return NewEngine() }}

// needRun is a scratch record of one Need run emitted by Config.WireRuns.
type needRun struct {
	lo, hi int
	need   drc.Need
}

// trackEntry caches the materialized intervals of one track for the
// current epoch.
type trackEntry struct {
	epoch uint32
	ivs   []*ival
}

// ivalArena hands out interval records from fixed-size chunks so pointers
// stay valid while the arena grows; reset is O(1) (records and their
// label/target slices are reused in place).
type ivalArena struct {
	chunks [][]ival
	n      int
}

const ivalChunk = 128

func (a *ivalArena) alloc() *ival {
	ci, off := a.n/ivalChunk, a.n%ivalChunk
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]ival, ivalChunk))
	}
	iv := &a.chunks[ci][off]
	iv.id = int32(a.n)
	a.n++
	iv.labels = iv.labels[:0]
	iv.targets = iv.targets[:0]
	return iv
}

func (a *ivalArena) reset() { a.n = 0 }

// expTable is an epoch-stamped open-addressing map from (ival id,
// position) to the best expansion key seen. Reset is O(1): stale-epoch
// slots read as empty.
type expTable struct {
	keys   []uint64
	vals   []int
	epochs []uint32
	mask   int
	n      int
	epoch  uint32
}

func (t *expTable) reset(epoch uint32) {
	t.epoch = epoch
	t.n = 0
}

func (t *expTable) slot(key uint64) int {
	return int((key*0x9E3779B97F4A7C15)>>32) & t.mask
}

// lookup returns the slot index for key and whether it is occupied this
// epoch. The table grows before it fills, so probing always terminates.
func (t *expTable) lookup(key uint64) (int, bool) {
	if t.mask == 0 {
		t.grow(1024)
	}
	i := t.slot(key)
	for {
		if t.epochs[i] != t.epoch {
			return i, false
		}
		if t.keys[i] == key {
			return i, true
		}
		i = (i + 1) & t.mask
	}
}

func (t *expTable) get(key uint64) (int, bool) {
	if t.mask == 0 {
		return 0, false
	}
	i, ok := t.lookup(key)
	if !ok {
		return 0, false
	}
	return t.vals[i], true
}

func (t *expTable) set(key uint64, v int) {
	i, ok := t.lookup(key)
	if !ok {
		if 4*(t.n+1) > 3*(t.mask+1) {
			t.grow(2 * (t.mask + 1))
			i, _ = t.lookup(key)
		}
		t.n++
		t.keys[i] = key
		t.epochs[i] = t.epoch
	}
	t.vals[i] = v
}

func (t *expTable) grow(size int) {
	oldKeys, oldVals, oldEpochs := t.keys, t.vals, t.epochs
	t.keys = make([]uint64, size)
	t.vals = make([]int, size)
	t.epochs = make([]uint32, size)
	t.mask = size - 1
	t.n = 0
	for i, ep := range oldEpochs {
		if ep == t.epoch {
			j, _ := t.lookup(oldKeys[i])
			t.keys[j] = oldKeys[i]
			t.vals[j] = oldVals[i]
			t.epochs[j] = t.epoch
			t.n++
		}
	}
}

// bindGraph (re)builds the flat track-cache index for a new track graph
// and precomputes the per-layer max jog gap used to gate the bucket
// queue.
func (e *Engine) bindGraph(tg *tracks.Graph) {
	e.tg = tg
	if tg == e.cachedTG {
		return
	}
	e.cachedTG = tg
	nl := tg.NumLayers()
	e.trackBase = append(e.trackBase[:0], make([]int32, nl)...)
	e.maxGap = append(e.maxGap[:0], make([]int, nl)...)
	e.maxCrossGap = 0
	total := 0
	for z := 0; z < nl; z++ {
		e.trackBase[z] = int32(total)
		coords := tg.Layers[z].Coords
		total += len(coords)
		gap := 0
		for i := 1; i < len(coords); i++ {
			if d := coords[i] - coords[i-1]; d > gap {
				gap = d
			}
		}
		e.maxGap[z] = gap
		cross := tg.Layers[z].Cross
		for i := 1; i < len(cross); i++ {
			if d := cross[i] - cross[i-1]; d > e.maxCrossGap {
				e.maxCrossGap = d
			}
		}
	}
	if cap(e.trackCache) < total {
		e.trackCache = make([]trackEntry, total)
	}
	e.trackCache = e.trackCache[:total]
	for i := range e.trackCache {
		e.trackCache[i] = trackEntry{}
	}
}

// maxKeyStep bounds the key increase of any single queue event under cfg:
// twice the largest edge cost (feasible potentials change by at most the
// edge cost in either direction) plus slack for sweep continuations.
func (e *Engine) maxKeyStep(cfg *Config) int {
	step := 1
	for z, beta := range cfg.Costs.BetaJog {
		if z < len(e.maxGap) {
			if c := beta * e.maxGap[z]; c > step {
				step = c
			}
		}
	}
	for _, gamma := range cfg.Costs.GammaVia {
		if gamma > step {
			step = gamma
		}
	}
	return 2*step + 4
}

// maxNodeKeyStep additionally covers the node search's along-track steps,
// whose cost is the gap between adjacent crossings.
func (e *Engine) maxNodeKeyStep(cfg *Config) int {
	step := e.maxKeyStep(cfg)
	if s := 2*e.maxCrossGap + 4; s > step {
		step = s
	}
	return step
}

// beginSearch resets the pooled state for a fresh search under cfg.
func (e *Engine) beginSearch(cfg *Config) {
	if cfg.MaxNeed > 0 && cfg.RipupPenalty == nil {
		panic("pathsearch: MaxNeed > 0 requires RipupPenalty")
	}
	e.cfg = cfg
	e.bindGraph(cfg.Tracks)
	if cfg.Area == nil {
		if e.fullArea == nil || e.fullAreaTG != e.tg {
			e.fullArea = FullArea(e.tg.NumLayers(), e.tg.Area)
			e.fullAreaTG = e.tg
		}
		e.area = e.fullArea
	} else {
		e.area = cfg.Area
	}
	e.epoch++
	e.seq = 0
	e.arena.reset()
	e.labels = e.labels[:0]
	e.exp.reset(e.epoch)
	e.stats = Stats{}
	e.best = inf
	e.bestLabel = -1
	e.bestPos = 0
	e.targetCount = 0

	// The Dial-style bucket queue needs integer keys advancing in bounded
	// steps: plain wire/jog/via costs qualify; rip-up penalties and
	// arbitrary spreading costs do not (heap fallback).
	useBuckets := !cfg.ForceHeapQueue && cfg.MaxNeed == 0 && cfg.SpreadCost == nil &&
		e.maxKeyStep(cfg) < bucketWindow
	e.pq.reset(useBuckets)
}

// endSearch folds the search tally into the engine totals.
func (e *Engine) endSearch() {
	e.stats.Searches = 1
	e.total.Add(e.stats)
}
