package pathsearch

import (
	"container/heap"
	"sort"

	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
	"bonnroute/internal/intervalmap"
	"bonnroute/internal/tracks"
)

// Config wires the interval path search to its environment. Legality is
// supplied through callbacks so the search is independent of the fast
// grid / rule checker stack (the detailed router passes the fast grid's
// accessors; tests pass synthetic legality).
type Config struct {
	Tracks *tracks.Graph
	Costs  Costs
	// Pi is the future cost; nil means π ≡ 0 (plain Dijkstra).
	Pi FutureCost
	// Area restricts the search; nil means the whole track graph.
	Area *Area
	// MaxNeed is the rip-up ceiling: vertices needing rip-up effort above
	// it are unusable. 0 routes only through free space (§4.1); positive
	// values enable the rip-up mode of §4.2.
	MaxNeed drc.Need
	// RipupPenalty is the extra cost for entering an interval (or using a
	// jog/via) that requires rip-up effort need ≥ 1. nil with MaxNeed > 0
	// panics: rip-up must never be free.
	RipupPenalty func(need drc.Need) int
	// SpreadCost adds wire-spreading cost for using track positions
	// [lo, hi] of track trackIdx on layer z (§4.2); nil disables.
	SpreadCost func(z, trackIdx, lo, hi int) int

	// WireRuns visits the Need runs of the preferred-direction wire model
	// along track trackIdx of layer z, clipped to [lo, hi]; gaps are
	// Need 0. Runs are half-open in DBU.
	WireRuns func(z, trackIdx, lo, hi int, visit func(lo, hi int, need drc.Need))
	// JogNeed is the Need of the jog segment from track lowerTrackIdx of
	// layer z to the next track above, at along-track position `along`.
	JogNeed func(z, lowerTrackIdx, along int) drc.Need
	// ViaNeed is the Need of a via between layers v and v+1 at pos.
	ViaNeed func(v, botTrack, topTrack int, pos geom.Point) drc.Need
}

// Stats reports search effort (the quantities behind the paper's
// interval-vs-node speedup claims).
type Stats struct {
	Labels    int // labels created
	HeapPops  int // priority-queue extractions
	Expanded  int // crossing expansions (jog/via relaxations)
	Intervals int // intervals materialized
}

// Path is a found connection.
type Path struct {
	// Points are the waypoints from source to target; consecutive points
	// differ in exactly one coordinate (a track segment, jog, or via).
	Points []geom.Point3
	// Cost is the total edge cost.
	Cost int
	// Stats describes the search effort.
	Stats Stats
}

// Search finds a shortest S-T path in the track graph under cfg. It
// returns nil when no path exists.
func Search(cfg *Config, S, T []geom.Point3) *Path {
	if cfg.MaxNeed > 0 && cfg.RipupPenalty == nil {
		panic("pathsearch: MaxNeed > 0 requires RipupPenalty")
	}
	s := &searcher{cfg: cfg, tg: cfg.Tracks}
	s.ivalCache = map[trackKey][]*ival{}
	if cfg.Area == nil {
		s.area = FullArea(s.tg.NumLayers(), s.tg.Area)
	} else {
		s.area = cfg.Area
	}
	return s.run(S, T)
}

type trackKey struct{ z, ti int }

// ival is an interval of track vertices with uniform rip-up need
// (Algorithm 4's I ∈ 𝓘). Bounds are inclusive DBU positions.
type ival struct {
	z, ti    int
	lo, hi   int
	need     drc.Need
	labels   []int32 // indices into searcher.labels
	expanded map[int]int
	targets  []int
}

// label is Algorithm 4's (v, δ): key = true distance from S to pos plus
// π(pos), plus backtracking info.
type label struct {
	iv        *ival
	pos       int
	key       int
	parent    int32 // label index, -1 for sources
	parentPos int   // position on the parent label's interval
	// frontiers of the settled sweep within iv (inclusive); the sweep
	// grows outward from pos as the key rises.
	sweptLo, sweptHi int
	// pendingL/pendingR record whether a continuation event for the
	// respective frontier is already in the queue (at most one per side,
	// bounding the queue by O(labels)).
	pendingL, pendingR bool
}

type searcher struct {
	cfg  *Config
	tg   *tracks.Graph
	area *Area

	ivalCache map[trackKey][]*ival
	labels    []label
	pq        labelHeap
	stats     Stats

	targetSet map[geom.Point3]bool

	best      int
	bestLabel int32
	bestPos   int
}

// pi evaluates the future cost at a track vertex.
func (s *searcher) pi(z, ti, along int) int {
	if s.cfg.Pi == nil {
		return 0
	}
	x, y := s.vertexXY(z, ti, along)
	return s.cfg.Pi.At(x, y, z)
}

func (s *searcher) vertexXY(z, ti, along int) (int, int) {
	l := &s.tg.Layers[z]
	c := l.Coords[ti]
	if l.Dir == geom.Horizontal {
		return along, c
	}
	return c, along
}

func (s *searcher) vertexPoint(z, ti, along int) geom.Point3 {
	x, y := s.vertexXY(z, ti, along)
	return geom.Pt3(x, y, z)
}

// intervalsOf lazily materializes the usable intervals of a track.
func (s *searcher) intervalsOf(z, ti int) []*ival {
	key := trackKey{z, ti}
	if ivs, ok := s.ivalCache[key]; ok {
		return ivs
	}
	l := &s.tg.Layers[z]
	c := l.Coords[ti]
	var ivs []*ival
	for _, span := range s.area.TrackSpans(z, l.Dir, c) {
		// Collect the Need runs within the span and normalize: callbacks
		// may emit them unordered or overlapping (overlaps take the
		// maximum need); gaps are free (need 0).
		var needs intervalmap.Map
		s.cfg.WireRuns(z, ti, span.Lo, span.Hi-1, func(lo, hi int, need drc.Need) {
			lo, hi = max(lo, span.Lo), min(hi, span.Hi)
			if lo < hi && need > 0 {
				needs.Update(lo, hi, func(old uint64) uint64 {
					if uint64(need) > old {
						return uint64(need)
					}
					return old
				})
			}
		})
		flush := func(lo, hi int, need drc.Need) {
			if lo >= hi || need > s.cfg.MaxNeed {
				return
			}
			// Merge with previous interval when contiguous & same need.
			if n := len(ivs); n > 0 && ivs[n-1].hi == lo-1 && ivs[n-1].need == need {
				ivs[n-1].hi = hi - 1
				return
			}
			ivs = append(ivs, &ival{z: z, ti: ti, lo: lo, hi: hi - 1, need: need})
		}
		cur := span.Lo
		needs.Runs(span.Lo, span.Hi, func(lo, hi int, v uint64) bool {
			if lo > cur {
				flush(cur, lo, 0)
			}
			flush(lo, hi, drc.Need(v))
			cur = hi
			return true
		})
		if cur < span.Hi {
			flush(cur, span.Hi, 0)
		}
	}
	for _, iv := range ivs {
		iv.expanded = map[int]int{}
		s.stats.Intervals++
	}
	s.ivalCache[key] = ivs
	return ivs
}

// findIval returns the interval of track (z, ti) containing pos, or nil.
func (s *searcher) findIval(z, ti, pos int) *ival {
	ivs := s.intervalsOf(z, ti)
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].hi >= pos })
	if i < len(ivs) && ivs[i].lo <= pos {
		return ivs[i]
	}
	return nil
}

// trackOf resolves a vertex's track index, or -1 when off-track.
func (s *searcher) trackOf(p geom.Point3) int {
	if p.Z < 0 || p.Z >= s.tg.NumLayers() {
		return -1
	}
	l := &s.tg.Layers[p.Z]
	return l.TrackAt(p.XY().Coord(l.Dir.Perp()))
}

func (s *searcher) alongOf(p geom.Point3) int {
	l := &s.tg.Layers[p.Z]
	return p.XY().Coord(l.Dir)
}

const inf = int(^uint(0) >> 2)

func (s *searcher) run(S, T []geom.Point3) *Path {
	s.best = inf
	s.bestLabel = -1
	s.targetSet = make(map[geom.Point3]bool, len(T))

	// Register targets on their intervals.
	for _, t := range T {
		ti := s.trackOf(t)
		if ti < 0 {
			continue
		}
		iv := s.findIval(t.Z, ti, s.alongOf(t))
		if iv == nil {
			continue
		}
		iv.targets = append(iv.targets, s.alongOf(t))
		s.targetSet[t] = true
	}
	if len(s.targetSet) == 0 {
		return nil
	}

	// Seed sources.
	for _, src := range S {
		ti := s.trackOf(src)
		if ti < 0 {
			continue
		}
		pos := s.alongOf(src)
		iv := s.findIval(src.Z, ti, pos)
		if iv == nil {
			continue
		}
		key := s.pi(src.Z, ti, pos) + s.entryCost(iv)
		s.addLabel(iv, pos, key, -1, 0)
	}

	for s.pq.Len() > 0 {
		it := heap.Pop(&s.pq).(pqItem)
		if it.key >= s.best {
			break
		}
		s.stats.HeapPops++
		s.sweep(it.label, it.key, it.side)
	}

	if s.bestLabel < 0 {
		return nil
	}
	return s.buildPath()
}

// entryCost is the extra cost of entering an interval: rip-up penalty
// plus spreading cost.
func (s *searcher) entryCost(iv *ival) int {
	c := 0
	if iv.need > 0 {
		c += s.cfg.RipupPenalty(iv.need)
	}
	if s.cfg.SpreadCost != nil {
		c += s.cfg.SpreadCost(iv.z, iv.ti, iv.lo, iv.hi)
	}
	return c
}

// keyAt evaluates the label's induced key at position x within its
// interval: key + |x − pos| − π(pos) + π(x).
func (lb *label) keyAt(x int, s *searcher) int {
	return lb.key + geom.Abs(x-lb.pos) - s.pi(lb.iv.z, lb.iv.ti, lb.pos) + s.pi(lb.iv.z, lb.iv.ti, x)
}

// addLabel inserts a label unless it is redundant (paper: (v', δ')
// redundant if δ' ≥ d_{(v,δ)}(v') for an existing label). Returns
// whether the label was added.
func (s *searcher) addLabel(iv *ival, pos, key int, parent int32, parentPos int) bool {
	if key >= s.best {
		return false
	}
	for _, li := range iv.labels {
		ex := &s.labels[li]
		if ex.keyAt(pos, s) <= key {
			return false
		}
	}
	idx := int32(len(s.labels))
	s.labels = append(s.labels, label{
		iv: iv, pos: pos, key: key,
		parent: parent, parentPos: parentPos,
		sweptLo: pos + 1, sweptHi: pos - 1, // empty sweep
	})
	iv.labels = append(iv.labels, idx)
	s.stats.Labels++
	heap.Push(&s.pq, pqItem{key: key, label: idx, side: 0})
	return true
}

// sweep settles every position of the label's interval whose induced key
// is ≤ cap, expands the newly settled crossings, and schedules
// continuation events for the rest of the interval. side records which
// pending continuation this call consumes (-1 left, +1 right, 0 initial).
func (s *searcher) sweep(li int32, cap int, side int8) {
	lb := &s.labels[li]
	iv := lb.iv
	piPos := s.pi(iv.z, iv.ti, lb.pos)
	base := lb.key - piPos

	// keyAtX as a local closure (avoids repeated pi at pos).
	keyAt := func(x int) int {
		return base + geom.Abs(x-lb.pos) + s.pi(iv.z, iv.ti, x)
	}

	switch side {
	case -1:
		lb.pendingL = false
	case +1:
		lb.pendingR = false
	}

	// Extend the swept range in both directions while key ≤ cap. The
	// induced key is nondecreasing away from pos (π is 1-Lipschitz), so
	// binary search finds the frontier.
	newLo := lb.sweptLo
	newHi := lb.sweptHi
	if newLo > newHi { // first sweep: start at pos
		newLo, newHi = lb.pos, lb.pos
		if keyAt(lb.pos) > cap {
			return
		}
		s.settle(li, lb.pos, keyAt(lb.pos))
	}
	// Right extension.
	lo, hi := newHi+1, iv.hi
	if lo <= hi && keyAt(lo) <= cap {
		r := lo + sort.Search(hi-lo+1, func(k int) bool { return keyAt(lo+k) > cap }) - 1
		s.settleRange(li, lo, r, keyAt)
		newHi = r
	}
	// Left extension.
	lo2, hi2 := iv.lo, newLo-1
	if lo2 <= hi2 && keyAt(hi2) <= cap {
		cnt := sort.Search(hi2-lo2+1, func(k int) bool { return keyAt(hi2-k) > cap })
		l := hi2 - cnt + 1
		s.settleRange(li, l, hi2, keyAt)
		newLo = l
	}
	lb = &s.labels[li] // settle may grow s.labels; refresh pointer
	lb.sweptLo, lb.sweptHi = newLo, newHi

	// Continuation events at the frontiers, at most one outstanding per
	// side.
	if newHi < iv.hi && !lb.pendingR {
		if k := keyAt(newHi + 1); k < s.best {
			lb.pendingR = true
			heap.Push(&s.pq, pqItem{key: k, label: li, side: +1})
		}
	}
	if newLo > iv.lo && !lb.pendingL {
		if k := keyAt(newLo - 1); k < s.best {
			lb.pendingL = true
			heap.Push(&s.pq, pqItem{key: k, label: li, side: -1})
		}
	}
}

// settleRange settles positions [a, b] of label li (b ≥ a), expanding
// crossings and interval endpoints, and checking targets.
func (s *searcher) settleRange(li int32, a, b int, keyAt func(int) int) {
	lb := &s.labels[li]
	iv := lb.iv
	layer := &s.tg.Layers[iv.z]

	// Targets inside [a, b].
	for _, t := range iv.targets {
		if t >= a && t <= b {
			if k := keyAt(t); k < s.best {
				s.best = k
				s.bestLabel = li
				s.bestPos = t
			}
		}
	}
	// Expand crossings.
	for _, x := range layer.CrossRange(a, b) {
		s.expand(li, x, keyAt(x))
	}
	// Interval endpoints may abut a neighboring interval of different
	// need: relax the continuation step.
	if iv.lo >= a && iv.lo <= b {
		s.relaxAdjacent(li, iv, iv.lo, -1, keyAt(iv.lo))
	}
	if iv.hi >= a && iv.hi <= b {
		s.relaxAdjacent(li, iv, iv.hi, +1, keyAt(iv.hi))
	}
}

func (s *searcher) settle(li int32, x, key int) {
	s.settleRange(li, x, x, func(int) int { return key })
}

// relaxAdjacent steps from an interval endpoint to the abutting interval
// (cost 1 wire step plus the neighbor's entry cost).
func (s *searcher) relaxAdjacent(li int32, iv *ival, pos, dir, key int) {
	npos := pos + dir
	niv := s.findIval(iv.z, iv.ti, npos)
	if niv == nil || niv == iv {
		return
	}
	piHere := s.pi(iv.z, iv.ti, pos)
	piThere := s.pi(iv.z, iv.ti, npos)
	nk := key + 1 + s.entryCost(niv) - piHere + piThere
	s.addLabel(niv, npos, nk, li, pos)
}

// expand relaxes the jog and via edges out of crossing x of label li's
// interval. Re-expansion happens only when the key improved
// (label-correcting safety for quantized future costs).
func (s *searcher) expand(li int32, x, key int) {
	lb := &s.labels[li]
	iv := lb.iv
	if old, ok := iv.expanded[x]; ok && old <= key {
		return
	}
	iv.expanded[x] = key
	s.stats.Expanded++

	z, ti := iv.z, iv.ti
	layer := &s.tg.Layers[z]
	piHere := s.pi(z, ti, x)
	base := key - piHere

	// Jog up.
	if ti+1 < len(layer.Coords) {
		gap := layer.Coords[ti+1] - layer.Coords[ti]
		if need := s.cfg.JogNeed(z, ti, x); need <= s.cfg.MaxNeed {
			if niv := s.findIval(z, ti+1, x); niv != nil {
				cost := s.cfg.Costs.BetaJog[z]*gap + s.jogPenalty(need) + s.entryCost(niv)
				s.addLabel(niv, x, base+cost+s.pi(z, ti+1, x), li, x)
			}
		}
	}
	// Jog down.
	if ti > 0 {
		gap := layer.Coords[ti] - layer.Coords[ti-1]
		if need := s.cfg.JogNeed(z, ti-1, x); need <= s.cfg.MaxNeed {
			if niv := s.findIval(z, ti-1, x); niv != nil {
				cost := s.cfg.Costs.BetaJog[z]*gap + s.jogPenalty(need) + s.entryCost(niv)
				s.addLabel(niv, x, base+cost+s.pi(z, ti-1, x), li, x)
			}
		}
	}
	// Vias. The crossing coordinate x is a track coordinate of an
	// adjacent layer; a via exists where it is a track of that layer.
	px, py := s.vertexXY(z, ti, x)
	pos := geom.Pt(px, py)
	if z+1 < s.tg.NumLayers() {
		up := &s.tg.Layers[z+1]
		if topTi := up.TrackAt(pos.Coord(up.Dir.Perp())); topTi >= 0 {
			if need := s.cfg.ViaNeed(z, ti, topTi, pos); need <= s.cfg.MaxNeed {
				upAlong := pos.Coord(up.Dir)
				if niv := s.findIval(z+1, topTi, upAlong); niv != nil {
					cost := s.cfg.Costs.GammaVia[z] + s.jogPenalty(need) + s.entryCost(niv)
					s.addLabel(niv, upAlong, base+cost+s.pi(z+1, topTi, upAlong), li, x)
				}
			}
		}
	}
	if z > 0 {
		down := &s.tg.Layers[z-1]
		if botTi := down.TrackAt(pos.Coord(down.Dir.Perp())); botTi >= 0 {
			if need := s.cfg.ViaNeed(z-1, botTi, ti, pos); need <= s.cfg.MaxNeed {
				downAlong := pos.Coord(down.Dir)
				if niv := s.findIval(z-1, botTi, downAlong); niv != nil {
					cost := s.cfg.Costs.GammaVia[z-1] + s.jogPenalty(need) + s.entryCost(niv)
					s.addLabel(niv, downAlong, base+cost+s.pi(z-1, botTi, downAlong), li, x)
				}
			}
		}
	}
}

func (s *searcher) jogPenalty(need drc.Need) int {
	if need == 0 {
		return 0
	}
	return s.cfg.RipupPenalty(need)
}

// buildPath backtracks from the best target hit.
func (s *searcher) buildPath() *Path {
	var pts []geom.Point3
	li := s.bestLabel
	pos := s.bestPos
	for li >= 0 {
		lb := &s.labels[li]
		pts = append(pts, s.vertexPoint(lb.iv.z, lb.iv.ti, pos))
		if lb.pos != pos {
			pts = append(pts, s.vertexPoint(lb.iv.z, lb.iv.ti, lb.pos))
		}
		pos = lb.parentPos
		li = lb.parent
	}
	// Reverse to source → target order.
	for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
		pts[i], pts[j] = pts[j], pts[i]
	}
	pts = compressWaypoints(pts)
	return &Path{Points: pts, Cost: s.best, Stats: s.stats}
}

// compressWaypoints drops collinear intermediate points.
func compressWaypoints(pts []geom.Point3) []geom.Point3 {
	if len(pts) <= 2 {
		return pts
	}
	out := pts[:1]
	for i := 1; i < len(pts); i++ {
		p := pts[i]
		if p == out[len(out)-1] {
			continue
		}
		if len(out) >= 2 {
			a, b := out[len(out)-2], out[len(out)-1]
			if collinear(a, b, p) {
				out[len(out)-1] = p
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

func collinear(a, b, c geom.Point3) bool {
	if a.Z != b.Z || b.Z != c.Z {
		return a.X == b.X && b.X == c.X && a.Y == b.Y && b.Y == c.Y
	}
	if a.X == b.X && b.X == c.X {
		return between(a.Y, b.Y, c.Y)
	}
	if a.Y == b.Y && b.Y == c.Y {
		return between(a.X, b.X, c.X)
	}
	return false
}

func between(a, b, c int) bool { return (a <= b && b <= c) || (a >= b && b >= c) }

// pqItem is a heap entry: either a fresh label (side 0) or a sweep
// continuation for one frontier of a label.
type pqItem struct {
	key   int
	label int32
	side  int8
}

type labelHeap []pqItem

func (h labelHeap) Len() int            { return len(h) }
func (h labelHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h labelHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *labelHeap) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *labelHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
