package pathsearch

import (
	"sort"

	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
	"bonnroute/internal/tracks"
)

// Config wires the interval path search to its environment. Legality is
// supplied through callbacks so the search is independent of the fast
// grid / rule checker stack (the detailed router passes the fast grid's
// accessors; tests pass synthetic legality).
type Config struct {
	Tracks *tracks.Graph
	Costs  Costs
	// Pi is the future cost; nil means π ≡ 0 (plain Dijkstra).
	Pi FutureCost
	// Area restricts the search; nil means the whole track graph.
	Area *Area
	// MaxNeed is the rip-up ceiling: vertices needing rip-up effort above
	// it are unusable. 0 routes only through free space (§4.1); positive
	// values enable the rip-up mode of §4.2.
	MaxNeed drc.Need
	// RipupPenalty is the extra cost for entering an interval (or using a
	// jog/via) that requires rip-up effort need ≥ 1. nil with MaxNeed > 0
	// panics: rip-up must never be free.
	RipupPenalty func(need drc.Need) int
	// SpreadCost adds wire-spreading cost for using track positions
	// [lo, hi] of track trackIdx on layer z (§4.2); nil disables.
	SpreadCost func(z, trackIdx, lo, hi int) int
	// ForceHeapQueue disables the Dial bucket priority queue and always
	// uses the binary-heap fallback. Pop order is identical either way
	// (both break key ties by insertion order); the flag exists for
	// ablation benchmarks and queue-equivalence tests.
	ForceHeapQueue bool

	// WireRuns visits the Need runs of the preferred-direction wire model
	// along track trackIdx of layer z, clipped to [lo, hi]; gaps are
	// Need 0. Runs are half-open in DBU.
	WireRuns func(z, trackIdx, lo, hi int, visit func(lo, hi int, need drc.Need))
	// JogNeed is the Need of the jog segment from track lowerTrackIdx of
	// layer z to the next track above, at along-track position `along`.
	JogNeed func(z, lowerTrackIdx, along int) drc.Need
	// ViaNeed is the Need of a via between layers v and v+1 at pos.
	ViaNeed func(v, botTrack, topTrack int, pos geom.Point) drc.Need
}

// Stats reports search effort (the quantities behind the paper's
// interval-vs-node speedup claims). The JSON tags carry omitempty so
// serialized artifacts (cmd/routebench -bench-json) drop counters a
// flow never exercised — an ISR flow performs no crossing expansions,
// so it emits no "expanded" field instead of a misleading zero.
type Stats struct {
	Labels    int `json:"labels,omitempty"`    // labels created
	HeapPops  int `json:"heap_pops,omitempty"` // priority-queue extractions
	Expanded  int `json:"expanded,omitempty"`  // crossing expansions (jog/via relaxations)
	Intervals int `json:"intervals,omitempty"` // intervals materialized
	Searches  int `json:"searches,omitempty"`  // searches completed (engine totals)
	PiReused  int `json:"pi_reused,omitempty"` // future-cost structures served from the engine cache
}

// Effort is a machine-independent scalar summary of search work — the
// counters that track real exploration (labels, heap pops, crossing
// expansions, intervals). Schedulers use it to compare per-task load
// without depending on wall time.
func (s Stats) Effort() int64 {
	return int64(s.Labels) + int64(s.HeapPops) + int64(s.Expanded) + int64(s.Intervals)
}

// Add accumulates o into s — the merge step for per-engine tallies.
func (s *Stats) Add(o Stats) {
	s.Labels += o.Labels
	s.HeapPops += o.HeapPops
	s.Expanded += o.Expanded
	s.Intervals += o.Intervals
	s.Searches += o.Searches
	s.PiReused += o.PiReused
}

// Path is a found connection.
type Path struct {
	// Points are the waypoints from source to target; consecutive points
	// differ in exactly one coordinate (a track segment, jog, or via).
	Points []geom.Point3
	// Cost is the total edge cost.
	Cost int
	// Stats describes the search effort.
	Stats Stats
}

// Search finds a shortest S-T path in the track graph under cfg. It
// returns nil when no path exists. It is a convenience wrapper drawing a
// pooled Engine; long-lived callers (router workers) should hold their
// own Engine and call its Search method instead.
func Search(cfg *Config, S, T []geom.Point3) *Path {
	e := enginePool.Get().(*Engine)
	p := e.Search(cfg, S, T)
	enginePool.Put(e)
	return p
}

// Search finds a shortest S-T path using the engine's pooled state. The
// engine must not be used concurrently.
func (e *Engine) Search(cfg *Config, S, T []geom.Point3) *Path {
	e.beginSearch(cfg)
	p := e.run(S, T)
	e.endSearch()
	e.cfg = nil
	e.area = nil
	return p
}

// ival is an interval of track vertices with uniform rip-up need
// (Algorithm 4's I ∈ 𝓘). Bounds are inclusive DBU positions. Records
// live in the engine arena; id keys the expansion table.
type ival struct {
	id      int32
	z, ti   int
	lo, hi  int
	need    drc.Need
	labels  []int32 // indices into Engine.labels
	targets []int
}

// label is Algorithm 4's (v, δ): key = true distance from S to pos plus
// π(pos), plus backtracking info.
type label struct {
	iv        *ival
	pos       int
	key       int
	parent    int32 // label index, -1 for sources
	parentPos int   // position on the parent label's interval
	// frontiers of the settled sweep within iv (inclusive); the sweep
	// grows outward from pos as the key rises.
	sweptLo, sweptHi int
	// pendingL/pendingR record whether a continuation event for the
	// respective frontier is already in the queue (at most one per side,
	// bounding the queue by O(labels)).
	pendingL, pendingR bool
}

// pi evaluates the future cost at a track vertex.
func (e *Engine) pi(z, ti, along int) int {
	if e.cfg.Pi == nil {
		return 0
	}
	x, y := e.vertexXY(z, ti, along)
	return e.cfg.Pi.At(x, y, z)
}

func (e *Engine) vertexXY(z, ti, along int) (int, int) {
	l := &e.tg.Layers[z]
	c := l.Coords[ti]
	if l.Dir == geom.Horizontal {
		return along, c
	}
	return c, along
}

func (e *Engine) vertexPoint(z, ti, along int) geom.Point3 {
	x, y := e.vertexXY(z, ti, along)
	return geom.Pt3(x, y, z)
}

// intervalsOf lazily materializes the usable intervals of a track into
// the epoch-stamped flat cache.
func (e *Engine) intervalsOf(z, ti int) []*ival {
	entry := &e.trackCache[int(e.trackBase[z])+ti]
	if entry.epoch == e.epoch {
		return entry.ivs
	}
	ivs := entry.ivs[:0]
	l := &e.tg.Layers[z]
	c := l.Coords[ti]
	e.spanBuf = e.area.AppendTrackSpans(e.spanBuf[:0], z, l.Dir, c)
	for _, span := range e.spanBuf {
		ivs = e.materializeSpan(ivs, z, ti, span)
	}
	e.stats.Intervals += len(ivs)
	entry.epoch = e.epoch
	entry.ivs = ivs
	return ivs
}

// materializeSpan appends the usable intervals of one area span of track
// (z, ti) to ivs. Need runs from the wire model may arrive unordered or
// overlapping (overlaps take the maximum need); gaps are free (need 0).
// The normalization runs on pooled scratch: runs are collected, span
// boundaries coordinate-compressed, and per-slot maxima folded, replacing
// the per-call AVL interval map of the pre-engine implementation.
func (e *Engine) materializeSpan(ivs []*ival, z, ti int, span geom.Interval) []*ival {
	e.runBuf = e.runBuf[:0]
	e.runSpan = span
	if e.runVisitor == nil {
		e.runVisitor = func(lo, hi int, need drc.Need) {
			if lo < e.runSpan.Lo {
				lo = e.runSpan.Lo
			}
			if hi > e.runSpan.Hi {
				hi = e.runSpan.Hi
			}
			if lo < hi && need > 0 {
				e.runBuf = append(e.runBuf, needRun{lo, hi, need})
			}
		}
	}
	e.cfg.WireRuns(z, ti, span.Lo, span.Hi-1, e.runVisitor)

	if len(e.runBuf) == 0 {
		return e.appendIval(ivs, z, ti, span.Lo, span.Hi, 0)
	}

	// Coordinate-compress the run boundaries together with the span ends.
	e.posBuf = append(e.posBuf[:0], span.Lo, span.Hi)
	for _, r := range e.runBuf {
		e.posBuf = append(e.posBuf, r.lo, r.hi)
	}
	sort.Ints(e.posBuf)
	pos := e.posBuf[:1]
	for _, p := range e.posBuf[1:] {
		if p != pos[len(pos)-1] {
			pos = append(pos, p)
		}
	}
	nslots := len(pos) - 1
	if cap(e.needBuf) < nslots {
		e.needBuf = make([]drc.Need, nslots)
	}
	e.needBuf = e.needBuf[:nslots]
	for i := range e.needBuf {
		e.needBuf[i] = 0
	}
	for _, r := range e.runBuf {
		i := searchInts(pos, r.lo)
		for ; i < nslots && pos[i] < r.hi; i++ {
			if r.need > e.needBuf[i] {
				e.needBuf[i] = r.need
			}
		}
	}
	for i := 0; i < nslots; i++ {
		ivs = e.appendIval(ivs, z, ti, pos[i], pos[i+1], e.needBuf[i])
	}
	return ivs
}

// appendIval adds the half-open interval [lo, hi) with the given need,
// merging with a contiguous equal-need predecessor and dropping intervals
// above the rip-up ceiling.
func (e *Engine) appendIval(ivs []*ival, z, ti, lo, hi int, need drc.Need) []*ival {
	if lo >= hi || need > e.cfg.MaxNeed {
		return ivs
	}
	if n := len(ivs); n > 0 && ivs[n-1].hi == lo-1 && ivs[n-1].need == need {
		ivs[n-1].hi = hi - 1
		return ivs
	}
	iv := e.arena.alloc()
	iv.z, iv.ti, iv.lo, iv.hi, iv.need = z, ti, lo, hi-1, need
	return append(ivs, iv)
}

// findIval returns the interval of track (z, ti) containing pos, or nil.
func (e *Engine) findIval(z, ti, pos int) *ival {
	ivs := e.intervalsOf(z, ti)
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ivs[mid].hi < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ivs) && ivs[lo].lo <= pos {
		return ivs[lo]
	}
	return nil
}

// trackOf resolves a vertex's track index, or -1 when off-track.
func (e *Engine) trackOf(p geom.Point3) int {
	if p.Z < 0 || p.Z >= e.tg.NumLayers() {
		return -1
	}
	l := &e.tg.Layers[p.Z]
	return l.TrackAt(p.XY().Coord(l.Dir.Perp()))
}

func (e *Engine) alongOf(p geom.Point3) int {
	l := &e.tg.Layers[p.Z]
	return p.XY().Coord(l.Dir)
}

const inf = int(^uint(0) >> 2)

func (e *Engine) run(S, T []geom.Point3) *Path {
	// Register targets on their intervals.
	for _, t := range T {
		ti := e.trackOf(t)
		if ti < 0 {
			continue
		}
		iv := e.findIval(t.Z, ti, e.alongOf(t))
		if iv == nil {
			continue
		}
		iv.targets = append(iv.targets, e.alongOf(t))
		e.targetCount++
	}
	if e.targetCount == 0 {
		return nil
	}

	// Seed sources.
	for _, src := range S {
		ti := e.trackOf(src)
		if ti < 0 {
			continue
		}
		pos := e.alongOf(src)
		iv := e.findIval(src.Z, ti, pos)
		if iv == nil {
			continue
		}
		key := e.pi(src.Z, ti, pos) + e.entryCost(iv)
		e.addLabel(iv, pos, key, -1, 0)
	}

	for {
		it, ok := e.pq.pop()
		if !ok || it.key >= e.best {
			break
		}
		e.stats.HeapPops++
		e.sweep(it.label, it.key, it.side)
	}

	if e.bestLabel < 0 {
		return nil
	}
	return e.buildPath()
}

// entryCost is the extra cost of entering an interval: rip-up penalty
// plus spreading cost.
func (e *Engine) entryCost(iv *ival) int {
	c := 0
	if iv.need > 0 {
		c += e.cfg.RipupPenalty(iv.need)
	}
	if e.cfg.SpreadCost != nil {
		c += e.cfg.SpreadCost(iv.z, iv.ti, iv.lo, iv.hi)
	}
	return c
}

// labelKeyAt evaluates label li's induced key at position x within its
// interval: key + |x − pos| − π(pos) + π(x).
func (e *Engine) labelKeyAt(li int32, x int) int {
	lb := &e.labels[li]
	return lb.key + geom.Abs(x-lb.pos) - e.pi(lb.iv.z, lb.iv.ti, lb.pos) + e.pi(lb.iv.z, lb.iv.ti, x)
}

// sweepKey is the induced key at x for a label with the given base
// (key − π(pos)) and pos on interval iv.
func (e *Engine) sweepKey(iv *ival, base, pos, x int) int {
	return base + geom.Abs(x-pos) + e.pi(iv.z, iv.ti, x)
}

// addLabel inserts a label unless it is redundant (paper: (v', δ')
// redundant if δ' ≥ d_{(v,δ)}(v') for an existing label). Returns
// whether the label was added.
func (e *Engine) addLabel(iv *ival, pos, key int, parent int32, parentPos int) bool {
	if key >= e.best {
		return false
	}
	for _, li := range iv.labels {
		if e.labelKeyAt(li, pos) <= key {
			return false
		}
	}
	idx := int32(len(e.labels))
	e.labels = append(e.labels, label{
		iv: iv, pos: pos, key: key,
		parent: parent, parentPos: parentPos,
		sweptLo: pos + 1, sweptHi: pos - 1, // empty sweep
	})
	iv.labels = append(iv.labels, idx)
	e.stats.Labels++
	e.pushPQ(key, idx, 0)
	return true
}

func (e *Engine) pushPQ(key int, li int32, side int8) {
	e.pq.push(pqItem{key: key, seq: e.seq, label: li, side: side})
	e.seq++
}

// sweep settles every position of the label's interval whose induced key
// is ≤ cap, expands the newly settled crossings, and schedules
// continuation events for the rest of the interval. side records which
// pending continuation this call consumes (-1 left, +1 right, 0 initial).
func (e *Engine) sweep(li int32, cap int, side int8) {
	lb := &e.labels[li]
	iv := lb.iv
	pos := lb.pos
	base := lb.key - e.pi(iv.z, iv.ti, pos)

	switch side {
	case -1:
		lb.pendingL = false
	case +1:
		lb.pendingR = false
	}

	// Extend the swept range in both directions while key ≤ cap. The
	// induced key is nondecreasing away from pos (π is 1-Lipschitz), so
	// binary search finds the frontier.
	newLo := lb.sweptLo
	newHi := lb.sweptHi
	if newLo > newHi { // first sweep: start at pos
		newLo, newHi = pos, pos
		if e.sweepKey(iv, base, pos, pos) > cap {
			return
		}
		e.settleRange(li, pos, pos, base, pos)
	}
	// Right extension: frontier of key ≤ cap in [newHi+1, iv.hi]. The
	// probe sequence mirrors sort.Search exactly: π_P can be locally
	// non-monotone, where the frontier found depends on the probes made,
	// and routing output must not change with the queue refactor.
	if lo := newHi + 1; lo <= iv.hi && e.sweepKey(iv, base, pos, lo) <= cap {
		i, j := 0, iv.hi-lo+1
		for i < j {
			h := int(uint(i+j) >> 1)
			if e.sweepKey(iv, base, pos, lo+h) <= cap {
				i = h + 1
			} else {
				j = h
			}
		}
		r := lo + i - 1
		e.settleRange(li, lo, r, base, pos)
		newHi = r
	}
	// Left extension: frontier of key ≤ cap in [iv.lo, newLo-1].
	if hi := newLo - 1; hi >= iv.lo && e.sweepKey(iv, base, pos, hi) <= cap {
		i, j := 0, hi-iv.lo+1
		for i < j {
			h := int(uint(i+j) >> 1)
			if e.sweepKey(iv, base, pos, hi-h) <= cap {
				i = h + 1
			} else {
				j = h
			}
		}
		l := hi - i + 1
		e.settleRange(li, l, hi, base, pos)
		newLo = l
	}
	lb = &e.labels[li] // settle may grow e.labels; refresh pointer
	lb.sweptLo, lb.sweptHi = newLo, newHi

	// Continuation events at the frontiers, at most one outstanding per
	// side.
	if newHi < iv.hi && !lb.pendingR {
		if k := e.sweepKey(iv, base, pos, newHi+1); k < e.best {
			lb.pendingR = true
			e.pushPQ(k, li, +1)
		}
	}
	if newLo > iv.lo && !lb.pendingL {
		if k := e.sweepKey(iv, base, pos, newLo-1); k < e.best {
			lb.pendingL = true
			e.pushPQ(k, li, -1)
		}
	}
}

// settleRange settles positions [a, b] of label li (b ≥ a), expanding
// crossings and interval endpoints, and checking targets. base and pos
// parameterize the induced key (see sweepKey).
func (e *Engine) settleRange(li int32, a, b, base, pos int) {
	iv := e.labels[li].iv
	layer := &e.tg.Layers[iv.z]

	// Targets inside [a, b].
	for _, t := range iv.targets {
		if t >= a && t <= b {
			if k := e.sweepKey(iv, base, pos, t); k < e.best {
				e.best = k
				e.bestLabel = li
				e.bestPos = t
			}
		}
	}
	// Expand crossings.
	for _, x := range layer.CrossRange(a, b) {
		e.expand(li, x, e.sweepKey(iv, base, pos, x))
	}
	// Interval endpoints may abut a neighboring interval of different
	// need: relax the continuation step.
	if iv.lo >= a && iv.lo <= b {
		e.relaxAdjacent(li, iv, iv.lo, -1, e.sweepKey(iv, base, pos, iv.lo))
	}
	if iv.hi >= a && iv.hi <= b {
		e.relaxAdjacent(li, iv, iv.hi, +1, e.sweepKey(iv, base, pos, iv.hi))
	}
}

// relaxAdjacent steps from an interval endpoint to the abutting interval
// (cost 1 wire step plus the neighbor's entry cost).
func (e *Engine) relaxAdjacent(li int32, iv *ival, pos, dir, key int) {
	npos := pos + dir
	niv := e.findIval(iv.z, iv.ti, npos)
	if niv == nil || niv == iv {
		return
	}
	piHere := e.pi(iv.z, iv.ti, pos)
	piThere := e.pi(iv.z, iv.ti, npos)
	nk := key + 1 + e.entryCost(niv) - piHere + piThere
	e.addLabel(niv, npos, nk, li, pos)
}

// expand relaxes the jog and via edges out of crossing x of label li's
// interval. Re-expansion happens only when the key improved
// (label-correcting safety for quantized future costs).
func (e *Engine) expand(li int32, x, key int) {
	iv := e.labels[li].iv
	expKey := uint64(iv.id)<<32 | uint64(uint32(x))
	if old, ok := e.exp.get(expKey); ok && old <= key {
		return
	}
	e.exp.set(expKey, key)
	e.stats.Expanded++

	z, ti := iv.z, iv.ti
	layer := &e.tg.Layers[z]
	piHere := e.pi(z, ti, x)
	base := key - piHere

	// Jog up.
	if ti+1 < len(layer.Coords) {
		gap := layer.Coords[ti+1] - layer.Coords[ti]
		if need := e.cfg.JogNeed(z, ti, x); need <= e.cfg.MaxNeed {
			if niv := e.findIval(z, ti+1, x); niv != nil {
				cost := e.cfg.Costs.BetaJog[z]*gap + e.jogPenalty(need) + e.entryCost(niv)
				e.addLabel(niv, x, base+cost+e.pi(z, ti+1, x), li, x)
			}
		}
	}
	// Jog down.
	if ti > 0 {
		gap := layer.Coords[ti] - layer.Coords[ti-1]
		if need := e.cfg.JogNeed(z, ti-1, x); need <= e.cfg.MaxNeed {
			if niv := e.findIval(z, ti-1, x); niv != nil {
				cost := e.cfg.Costs.BetaJog[z]*gap + e.jogPenalty(need) + e.entryCost(niv)
				e.addLabel(niv, x, base+cost+e.pi(z, ti-1, x), li, x)
			}
		}
	}
	// Vias. The crossing coordinate x is a track coordinate of an
	// adjacent layer; a via exists where it is a track of that layer.
	px, py := e.vertexXY(z, ti, x)
	pos := geom.Pt(px, py)
	if z+1 < e.tg.NumLayers() {
		up := &e.tg.Layers[z+1]
		if topTi := up.TrackAt(pos.Coord(up.Dir.Perp())); topTi >= 0 {
			if need := e.cfg.ViaNeed(z, ti, topTi, pos); need <= e.cfg.MaxNeed {
				upAlong := pos.Coord(up.Dir)
				if niv := e.findIval(z+1, topTi, upAlong); niv != nil {
					cost := e.cfg.Costs.GammaVia[z] + e.jogPenalty(need) + e.entryCost(niv)
					e.addLabel(niv, upAlong, base+cost+e.pi(z+1, topTi, upAlong), li, x)
				}
			}
		}
	}
	if z > 0 {
		down := &e.tg.Layers[z-1]
		if botTi := down.TrackAt(pos.Coord(down.Dir.Perp())); botTi >= 0 {
			if need := e.cfg.ViaNeed(z-1, botTi, ti, pos); need <= e.cfg.MaxNeed {
				downAlong := pos.Coord(down.Dir)
				if niv := e.findIval(z-1, botTi, downAlong); niv != nil {
					cost := e.cfg.Costs.GammaVia[z-1] + e.jogPenalty(need) + e.entryCost(niv)
					e.addLabel(niv, downAlong, base+cost+e.pi(z-1, botTi, downAlong), li, x)
				}
			}
		}
	}
}

func (e *Engine) jogPenalty(need drc.Need) int {
	if need == 0 {
		return 0
	}
	return e.cfg.RipupPenalty(need)
}

// buildPath backtracks from the best target hit.
func (e *Engine) buildPath() *Path {
	var pts []geom.Point3
	li := e.bestLabel
	pos := e.bestPos
	for li >= 0 {
		lb := &e.labels[li]
		pts = append(pts, e.vertexPoint(lb.iv.z, lb.iv.ti, pos))
		if lb.pos != pos {
			pts = append(pts, e.vertexPoint(lb.iv.z, lb.iv.ti, lb.pos))
		}
		pos = lb.parentPos
		li = lb.parent
	}
	// Reverse to source → target order.
	for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
		pts[i], pts[j] = pts[j], pts[i]
	}
	pts = compressWaypoints(pts)
	return &Path{Points: pts, Cost: e.best, Stats: e.stats}
}

// compressWaypoints drops collinear intermediate points.
func compressWaypoints(pts []geom.Point3) []geom.Point3 {
	if len(pts) <= 2 {
		return pts
	}
	out := pts[:1]
	for i := 1; i < len(pts); i++ {
		p := pts[i]
		if p == out[len(out)-1] {
			continue
		}
		if len(out) >= 2 {
			a, b := out[len(out)-2], out[len(out)-1]
			if collinear(a, b, p) {
				out[len(out)-1] = p
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

func collinear(a, b, c geom.Point3) bool {
	if a.Z != b.Z || b.Z != c.Z {
		return a.X == b.X && b.X == c.X && a.Y == b.Y && b.Y == c.Y
	}
	if a.X == b.X && b.X == c.X {
		return between(a.Y, b.Y, c.Y)
	}
	if a.Y == b.Y && b.Y == c.Y {
		return between(a.X, b.X, c.X)
	}
	return false
}

func between(a, b, c int) bool { return (a <= b && b <= c) || (a >= b && b >= c) }
