package pathsearch

import (
	"bonnroute/internal/geom"
)

// NodeSearch is the classical maze-running reference: Dijkstra (optionally
// goal-directed through cfg.Pi) labeling every track-graph vertex
// individually. It supports only MaxNeed == 0 and exists (a) as the
// correctness oracle the interval search is tested against and (b) as the
// baseline of the paper's ≥6× interval-labelling speedup measurement
// (§4.1) and of the ISR-like comparison router. Like Search, this wrapper
// draws a pooled Engine; long-lived callers should use Engine.NodeSearch.
func NodeSearch(cfg *Config, S, T []geom.Point3) *Path {
	e := enginePool.Get().(*Engine)
	p := e.NodeSearch(cfg, S, T)
	enginePool.Put(e)
	return p
}

// nodeState is one labeled track-graph vertex of the reference search.
// States live in the engine's pooled slice; nodeTab maps packed vertex
// keys to state indices so per-vertex map allocations are gone.
type nodeState struct {
	z, ti  int32
	along  int
	dist   int
	parent int32 // state index, -1 for sources
	target bool
	done   bool
}

// nodeNbr is one outgoing edge produced by nodeNeighbors.
type nodeNbr struct {
	z, ti, along, cost int
}

// packNode packs a vertex into the open-addressing table key: 8 bits of
// layer, 24 bits of track index, 32 bits of along-track coordinate.
func packNode(z, ti, along int) uint64 {
	return uint64(uint8(z))<<56 | uint64(uint32(ti)&0xFFFFFF)<<32 | uint64(uint32(along))
}

// nodeAt returns the state index for vertex (z, ti, along), creating an
// unreached state on first touch.
func (e *Engine) nodeAt(z, ti, along int) int32 {
	key := packNode(z, ti, along)
	if idx, ok := e.nodeTab.get(key); ok {
		return int32(idx)
	}
	idx := len(e.nodes)
	e.nodes = append(e.nodes, nodeState{
		z: int32(z), ti: int32(ti), along: along, dist: inf, parent: -1,
	})
	e.nodeTab.set(key, idx)
	return int32(idx)
}

// NodeSearch runs the node-based reference Dijkstra on the engine's
// pooled state. The engine must not be used concurrently.
func (e *Engine) NodeSearch(cfg *Config, S, T []geom.Point3) *Path {
	if cfg.MaxNeed != 0 {
		panic("pathsearch: NodeSearch supports MaxNeed == 0 only")
	}
	e.beginSearch(cfg)
	e.nodes = e.nodes[:0]
	e.nodeTab.reset(e.epoch)
	e.npq.reset(!cfg.ForceHeapQueue && e.maxNodeKeyStep(cfg) < bucketWindow)
	p := e.runNode(S, T)
	e.endSearch()
	e.cfg = nil
	e.area = nil
	return p
}

func (e *Engine) runNode(S, T []geom.Point3) *Path {
	numTargets := 0
	for _, t := range T {
		ti := e.trackOf(t)
		if ti < 0 {
			continue
		}
		along := e.alongOf(t)
		if e.findIval(t.Z, ti, along) != nil {
			si := e.nodeAt(t.Z, ti, along)
			if !e.nodes[si].target {
				e.nodes[si].target = true
				numTargets++
			}
		}
	}
	if numTargets == 0 {
		return nil
	}

	for _, src := range S {
		ti := e.trackOf(src)
		if ti < 0 {
			continue
		}
		along := e.alongOf(src)
		if e.findIval(src.Z, ti, along) != nil {
			e.nodeRelax(e.nodeAt(src.Z, ti, along), 0, -1)
		}
	}

	var bestSi int32 = -1
	best := inf
	pops := 0
	for {
		it, ok := e.npq.pop()
		if !ok {
			break
		}
		si := it.label
		st := &e.nodes[si]
		if st.done || it.key != st.dist+e.pi(int(st.z), int(st.ti), st.along) {
			continue // stale entry (lazy deletion)
		}
		st.done = true
		pops++
		if st.target && st.dist < best {
			best = st.dist
			bestSi = si
			// First settled target is optimal under feasible π — π_H is
			// exactly feasible (property-tested). The coarse-grid π_P/π_R
			// can violate feasibility by up to one cell at the crossing
			// axis' layer weight, which only the label-correcting interval
			// search absorbs; detail's futureCost therefore pins NodeSearch
			// flows to π_H whatever FutureMode says.
			break
		}
		e.nbrBuf = e.nodeNeighbors(e.nbrBuf[:0], int(st.z), int(st.ti), st.along)
		d := st.dist
		for _, nb := range e.nbrBuf {
			e.nodeRelax(e.nodeAt(nb.z, nb.ti, nb.along), d+nb.cost, si)
		}
	}
	if bestSi < 0 {
		return nil
	}
	// Backtrack.
	var pts []geom.Point3
	for si := bestSi; si >= 0; {
		st := &e.nodes[si]
		pts = append(pts, e.vertexPoint(int(st.z), int(st.ti), st.along))
		si = st.parent
	}
	for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
		pts[i], pts[j] = pts[j], pts[i]
	}
	e.stats.HeapPops += pops
	e.stats.Labels += len(e.nodes)
	return &Path{
		Points: compressWaypoints(pts),
		Cost:   best,
		Stats:  Stats{HeapPops: pops, Labels: len(e.nodes)},
	}
}

// nodeRelax lowers the tentative distance of state si to d via parent
// state from, pushing a queue entry keyed by d + π.
func (e *Engine) nodeRelax(si int32, d int, from int32) {
	st := &e.nodes[si]
	if d < st.dist {
		st.dist = d
		st.parent = from
		key := d + e.pi(int(st.z), int(st.ti), st.along)
		e.npq.push(pqItem{key: key, seq: e.seq, label: si})
		e.seq++
	}
}

// nodeNeighbors appends the outgoing edges of a vertex to dst: steps to
// the previous/next crossing along the track, jogs, and vias.
func (e *Engine) nodeNeighbors(dst []nodeNbr, z, ti, along int) []nodeNbr {
	iv := e.findIval(z, ti, along)
	if iv == nil {
		return dst
	}
	layer := &e.tg.Layers[z]
	// Along-track steps to adjacent crossings (staying inside the
	// contiguous legal region, which at MaxNeed==0 is one interval).
	cr := layer.Cross
	idx := searchInts(cr, along)
	if idx < len(cr) && cr[idx] == along {
		if idx+1 < len(cr) && cr[idx+1] <= iv.hi {
			dst = append(dst, nodeNbr{z, ti, cr[idx+1], cr[idx+1] - along})
		}
		if idx > 0 && cr[idx-1] >= iv.lo {
			dst = append(dst, nodeNbr{z, ti, cr[idx-1], along - cr[idx-1]})
		}
	}
	// Jogs.
	if ti+1 < len(layer.Coords) {
		if e.cfg.JogNeed(z, ti, along) == 0 && e.findIval(z, ti+1, along) != nil {
			gap := layer.Coords[ti+1] - layer.Coords[ti]
			dst = append(dst, nodeNbr{z, ti + 1, along, e.cfg.Costs.BetaJog[z] * gap})
		}
	}
	if ti > 0 {
		if e.cfg.JogNeed(z, ti-1, along) == 0 && e.findIval(z, ti-1, along) != nil {
			gap := layer.Coords[ti] - layer.Coords[ti-1]
			dst = append(dst, nodeNbr{z, ti - 1, along, e.cfg.Costs.BetaJog[z] * gap})
		}
	}
	// Vias.
	px, py := e.vertexXY(z, ti, along)
	pos := geom.Pt(px, py)
	if z+1 < e.tg.NumLayers() {
		up := &e.tg.Layers[z+1]
		if topTi := up.TrackAt(pos.Coord(up.Dir.Perp())); topTi >= 0 {
			upAlong := pos.Coord(up.Dir)
			if e.cfg.ViaNeed(z, ti, topTi, pos) == 0 && e.findIval(z+1, topTi, upAlong) != nil {
				dst = append(dst, nodeNbr{z + 1, topTi, upAlong, e.cfg.Costs.GammaVia[z]})
			}
		}
	}
	if z > 0 {
		down := &e.tg.Layers[z-1]
		if botTi := down.TrackAt(pos.Coord(down.Dir.Perp())); botTi >= 0 {
			downAlong := pos.Coord(down.Dir)
			if e.cfg.ViaNeed(z-1, botTi, ti, pos) == 0 && e.findIval(z-1, botTi, downAlong) != nil {
				dst = append(dst, nodeNbr{z - 1, botTi, downAlong, e.cfg.Costs.GammaVia[z-1]})
			}
		}
	}
	return dst
}

func searchInts(xs []int, x int) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
