package pathsearch

import (
	"container/heap"

	"bonnroute/internal/geom"
)

// NodeSearch is the classical maze-running reference: Dijkstra (optionally
// goal-directed through cfg.Pi) labeling every track-graph vertex
// individually. It supports only MaxNeed == 0 and exists (a) as the
// correctness oracle the interval search is tested against and (b) as the
// baseline of the paper's ≥6× interval-labelling speedup measurement
// (§4.1) and of the ISR-like comparison router.
func NodeSearch(cfg *Config, S, T []geom.Point3) *Path {
	if cfg.MaxNeed != 0 {
		panic("pathsearch: NodeSearch supports MaxNeed == 0 only")
	}
	s := &searcher{cfg: cfg, tg: cfg.Tracks}
	s.ivalCache = map[trackKey][]*ival{}
	if cfg.Area == nil {
		s.area = FullArea(s.tg.NumLayers(), s.tg.Area)
	} else {
		s.area = cfg.Area
	}
	return s.runNode(S, T)
}

type nodeVertex struct {
	z, ti, along int
}

type nodeState struct {
	dist   int
	parent nodeVertex
	hasPar bool
	done   bool
}

func (s *searcher) runNode(S, T []geom.Point3) *Path {
	targets := map[nodeVertex]bool{}
	for _, t := range T {
		ti := s.trackOf(t)
		if ti < 0 {
			continue
		}
		v := nodeVertex{t.Z, ti, s.alongOf(t)}
		if s.findIval(v.z, v.ti, v.along) != nil {
			targets[v] = true
		}
	}
	if len(targets) == 0 {
		return nil
	}

	state := map[nodeVertex]*nodeState{}
	pq := &nodeHeap{}
	relax := func(v nodeVertex, d int, from nodeVertex, hasFrom bool) {
		st, ok := state[v]
		if !ok {
			st = &nodeState{dist: inf}
			state[v] = st
		}
		if d < st.dist {
			st.dist = d
			st.parent = from
			st.hasPar = hasFrom
			heap.Push(pq, nodeItem{key: d + s.pi(v.z, v.ti, v.along), v: v})
		}
	}
	for _, src := range S {
		ti := s.trackOf(src)
		if ti < 0 {
			continue
		}
		v := nodeVertex{src.Z, ti, s.alongOf(src)}
		if s.findIval(v.z, v.ti, v.along) != nil {
			relax(v, 0, nodeVertex{}, false)
		}
	}

	var bestV nodeVertex
	best := inf
	pops := 0
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		st := state[it.v]
		if st == nil || st.done || it.key != st.dist+s.pi(it.v.z, it.v.ti, it.v.along) {
			continue
		}
		st.done = true
		pops++
		if targets[it.v] && st.dist < best {
			best = st.dist
			bestV = it.v
			break // first settled target is optimal under feasible π
		}
		s.nodeNeighbors(it.v, func(nb nodeVertex, cost int) {
			relax(nb, st.dist+cost, it.v, true)
		})
	}
	if best == inf {
		return nil
	}
	// Backtrack.
	var pts []geom.Point3
	v := bestV
	for {
		pts = append(pts, s.vertexPoint(v.z, v.ti, v.along))
		st := state[v]
		if !st.hasPar {
			break
		}
		v = st.parent
	}
	for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
		pts[i], pts[j] = pts[j], pts[i]
	}
	return &Path{
		Points: compressWaypoints(pts),
		Cost:   best,
		Stats:  Stats{HeapPops: pops, Labels: len(state)},
	}
}

// nodeNeighbors enumerates the outgoing edges of a vertex: steps to the
// previous/next crossing along the track, jogs, and vias.
func (s *searcher) nodeNeighbors(v nodeVertex, visit func(nb nodeVertex, cost int)) {
	iv := s.findIval(v.z, v.ti, v.along)
	if iv == nil {
		return
	}
	layer := &s.tg.Layers[v.z]
	// Along-track steps to adjacent crossings (staying inside the
	// contiguous legal region, which at MaxNeed==0 is one interval).
	cr := layer.Cross
	idx := searchInts(cr, v.along)
	if idx < len(cr) && cr[idx] == v.along {
		if idx+1 < len(cr) && cr[idx+1] <= iv.hi {
			visit(nodeVertex{v.z, v.ti, cr[idx+1]}, cr[idx+1]-v.along)
		}
		if idx > 0 && cr[idx-1] >= iv.lo {
			visit(nodeVertex{v.z, v.ti, cr[idx-1]}, v.along-cr[idx-1])
		}
	}
	// Jogs.
	if v.ti+1 < len(layer.Coords) {
		if s.cfg.JogNeed(v.z, v.ti, v.along) == 0 && s.findIval(v.z, v.ti+1, v.along) != nil {
			gap := layer.Coords[v.ti+1] - layer.Coords[v.ti]
			visit(nodeVertex{v.z, v.ti + 1, v.along}, s.cfg.Costs.BetaJog[v.z]*gap)
		}
	}
	if v.ti > 0 {
		if s.cfg.JogNeed(v.z, v.ti-1, v.along) == 0 && s.findIval(v.z, v.ti-1, v.along) != nil {
			gap := layer.Coords[v.ti] - layer.Coords[v.ti-1]
			visit(nodeVertex{v.z, v.ti - 1, v.along}, s.cfg.Costs.BetaJog[v.z]*gap)
		}
	}
	// Vias.
	px, py := s.vertexXY(v.z, v.ti, v.along)
	pos := geom.Pt(px, py)
	if v.z+1 < s.tg.NumLayers() {
		up := &s.tg.Layers[v.z+1]
		if topTi := up.TrackAt(pos.Coord(up.Dir.Perp())); topTi >= 0 {
			upAlong := pos.Coord(up.Dir)
			if s.cfg.ViaNeed(v.z, v.ti, topTi, pos) == 0 && s.findIval(v.z+1, topTi, upAlong) != nil {
				visit(nodeVertex{v.z + 1, topTi, upAlong}, s.cfg.Costs.GammaVia[v.z])
			}
		}
	}
	if v.z > 0 {
		down := &s.tg.Layers[v.z-1]
		if botTi := down.TrackAt(pos.Coord(down.Dir.Perp())); botTi >= 0 {
			downAlong := pos.Coord(down.Dir)
			if s.cfg.ViaNeed(v.z-1, botTi, v.ti, pos) == 0 && s.findIval(v.z-1, botTi, downAlong) != nil {
				visit(nodeVertex{v.z - 1, botTi, downAlong}, s.cfg.Costs.GammaVia[v.z-1])
			}
		}
	}
}

func searchInts(xs []int, x int) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

type nodeItem struct {
	key int
	v   nodeVertex
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
