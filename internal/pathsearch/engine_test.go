package pathsearch

import (
	"sync"
	"sync/atomic"
	"testing"

	"bonnroute/internal/geom"
)

// blockedWorld builds a 4-layer world with scattered blockages so searches
// exercise detours, jogs, and vias — not just the straight-line fast path.
func blockedWorld() (*testWorld, *Config, []geom.Point3, []geom.Point3) {
	w := newWorld(4, 10, 400)
	w.block(0, geom.R(100, 0, 110, 300))
	w.block(0, geom.R(200, 100, 210, 400))
	w.block(1, geom.R(140, 140, 260, 160))
	w.block(2, geom.R(0, 240, 300, 250))
	cfg := w.config(UniformCosts(4, 3, 50), nil, nil)
	S := []geom.Point3{geom.Pt3(5, 5, 0)}
	T := []geom.Point3{geom.Pt3(385, 365, 0), geom.Pt3(365, 385, 2)}
	return w, cfg, S, T
}

func pathsEqual(a, b *Path) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Cost != b.Cost || len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}

// TestEngineReuseDeterminism verifies the epoch-reset contract: a reused
// engine returns bit-identical paths and effort counters on every rerun
// of the same search.
func TestEngineReuseDeterminism(t *testing.T) {
	_, cfg, S, T := blockedWorld()
	e := NewEngine()
	first := e.Search(cfg, S, T)
	if first == nil {
		t.Fatal("no path")
	}
	for i := 0; i < 10; i++ {
		p := e.Search(cfg, S, T)
		if !pathsEqual(first, p) {
			t.Fatalf("run %d: path diverged after engine reuse", i)
		}
		if p.Stats.HeapPops != first.Stats.HeapPops || p.Stats.Labels != first.Stats.Labels {
			t.Fatalf("run %d: stats diverged: %+v vs %+v", i, p.Stats, first.Stats)
		}
	}
}

// TestBucketVsHeapEquivalence is the queue-swap guard: the Dial bucket
// queue and the binary heap must pop in the same (key asc, seq desc)
// order, so forcing the heap cannot change the found path or the effort.
func TestBucketVsHeapEquivalence(t *testing.T) {
	_, cfg, S, T := blockedWorld()
	e := NewEngine()
	bucket := e.Search(cfg, S, T)
	if bucket == nil {
		t.Fatal("no path")
	}
	heapCfg := *cfg
	heapCfg.ForceHeapQueue = true
	heap := e.Search(&heapCfg, S, T)
	if !pathsEqual(bucket, heap) {
		t.Fatalf("bucket and heap queues found different paths:\n  bucket %v cost %d\n  heap   %v cost %d",
			bucket.Points, bucket.Cost, heap.Points, heap.Cost)
	}
	if bucket.Stats.HeapPops != heap.Stats.HeapPops || bucket.Stats.Labels != heap.Stats.Labels {
		t.Fatalf("bucket and heap effort differ: %+v vs %+v", bucket.Stats, heap.Stats)
	}

	// Node search: same guard for the reference Dijkstra.
	nb := e.NodeSearch(cfg, S, T)
	nh := e.NodeSearch(&heapCfg, S, T)
	if !pathsEqual(nb, nh) {
		t.Fatal("node search: bucket and heap queues found different paths")
	}
}

// TestSteadyStateAllocs is the allocation-regression guard for the
// tentpole claim: once warm, a search allocates only the returned Path
// (struct + waypoint slice) — everything else comes from engine pools.
func TestSteadyStateAllocs(t *testing.T) {
	_, cfg, S, T := blockedWorld()
	e := NewEngine()
	e.Search(cfg, S, T) // warm the pools
	e.Search(cfg, S, T)
	const maxAllocs = 8
	if got := testing.AllocsPerRun(50, func() {
		if e.Search(cfg, S, T) == nil {
			t.Fatal("no path")
		}
	}); got > maxAllocs {
		t.Errorf("interval search: %v allocs/op steady-state, want <= %d", got, maxAllocs)
	}
	e.NodeSearch(cfg, S, T)
	e.NodeSearch(cfg, S, T)
	const maxNodeAllocs = 16
	if got := testing.AllocsPerRun(50, func() {
		if e.NodeSearch(cfg, S, T) == nil {
			t.Fatal("no path")
		}
	}); got > maxNodeAllocs {
		t.Errorf("node search: %v allocs/op steady-state, want <= %d", got, maxNodeAllocs)
	}
}

// TestParallelSteadyStateAllocs extends the allocation guard to the
// parallel path: four warmed engines searching concurrently (the shape
// of a Workers=4 strip round) must stay within the same per-search
// budget as the Workers=1 guard above — sharding must not reintroduce
// per-search heap traffic through contention fallbacks or shared
// scratch.
func TestParallelSteadyStateAllocs(t *testing.T) {
	_, cfg, S, T := blockedWorld()
	const workers = 4
	const perWorker = 25
	engines := make([]*Engine, workers)
	for i := range engines {
		engines[i] = NewEngine()
		engines[i].Search(cfg, S, T) // warm the pools
		engines[i].Search(cfg, S, T)
	}
	var failed atomic.Bool
	total := testing.AllocsPerRun(5, func() {
		var wg sync.WaitGroup
		for _, e := range engines {
			wg.Add(1)
			go func(e *Engine) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					if e.Search(cfg, S, T) == nil {
						failed.Store(true)
						return
					}
				}
			}(e)
		}
		wg.Wait()
	})
	if failed.Load() {
		t.Fatal("no path")
	}
	// The goroutine spawns and WaitGroup churn amortize over
	// workers*perWorker searches; the per-search budget matches the
	// serial guard's maxAllocs.
	const maxAllocs = 8
	if perSearch := total / (workers * perWorker); perSearch > maxAllocs {
		t.Errorf("parallel interval search: %.2f allocs/op steady-state, want <= %d",
			perSearch, maxAllocs)
	}
}

// TestFutureCacheReuse verifies HFutureFor's rip-up-retry fast path: the
// same net re-requesting π for unchanged targets gets the cached
// structure back, and a target change invalidates it.
func TestFutureCacheReuse(t *testing.T) {
	e := NewEngine()
	costs := UniformCosts(4, 3, 50)
	pts := []geom.Point3{geom.Pt3(100, 100, 0), geom.Pt3(200, 200, 2)}

	first := e.HFutureFor(7, 4, costs, pts)
	again := e.HFutureFor(7, 4, costs, pts)
	if first != again {
		t.Error("same net, same targets: expected cached π_H back")
	}
	if e.Stats().PiReused != 1 {
		t.Errorf("PiReused = %d, want 1", e.Stats().PiReused)
	}
	other := e.HFutureFor(8, 4, costs, pts)
	if other == first {
		t.Error("different net: expected a fresh π_H")
	}
	moved := e.HFutureFor(8, 4, costs, []geom.Point3{geom.Pt3(50, 50, 1)})
	if moved == other {
		t.Error("changed targets: expected a fresh π_H")
	}

	// The cached π must price vertices exactly like an uncached one.
	fresh := NewHFuture(4, costs, map[int][]geom.Rect{
		0: {geom.R(100, 100, 101, 101)},
		2: {geom.R(200, 200, 201, 201)},
	})
	cached := e.HFutureFor(9, 4, costs, pts)
	for _, probe := range []geom.Point3{
		geom.Pt3(0, 0, 0), geom.Pt3(150, 150, 1), geom.Pt3(300, 10, 3), geom.Pt3(100, 100, 0),
	} {
		if got, want := cached.At(probe.X, probe.Y, probe.Z), fresh.At(probe.X, probe.Y, probe.Z); got != want {
			t.Errorf("π(%v) = %d via cache, %d fresh", probe, got, want)
		}
	}
}

// TestTakeStats verifies the explicit per-engine merge: totals accumulate
// across searches and TakeStats drains them.
func TestTakeStats(t *testing.T) {
	_, cfg, S, T := blockedWorld()
	e := NewEngine()
	e.Search(cfg, S, T)
	e.Search(cfg, S, T)
	s := e.TakeStats()
	if s.Searches != 2 {
		t.Errorf("Searches = %d, want 2", s.Searches)
	}
	if s.Labels == 0 || s.HeapPops == 0 || s.Intervals == 0 {
		t.Errorf("expected nonzero effort, got %+v", s)
	}
	if after := e.Stats(); after != (Stats{}) {
		t.Errorf("TakeStats did not drain: %+v", after)
	}
}

// BenchmarkEngineSteady measures the steady-state hot path the router
// workers run: one engine reused across searches. Compare against
// BenchmarkEngineSteady_HeapQueue for the bucket-queue win.
func BenchmarkEngineSteady(b *testing.B) {
	_, cfg, S, T := blockedWorld()
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Search(cfg, S, T) == nil {
			b.Fatal("no path")
		}
	}
}

func BenchmarkEngineSteady_HeapQueue(b *testing.B) {
	_, cfg, S, T := blockedWorld()
	heapCfg := *cfg
	heapCfg.ForceHeapQueue = true
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Search(&heapCfg, S, T) == nil {
			b.Fatal("no path")
		}
	}
}
