package pathsearch

import (
	"math/rand"
	"testing"
)

// runQueueSequence drives a bucketQueue and a reference (key, seq) heap
// through the same randomized push/pop interleaving and requires
// identical pop sequences. maxStep is the largest key increase a push
// may use relative to the last popped key — pinned at the bucket-window
// boundary by the callers, so pushes land exactly on the last in-window
// key (cur+8191), exactly one past it (cur+8192, must overflow), and
// beyond.
func runQueueSequence(t *testing.T, maxStep int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var bq bucketQueue
	bq.reset()
	var ref pqHeap
	seq := int32(0)
	frontier := 0 // key of the last popped item

	push := func(key int) {
		if key < 0 {
			key = 0
		}
		it := pqItem{key: key, seq: seq, label: seq, side: int8(rng.Intn(3) - 1)}
		seq++
		bq.push(it)
		ref.push(it)
	}
	popBoth := func() {
		got, ok := bq.pop()
		if !ok {
			t.Fatal("bucket queue empty while reference heap is not")
		}
		want := ref.pop()
		if got != want {
			t.Fatalf("maxStep=%d: pop order diverged: bucket %+v, heap %+v", maxStep, got, want)
		}
		frontier = got.key
	}

	push(rng.Intn(100))
	for op := 0; op < 5000; op++ {
		if rng.Intn(3) != 0 && !bq.empty() {
			popBoth()
			continue
		}
		delta := rng.Intn(maxStep + 1)
		switch rng.Intn(8) {
		case 0:
			delta = maxStep // exact boundary step
		case 1:
			delta = -rng.Intn(50) // key decrease (locally-infeasible π_P)
		}
		push(frontier + delta)
	}
	for !bq.empty() {
		popBoth()
	}
	if len(ref) != 0 {
		t.Fatalf("reference heap holds %d items after bucket queue drained", len(ref))
	}
}

// TestBucketQueueWindowBoundary pins the queue equivalence at the exact
// bucket-window edge: max key steps of 8191 (last in-window offset),
// 8192 (the window size — first key that must overflow), and 8193.
func TestBucketQueueWindowBoundary(t *testing.T) {
	if bucketWindow != 8192 {
		t.Fatalf("test assumes bucketWindow = 8192, got %d", bucketWindow)
	}
	for _, maxStep := range []int{bucketWindow - 1, bucketWindow, bucketWindow + 1} {
		for seed := int64(1); seed <= 4; seed++ {
			runQueueSequence(t, maxStep, seed)
		}
	}
}

// TestBucketGateBoundaryEquivalence straddles the beginSearch gate
// (useBuckets requires maxKeyStep < bucketWindow): GammaVia of 4093,
// 4094 and 4095 give maxKeyStep 2·γ+4 = 8190, 8192 and 8194 — the last
// value below the window, the first at it, and one past. Whichever side
// of the gate a config lands on, forcing the heap must not change the
// found path or the search effort.
func TestBucketGateBoundaryEquivalence(t *testing.T) {
	for _, gamma := range []int{4093, 4094, 4095} {
		_, cfg, S, T := blockedWorld()
		for v := range cfg.Costs.GammaVia {
			cfg.Costs.GammaVia[v] = gamma
		}
		e := NewEngine()
		if step := e.maxKeyStep(cfg); step != 2*gamma+4 {
			t.Fatalf("γ=%d: maxKeyStep = %d, want %d (via cost must dominate)", gamma, step, 2*gamma+4)
		}
		def := e.Search(cfg, S, T)
		if def == nil {
			t.Fatalf("γ=%d: no path", gamma)
		}
		heapCfg := *cfg
		heapCfg.ForceHeapQueue = true
		forced := e.Search(&heapCfg, S, T)
		if !pathsEqual(def, forced) {
			t.Fatalf("γ=%d (maxKeyStep %d): default and forced-heap paths differ:\n  default %v cost %d\n  heap    %v cost %d",
				gamma, 2*gamma+4, def.Points, def.Cost, forced.Points, forced.Cost)
		}
		if def.Stats.HeapPops != forced.Stats.HeapPops || def.Stats.Labels != forced.Stats.Labels {
			t.Fatalf("γ=%d: effort differs: %+v vs %+v", gamma, def.Stats, forced.Stats)
		}
	}
}
