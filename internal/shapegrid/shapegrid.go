// Package shapegrid implements BonnRoute's shape grid (paper §3.3): the
// spatial store of all blockage, wire, via and pin shapes that diff-net
// rule checking is built on.
//
// Each plane (wiring or via layer) is partitioned into rectangular cells.
// Rows of cells along the preferred direction are stored as run-length
// intervals in AVL trees (package intervalmap), where each run carries a
// *cell configuration number* — an index into an interning table of cell
// configurations. Cells covered by the same set of shapes share a
// configuration and merge into one interval, so long wires and repetitive
// blockage patterns compress extremely well.
//
// Shape records themselves are interned exactly once in an append-only
// chunked table and addressed by 32-bit ids; a cell configuration is a
// list of shape ids (4 bytes per entry) rather than a copy of the shape
// records. Since a cell accumulating k shapes interns configurations of
// every size 1..k, storing ids instead of 48-byte records shrinks the
// configuration store by an order of magnitude at scale.
//
// One deliberate deviation from the paper: configuration entries store the
// full absolute rectangle of each shape rather than the cell-clipped
// relative rectangle. This sacrifices configuration sharing between
// distant identical cell patterns (a memory optimization) but makes shape
// reconstruction on query exact, which the DRC audits in this
// reproduction rely on. Asymptotics and interval structure are unchanged.
package shapegrid

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"bonnroute/internal/geom"
	"bonnroute/internal/intervalmap"
	"bonnroute/internal/rules"
)

// Kind classifies a stored shape.
type Kind uint8

const (
	KindWire Kind = iota
	KindVia
	KindPin
	KindBlockage
)

// Ripup levels (3 bits, paper §3.3/§3.6: eight levels). Higher levels
// are harder to rip; RipupNever marks fixed geometry.
const (
	RipupFree     uint8 = 0 // standard wires, rippable at any effort
	RipupStandard uint8 = 1
	RipupCritical uint8 = 3 // critical-net wiring
	RipupReserved uint8 = 5 // pin-access reservations
	RipupNever    uint8 = 7 // pins, blockages
)

// NoNet is the Net value of shapes that belong to no net (blockages).
const NoNet = -1

// Shape is one rectangle of metal in a plane.
type Shape struct {
	Rect geom.Rect
	// Net owning the shape, or NoNet.
	Net int32
	// Class selects the spacing rules the shape is checked under.
	Class rules.ShapeClass
	// Ripup is the ripup level (0–7).
	Ripup uint8
	Kind  Kind
}

// Grid is the shape store of one plane.
//
// Concurrency: rows are striped interval maps (package intervalmap), so
// queries are lock-free against atomically published snapshots and
// mutations in disjoint stripes proceed concurrently. The shape and
// configuration intern tables are append-only chunked vectors behind
// atomic pointers: readers index them without locking; writers serialize
// on internMu. Concurrent mutators whose shapes (plus clearance) live in
// disjoint regions observe and produce exactly the serial result; that
// regional disjointness is the detail router's ownership contract
// (§5.1).
type Grid struct {
	area  geom.Rect
	dir   geom.Direction // preferred direction: rows run along this axis
	cellP int            // cell extent along preferred direction
	cellO int            // cell extent orthogonal to it
	rows  []*intervalmap.Striped

	// configs is the interned configuration vector: id -> shape-id list
	// (id 0 = empty, nil). shapes is the interned shape vector: shape id
	// -> record (id 0 reserved). Chunks are write-once slots; the chunk
	// tables are copied on growth, so a loaded table stays valid forever.
	configs atomic.Pointer[[]*cfgChunk]
	shapes  atomic.Pointer[[]*shapeChunk]

	internMu   sync.Mutex
	intern     map[string]uint64 // canonical id-list key -> config id
	shapeIDs   map[Shape]uint32  // shape record -> shape id
	nConfigs   uint64            // next config id
	nShapes    uint32            // next shape id
	cfgEntries int64             // total ids across interned configs
}

const (
	cfgChunkBits = 9
	cfgChunkSize = 1 << cfgChunkBits
	shpChunkBits = 12
	shpChunkSize = 1 << shpChunkBits
)

type cfgChunk [cfgChunkSize][]uint32

type shapeChunk [shpChunkSize]Shape

// NewGrid creates a shape grid over area for a plane with the given
// preferred direction. cell is the cell edge length; the paper chooses it
// so that shapes of different nets cannot legally share a cell (about one
// wiring pitch).
func NewGrid(area geom.Rect, dir geom.Direction, cell int) *Grid {
	if cell <= 0 {
		panic("shapegrid: cell size must be positive")
	}
	g := &Grid{
		area:     area,
		dir:      dir,
		cellP:    cell,
		cellO:    cell,
		intern:   make(map[string]uint64),
		shapeIDs: make(map[Shape]uint32),
	}
	table := []*cfgChunk{new(cfgChunk)}
	g.configs.Store(&table)
	shapeTable := []*shapeChunk{new(shapeChunk)}
	g.shapes.Store(&shapeTable)
	g.nConfigs = 1 // id 0 = empty configuration
	g.nShapes = 1  // shape id 0 reserved
	nRows := (g.orthoSpan().Len() + cell - 1) / cell
	nCells := (g.prefSpan().Len() + cell - 1) / cell
	stripes := nCells / 32
	if stripes < 1 {
		stripes = 1
	}
	if stripes > 8 {
		stripes = 8
	}
	g.rows = make([]*intervalmap.Striped, nRows+1)
	for i := range g.rows {
		g.rows[i] = intervalmap.NewStriped(0, nCells+1, stripes)
	}
	return g
}

// config returns the shape-id list of a configuration id without locking.
func (g *Grid) config(id uint64) []uint32 {
	if id == 0 {
		return nil
	}
	table := *g.configs.Load()
	ci := int(id >> cfgChunkBits)
	if ci >= len(table) {
		// The id reached us through a row snapshot published after the
		// table grew; a reload observes the grown table.
		table = *g.configs.Load()
	}
	return table[ci][id&(cfgChunkSize-1)]
}

// shape returns the record of a shape id without locking.
func (g *Grid) shape(id uint32) Shape {
	table := *g.shapes.Load()
	ci := int(id >> shpChunkBits)
	if ci >= len(table) {
		table = *g.shapes.Load()
	}
	return table[ci][id&(shpChunkSize-1)]
}

func (g *Grid) orthoSpan() geom.Interval { return g.area.Span(g.dir.Perp()) }
func (g *Grid) prefSpan() geom.Interval  { return g.area.Span(g.dir) }

// rowRange returns the row indices covered by r (clipped to the grid).
func (g *Grid) rowRange(r geom.Rect) (int, int) {
	o := g.orthoSpan()
	span := r.Span(g.dir.Perp()).Intersection(o)
	if span.Empty() {
		return 0, -1
	}
	return (span.Lo - o.Lo) / g.cellO, (span.Hi - 1 - o.Lo) / g.cellO
}

// cellRange returns the cell-index interval covered by r along the
// preferred direction (clipped).
func (g *Grid) cellRange(r geom.Rect) (int, int) {
	p := g.prefSpan()
	span := r.Span(g.dir).Intersection(p)
	if span.Empty() {
		return 0, -1
	}
	return (span.Lo - p.Lo) / g.cellP, (span.Hi - 1 - p.Lo) / g.cellP
}

// Add stores s. Shapes extending beyond the grid area are clipped to it
// for indexing purposes but reported with their full rectangle.
func (g *Grid) Add(s Shape) {
	r0, r1 := g.rowRange(s.Rect)
	c0, c1 := g.cellRange(s.Rect)
	if r1 < r0 || c1 < c0 {
		return
	}
	sid := g.internShape(s)
	for row := r0; row <= r1; row++ {
		g.rows[row].Update(c0, c1+1, func(old uint64) uint64 {
			return g.withEntry(old, s, sid)
		})
	}
}

// Remove deletes the exact shape s (all fields must match an entry added
// earlier). It reports whether anything was removed.
func (g *Grid) Remove(s Shape) bool {
	r0, r1 := g.rowRange(s.Rect)
	c0, c1 := g.cellRange(s.Rect)
	if r1 < r0 || c1 < c0 {
		return false
	}
	removed := false
	for row := r0; row <= r1; row++ {
		g.rows[row].Update(c0, c1+1, func(old uint64) uint64 {
			id, ok := g.withoutEntry(old, s)
			if ok {
				removed = true
			}
			return id
		})
	}
	return removed
}

// Query visits every distinct stored shape whose rectangle's closure
// intersects r (abutting shapes are included: spacing rules compare
// against touching metal too). Return false from visit to stop early.
func (g *Grid) Query(r geom.Rect, visit func(Shape) bool) {
	// Expand the index window by one DBU so shapes that merely abut r
	// (stored in the neighboring cell) are found; the Touches filter
	// below still applies to the original window.
	rq := r.Expanded(1)
	r0, r1 := g.rowRange(rq)
	c0, c1 := g.cellRange(rq)
	if r1 < r0 || c1 < c0 {
		return
	}
	seen := make(map[uint32]struct{})
	stop := false
	for row := r0; row <= r1 && !stop; row++ {
		g.rows[row].Runs(c0, c1+1, func(lo, hi int, id uint64) bool {
			for _, sid := range g.config(id) {
				if _, dup := seen[sid]; dup {
					continue
				}
				seen[sid] = struct{}{}
				s := g.shape(sid)
				if !s.Rect.Touches(r) {
					continue
				}
				if !visit(s) {
					stop = true
					return false
				}
			}
			return true
		})
	}
}

// QueryAll returns the distinct shapes touching r.
func (g *Grid) QueryAll(r geom.Rect) []Shape {
	var out []Shape
	g.Query(r, func(s Shape) bool {
		out = append(out, s)
		return true
	})
	return out
}

// RemovableNets returns the distinct nets owning shapes that touch r and
// whose every touching shape has ripup level ≤ maxRipup. This is the
// shape-grid service behind rip-up candidate selection (§3.3, §4.2).
func (g *Grid) RemovableNets(r geom.Rect, maxRipup uint8) []int32 {
	ok := map[int32]bool{}
	g.Query(r, func(s Shape) bool {
		if s.Net == NoNet {
			return true
		}
		if s.Ripup > maxRipup {
			ok[s.Net] = false
		} else if _, seen := ok[s.Net]; !seen {
			ok[s.Net] = true
		}
		return true
	})
	var nets []int32
	for n, can := range ok {
		if can {
			nets = append(nets, n)
		}
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i] < nets[j] })
	return nets
}

// Stats describes the storage state (exercised by the Figure 3 test and
// reported in EXPERIMENTS.md).
type Stats struct {
	// Intervals is the number of stored runs over all rows.
	Intervals int
	// Configs is the number of distinct non-empty cell configurations
	// ever interned.
	Configs int
	// Shapes is the number of distinct shape records ever interned.
	Shapes int
}

// Stats returns current storage statistics.
func (g *Grid) Stats() Stats {
	g.internMu.Lock()
	st := Stats{Configs: int(g.nConfigs) - 1, Shapes: int(g.nShapes) - 1}
	g.internMu.Unlock()
	for i := range g.rows {
		st.Intervals += g.rows[i].Len()
	}
	return st
}

// MemStats is the approximate heap footprint of the grid's storage,
// derived from element counts and fixed per-record sizes. Unlike runtime
// heap sampling it is deterministic for a fixed workload, which is what
// the scale-tier byte-budget regression tests pin.
type MemStats struct {
	RowBytes    int64 // striped interval trees + published snapshots
	ShapeBytes  int64 // interned shape records (table chunks)
	ConfigBytes int64 // interned configuration id lists + slice headers
	InternBytes int64 // intern map entries (keys, values, bucket overhead)
}

// Total sums all components.
func (m MemStats) Total() int64 {
	return m.RowBytes + m.ShapeBytes + m.ConfigBytes + m.InternBytes
}

// Mem returns the grid's approximate storage footprint.
func (g *Grid) Mem() MemStats {
	var m MemStats
	for i := range g.rows {
		m.RowBytes += g.rows[i].Footprint()
	}
	g.internMu.Lock()
	nCfg := int64(g.nConfigs) - 1
	nShp := int64(g.nShapes) - 1
	entries := g.cfgEntries
	g.internMu.Unlock()
	const shapeBytes = int64(unsafe.Sizeof(Shape{}))
	const sliceHeader = 24
	const mapSlot = 16 // rough per-entry bucket overhead
	m.ShapeBytes = ((nShp + shpChunkSize - 1) / shpChunkSize) * shpChunkSize * shapeBytes
	m.ConfigBytes = entries*4 + nCfg*sliceHeader
	// Config intern keys are 4 bytes per entry plus string headers; the
	// shape intern map stores the 48-byte record inline as its key.
	m.InternBytes = entries*4 + nCfg*(16+mapSlot) + nShp*(shapeBytes+4+mapSlot)
	return m
}

// withEntry returns the config id for config old plus shape s (already
// interned as sid), keeping the id list in canonical content order.
func (g *Grid) withEntry(old uint64, s Shape, sid uint32) uint64 {
	entries := g.config(old)
	next := make([]uint32, 0, len(entries)+1)
	inserted := false
	for _, e := range entries {
		if !inserted && shapeLess(s, g.shape(e)) {
			next = append(next, sid)
			inserted = true
		}
		next = append(next, e)
	}
	if !inserted {
		next = append(next, sid)
	}
	return g.internConfig(next)
}

// withoutEntry returns the config id for config old minus shape s and
// whether s was present.
func (g *Grid) withoutEntry(old uint64, s Shape) (uint64, bool) {
	entries := g.config(old)
	idx := -1
	for i, e := range entries {
		if g.shape(e) == s {
			idx = i
			break
		}
	}
	if idx < 0 {
		return old, false
	}
	if len(entries) == 1 {
		return 0, true
	}
	next := make([]uint32, 0, len(entries)-1)
	next = append(next, entries[:idx]...)
	next = append(next, entries[idx+1:]...)
	return g.internConfig(next), true
}

// internShape returns the id of shape s, interning it on first sight.
func (g *Grid) internShape(s Shape) uint32 {
	g.internMu.Lock()
	defer g.internMu.Unlock()
	if id, ok := g.shapeIDs[s]; ok {
		return id
	}
	id := g.nShapes
	g.nShapes++
	table := *g.shapes.Load()
	ci := int(id >> shpChunkBits)
	if ci == len(table) {
		next := make([]*shapeChunk, len(table)+1)
		copy(next, table)
		next[ci] = new(shapeChunk)
		g.shapes.Store(&next)
		table = next
	}
	// The slot write precedes the id's escape from this function, and
	// the id reaches readers only through a subsequent atomic row
	// snapshot publication, so unlocked readers see the filled record.
	table[ci][id&(shpChunkSize-1)] = s
	g.shapeIDs[s] = id
	return id
}

// internConfig interns an id list that is already in canonical content
// order (withEntry inserts in shapeLess position, withoutEntry preserves
// order). Shape interning is content-keyed per grid, so equal-content
// configurations always produce identical id lists within a run, and the
// id assignment order under concurrent mutators never changes what
// queries observe.
func (g *Grid) internConfig(entries []uint32) uint64 {
	if len(entries) == 0 {
		return 0
	}
	key := configKey(entries)
	g.internMu.Lock()
	defer g.internMu.Unlock()
	if id, ok := g.intern[key]; ok {
		return id
	}
	id := g.nConfigs
	g.nConfigs++
	g.cfgEntries += int64(len(entries))
	table := *g.configs.Load()
	ci := int(id >> cfgChunkBits)
	if ci == len(table) {
		next := make([]*cfgChunk, len(table)+1)
		copy(next, table)
		next[ci] = new(cfgChunk)
		g.configs.Store(&next)
		table = next
	}
	table[ci][id&(cfgChunkSize-1)] = entries
	g.intern[key] = id
	return id
}

func shapeLess(a, b Shape) bool {
	if a.Rect != b.Rect {
		ra, rb := a.Rect, b.Rect
		if ra.XMin != rb.XMin {
			return ra.XMin < rb.XMin
		}
		if ra.YMin != rb.YMin {
			return ra.YMin < rb.YMin
		}
		if ra.XMax != rb.XMax {
			return ra.XMax < rb.XMax
		}
		return ra.YMax < rb.YMax
	}
	if a.Net != b.Net {
		return a.Net < b.Net
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Ripup != b.Ripup {
		return a.Ripup < b.Ripup
	}
	return a.Kind < b.Kind
}

func configKey(entries []uint32) string {
	buf := make([]byte, len(entries)*4)
	for i, id := range entries {
		binary.LittleEndian.PutUint32(buf[i*4:], id)
	}
	return string(buf)
}
