package shapegrid

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
)

func newTestGrid() *Grid {
	return NewGrid(geom.R(0, 0, 1000, 1000), geom.Horizontal, 40)
}

func wire(net int32, r geom.Rect) Shape {
	return Shape{Rect: r, Net: net, Class: rules.ClassStandard, Ripup: RipupStandard, Kind: KindWire}
}

func TestAddQuery(t *testing.T) {
	g := newTestGrid()
	s := wire(1, geom.R(100, 100, 300, 120))
	g.Add(s)
	got := g.QueryAll(geom.R(0, 0, 1000, 1000))
	if len(got) != 1 || got[0] != s {
		t.Fatalf("QueryAll = %v", got)
	}
	// A query window far away sees nothing.
	if got := g.QueryAll(geom.R(500, 500, 600, 600)); len(got) != 0 {
		t.Fatalf("distant query = %v", got)
	}
	// A window overlapping only part of the shape still reports the full
	// rectangle exactly once.
	got = g.QueryAll(geom.R(250, 90, 400, 200))
	if len(got) != 1 || got[0].Rect != s.Rect {
		t.Fatalf("partial query = %v", got)
	}
}

func TestQueryTouching(t *testing.T) {
	g := newTestGrid()
	s := wire(1, geom.R(100, 100, 200, 120))
	g.Add(s)
	// Abutting window must see the shape (spacing checks need neighbors
	// at zero distance).
	if got := g.QueryAll(geom.R(200, 100, 240, 120)); len(got) != 1 {
		t.Fatalf("abutting query = %v", got)
	}
}

func TestRemove(t *testing.T) {
	g := newTestGrid()
	a := wire(1, geom.R(100, 100, 300, 120))
	b := wire(2, geom.R(100, 200, 300, 220))
	g.Add(a)
	g.Add(b)
	if !g.Remove(a) {
		t.Fatal("Remove(a) failed")
	}
	if g.Remove(a) {
		t.Fatal("double Remove must report false")
	}
	got := g.QueryAll(geom.R(0, 0, 1000, 1000))
	if len(got) != 1 || got[0] != b {
		t.Fatalf("after remove: %v", got)
	}
	if !g.Remove(b) {
		t.Fatal("Remove(b) failed")
	}
	if st := g.Stats(); st.Intervals != 0 {
		t.Fatalf("intervals after full removal = %d", st.Intervals)
	}
}

func TestRemoveRequiresExactMatch(t *testing.T) {
	g := newTestGrid()
	a := wire(1, geom.R(100, 100, 300, 120))
	g.Add(a)
	almost := a
	almost.Net = 2
	if g.Remove(almost) {
		t.Fatal("Remove with different net must fail")
	}
	if len(g.QueryAll(a.Rect)) != 1 {
		t.Fatal("shape lost")
	}
}

func TestOverlappingShapesBothReported(t *testing.T) {
	g := newTestGrid()
	a := wire(1, geom.R(100, 100, 300, 120))
	v := Shape{Rect: geom.R(150, 95, 190, 125), Net: 1, Class: rules.ClassViaPad, Ripup: RipupStandard, Kind: KindVia}
	g.Add(a)
	g.Add(v)
	got := g.QueryAll(geom.R(150, 100, 160, 110))
	if len(got) != 2 {
		t.Fatalf("QueryAll = %v", got)
	}
}

func TestLongWireCompressesToOneIntervalPerRow(t *testing.T) {
	g := newTestGrid()
	// A wire spanning 20 cells in one row.
	g.Add(wire(1, geom.R(0, 100, 800, 120)))
	st := g.Stats()
	if st.Intervals != 1 {
		t.Fatalf("intervals = %d, want 1 (absolute-entry runs must merge)", st.Intervals)
	}
	if st.Configs != 1 {
		t.Fatalf("configs = %d, want 1", st.Configs)
	}
}

func TestRowSpanningShape(t *testing.T) {
	g := newTestGrid()
	// A vertical shape crossing many rows.
	s := Shape{Rect: geom.R(500, 0, 520, 1000), Net: 3, Class: rules.ClassStandard, Ripup: RipupFree, Kind: KindWire}
	g.Add(s)
	st := g.Stats()
	if st.Intervals != 25 { // 1000/40 rows
		t.Fatalf("intervals = %d, want 25", st.Intervals)
	}
	// Still exactly one shape from any overlapping query.
	if got := g.QueryAll(geom.R(490, 400, 530, 600)); len(got) != 1 {
		t.Fatalf("query = %v", got)
	}
	if !g.Remove(s) {
		t.Fatal("remove failed")
	}
	if g.Stats().Intervals != 0 {
		t.Fatal("intervals remain after removal")
	}
}

func TestConfigSharing(t *testing.T) {
	g := newTestGrid()
	// Two disjoint shapes -> 2 configs; overlap region -> a third.
	g.Add(wire(1, geom.R(0, 100, 400, 120)))
	g.Add(wire(1, geom.R(200, 104, 600, 116))) // same net, overlapping metal
	st := g.Stats()
	if st.Configs != 3 {
		t.Fatalf("configs = %d, want 3 (a, a+b, b)", st.Configs)
	}
	if st.Intervals != 3 {
		t.Fatalf("intervals = %d, want 3", st.Intervals)
	}
}

func TestRemovableNets(t *testing.T) {
	g := newTestGrid()
	g.Add(wire(1, geom.R(100, 100, 300, 120)))
	g.Add(Shape{Rect: geom.R(100, 200, 300, 220), Net: 2, Class: rules.ClassStandard, Ripup: RipupCritical, Kind: KindWire})
	g.Add(Shape{Rect: geom.R(100, 300, 300, 320), Net: NoNet, Class: rules.ClassBlockage, Ripup: RipupNever, Kind: KindBlockage})
	all := geom.R(0, 0, 1000, 1000)

	if got := g.RemovableNets(all, RipupStandard); !reflect.DeepEqual(got, []int32{1}) {
		t.Fatalf("maxRipup=standard: %v", got)
	}
	if got := g.RemovableNets(all, RipupCritical); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("maxRipup=critical: %v", got)
	}
	// A net is only removable if ALL its touching shapes are rippable.
	g.Add(Shape{Rect: geom.R(400, 100, 500, 120), Net: 1, Class: rules.ClassViaPad, Ripup: RipupNever, Kind: KindPin})
	if got := g.RemovableNets(all, RipupCritical); !reflect.DeepEqual(got, []int32{2}) {
		t.Fatalf("after pin: %v", got)
	}
}

func TestVerticalGrid(t *testing.T) {
	g := NewGrid(geom.R(0, 0, 1000, 1000), geom.Vertical, 40)
	s := wire(1, geom.R(100, 0, 120, 900))
	g.Add(s)
	// Vertical preferred direction: rows run vertically, so a full-height
	// wire occupies one interval per (x-)row.
	if st := g.Stats(); st.Intervals != 1 {
		t.Fatalf("intervals = %d, want 1", st.Intervals)
	}
	if got := g.QueryAll(geom.R(90, 500, 130, 510)); len(got) != 1 || got[0] != s {
		t.Fatalf("query = %v", got)
	}
}

func TestShapeOutsideAreaIgnored(t *testing.T) {
	g := newTestGrid()
	g.Add(wire(1, geom.R(2000, 2000, 2100, 2020)))
	if st := g.Stats(); st.Intervals != 0 {
		t.Fatal("out-of-area shape must be ignored")
	}
	if g.Remove(wire(1, geom.R(2000, 2000, 2100, 2020))) {
		t.Fatal("removing out-of-area shape must report false")
	}
}

func TestQueryEarlyStop(t *testing.T) {
	g := newTestGrid()
	for i := 0; i < 5; i++ {
		g.Add(wire(int32(i), geom.R(100, 100+40*i, 300, 120+40*i)))
	}
	count := 0
	g.Query(geom.R(0, 0, 1000, 1000), func(Shape) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

// TestFigure3Style reproduces the mechanics of paper Fig. 3: a mix of
// wires and vias produces few intervals and a small interned
// configuration table even though many cells are covered.
func TestFigure3Style(t *testing.T) {
	g := newTestGrid()
	// Three horizontal wires with vias at their ends, echoing the wiring
	// of Fig. 2/3.
	for i := 0; i < 3; i++ {
		y := 120 + 120*i
		g.Add(wire(int32(i), geom.R(40, y, 640, y+20)))
		g.Add(Shape{Rect: geom.R(30, y, 70, y+20), Net: int32(i), Class: rules.ClassViaPad, Ripup: RipupStandard, Kind: KindVia})
		g.Add(Shape{Rect: geom.R(610, y, 650, y+20), Net: int32(i), Class: rules.ClassViaPad, Ripup: RipupStandard, Kind: KindVia})
	}
	st := g.Stats()
	// Each wire row splits into via/via+wire/wire/wire+via/via = 5
	// intervals, 15 total — matching the 15 intervals of the paper's
	// Fig. 3 example. (The paper additionally shares configurations
	// between the three rows via cell-relative coordinates, reaching 13
	// configs; our absolute-entry variant stores 15.)
	if st.Intervals != 15 {
		t.Fatalf("intervals = %d, want 15 (interval merging broken)", st.Intervals)
	}
	if st.Configs != 15 {
		t.Fatalf("configs = %d, want 15", st.Configs)
	}
	// Every shape reconstructs exactly.
	all := g.QueryAll(geom.R(0, 0, 1000, 1000))
	if len(all) != 9 {
		t.Fatalf("shapes = %d, want 9", len(all))
	}
}

// Property test: a random add/remove sequence matches a slice reference.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := NewGrid(geom.R(0, 0, 400, 400), geom.Horizontal, 25)
	var ref []Shape
	for op := 0; op < 500; op++ {
		if len(ref) == 0 || rng.Intn(3) != 0 {
			x, y := rng.Intn(380), rng.Intn(380)
			s := wire(int32(rng.Intn(5)), geom.R(x, y, x+1+rng.Intn(100), y+1+rng.Intn(30)))
			dup := false
			for _, r := range ref {
				if r == s {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			g.Add(s)
			ref = append(ref, s)
		} else {
			i := rng.Intn(len(ref))
			if !g.Remove(ref[i]) {
				t.Fatalf("op %d: Remove failed for %v", op, ref[i])
			}
			ref = append(ref[:i], ref[i+1:]...)
		}
		// Random window query must match brute force.
		wx, wy := rng.Intn(350), rng.Intn(350)
		win := geom.R(wx, wy, wx+rng.Intn(80), wy+rng.Intn(80))
		got := g.QueryAll(win)
		var want []Shape
		for _, s := range ref {
			if s.Rect.Touches(win) && !s.Rect.Intersection(geom.R(0, 0, 400, 400)).Empty() {
				want = append(want, s)
			}
		}
		sortShapes(got)
		sortShapes(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("op %d window %v: got %v want %v", op, win, got, want)
		}
	}
}

func sortShapes(s []Shape) {
	sort.Slice(s, func(i, j int) bool { return shapeLess(s[i], s[j]) })
}

func TestNewGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive cell")
		}
	}()
	NewGrid(geom.R(0, 0, 10, 10), geom.Horizontal, 0)
}
