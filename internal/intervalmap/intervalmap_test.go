package intervalmap

import (
	"math/rand"
	"testing"
)

func TestEmptyMap(t *testing.T) {
	var m Map
	if m.Get(0) != 0 || m.Get(-100) != 0 || m.Len() != 0 {
		t.Fatal("empty map must be all-zero")
	}
	m.Runs(-10, 10, func(lo, hi int, v uint64) bool {
		t.Fatal("empty map has no runs")
		return false
	})
}

func TestSetRangeBasic(t *testing.T) {
	var m Map
	m.SetRange(10, 20, 7)
	for x := 0; x < 30; x++ {
		want := uint64(0)
		if x >= 10 && x < 20 {
			want = 7
		}
		if got := m.Get(x); got != want {
			t.Fatalf("Get(%d) = %d, want %d", x, got, want)
		}
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestSetRangeOverwrite(t *testing.T) {
	var m Map
	m.SetRange(0, 100, 1)
	m.SetRange(40, 60, 2)
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if m.Get(39) != 1 || m.Get(40) != 2 || m.Get(59) != 2 || m.Get(60) != 1 {
		t.Fatal("overwrite boundaries wrong")
	}
	// Setting back to 1 must coalesce to a single run.
	m.SetRange(40, 60, 1)
	if m.Len() != 1 {
		t.Fatalf("Len after re-merge = %d, want 1", m.Len())
	}
}

func TestSetRangeZeroClears(t *testing.T) {
	var m Map
	m.SetRange(0, 10, 5)
	m.SetRange(3, 7, 0)
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if m.Get(3) != 0 || m.Get(6) != 0 || m.Get(2) != 5 || m.Get(7) != 5 {
		t.Fatal("zero clear wrong")
	}
}

func TestSetRangeEmptyNoop(t *testing.T) {
	var m Map
	m.SetRange(5, 5, 9)
	m.SetRange(7, 3, 9)
	if m.Len() != 0 {
		t.Fatal("empty range must be a no-op")
	}
}

func TestUpdate(t *testing.T) {
	var m Map
	m.SetRange(0, 10, 1)
	m.SetRange(20, 30, 2)
	// Add 10 to everything in [5, 25): covers run 1 tail, a gap, run 2 head.
	m.Update(5, 25, func(old uint64) uint64 { return old + 10 })
	cases := []struct {
		x int
		v uint64
	}{
		{0, 1}, {4, 1}, {5, 11}, {9, 11}, {10, 10}, {19, 10},
		{20, 12}, {24, 12}, {25, 2}, {29, 2}, {30, 0},
	}
	for _, c := range cases {
		if got := m.Get(c.x); got != c.v {
			t.Errorf("Get(%d) = %d, want %d", c.x, got, c.v)
		}
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateToZeroRemoves(t *testing.T) {
	var m Map
	m.SetRange(0, 10, 3)
	m.Update(0, 10, func(uint64) uint64 { return 0 })
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestRunsClipping(t *testing.T) {
	var m Map
	m.SetRange(0, 100, 1)
	var got [][3]int
	m.Runs(30, 40, func(lo, hi int, v uint64) bool {
		got = append(got, [3]int{lo, hi, int(v)})
		return true
	})
	if len(got) != 1 || got[0] != [3]int{30, 40, 1} {
		t.Fatalf("Runs = %v", got)
	}
}

func TestRunsEarlyStop(t *testing.T) {
	var m Map
	for i := 0; i < 10; i++ {
		m.SetRange(i*10, i*10+5, uint64(i+1))
	}
	count := 0
	m.Runs(0, 100, func(lo, hi int, v uint64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestAll(t *testing.T) {
	var m Map
	m.SetRange(10, 20, 1)
	m.SetRange(30, 40, 2)
	var runs [][3]int
	m.All(func(lo, hi int, v uint64) bool {
		runs = append(runs, [3]int{lo, hi, int(v)})
		return true
	})
	want := [][3]int{{10, 20, 1}, {30, 40, 2}}
	if len(runs) != 2 || runs[0] != want[0] || runs[1] != want[1] {
		t.Fatalf("All = %v", runs)
	}
}

func TestNegativeCoordinates(t *testing.T) {
	var m Map
	m.SetRange(-50, -10, 4)
	if m.Get(-50) != 4 || m.Get(-11) != 4 || m.Get(-10) != 0 || m.Get(-51) != 0 {
		t.Fatal("negative coordinates broken")
	}
}

// TestRandomizedAgainstReference fuzzes SetRange/Update/Get against a
// dense reference array and checks the canonical-form invariants
// (balance, disjointness, coalescing) after every operation.
func TestRandomizedAgainstReference(t *testing.T) {
	const size = 200
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var m Map
		ref := make([]uint64, size)
		for op := 0; op < 200; op++ {
			lo := rng.Intn(size)
			hi := lo + rng.Intn(size-lo)
			switch rng.Intn(3) {
			case 0:
				v := uint64(rng.Intn(4))
				m.SetRange(lo, hi, v)
				for i := lo; i < hi; i++ {
					ref[i] = v
				}
			case 1:
				add := uint64(rng.Intn(3))
				m.Update(lo, hi, func(old uint64) uint64 { return old + add })
				for i := lo; i < hi; i++ {
					ref[i] += add
				}
			case 2:
				m.Update(lo, hi, func(old uint64) uint64 { return old &^ 1 })
				for i := lo; i < hi; i++ {
					ref[i] &^= 1
				}
			}
			if err := m.checkInvariants(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
		}
		for i := 0; i < size; i++ {
			if m.Get(i) != ref[i] {
				t.Fatalf("trial %d: Get(%d) = %d, want %d", trial, i, m.Get(i), ref[i])
			}
		}
		// Canonical form: count value changes in ref, compare to Len.
		wantRuns := 0
		for i := 0; i < size; i++ {
			if ref[i] != 0 && (i == 0 || ref[i] != ref[i-1]) {
				wantRuns++
			}
		}
		if m.Len() != wantRuns {
			t.Fatalf("trial %d: Len = %d, want %d (not canonical)", trial, m.Len(), wantRuns)
		}
	}
}

func TestRunsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var m Map
	const size = 100
	ref := make([]uint64, size)
	for op := 0; op < 100; op++ {
		lo := rng.Intn(size)
		hi := lo + rng.Intn(size-lo)
		v := uint64(rng.Intn(3))
		m.SetRange(lo, hi, v)
		for i := lo; i < hi; i++ {
			ref[i] = v
		}
	}
	// Reconstruct via Runs and compare.
	got := make([]uint64, size)
	m.Runs(0, size, func(lo, hi int, v uint64) bool {
		for i := lo; i < hi; i++ {
			got[i] = v
		}
		return true
	})
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("position %d: %d != %d", i, got[i], ref[i])
		}
	}
}

func BenchmarkSetRange(b *testing.B) {
	var m Map
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lo := rng.Intn(1 << 20)
		m.SetRange(lo, lo+rng.Intn(100), uint64(rng.Intn(8)))
	}
}

func BenchmarkGet(b *testing.B) {
	var m Map
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		lo := rng.Intn(1 << 20)
		m.SetRange(lo, lo+rng.Intn(50), uint64(rng.Intn(8)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Get(rng.Intn(1 << 20))
	}
}
