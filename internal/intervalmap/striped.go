package intervalmap

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Snapshot is an immutable, flattened view of a Map: the stored runs in
// ascending order as parallel slices. Snapshots are published through
// atomic pointers so readers never take a lock (the "atomic fast-grid
// reads" half of §5.1's parallel detailed routing: searches must stay
// synchronization-free on the hot path).
type Snapshot struct {
	los, his []int32 // run coordinates fit int32 (see Map)
	vals     []uint64
}

var emptySnapshot = &Snapshot{}

// snapshotOf flattens m.
func snapshotOf(m *Map) *Snapshot {
	if m.Len() == 0 {
		return emptySnapshot
	}
	s := &Snapshot{
		los:  make([]int32, 0, m.Len()),
		his:  make([]int32, 0, m.Len()),
		vals: make([]uint64, 0, m.Len()),
	}
	m.All(func(lo, hi int, v uint64) bool {
		s.los = append(s.los, int32(lo))
		s.his = append(s.his, int32(hi))
		s.vals = append(s.vals, v)
		return true
	})
	return s
}

// Get returns the value at x (zero if uncovered).
func (s *Snapshot) Get(x int) uint64 {
	cx := clampPos(x)
	// First run with hi > x; it covers x iff its lo <= x.
	i := sort.Search(len(s.his), func(i int) bool { return s.his[i] > cx })
	if i < len(s.los) && s.los[i] <= cx {
		return s.vals[i]
	}
	return 0
}

// Len returns the number of stored runs.
func (s *Snapshot) Len() int { return len(s.los) }

// runs visits stored runs intersecting [lo, hi), clipped. Returns false
// if visit stopped the iteration.
func (s *Snapshot) runs(lo, hi int, visit func(lo, hi int, v uint64) bool) bool {
	clo, chi := clampPos(lo), clampPos(hi)
	i := sort.Search(len(s.his), func(i int) bool { return s.his[i] > clo })
	for ; i < len(s.los) && s.los[i] < chi; i++ {
		if !visit(int(max(s.los[i], clo)), int(min(s.his[i], chi)), s.vals[i]) {
			return false
		}
	}
	return true
}

// Striped is a Map sharded along its position axis: interior cut
// positions split the axis into shards, each holding its own Map, mutex,
// and atomically published Snapshot. Mutations lock only the shards
// their range overlaps, so writers in disjoint stripes proceed
// concurrently; reads (Get, Runs, Len) are lock-free against the
// snapshots.
//
// Consistency contract: a read observes each shard's latest published
// snapshot independently. Readers that span multiple shards therefore
// see a consistent view only when no concurrent writer mutates the
// shards inside the read range — which the detail router's region
// ownership guarantees (a worker's reads and writes both stay inside
// its owned strip). Runs that would be split at a cut are re-coalesced
// during iteration, so the visible run structure is identical to an
// unsharded Map's.
type Striped struct {
	cuts   []int // interior cut positions, ascending; len(shards)-1 entries
	shards []stripedShard
}

type stripedShard struct {
	mu   sync.Mutex
	m    Map
	snap atomic.Pointer[Snapshot]
	_    [24]byte // keep neighboring shards off one cache line
}

// NewStriped builds a Striped map with up to `stripes` shards cutting
// [lo, hi) evenly. The first and last shards are unbounded, so positions
// outside [lo, hi) remain addressable (they land in the boundary
// shards), preserving plain-Map semantics.
func NewStriped(lo, hi, stripes int) *Striped {
	if stripes < 1 {
		stripes = 1
	}
	if hi-lo < stripes {
		stripes = max(1, hi-lo)
	}
	s := &Striped{shards: make([]stripedShard, stripes)}
	w := (hi - lo) / stripes
	for i := 1; i < stripes; i++ {
		s.cuts = append(s.cuts, lo+i*w)
	}
	for i := range s.shards {
		s.shards[i].snap.Store(emptySnapshot)
	}
	return s
}

// NumShards returns the shard count (for tests).
func (s *Striped) NumShards() int { return len(s.shards) }

// shardRange returns the shard index range [a, b] overlapping [lo, hi).
func (s *Striped) shardRange(lo, hi int) (int, int) {
	a := sort.SearchInts(s.cuts, lo+1) // first shard whose cut > lo
	b := sort.SearchInts(s.cuts, hi)   // hi <= cut → still in shard b
	return a, b
}

// shardSpan clips [lo, hi) to shard i's extent.
func (s *Striped) shardSpan(i, lo, hi int) (int, int) {
	if i > 0 && s.cuts[i-1] > lo {
		lo = s.cuts[i-1]
	}
	if i < len(s.cuts) && s.cuts[i] < hi {
		hi = s.cuts[i]
	}
	return lo, hi
}

// Edit applies f to every shard overlapping [lo, hi), one shard at a
// time under that shard's lock, then republishes its snapshot. f
// receives the shard's Map and the clipped sub-range and may perform any
// number of SetRange/Update calls on it; batching them under one Edit
// costs one snapshot rebuild per shard instead of one per call.
// Shards are visited in ascending order (a total lock order, so
// concurrent multi-shard Edits cannot deadlock).
func (s *Striped) Edit(lo, hi int, f func(m *Map, lo, hi int)) {
	if lo >= hi {
		return
	}
	a, b := s.shardRange(lo, hi)
	for i := a; i <= b; i++ {
		slo, shi := s.shardSpan(i, lo, hi)
		if slo >= shi {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		f(&sh.m, slo, shi)
		sh.snap.Store(snapshotOf(&sh.m))
		sh.mu.Unlock()
	}
}

// SetRange sets [lo, hi) to v.
func (s *Striped) SetRange(lo, hi int, v uint64) {
	s.Edit(lo, hi, func(m *Map, lo, hi int) { m.SetRange(lo, hi, v) })
}

// Update applies f over [lo, hi) (see Map.Update).
func (s *Striped) Update(lo, hi int, f func(old uint64) uint64) {
	s.Edit(lo, hi, func(m *Map, lo, hi int) { m.Update(lo, hi, f) })
}

// shardAt returns the shard index covering position x.
func (s *Striped) shardAt(x int) int { return sort.SearchInts(s.cuts, x+1) }

// Get returns the value at x without locking.
func (s *Striped) Get(x int) uint64 {
	return s.shards[s.shardAt(x)].snap.Load().Get(x)
}

// Runs visits the stored runs intersecting [lo, hi) in ascending order,
// clipped, without locking. Runs split at shard cuts are coalesced back
// together, so the iteration is indistinguishable from a plain Map's.
func (s *Striped) Runs(lo, hi int, visit func(lo, hi int, v uint64) bool) {
	if lo >= hi {
		return
	}
	a, b := s.shardRange(lo, hi)
	var plo, phi int
	var pval uint64
	have := false
	flush := func() bool {
		if !have {
			return true
		}
		have = false
		return visit(plo, phi, pval)
	}
	for i := a; i <= b; i++ {
		slo, shi := s.shardSpan(i, lo, hi)
		if slo >= shi {
			continue
		}
		ok := s.shards[i].snap.Load().runs(slo, shi, func(rlo, rhi int, v uint64) bool {
			if have && rlo == phi && v == pval {
				phi = rhi
				return true
			}
			if !flush() {
				return false
			}
			plo, phi, pval, have = rlo, rhi, v, true
			return true
		})
		if !ok {
			return
		}
	}
	flush()
}

// Len returns the number of runs as an unsharded Map would store them
// (runs split at cuts count once).
func (s *Striped) Len() int {
	n := 0
	var lastHi int32
	var lastVal uint64
	haveLast := false
	for i := range s.shards {
		snap := s.shards[i].snap.Load()
		for j := 0; j < snap.Len(); j++ {
			if haveLast && snap.los[j] == lastHi && snap.vals[j] == lastVal {
				lastHi = snap.his[j]
				continue
			}
			n++
			lastHi, lastVal, haveLast = snap.his[j], snap.vals[j], true
		}
	}
	return n
}

// All visits every stored run (coalesced across cuts) in ascending
// order.
func (s *Striped) All(visit func(lo, hi int, v uint64) bool) {
	const big = int(^uint(0) >> 2)
	s.Runs(-big, big, visit)
}

// Footprint returns the heap bytes held by the shard maps' node arenas
// and the currently published snapshots (parallel int32/int32/uint64
// run arrays).
func (s *Striped) Footprint() int64 {
	var b int64
	for i := range s.shards {
		sh := &s.shards[i]
		b += sh.m.Footprint()
		snap := sh.snap.Load()
		b += int64(cap(snap.los))*4 + int64(cap(snap.his))*4 + int64(cap(snap.vals))*8
	}
	return b
}
