// Package intervalmap provides a run-length-compressed map from integer
// positions to 64-bit values, stored as maximal half-open runs in an AVL
// tree. It is the storage primitive behind BonnRoute's shape grid (§3.3:
// "sequences of identical numbers in preferred direction are merged to
// intervals ... stored in an AVL-tree in each row") and fast grid (§3.6:
// per-track intervals of bit-packed legality words).
//
// Positions not covered by any stored run implicitly hold the zero value;
// runs with value zero are never stored, and adjacent runs with equal
// values are always coalesced, so the representation is canonical.
package intervalmap

// Map is a run-length-compressed int → uint64 map. The zero value is an
// empty map ready for use. Map is not safe for concurrent mutation.
type Map struct {
	root *node
	runs int
}

type node struct {
	lo, hi      int // run [lo, hi)
	val         uint64
	left, right *node
	height      int8
}

// Get returns the value at position x (zero if uncovered).
func (m *Map) Get(x int) uint64 {
	n := m.root
	for n != nil {
		switch {
		case x < n.lo:
			n = n.left
		case x >= n.hi:
			n = n.right
		default:
			return n.val
		}
	}
	return 0
}

// Len returns the number of stored (nonzero) runs.
func (m *Map) Len() int { return m.runs }

// SetRange sets [lo, hi) to v, overwriting any previous values.
func (m *Map) SetRange(lo, hi int, v uint64) {
	if lo >= hi {
		return
	}
	m.clear(lo, hi)
	if v != 0 {
		m.insertCoalesce(lo, hi, v)
	}
}

// Update applies f to every position in [lo, hi); contiguous positions
// holding equal old values are transformed together. f must be a pure
// function of the old value.
func (m *Map) Update(lo, hi int, f func(old uint64) uint64) {
	if lo >= hi {
		return
	}
	type piece struct {
		lo, hi int
		v      uint64
	}
	var pieces []piece
	cur := lo
	m.Runs(lo, hi, func(rlo, rhi int, v uint64) bool {
		if rlo > cur {
			pieces = append(pieces, piece{cur, rlo, f(0)})
		}
		pieces = append(pieces, piece{rlo, rhi, f(v)})
		cur = rhi
		return true
	})
	if cur < hi {
		pieces = append(pieces, piece{cur, hi, f(0)})
	}
	m.clear(lo, hi)
	for _, p := range pieces {
		if p.v != 0 {
			m.insertCoalesce(p.lo, p.hi, p.v)
		}
	}
}

// Runs visits the stored (nonzero) runs intersecting [lo, hi) in
// ascending order, clipped to [lo, hi). Return false from visit to stop.
// The map must not be mutated during iteration.
func (m *Map) Runs(lo, hi int, visit func(lo, hi int, v uint64) bool) {
	m.visitRuns(m.root, lo, hi, visit)
}

func (m *Map) visitRuns(n *node, lo, hi int, visit func(int, int, uint64) bool) bool {
	if n == nil {
		return true
	}
	if n.hi > lo && n.left != nil {
		if !m.visitRuns(n.left, lo, hi, visit) {
			return false
		}
	}
	if n.lo < hi && n.hi > lo {
		if !visit(max(n.lo, lo), min(n.hi, hi), n.val) {
			return false
		}
	}
	if n.lo < hi && n.right != nil {
		return m.visitRuns(n.right, lo, hi, visit)
	}
	return true
}

// All visits every stored run in ascending order.
func (m *Map) All(visit func(lo, hi int, v uint64) bool) {
	var walk func(*node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && visit(n.lo, n.hi, n.val) && walk(n.right)
	}
	walk(m.root)
}

// clear removes coverage of [lo, hi), trimming boundary runs.
func (m *Map) clear(lo, hi int) {
	// Collect affected runs first (iteration and mutation don't mix).
	type run struct {
		lo, hi int
		v      uint64
	}
	var affected []run
	m.Runs(lo, hi, func(rlo, rhi int, v uint64) bool {
		affected = append(affected, run{rlo, rhi, v})
		return true
	})
	if len(affected) == 0 {
		return
	}
	// The clipped runs returned by Runs may be fragments of larger stored
	// runs; find the stored extents of the first and last.
	first := m.findRun(affected[0].lo)
	last := m.findRun(affected[len(affected)-1].lo)
	for _, r := range affected {
		m.deleteRun(m.findRun(r.lo).lo)
	}
	if first.lo < lo {
		m.insert(first.lo, lo, first.val)
	}
	if last.hi > hi {
		m.insert(hi, last.hi, last.val)
	}
}

type runInfo struct {
	lo, hi int
	val    uint64
}

func (m *Map) findRun(x int) runInfo {
	n := m.root
	for n != nil {
		switch {
		case x < n.lo:
			n = n.left
		case x >= n.hi:
			n = n.right
		default:
			return runInfo{n.lo, n.hi, n.val}
		}
	}
	return runInfo{}
}

// insertCoalesce inserts [lo, hi) = v, merging with equal-valued
// neighbors that abut the new run.
func (m *Map) insertCoalesce(lo, hi int, v uint64) {
	if prev, ok := m.runEndingAt(lo); ok && prev.val == v {
		m.deleteRun(prev.lo)
		lo = prev.lo
	}
	if next, ok := m.runStartingAt(hi); ok && next.val == v {
		m.deleteRun(next.lo)
		hi = next.hi
	}
	m.insert(lo, hi, v)
}

func (m *Map) runEndingAt(x int) (runInfo, bool) {
	var best *node
	n := m.root
	for n != nil {
		if n.hi <= x {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best != nil && best.hi == x {
		return runInfo{best.lo, best.hi, best.val}, true
	}
	return runInfo{}, false
}

func (m *Map) runStartingAt(x int) (runInfo, bool) {
	var best *node
	n := m.root
	for n != nil {
		if n.lo >= x {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best != nil && best.lo == x {
		return runInfo{best.lo, best.hi, best.val}, true
	}
	return runInfo{}, false
}

// --- AVL mechanics (keyed by run lo; runs never overlap) ---

func (m *Map) insert(lo, hi int, v uint64) {
	m.root = avlInsert(m.root, lo, hi, v)
	m.runs++
}

func (m *Map) deleteRun(lo int) {
	m.root = avlDelete(m.root, lo)
	m.runs--
}

func height(n *node) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func fix(n *node) *node {
	n.height = 1 + max(height(n.left), height(n.right))
	bf := height(n.left) - height(n.right)
	switch {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max(height(n.left), height(n.right))
	l.height = 1 + max(height(l.left), height(l.right))
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max(height(n.left), height(n.right))
	r.height = 1 + max(height(r.left), height(r.right))
	return r
}

func avlInsert(n *node, lo, hi int, v uint64) *node {
	if n == nil {
		return &node{lo: lo, hi: hi, val: v, height: 1}
	}
	if lo < n.lo {
		n.left = avlInsert(n.left, lo, hi, v)
	} else {
		n.right = avlInsert(n.right, lo, hi, v)
	}
	return fix(n)
}

func avlDelete(n *node, lo int) *node {
	if n == nil {
		return nil
	}
	switch {
	case lo < n.lo:
		n.left = avlDelete(n.left, lo)
	case lo > n.lo:
		n.right = avlDelete(n.right, lo)
	default:
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.lo, n.hi, n.val = succ.lo, succ.hi, succ.val
		n.right = avlDelete(n.right, succ.lo)
	}
	return fix(n)
}

// checkInvariants verifies AVL balance and run disjointness; used by
// tests.
func (m *Map) checkInvariants() error {
	prevHi := minInt
	var err error
	var walk func(n *node) int8
	walk = func(n *node) int8 {
		if n == nil || err != nil {
			return 0
		}
		lh := walk(n.left)
		if n.lo >= n.hi {
			err = errEmptyRun
		}
		if n.lo < prevHi {
			err = errOverlap
		}
		prevHi = n.hi
		rh := walk(n.right)
		if d := lh - rh; d < -1 || d > 1 {
			err = errUnbalanced
		}
		if n.height != 1+max(lh, rh) {
			err = errBadHeight
		}
		return n.height
	}
	walk(m.root)
	return err
}

const minInt = -int(^uint(0)>>1) - 1

type mapError string

func (e mapError) Error() string { return string(e) }

const (
	errEmptyRun   = mapError("intervalmap: empty run stored")
	errOverlap    = mapError("intervalmap: overlapping runs")
	errUnbalanced = mapError("intervalmap: AVL unbalanced")
	errBadHeight  = mapError("intervalmap: stale height")
)
