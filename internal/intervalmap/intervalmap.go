// Package intervalmap provides a run-length-compressed map from integer
// positions to 64-bit values, stored as maximal half-open runs in an AVL
// tree. It is the storage primitive behind BonnRoute's shape grid (§3.3:
// "sequences of identical numbers in preferred direction are merged to
// intervals ... stored in an AVL-tree in each row") and fast grid (§3.6:
// per-track intervals of bit-packed legality words).
//
// Positions not covered by any stored run implicitly hold the zero value;
// runs with value zero are never stored, and adjacent runs with equal
// values are always coalesced, so the representation is canonical.
//
// Nodes live in a contiguous per-map arena addressed by int32 offsets
// (no per-node heap allocation, no child pointers), with deleted nodes
// recycled through a free list. Positions must fit in int32 — routing
// coordinates are DBU and cell indices, far inside that range — and
// arguments outside it are clamped, so full-range queries with huge
// sentinel bounds behave as before.
package intervalmap

import "unsafe"

// Map is a run-length-compressed int → uint64 map. The zero value is an
// empty map ready for use. Map is not safe for concurrent mutation.
type Map struct {
	nodes []node // arena; index 0 is the nil sentinel
	root  int32  // 0 = empty
	free  int32  // head of the free list, linked through node.left
	runs  int32
}

type node struct {
	lo, hi      int32 // run [lo, hi)
	left, right int32 // arena indices; 0 = nil
	val         uint64
	height      int8
}

const (
	minPos = -1 << 31
	maxPos = 1<<31 - 1
)

func clampPos(x int) int32 {
	if x < minPos {
		return minPos
	}
	if x > maxPos {
		return maxPos
	}
	return int32(x)
}

// Get returns the value at position x (zero if uncovered).
func (m *Map) Get(x int) uint64 {
	cx := clampPos(x)
	ni := m.root
	for ni != 0 {
		n := &m.nodes[ni]
		switch {
		case cx < n.lo:
			ni = n.left
		case cx >= n.hi:
			ni = n.right
		default:
			return n.val
		}
	}
	return 0
}

// Len returns the number of stored (nonzero) runs.
func (m *Map) Len() int { return int(m.runs) }

// Footprint returns the heap bytes held by the map's node arena,
// including free-listed slots (capacity, not live count).
func (m *Map) Footprint() int64 {
	return int64(cap(m.nodes)) * int64(unsafe.Sizeof(node{}))
}

// SetRange sets [lo, hi) to v, overwriting any previous values.
func (m *Map) SetRange(lo, hi int, v uint64) {
	clo, chi := clampPos(lo), clampPos(hi)
	if clo >= chi {
		return
	}
	m.clear(clo, chi)
	if v != 0 {
		m.insertCoalesce(clo, chi, v)
	}
}

// Update applies f to every position in [lo, hi); contiguous positions
// holding equal old values are transformed together. f must be a pure
// function of the old value.
func (m *Map) Update(lo, hi int, f func(old uint64) uint64) {
	clo, chi := clampPos(lo), clampPos(hi)
	if clo >= chi {
		return
	}
	type piece struct {
		lo, hi int32
		v      uint64
	}
	var pieces []piece
	cur := clo
	m.Runs(int(clo), int(chi), func(rlo, rhi int, v uint64) bool {
		if int32(rlo) > cur {
			pieces = append(pieces, piece{cur, int32(rlo), f(0)})
		}
		pieces = append(pieces, piece{int32(rlo), int32(rhi), f(v)})
		cur = int32(rhi)
		return true
	})
	if cur < chi {
		pieces = append(pieces, piece{cur, chi, f(0)})
	}
	m.clear(clo, chi)
	for _, p := range pieces {
		if p.v != 0 {
			m.insertCoalesce(p.lo, p.hi, p.v)
		}
	}
}

// Runs visits the stored (nonzero) runs intersecting [lo, hi) in
// ascending order, clipped to [lo, hi). Return false from visit to stop.
// The map must not be mutated during iteration.
func (m *Map) Runs(lo, hi int, visit func(lo, hi int, v uint64) bool) {
	m.visitRuns(m.root, clampPos(lo), clampPos(hi), visit)
}

func (m *Map) visitRuns(ni int32, lo, hi int32, visit func(int, int, uint64) bool) bool {
	if ni == 0 {
		return true
	}
	n := &m.nodes[ni]
	if n.hi > lo && n.left != 0 {
		if !m.visitRuns(n.left, lo, hi, visit) {
			return false
		}
	}
	if n.lo < hi && n.hi > lo {
		if !visit(int(max(n.lo, lo)), int(min(n.hi, hi)), n.val) {
			return false
		}
	}
	if n.lo < hi && n.right != 0 {
		return m.visitRuns(n.right, lo, hi, visit)
	}
	return true
}

// All visits every stored run in ascending order.
func (m *Map) All(visit func(lo, hi int, v uint64) bool) {
	var walk func(int32) bool
	walk = func(ni int32) bool {
		if ni == 0 {
			return true
		}
		n := &m.nodes[ni]
		return walk(n.left) && visit(int(n.lo), int(n.hi), n.val) && walk(n.right)
	}
	walk(m.root)
}

// clear removes coverage of [lo, hi), trimming boundary runs.
func (m *Map) clear(lo, hi int32) {
	// Collect affected runs first (iteration and mutation don't mix).
	type run struct {
		lo, hi int32
		v      uint64
	}
	var affected []run
	m.visitRuns(m.root, lo, hi, func(rlo, rhi int, v uint64) bool {
		affected = append(affected, run{int32(rlo), int32(rhi), v})
		return true
	})
	if len(affected) == 0 {
		return
	}
	// The clipped runs returned by Runs may be fragments of larger stored
	// runs; find the stored extents of the first and last.
	first := m.findRun(affected[0].lo)
	last := m.findRun(affected[len(affected)-1].lo)
	for _, r := range affected {
		m.deleteRun(m.findRun(r.lo).lo)
	}
	if first.lo < lo {
		m.insert(first.lo, lo, first.val)
	}
	if last.hi > hi {
		m.insert(hi, last.hi, last.val)
	}
}

type runInfo struct {
	lo, hi int32
	val    uint64
}

func (m *Map) findRun(x int32) runInfo {
	ni := m.root
	for ni != 0 {
		n := &m.nodes[ni]
		switch {
		case x < n.lo:
			ni = n.left
		case x >= n.hi:
			ni = n.right
		default:
			return runInfo{n.lo, n.hi, n.val}
		}
	}
	return runInfo{}
}

// insertCoalesce inserts [lo, hi) = v, merging with equal-valued
// neighbors that abut the new run.
func (m *Map) insertCoalesce(lo, hi int32, v uint64) {
	if prev, ok := m.runEndingAt(lo); ok && prev.val == v {
		m.deleteRun(prev.lo)
		lo = prev.lo
	}
	if next, ok := m.runStartingAt(hi); ok && next.val == v {
		m.deleteRun(next.lo)
		hi = next.hi
	}
	m.insert(lo, hi, v)
}

func (m *Map) runEndingAt(x int32) (runInfo, bool) {
	best := int32(0)
	ni := m.root
	for ni != 0 {
		n := &m.nodes[ni]
		if n.hi <= x {
			best = ni
			ni = n.right
		} else {
			ni = n.left
		}
	}
	if best != 0 && m.nodes[best].hi == x {
		b := &m.nodes[best]
		return runInfo{b.lo, b.hi, b.val}, true
	}
	return runInfo{}, false
}

func (m *Map) runStartingAt(x int32) (runInfo, bool) {
	best := int32(0)
	ni := m.root
	for ni != 0 {
		n := &m.nodes[ni]
		if n.lo >= x {
			best = ni
			ni = n.left
		} else {
			ni = n.right
		}
	}
	if best != 0 && m.nodes[best].lo == x {
		b := &m.nodes[best]
		return runInfo{b.lo, b.hi, b.val}, true
	}
	return runInfo{}, false
}

// --- AVL mechanics (keyed by run lo; runs never overlap) ---

func (m *Map) insert(lo, hi int32, v uint64) {
	m.root = m.avlInsert(m.root, lo, hi, v)
	m.runs++
}

func (m *Map) deleteRun(lo int32) {
	m.root = m.avlDelete(m.root, lo)
	m.runs--
}

// alloc returns a fresh node index, reusing the free list when possible.
// May grow the arena: callers must not hold *node pointers across it.
func (m *Map) alloc(lo, hi int32, v uint64) int32 {
	if m.free != 0 {
		i := m.free
		m.free = m.nodes[i].left
		m.nodes[i] = node{lo: lo, hi: hi, val: v, height: 1}
		return i
	}
	if len(m.nodes) == 0 {
		m.nodes = append(m.nodes, node{}) // index 0 = nil sentinel
	}
	m.nodes = append(m.nodes, node{lo: lo, hi: hi, val: v, height: 1})
	return int32(len(m.nodes) - 1)
}

func (m *Map) freeNode(i int32) {
	m.nodes[i] = node{left: m.free}
	m.free = i
}

func (m *Map) nodeHeight(i int32) int8 {
	if i == 0 {
		return 0
	}
	return m.nodes[i].height
}

func (m *Map) fix(ni int32) int32 {
	n := &m.nodes[ni]
	n.height = 1 + max(m.nodeHeight(n.left), m.nodeHeight(n.right))
	bf := m.nodeHeight(n.left) - m.nodeHeight(n.right)
	switch {
	case bf > 1:
		l := &m.nodes[n.left]
		if m.nodeHeight(l.left) < m.nodeHeight(l.right) {
			n.left = m.rotateLeft(n.left)
		}
		return m.rotateRight(ni)
	case bf < -1:
		r := &m.nodes[n.right]
		if m.nodeHeight(r.right) < m.nodeHeight(r.left) {
			n.right = m.rotateRight(n.right)
		}
		return m.rotateLeft(ni)
	}
	return ni
}

func (m *Map) rotateRight(ni int32) int32 {
	n := &m.nodes[ni]
	li := n.left
	l := &m.nodes[li]
	n.left = l.right
	l.right = ni
	n.height = 1 + max(m.nodeHeight(n.left), m.nodeHeight(n.right))
	l.height = 1 + max(m.nodeHeight(l.left), m.nodeHeight(l.right))
	return li
}

func (m *Map) rotateLeft(ni int32) int32 {
	n := &m.nodes[ni]
	ri := n.right
	r := &m.nodes[ri]
	n.right = r.left
	r.left = ni
	n.height = 1 + max(m.nodeHeight(n.left), m.nodeHeight(n.right))
	r.height = 1 + max(m.nodeHeight(r.left), m.nodeHeight(r.right))
	return ri
}

func (m *Map) avlInsert(ni int32, lo, hi int32, v uint64) int32 {
	if ni == 0 {
		return m.alloc(lo, hi, v)
	}
	// Recursive calls may grow the arena; re-index instead of holding a
	// *node across them.
	if lo < m.nodes[ni].lo {
		l := m.avlInsert(m.nodes[ni].left, lo, hi, v)
		m.nodes[ni].left = l
	} else {
		r := m.avlInsert(m.nodes[ni].right, lo, hi, v)
		m.nodes[ni].right = r
	}
	return m.fix(ni)
}

func (m *Map) avlDelete(ni int32, lo int32) int32 {
	if ni == 0 {
		return 0
	}
	// Deletion never grows the arena, so holding n is safe here.
	n := &m.nodes[ni]
	switch {
	case lo < n.lo:
		n.left = m.avlDelete(n.left, lo)
	case lo > n.lo:
		n.right = m.avlDelete(n.right, lo)
	default:
		if n.left == 0 {
			r := n.right
			m.freeNode(ni)
			return r
		}
		if n.right == 0 {
			l := n.left
			m.freeNode(ni)
			return l
		}
		si := n.right
		for m.nodes[si].left != 0 {
			si = m.nodes[si].left
		}
		s := m.nodes[si]
		n.lo, n.hi, n.val = s.lo, s.hi, s.val
		n.right = m.avlDelete(n.right, s.lo)
	}
	return m.fix(ni)
}

// checkInvariants verifies AVL balance and run disjointness; used by
// tests.
func (m *Map) checkInvariants() error {
	prevHi := int64(minPos) - 1
	var err error
	var walk func(ni int32) int8
	walk = func(ni int32) int8 {
		if ni == 0 || err != nil {
			return 0
		}
		n := &m.nodes[ni]
		lh := walk(n.left)
		if n.lo >= n.hi {
			err = errEmptyRun
		}
		if int64(n.lo) < prevHi {
			err = errOverlap
		}
		prevHi = int64(n.hi)
		rh := walk(n.right)
		if d := lh - rh; d < -1 || d > 1 {
			err = errUnbalanced
		}
		if n.height != 1+max(lh, rh) {
			err = errBadHeight
		}
		return n.height
	}
	walk(m.root)
	return err
}

type mapError string

func (e mapError) Error() string { return string(e) }

const (
	errEmptyRun   = mapError("intervalmap: empty run stored")
	errOverlap    = mapError("intervalmap: overlapping runs")
	errUnbalanced = mapError("intervalmap: AVL unbalanced")
	errBadHeight  = mapError("intervalmap: stale height")
)
