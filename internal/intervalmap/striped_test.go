package intervalmap

import (
	"math/rand"
	"sync"
	"testing"
)

// applyOp mirrors one mutation on a Striped and a reference Map.
func applyOp(s *Striped, ref *Map, op int, lo, hi int, v uint64) {
	switch op % 3 {
	case 0:
		s.SetRange(lo, hi, v)
		ref.SetRange(lo, hi, v)
	case 1:
		f := func(old uint64) uint64 { return old | v }
		s.Update(lo, hi, f)
		ref.Update(lo, hi, f)
	default:
		f := func(old uint64) uint64 {
			if old > v {
				return old
			}
			return v
		}
		s.Update(lo, hi, f)
		ref.Update(lo, hi, f)
	}
}

func sameRuns(t *testing.T, s *Striped, ref *Map, lo, hi int) {
	t.Helper()
	type run struct {
		lo, hi int
		v      uint64
	}
	var got, want []run
	s.Runs(lo, hi, func(lo, hi int, v uint64) bool {
		got = append(got, run{lo, hi, v})
		return true
	})
	ref.Runs(lo, hi, func(lo, hi int, v uint64) bool {
		want = append(want, run{lo, hi, v})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("run count: striped %d vs map %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("run %d: striped %+v vs map %+v", i, got[i], want[i])
		}
	}
}

// TestStripedMatchesMap drives random mutations through a Striped and a
// plain Map and demands identical Get/Runs/Len at every step — in
// particular runs spanning shard cuts must read back as single runs.
func TestStripedMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewStriped(0, 1000, 8)
	if s.NumShards() != 8 {
		t.Fatalf("shards = %d", s.NumShards())
	}
	var ref Map
	for step := 0; step < 2000; step++ {
		lo := rng.Intn(1200) - 100 // exercise positions outside [0,1000) too
		hi := lo + 1 + rng.Intn(400)
		applyOp(s, &ref, rng.Intn(3), lo, hi, uint64(rng.Intn(4)))
		if step%50 == 0 {
			sameRuns(t, s, &ref, -200, 1300)
			if s.Len() != ref.Len() {
				t.Fatalf("step %d: Len %d vs %d", step, s.Len(), ref.Len())
			}
		}
		x := rng.Intn(1400) - 200
		if g, w := s.Get(x), ref.Get(x); g != w {
			t.Fatalf("step %d: Get(%d) = %d, want %d", step, x, g, w)
		}
	}
	sameRuns(t, s, &ref, -200, 1300)
}

// TestStripedCoalescesAcrossCuts pins the canonical-run property: one
// SetRange across every cut reads back as exactly one run.
func TestStripedCoalescesAcrossCuts(t *testing.T) {
	s := NewStriped(0, 800, 8)
	s.SetRange(10, 790, 5)
	n := 0
	s.Runs(0, 800, func(lo, hi int, v uint64) bool {
		n++
		if lo != 10 || hi != 790 || v != 5 {
			t.Fatalf("run [%d,%d)=%d, want [10,790)=5", lo, hi, v)
		}
		return true
	})
	if n != 1 {
		t.Fatalf("runs = %d, want 1 (cut-split runs must coalesce)", n)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.All(func(lo, hi int, v uint64) bool {
		if lo != 10 || hi != 790 {
			t.Fatalf("All run [%d,%d)", lo, hi)
		}
		return true
	})
}

// TestStripedConcurrentDisjoint exercises the ownership contract: one
// writer per stripe, mutating only its own range, with concurrent
// readers over already-quiescent stripes. Run under -race this verifies
// the lock-free read path publishes safely.
func TestStripedConcurrentDisjoint(t *testing.T) {
	s := NewStriped(0, 8000, 8)
	// Pre-fill a stable background pattern.
	s.SetRange(0, 8000, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * 1000
			for i := 0; i < 300; i++ {
				lo := base + 10 + (i*7)%900
				s.Update(lo, lo+50, func(old uint64) uint64 { return old + 1 })
				// Read back inside the owned stripe: must be consistent.
				if v := s.Get(lo); v < 1 {
					t.Errorf("stripe %d: Get(%d) = %d", w, lo, v)
					return
				}
				got := 0
				s.Runs(base, base+1000, func(lo, hi int, v uint64) bool {
					got++
					return true
				})
				if got == 0 {
					t.Errorf("stripe %d: no runs", w)
					return
				}
			}
		}(w)
	}
	// Concurrent whole-map readers: individual values may be mid-update
	// in foreign stripes, but every observed value must be one the
	// owning writer published (1..301), never torn garbage.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				x := (i * 131) % 8000
				if v := s.Get(x); v > 301 {
					t.Errorf("torn read: Get(%d) = %d", x, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkStripedGet(b *testing.B) {
	s := NewStriped(0, 100000, 8)
	for i := 0; i < 100000; i += 100 {
		s.SetRange(i, i+60, uint64(i%7+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get((i * 37) % 100000)
	}
}
