// Package tracks implements routing-track optimization and the track
// graph of BonnRoute (paper §3.5).
//
// Track optimization: given the usable areas of a layer (chip area minus
// blow-up of blockages) and the layer's minimum pitch, place tracks in
// preferred direction, pairwise at least one pitch apart, maximizing the
// total usable track length (Theorem 3.1). The solver here is an exact
// dynamic program over the canonical candidate set {a + k·pitch} for
// anchors a at coverage breakpoints: by the standard shift-down exchange
// argument an optimal solution exists with every track either at a
// coverage-increase coordinate or exactly one pitch above another track.
//
// The track graph: vertices are the intersection points of a layer's
// tracks with the tracks of adjacent layers projected into it; edges run
// along tracks, between neighboring tracks (jogs), and between layers
// (vias). The graph is implicit — this package stores per-layer sorted
// track and crossing coordinates and answers neighbor queries.
package tracks

import (
	"sort"

	"bonnroute/internal/geom"
)

// Optimize solves the track optimization problem for one layer: rects are
// the usable areas (a standard wire centered on a track inside a usable
// rect is legal), dir the preferred direction, pitch the minimum distance
// between tracks, and span the orthogonal chip extent tracks must lie in.
// It returns sorted track coordinates and the total covered length.
func Optimize(rects []geom.Rect, dir geom.Direction, pitch int, span geom.Interval) ([]int, int) {
	return OptimizeWithBonus(rects, nil, dir, pitch, span)
}

// OptimizeWithBonus extends Optimize with pin-alignment bonus rectangles
// (§3.5: "the alignment of routing tracks with pins can be taken into
// account by adding rectangles to A which model track positions that
// allow on-track pin access"). Bonus rectangles contribute their along-
// track length additively (not by union) whenever a track passes through
// their orthogonal span, so a track aligned with several pins collects
// each pin's bonus.
func OptimizeWithBonus(rects, bonus []geom.Rect, dir geom.Direction, pitch int, span geom.Interval) ([]int, int) {
	if pitch <= 0 || span.Empty() {
		return nil, 0
	}
	ortho := dir.Perp()
	// Anchor coordinates: coverage increases at each rect's (and each
	// bonus rect's) lower ortho edge; also allow packing from the span
	// start.
	anchorSet := map[int]bool{span.Lo: true}
	for _, r := range rects {
		lo := r.Span(ortho).Lo
		if lo >= span.Lo && lo < span.Hi {
			anchorSet[lo] = true
		}
	}
	for _, b := range bonus {
		lo := b.Span(ortho).Lo
		if lo >= span.Lo && lo < span.Hi {
			anchorSet[lo] = true
		}
	}
	// Candidate positions: every anchor plus multiples of the pitch.
	candSet := map[int]bool{}
	for a := range anchorSet {
		for c := a; c < span.Hi; c += pitch {
			candSet[c] = true
		}
	}
	cands := make([]int, 0, len(candSet))
	for c := range candSet {
		cands = append(cands, c)
	}
	sort.Ints(cands)

	cov := make([]int, len(cands))
	for i, c := range cands {
		cov[i] = geom.CoveredLength(rects, dir, c)
		for _, b := range bonus {
			if b.Span(ortho).Contains(c) {
				cov[i] += b.Span(dir).Len()
			}
		}
	}

	// dp[i] = best total coverage of a track set whose topmost track is at
	// cands[i]; prefix[i] = max(dp[0..i]).
	dp := make([]int, len(cands))
	prefix := make([]int, len(cands))
	parent := make([]int, len(cands))
	bestIdxUpTo := make([]int, len(cands))
	bestEnd := -1
	for i, c := range cands {
		dp[i] = cov[i]
		parent[i] = -1
		// Find the last candidate ≤ c - pitch.
		j := sort.SearchInts(cands, c-pitch+1) - 1
		if j >= 0 && prefix[j] > 0 {
			dp[i] += prefix[j]
			parent[i] = bestIdxUpTo[j]
		}
		if i == 0 {
			prefix[i] = dp[i]
			bestIdxUpTo[i] = i
		} else if dp[i] > prefix[i-1] {
			prefix[i] = dp[i]
			bestIdxUpTo[i] = i
		} else {
			prefix[i] = prefix[i-1]
			bestIdxUpTo[i] = bestIdxUpTo[i-1]
		}
		if bestEnd < 0 || dp[i] > dp[bestEnd] {
			bestEnd = i
		}
	}
	if bestEnd < 0 || dp[bestEnd] == 0 {
		return nil, 0
	}
	var coords []int
	for i := bestEnd; i >= 0; i = parent[i] {
		// Zero-coverage tracks in the middle of a chain carry no value;
		// skip them (they can only appear as chain fillers).
		if cov[i] > 0 {
			coords = append(coords, cands[i])
		}
		if parent[i] < 0 {
			break
		}
	}
	sort.Ints(coords)
	return coords, dp[bestEnd]
}

// UsableAreas computes the usable rects for a layer: area minus each
// obstacle expanded by clearance (half wire width plus minimum spacing),
// the "blowing up the obstacles" of gridless routing that the paper
// reuses for capacity and track computation.
func UsableAreas(area geom.Rect, obstacles []geom.Rect, clearance int) []geom.Rect {
	grown := make([]geom.Rect, len(obstacles))
	for i, o := range obstacles {
		grown[i] = o.Expanded(clearance)
	}
	return geom.SubtractRects(area, grown)
}

// Layer holds the track set of one wiring layer.
type Layer struct {
	Z   int
	Dir geom.Direction
	// Coords are the sorted track coordinates along the axis orthogonal
	// to Dir (y for horizontal layers, x for vertical ones).
	Coords []int
	// Cross are the sorted crossing coordinates along Dir: the projected
	// track coordinates of the adjacent layers. Vertices of the track
	// graph on this layer are (track, crossing) pairs.
	Cross []int
}

// Graph is the implicit track graph of a chip (paper §3.5).
type Graph struct {
	Area   geom.Rect
	Layers []Layer
}

// BuildGraph assembles the track graph from per-layer track coordinates.
// dirs[z] is the preferred direction of layer z; coords[z] the sorted
// track coordinates produced by Optimize.
func BuildGraph(area geom.Rect, dirs []geom.Direction, coords [][]int) *Graph {
	g := &Graph{Area: area}
	for z := range dirs {
		g.Layers = append(g.Layers, Layer{Z: z, Dir: dirs[z], Coords: coords[z]})
	}
	for z := range g.Layers {
		var cross []int
		if z > 0 {
			cross = append(cross, g.Layers[z-1].Coords...)
		}
		if z+1 < len(g.Layers) {
			cross = append(cross, g.Layers[z+1].Coords...)
		}
		sort.Ints(cross)
		g.Layers[z].Cross = dedup(cross)
	}
	return g
}

// NumLayers returns the number of wiring layers.
func (g *Graph) NumLayers() int { return len(g.Layers) }

// IsVertex reports whether p is a vertex of the track graph: its
// orthogonal coordinate is a track of layer p.Z and its preferred-axis
// coordinate is a crossing.
func (g *Graph) IsVertex(p geom.Point3) bool {
	if p.Z < 0 || p.Z >= len(g.Layers) {
		return false
	}
	l := &g.Layers[p.Z]
	return contains(l.Coords, p.XY().Coord(l.Dir.Perp())) &&
		contains(l.Cross, p.XY().Coord(l.Dir))
}

// ViaPossible reports whether a via between layers z and z+1 can exist at
// (x, y): the point must lie on a track of both layers.
func (g *Graph) ViaPossible(x, y, z int) bool {
	if z < 0 || z+1 >= len(g.Layers) {
		return false
	}
	lo, hi := &g.Layers[z], &g.Layers[z+1]
	p := geom.Pt(x, y)
	return contains(lo.Coords, p.Coord(lo.Dir.Perp())) &&
		contains(hi.Coords, p.Coord(hi.Dir.Perp()))
}

// TrackAt returns the index of the track of layer z at orthogonal
// coordinate c, or -1.
func (l *Layer) TrackAt(c int) int {
	i := sort.SearchInts(l.Coords, c)
	if i < len(l.Coords) && l.Coords[i] == c {
		return i
	}
	return -1
}

// NearestTrack returns the track coordinate of layer l closest to c
// (ties resolved downward). It panics if the layer has no tracks.
func (l *Layer) NearestTrack(c int) int {
	i := sort.SearchInts(l.Coords, c)
	if i == 0 {
		return l.Coords[0]
	}
	if i == len(l.Coords) {
		return l.Coords[len(l.Coords)-1]
	}
	if l.Coords[i]-c < c-l.Coords[i-1] {
		return l.Coords[i]
	}
	return l.Coords[i-1]
}

// CrossRange returns the crossing coordinates of l within [lo, hi].
func (l *Layer) CrossRange(lo, hi int) []int {
	i := sort.SearchInts(l.Cross, lo)
	j := sort.SearchInts(l.Cross, hi+1)
	return l.Cross[i:j]
}

// TracksRange returns the track coordinates of l within [lo, hi].
func (l *Layer) TracksRange(lo, hi int) []int {
	i := sort.SearchInts(l.Coords, lo)
	j := sort.SearchInts(l.Coords, hi+1)
	return l.Coords[i:j]
}

func contains(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}

func dedup(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
