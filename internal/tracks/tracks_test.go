package tracks

import (
	"math/rand"
	"sort"
	"testing"

	"bonnroute/internal/geom"
)

func TestOptimizeFreePlane(t *testing.T) {
	// One unobstructed rect: tracks pack at pitch, all with full coverage.
	rects := []geom.Rect{geom.R(0, 0, 1000, 200)}
	coords, total := Optimize(rects, geom.Horizontal, 40, geom.Iv(0, 200))
	if len(coords) != 5 {
		t.Fatalf("tracks = %v, want 5 tracks", coords)
	}
	if total != 5*1000 {
		t.Fatalf("total = %d, want 5000", total)
	}
	for i := 1; i < len(coords); i++ {
		if coords[i]-coords[i-1] < 40 {
			t.Fatalf("pitch violated: %v", coords)
		}
	}
}

func TestOptimizeRespectsBlockage(t *testing.T) {
	// Usable area split by a horizontal blockage band.
	rects := []geom.Rect{geom.R(0, 0, 1000, 90), geom.R(0, 150, 1000, 240)}
	coords, _ := Optimize(rects, geom.Horizontal, 40, geom.Iv(0, 240))
	for _, c := range coords {
		if c >= 90 && c < 150 {
			t.Fatalf("track %d placed in blocked band", c)
		}
	}
	// Both regions must be used: [0,90) fits 3 tracks, [150,240) fits 3.
	lower, upper := 0, 0
	for _, c := range coords {
		if c < 90 {
			lower++
		} else {
			upper++
		}
	}
	if lower != 3 || upper != 3 {
		t.Fatalf("tracks = %v: lower %d upper %d, want 3/3", coords, lower, upper)
	}
}

func TestOptimizeAlignsToPartialBlockage(t *testing.T) {
	// A short blockage: tracks crossing it lose length, so optimal tracks
	// shift to maximize coverage. Usable: full plane except a notch.
	full := geom.R(0, 0, 1000, 100)
	obst := []geom.Rect{geom.R(0, 35, 500, 65)} // blocks middle band half-way
	rects := geom.SubtractRects(full, obst)
	coords, total := Optimize(rects, geom.Horizontal, 40, geom.Iv(0, 100))
	// Brute-force verification of optimality on this small instance.
	want := bruteForceOptimize(rects, geom.Horizontal, 40, geom.Iv(0, 100))
	if total != want {
		t.Fatalf("total = %d, brute force says %d (coords %v)", total, want, coords)
	}
}

// bruteForceOptimize tries every subset-free DP over all integer
// positions (exponential-safe because the span is tiny).
func bruteForceOptimize(rects []geom.Rect, dir geom.Direction, pitch int, span geom.Interval) int {
	n := span.Len()
	cov := make([]int, n)
	for i := 0; i < n; i++ {
		cov[i] = geom.CoveredLength(rects, dir, span.Lo+i)
	}
	dp := make([]int, n)
	best := 0
	for i := 0; i < n; i++ {
		dp[i] = cov[i]
		for j := 0; j <= i-pitch; j++ {
			if dp[j]+cov[i] > dp[i] {
				dp[i] = dp[j] + cov[i]
			}
		}
		if dp[i] > best {
			best = dp[i]
		}
	}
	return best
}

// Property: the DP matches brute force on random small instances.
func TestOptimizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		span := geom.Iv(0, 60+rng.Intn(60))
		area := geom.R(0, span.Lo, 200, span.Hi)
		var holes []geom.Rect
		for i := 0; i < rng.Intn(5); i++ {
			x, y := rng.Intn(180), span.Lo+rng.Intn(span.Len()-5)
			holes = append(holes, geom.R(x, y, x+10+rng.Intn(100), y+1+rng.Intn(25)))
		}
		rects := geom.SubtractRects(area, holes)
		pitch := 7 + rng.Intn(10)
		coords, total := Optimize(rects, geom.Horizontal, pitch, span)
		want := bruteForceOptimize(rects, geom.Horizontal, pitch, span)
		if total != want {
			t.Fatalf("trial %d: total %d != brute force %d (pitch %d, holes %v)",
				trial, total, want, pitch, holes)
		}
		// Feasibility of the returned set.
		for i := 1; i < len(coords); i++ {
			if coords[i]-coords[i-1] < pitch {
				t.Fatalf("trial %d: pitch violated %v", trial, coords)
			}
		}
		// Reported total matches recomputation.
		sum := 0
		for _, c := range coords {
			sum += geom.CoveredLength(rects, geom.Horizontal, c)
		}
		if sum != total {
			t.Fatalf("trial %d: reported %d, recomputed %d", trial, total, sum)
		}
	}
}

func TestOptimizeVertical(t *testing.T) {
	rects := []geom.Rect{geom.R(0, 0, 200, 1000)}
	coords, total := Optimize(rects, geom.Vertical, 40, geom.Iv(0, 200))
	if len(coords) != 5 || total != 5000 {
		t.Fatalf("vertical: coords %v total %d", coords, total)
	}
}

func TestOptimizeDegenerate(t *testing.T) {
	if c, tot := Optimize(nil, geom.Horizontal, 40, geom.Iv(0, 100)); c != nil || tot != 0 {
		t.Fatal("no usable area must yield no tracks")
	}
	if c, _ := Optimize([]geom.Rect{geom.R(0, 0, 10, 10)}, geom.Horizontal, 0, geom.Iv(0, 10)); c != nil {
		t.Fatal("zero pitch must yield nothing")
	}
	if c, _ := Optimize([]geom.Rect{geom.R(0, 0, 10, 10)}, geom.Horizontal, 5, geom.Iv(5, 5)); c != nil {
		t.Fatal("empty span must yield nothing")
	}
}

func TestUsableAreas(t *testing.T) {
	area := geom.R(0, 0, 100, 100)
	obstacles := []geom.Rect{geom.R(40, 40, 60, 60)}
	rects := UsableAreas(area, obstacles, 10)
	for _, r := range rects {
		if r.Intersects(geom.R(30, 30, 70, 70)) {
			t.Fatalf("usable rect %v inside blown-up obstacle", r)
		}
	}
	var total int64
	for _, r := range rects {
		total += r.Area()
	}
	if total != 100*100-40*40 {
		t.Fatalf("usable area = %d", total)
	}
}

func buildTestGraph() *Graph {
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical, geom.Horizontal}
	coords := [][]int{
		{10, 50, 90},  // layer 0: horizontal tracks at y
		{20, 60, 100}, // layer 1: vertical tracks at x
		{30, 70},      // layer 2: horizontal tracks at y
	}
	return BuildGraph(geom.R(0, 0, 120, 120), dirs, coords)
}

func TestBuildGraphCross(t *testing.T) {
	g := buildTestGraph()
	// Layer 0 crossings = layer 1 coords.
	if got := g.Layers[0].Cross; !equalInts(got, []int{20, 60, 100}) {
		t.Fatalf("layer 0 cross = %v", got)
	}
	// Layer 1 crossings = union of layers 0 and 2 coords.
	if got := g.Layers[1].Cross; !equalInts(got, []int{10, 30, 50, 70, 90}) {
		t.Fatalf("layer 1 cross = %v", got)
	}
	if g.NumLayers() != 3 {
		t.Fatal("NumLayers")
	}
}

func TestIsVertex(t *testing.T) {
	g := buildTestGraph()
	cases := []struct {
		p  geom.Point3
		ok bool
	}{
		{geom.Pt3(20, 10, 0), true},   // track y=10, cross x=20
		{geom.Pt3(21, 10, 0), false},  // off-cross
		{geom.Pt3(20, 11, 0), false},  // off-track
		{geom.Pt3(20, 10, 1), true},   // layer 1: track x=20, cross y=10
		{geom.Pt3(60, 70, 2), true},   // layer 2
		{geom.Pt3(20, 10, 5), false},  // no such layer
		{geom.Pt3(20, 10, -1), false}, // no such layer
	}
	for _, c := range cases {
		if got := g.IsVertex(c.p); got != c.ok {
			t.Errorf("IsVertex(%v) = %v, want %v", c.p, got, c.ok)
		}
	}
}

func TestViaPossible(t *testing.T) {
	g := buildTestGraph()
	// Via 0-1 at (x on layer1 track, y on layer0 track).
	if !g.ViaPossible(20, 50, 0) {
		t.Error("via at (20,50) must be possible")
	}
	if g.ViaPossible(25, 50, 0) {
		t.Error("x=25 is not a layer-1 track")
	}
	if g.ViaPossible(20, 55, 0) {
		t.Error("y=55 is not a layer-0 track")
	}
	if g.ViaPossible(20, 50, 2) || g.ViaPossible(20, 50, -1) {
		t.Error("out-of-range via layer")
	}
	// Via 1-2: needs x on layer-1 track, y on layer-2 track.
	if !g.ViaPossible(60, 30, 1) {
		t.Error("via at (60,30) layer 1-2 must be possible")
	}
}

func TestTrackQueries(t *testing.T) {
	g := buildTestGraph()
	l := &g.Layers[0]
	if l.TrackAt(50) != 1 || l.TrackAt(51) != -1 {
		t.Error("TrackAt wrong")
	}
	if l.NearestTrack(5) != 10 || l.NearestTrack(95) != 90 || l.NearestTrack(49) != 50 || l.NearestTrack(30) != 10 {
		t.Errorf("NearestTrack wrong: %d %d %d %d",
			l.NearestTrack(5), l.NearestTrack(95), l.NearestTrack(49), l.NearestTrack(30))
	}
	if got := l.CrossRange(20, 60); !equalInts(got, []int{20, 60}) {
		t.Errorf("CrossRange = %v", got)
	}
	if got := l.CrossRange(21, 59); len(got) != 0 {
		t.Errorf("CrossRange open = %v", got)
	}
	if got := l.TracksRange(10, 50); !equalInts(got, []int{10, 50}) {
		t.Errorf("TracksRange = %v", got)
	}
}

func TestOptimizePinAlignment(t *testing.T) {
	// Paper: "alignment of routing tracks with pins can be taken into
	// account by adding rectangles to A which model track positions that
	// allow on-track pin access." A pin-access rect at an off-pitch
	// position pulls a track onto it when beneficial.
	// The objective is union coverage, so the pin-access rectangle must
	// add coverage a mis-aligned track would not get: it models a track
	// position from which an otherwise blocked pin is reachable on-track.
	rects := []geom.Rect{
		geom.R(0, 0, 1000, 100),    // plane
		geom.R(1000, 42, 1400, 44), // on-track pin access beyond the plane
	}
	coords, _ := Optimize(rects, geom.Horizontal, 40, geom.Iv(0, 100))
	found := false
	for _, c := range coords {
		if c == 42 || c == 43 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a track aligned to the pin rows, got %v", coords)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkOptimize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	area := geom.R(0, 0, 40000, 4000)
	var holes []geom.Rect
	for i := 0; i < 60; i++ {
		x, y := rng.Intn(39000), rng.Intn(3900)
		holes = append(holes, geom.R(x, y, x+rng.Intn(3000), y+rng.Intn(200)))
	}
	rects := geom.SubtractRects(area, holes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimize(rects, geom.Horizontal, 40, geom.Iv(0, 4000))
	}
	_ = sort.IntsAreSorted
}
