// Package report computes and formats the evaluation metrics of the
// paper's §5.3: netlength, via counts, scenic-net statistics against
// Steiner baselines (Table I), per-terminal-class detour ratios
// (Table II), global-routing summaries (Table III), and error counts.
package report

import (
	"fmt"
	"strings"
	"time"

	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
	"bonnroute/internal/steiner"
)

// NetLength holds a net's routed wire length and via count.
type NetLength struct {
	Length int64
	Vias   int
	Routed bool
}

// ScenicThresholdLen is the minimum routed length for a net to qualify as
// scenic (the paper uses 100 µm; we scale to the synthetic chips'
// dimensions via this variable).
var ScenicThresholdLen = int64(2000)

// Metrics is one row of Table I.
type Metrics struct {
	Name      string
	Nets      int
	Runtime   time.Duration
	RuntimeBR time.Duration // BonnRoute portion of a combined flow (0 if n/a)
	Netlength int64
	Vias      int
	Scenic25  int
	Scenic50  int
	Errors    int
	Unrouted  int
}

// SteinerBaselines computes the per-net Steiner minimum lengths (exact
// for ≤ 9 terminals, heuristic beyond — §5.3) from pin centers.
func SteinerBaselines(c *chip.Chip) []int64 {
	out := make([]int64, len(c.Nets))
	for ni := range c.Nets {
		pts := make([]geom.Point, 0, len(c.Nets[ni].Pins))
		for _, pi := range c.Nets[ni].Pins {
			pts = append(pts, c.Pins[pi].Center())
		}
		out[ni] = steiner.RSMTLength(pts)
	}
	return out
}

// SteinerBaselinesAt computes per-net Steiner minimum lengths over
// arbitrary representative points (e.g. global-routing tile centers, the
// right metric for Table II/III comparisons of global routes).
func SteinerBaselinesAt(c *chip.Chip, pointOf func(pin int) geom.Point) []int64 {
	out := make([]int64, len(c.Nets))
	for ni := range c.Nets {
		pts := make([]geom.Point, 0, len(c.Nets[ni].Pins))
		for _, pi := range c.Nets[ni].Pins {
			pts = append(pts, pointOf(pi))
		}
		out[ni] = steiner.RSMTLength(pts)
	}
	return out
}

// Scenic computes the scenic-net counts: nets with routed length ≥ the
// threshold and detour ≥ 25 % (resp. 50 %) over the Steiner baseline.
func Scenic(perNet []NetLength, baselines []int64) (s25, s50 int) {
	for ni, nl := range perNet {
		if !nl.Routed || nl.Length < ScenicThresholdLen || baselines[ni] <= 0 {
			continue
		}
		if nl.Length*4 >= baselines[ni]*5 {
			s25++
		}
		if nl.Length*2 >= baselines[ni]*3 {
			s50++
		}
	}
	return
}

// TerminalClassRow is one column of Table II.
type TerminalClassRow struct {
	Label     string
	Netlength int64
	Steiner   int64
}

// Ratio returns netlength over Steiner length.
func (r TerminalClassRow) Ratio() float64 {
	if r.Steiner == 0 {
		return 0
	}
	return float64(r.Netlength) / float64(r.Steiner)
}

// TableII buckets nets by terminal count exactly as the paper: 2, 3, 4,
// 5–10, 11–20, >20.
func TableII(c *chip.Chip, perNet []NetLength, baselines []int64) []TerminalClassRow {
	rows := []TerminalClassRow{
		{Label: "2 terminals"}, {Label: "3 terminals"}, {Label: "4 terminals"},
		{Label: "5-10 terminals"}, {Label: "11-20 terminals"}, {Label: ">20 terminals"},
	}
	bucket := func(k int) int {
		switch {
		case k <= 2:
			return 0
		case k == 3:
			return 1
		case k == 4:
			return 2
		case k <= 10:
			return 3
		case k <= 20:
			return 4
		}
		return 5
	}
	for ni := range c.Nets {
		if !perNet[ni].Routed {
			continue
		}
		b := bucket(len(c.Nets[ni].Pins))
		rows[b].Netlength += perNet[ni].Length
		rows[b].Steiner += baselines[ni]
	}
	return rows
}

// FormatTableI renders Table I rows.
func FormatTableI(rows []Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %10s %10s %12s %9s %9s %9s %7s %8s\n",
		"flow", "nets", "time", "time(BR)", "netlength", "#vias", "scenic25", "scenic50", "errors", "unrouted")
	for _, r := range rows {
		br := "-"
		if r.RuntimeBR > 0 {
			br = r.RuntimeBR.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-14s %8d %10s %10s %12d %9d %9d %9d %7d %8d\n",
			r.Name, r.Nets, r.Runtime.Round(time.Millisecond), br,
			r.Netlength, r.Vias, r.Scenic25, r.Scenic50, r.Errors, r.Unrouted)
	}
	return b.String()
}

// FormatTableII renders Table II.
func FormatTableII(rows []TerminalClassRow) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12d DBU (%.3fx)\n", r.Label, r.Netlength, r.Ratio())
	}
	return b.String()
}

// GlobalMetrics is one row of Table III.
type GlobalMetrics struct {
	Name        string
	Runtime     time.Duration
	AlgTime     time.Duration // time in Algorithm 2 (BR only)
	RRTime      time.Duration // rip-up & reroute time (BR only)
	Netlength   int64
	Steiner     int64
	Vias        int
	OverloadedE int
}

// FormatTableIII renders Table III rows.
func FormatTableIII(rows []GlobalMetrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %12s %12s %9s %6s\n",
		"router", "time", "alg2", "r&r", "netlength", "steiner", "#vias", "over")
	for _, r := range rows {
		alg, rr := "-", "-"
		if r.AlgTime > 0 {
			alg = r.AlgTime.Round(time.Millisecond).String()
		}
		if r.RRTime > 0 {
			rr = r.RRTime.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-14s %10s %10s %10s %12d %12d %9d %6d\n",
			r.Name, r.Runtime.Round(time.Millisecond), alg, rr,
			r.Netlength, r.Steiner, r.Vias, r.OverloadedE)
	}
	return b.String()
}
