package report

import (
	"strings"
	"testing"
	"time"

	"bonnroute/internal/chip"
)

func TestSteinerBaselines(t *testing.T) {
	c := chip.Generate(chip.GenParams{Seed: 1, Rows: 4, Cols: 10, NumNets: 20})
	b := SteinerBaselines(c)
	if len(b) != len(c.Nets) {
		t.Fatalf("baselines = %d, want %d", len(b), len(c.Nets))
	}
	for ni, l := range b {
		if l <= 0 {
			t.Fatalf("net %d baseline %d", ni, l)
		}
		// Baseline is at most star wiring from the first pin.
		var star int64
		p0 := c.Pins[c.Nets[ni].Pins[0]].Center()
		for _, pi := range c.Nets[ni].Pins[1:] {
			star += int64(p0.Dist1(c.Pins[pi].Center()))
		}
		if l > star {
			t.Fatalf("net %d baseline %d exceeds star %d", ni, l, star)
		}
	}
}

func TestScenic(t *testing.T) {
	baselines := []int64{1000, 1000, 1000, 1000}
	perNet := []NetLength{
		{Length: 1100, Routed: true},  // 10% detour: not scenic
		{Length: 1300, Routed: true},  // 30%: scenic25
		{Length: 1600, Routed: true},  // 60%: scenic25 + scenic50
		{Length: 1600, Routed: false}, // unrouted: ignored
	}
	old := ScenicThresholdLen
	ScenicThresholdLen = 500
	defer func() { ScenicThresholdLen = old }()
	s25, s50 := Scenic(perNet, baselines)
	if s25 != 2 || s50 != 1 {
		t.Fatalf("scenic = %d/%d, want 2/1", s25, s50)
	}
	// Below the length threshold nothing is scenic.
	ScenicThresholdLen = 5000
	s25, s50 = Scenic(perNet, baselines)
	if s25 != 0 || s50 != 0 {
		t.Fatalf("short nets must not be scenic: %d/%d", s25, s50)
	}
}

func TestTableIIBuckets(t *testing.T) {
	c := chip.Generate(chip.GenParams{Seed: 2, Rows: 6, Cols: 14, NumNets: 60})
	baselines := SteinerBaselines(c)
	perNet := make([]NetLength, len(c.Nets))
	for i := range perNet {
		perNet[i] = NetLength{Length: baselines[i] * 11 / 10, Routed: true}
	}
	rows := TableII(c, perNet, baselines)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	var total int64
	for _, r := range rows {
		total += r.Netlength
		if r.Steiner > 0 {
			ratio := r.Ratio()
			if ratio < 1.05 || ratio > 1.15 {
				t.Fatalf("%s: ratio %.3f, want ≈1.1", r.Label, ratio)
			}
		}
	}
	var want int64
	for i := range perNet {
		want += perNet[i].Length
	}
	if total != want {
		t.Fatalf("bucket sum %d != total %d", total, want)
	}
	// Empty bucket ratio is 0, not NaN.
	if (TerminalClassRow{}).Ratio() != 0 {
		t.Fatal("empty ratio")
	}
}

func TestFormatting(t *testing.T) {
	s := FormatTableI([]Metrics{{
		Name: "ISR", Nets: 100, Runtime: time.Second,
		Netlength: 12345, Vias: 67, Scenic25: 8, Scenic50: 2, Errors: 1,
	}, {
		Name: "BR+cleanup", Nets: 100, Runtime: time.Second / 2, RuntimeBR: time.Second / 4,
		Netlength: 11000, Vias: 50,
	}})
	if !strings.Contains(s, "ISR") || !strings.Contains(s, "BR+cleanup") || !strings.Contains(s, "12345") {
		t.Fatalf("Table I formatting: %s", s)
	}
	s2 := FormatTableII([]TerminalClassRow{{Label: "2 terminals", Netlength: 500, Steiner: 400}})
	if !strings.Contains(s2, "1.250x") {
		t.Fatalf("Table II formatting: %s", s2)
	}
	s3 := FormatTableIII([]GlobalMetrics{{
		Name: "BR-global", Runtime: time.Second, AlgTime: time.Second / 2,
		RRTime: time.Second / 10, Netlength: 999, Steiner: 900, Vias: 12,
	}})
	if !strings.Contains(s3, "BR-global") || !strings.Contains(s3, "999") {
		t.Fatalf("Table III formatting: %s", s3)
	}
}
