package detail

import (
	"bonnroute/internal/shapegrid"
)

// Patch is one exported same-net notch fill (see patchNotches); the ECO
// engine replays these verbatim when it carries a net's committed
// geometry from a previous run into a fresh router.
type Patch struct {
	Z     int
	Shape shapegrid.Shape
}

// NetRecord is the portable committed geometry of one routed net:
// everything the router added to the routing space on the net's behalf
// beyond its access-path reservations (which the new router re-derives
// itself during construction). A record round-trips through
// ExportNet/ReplayNet bit-identically.
type NetRecord struct {
	Routed   bool
	Segments []Segment
	Vias     []ViaRec
	Patches  []Patch
}

// ExportNet copies net ni's committed geometry out of the router. The
// returned record is independent of the router (deep-copied slices).
func (r *Router) ExportNet(ni int) NetRecord {
	rt := &r.routes[ni]
	rec := NetRecord{
		Routed:   rt.routed,
		Segments: append([]Segment(nil), rt.segments...),
		Vias:     append([]ViaRec(nil), rt.vias...),
	}
	for _, p := range rt.patches {
		rec.Patches = append(rec.Patches, Patch{Z: p.z, Shape: p.sh})
	}
	return rec
}

// ReplayNet commits a previously exported record as net ni's wiring:
// the same shapes commitPath would add (segments, via pads/cuts/
// projections, patches), with the same fast-grid invalidations, but
// verbatim — no search, no postprocessing, no legality checks. The
// caller guarantees the record was produced for geometrically the same
// net (same pins, same access paths); patches are re-owned to ni so a
// record survives net renumbering across a scenario delta.
//
// ReplayNet is not safe on a net that already has committed wiring;
// callers replay into freshly constructed routers.
func (r *Router) ReplayNet(ni int, rec NetRecord) {
	rt := &r.routes[ni]
	wt := r.wireTypeOf(ni)
	level := r.ripupLevelOf(ni)
	net := int32(ni)
	for _, s := range rec.Segments {
		sh := r.Space.AddWire(s.Z, s.A, s.B, wt, net, level)
		r.FG.OnShapeAdded(s.Z, sh)
	}
	for _, v := range rec.Vias {
		bot, top, cut, proj := r.Space.ViaShapes(v.V, v.At, wt, net, level)
		r.Space.AddVia(v.V, v.At, wt, net, level)
		r.FG.OnShapeAdded(v.V, bot)
		r.FG.OnShapeAdded(v.V+1, top)
		r.FG.OnCutAdded(v.V, cut)
		if proj != nil {
			r.FG.OnCutAdded(v.V+1, *proj)
		}
	}
	for _, p := range rec.Patches {
		sh := p.Shape
		sh.Net = net
		sh.Ripup = level
		r.Space.AddShape(p.Z, sh)
		r.FG.OnShapeAdded(p.Z, sh)
		rt.patches = append(rt.patches, patchRec{z: p.Z, sh: sh})
	}
	rt.segments = append(rt.segments, rec.Segments...)
	rt.vias = append(rt.vias, rec.Vias...)
	rt.routed = rec.Routed
	r.recomputeLength(ni)
}

// InteractionMargin is the router's worst-case data-structure
// interaction distance: two shapes further apart than this cannot
// affect each other's legality or fast-grid state. The ECO engine uses
// it to decide which committed nets a scenario delta dirties.
func (r *Router) InteractionMargin() int { return r.interact }
