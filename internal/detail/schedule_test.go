package detail

import (
	"context"
	"runtime"
	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
)

// withParallelism raises GOMAXPROCS for the duration of a test so the
// scheduler's concurrent path (goroutines, steals) runs even on a
// single-CPU host, where runScheduled would otherwise cap itself to
// the inline loop. Results are GOMAXPROCS-independent; this only
// makes the concurrency tests non-vacuous everywhere.
func withParallelism(t *testing.T, n int) {
	prev := runtime.GOMAXPROCS(max(n, runtime.GOMAXPROCS(0)))
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// stealEvery returns a forceSteal hook that makes every period-th pop of
// every worker bypass its own LPT share — a deterministic function of
// (worker, pop), so every run injects the same steal pattern.
func stealEvery(period int) func(wi, pop int) bool {
	return func(wi, pop int) bool { return (wi+pop)%period == 0 }
}

// TestForcedStealEquivalence is the work-stealing determinism contract:
// stealing reassigns whole region tasks between workers, and region
// effects are disjoint, so even an adversarial steal schedule must
// produce bit-identical results at every worker count. The forceSteal
// hook injects steals deterministically; run under -race this also
// hunts cross-task data races on the shared routing space.
func TestForcedStealEquivalence(t *testing.T) {
	withParallelism(t, 4)
	gen := func() *chip.Chip {
		return chip.Generate(chip.GenParams{
			Seed: 11, Rows: 6, Cols: 40, NumNets: 60,
			NumLayers: 4, LocalityRadius: 2,
		})
	}
	run := func(workers int, force func(wi, pop int) bool) *Result {
		r := New(gen(), Options{Workers: workers})
		r.forceSteal = force
		return r.Route(context.Background())
	}
	ref := run(1, nil)
	parallelNets := 0
	for _, rd := range ref.RoundDetails {
		if rd.Kind == "parallel" || rd.Kind == "cluster" {
			parallelNets += rd.Nets
		}
	}
	if parallelNets == 0 {
		t.Fatal("no nets routed in parallel rounds; steal equivalence test is vacuous")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := run(workers, stealEvery(2))
		if workers > 1 {
			steals := 0
			for _, rd := range got.RoundDetails {
				steals += rd.Sched.Steals
			}
			if steals == 0 {
				t.Fatalf("Workers=%d: forced-steal run recorded no steals; injection is vacuous", workers)
			}
		}
		if got.Routed != ref.Routed || got.Failed != ref.Failed {
			t.Fatalf("Workers=%d forced steals: routed/failed %d/%d, want %d/%d",
				workers, got.Routed, got.Failed, ref.Routed, ref.Failed)
		}
		if got.RipupEvents != ref.RipupEvents {
			t.Fatalf("Workers=%d forced steals: ripups %d, want %d",
				workers, got.RipupEvents, ref.RipupEvents)
		}
		for ni := range ref.PerNet {
			if got.PerNet[ni] != ref.PerNet[ni] {
				t.Fatalf("Workers=%d forced steals: net %d stats %+v, want %+v",
					workers, ni, got.PerNet[ni], ref.PerNet[ni])
			}
		}
		gs, ws := got.SearchStats, ref.SearchStats
		gs.PiReused, ws.PiReused = 0, 0
		if gs != ws {
			t.Fatalf("Workers=%d forced steals: search stats %+v, want %+v", workers, gs, ws)
		}
	}
}

// TestRegionTasksInvariants pins the properties the determinism proof
// rests on: tasks of one round partition the assigned nets, task
// regions are pairwise disjoint, every net's interaction rectangle lies
// inside its task's region, and task ids are canonical (strip-major,
// cluster-minor with nets in routing order).
func TestRegionTasksInvariants(t *testing.T) {
	c := chip.Generate(chip.GenParams{
		Seed: 7, Rows: 8, Cols: 64, NumNets: 160,
		NumLayers: 4, LocalityRadius: 2,
	})
	r := New(c, Options{Workers: 1})
	for _, k := range r.regionSchedule() {
		strips := r.partition(k)
		assigned := make([][]int, len(strips))
		total := 0
		for ni := range c.Nets {
			if si := r.stripOf(ni, strips); si >= 0 {
				assigned[si] = append(assigned[si], ni)
				total++
			}
		}
		tasks := r.regionTasks(strips, assigned)
		seen := map[int]bool{}
		for i, task := range tasks {
			if task.id != i {
				t.Fatalf("k=%d: task %d has id %d", k, i, task.id)
			}
			for _, ni := range task.nets {
				if seen[ni] {
					t.Fatalf("k=%d: net %d appears in more than one task", k, ni)
				}
				seen[ni] = true
				if !task.region.ContainsRect(r.interactRect(ni)) {
					t.Fatalf("k=%d task %d: net %d interaction rect %v escapes region %v",
						k, task.id, ni, r.interactRect(ni), task.region)
				}
			}
			if !task.region.ContainsRect(task.clamp) {
				t.Fatalf("k=%d task %d: clamp %v outside region %v", k, task.id, task.clamp, task.region)
			}
			for j := i + 1; j < len(tasks); j++ {
				if task.region.Intersects(tasks[j].region) {
					t.Fatalf("k=%d: task %d region %v intersects task %d region %v",
						k, task.id, task.region, tasks[j].id, tasks[j].region)
				}
			}
		}
		if len(seen) != total {
			t.Fatalf("k=%d: tasks cover %d nets, assigned %d", k, len(seen), total)
		}
	}
}

// TestClusterStripDisjoint checks the fixpoint property of the in-strip
// clustering: the returned clusters' bounding boxes are pairwise
// disjoint, so no net of one cluster can interact with any net of
// another even transitively.
func TestClusterStripDisjoint(t *testing.T) {
	c := chip.Generate(chip.GenParams{
		Seed: 3, Rows: 6, Cols: 48, NumNets: 120,
		NumLayers: 4, LocalityRadius: 1,
	})
	r := New(c, Options{Workers: 1})
	nets := make([]int, len(c.Nets))
	for ni := range nets {
		nets[ni] = ni
	}
	clusters := r.clusterStrip(nets)
	covered := 0
	boxes := make([]geom.Rect, len(clusters))
	for i, cl := range clusters {
		covered += len(cl)
		boxes[i] = r.clusterBBox(cl)
	}
	if covered != len(nets) {
		t.Fatalf("clusters cover %d nets, want %d", covered, len(nets))
	}
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Intersects(boxes[j]) {
				t.Fatalf("cluster %d bbox %v intersects cluster %d bbox %v", i, boxes[i], j, boxes[j])
			}
		}
	}
}

// TestRunScheduledExecution pins the scheduler mechanics: every task
// runs exactly once at any worker count and under forced steals, the
// single-worker path spawns no goroutines, and steal counts are
// reported when injection forces them.
func TestRunScheduledExecution(t *testing.T) {
	withParallelism(t, 8)
	mkTasks := func(n int) []*schedTask {
		tasks := make([]*schedTask, n)
		for i := range tasks {
			tasks[i] = &schedTask{id: i, cost: int64(100 - i)}
		}
		return tasks
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, force := range []func(wi, pop int) bool{nil, stealEvery(2)} {
			tasks := mkTasks(13)
			var ran [13]int32
			st := runScheduled(workers, tasks, force, func(wi int, task *schedTask) {
				ran[task.id]++
			})
			for i, n := range ran {
				if n != 1 {
					t.Fatalf("workers=%d: task %d ran %d times", workers, i, n)
				}
			}
			if st.Tasks != 13 {
				t.Fatalf("workers=%d: Tasks=%d, want 13", workers, st.Tasks)
			}
			if workers == 1 && st.Spawned != 0 {
				t.Fatalf("workers=1 spawned %d goroutines, want 0", st.Spawned)
			}
			if workers > 1 && force != nil && st.Steals == 0 {
				t.Fatalf("workers=%d: forced steals reported 0", workers)
			}
		}
	}
	// A single task must not spawn either, regardless of Workers —
	// the satellite fix for the Workers>1 regression on one core.
	st := runScheduled(8, mkTasks(1), nil, func(wi int, task *schedTask) {})
	if st.Spawned != 0 {
		t.Fatalf("single task spawned %d goroutines, want 0", st.Spawned)
	}
}

// TestSchedulerAllocs bounds the scheduler's own allocation overhead so
// the parallel path cannot erode the per-search budgets pinned in
// pathsearch: dispatching a round of tasks on one worker (the
// steady-state of a saturated machine) must stay within a handful of
// slice headers, independent of net count.
func TestSchedulerAllocs(t *testing.T) {
	tasks := make([]*schedTask, 16)
	for i := range tasks {
		tasks[i] = &schedTask{id: i, cost: int64(i)}
	}
	const maxAllocs = 8
	if got := testing.AllocsPerRun(100, func() {
		runScheduled(1, tasks, nil, func(wi int, task *schedTask) {})
	}); got > maxAllocs {
		t.Errorf("runScheduled(1 worker, 16 tasks): %v allocs/op, want <= %d", got, maxAllocs)
	}
}
