package detail

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"bonnroute/internal/geom"
)

// schedTask is one unit of region-owned routing work in a parallel
// round: a set of nets whose interaction rectangles all fit inside
// region, routed serially in net order by whichever worker claims the
// task. Tasks of one round have pairwise-disjoint regions, so the
// claiming order cannot influence the routing result — only the wall
// time.
type schedTask struct {
	// id is the task's canonical position within its round (strip-major,
	// cluster-minor). Failure merging and per-task stats use this order,
	// never the execution order.
	id int
	// region is the owned rectangle; clamp is region shrunk by the
	// commit margin at sides interior to the chip.
	region, clamp geom.Rect
	// nets in global routing order.
	nets []int
	// cost is the deterministic effort estimate used for the ready-queue
	// priority and the LPT pre-assignment (Σ net half-perimeters plus a
	// per-net constant).
	cost int64
	// pref is the LPT-preferred worker (observability: executing on any
	// other worker counts as a steal).
	pref int
}

// SchedStats reports one parallel round's work-stealing scheduler
// behaviour. None of these feed back into routing decisions — they
// exist so the schedule is observable (obs round spans, routebench
// scaling rows).
type SchedStats struct {
	// Tasks is how many region tasks the round decomposed into.
	Tasks int
	// Steals counts tasks executed by a worker other than their
	// LPT-preferred one (idle workers claim the highest-priority
	// remaining task regardless of preference).
	Steals int
	// Spawned is how many goroutines the round actually started (the
	// calling goroutine always acts as worker 0, so a single-task or
	// single-worker round spawns none).
	Spawned int
	// Idle is the summed time workers spent finished while the round's
	// barrier waited on slower workers.
	Idle time.Duration
	// Imbalance is max−min worker busy time — the LPT/steal residual.
	Imbalance time.Duration
}

// Add accumulates o into s (per-run totals across rounds).
func (s *SchedStats) Add(o SchedStats) {
	s.Tasks += o.Tasks
	s.Steals += o.Steals
	s.Spawned += o.Spawned
	s.Idle += o.Idle
	s.Imbalance += o.Imbalance
}

// runScheduled executes the round's tasks on up to `workers` concurrent
// executors (capped at GOMAXPROCS — see below) and returns the
// scheduler statistics.
//
// The ready queue is globally ordered by (cost descending, id
// ascending). Workers prefer tasks LPT-pre-assigned to them and steal
// the highest-priority remaining task when their own share is drained,
// so the *assignment* of tasks to workers adapts to real durations —
// but task effects are region-owned and pairwise disjoint, so any
// assignment commits the same wiring. forceSteal (test injection) makes
// a worker's pop deliberately bypass its own share; it may perturb
// wall time only, never results.
//
// The calling goroutine participates as worker 0: with one worker or a
// single task no goroutine is spawned and no lock is taken, so the
// parallel path never costs more than a plain serial loop.
func runScheduled(workers int, tasks []*schedTask, forceSteal func(wi, pop int) bool, run func(wi int, t *schedTask)) SchedStats {
	st := SchedStats{Tasks: len(tasks)}
	if len(tasks) == 0 {
		return st
	}
	// Ready-queue order: cost descending, canonical id ascending. The
	// id tie-break keeps the order total and deterministic.
	order := append([]*schedTask(nil), tasks...)
	sort.Slice(order, func(a, b int) bool {
		if order[a].cost != order[b].cost {
			return order[a].cost > order[b].cost
		}
		return order[a].id < order[b].id
	})
	// Cap concurrency at GOMAXPROCS: extra CPU-bound executors beyond
	// the runtime's parallelism only add switching and cache pressure,
	// so a saturated machine (GOMAXPROCS=1) runs the inline loop and
	// Workers>1 never costs more than serial. The cap affects only the
	// task→worker assignment, which cannot influence results.
	n := min(workers, len(order), max(1, runtime.GOMAXPROCS(0)))
	if n < 1 {
		n = 1
	}
	// LPT pre-assignment over the estimates: longest task first onto the
	// least-loaded worker. pref is advisory — stealing overrides it when
	// real durations drift from the estimates.
	loads := make([]int64, n)
	for _, t := range order {
		mi := 0
		for i := 1; i < n; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		t.pref = mi
		loads[mi] += t.cost
	}
	if n == 1 {
		for _, t := range order {
			run(0, t)
		}
		return st
	}

	var (
		mu      sync.Mutex
		claimed = make([]bool, len(order))
		left    = len(order)
		steals  = 0
		busy    = make([]time.Duration, n)
	)
	// claim pops one task for worker wi under the queue lock: the
	// highest-priority unclaimed task preferring wi, else (a steal) the
	// highest-priority unclaimed task overall.
	claim := func(wi, pop int) *schedTask {
		mu.Lock()
		defer mu.Unlock()
		if left == 0 {
			return nil
		}
		own, other := -1, -1
		for i, t := range order {
			if claimed[i] {
				continue
			}
			if t.pref == wi {
				if own < 0 {
					own = i
				}
			} else if other < 0 {
				other = i
			}
			if own >= 0 && other >= 0 {
				break
			}
		}
		pick := own
		if pick < 0 || (other >= 0 && forceSteal != nil && forceSteal(wi, pop)) {
			pick = other
		}
		if pick < 0 {
			pick = own
		}
		claimed[pick] = true
		left--
		if order[pick].pref != wi {
			steals++
		}
		return order[pick]
	}

	start := time.Now()
	exec := func(wi int) {
		t0 := time.Now()
		for pop := 0; ; pop++ {
			t := claim(wi, pop)
			if t == nil {
				break
			}
			run(wi, t)
		}
		busy[wi] = time.Since(t0)
	}
	var wg sync.WaitGroup
	for wi := 1; wi < n; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			exec(wi)
		}(wi)
	}
	st.Spawned = n - 1
	exec(0)
	wg.Wait()
	elapsed := time.Since(start)

	minB, maxB := busy[0], busy[0]
	for _, b := range busy {
		minB, maxB = min(minB, b), max(maxB, b)
		if idle := elapsed - b; idle > 0 {
			st.Idle += idle
		}
	}
	st.Imbalance = maxB - minB
	st.Steals = steals
	return st
}

// netBBox is the bounding box of the net's pin centers.
func (r *Router) netBBox(ni int) geom.Rect {
	var bbox geom.Rect
	for _, pi := range r.Chip.Nets[ni].Pins {
		ctr := r.Chip.Pins[pi].Center()
		bbox = bbox.Union(geom.Rect{XMin: ctr.X, YMin: ctr.Y, XMax: ctr.X + 1, YMax: ctr.Y + 1})
	}
	return bbox
}

// interactRect is the rectangle a net's routing may read or write when
// it owns a region just covering it: the pin bbox plus the strip
// assignment margin (search box, commit overhang, patching, access
// regeneration), clipped to the chip.
func (r *Router) interactRect(ni int) geom.Rect {
	return r.netBBox(ni).Expanded(r.assignMargin).Intersection(r.Chip.Area)
}

// clampRegion shrinks a region by the commit margin on every side
// interior to the chip; chip edges have no neighbor and keep their full
// extent. This generalizes the former x-only strip clamping to the 2D
// cluster regions of the finer decomposition.
func (r *Router) clampRegion(s geom.Rect) geom.Rect {
	area := r.Chip.Area
	c := s
	if c.XMin > area.XMin {
		c.XMin += r.clampMargin
	}
	if c.XMax < area.XMax {
		c.XMax -= r.clampMargin
	}
	if c.YMin > area.YMin {
		c.YMin += r.clampMargin
	}
	if c.YMax < area.YMax {
		c.YMax -= r.clampMargin
	}
	return c
}

// clusterStrip splits a strip's net list into groups whose interaction
// rectangles form pairwise-disjoint bounding boxes — the net-level
// parallelism inside a strip. Nets whose interaction rects overlap are
// unioned; clusters whose bounding boxes still overlap are merged again
// until the boxes are disjoint, so two clusters can never interact even
// through nets they don't share. The grouping depends only on pin
// geometry and deck-derived margins — never on Workers or committed
// wiring — so every worker count derives the same clusters.
//
// Each returned cluster keeps its nets in the input (global routing)
// order; clusters are ordered by their first net.
func (r *Router) clusterStrip(nets []int) [][]int {
	if len(nets) <= 1 {
		return [][]int{nets}
	}
	rects := make([]geom.Rect, len(nets))
	for i, ni := range nets {
		rects[i] = r.interactRect(ni)
	}
	// Union-find over net slots; roots carry the cluster bbox.
	parent := make([]int, len(nets))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	bbox := append([]geom.Rect(nil), rects...)
	union := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return false
		}
		parent[ra] = rb
		bbox[rb] = bbox[rb].Union(bbox[ra])
		return true
	}
	// Merge to fixpoint: overlap of cluster bounding boxes (not just the
	// original rects) forces a merge, so the final boxes are disjoint.
	for changed := true; changed; {
		changed = false
		for i := range nets {
			ri := find(i)
			for j := i + 1; j < len(nets); j++ {
				rj := find(j)
				if ri != rj && bbox[ri].Intersects(bbox[rj]) {
					union(i, j)
					ri = find(i)
					changed = true
				}
			}
		}
	}
	groups := map[int]int{} // root -> output index
	var out [][]int
	for i, ni := range nets {
		root := find(i)
		gi, ok := groups[root]
		if !ok {
			gi = len(out)
			groups[root] = gi
			out = append(out, nil)
		}
		out[gi] = append(out[gi], ni)
	}
	return out
}

// clusterBBox is the union of the cluster nets' interaction rects.
func (r *Router) clusterBBox(nets []int) geom.Rect {
	var bbox geom.Rect
	for _, ni := range nets {
		bbox = bbox.Union(r.interactRect(ni))
	}
	return bbox
}

// regionTasks decomposes one round's strip assignment into the task
// list the scheduler runs: per strip, nets are clustered
// (clusterStrip); a strip with several clusters becomes several tasks
// whose regions are the cluster bounding boxes, a single-cluster strip
// stays one task owning the whole strip (the wider region permits more
// in-strip rip-up). Task ids are canonical: strip-major, cluster-minor.
func (r *Router) regionTasks(strips []geom.Rect, assigned [][]int) []*schedTask {
	var tasks []*schedTask
	add := func(region geom.Rect, nets []int) {
		var cost int64
		for _, ni := range nets {
			cost += int64(r.netSpan(ni)) + int64(16*r.Chip.Deck.Layers[0].Pitch)
		}
		tasks = append(tasks, &schedTask{
			id:     len(tasks),
			region: region,
			clamp:  r.clampRegion(region),
			nets:   nets,
			cost:   cost,
		})
	}
	for si := range assigned {
		if len(assigned[si]) == 0 {
			continue
		}
		clusters := r.clusterStrip(assigned[si])
		if len(clusters) == 1 {
			add(strips[si], clusters[0])
			continue
		}
		for _, nets := range clusters {
			add(r.clusterBBox(nets), nets)
		}
	}
	return tasks
}
