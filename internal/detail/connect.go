package detail

import (
	"sort"

	"sync/atomic"

	"bonnroute/internal/drc"
	"bonnroute/internal/fastgrid"
	"bonnroute/internal/geom"
	"bonnroute/internal/pathsearch"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
)

// worker bundles the per-goroutine routing state of one round: a pooled
// path-search engine plus — in parallel strip rounds — the owned region.
// A restricted worker's reads and writes all stay inside region: search
// areas are clipped to clamp (the region shrunk by the commit margin at
// interior strip boundaries), rip-up is limited to victims whose extent
// is victimMargin inside the region, and access-path regeneration is
// skipped for nets too close to the boundary. The restriction rules
// depend only on chip geometry — never on the worker count — so any
// interleaving of strip tasks produces the serial strip-order result.
// An unrestricted worker (serial rounds, RouteNet) routes anywhere.
type worker struct {
	e          *pathsearch.Engine
	restricted bool
	region     geom.Rect
	clamp      geom.Rect
}

// containedIn reports whether rect, expanded by margin and clipped to
// the chip area, lies wholly inside region.
func (r *Router) containedIn(region, rect geom.Rect, margin int) bool {
	return region.ContainsRect(rect.Expanded(margin).Intersection(r.Chip.Area))
}

// netExtent is the bounding box of everything the net owns in the
// routing space: pin shapes, access-path points, committed segments, via
// pads, and patches.
func (r *Router) netExtent(ni int) geom.Rect {
	var bbox geom.Rect
	n := &r.Chip.Nets[ni]
	for _, pi := range n.Pins {
		for _, s := range r.Chip.Pins[pi].Shapes {
			bbox = bbox.Union(s.Rect)
		}
	}
	rt := &r.routes[ni]
	for _, ap := range rt.access {
		if !ap.Valid() {
			continue
		}
		for i := 0; i < ap.NumPoints(); i++ {
			p := ap.Point(i)
			bbox = bbox.Union(geom.Rect{XMin: p.X, YMin: p.Y, XMax: p.X + 1, YMax: p.Y + 1})
		}
	}
	for _, s := range rt.segments {
		bbox = bbox.Union(geom.R(s.A.X, s.A.Y, s.B.X, s.B.Y))
	}
	for _, v := range rt.vias {
		pad := geom.Rect{XMin: v.At.X, YMin: v.At.Y, XMax: v.At.X + 1, YMax: v.At.Y + 1}.
			Expanded(2 * r.Chip.Deck.Layers[0].Pitch)
		bbox = bbox.Union(pad)
	}
	for _, p := range rt.patches {
		bbox = bbox.Union(p.sh.Rect)
	}
	return bbox
}

// searchConfig builds the path-search configuration for one net: the
// fast grid answers most legality queries; blocked verdicts are refined
// with net-aware rule-checker queries so the net's own shapes (pins,
// reservations, earlier wiring) never block it — the equivalent of the
// paper's temporary removal of component shapes from routing space
// (§4.4).
func (r *Router) searchConfig(ni int, area *pathsearch.Area, pi pathsearch.FutureCost,
	maxNeed drc.Need, penalty func(drc.Need) int) *pathsearch.Config {

	net := int32(ni)
	wt := r.wireTypeOf(ni)
	slot := r.FG.Slot(wt)
	if r.opt.NoFastGrid {
		slot = -1 // every query goes to the rule checker
	}

	// The fast grid is net-independent, so cached "blocked" verdicts near
	// the net's OWN geometry must be re-checked net-aware (the stand-in
	// for §4.4's temporary removal of component shapes). Anywhere else a
	// blocked verdict is final — refinement is scoped to the net's own
	// boxes, which keeps the fast-grid hit rate high.
	ownBoxes := r.ownGeometry(ni)
	nearOwn := func(z int, rect geom.Rect) bool {
		for _, b := range ownBoxes[z] {
			if b.Intersects(rect) {
				return true
			}
		}
		return false
	}

	return &pathsearch.Config{
		Tracks:       r.TG,
		Costs:        r.costs,
		Pi:           pi,
		Area:         area,
		MaxNeed:      maxNeed,
		RipupPenalty: penalty,
		SpreadCost:   r.opt.SpreadCost,
		WireRuns: func(z, ti, lo, hi int, visit func(lo, hi int, need drc.Need)) {
			layer := &r.TG.Layers[z]
			model := wt.Oriented(z, layer.Dir, layer.Dir)
			coord := layer.Coords[ti]
			if slot < 0 {
				// Uncached wire type: full rule-checker sweep.
				atomic.AddInt64(&r.FG.Misses, 1)
				r.Space.TrackNeeds(z, layer.Dir, coord, geom.Iv(lo, hi+1), model, net, visit)
				return
			}
			// One track sweep answered from the cache counts as a hit;
			// each blocked run that must be refined by the rule checker
			// counts as a miss (the §3.6 accounting).
			atomic.AddInt64(&r.FG.Hits, 1)
			r.FG.Runs(z, ti, lo, hi+1, func(rlo, rhi int, word uint64) bool {
				need := fastgrid.PrefNeedAt(word, slot)
				if need == 0 {
					return true
				}
				var runRect geom.Rect
				if layer.Dir == geom.Horizontal {
					runRect = geom.Rect{XMin: rlo, XMax: rhi, YMin: coord, YMax: coord + 1}
				} else {
					runRect = geom.Rect{XMin: coord, XMax: coord + 1, YMin: rlo, YMax: rhi}
				}
				if !nearOwn(z, runRect) {
					visit(rlo, rhi, need) // blocked by others: verdict final
					return true
				}
				// Blocked near the net's own geometry: refine with a
				// net-aware sweep over just this run.
				atomic.AddInt64(&r.FG.Misses, 1)
				r.Space.TrackNeeds(z, layer.Dir, coord, geom.Iv(rlo, rhi), model, net, visit)
				return true
			})
		},
		JogNeed: func(z, lowerTi, along int) drc.Need {
			need, ok := r.FG.JogUpNeed(z, lowerTi, along, wt)
			if ok && need == 0 {
				return 0
			}
			layer := &r.TG.Layers[z]
			c0, c1 := layer.Coords[lowerTi], layer.Coords[lowerTi+1]
			var a, b geom.Point
			if layer.Dir == geom.Horizontal {
				a, b = geom.Pt(along, c0), geom.Pt(along, c1)
			} else {
				a, b = geom.Pt(c0, along), geom.Pt(c1, along)
			}
			if ok && !nearOwn(z, geom.R(a.X, a.Y, b.X, b.Y).Expanded(1)) {
				return need // blocked by others: verdict final
			}
			atomic.AddInt64(&r.FG.Misses, 1)
			return r.Space.SegmentNeed(z, a, b, wt, net)
		},
		ViaNeed: func(v, botTi, topTi int, pos geom.Point) drc.Need {
			need, ok := r.FG.ViaNeed(v, botTi, topTi, pos, wt)
			if ok && need == 0 {
				return 0
			}
			if ok {
				pt := geom.Rect{XMin: pos.X, YMin: pos.Y, XMax: pos.X + 1, YMax: pos.Y + 1}
				if !nearOwn(v, pt) && !nearOwn(v+1, pt) {
					return need
				}
			}
			atomic.AddInt64(&r.FG.Misses, 1)
			return r.Space.ViaNeed(v, pos, wt, net)
		},
	}
}

// ownGeometry collects per-layer bounding boxes of the net's own shapes
// (pins, access reservations, committed segments, via pads, patches),
// expanded by the worst-case interaction distance.
func (r *Router) ownGeometry(ni int) [][]geom.Rect {
	out := make([][]geom.Rect, r.Chip.NumLayers())
	add := func(z int, rect geom.Rect) {
		margin := r.Chip.Deck.MaxSpacing(z) + 2*r.Chip.Deck.Layers[z].Pitch
		out[z] = append(out[z], rect.Expanded(margin))
	}
	n := &r.Chip.Nets[ni]
	rt := &r.routes[ni]
	for _, pi := range n.Pins {
		for _, s := range r.Chip.Pins[pi].Shapes {
			add(s.Layer, s.Rect)
		}
	}
	for _, ap := range rt.access {
		if !ap.Valid() {
			continue
		}
		var bbox geom.Rect
		for i := 0; i < ap.NumPoints(); i++ {
			p := ap.Point(i)
			bbox = bbox.Union(geom.Rect{XMin: p.X, YMin: p.Y, XMax: p.X + 1, YMax: p.Y + 1})
		}
		add(ap.Layer(), bbox)
	}
	for _, s := range rt.segments {
		add(s.Z, geom.R(s.A.X, s.A.Y, s.B.X, s.B.Y))
	}
	for _, v := range rt.vias {
		pad := geom.Rect{XMin: v.At.X, YMin: v.At.Y, XMax: v.At.X + 1, YMax: v.At.Y + 1}.Expanded(2 * r.Chip.Deck.Layers[0].Pitch)
		add(v.V, pad)
		add(v.V+1, pad)
	}
	for _, p := range rt.patches {
		add(p.z, p.sh.Rect)
	}
	return out
}

// netComponents groups the net's pins into connected components based on
// committed wiring. Each component carries its on-track attachment
// points.
type component struct {
	pins   []int // pin slots within the net
	points []geom.Point3
}

// components derives the current components of a net: initially one per
// pin; pins become connected through committed wiring. Connectivity is
// tracked through points: pin attachment points, committed segment
// endpoints and interior crossings, and via locations; two elements join
// when they coincide or a point lies on a segment.
func (r *Router) components(ni int) []component {
	n := &r.Chip.Nets[ni]
	rt := &r.routes[ni]

	attach := make([]geom.Point3, len(n.Pins))
	for k := range n.Pins {
		attach[k] = r.pinAttachment(ni, k)
	}

	// Element ids: pins [0, P), then one per distinct point.
	P := len(n.Pins)
	pointID := map[geom.Point3]int{}
	var points []geom.Point3
	idOf := func(p geom.Point3) int {
		if id, ok := pointID[p]; ok {
			return id
		}
		id := P + len(points)
		pointID[p] = id
		points = append(points, p)
		return id
	}
	// Register all relevant points up front.
	for k := range n.Pins {
		idOf(attach[k])
	}
	segPoints := r.segmentPoints(ni)
	for _, p := range segPoints {
		idOf(p)
	}
	for _, v := range rt.vias {
		idOf(geom.Pt3(v.At.X, v.At.Y, v.V))
		idOf(geom.Pt3(v.At.X, v.At.Y, v.V+1))
	}

	parent := make([]int, P+len(points))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for k := range n.Pins {
		union(k, idOf(attach[k]))
	}
	// Segments connect every registered point lying on them.
	for _, s := range rt.segments {
		a := idOf(geom.Pt3(s.A.X, s.A.Y, s.Z))
		union(a, idOf(geom.Pt3(s.B.X, s.B.Y, s.Z)))
		for p, id := range pointID {
			if p.Z == s.Z && onSegment(s, p.XY()) {
				union(a, id)
			}
		}
	}
	for _, v := range rt.vias {
		union(idOf(geom.Pt3(v.At.X, v.At.Y, v.V)), idOf(geom.Pt3(v.At.X, v.At.Y, v.V+1)))
	}

	groups := map[int]*component{}
	for k := range n.Pins {
		root := find(k)
		g := groups[root]
		if g == nil {
			g = &component{}
			groups[root] = g
		}
		g.pins = append(g.pins, k)
		g.points = append(g.points, attach[k])
	}
	// Wiring points enlarge their group's attachment set.
	for _, p := range segPoints {
		if g, ok := groups[find(idOf(p))]; ok {
			g.points = append(g.points, p)
		}
	}

	out := make([]component, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pins[0] < out[j].pins[0] })
	return out
}

// pinAttachment is the on-track point where pin slot k of net ni is
// entered: the reserved access path endpoint, or the nearest track vertex
// to the pin center as fallback.
func (r *Router) pinAttachment(ni, k int) geom.Point3 {
	rt := &r.routes[ni]
	n := &r.Chip.Nets[ni]
	if ap := rt.access[k]; ap.Valid() {
		e := ap.End()
		return geom.Pt3(e.X, e.Y, ap.Layer())
	}
	p := &r.Chip.Pins[n.Pins[k]]
	s := p.Shapes[0]
	z := s.Layer
	l := &r.TG.Layers[z]
	ctr := s.Rect.Center()
	if len(l.Coords) == 0 {
		return geom.Pt3(ctr.X, ctr.Y, z)
	}
	tc := l.NearestTrack(ctr.Coord(l.Dir.Perp()))
	cc := nearestIn(l.Cross, ctr.Coord(l.Dir))
	if l.Dir == geom.Horizontal {
		return geom.Pt3(cc, tc, z)
	}
	return geom.Pt3(tc, cc, z)
}

func nearestIn(sorted []int, x int) int {
	if len(sorted) == 0 {
		return x
	}
	i := sort.SearchInts(sorted, x)
	if i == 0 {
		return sorted[0]
	}
	if i == len(sorted) {
		return sorted[len(sorted)-1]
	}
	if sorted[i]-x < x-sorted[i-1] {
		return sorted[i]
	}
	return sorted[i-1]
}

// segmentPoints returns on-track points along the net's committed
// segments (endpoints plus up to 32 interior crossings each) so the next
// connection can attach anywhere on the existing wiring.
func (r *Router) segmentPoints(ni int) []geom.Point3 {
	var out []geom.Point3
	for _, s := range r.routes[ni].segments {
		out = append(out, geom.Pt3(s.A.X, s.A.Y, s.Z), geom.Pt3(s.B.X, s.B.Y, s.Z))
		layer := &r.TG.Layers[s.Z]
		if s.A.Coord(layer.Dir.Perp()) != s.B.Coord(layer.Dir.Perp()) {
			continue // jog: endpoints only
		}
		lo := min(s.A.Coord(layer.Dir), s.B.Coord(layer.Dir))
		hi := max(s.A.Coord(layer.Dir), s.B.Coord(layer.Dir))
		cr := layer.CrossRange(lo, hi)
		step := 1
		if len(cr) > 32 {
			step = len(cr) / 32
		}
		for i := 0; i < len(cr); i += step {
			var p geom.Point3
			if layer.Dir == geom.Horizontal {
				p = geom.Pt3(cr[i], s.A.Y, s.Z)
			} else {
				p = geom.Pt3(s.A.X, cr[i], s.Z)
			}
			out = append(out, p)
		}
	}
	return out
}

func onSegment(s Segment, p geom.Point) bool {
	if s.A.X == s.B.X {
		return p.X == s.A.X && p.Y >= min(s.A.Y, s.B.Y) && p.Y <= max(s.A.Y, s.B.Y)
	}
	return p.Y == s.A.Y && p.X >= min(s.A.X, s.B.X) && p.X <= max(s.A.X, s.B.X)
}

// routeArea derives the search area: the net's global corridor when
// available (±margin tiles, plus all layers of those tiles), otherwise
// the bounding box of the attachment points with margin. Restricted
// workers clip every rectangle to their clamp so the search — and any
// wiring it commits — stays inside the owned region.
func (r *Router) routeArea(w *worker, ni int, S, T []geom.Point3) *pathsearch.Area {
	nl := r.Chip.NumLayers()
	area := pathsearch.NewArea(nl)
	addAll := func(rect geom.Rect) {
		if w.restricted {
			rect = rect.Intersection(w.clamp)
		}
		if rect.Empty() {
			return
		}
		for z := 0; z < nl; z++ {
			// Crossing existing wiring requires neighbor layers (§4.4),
			// so open every rectangle on every layer.
			area.Add(z, rect)
		}
	}
	// §4.4: nets reconsidered after failures get an extended routing
	// area; from the third attempt the corridor is dropped entirely.
	attempt := r.routes[ni].attempt
	margin := r.opt.CorridorMarginTiles * max(1, attempt)
	useCorridor := attempt < 3
	if useCorridor && r.corridors != nil && r.ggraph != nil && ni < len(r.corridors) && len(r.corridors[ni]) > 0 {
		g := r.ggraph
		for _, e := range r.corridors[ni] {
			a, b := g.EdgeEndpoints(int(e))
			for _, v := range [2]int{a, b} {
				tx, ty, _ := g.VertexCoords(v)
				rect := g.TileRect(max(0, tx-margin), max(0, ty-margin)).
					Union(g.TileRect(min(g.NX-1, tx+margin), min(g.NY-1, ty+margin)))
				addAll(rect)
			}
		}
		return area
	}
	var bbox geom.Rect
	for _, p := range append(append([]geom.Point3(nil), S...), T...) {
		bbox = bbox.Union(geom.Rect{XMin: p.X, YMin: p.Y, XMax: p.X + 1, YMax: p.Y + 1})
	}
	pitch := r.Chip.Deck.Layers[0].Pitch
	addAll(bbox.Expanded(16 * pitch * max(1, attempt)).Intersection(r.Chip.Area))
	return area
}

// RouteNet connects all pins of net ni. It returns true when the net is
// fully routed. ripupBudget counts how many victim nets may be ripped.
func (r *Router) RouteNet(ni int, ripupBudget int) bool {
	w := &worker{e: r.acquireEngine()}
	ok := r.routeNetWith(w, ni, ripupBudget)
	r.releaseEngine(w.e)
	return ok
}

// routeNetWith is RouteNet on a caller-held worker, so batch callers
// (parallel rounds, rip-up recursion) reuse one engine's pools across
// many nets instead of paying a checkout per net.
func (r *Router) routeNetWith(w *worker, ni int, ripupBudget int) bool {
	rt := &r.routes[ni]
	rt.attempt++
	if rt.attempt >= 2 {
		// §4.4: regenerate access paths whose endpoints have been walled
		// in by other nets' wiring since reservation time. Restricted
		// workers only do this when the regeneration provably stays in
		// their region (a geometry-only rule, identical for every worker
		// count).
		if !w.restricted || r.containedIn(w.region, r.netExtent(ni), r.victimMargin) {
			r.refreshAccess(ni)
		}
	}
	for iter := 0; iter < 4*len(r.Chip.Nets[ni].Pins); iter++ {
		comps := r.components(ni)
		if len(comps) <= 1 {
			rt.routed = true
			r.patchNotches(ni)
			r.recomputeLength(ni)
			return true
		}
		if !r.connectOnce(w, ni, comps, ripupBudget) {
			rt.routed = false
			return false
		}
	}
	rt.routed = false
	return false
}

// patchNotches is the §4.4 same-net postprocessing where on-track and
// off-track paths meet: slots narrower than the notch spacing between the
// net's own shapes are filled with patch metal where that is legal. The
// queries and fills reach at most 4·pitch beyond the net's own shapes,
// which the region clamp margins account for.
func (r *Router) patchNotches(ni int) {
	net := int32(ni)
	rt := &r.routes[ni]

	var bbox geom.Rect
	for _, s := range rt.segments {
		bbox = bbox.Union(geom.R(s.A.X, s.A.Y, s.B.X, s.B.Y))
	}
	for _, ap := range rt.access {
		if !ap.Valid() {
			continue
		}
		for i := 0; i < ap.NumPoints(); i++ {
			p := ap.Point(i)
			bbox = bbox.Union(geom.Rect{XMin: p.X, YMin: p.Y, XMax: p.X + 1, YMax: p.Y + 1})
		}
	}
	if bbox.Empty() {
		return
	}
	bbox = bbox.Expanded(4 * r.Chip.Deck.Layers[0].Pitch)

	for z := range r.Space.Wiring {
		ns := r.Chip.Deck.Layers[z].NotchSpacing
		var own []shapegrid.Shape
		r.Space.Wiring[z].Query(bbox, func(sh shapegrid.Shape) bool {
			if sh.Net == net {
				own = append(own, sh)
			}
			return true
		})
		rects := make([]geom.Rect, len(own))
		for i := range own {
			rects[i] = own[i].Rect
		}
		for i := range own {
			for j := i + 1; j < len(own); j++ {
				gap2 := own[i].Rect.Dist2Sq(own[j].Rect)
				if gap2 == 0 || gap2 >= int64(ns)*int64(ns) {
					continue
				}
				box := drc.GapBox(own[i].Rect, own[j].Rect)
				if box.Empty() {
					continue
				}
				for _, piece := range geom.SubtractRects(box, rects) {
					if r.Space.RectNeed(z, piece, rules.ClassStandard, net) != 0 {
						continue
					}
					sh := shapegrid.Shape{
						Rect: piece, Net: net,
						Class: rules.ClassStandard,
						Ripup: r.ripupLevelOf(ni),
						Kind:  shapegrid.KindWire,
					}
					r.Space.AddShape(z, sh)
					r.FG.OnShapeAdded(z, sh)
					rt.patches = append(rt.patches, patchRec{z: z, sh: sh})
					rects = append(rects, piece)
				}
			}
		}
	}
}

// connectOnce connects the first component of the net to any other.
func (r *Router) connectOnce(w *worker, ni int, comps []component, ripupBudget int) bool {
	src := comps[0]
	var T []geom.Point3
	compOf := map[geom.Point3]int{}
	for ci := 1; ci < len(comps); ci++ {
		for _, p := range comps[ci].points {
			T = append(T, p)
			compOf[p] = ci
		}
	}
	S := src.points
	area := r.routeArea(w, ni, S, T)
	pi := r.futureCost(w.e, ni, T, area)

	var path *pathsearch.Path
	if r.opt.NodeSearch {
		path = w.e.NodeSearch(r.searchConfig(ni, area, pi, 0, nil), S, T)
	} else {
		path = w.e.Search(r.searchConfig(ni, area, pi, 0, nil), S, T)
	}

	// Rip-up uses the interval engine in both flows (the baseline's
	// negotiation-style rip-up shares this machinery).
	if path == nil && ripupBudget > 0 {
		// Rip-up mode (§4.2/§4.4): allow standard-level victims at a
		// penalty that grows with this net's attempts.
		rt := &r.routes[ni]
		penaltyBase := (1 + rt.attempt) * 20 * r.Chip.Deck.Layers[0].Pitch
		path = w.e.Search(r.searchConfig(ni, area, pi,
			shapegrid.RipupStandard+1,
			func(need drc.Need) int { return penaltyBase * int(need) }), S, T)
		if path != nil {
			if !r.commitWithRipup(w, ni, path, ripupBudget) {
				return false
			}
			return true
		}
	}
	if path == nil {
		return false
	}
	r.commitPath(ni, path)
	return true
}

// futureCost builds the search potential π toward T under the router's
// FutureMode (DESIGN.md §12): the legacy π_H / π_P selection by default,
// the reduced-graph π_R always under FutureReduced, or per net under
// FutureAuto. π_H and π_R come from the engine's future-cost caches,
// which reuse the previous structure when the same net retries with
// unchanged targets (rip-up attempts, ECO re-queries) and memoize via
// lower bounds across nets sharing target layers.
func (r *Router) futureCost(e *pathsearch.Engine, ni int, T []geom.Point3, area *pathsearch.Area) pathsearch.FutureCost {
	if r.opt.UsePFuture {
		targets := map[int][]geom.Rect{}
		for _, t := range T {
			targets[t.Z] = append(targets[t.Z], geom.Rect{XMin: t.X, YMin: t.Y, XMax: t.X + 1, YMax: t.Y + 1})
		}
		bounds := area.Bounds()
		obst := r.blockedCells()
		return pathsearch.NewPFuture(r.Chip.NumLayers(), r.costs, targets, bounds,
			pathsearch.PFutureConfig{
				Cell: 8 * r.Chip.Deck.Layers[0].Pitch,
				Blocked: func(z int, cell geom.Rect) bool {
					for _, o := range obst[z] {
						if o.ContainsRect(cell) {
							return true
						}
					}
					return false
				},
			})
	}
	if r.opt.NodeSearch {
		// The node search stops at the first settled target, which is
		// only optimal under an exactly feasible π — keep it on π_H
		// regardless of FutureMode (the coarse-grid bounds trade bounded
		// local infeasibility for strength, which only the
		// label-correcting interval search absorbs).
		return e.HFutureFor(int32(ni), r.Chip.NumLayers(), r.costs, T)
	}
	switch r.opt.FutureMode {
	case FutureReduced:
		// Forced mode: the finest grid (pitch/2 cells resolve the power
		// rails and stripes) for the strongest bound regardless of build
		// cost — the search-effort benchmark configuration.
		return r.reducedFuture(e, ni, T, area, r.Chip.Deck.Layers[0].Pitch/2)
	case FutureAuto:
		if wantReducedFuture(T, r.Chip.Deck.Layers[0].Pitch, r.routes[ni].attempt) {
			// Selected mode: pitch cells — a quarter of the build cost —
			// because here π_R must win on wall time, not just on pops.
			return r.reducedFuture(e, ni, T, area, r.Chip.Deck.Layers[0].Pitch)
		}
	}
	return e.HFutureFor(int32(ni), r.Chip.NumLayers(), r.costs, T)
}

// wantReducedFuture is the FutureAuto selection heuristic: π_R pays for
// its construction on late retries (attempt ≥ 3 means the net failed
// repeatedly, its corridor is dropped, and it now searches a large,
// penalized, rip-up-heavy area — exactly where π_H's blindness to jog
// weights and blockages costs the most pops), on high-degree
// connections, and on target spans wide enough that the stronger bound
// trims a large ellipse. First-attempt small nets keep the free π_H.
// Depends only on net geometry and the net's own attempt counter
// (deterministic replay state), so the choice is worker-count
// independent.
func wantReducedFuture(T []geom.Point3, pitch, attempt int) bool {
	if len(T) == 0 {
		return false
	}
	if attempt >= 3 {
		return true
	}
	if attempt < 2 {
		// First attempts always take the free π_H: most nets route in one
		// try and a π_R build would be pure overhead for them.
		return false
	}
	if len(T) >= 8 {
		return true
	}
	bb := geom.Rect{XMin: T[0].X, YMin: T[0].Y, XMax: T[0].X, YMax: T[0].Y}
	for _, t := range T[1:] {
		bb.XMin = min(bb.XMin, t.X)
		bb.YMin = min(bb.YMin, t.Y)
		bb.XMax = max(bb.XMax, t.X)
		bb.YMax = max(bb.YMax, t.Y)
	}
	return bb.W()+bb.H() >= 64*pitch
}

// reducedFuture builds (or fetches from the engine cache) π_R over the
// search area at the given cell size. The blockage model is the chip's
// static obstacle set — never committed wiring — so a cached π_R is a
// pure function of (targets, bounds, costs, layer directions) and reuse
// is bit-identical to a rebuild.
func (r *Router) reducedFuture(e *pathsearch.Engine, ni int, T []geom.Point3, area *pathsearch.Area, cell int) pathsearch.FutureCost {
	obst := r.staticObst
	return e.RFutureFor(int32(ni), r.Chip.NumLayers(), r.costs, r.layerDirs, T,
		area.Bounds(), cell,
		func(z int, cellRect geom.Rect) bool {
			for _, o := range obst[z] {
				if o.ContainsRect(cellRect) {
					return true
				}
			}
			return false
		})
}

func (r *Router) blockedCells() [][]geom.Rect {
	return r.staticObst
}

// commitPath inserts a found path into the routing space. The striped
// shape grid and fast grid take their own per-stripe locks; callers on
// restricted workers guarantee the path lies inside their clamp.
func (r *Router) commitPath(ni int, path *pathsearch.Path) {
	rt := &r.routes[ni]
	wt := r.wireTypeOf(ni)
	level := r.ripupLevelOf(ni)
	net := int32(ni)
	pts := path.Points
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.Z == b.Z {
			seg := r.postprocessSegment(ni, Segment{Z: a.Z, A: a.XY(), B: b.XY()})
			sh := r.Space.AddWire(seg.Z, seg.A, seg.B, wt, net, level)
			r.FG.OnShapeAdded(seg.Z, sh)
			rt.segments = append(rt.segments, seg)
		} else {
			lo, hi := a.Z, b.Z
			if lo > hi {
				lo, hi = hi, lo
			}
			for v := lo; v < hi; v++ {
				bot, top, cut, proj := r.Space.ViaShapes(v, a.XY(), wt, net, level)
				r.Space.AddVia(v, a.XY(), wt, net, level)
				r.FG.OnShapeAdded(v, bot)
				r.FG.OnShapeAdded(v+1, top)
				r.FG.OnCutAdded(v, cut)
				if proj != nil {
					r.FG.OnCutAdded(v+1, *proj)
				}
				rt.vias = append(rt.vias, ViaRec{V: v, At: a.XY()})
			}
		}
	}
}

// postprocessSegment applies the §4.4 same-net cleanup: segments shorter
// than the minimum segment length are stretched symmetrically — but only
// when the grown metal stays legal (growth must never introduce diff-net
// violations; a residual same-net error is preferable, per §5.2's
// priority ordering).
func (r *Router) postprocessSegment(ni int, s Segment) Segment {
	lr := &r.Chip.Deck.Layers[s.Z]
	length := s.A.Dist1(s.B)
	if length >= lr.MinSegLen || length == 0 {
		return s
	}
	grow := (lr.MinSegLen - length + 1) / 2
	g := s
	if g.A.X == g.B.X {
		if g.A.Y < g.B.Y {
			g.A.Y -= grow
			g.B.Y += grow
		} else {
			g.A.Y += grow
			g.B.Y -= grow
		}
	} else {
		if g.A.X < g.B.X {
			g.A.X -= grow
			g.B.X += grow
		} else {
			g.A.X += grow
			g.B.X -= grow
		}
	}
	if r.Space.SegmentNeed(g.Z, g.A, g.B, r.wireTypeOf(ni), int32(ni)) != 0 {
		return s
	}
	return g
}

// commitWithRipup removes the victim nets blocking the path, commits the
// path, and re-routes the victims (bounded recursion, §4.4). A restricted
// worker only proceeds when every victim is wholly contained in its
// region (§5.1: "only changes that do not affect regions assigned to
// other threads"); cross-strip victims defer the net to a later, wider
// round.
func (r *Router) commitWithRipup(w *worker, ni int, path *pathsearch.Path, budget int) bool {
	wt := r.wireTypeOf(ni)
	net := int32(ni)

	// Victims: nets whose removable shapes conflict with the path metal.
	victims := map[int]bool{}
	pts := path.Points
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.Z != b.Z {
			// Via stack: pads on every traversed layer can conflict.
			lo, hi := a.Z, b.Z
			if lo > hi {
				lo, hi = hi, lo
			}
			for v := lo; v < hi; v++ {
				m := wt.Via(v, r.Chip.Dir(v))
				for _, rect := range []geom.Rect{m.Bot.Translated(a.XY()), m.Top.Translated(a.XY())} {
					z := v
					cl := m.BotClass
					if rect == m.Top.Translated(a.XY()) {
						z, cl = v+1, m.TopClass
					}
					for _, vn := range r.Space.BlockerNets(z, rect, cl, net, shapegrid.RipupStandard) {
						victims[int(vn)] = true
					}
				}
			}
			continue
		}
		layer := &r.TG.Layers[a.Z]
		dir := geom.Horizontal
		if a.X == b.X && a.Y != b.Y {
			dir = geom.Vertical
		}
		m := wt.Oriented(a.Z, dir, layer.Dir)
		rect := m.Metal(a.XY(), b.XY())
		for _, v := range r.Space.BlockerNets(a.Z, rect, m.Class, net, shapegrid.RipupStandard) {
			victims[int(v)] = true
		}
	}

	if len(victims) > budget {
		return false
	}
	if w.restricted {
		// Region ownership: a victim whose extent (plus margin) lies in
		// the owned region cannot simultaneously be assigned to another
		// strip — its pins are here — so ripping and re-routing it in
		// place is safe. Any victim that fails the test aborts the whole
		// rip-up (all-or-nothing keeps the check order-independent).
		for v := range victims {
			if !r.containedIn(w.region, r.netExtent(v), r.victimMargin) {
				return false
			}
		}
	}
	// Victim order determines the re-route sequence, which feeds back into
	// routing results — sort so rip-up is deterministic, not map-ordered.
	order := make([]int, 0, len(victims))
	for v := range victims {
		order = append(order, v)
	}
	sort.Ints(order)
	atomic.AddInt64(&r.ripups, int64(len(order)))
	for _, v := range order {
		r.unrouteNet(v)
	}
	r.commitPath(ni, path)

	// Re-route victims with a reduced budget.
	for _, v := range order {
		r.routeNetWith(w, v, budget-len(victims))
	}
	return true
}

// unrouteNet removes all committed wiring of a net (reservations stay).
// On restricted workers the caller has checked victim containment, so
// the removals and their fast-grid invalidations stay in the region.
func (r *Router) unrouteNet(ni int) {
	rt := &r.routes[ni]
	wt := r.wireTypeOf(ni)
	level := r.ripupLevelOf(ni)
	net := int32(ni)
	for _, s := range rt.segments {
		if r.Space.RemoveWire(s.Z, s.A, s.B, wt, net, level) {
			m := wt.Oriented(s.Z, segDir(s), r.Chip.Dir(s.Z))
			r.FG.OnWiringChange(s.Z, m.Metal(s.A, s.B))
		}
	}
	for _, v := range rt.vias {
		if r.Space.RemoveVia(v.V, v.At, wt, net, level) {
			pad := wt.Via(v.V, r.Chip.Dir(v.V))
			dirty := pad.Bot.Union(pad.Top).Translated(v.At)
			r.FG.OnWiringChange(v.V, dirty)
			r.FG.OnWiringChange(v.V+1, dirty)
			r.FG.OnCutChange(v.V, dirty)
			// An inter-layer via rule registers the cut a second time as
			// a projection in cut plane v+1 (removed by RemoveVia), so
			// that plane's caches go stale too — the commit path
			// invalidates it via OnCutAdded(v+1, proj).
			if pad.HasProjection {
				r.FG.OnCutChange(v.V+1, dirty)
			}
		}
	}
	// Notch patches belong to the ripped-up wiring: leaving them behind
	// would leak net metal into the space (phantom shapes that block
	// other nets and corrupt the audit).
	for _, p := range rt.patches {
		if r.Space.RemoveShape(p.z, p.sh) {
			r.FG.OnWiringChange(p.z, p.sh.Rect)
		}
	}
	rt.segments = nil
	rt.vias = nil
	rt.patches = nil
	rt.routed = false
	rt.length = 0
}

func segDir(s Segment) geom.Direction {
	if s.A.X == s.B.X && s.A.Y != s.B.Y {
		return geom.Vertical
	}
	return geom.Horizontal
}

// recomputeLength refreshes the net's length tally: committed segments
// plus access paths.
func (r *Router) recomputeLength(ni int) {
	rt := &r.routes[ni]
	var total int64
	for _, s := range rt.segments {
		total += int64(s.A.Dist1(s.B))
	}
	for _, ap := range rt.access {
		if ap.Valid() {
			total += int64(ap.Length())
		}
	}
	rt.length = total
}
