// Package detail implements BonnRoute's detailed routing (paper §4):
// the per-net connection procedure of §4.4 — source/target construction
// from net components, corridor restriction from global routing,
// on-track interval path search combined with precomputed off-track pin
// access, same-net postprocessing, and rip-up sequences — plus the
// region-partitioned parallelism of §5.1.
package detail

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bonnroute/internal/blockgrid"
	"bonnroute/internal/chip"
	"bonnroute/internal/drc"
	"bonnroute/internal/fastgrid"
	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
	"bonnroute/internal/pathsearch"
	"bonnroute/internal/pinaccess"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
	"bonnroute/internal/tracks"
)

// FutureMode selects which future-cost (π) family drives the interval
// search (the hierarchy of DESIGN.md §12).
type FutureMode int

const (
	// FutureDefault keeps the legacy selection: π_H everywhere, or π_P
	// for every connection when Options.UsePFuture is set. Existing
	// flows stay bit-identical under this mode.
	FutureDefault FutureMode = iota
	// FutureAuto picks π per net: the reduced-graph π_R for connections
	// whose target degree or bounding box makes the stronger bound pay
	// for its construction, π_H for the rest. The choice depends only on
	// net geometry, never on worker count or timing.
	FutureAuto
	// FutureReduced always uses the reduced-graph π_R.
	FutureReduced
)

// Options tune the detailed router.
type Options struct {
	// BetaJog and GammaVia are the edge cost parameters of §4.1.
	// Defaults: 3 and 4 pitches.
	BetaJog, GammaVia int
	// Workers enables region-partitioned parallel routing (§5.1); ≤ 1 is
	// serial.
	Workers int
	// MaxRipupDepth bounds rip-up recursion (§4.4). Default 2.
	MaxRipupDepth int
	// CorridorMarginTiles widens the global-routing corridor (§4.4).
	// Default 1.
	CorridorMarginTiles int
	// AccessRadius is the pin-access search radius in pitches. Default 4.
	AccessRadius int
	// UsePFuture switches long-detour connections to the blockage-aware
	// future cost π_P (§4.1).
	UsePFuture bool
	// FutureMode selects the future-cost family for interval searches
	// (DESIGN.md §12). FutureDefault keeps the legacy behavior (π_H, or
	// π_P under UsePFuture) bit-identical; FutureAuto picks the reduced-
	// graph π_R per net by degree/bbox heuristics; FutureReduced always
	// uses π_R. UsePFuture takes precedence when set.
	FutureMode FutureMode
	// SpreadCost is the optional wire-spreading hook (§4.2).
	SpreadCost func(z, trackIdx, lo, hi int) int
	// AccessCache seeds catalogue construction from a previous router's
	// circuit-class catalogues (incremental rerouting). Every cached path
	// is re-verified before reservation, so a cache from a different chip
	// state degrades gracefully to a rebuild, never to a bad reservation.
	AccessCache *AccessCache
	// TrackGraph reuses an existing track graph instead of optimizing
	// track positions for this chip (incremental rerouting: a small delta
	// does not justify re-optimizing tracks, and replayed wiring stays
	// on-track by construction). The graph must cover the same area and
	// layer directions; legality around delta geometry is still enforced
	// by the routing space, never by track positions.
	TrackGraph *tracks.Graph
	// AccessHints proposes a specific access path per global pin index
	// (incremental rerouting: the path the previous run reserved for the
	// surviving pin). A hint is used only after passing the same
	// verification as a catalogue path — on-vertex endpoint, clean
	// against the space, feasible continuation — so a stale hint falls
	// back to the catalogue, never into the space.
	AccessHints func(pi int) *pinaccess.AccessPath

	// Baseline/ablation knobs. The ISR-like comparison router of §5.3 is
	// this engine with the classical choices switched on:
	// NodeSearch labels vertices individually instead of intervals;
	// NoFastGrid answers every legality query from the rule checker;
	// UniformTracks skips track optimization; GreedyAccess picks each
	// pin's first candidate instead of the conflict-free selection.
	NodeSearch    bool
	NoFastGrid    bool
	UniformTracks bool
	GreedyAccess  bool
}

func (o *Options) setDefaults(pitch int) {
	if o.BetaJog <= 0 {
		o.BetaJog = 2
	}
	if o.GammaVia <= 0 {
		o.GammaVia = 4 * pitch
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxRipupDepth <= 0 {
		o.MaxRipupDepth = 2
	}
	if o.CorridorMarginTiles <= 0 {
		o.CorridorMarginTiles = 1
	}
	if o.AccessRadius <= 0 {
		o.AccessRadius = 4
	}
}

// Segment is one stick of routed wiring on a layer.
type Segment struct {
	Z    int
	A, B geom.Point
}

// ViaRec is a placed via between wiring layers V and V+1.
type ViaRec struct {
	V  int
	At geom.Point
}

// netRoute is the mutable routing state of one net.
type netRoute struct {
	routed   bool
	attempt  int
	segments []Segment
	vias     []ViaRec
	// access[k] is the reserved/used access path of the net's k-th pin
	// (invalid entries: pin has no off-track access and connects
	// directly). Refs share the catalogue's prototype-frame paths across
	// cell instances instead of holding per-pin translated copies.
	access []pinaccess.Ref
	// patches are same-net notch fills added by postprocessing (§4.4).
	patches []patchRec
	length  int64
}

type patchRec struct {
	z  int
	sh shapegrid.Shape
}

// Result summarizes a detailed routing run.
type Result struct {
	Routed, Failed int
	RipupEvents    int
	PerNet         []NetStats
	// Rounds is how many routing rounds ran (critical prepass, parallel
	// strip rounds, serial rounds, retries).
	Rounds int
	// RoundDetails describes each round: kind, strip count, failures,
	// per-strip task times, and the path-search effort attributed to the
	// round (engines are drained at task boundaries, so the effort of a
	// round's workers lands in that round's tally, not a later one's).
	RoundDetails []RoundStats
	// SearchStats is the total path-search effort of the run.
	SearchStats pathsearch.Stats
	// Cancelled reports that the run's context was cancelled mid-flow;
	// PerNet covers whatever had been committed by then.
	Cancelled bool
}

// AccessStats summarizes pin-access provisioning (§4.3): catalogue
// construction, branch-and-bound selection effort, and how many pins got
// reserved catalogue paths versus dynamically generated stubs.
type AccessStats struct {
	// Catalogues is the number of circuit classes built.
	Catalogues int
	// BBNodes sums branch-and-bound search nodes over all catalogues.
	BBNodes int
	// Reserved counts pins connected through reserved catalogue paths.
	Reserved int
	// Dynamic counts pins that needed dynamically generated access stubs.
	Dynamic int
	// CataloguesReused counts circuit classes taken from a previous
	// router's cache (Options.AccessCache) instead of being rebuilt.
	CataloguesReused int
	// Hinted counts pins reserved through a still-valid Options.
	// AccessHints path (incremental rerouting reuse).
	Hinted int
	// CatalogueTime is the wall time spent building catalogues.
	CatalogueTime time.Duration
}

// NetStats reports one net's routed geometry.
type NetStats struct {
	Routed bool
	Length int64
	Vias   int
}

// Router is the detailed router.
//
// Concurrency model: there is no global routing-space lock. The shape
// grid and fast grid are striped internally (per-stripe mutexes, reads
// against atomically published snapshots), so legality queries on the
// search hot path never block. Route's parallel strip rounds give each
// worker goroutine a region whose reads and writes — including rip-up —
// are provably confined to that region (see worker and the interaction
// margins below), so any interleaving produces the serial-strip-order
// result. Serial entry points (RouteNet, Unroute outside Route) are not
// themselves synchronized against each other; callers run them from one
// goroutine, as before.
type Router struct {
	Chip  *chip.Chip
	Space *drc.Space
	TG    *tracks.Graph
	FG    *fastgrid.Grid
	opt   Options

	costs  pathsearch.Costs
	routes []netRoute

	// layerDirs and staticObst cache the per-layer preferred directions
	// and the chip's fixed obstacle rects for reduced-graph future-cost
	// construction. Both are static for the router's lifetime (committed
	// wiring is never part of π), which is what makes cached π_R reuse
	// exact without mid-run invalidation.
	layerDirs  []geom.Direction
	staticObst [][]geom.Rect

	// corridors[ni] holds the net's global routing tree edges (nil: no
	// global guidance).
	corridors [][]int32
	ggraph    *grid.Graph

	// interact bounds how far a committed or removed shape's
	// data-structure effects reach (fast-grid dirty margins over all
	// wiring and via layers, plus a track gap of jog-field reach). Two
	// operations whose rectangles stay interact apart touch disjoint
	// interval-map state.
	interact int
	// clampMargin shrinks a worker's owned strip to its search clamp: a
	// path committed inside the clamp, with metal overhang and patch
	// fills, dirties fast-grid state that stays inside the strip.
	clampMargin int
	// victimMargin is the containment margin for in-strip rip-up: a
	// victim whose extent expanded by this stays inside the owned region
	// can be ripped and re-routed without escaping it (covers search
	// clamping, patching, and dynamic access-stub regeneration).
	victimMargin int
	// assignMargin is the strip-assignment margin: a net whose pin bbox
	// expanded by this fits in one strip routes there with useful slack.
	assignMargin int

	// Path-search engines are pooled per router: each worker goroutine
	// checks one out for a whole round (reusing its arenas, queue, and
	// future-cost cache across nets) and folds its counters into
	// searchStats on return. The free list keeps engine count bounded by
	// peak concurrency, not by net count.
	engineMu    sync.Mutex
	engines     []*pathsearch.Engine
	searchStats pathsearch.Stats

	// forceSteal (tests only) makes scheduler pop `pop` of worker `wi`
	// bypass the worker's own LPT share and steal instead. Stealing
	// reassigns whole region tasks, which cannot change results — the
	// hook exists so equivalence tests can exercise stolen schedules
	// deliberately.
	forceSteal func(wi, pop int) bool

	// ripups counts victim nets ripped up during routing (atomic: rip-up
	// commits happen on worker goroutines).
	ripups int64
	// dynAccess counts dynamically generated access stubs (atomic:
	// access refresh runs on worker goroutines during rip-up retries).
	dynAccess int64

	// accessStats is filled during construction (prepareAccess).
	accessStats AccessStats
	// accessCache is this router's own catalogue set, exported through
	// AccessCache() for reuse by a later incremental run.
	accessCache *AccessCache
}

// AccessCache carries circuit-class access catalogues from one router to
// a successor (see Options.AccessCache).
type AccessCache struct {
	cats  map[string]*pinaccess.Catalogue
	cells map[string]int
}

// AccessCache returns this router's circuit-class catalogues for reuse
// by a later run on a chip sharing the same cell list.
func (r *Router) AccessCache() *AccessCache { return r.accessCache }

// AccessStats reports the pin-access provisioning statistics gathered
// during construction and routing.
func (r *Router) AccessStats() AccessStats {
	st := r.accessStats
	st.Dynamic = int(atomic.LoadInt64(&r.dynAccess))
	return st
}

// RipupCount returns the number of victim nets ripped up so far.
func (r *Router) RipupCount() int64 { return atomic.LoadInt64(&r.ripups) }

// acquireEngine checks a path-search engine out of the router's free list
// (allocating on first use). Pair with releaseEngine.
func (r *Router) acquireEngine() *pathsearch.Engine {
	r.engineMu.Lock()
	defer r.engineMu.Unlock()
	if n := len(r.engines); n > 0 {
		e := r.engines[n-1]
		r.engines = r.engines[:n-1]
		return e
	}
	return pathsearch.NewEngine()
}

// releaseEngine returns an engine to the free list, merging its search
// counters into the router-wide tally. This explicit merge point is the
// only place search stats cross goroutines, so the counters need no
// atomics.
func (r *Router) releaseEngine(e *pathsearch.Engine) {
	r.engineMu.Lock()
	r.searchStats.Add(e.TakeStats())
	r.engines = append(r.engines, e)
	r.engineMu.Unlock()
}

// foldStats merges an already-drained per-engine tally into the
// router-wide total (Route drains engines at round boundaries so each
// round's effort is attributed to the round that did the work).
func (r *Router) foldStats(d pathsearch.Stats) {
	r.engineMu.Lock()
	r.searchStats.Add(d)
	r.engineMu.Unlock()
}

// SearchStats returns the accumulated path-search effort (labels, heap
// pops, materialized intervals, π reuses) over all completed RouteNet
// calls.
func (r *Router) SearchStats() pathsearch.Stats {
	r.engineMu.Lock()
	defer r.engineMu.Unlock()
	return r.searchStats
}

// buildTracks runs §3.5 track optimization (or uniform-pitch placement
// for the classical baseline) and assembles the track graph.
func buildTracks(c *chip.Chip, opt *Options, dirs []geom.Direction, obstacles [][]geom.Rect) *tracks.Graph {
	coords := make([][]int, c.NumLayers())
	for z := 0; z < c.NumLayers(); z++ {
		lr := c.Deck.Layers[z]
		span := c.Area.Span(c.Dir(z).Perp())
		if opt.UniformTracks {
			for t := span.Lo + lr.Pitch/2; t < span.Hi; t += lr.Pitch {
				coords[z] = append(coords[z], t)
			}
			continue
		}
		clear := lr.MinWidth/2 + lr.Spacing[0].Spacing
		usable := tracks.UsableAreas(c.Area, obstacles[z], clear)
		// §3.5: pin alignment — bonus rectangles modelling track positions
		// that give on-track pin access pull tracks onto pin rows.
		var bonus []geom.Rect
		w := 6 * lr.Pitch
		for pi := range c.Pins {
			for _, ps := range c.Pins[pi].Shapes {
				if ps.Layer != z {
					continue
				}
				ctr := ps.Rect.Center()
				if c.Dir(z) == geom.Horizontal {
					bonus = append(bonus, geom.Rect{XMin: ctr.X - w/2, YMin: ctr.Y, XMax: ctr.X + w/2, YMax: ctr.Y + 1})
				} else {
					bonus = append(bonus, geom.Rect{XMin: ctr.X, YMin: ctr.Y - w/2, XMax: ctr.X + 1, YMax: ctr.Y + w/2})
				}
			}
		}
		coords[z], _ = tracks.OptimizeWithBonus(usable, bonus, c.Dir(z), lr.Pitch, span)
	}
	return tracks.BuildGraph(c.Area, dirs, coords)
}

// New builds the routing space, tracks, fast grid, and pin-access
// reservations for the chip.
func New(c *chip.Chip, opt Options) *Router {
	pitch := c.Deck.Layers[0].Pitch
	opt.setDefaults(pitch)

	dirs := make([]geom.Direction, c.NumLayers())
	for z := range dirs {
		dirs[z] = c.Dir(z)
	}
	space := drc.NewSpace(c.Deck, c.Area, dirs)

	// Fixed geometry: blockages and pins.
	obstacles := make([][]geom.Rect, c.NumLayers())
	for _, o := range c.AllObstacles() {
		space.AddObstacle(o.Layer, o.Rect)
		obstacles[o.Layer] = append(obstacles[o.Layer], o.Rect)
	}
	for pi := range c.Pins {
		p := &c.Pins[pi]
		for _, s := range p.Shapes {
			space.AddPin(s.Layer, int32(p.Net), s.Rect)
		}
	}

	// Routing tracks (§3.5): optimize per layer over the usable areas,
	// or uniform-pitch tracks for the classical baseline. A caller-
	// provided graph (incremental rerouting) skips optimization entirely.
	tg := opt.TrackGraph
	if tg == nil {
		tg = buildTracks(c, &opt, dirs, obstacles)
	}

	fg := fastgrid.New(space, tg, c.WireTypes)

	r := &Router{
		Chip: c, Space: space, TG: tg, FG: fg, opt: opt,
		costs:      pathsearch.UniformCosts(c.NumLayers(), opt.BetaJog, opt.GammaVia),
		routes:     make([]netRoute, len(c.Nets)),
		layerDirs:  dirs,
		staticObst: obstacles,
	}
	// Interaction margins for region-partitioned parallelism (§5.1),
	// derived from the deck so that a worker confined to its strip
	// provably keeps all data-structure effects inside it. maxDirty is
	// the widest fast-grid invalidation any shape change can cause
	// (wiring sweeps use MaxSpacing(z)+4·pitch, cut sweeps the via-rule
	// analogue); one extra track gap covers the jog-field reach onto the
	// track below a dirty window.
	maxDirty, maxPitch, maxTau := 0, 0, 0
	for z := 0; z < c.NumLayers(); z++ {
		lr := &c.Deck.Layers[z]
		maxPitch = max(maxPitch, lr.Pitch)
		maxTau = max(maxTau, lr.MinSegLen)
		maxDirty = max(maxDirty, c.Deck.MaxSpacing(z)+4*lr.Pitch)
	}
	for v := range c.Deck.ViaLayers {
		vr := &c.Deck.ViaLayers[v]
		maxDirty = max(maxDirty, max(vr.CutSpacing, vr.InterLayerSpacing)+4*c.Deck.Layers[v].Pitch)
	}
	r.interact = maxDirty + maxPitch
	// Committed metal overhangs path points by at most a couple of
	// pitches (wide-wire half-width, line-end extension, min-segment
	// stretching, via pads); notch patching reaches 4·pitch beyond the
	// net's shapes.
	r.clampMargin = r.interact + 2*maxPitch + 4*pitch
	// A ripped victim is re-routed in place, which may regenerate access
	// stubs around its pins (candidate endpoints within 5 pitches, a
	// blockage-grid window of 6·τ) before searching inside the clamp.
	r.victimMargin = r.clampMargin + 5*pitch + 6*maxTau + r.interact
	// Assigned nets get their attempt-1 search box (bbox + 16·pitch)
	// inside the clamp, with slack for corridor tiles.
	r.assignMargin = r.clampMargin + 18*pitch
	for ni := range r.routes {
		r.routes[ni].access = make([]pinaccess.Ref, len(c.Nets[ni].Pins))
	}
	r.prepareAccess()
	// Pins without a catalogue path get a dynamically generated access
	// path (§4.4: "we dynamically generate new access paths") so every
	// pin is physically connected to its on-track attachment point.
	for ni := range r.routes {
		for k := range r.routes[ni].access {
			if !r.routes[ni].access[k].Valid() {
				r.dynamicAccess(ni, k)
			}
		}
	}
	return r
}

// dynamicAccess synthesizes and reserves an access path from pin slot k
// of net ni to its nearest on-track vertex: τ-feasible via the blockage
// grid when possible, an L-stub as last resort.
func (r *Router) dynamicAccess(ni, k int) {
	n := &r.Chip.Nets[ni]
	p := &r.Chip.Pins[n.Pins[k]]
	s := p.Shapes[0]
	z := s.Layer
	ctr := s.Rect.Center()
	att := r.pinAttachment(ni, k) // access[k] is nil → nearest-vertex fallback
	end := att.XY()
	// Candidate endpoints: nearby vertices from which an on-track wire
	// can actually start (§4.3's continuation criterion).
	pitch := r.Chip.Deck.Layers[0].Pitch
	var ends []geom.Point
	for _, cand := range r.vertexCandidatesNear(z, ctr, 5*pitch) {
		if r.continuationOK(z, cand, int32(ni)) {
			ends = append(ends, cand)
			if len(ends) == 8 {
				break
			}
		}
	}
	if len(ends) == 0 {
		ends = []geom.Point{end}
	}
	end = ends[0]
	tau := r.Chip.Deck.Layers[z].MinSegLen

	// Obstacles for the τ-feasible stub search: nearby fixed geometry of
	// other nets, inflated by half-width plus spacing.
	wt0 := r.Chip.WireTypes[0]
	// Clearance covers the worst-case metal extent around the stick:
	// half-width plus spacing, plus the pessimistic line-end extension
	// (stub segments are preferred-direction wires whose metal overhangs
	// the stick ends).
	lr0 := &r.Chip.Deck.Layers[z]
	infl := lr0.MinWidth/2 + lr0.Spacing[0].Spacing + lr0.LineEndSpacing
	win := geom.R(ctr.X, ctr.Y, end.X, end.Y).Expanded(6 * tau)
	// Obstacles are inflated by half-width plus spacing; but clearance
	// zones that contain the pin center or a candidate endpoint shrink
	// to the raw metal — a stub starting inside a clearance region can
	// only respect the metal itself (pin vicinities are exempt from
	// spacing in exactly this way in production routers).
	var rawObst []shapegrid.Shape
	r.Space.Wiring[z].Query(win, func(sh shapegrid.Shape) bool {
		if sh.Net != int32(ni) {
			rawObst = append(rawObst, sh)
		}
		return true
	})
	// relax=false keeps the full clearance except in a tiny exit window
	// around each kept point; relax=true shrinks whole clearance zones
	// containing a kept point to the raw metal (last resort).
	obstaclesFor := func(relax bool, keep ...geom.Point) []geom.Rect {
		var windows []geom.Rect
		for _, p := range keep {
			windows = append(windows, geom.Rect{
				XMin: p.X - infl - 4, YMin: p.Y - infl - 4,
				XMax: p.X + infl + 4, YMax: p.Y + infl + 4,
			})
		}
		var out []geom.Rect
		for _, sh := range rawObst {
			inflated := sh.Rect.Expanded(infl)
			shrink := false
			for _, p := range keep {
				if inflated.ContainsClosed(p) {
					shrink = true
					break
				}
			}
			if !shrink {
				out = append(out, inflated)
				continue
			}
			hard := sh.Rect.Expanded(1)
			inside := false
			for _, p := range keep {
				if hard.ContainsClosed(p) {
					inside = true
					break
				}
			}
			if inside {
				continue // start on the metal itself: placement issue
			}
			if relax {
				out = append(out, sh.Rect)
			} else {
				out = append(out, sh.Rect)
				out = append(out, geom.SubtractRects(inflated, windows)...)
			}
		}
		return out
	}
	inFree := func(p geom.Point, obst []geom.Rect) bool {
		for _, o := range obst {
			if o.ContainsClosed(p) {
				return false
			}
		}
		return true
	}
	// verified checks a candidate stub against the rule checker — the
	// authoritative legality test (conflicts with the pin's own net are
	// exempt by construction of SegmentNeed).
	wtStd := r.Chip.WireTypes[0]
	verified := func(cand []geom.Point) bool {
		for i := 1; i < len(cand); i++ {
			if cand[i-1] == cand[i] {
				continue
			}
			if r.Space.SegmentNeed(z, cand[i-1], cand[i], wtStd, int32(ni)) != 0 {
				return false
			}
		}
		return true
	}

	var pts []geom.Point
	if ctr == end {
		pts = []geom.Point{ctr}
	}
	// Obstacle-aware τ-feasible search, trying alternate endpoints: first
	// with full clearance (plus pin exit windows), then with relaxed
	// clearance around the pin. The first rule-checker-verified stub
	// wins; an unverified one is kept only as last resort (the rare §5.2
	// exceptions).
	var fallback []geom.Point
	fallbackEnd := end
	if pts == nil {
	searchLoop:
		for _, relax := range []bool{false, true} {
			for _, e := range ends {
				obst := obstaclesFor(relax, ctr, e)
				if !inFree(ctr, obst) || !inFree(e, obst) {
					continue
				}
				w := geom.R(ctr.X, ctr.Y, e.X, e.Y).Expanded(6 * tau).Intersection(r.Chip.Area)
				got, _, ok := blockgrid.Search(obst, ctr, e, tau, w)
				if !ok {
					continue
				}
				if verified(got) {
					pts = got
					end = e
					break searchLoop
				}
				if fallback == nil {
					fallback = got
					fallbackEnd = e
				}
			}
		}
	}
	if pts == nil && fallback != nil {
		pts = fallback
		end = fallbackEnd
	}
	if pts == nil {
		// Obstacle-blind fallback.
		if got, _, ok := blockgridSearch(ctr, end, tau, r.Chip.Area); ok {
			pts = got
		} else {
			pts = []geom.Point{ctr, geom.Pt(end.X, ctr.Y), end}
		}
	}
	_ = wt0
	length := 0
	for i := 1; i < len(pts); i++ {
		length += pts[i-1].Dist1(pts[i])
	}
	ap := &pinaccess.AccessPath{
		Pin: p.ProtoPin, Layer: z, Points: pts, End: end, Length: length,
	}
	wt := r.Chip.WireTypes[0]
	net := int32(ni)
	for i := 1; i < len(pts); i++ {
		if pts[i-1] == pts[i] {
			continue
		}
		sh := r.Space.AddWire(z, pts[i-1], pts[i], wt, net, shapegrid.RipupReserved)
		r.FG.OnShapeAdded(z, sh)
	}
	r.routes[ni].access[k] = pinaccess.Ref{Path: ap}
	atomic.AddInt64(&r.dynAccess, 1)
}

// SetGlobalCorridors supplies the global routing solution: per net, the
// tree edges in g. Passing nil for a net disables its corridor.
func (r *Router) SetGlobalCorridors(g *grid.Graph, trees [][]int32) {
	r.ggraph = g
	r.corridors = trees
}

// prepareAccess builds pin-access catalogues per circuit class (§4.3) and
// reserves the conflict-free primary paths in the routing space.
func (r *Router) prepareAccess() {
	c := r.Chip
	pitch := c.Deck.Layers[0].Pitch
	cats := map[string]*pinaccess.Catalogue{}
	catCell := map[string]int{}
	if ac := r.opt.AccessCache; ac != nil {
		// Seed from a previous router's catalogues (ECO reuse). Safe:
		// every catalogue path is re-verified against the current space
		// and track graph below before being reserved, so a stale path
		// only falls back to alternates or dynamic access.
		for key, cat := range ac.cats {
			cats[key] = cat
			catCell[key] = ac.cells[key]
			r.accessStats.CataloguesReused++
		}
	}
	catStart := time.Now()
	for ci := range c.Cells {
		key := pinaccess.ClassKey(c, ci, pitch)
		if _, ok := cats[key]; !ok {
			cat := pinaccess.BuildCatalogue(c, r.TG, ci, pinaccess.Params{
				Radius: r.opt.AccessRadius * pitch,
			})
			cats[key] = cat
			catCell[key] = ci
			r.accessStats.Catalogues++
			r.accessStats.BBNodes += cat.BBNodes
		}
	}
	r.accessStats.CatalogueTime = time.Since(catStart)
	r.accessCache = &AccessCache{cats: cats, cells: catCell}

	usableFor := func(net int32, a pinaccess.Ref) bool {
		end := a.End()
		return r.TG.IsVertex(geom.Pt3(end.X, end.Y, a.Layer())) &&
			r.accessClean(a, net) &&
			r.continuationOK(a.Layer(), end, net)
	}
	for pi := range c.Pins {
		p := &c.Pins[pi]
		if hint := r.opt.AccessHints; hint != nil {
			if ap := hint(pi); ap != nil && usableFor(int32(p.Net), pinaccess.Ref{Path: ap}) {
				cp := *ap
				r.reserveAccess(pi, pinaccess.Ref{Path: &cp})
				r.accessStats.Hinted++
				continue
			}
		}
		if p.Cell < 0 {
			continue
		}
		key := pinaccess.ClassKey(c, p.Cell, pitch)
		cat := cats[key]
		chosen := -1
		if cat != nil && p.ProtoPin < len(cat.Chosen) {
			chosen = cat.Chosen[p.ProtoPin]
			if r.opt.GreedyAccess && len(cat.PerPin[p.ProtoPin]) > 0 {
				chosen = 0 // the greedy trap of Fig. 7
			}
		}
		if chosen < 0 {
			continue
		}
		off := c.Cells[p.Cell].Origin.Sub(c.Cells[catCell[key]].Origin)
		ap := pinaccess.Ref{Path: &cat.PerPin[p.ProtoPin][chosen], Off: off}

		// Verify against current routing space (diff-net, §4.3), demand a
		// feasible on-track continuation at the endpoint, and try
		// alternates when either fails.
		// The translated endpoint must land on an actual track vertex:
		// optimized track coordinates are not translation-invariant, so
		// instances whose surroundings differ from the representative's
		// (the paper folds track coordinates into its equivalence
		// classes) fall back to alternates or dynamic access.
		usable := func(a pinaccess.Ref) bool { return usableFor(int32(p.Net), a) }
		if !usable(ap) {
			ok := false
			for ci := range cat.PerPin[p.ProtoPin] {
				alt := pinaccess.Ref{Path: &cat.PerPin[p.ProtoPin][ci], Off: off}
				if usable(alt) {
					ap = alt
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		r.reserveAccess(pi, ap)
	}
}

// accessClean checks an access path against the routing space for the
// given net.
func (r *Router) accessClean(ap pinaccess.Ref, net int32) bool {
	wt := r.Chip.WireTypes[0]
	z := ap.Layer()
	for i := 1; i < ap.NumPoints(); i++ {
		if r.Space.SegmentNeed(z, ap.Point(i-1), ap.Point(i), wt, net) != 0 {
			return false
		}
	}
	return true
}

// reserveAccess inserts the access path metal as a reservation.
func (r *Router) reserveAccess(pi int, ap pinaccess.Ref) {
	p := &r.Chip.Pins[pi]
	net := int32(p.Net)
	wt := r.Chip.WireTypes[0]
	z := ap.Layer()
	for i := 1; i < ap.NumPoints(); i++ {
		a, b := ap.Point(i-1), ap.Point(i)
		if a == b {
			// Degenerate zero-length stub pieces are never added —
			// matching dynamicAccess and refreshAccess, whose removal
			// loops skip them (an added-but-never-removed piece would
			// leak into the space).
			continue
		}
		sh := r.Space.AddWire(z, a, b, wt, net, shapegrid.RipupReserved)
		r.FG.OnShapeAdded(z, sh)
	}
	// Find this pin's slot within the net.
	n := &r.Chip.Nets[p.Net]
	for k, qi := range n.Pins {
		if qi == pi {
			r.routes[p.Net].access[k] = ap
			r.accessStats.Reserved++
			break
		}
	}
}

// continuationOK reports whether an on-track wire of the net's type can
// start at vertex pt of layer z — the §4.3 "feasible on-track
// continuation" criterion for access endpoints.
func (r *Router) continuationOK(z int, pt geom.Point, net int32) bool {
	wt := r.Chip.WireTypes[0]
	m := wt.Oriented(z, r.Chip.Dir(z), r.Chip.Dir(z))
	return r.Space.RectNeed(z, m.Shape.Translated(pt), m.Class, net) == 0
}

// vertexCandidatesNear lists track-graph vertices of layer z near pt,
// closest first.
func (r *Router) vertexCandidatesNear(z int, pt geom.Point, radius int) []geom.Point {
	l := &r.TG.Layers[z]
	var out []geom.Point
	ortho := pt.Coord(l.Dir.Perp())
	along := pt.Coord(l.Dir)
	for _, tc := range l.TracksRange(ortho-radius, ortho+radius) {
		for _, cc := range l.CrossRange(along-radius, along+radius) {
			if l.Dir == geom.Horizontal {
				out = append(out, geom.Pt(cc, tc))
			} else {
				out = append(out, geom.Pt(tc, cc))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return pt.Dist1(out[i]) < pt.Dist1(out[j]) })
	return out
}

// blockgridSearch adapts the blockage-grid τ-feasible search for dynamic
// access (no obstacles: the stub is short and verified by audits).
func blockgridSearch(from, to geom.Point, tau int, bounds geom.Rect) ([]geom.Point, int, bool) {
	win := geom.R(from.X, from.Y, to.X, to.Y).Expanded(4 * tau).Intersection(bounds)
	return blockgrid.Search(nil, from, to, tau, win)
}

// wireTypeOf returns a net's wire type.
func (r *Router) wireTypeOf(ni int) *rules.WireType {
	return r.Chip.WireTypes[r.Chip.Nets[ni].WireType]
}

// ripupLevelOf returns the ripup level for a net's wiring.
func (r *Router) ripupLevelOf(ni int) uint8 {
	if r.Chip.Nets[ni].Critical {
		return shapegrid.RipupCritical
	}
	return shapegrid.RipupStandard
}

// Stats of the routed net (after Route).
func (r *Router) NetStats(ni int) NetStats {
	rt := &r.routes[ni]
	return NetStats{Routed: rt.routed, Length: rt.length, Vias: len(rt.vias)}
}

// Segments returns a copy of a net's routed segments (for inspection).
func (r *Router) Segments(ni int) []Segment {
	return append([]Segment(nil), r.routes[ni].segments...)
}

// FastGridHitRate exposes the §3.6 statistic.
func (r *Router) FastGridHitRate() float64 { return r.FG.HitRate() }

// ShapeRec is one committed shape of a net together with the plane it
// lives on: Cut=false means wiring plane Plane (a layer), Cut=true
// means cut plane Plane (a via layer).
type ShapeRec struct {
	Plane int
	Cut   bool
	Shape shapegrid.Shape
}

// CommittedShapes reconstructs every shape net ni currently owns in the
// routing space — access-path reservations, routed segment metal, via
// pads/cuts/projections, and notch patches — from the router's own
// bookkeeping, without consulting the shape grids. Verification
// compares this list against the grids' actual contents; any mismatch
// means the incremental bookkeeping and the space have diverged.
func (r *Router) CommittedShapes(ni int) []ShapeRec {
	rt := &r.routes[ni]
	net := int32(ni)
	var out []ShapeRec
	wt0 := r.Chip.WireTypes[0]
	for _, ap := range rt.access {
		if !ap.Valid() {
			continue
		}
		z := ap.Layer()
		for i := 1; i < ap.NumPoints(); i++ {
			a, b := ap.Point(i-1), ap.Point(i)
			if a == b {
				continue
			}
			out = append(out, ShapeRec{Plane: z,
				Shape: r.Space.WireShape(z, a, b, wt0, net, shapegrid.RipupReserved)})
		}
	}
	wt := r.wireTypeOf(ni)
	level := r.ripupLevelOf(ni)
	for _, s := range rt.segments {
		out = append(out, ShapeRec{Plane: s.Z,
			Shape: r.Space.WireShape(s.Z, s.A, s.B, wt, net, level)})
	}
	for _, v := range rt.vias {
		bot, top, cut, proj := r.Space.ViaShapes(v.V, v.At, wt, net, level)
		out = append(out,
			ShapeRec{Plane: v.V, Shape: bot},
			ShapeRec{Plane: v.V + 1, Shape: top},
			ShapeRec{Plane: v.V, Cut: true, Shape: cut})
		if proj != nil {
			out = append(out, ShapeRec{Plane: v.V + 1, Cut: true, Shape: *proj})
		}
	}
	for _, p := range rt.patches {
		out = append(out, ShapeRec{Plane: p.z, Shape: p.sh})
	}
	return out
}

// refreshAccess re-generates the access paths of pins whose on-track
// endpoints are no longer usable (walled in by later wiring). Restricted
// workers call this only for nets whose extent is victimMargin inside
// their region (see worker), so the stub removal and regeneration stay
// owned.
func (r *Router) refreshAccess(ni int) {
	rt := &r.routes[ni]
	net := int32(ni)
	wt := r.Chip.WireTypes[0]
	for k, ap := range rt.access {
		if !ap.Valid() {
			continue
		}
		z := ap.Layer()
		if r.continuationOK(z, ap.End(), net) {
			continue
		}
		// Remove the stub metal and synthesize a fresh path.
		for i := 1; i < ap.NumPoints(); i++ {
			a, b := ap.Point(i-1), ap.Point(i)
			if a == b {
				continue
			}
			if r.Space.RemoveWire(z, a, b, wt, net, shapegrid.RipupReserved) {
				m := wt.Oriented(z, segDirPts(a, b), r.Chip.Dir(z))
				r.FG.OnWiringChange(z, m.Metal(a, b))
			}
		}
		rt.access[k] = pinaccess.Ref{}
		r.dynamicAccess(ni, k)
	}
}

func segDirPts(a, b geom.Point) geom.Direction {
	if a.X == b.X && a.Y != b.Y {
		return geom.Vertical
	}
	return geom.Horizontal
}

// Unroute removes all committed wiring of a net.
func (r *Router) Unroute(ni int) { r.unrouteNet(ni) }

// AccessPath exposes a pin's reserved access path (inspection/tests).
// Shared catalogue paths are materialized into the pin's frame.
func (r *Router) AccessPath(ni, k int) *pinaccess.AccessPath {
	ref := r.routes[ni].access[k]
	if !ref.Valid() {
		return nil
	}
	return ref.Materialize()
}
