package detail

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"bonnroute/internal/geom"
	"bonnroute/internal/obs"
	"bonnroute/internal/pathsearch"
)

// Route runs the full detailed routing flow (§4.4, §5.1): a critical-net
// prepass, then region-partitioned parallel rounds over progressively
// fewer, wider regions, and a final serial round with rip-up enabled for
// whatever is left.
//
// ctx carries cancellation — checked at round boundaries and between
// nets inside a round — and, via obs.SpanFrom, the parent span under
// which one "detail.round" child span is emitted per round, annotated
// with the round kind, nets attempted, failures, rip-up events, the
// merged path-search effort delta, and a fast-grid hit-rate snapshot.
// On cancellation Route stops routing further nets and returns a
// partial Result with Cancelled set; wiring committed so far stays.
func (r *Router) Route(ctx context.Context) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.SpanFrom(ctx)
	res := &Result{PerNet: make([]NetStats, len(r.Chip.Nets))}

	var critical, normal []int
	for ni := range r.Chip.Nets {
		if r.Chip.Nets[ni].Critical {
			critical = append(critical, ni)
		} else {
			normal = append(normal, ni)
		}
	}

	// One engine serves the whole serial portion of the flow: the critical
	// prepass, any single-region rounds, and the final cleanup.
	eng := r.acquireEngine()
	defer r.releaseEngine(eng)

	// statsNow is the router-wide path-search effort including the
	// serial engine's unreleased tally — the round spans report deltas
	// of this total. Only called at round boundaries (no worker is
	// mid-flight), so the parallel engines have all been released.
	statsNow := func() pathsearch.Stats {
		s := r.SearchStats()
		s.Add(eng.Stats())
		return s
	}
	// beginRound/endRound bracket one routing round with its span.
	round := 0
	var roundStats pathsearch.Stats
	var roundRipups int64
	beginRound := func(kind string, nets int) *obs.Span {
		sp := span.Child("detail.round",
			obs.Int("round", round), obs.Str("kind", kind), obs.Int("nets", nets))
		roundStats = statsNow()
		roundRipups = atomic.LoadInt64(&r.ripups)
		round++
		res.Rounds++
		return sp
	}
	endRound := func(sp *obs.Span, failed int) {
		now := statsNow()
		sp.End(obs.Int("failed", failed),
			obs.Int64("ripups", atomic.LoadInt64(&r.ripups)-roundRipups),
			obs.Int("labels", now.Labels-roundStats.Labels),
			obs.Int("heap_pops", now.HeapPops-roundStats.HeapPops),
			obs.Int("intervals", now.Intervals-roundStats.Intervals),
			obs.Int("searches", now.Searches-roundStats.Searches),
			obs.F64("fastgrid_hit_rate", r.FG.HitRate()))
	}

	// Critical nets first, serially, with rip-up allowed (§5.1: wide or
	// timing-critical wires are routed before the masses).
	if len(critical) > 0 {
		sp := beginRound("critical", len(critical))
		fails := 0
		for _, ni := range critical {
			if ctx.Err() != nil {
				break
			}
			if !r.routeNetWith(eng, ni, 2) {
				fails++
			}
		}
		endRound(sp, fails)
	}

	// Sort remaining nets by bounding-box half-perimeter: short local
	// nets first pack tightly, long nets later get the leftovers. Net ID
	// breaks span ties so the routing order — and therefore the result —
	// does not depend on sort internals.
	sort.Slice(normal, func(a, b int) bool {
		sa, sb := r.netSpan(normal[a]), r.netSpan(normal[b])
		if sa != sb {
			return sa < sb
		}
		return normal[a] < normal[b]
	})

	pending := normal
	regions := r.opt.Workers
	for ; regions >= 1 && len(pending) > 0 && ctx.Err() == nil; regions /= 2 {
		if regions == 1 {
			// Final serial round with rip-up.
			sp := beginRound("serial", len(pending))
			var fail []int
			for _, ni := range pending {
				if ctx.Err() != nil {
					fail = append(fail, ni)
					continue
				}
				if !r.routeNetWith(eng, ni, 2) {
					fail = append(fail, ni)
				}
			}
			pending = fail
			endRound(sp, len(fail))
			break
		}
		strips := r.partition(regions)
		assigned := make([][]int, len(strips))
		var next []int
		for _, ni := range pending {
			si := r.stripOf(ni, strips)
			if si < 0 {
				next = append(next, ni)
				continue
			}
			assigned[si] = append(assigned[si], ni)
		}
		// Each strip routes on its own engine and records failures in its
		// own slot; merging in strip order after the barrier keeps the
		// next round's net order independent of goroutine completion
		// order.
		sp := beginRound("parallel", len(pending)-len(next))
		fails := make([][]int, len(assigned))
		var wg sync.WaitGroup
		for si := range assigned {
			if len(assigned[si]) == 0 {
				continue
			}
			wg.Add(1)
			go func(si int, nets []int) {
				defer wg.Done()
				e := r.acquireEngine()
				defer r.releaseEngine(e)
				var local []int
				for _, ni := range nets {
					if ctx.Err() != nil {
						local = append(local, ni)
						continue
					}
					// No rip-up in parallel rounds: rip-up may touch nets
					// owned by other regions (§5.1's "only changes that do
					// not affect regions assigned to other threads").
					if !r.routeNetWith(e, ni, 0) {
						local = append(local, ni)
					}
				}
				fails[si] = local
			}(si, assigned[si])
		}
		wg.Wait()
		roundFails := 0
		for _, local := range fails {
			roundFails += len(local)
			next = append(next, local...)
		}
		pending = next
		endRound(sp, roundFails)
	}
	// Anything still pending gets last serial attempts with rip-up and
	// progressively extended routing areas (§4.4).
	if len(pending) > 0 && ctx.Err() == nil {
		sp := beginRound("retry", len(pending))
		fails := 0
		for _, ni := range pending {
			ok := false
			for try := 0; try < 3 && !ok && ctx.Err() == nil; try++ {
				ok = r.routeNetWith(eng, ni, 2)
			}
			if !ok {
				fails++
			}
		}
		endRound(sp, fails)
	}

	for ni := range r.Chip.Nets {
		st := r.NetStats(ni)
		res.PerNet[ni] = st
		if st.Routed {
			res.Routed++
		} else {
			res.Failed++
		}
	}
	res.RipupEvents = int(atomic.LoadInt64(&r.ripups))
	res.Cancelled = ctx.Err() != nil
	return res
}

// netSpan is the half-perimeter of the net's pin bounding box.
func (r *Router) netSpan(ni int) int {
	var bbox geom.Rect
	for _, pi := range r.Chip.Nets[ni].Pins {
		ctr := r.Chip.Pins[pi].Center()
		bbox = bbox.Union(geom.Rect{XMin: ctr.X, YMin: ctr.Y, XMax: ctr.X + 1, YMax: ctr.Y + 1})
	}
	return bbox.W() + bbox.H()
}

// partition splits the chip into vertical strips.
func (r *Router) partition(k int) []geom.Rect {
	area := r.Chip.Area
	strips := make([]geom.Rect, k)
	w := area.W() / k
	for i := 0; i < k; i++ {
		strips[i] = geom.Rect{
			XMin: area.XMin + i*w, YMin: area.YMin,
			XMax: area.XMin + (i+1)*w, YMax: area.YMax,
		}
	}
	strips[k-1].XMax = area.XMax
	return strips
}

// stripOf returns the strip wholly containing the net's interaction
// region (bbox + routing margin), or -1 when the net crosses strips.
func (r *Router) stripOf(ni int, strips []geom.Rect) int {
	var bbox geom.Rect
	for _, pi := range r.Chip.Nets[ni].Pins {
		ctr := r.Chip.Pins[pi].Center()
		bbox = bbox.Union(geom.Rect{XMin: ctr.X, YMin: ctr.Y, XMax: ctr.X + 1, YMax: ctr.Y + 1})
	}
	margin := 18 * r.Chip.Deck.Layers[0].Pitch
	bbox = bbox.Expanded(margin)
	for si, s := range strips {
		if s.ContainsRect(bbox.Intersection(r.Chip.Area)) {
			return si
		}
	}
	return -1
}
