package detail

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bonnroute/internal/geom"
	"bonnroute/internal/obs"
	"bonnroute/internal/pathsearch"
)

// RoundStats describes one routing round of Route.
type RoundStats struct {
	// Kind is "critical", "parallel", "serial", or "retry".
	Kind string
	// Strips is the region count of a parallel round (1 otherwise).
	Strips int
	// Nets and Failed count the nets attempted and failed in the round.
	Nets, Failed int
	// Ripups counts victim nets ripped up during the round.
	Ripups int64
	// Search is the path-search effort spent during the round. Engines
	// are drained (TakeStats) when their task ends, so the effort of a
	// round's workers is attributed to this round, not smeared into a
	// later one by an engine held across round boundaries.
	Search pathsearch.Stats
	// StripTime[i] is the wall time spent routing strip i's nets
	// serially within its task (parallel rounds; a single entry for
	// serial rounds). These per-strip task durations feed the modeled
	// critical-path speedup in cmd/routebench -workers-sweep, which is
	// how scaling is evaluated on machines with fewer cores than
	// Workers.
	StripTime []time.Duration
	// Elapsed is the round's wall time.
	Elapsed time.Duration
}

// Route runs the full detailed routing flow (§4.4, §5.1): a critical-net
// prepass, then region-partitioned parallel rounds over progressively
// fewer, wider strips, and final serial rounds with unrestricted rip-up
// for whatever is left.
//
// The strip schedule is derived from chip geometry alone (regionSchedule)
// and each strip task's effects are confined to its strip (see worker),
// so the result is identical for every Workers value — Workers only caps
// how many strip tasks run concurrently.
//
// ctx carries cancellation — checked at round boundaries and between
// nets inside a round — and, via obs.SpanFrom, the parent span under
// which one "detail.round" child span is emitted per round, annotated
// with the round kind, nets attempted, failures, rip-up events, the
// round's attributed path-search effort, and a fast-grid hit-rate
// snapshot. On cancellation Route stops routing further nets and returns
// a partial Result with Cancelled set; wiring committed so far stays.
func (r *Router) Route(ctx context.Context) *Result {
	return r.RouteNets(ctx, nil)
}

// RouteNets is Route restricted to a subset of net indices (nil means
// every net). Nets outside the subset are never searched or ripped up
// as primaries, but their committed wiring participates normally as
// obstacles and rip-up victims; the final Result still reports PerNet
// stats for the whole chip. The ECO engine uses this to re-route only
// the dirty set of a scenario delta over replayed clean wiring.
func (r *Router) RouteNets(ctx context.Context, subset []int) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.SpanFrom(ctx)
	res := &Result{PerNet: make([]NetStats, len(r.Chip.Nets))}

	var critical, normal []int
	pick := func(ni int) {
		if r.Chip.Nets[ni].Critical {
			critical = append(critical, ni)
		} else {
			normal = append(normal, ni)
		}
	}
	if subset == nil {
		for ni := range r.Chip.Nets {
			pick(ni)
		}
	} else {
		for _, ni := range subset {
			pick(ni)
		}
	}

	// One worker serves the whole serial portion of the flow: the
	// critical prepass, the serial cleanup, and the retry round.
	eng := r.acquireEngine()
	defer r.releaseEngine(eng)
	serial := &worker{e: eng}

	// Round bracketing. Every engine is drained when its task ends and
	// the delta folded into both the round tally and the router-wide
	// total, so RoundStats.Search is exactly the work done during the
	// round.
	var rs *RoundStats
	var rsMu sync.Mutex
	var roundSpan *obs.Span
	var roundStart time.Time
	var roundRipups int64
	drain := func(e *pathsearch.Engine) {
		d := e.TakeStats()
		rsMu.Lock()
		rs.Search.Add(d)
		rsMu.Unlock()
		r.foldStats(d)
	}
	beginRound := func(kind string, strips, nets int) {
		res.RoundDetails = append(res.RoundDetails,
			RoundStats{Kind: kind, Strips: strips, Nets: nets})
		rs = &res.RoundDetails[len(res.RoundDetails)-1]
		res.Rounds++
		roundRipups = atomic.LoadInt64(&r.ripups)
		roundStart = time.Now()
		roundSpan = span.Child("detail.round",
			obs.Int("round", res.Rounds-1), obs.Str("kind", kind), obs.Int("nets", nets))
	}
	endRound := func(failed int) {
		drain(eng)
		rs.Failed = failed
		rs.Ripups = atomic.LoadInt64(&r.ripups) - roundRipups
		rs.Elapsed = time.Since(roundStart)
		if rs.StripTime == nil {
			rs.StripTime = []time.Duration{rs.Elapsed}
		}
		roundSpan.End(obs.Int("failed", failed),
			obs.Int64("ripups", rs.Ripups),
			obs.Int("labels", rs.Search.Labels),
			obs.Int("heap_pops", rs.Search.HeapPops),
			obs.Int("intervals", rs.Search.Intervals),
			obs.Int("searches", rs.Search.Searches),
			obs.F64("fastgrid_hit_rate", r.FG.HitRate()))
	}

	// Critical nets first, serially, with rip-up allowed (§5.1: wide or
	// timing-critical wires are routed before the masses).
	if len(critical) > 0 {
		beginRound("critical", 1, len(critical))
		fails := 0
		for _, ni := range critical {
			if ctx.Err() != nil {
				break
			}
			if !r.routeNetWith(serial, ni, 2) {
				fails++
			}
		}
		endRound(fails)
	}

	// Sort remaining nets by bounding-box half-perimeter: short local
	// nets first pack tightly, long nets later get the leftovers. Net ID
	// breaks span ties so the routing order — and therefore the result —
	// does not depend on sort internals.
	sort.Slice(normal, func(a, b int) bool {
		sa, sb := r.netSpan(normal[a]), r.netSpan(normal[b])
		if sa != sb {
			return sa < sb
		}
		return normal[a] < normal[b]
	})

	pending := normal
	for _, k := range r.regionSchedule() {
		if len(pending) == 0 || ctx.Err() != nil {
			break
		}
		strips := r.partition(k)
		assigned := make([][]int, len(strips))
		var next []int
		for _, ni := range pending {
			si := r.stripOf(ni, strips)
			if si < 0 {
				next = append(next, ni)
				continue
			}
			assigned[si] = append(assigned[si], ni)
		}
		var tasks []int
		for si := range assigned {
			if len(assigned[si]) > 0 {
				tasks = append(tasks, si)
			}
		}
		if len(tasks) == 0 {
			continue
		}
		// Each strip task routes its nets in order on its own worker,
		// with region-owned rip-up, and records failures in its own
		// slot; merging in strip order after the barrier keeps the next
		// round's net order independent of goroutine completion order.
		// Tasks are handed out through a shared cursor to however many
		// goroutines Workers allows — task effects are disjoint, so the
		// handout order cannot influence the result.
		beginRound("parallel", k, len(pending)-len(next))
		fails := make([][]int, len(assigned))
		times := make([]time.Duration, len(assigned))
		var cursor int64
		var wg sync.WaitGroup
		for wi := 0; wi < min(r.opt.Workers, len(tasks)); wi++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					t := int(atomic.AddInt64(&cursor, 1)) - 1
					if t >= len(tasks) {
						return
					}
					si := tasks[t]
					start := time.Now()
					w := &worker{
						e:          r.acquireEngine(),
						restricted: true,
						region:     strips[si],
						clamp:      r.clampStrip(strips[si]),
					}
					var local []int
					for _, ni := range assigned[si] {
						if ctx.Err() != nil {
							local = append(local, ni)
							continue
						}
						if !r.routeNetWith(w, ni, 2) {
							local = append(local, ni)
						}
					}
					fails[si] = local
					drain(w.e)
					r.releaseEngine(w.e)
					times[si] = time.Since(start)
				}
			}()
		}
		wg.Wait()
		roundFails := 0
		for _, local := range fails {
			roundFails += len(local)
			next = append(next, local...)
		}
		pending = next
		rs.StripTime = times
		endRound(roundFails)
	}

	// Serial cleanup with unrestricted rip-up for everything the strip
	// rounds could not place (cross-strip nets, boundary escapes).
	if len(pending) > 0 && ctx.Err() == nil {
		beginRound("serial", 1, len(pending))
		var fail []int
		for _, ni := range pending {
			if ctx.Err() != nil {
				fail = append(fail, ni)
				continue
			}
			if !r.routeNetWith(serial, ni, 2) {
				fail = append(fail, ni)
			}
		}
		pending = fail
		endRound(len(fail))
	}
	// Anything still pending gets last serial attempts with rip-up and
	// progressively extended routing areas (§4.4).
	if len(pending) > 0 && ctx.Err() == nil {
		beginRound("retry", 1, len(pending))
		fails := 0
		for _, ni := range pending {
			ok := false
			for try := 0; try < 3 && !ok && ctx.Err() == nil; try++ {
				ok = r.routeNetWith(serial, ni, 2)
			}
			if !ok {
				fails++
			}
		}
		endRound(fails)
	}

	for ni := range r.Chip.Nets {
		st := r.NetStats(ni)
		res.PerNet[ni] = st
		if st.Routed {
			res.Routed++
		} else {
			res.Failed++
		}
	}
	res.RipupEvents = int(atomic.LoadInt64(&r.ripups))
	res.SearchStats = r.SearchStats()
	res.Cancelled = ctx.Err() != nil
	return res
}

// netSpan is the half-perimeter of the net's pin bounding box.
func (r *Router) netSpan(ni int) int {
	var bbox geom.Rect
	for _, pi := range r.Chip.Nets[ni].Pins {
		ctr := r.Chip.Pins[pi].Center()
		bbox = bbox.Union(geom.Rect{XMin: ctr.X, YMin: ctr.Y, XMax: ctr.X + 1, YMax: ctr.Y + 1})
	}
	return bbox.W() + bbox.H()
}

// regionSchedule returns the strip counts of the parallel rounds,
// largest first, halving down to 2: the largest power of two k ≤ 8 whose
// strips stay wide enough to hold the clamp margins plus working room.
// The schedule depends only on chip geometry — never on opt.Workers — so
// every worker count runs the same rounds and computes the same result.
func (r *Router) regionSchedule() []int {
	pitch := r.Chip.Deck.Layers[0].Pitch
	minW := max(32*pitch, 2*r.clampMargin+16*pitch)
	maxK := 1
	for k := 2; k <= 8; k *= 2 {
		if r.Chip.Area.W()/k >= minW {
			maxK = k
		}
	}
	var ks []int
	for k := maxK; k >= 2; k /= 2 {
		ks = append(ks, k)
	}
	return ks
}

// partition splits the chip into k vertical strips.
func (r *Router) partition(k int) []geom.Rect {
	area := r.Chip.Area
	strips := make([]geom.Rect, k)
	w := area.W() / k
	for i := 0; i < k; i++ {
		strips[i] = geom.Rect{
			XMin: area.XMin + i*w, YMin: area.YMin,
			XMax: area.XMin + (i+1)*w, YMax: area.YMax,
		}
	}
	strips[k-1].XMax = area.XMax
	return strips
}

// clampStrip shrinks a strip by the commit margin at interior strip
// boundaries; chip edges have no neighbor and keep their full extent.
func (r *Router) clampStrip(s geom.Rect) geom.Rect {
	area := r.Chip.Area
	c := s
	if c.XMin > area.XMin {
		c.XMin += r.clampMargin
	}
	if c.XMax < area.XMax {
		c.XMax -= r.clampMargin
	}
	return c
}

// stripOf returns the strip wholly containing the net's interaction
// region (pin bbox + assignment margin, clipped to the chip), or -1 when
// the net crosses strips and must wait for a wider round.
func (r *Router) stripOf(ni int, strips []geom.Rect) int {
	var bbox geom.Rect
	for _, pi := range r.Chip.Nets[ni].Pins {
		ctr := r.Chip.Pins[pi].Center()
		bbox = bbox.Union(geom.Rect{XMin: ctr.X, YMin: ctr.Y, XMax: ctr.X + 1, YMax: ctr.Y + 1})
	}
	bbox = bbox.Expanded(r.assignMargin).Intersection(r.Chip.Area)
	for si, s := range strips {
		if s.ContainsRect(bbox) {
			return si
		}
	}
	return -1
}
