package detail

import (
	"sort"
	"sync"

	"bonnroute/internal/geom"
)

// Route runs the full detailed routing flow (§4.4, §5.1): a critical-net
// prepass, then region-partitioned parallel rounds over progressively
// fewer, wider regions, and a final serial round with rip-up enabled for
// whatever is left.
func (r *Router) Route() *Result {
	res := &Result{PerNet: make([]NetStats, len(r.Chip.Nets))}

	var critical, normal []int
	for ni := range r.Chip.Nets {
		if r.Chip.Nets[ni].Critical {
			critical = append(critical, ni)
		} else {
			normal = append(normal, ni)
		}
	}

	// One engine serves the whole serial portion of the flow: the critical
	// prepass, any single-region rounds, and the final cleanup.
	eng := r.acquireEngine()
	defer r.releaseEngine(eng)

	// Critical nets first, serially, with rip-up allowed (§5.1: wide or
	// timing-critical wires are routed before the masses).
	for _, ni := range critical {
		r.routeNetWith(eng, ni, 2)
	}

	// Sort remaining nets by bounding-box half-perimeter: short local
	// nets first pack tightly, long nets later get the leftovers. Net ID
	// breaks span ties so the routing order — and therefore the result —
	// does not depend on sort internals.
	sort.Slice(normal, func(a, b int) bool {
		sa, sb := r.netSpan(normal[a]), r.netSpan(normal[b])
		if sa != sb {
			return sa < sb
		}
		return normal[a] < normal[b]
	})

	pending := normal
	regions := r.opt.Workers
	for round := 0; regions >= 1 && len(pending) > 0; round++ {
		if regions == 1 {
			// Final serial round with rip-up.
			var fail []int
			for _, ni := range pending {
				if !r.routeNetWith(eng, ni, 2) {
					fail = append(fail, ni)
				}
			}
			pending = fail
			break
		}
		strips := r.partition(regions)
		assigned := make([][]int, len(strips))
		var next []int
		for _, ni := range pending {
			si := r.stripOf(ni, strips)
			if si < 0 {
				next = append(next, ni)
				continue
			}
			assigned[si] = append(assigned[si], ni)
		}
		// Each strip routes on its own engine and records failures in its
		// own slot; merging in strip order after the barrier keeps the
		// next round's net order independent of goroutine completion
		// order.
		fails := make([][]int, len(assigned))
		var wg sync.WaitGroup
		for si := range assigned {
			if len(assigned[si]) == 0 {
				continue
			}
			wg.Add(1)
			go func(si int, nets []int) {
				defer wg.Done()
				e := r.acquireEngine()
				defer r.releaseEngine(e)
				var local []int
				for _, ni := range nets {
					// No rip-up in parallel rounds: rip-up may touch nets
					// owned by other regions (§5.1's "only changes that do
					// not affect regions assigned to other threads").
					if !r.routeNetWith(e, ni, 0) {
						local = append(local, ni)
					}
				}
				fails[si] = local
			}(si, assigned[si])
		}
		wg.Wait()
		for _, local := range fails {
			next = append(next, local...)
		}
		pending = next
		regions /= 2
	}
	// Anything still pending gets last serial attempts with rip-up and
	// progressively extended routing areas (§4.4).
	var failed []int
	for _, ni := range pending {
		ok := false
		for try := 0; try < 3 && !ok; try++ {
			ok = r.routeNetWith(eng, ni, 2)
		}
		if !ok {
			failed = append(failed, ni)
		}
	}

	for ni := range r.Chip.Nets {
		st := r.NetStats(ni)
		res.PerNet[ni] = st
		if st.Routed {
			res.Routed++
		} else {
			res.Failed++
		}
	}
	return res
}

// netSpan is the half-perimeter of the net's pin bounding box.
func (r *Router) netSpan(ni int) int {
	var bbox geom.Rect
	for _, pi := range r.Chip.Nets[ni].Pins {
		ctr := r.Chip.Pins[pi].Center()
		bbox = bbox.Union(geom.Rect{XMin: ctr.X, YMin: ctr.Y, XMax: ctr.X + 1, YMax: ctr.Y + 1})
	}
	return bbox.W() + bbox.H()
}

// partition splits the chip into vertical strips.
func (r *Router) partition(k int) []geom.Rect {
	area := r.Chip.Area
	strips := make([]geom.Rect, k)
	w := area.W() / k
	for i := 0; i < k; i++ {
		strips[i] = geom.Rect{
			XMin: area.XMin + i*w, YMin: area.YMin,
			XMax: area.XMin + (i+1)*w, YMax: area.YMax,
		}
	}
	strips[k-1].XMax = area.XMax
	return strips
}

// stripOf returns the strip wholly containing the net's interaction
// region (bbox + routing margin), or -1 when the net crosses strips.
func (r *Router) stripOf(ni int, strips []geom.Rect) int {
	var bbox geom.Rect
	for _, pi := range r.Chip.Nets[ni].Pins {
		ctr := r.Chip.Pins[pi].Center()
		bbox = bbox.Union(geom.Rect{XMin: ctr.X, YMin: ctr.Y, XMax: ctr.X + 1, YMax: ctr.Y + 1})
	}
	margin := 18 * r.Chip.Deck.Layers[0].Pitch
	bbox = bbox.Expanded(margin)
	for si, s := range strips {
		if s.ContainsRect(bbox.Intersection(r.Chip.Area)) {
			return si
		}
	}
	return -1
}
