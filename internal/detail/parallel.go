package detail

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bonnroute/internal/geom"
	"bonnroute/internal/obs"
	"bonnroute/internal/pathsearch"
)

// RoundStats describes one routing round of Route.
type RoundStats struct {
	// Kind is "critical", "parallel", "cluster", "serial", or "retry".
	Kind string
	// Strips is the strip count the round partitioned into (1 for the
	// whole-chip cluster round and the serial rounds).
	Strips int
	// Nets and Failed count the nets attempted and failed in the round.
	Nets, Failed int
	// Ripups counts victim nets ripped up during the round.
	Ripups int64
	// Search is the path-search effort spent during the round. Engines
	// are drained (TakeStats) when their task ends, so the effort of a
	// round's workers is attributed to this round, not smeared into a
	// later one by an engine held across round boundaries.
	Search pathsearch.Stats
	// StripTime[i] is the wall time task i spent routing its nets
	// serially, in canonical task order (parallel/cluster rounds; a
	// single entry for serial rounds). These per-task durations feed the
	// modeled critical-path speedup in cmd/routebench -workers-sweep,
	// which is how scaling is evaluated on machines with fewer cores
	// than Workers.
	StripTime []time.Duration
	// TaskEffort[i] is task i's attributed path-search effort
	// (pathsearch.Stats.Effort) in the same canonical order — a
	// machine-independent imbalance signal alongside StripTime.
	TaskEffort []int64
	// Sched reports the work-stealing scheduler's behaviour during a
	// parallel/cluster round (zero for serial rounds).
	Sched SchedStats
	// Elapsed is the round's wall time.
	Elapsed time.Duration
}

// Route runs the full detailed routing flow (§4.4, §5.1): a critical-net
// prepass, then region-partitioned parallel rounds over progressively
// fewer, wider strips — each strip further decomposed into
// interaction-disjoint net clusters, executed by the deterministic
// work-stealing scheduler (see schedule.go) — then a whole-chip cluster
// round, and final serial rounds with unrestricted rip-up for whatever
// is left.
//
// The round and task schedule is derived from chip geometry alone
// (regionSchedule, regionTasks) and each task's effects are confined to
// its region (see worker), so the result is identical for every Workers
// value — Workers only caps how many region tasks run concurrently.
//
// ctx carries cancellation — checked at round boundaries and between
// nets inside a round — and, via obs.SpanFrom, the parent span under
// which one "detail.round" child span is emitted per round, annotated
// with the round kind, nets attempted, failures, rip-up events, the
// round's attributed path-search effort, and a fast-grid hit-rate
// snapshot. On cancellation Route stops routing further nets and returns
// a partial Result with Cancelled set; wiring committed so far stays.
func (r *Router) Route(ctx context.Context) *Result {
	return r.RouteNets(ctx, nil)
}

// RouteNets is Route restricted to a subset of net indices (nil means
// every net). Nets outside the subset are never searched or ripped up
// as primaries, but their committed wiring participates normally as
// obstacles and rip-up victims; the final Result still reports PerNet
// stats for the whole chip. The ECO engine uses this to re-route only
// the dirty set of a scenario delta over replayed clean wiring.
func (r *Router) RouteNets(ctx context.Context, subset []int) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.SpanFrom(ctx)
	res := &Result{PerNet: make([]NetStats, len(r.Chip.Nets))}

	var critical, normal []int
	pick := func(ni int) {
		if r.Chip.Nets[ni].Critical {
			critical = append(critical, ni)
		} else {
			normal = append(normal, ni)
		}
	}
	if subset == nil {
		for ni := range r.Chip.Nets {
			pick(ni)
		}
	} else {
		for _, ni := range subset {
			pick(ni)
		}
	}

	// One worker serves the whole serial portion of the flow: the
	// critical prepass, the serial cleanup, and the retry round.
	eng := r.acquireEngine()
	defer r.releaseEngine(eng)
	serial := &worker{e: eng}

	// Round bracketing. Every engine is drained when its task ends and
	// the delta folded into both the round tally and the router-wide
	// total, so RoundStats.Search is exactly the work done during the
	// round.
	var rs *RoundStats
	var rsMu sync.Mutex
	var roundSpan *obs.Span
	var roundStart time.Time
	var roundRipups int64
	drain := func(e *pathsearch.Engine) pathsearch.Stats {
		d := e.TakeStats()
		rsMu.Lock()
		rs.Search.Add(d)
		rsMu.Unlock()
		r.foldStats(d)
		return d
	}
	beginRound := func(kind string, strips, nets int) {
		res.RoundDetails = append(res.RoundDetails,
			RoundStats{Kind: kind, Strips: strips, Nets: nets})
		rs = &res.RoundDetails[len(res.RoundDetails)-1]
		res.Rounds++
		roundRipups = atomic.LoadInt64(&r.ripups)
		roundStart = time.Now()
		roundSpan = span.Child("detail.round",
			obs.Int("round", res.Rounds-1), obs.Str("kind", kind), obs.Int("nets", nets))
	}
	endRound := func(failed int) {
		drain(eng)
		rs.Failed = failed
		rs.Ripups = atomic.LoadInt64(&r.ripups) - roundRipups
		rs.Elapsed = time.Since(roundStart)
		if rs.StripTime == nil {
			rs.StripTime = []time.Duration{rs.Elapsed}
		}
		roundSpan.End(obs.Int("failed", failed),
			obs.Int64("ripups", rs.Ripups),
			obs.Int("labels", rs.Search.Labels),
			obs.Int("heap_pops", rs.Search.HeapPops),
			obs.Int("intervals", rs.Search.Intervals),
			obs.Int("searches", rs.Search.Searches),
			obs.Int("tasks", rs.Sched.Tasks),
			obs.Int("steals", rs.Sched.Steals),
			obs.F64("idle_ms", float64(rs.Sched.Idle.Microseconds())/1000),
			obs.F64("imbalance_ms", float64(rs.Sched.Imbalance.Microseconds())/1000),
			obs.F64("fastgrid_hit_rate", r.FG.HitRate()))
	}

	// Critical nets first, serially, with rip-up allowed (§5.1: wide or
	// timing-critical wires are routed before the masses).
	if len(critical) > 0 {
		beginRound("critical", 1, len(critical))
		fails := 0
		for _, ni := range critical {
			if ctx.Err() != nil {
				break
			}
			if !r.routeNetWith(serial, ni, 2) {
				fails++
			}
		}
		endRound(fails)
	}

	// Sort remaining nets by bounding-box half-perimeter: short local
	// nets first pack tightly, long nets later get the leftovers. Net ID
	// breaks span ties so the routing order — and therefore the result —
	// does not depend on sort internals.
	sort.Slice(normal, func(a, b int) bool {
		sa, sb := r.netSpan(normal[a]), r.netSpan(normal[b])
		if sa != sb {
			return sa < sb
		}
		return normal[a] < normal[b]
	})

	pending := normal
	for _, k := range r.regionSchedule() {
		if len(pending) == 0 || ctx.Err() != nil {
			break
		}
		strips := r.partition(k)
		assigned := make([][]int, len(strips))
		var next []int
		for _, ni := range pending {
			si := r.stripOf(ni, strips)
			if si < 0 {
				next = append(next, ni)
				continue
			}
			assigned[si] = append(assigned[si], ni)
		}
		// Decompose the strips into interaction-disjoint region tasks
		// (clusters inside a strip become their own tasks) and run them on
		// the work-stealing scheduler. Each task routes its nets in order
		// on its own worker with region-owned rip-up and records failures
		// in its canonical slot; merging in task-id order after the barrier
		// keeps the next round's net order independent of execution order.
		tasks := r.regionTasks(strips, assigned)
		if len(tasks) == 0 {
			continue
		}
		kind := "parallel"
		if k == 1 {
			kind = "cluster"
		}
		beginRound(kind, k, len(pending)-len(next))
		fails := make([][]int, len(tasks))
		times := make([]time.Duration, len(tasks))
		efforts := make([]int64, len(tasks))
		sched := runScheduled(r.opt.Workers, tasks, r.forceSteal, func(wi int, t *schedTask) {
			start := time.Now()
			w := &worker{
				e:          r.acquireEngine(),
				restricted: true,
				region:     t.region,
				clamp:      t.clamp,
			}
			var local []int
			for _, ni := range t.nets {
				if ctx.Err() != nil {
					local = append(local, ni)
					continue
				}
				if !r.routeNetWith(w, ni, 2) {
					local = append(local, ni)
				}
			}
			fails[t.id] = local
			d := drain(w.e)
			r.releaseEngine(w.e)
			times[t.id] = time.Since(start)
			efforts[t.id] = d.Effort()
		})
		roundFails := 0
		for _, local := range fails {
			roundFails += len(local)
			next = append(next, local...)
		}
		pending = next
		rs.StripTime = times
		rs.TaskEffort = efforts
		rs.Sched = sched
		endRound(roundFails)
	}

	// Serial cleanup with unrestricted rip-up for everything the strip
	// rounds could not place (cross-strip nets, boundary escapes).
	if len(pending) > 0 && ctx.Err() == nil {
		beginRound("serial", 1, len(pending))
		var fail []int
		for _, ni := range pending {
			if ctx.Err() != nil {
				fail = append(fail, ni)
				continue
			}
			if !r.routeNetWith(serial, ni, 2) {
				fail = append(fail, ni)
			}
		}
		pending = fail
		endRound(len(fail))
	}
	// Anything still pending gets last serial attempts with rip-up and
	// progressively extended routing areas (§4.4).
	if len(pending) > 0 && ctx.Err() == nil {
		beginRound("retry", 1, len(pending))
		fails := 0
		for _, ni := range pending {
			ok := false
			for try := 0; try < 3 && !ok && ctx.Err() == nil; try++ {
				ok = r.routeNetWith(serial, ni, 2)
			}
			if !ok {
				fails++
			}
		}
		endRound(fails)
	}

	for ni := range r.Chip.Nets {
		st := r.NetStats(ni)
		res.PerNet[ni] = st
		if st.Routed {
			res.Routed++
		} else {
			res.Failed++
		}
	}
	res.RipupEvents = int(atomic.LoadInt64(&r.ripups))
	res.SearchStats = r.SearchStats()
	res.Cancelled = ctx.Err() != nil
	return res
}

// netSpan is the half-perimeter of the net's pin bounding box.
func (r *Router) netSpan(ni int) int {
	var bbox geom.Rect
	for _, pi := range r.Chip.Nets[ni].Pins {
		ctr := r.Chip.Pins[pi].Center()
		bbox = bbox.Union(geom.Rect{XMin: ctr.X, YMin: ctr.Y, XMax: ctr.X + 1, YMax: ctr.Y + 1})
	}
	return bbox.W() + bbox.H()
}

// regionSchedule returns the strip counts of the parallel rounds,
// largest first, halving down to the final whole-chip cluster round
// (k=1): the largest power of two k ≤ 64 whose strips stay wide enough
// to hold a net's full interaction rectangle plus working room — a
// strip narrower than 2·assignMargin can never be assigned a net, so
// thinner partitions only add empty rounds. The schedule depends only
// on chip geometry — never on opt.Workers — so every worker count runs
// the same rounds and computes the same result.
func (r *Router) regionSchedule() []int {
	pitch := r.Chip.Deck.Layers[0].Pitch
	minW := max(32*pitch, 2*r.assignMargin+16*pitch)
	maxK := 1
	for k := 2; k <= 64; k *= 2 {
		if r.Chip.Area.W()/k >= minW {
			maxK = k
		}
	}
	var ks []int
	for k := maxK; k >= 1; k /= 2 {
		ks = append(ks, k)
	}
	return ks
}

// partition splits the chip into k vertical strips.
func (r *Router) partition(k int) []geom.Rect {
	area := r.Chip.Area
	strips := make([]geom.Rect, k)
	w := area.W() / k
	for i := 0; i < k; i++ {
		strips[i] = geom.Rect{
			XMin: area.XMin + i*w, YMin: area.YMin,
			XMax: area.XMin + (i+1)*w, YMax: area.YMax,
		}
	}
	strips[k-1].XMax = area.XMax
	return strips
}

// stripOf returns the strip wholly containing the net's interaction
// region (pin bbox + assignment margin, clipped to the chip), or -1 when
// the net crosses strips and must wait for a wider round.
func (r *Router) stripOf(ni int, strips []geom.Rect) int {
	bbox := r.interactRect(ni)
	for si, s := range strips {
		if s.ContainsRect(bbox) {
			return si
		}
	}
	return -1
}
