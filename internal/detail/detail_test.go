package detail

import (
	"context"

	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
)

func smallChip(seed int64, nets int) *chip.Chip {
	return chip.Generate(chip.GenParams{
		Seed: seed, Rows: 4, Cols: 10, NumNets: nets,
		LocalityRadius: 3,
	})
}

func TestRouterConstruction(t *testing.T) {
	c := smallChip(1, 12)
	r := New(c, Options{})
	if r.TG.NumLayers() != c.NumLayers() {
		t.Fatal("track graph layer mismatch")
	}
	for z := 0; z < c.NumLayers(); z++ {
		if len(r.TG.Layers[z].Coords) == 0 {
			t.Fatalf("layer %d has no tracks", z)
		}
	}
	// Some pins must have reserved access paths.
	withAccess := 0
	for ni := range r.routes {
		for _, ap := range r.routes[ni].access {
			if ap.Valid() {
				withAccess++
			}
		}
	}
	if withAccess == 0 {
		t.Fatal("no pin-access reservations made")
	}
}

func TestRouteSingleNet(t *testing.T) {
	c := smallChip(2, 8)
	r := New(c, Options{})
	if !r.RouteNet(0, 0) {
		t.Fatalf("net 0 not routed")
	}
	st := r.NetStats(0)
	if !st.Routed || st.Length == 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Segments must be rectilinear and inside the chip.
	for _, s := range r.Segments(0) {
		if s.A.X != s.B.X && s.A.Y != s.B.Y {
			t.Fatalf("non-rectilinear segment %+v", s)
		}
	}
}

func TestRouteAllSerial(t *testing.T) {
	c := smallChip(3, 15)
	r := New(c, Options{Workers: 1})
	res := r.Route(context.Background())
	if res.Routed < len(c.Nets)*8/10 {
		t.Fatalf("only %d/%d nets routed", res.Routed, len(c.Nets))
	}
	// Connectivity audit: routed nets must have no opens.
	audit := r.Audit()
	if audit.Opens > res.Failed*3 {
		t.Fatalf("opens = %d with %d failed nets", audit.Opens, res.Failed)
	}
	// The fast grid must answer a solid share of queries even on this
	// tiny, pin-dominated chip (§3.6's 97.89 % is measured on chips whose
	// track sweeps are mostly far from pins; the bench reports the
	// statistic on realistic sizes).
	if hr := r.FastGridHitRate(); hr < 0.3 {
		t.Fatalf("fast grid hit rate = %.3f, implausibly low", hr)
	}
}

func TestRouteParallelMatchesQualityRegime(t *testing.T) {
	c := smallChip(4, 20)
	serial := New(c, Options{Workers: 1}).Route(context.Background())
	c2 := smallChip(4, 20)
	parallel := New(c2, Options{Workers: 4}).Route(context.Background())
	if parallel.Routed < serial.Routed-2 {
		t.Fatalf("parallel routed %d vs serial %d", parallel.Routed, serial.Routed)
	}
}

func TestDiffNetCleanliness(t *testing.T) {
	c := smallChip(5, 15)
	r := New(c, Options{})
	res := r.Route(context.Background())
	_ = res
	audit := r.Audit()
	// The central claim of §5.2: BonnRoute leaves almost no diff-net
	// violations. Allow a small number from pin-access fallbacks.
	if audit.DiffNetViolations > 2 {
		t.Fatalf("diff-net violations = %d", audit.DiffNetViolations)
	}
}

func TestRipupEnablesRouting(t *testing.T) {
	// Construct contention: route a net, then force another through.
	c := smallChip(6, 10)
	r := New(c, Options{})
	routed := 0
	for ni := range c.Nets {
		if r.RouteNet(ni, 2) {
			routed++
		}
	}
	if routed < len(c.Nets)*7/10 {
		t.Fatalf("routed %d/%d", routed, len(c.Nets))
	}
}

func TestUnrouteRestoresSpace(t *testing.T) {
	c := smallChip(7, 6)
	r := New(c, Options{})
	if !r.RouteNet(0, 0) {
		t.Skip("net 0 unroutable")
	}
	segs := r.Segments(0)
	if len(segs) == 0 {
		t.Skip("net 0 has no segments (single-tile net)")
	}
	r.Unroute(0)
	if len(r.Segments(0)) != 0 || r.NetStats(0).Routed {
		t.Fatal("unroute left state behind")
	}
	// Re-route must succeed again.
	if !r.RouteNet(0, 0) {
		t.Fatal("re-route failed")
	}
}

func TestCorridorRestriction(t *testing.T) {
	c := smallChip(8, 6)
	r := New(c, Options{})
	// Fake corridor: a degenerate global tree restricted to the net's
	// bbox tiles. With no corridor the net routes; with an absurd
	// corridor far away the search must fail.
	S := []geom.Point3{geom.Pt3(100, 100, 0)}
	area := r.routeArea(&worker{}, 0, S, S)
	if area == nil {
		t.Fatal("nil area")
	}
	if !area.Contains(100, 100, 0) {
		t.Fatal("area must contain the attachment points")
	}
}

// Audit wraps the drc audit for tests.
func (r *Router) Audit() drc.AuditResult {
	netPins := map[int32][]drc.LayerRect{}
	for ni := range r.Chip.Nets {
		if !r.routes[ni].routed {
			continue // unrouted nets are counted separately, not as opens
		}
		for _, pi := range r.Chip.Nets[ni].Pins {
			p := &r.Chip.Pins[pi]
			netPins[int32(ni)] = append(netPins[int32(ni)], drc.LayerRect{
				Rect: p.Shapes[0].Rect, Layer: p.Shapes[0].Layer,
			})
		}
	}
	return r.Space.Audit(r.Chip.Area, netPins)
}

// TestWorkerCountEquivalence is the determinism contract of the §5.1
// parallelization: the strip schedule comes from chip geometry and every
// strip task's effects are confined to its strip, so a fixed seed must
// produce bit-identical routing results for every worker count.
func TestWorkerCountEquivalence(t *testing.T) {
	withParallelism(t, 4)
	gen := func() *chip.Chip {
		return chip.Generate(chip.GenParams{
			Seed: 11, Rows: 6, Cols: 40, NumNets: 60,
			NumLayers: 4, LocalityRadius: 2,
		})
	}
	type snap struct {
		res    *Result
		perNet []NetStats
	}
	run := func(workers int) snap {
		r := New(gen(), Options{Workers: workers})
		res := r.Route(context.Background())
		return snap{res: res, perNet: res.PerNet}
	}
	ref := run(1)
	// The test is only meaningful when parallel strip rounds actually
	// route nets; demand it so chip-parameter drift cannot silently
	// vacate the contract.
	parallelNets := 0
	for _, rd := range ref.res.RoundDetails {
		if rd.Kind == "parallel" {
			parallelNets += rd.Nets
		}
	}
	if parallelNets == 0 {
		t.Fatal("no nets routed in parallel strip rounds; equivalence test is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.res.Routed != ref.res.Routed || got.res.Failed != ref.res.Failed {
			t.Fatalf("Workers=%d: routed/failed %d/%d, want %d/%d",
				workers, got.res.Routed, got.res.Failed, ref.res.Routed, ref.res.Failed)
		}
		if got.res.RipupEvents != ref.res.RipupEvents {
			t.Fatalf("Workers=%d: ripups %d, want %d", workers, got.res.RipupEvents, ref.res.RipupEvents)
		}
		for ni := range ref.perNet {
			if got.perNet[ni] != ref.perNet[ni] {
				t.Fatalf("Workers=%d: net %d stats %+v, want %+v",
					workers, ni, got.perNet[ni], ref.perNet[ni])
			}
		}
		// Search effort must match too: the same searches run in the
		// same per-strip order regardless of concurrency. PiReused is
		// excluded — the future-cost cache lives in the pooled engines,
		// and which engine serves which strip depends on the worker
		// count; a cache hit returns the same π either way, so PiReused
		// varies without affecting results.
		gs, ws := got.res.SearchStats, ref.res.SearchStats
		gs.PiReused, ws.PiReused = 0, 0
		if gs != ws {
			t.Fatalf("Workers=%d: search stats %+v, want %+v", workers, gs, ws)
		}
	}
}
