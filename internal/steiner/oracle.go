package steiner

import (
	"math"

	"bonnroute/internal/grid"
)

// Oracle is a reusable Path Composition solver. The resource sharing
// algorithm calls the oracle once per net per phase (§2.3), so per-call
// allocations matter; Oracle keeps versioned work arrays sized to the
// graph and reuses them across calls — including all of Tree's per-call
// scratch (the terminal union-find, merged component lists, the grown
// group and the result buffer), so a steady-state call allocates only
// the returned edge slice. An Oracle is not safe for concurrent use —
// the parallel resource sharing solver gives each worker goroutine its
// own.
type Oracle struct {
	g *grid.Graph

	dist             []float64
	parentV, parentE []int32
	done             []bool
	ver              []int32
	cur              int32

	comp    []int32
	compVer []int32
	compCur int32

	pq oHeap

	// Tree scratch, reused across calls (sized to the terminal count).
	par       []int32 // terminal union-find parents
	rootDense []int32 // union-find root -> dense merged component id
	merged    [][]int // merged terminal components (backing reused)
	reached   []bool  // per merged component: absorbed into the group yet
	group     []int   // the grown vertex set K of Algorithm 1
	treeBuf   []int   // result accumulation buffer
}

// NewOracle creates an oracle for g.
func NewOracle(g *grid.Graph) *Oracle {
	n := g.NumVertices()
	return &Oracle{
		g:       g,
		dist:    make([]float64, n),
		parentV: make([]int32, n),
		parentE: make([]int32, n),
		done:    make([]bool, n),
		ver:     make([]int32, n),
		comp:    make([]int32, n),
		compVer: make([]int32, n),
	}
}

// nextEpoch advances an epoch counter used with an equality-compared
// stamp array. On int32 wraparound the stamp array is hard-cleared and
// the counter restarted, so a stale stamp from 2³¹ calls ago can never
// masquerade as current — a real hazard for oracles owned by a
// long-lived routing daemon, where silent aliasing would surface as
// corrupt dist/parent/component state and plausible-looking wrong
// trees.
func nextEpoch(cur *int32, stamps []int32) int32 {
	if *cur == math.MaxInt32 {
		for i := range stamps {
			stamps[i] = 0
		}
		*cur = 0
	}
	*cur++
	return *cur
}

func (o *Oracle) compOf(v int) int32 {
	if o.compVer[v] != o.compCur {
		return -1
	}
	return o.comp[v]
}

func (o *Oracle) setComp(v int, c int32) {
	o.comp[v] = c
	o.compVer[v] = o.compCur
}

// mergeTerminals collapses terminal groups that share a vertex (pins in
// the same tile) into merged components with dense ids, marking every
// member vertex with its component id under a fresh comp epoch. The
// returned slice is oracle-owned scratch, valid until the next call.
func (o *Oracle) mergeTerminals(terminals [][]int) [][]int {
	nextEpoch(&o.compCur, o.compVer)
	if cap(o.par) < len(terminals) {
		o.par = make([]int32, len(terminals))
		o.rootDense = make([]int32, len(terminals))
	}
	par := o.par[:len(terminals)]
	for i := range par {
		par[i] = int32(i)
	}
	tfind := func(x int32) int32 {
		for par[x] != x {
			par[x] = par[par[x]]
			x = par[x]
		}
		return x
	}
	for ti, vs := range terminals {
		for _, v := range vs {
			if c := o.compOf(v); c >= 0 {
				par[tfind(int32(ti))] = tfind(c)
			} else {
				o.setComp(v, int32(ti))
			}
		}
	}
	// Rebuild merged components with dense ids.
	rootDense := o.rootDense[:len(terminals)]
	for i := range rootDense {
		rootDense[i] = -1
	}
	merged := o.merged[:0]
	for ti, vs := range terminals {
		r := tfind(int32(ti))
		id := rootDense[r]
		if id < 0 {
			id = int32(len(merged))
			rootDense[r] = id
			if len(merged) < cap(merged) {
				merged = merged[:len(merged)+1]
				merged[id] = merged[id][:0]
			} else {
				merged = append(merged, nil)
			}
		}
		merged[id] = append(merged[id], vs...)
	}
	o.merged = merged
	nextEpoch(&o.compCur, o.compVer)
	for ci, vs := range merged {
		for _, v := range vs {
			o.setComp(v, int32(ci))
		}
	}
	return merged
}

// Tree runs Algorithm 1 under the given edge costs: starting from the
// terminal components, repeatedly connect the grown component to the
// nearest other component by a minimum-cost path (paper Algorithm 1,
// guarantee 2−2/|W|). Each terminal is a set of vertex ids joined at
// zero cost (the clique K(V_p) of §2.1). cost(e) must be ≥ 0; a negative
// cost marks the edge unusable. ok is false when the terminals are not
// connected under finite costs.
func (o *Oracle) Tree(cost func(e int) float64, terminals [][]int) (edges []int, ok bool) {
	if len(terminals) <= 1 {
		return nil, true
	}
	merged := o.mergeTerminals(terminals)
	if len(merged) <= 1 {
		return nil, true
	}

	if cap(o.reached) < len(merged) {
		o.reached = make([]bool, len(merged))
	}
	reached := o.reached[:len(merged)]
	for i := range reached {
		reached[i] = false
	}
	reached[0] = true

	// group is the vertex set K of Algorithm 1 (grown from terminal 0).
	group := append(o.group[:0], merged[0]...)

	treeEdges := o.treeBuf[:0]
	for remaining := len(merged) - 1; remaining > 0; remaining-- {
		last, ok := o.dijkstra(cost, group, reached)
		if !ok {
			o.group, o.treeBuf = group, treeEdges
			return nil, false
		}
		// Absorb the reached component and the path.
		ci := int(o.compOf(last))
		reached[ci] = true
		group = append(group, merged[ci]...)
		for v := int32(last); ; {
			group = append(group, int(v))
			pv := o.parentV[v]
			if pv < 0 {
				break
			}
			treeEdges = append(treeEdges, int(o.parentE[v]))
			v = pv
		}
	}
	o.group, o.treeBuf = group, treeEdges
	// The scratch buffer is reused on the next call; hand the caller a
	// copy it can keep.
	return append([]int(nil), treeEdges...), true
}

// dijkstra searches from the group vertices to the nearest vertex of a
// not-yet-reached component; returns that vertex.
func (o *Oracle) dijkstra(cost func(e int) float64, group []int, reached []bool) (int, bool) {
	nextEpoch(&o.cur, o.ver)
	o.pq = o.pq[:0]
	touch := func(v int) {
		if o.ver[v] != o.cur {
			o.ver[v] = o.cur
			o.dist[v] = inf64
			o.done[v] = false
			o.parentV[v] = -1
		}
	}
	for _, v := range group {
		touch(v)
		if o.dist[v] != 0 {
			o.dist[v] = 0
			o.pq.push(oItem{0, int32(v)})
		}
	}
	for {
		it, nonempty := o.pq.pop()
		if !nonempty {
			break
		}
		v := int(it.v)
		if o.done[v] || it.d > o.dist[v] {
			continue
		}
		o.done[v] = true
		if c := o.compOf(v); c >= 0 && !reached[c] {
			return v, true
		}
		o.g.Neighbors(v, func(e, w int) {
			c := cost(e)
			if c < 0 {
				return
			}
			touch(w)
			if o.done[w] {
				return
			}
			nd := it.d + c
			if nd < o.dist[w] {
				o.dist[w] = nd
				o.parentV[w] = int32(v)
				o.parentE[w] = int32(e)
				o.pq.push(oItem{nd, int32(w)})
			}
		})
	}
	return -1, false
}

const inf64 = 1e30

// oItem is one queue entry. Ties break on the vertex id so pop order —
// and with it every tree — is deterministic.
type oItem struct {
	d float64
	v int32
}

func (a oItem) less(b oItem) bool {
	return a.d < b.d || (a.d == b.d && a.v < b.v)
}

// oHeap is a plain typed binary min-heap. It replaces the old
// container/heap implementation, whose interface{} boxing allocated on
// every Push/Pop in the solver's hottest loop (one oracle call per net
// per phase) — the same fix pathsearch applied with distHeap.
type oHeap []oItem

func (h *oHeap) push(it oItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *oHeap) pop() (oItem, bool) {
	s := *h
	if len(s) == 0 {
		return oItem{}, false
	}
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l].less(s[small]) {
			small = l
		}
		if r < n && s[r].less(s[small]) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top, true
}
