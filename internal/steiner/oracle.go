package steiner

import (
	"container/heap"

	"bonnroute/internal/grid"
)

// Oracle is a reusable Path Composition solver. The resource sharing
// algorithm calls the oracle once per net per phase (§2.3), so per-call
// allocations matter; Oracle keeps versioned work arrays sized to the
// graph and reuses them across calls. An Oracle is not safe for
// concurrent use — the parallel resource sharing solver gives each
// worker goroutine its own.
type Oracle struct {
	g *grid.Graph

	dist             []float64
	parentV, parentE []int32
	done             []bool
	ver              []int32
	cur              int32

	comp    []int32
	compVer []int32
	compCur int32

	pq oHeap
}

// NewOracle creates an oracle for g.
func NewOracle(g *grid.Graph) *Oracle {
	n := g.NumVertices()
	return &Oracle{
		g:       g,
		dist:    make([]float64, n),
		parentV: make([]int32, n),
		parentE: make([]int32, n),
		done:    make([]bool, n),
		ver:     make([]int32, n),
		comp:    make([]int32, n),
		compVer: make([]int32, n),
	}
}

func (o *Oracle) compOf(v int) int32 {
	if o.compVer[v] != o.compCur {
		return -1
	}
	return o.comp[v]
}

func (o *Oracle) setComp(v int, c int32) {
	o.comp[v] = c
	o.compVer[v] = o.compCur
}

// Tree runs Algorithm 1 under the given edge costs: starting from the
// terminal components, repeatedly connect the grown component to the
// nearest other component by a minimum-cost path (paper Algorithm 1,
// guarantee 2−2/|W|). Each terminal is a set of vertex ids joined at
// zero cost (the clique K(V_p) of §2.1). cost(e) must be ≥ 0; a negative
// cost marks the edge unusable. ok is false when the terminals are not
// connected under finite costs.
func (o *Oracle) Tree(cost func(e int) float64, terminals [][]int) (edges []int, ok bool) {
	if len(terminals) <= 1 {
		return nil, true
	}
	// Terminals sharing a vertex are already connected (pins in the same
	// tile); merge them first so the component count is right.
	o.compCur++
	par := make([]int, len(terminals))
	for i := range par {
		par[i] = i
	}
	var tfind func(int) int
	tfind = func(x int) int {
		for par[x] != x {
			par[x] = par[par[x]]
			x = par[x]
		}
		return x
	}
	for ti, vs := range terminals {
		for _, v := range vs {
			if c := o.compOf(v); c >= 0 {
				par[tfind(ti)] = tfind(int(c))
			} else {
				o.setComp(v, int32(ti))
			}
		}
	}
	// Rebuild merged components with dense ids.
	rootID := map[int]int{}
	var merged [][]int
	for ti, vs := range terminals {
		r := tfind(ti)
		id, ok := rootID[r]
		if !ok {
			id = len(merged)
			rootID[r] = id
			merged = append(merged, nil)
		}
		merged[id] = append(merged[id], vs...)
	}
	o.compCur++
	for ci, vs := range merged {
		for _, v := range vs {
			o.setComp(v, int32(ci))
		}
	}
	if len(merged) <= 1 {
		return nil, true
	}
	terminals = merged

	reached := make([]bool, len(terminals))
	reached[0] = true

	// group is the vertex set K of Algorithm 1 (grown from terminal 0).
	group := append([]int(nil), terminals[0]...)

	var treeEdges []int
	for remaining := len(terminals) - 1; remaining > 0; remaining-- {
		last, ok := o.dijkstra(cost, group, reached)
		if !ok {
			return nil, false
		}
		// Absorb the reached component and the path.
		ci := int(o.compOf(last))
		reached[ci] = true
		group = append(group, terminals[ci]...)
		for v := int32(last); ; {
			group = append(group, int(v))
			pv := o.parentV[v]
			if pv < 0 {
				break
			}
			treeEdges = append(treeEdges, int(o.parentE[v]))
			v = pv
		}
	}
	return treeEdges, true
}

// dijkstra searches from the group vertices to the nearest vertex of a
// not-yet-reached component; returns that vertex.
func (o *Oracle) dijkstra(cost func(e int) float64, group []int, reached []bool) (int, bool) {
	o.cur++
	o.pq = o.pq[:0]
	touch := func(v int) {
		if o.ver[v] != o.cur {
			o.ver[v] = o.cur
			o.dist[v] = inf64
			o.done[v] = false
			o.parentV[v] = -1
		}
	}
	for _, v := range group {
		touch(v)
		if o.dist[v] != 0 {
			o.dist[v] = 0
			heap.Push(&o.pq, oItem{0, int32(v)})
		}
	}
	for o.pq.Len() > 0 {
		it := heap.Pop(&o.pq).(oItem)
		v := int(it.v)
		if o.done[v] || it.d > o.dist[v] {
			continue
		}
		o.done[v] = true
		if c := o.compOf(v); c >= 0 && !reached[c] {
			return v, true
		}
		o.g.Neighbors(v, func(e, w int) {
			c := cost(e)
			if c < 0 {
				return
			}
			touch(w)
			if o.done[w] {
				return
			}
			nd := it.d + c
			if nd < o.dist[w] {
				o.dist[w] = nd
				o.parentV[w] = int32(v)
				o.parentE[w] = int32(e)
				heap.Push(&o.pq, oItem{nd, int32(w)})
			}
		})
	}
	return -1, false
}

const inf64 = 1e30

type oItem struct {
	d float64
	v int32
}

type oHeap []oItem

func (h oHeap) Len() int            { return len(h) }
func (h oHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h oHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oHeap) Push(x interface{}) { *h = append(*h, x.(oItem)) }
func (h *oHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
