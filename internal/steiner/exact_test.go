package steiner

import (
	"math"
	"math/rand"
	"testing"

	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
)

// TestExactDifferential cross-checks the exact oracle against the
// independent reference solver and Path Composition on seeded random
// instances (≤9 terminal groups, random costs, blocked edges,
// multi-vertex and shared-vertex groups).
func TestExactDifferential(t *testing.T) {
	if err := RunDifferential(1, 400); err != nil {
		t.Fatal(err)
	}
}

// TestExactPlanarMatchesRSMT pins the exact oracle to the router-
// independent Dreyfus–Wagner RSMT baseline: on a 2-layer H+V grid with
// free vias and unconstrained wires, the optimal grid Steiner wire
// length equals the planar RSMT of the tile points.
func TestExactPlanarMatchesRSMT(t *testing.T) {
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 1200, 1200), 100, 100, dirs)
	wireOnly := func(e int) float64 { return float64(g.EdgeLength(e)) }
	ex := NewExact(g, 0)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		k := 2 + rng.Intn(8)
		terms := make([][]int, k)
		pts := make([]geom.Point, k)
		for i := range terms {
			tx, ty := rng.Intn(g.NX), rng.Intn(g.NY)
			terms[i] = []int{g.Vertex(tx, ty, rng.Intn(2))}
			pts[i] = geom.Pt(tx*100, ty*100)
		}
		edges, isExact, ok := ex.Tree(wireOnly, terms)
		if !ok || !isExact {
			t.Fatalf("trial %d: ok=%v exact=%v", trial, ok, isExact)
		}
		if !ValidateTree(g, edges, terms) {
			t.Fatalf("trial %d: invalid tree", trial)
		}
		want := RSMTLength(pts)
		if got := int64(TreeLength(g, edges)); got != want {
			t.Fatalf("trial %d: grid Steiner length %d, RSMT %d (pts %v)", trial, got, want, pts)
		}
	}
}

// TestExactDegreeCapFallback checks that nets above the configured cap
// fall back to Path Composition (same tree, exact=false) and that the
// cap applies to merged groups, not the raw pin-group count.
func TestExactDegreeCapFallback(t *testing.T) {
	g := testGrid()
	cost := unitCost(g)
	var terms [][]int
	for i := 0; i < 5; i++ {
		terms = append(terms, []int{g.Vertex(i*2, 0, 0)}, []int{g.Vertex(i*2, 9, 1)})
	}
	ex := NewExact(g, 4)
	edges, isExact, ok := ex.Tree(cost, terms)
	if !ok || isExact {
		t.Fatalf("ok=%v exact=%v, want fallback", ok, isExact)
	}
	pcEdges, _ := PathComposition(g, cost, terms)
	if TreeCost(cost, edges) != TreeCost(cost, pcEdges) {
		t.Fatal("fallback tree differs from Path Composition")
	}

	// Ten raw groups that merge down to two stay exact under the cap.
	shared := g.Vertex(5, 5, 0)
	var dup [][]int
	for i := 0; i < 9; i++ {
		dup = append(dup, []int{shared})
	}
	dup = append(dup, []int{g.Vertex(0, 0, 0)})
	_, isExact, ok = ex.Tree(cost, dup)
	if !ok || !isExact {
		t.Fatalf("merged instance: ok=%v exact=%v, want exact", ok, isExact)
	}
}

// TestOracleEpochWraparound pins the int32 stamp wraparound guard: the
// counters sit at MaxInt32 with every stamp array poisoned to collide
// with the post-wrap epoch values. Without the hard clear, the stale
// dist/done/comp entries read as current and the oracle returns garbage.
func TestOracleEpochWraparound(t *testing.T) {
	g := testGrid()
	o := NewOracle(g)
	terms := [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(5, 0, 0)}, {g.Vertex(0, 5, 1)}}

	for wrapAt := int32(0); wrapAt < 4; wrapAt++ {
		// A Tree call bumps the dijkstra epoch once per component and the
		// comp epoch twice; vary the distance to MaxInt32 so the wrap
		// lands on different internal bumps.
		o.cur = math.MaxInt32 - wrapAt
		o.compCur = math.MaxInt32 - wrapAt
		for i := range o.ver {
			o.ver[i] = wrapAt + 1 // collides with post-wrap epochs 1..4
			o.dist[i] = 0
			o.done[i] = true
			o.parentV[i] = -1
			o.compVer[i] = wrapAt + 1
			o.comp[i] = 0
		}
		edges, ok := o.Tree(unitCost(g), terms)
		if !ok || !ValidateTree(g, edges, terms) {
			t.Fatalf("wrapAt=%d: invalid tree after wraparound", wrapAt)
		}
		if got := TreeLength(g, edges); got != 1000 {
			t.Fatalf("wrapAt=%d: length %d, want 1000", wrapAt, got)
		}
		// Tree bumps each counter twice here, so the wrap fires for
		// wrapAt ≤ 1 and the rest exercise the approach to the boundary.
		if wrapAt <= 1 && o.cur >= math.MaxInt32-wrapAt {
			t.Fatalf("wrapAt=%d: epoch %d did not restart", wrapAt, o.cur)
		}
	}
}

// TestExactEpochWraparound does the same for the exact oracle's
// call-wide epoch (cost cache, subset states, settled lists).
func TestExactEpochWraparound(t *testing.T) {
	g := testGrid()
	ex := NewExact(g, 0)
	cost := unitCost(g)
	terms := [][]int{
		{g.Vertex(0, 0, 0)}, {g.Vertex(5, 0, 0)},
		{g.Vertex(0, 5, 1)}, {g.Vertex(7, 7, 1)},
	}
	want, refOK := ReferenceTreeCost(g, cost, terms)
	if !refOK {
		t.Fatal("reference infeasible")
	}
	// Warm up so the lazy subset arrays exist, then poison them.
	if _, _, ok := ex.Tree(cost, terms); !ok {
		t.Fatal("warmup failed")
	}
	ex.cur = math.MaxInt32
	poison := func(ver []int32) {
		for i := range ver {
			ver[i] = 1
		}
	}
	for _, s := range ex.sub {
		if s != nil {
			poison(s.ver)
			for i := range s.dist {
				s.dist[i] = 0
				s.done[i] = true
				s.parentEdge[i] = -2
			}
		}
	}
	for _, tv := range ex.tver {
		poison(tv)
	}
	poison(ex.slVer)
	poison(ex.costVer)
	poison(ex.edgeVer)
	for i := range ex.costs {
		ex.costs[i] = 0
	}
	edges, isExact, ok := ex.Tree(cost, terms)
	if !ok || !isExact || !ValidateTree(g, edges, terms) {
		t.Fatalf("ok=%v exact=%v after wraparound", ok, isExact)
	}
	if got := TreeCost(cost, edges); got != want {
		t.Fatalf("cost %.1f after wraparound, want %.1f", got, want)
	}
	if ex.cur >= math.MaxInt32 {
		t.Fatal("epoch did not restart")
	}
}

// TestOracleSteadyStateAllocs pins the pooled-scratch contract: after
// warmup a Tree call allocates only the returned edge slice. The same
// budgets back the make alloc-guard gate.
func TestOracleSteadyStateAllocs(t *testing.T) {
	g := testGrid()
	cost := unitCost(g)
	terms := [][]int{
		{g.Vertex(0, 0, 0)}, {g.Vertex(9, 2, 0)},
		{g.Vertex(3, 9, 1)}, {g.Vertex(7, 5, 1)}, {g.Vertex(1, 6, 0)},
	}

	o := NewOracle(g)
	for i := 0; i < 3; i++ {
		if _, ok := o.Tree(cost, terms); !ok {
			t.Fatal("warmup failed")
		}
	}
	if avg := testing.AllocsPerRun(50, func() {
		o.Tree(cost, terms)
	}); avg > 1 {
		t.Fatalf("Oracle.Tree steady state: %.1f allocs/call, budget 1", avg)
	}

	ex := NewExact(g, 0)
	for i := 0; i < 3; i++ {
		if _, _, ok := ex.Tree(cost, terms); !ok {
			t.Fatal("warmup failed")
		}
	}
	if avg := testing.AllocsPerRun(50, func() {
		ex.Tree(cost, terms)
	}); avg > 3 {
		t.Fatalf("Exact.Tree steady state: %.1f allocs/call, budget 3", avg)
	}
}

func BenchmarkExactOracle(b *testing.B) {
	g := testGrid()
	cost := unitCost(g)
	rng := rand.New(rand.NewSource(3))
	terms := make([][]int, 7)
	for i := range terms {
		terms[i] = []int{g.Vertex(rng.Intn(g.NX), rng.Intn(g.NY), rng.Intn(g.NZ))}
	}
	ex := NewExact(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := ex.Tree(cost, terms); !ok {
			b.Fatal("no tree")
		}
	}
}
