package steiner

import (
	"container/heap"
	"sort"

	"bonnroute/internal/geom"
)

// RSMTLength returns the length of a rectilinear Steiner minimum tree of
// the points: exact via Dreyfus–Wagner over the Hanan grid for up to 9
// points (the regime where the paper uses FLUTE's exact tables), and an
// iterated 1-Steiner heuristic beyond. The result is the router-
// independent baseline used for scenic-net classification and Table II.
func RSMTLength(points []geom.Point) int64 {
	points = dedupPoints(points)
	switch len(points) {
	case 0, 1:
		return 0
	case 2:
		return int64(points[0].Dist1(points[1]))
	case 3:
		// For 3 terminals the RSMT is the star through the median point:
		// length = HPWL.
		return hpwl(points)
	}
	if len(points) <= 9 {
		return dreyfusWagner(points)
	}
	return oneSteiner(points)
}

func dedupPoints(points []geom.Point) []geom.Point {
	seen := make(map[geom.Point]bool, len(points))
	out := points[:0:0]
	for _, p := range points {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func hpwl(points []geom.Point) int64 {
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points[1:] {
		minX, maxX = min(minX, p.X), max(maxX, p.X)
		minY, maxY = min(minY, p.Y), max(maxY, p.Y)
	}
	return int64(maxX-minX) + int64(maxY-minY)
}

// hananGrid returns the Hanan grid nodes and the index of each terminal.
func hananGrid(points []geom.Point) (nodes []geom.Point, xidx map[geom.Point]int) {
	var xs, ys []int
	for _, p := range points {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	sort.Ints(xs)
	sort.Ints(ys)
	xs = dedupSortedInts(xs)
	ys = dedupSortedInts(ys)
	xidx = map[geom.Point]int{}
	for _, y := range ys {
		for _, x := range xs {
			xidx[geom.Pt(x, y)] = len(nodes)
			nodes = append(nodes, geom.Pt(x, y))
		}
	}
	return nodes, xidx
}

func dedupSortedInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// dreyfusWagner computes the exact Steiner minimum tree length on the
// Hanan grid (which contains an optimal RSMT by Hanan's theorem).
func dreyfusWagner(points []geom.Point) int64 {
	nodes, idx := hananGrid(points)
	n := len(nodes)
	// All-pairs shortest paths on the Hanan grid = ℓ1 distance (the grid
	// is complete enough that every rectilinear path exists).
	dist := func(a, b int) int64 { return int64(nodes[a].Dist1(nodes[b])) }

	k := len(points)
	terms := make([]int, k)
	for i, p := range points {
		terms[i] = idx[p]
	}
	// dp[S][v]: minimum tree connecting terminal subset S (of terms[1:])
	// plus node v.
	full := 1 << (k - 1)
	dp := make([][]int64, full)
	const inf = int64(1) << 60
	for S := 1; S < full; S++ {
		dp[S] = make([]int64, n)
		for v := range dp[S] {
			dp[S][v] = inf
		}
		if S&(S-1) == 0 {
			// Singleton subset {t}.
			t := terms[1+bitIndex(S)]
			for v := 0; v < n; v++ {
				dp[S][v] = dist(v, t)
			}
			continue
		}
		// Merge step.
		for sub := (S - 1) & S; sub > 0; sub = (sub - 1) & S {
			rest := S &^ sub
			if sub > rest {
				continue // each split once
			}
			for v := 0; v < n; v++ {
				if c := dp[sub][v] + dp[rest][v]; c < dp[S][v] {
					dp[S][v] = c
				}
			}
		}
		// Dijkstra relaxation over the metric closure (ℓ1 distances).
		relaxMetric(dp[S], nodes)
	}
	return dp[full-1][terms[0]]
}

func bitIndex(s int) int {
	i := 0
	for s > 1 {
		s >>= 1
		i++
	}
	return i
}

// relaxMetric performs the Dijkstra step of Dreyfus–Wagner using the ℓ1
// metric between Hanan nodes.
func relaxMetric(d []int64, nodes []geom.Point) {
	type item struct {
		d int64
		v int
	}
	h := &dwHeap{}
	for v, dv := range d {
		if dv < int64(1)<<59 {
			heap.Push(h, dwItem{dv, v})
		}
	}
	done := make([]bool, len(d))
	for h.Len() > 0 {
		it := heap.Pop(h).(dwItem)
		if done[it.v] || it.d > d[it.v] {
			continue
		}
		done[it.v] = true
		for w := range d {
			if done[w] {
				continue
			}
			nd := it.d + int64(nodes[it.v].Dist1(nodes[w]))
			if nd < d[w] {
				d[w] = nd
				heap.Push(h, dwItem{nd, w})
			}
		}
	}
	_ = item{}
}

type dwItem struct {
	d int64
	v int
}

type dwHeap []dwItem

func (h dwHeap) Len() int            { return len(h) }
func (h dwHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h dwHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dwHeap) Push(x interface{}) { *h = append(*h, x.(dwItem)) }
func (h *dwHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// mstLength is Prim's algorithm on the ℓ1 complete graph.
func mstLength(points []geom.Point) int64 {
	n := len(points)
	if n <= 1 {
		return 0
	}
	inTree := make([]bool, n)
	best := make([]int64, n)
	for i := range best {
		best[i] = int64(1) << 60
	}
	best[0] = 0
	var total int64
	for iter := 0; iter < n; iter++ {
		u := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (u < 0 || best[v] < best[u]) {
				u = v
			}
		}
		inTree[u] = true
		total += best[u]
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := int64(points[u].Dist1(points[v])); d < best[v] {
					best[v] = d
				}
			}
		}
	}
	return total
}

// oneSteiner is the iterated 1-Steiner heuristic (Kahng–Robins): add the
// Hanan point that reduces MST length most, until no improvement.
func oneSteiner(points []geom.Point) int64 {
	cur := append([]geom.Point(nil), points...)
	curLen := mstLength(cur)
	// Candidate pool: the Hanan points of the original terminals.
	nodes, _ := hananGrid(points)
	for iter := 0; iter < len(points); iter++ {
		bestLen := curLen
		bestPt := geom.Point{}
		found := false
		for _, h := range nodes {
			l := mstLength(append(cur, h))
			if l < bestLen {
				bestLen = l
				bestPt = h
				found = true
			}
		}
		if !found {
			break
		}
		cur = append(cur, bestPt)
		curLen = bestLen
	}
	return curLen
}
