package steiner

import (
	"math"

	"bonnroute/internal/grid"
)

// DefaultExactMax is the net-degree threshold under which the resource
// sharing solver answers oracle calls with the exact goal-oriented
// algorithm instead of Path Composition: ≤ 9 terminals, the regime
// where the Dreyfus–Wagner baseline (rsmt.go) already certifies optima
// and where the 2^(k−1) subset lattice stays tiny.
const DefaultExactMax = 9

// exactHardCap bounds the degree the exact oracle will ever attempt:
// the subset lattice (and the per-subset state arrays) grows as
// 2^(k−1)·|V|, so past 12 terminals the memory and label volume stop
// paying for the optimality. Higher requests silently fall back to
// Path Composition per call.
const exactHardCap = 12

// Exact is the exact goal-oriented Steiner oracle after "Dijkstra meets
// Steiner" (Hougardy, Silvanus, Vygen): a label-setting Dijkstra over
// (vertex, terminal-subset) states. A label ℓ(v, I) is the cost of a
// cheapest tree spanning {v} ∪ I for a subset I of the non-root
// terminal groups; labels grow by edge relaxation (ℓ(w, I) ≤ ℓ(v, I) +
// c(vw)) and by merging two disjoint settled labels at the same vertex
// (ℓ(v, I ∪ J) ≤ ℓ(v, I) + ℓ(v, J)); the first settled label (r, full)
// at a root-group vertex r is a Steiner minimum tree. The search runs
// on the contracted graph — each terminal group is a zero-cost clique
// (§2.1), so labels jump between group members for free and the result
// may be a grid forest stitched together through a group, matching
// Path Composition's (and ValidateTree's) semantics.
//
// Goal orientation comes from an admissible future cost π(v, I) =
// max over the not-yet-spanned terminal groups t of d(v, t): any
// completion of (v, I) must connect v to every remaining group, so its
// cost is at least each d(v, t). The distances are the priced-graph
// analogue of pathsearch's π_H ℓ1+via bound — on a uniform-cost grid
// they coincide with it, but oracle edge costs are arbitrary resource
// prices, so the bound is computed exactly: one truncated backward
// Dijkstra per terminal group, stopped at the Path Composition upper
// bound U (an unsettled vertex provably has d > U, so U itself is a
// valid — and for pruning purposes perfect — stand-in). Because every
// d(v, t) is an exact distance function, π is consistent, keys
// ℓ + π are monotone along the search, and states settle exactly once.
//
// Every call first runs Path Composition on the same (memoized) costs:
// its tree supplies U for pruning and truncation, and is the fallback
// whenever the exact search declines (degree above the cap, or — float
// paranoia — a dearer result), which is what makes the oracle's
// "never costlier than Path Composition" contract unconditional.
//
// Like Oracle, an Exact is not safe for concurrent use; the parallel
// resource sharing solver gives each worker its own. All state arrays
// are epoch-stamped and pooled across calls, with the same int32
// wraparound hard-clear Oracle uses.
type Exact struct {
	g        *grid.Graph
	pc       *Oracle
	maxTerms int

	cur int32

	// Memoized edge costs for the current call (PC, the backward
	// Dijkstras and the main search all price each edge once).
	costs   []float64
	costVer []int32

	// Truncated backward distances per terminal group: tver == cur
	// marks a touched entry, tdone a settled one (only settled entries
	// are valid lower bounds; everything else reads as the bound U).
	tdist [][]float64
	tver  [][]int32
	tdone [][]bool

	// Per-subset state, allocated lazily on first touch and pooled.
	sub []*exSub

	// Settled subsets per vertex (the merge partners).
	sl    [][]uint16
	slVer []int32

	// Edge dedup stamps for tree reconstruction.
	edgeVer []int32

	hq     exHeap
	outBuf []int
	stk    []exFrame
}

// exSub is the per-subset slice of the (vertex, subset) state space.
type exSub struct {
	dist []float64
	ver  []int32
	done []bool
	// parentEdge ≥ 0 is an edge relaxation (predecessor = the other
	// endpoint, same subset); −1 an initial terminal label; −2 a merge
	// of (v, parentSub) and (v, subset^parentSub); −3 a zero-cost
	// intra-group clique jump from (parentV, subset).
	parentEdge []int32
	parentSub  []uint16
	parentV    []int32
}

func (s *exSub) touch(v int, cur int32) {
	if s.ver[v] != cur {
		s.ver[v] = cur
		s.dist[v] = inf64
		s.done[v] = false
		s.parentEdge[v] = -1
	}
}

type exFrame struct {
	v   int32
	sub uint16
}

// NewExact creates an exact oracle for g handling nets of up to
// maxTerms terminal groups (0 or negative selects DefaultExactMax;
// values above the hard cap are clamped). Calls beyond the limit fall
// back to Path Composition.
func NewExact(g *grid.Graph, maxTerms int) *Exact {
	if maxTerms <= 0 {
		maxTerms = DefaultExactMax
	}
	if maxTerms > exactHardCap {
		maxTerms = exactHardCap
	}
	if maxTerms < 2 {
		maxTerms = 2
	}
	E := g.NumEdges()
	return &Exact{
		g:        g,
		pc:       NewOracle(g),
		maxTerms: maxTerms,
		costs:    make([]float64, E),
		costVer:  make([]int32, E),
		edgeVer:  make([]int32, E),
		sl:       make([][]uint16, g.NumVertices()),
		slVer:    make([]int32, g.NumVertices()),
	}
}

// MaxTerminals reports the configured exact-degree cap.
func (x *Exact) MaxTerminals() int { return x.maxTerms }

// nextEpoch advances the oracle-wide epoch, hard-clearing every stamp
// array on int32 wraparound (see nextEpoch in oracle.go for why the
// clear matters in a long-lived daemon).
func (x *Exact) nextEpoch() {
	if x.cur == math.MaxInt32 {
		clear32 := func(s []int32) {
			for i := range s {
				s[i] = 0
			}
		}
		for _, s := range x.sub {
			if s != nil {
				clear32(s.ver)
			}
		}
		for _, tv := range x.tver {
			clear32(tv)
		}
		clear32(x.slVer)
		clear32(x.costVer)
		clear32(x.edgeVer)
		x.cur = 0
	}
	x.cur++
}

// cost memoizes the caller's edge-cost function for the current call.
func (x *Exact) cost(e int, raw func(int) float64) float64 {
	if x.costVer[e] != x.cur {
		x.costVer[e] = x.cur
		x.costs[e] = raw(e)
	}
	return x.costs[e]
}

func (x *Exact) touchSub(I int) *exSub {
	s := x.sub[I]
	if s == nil {
		n := x.g.NumVertices()
		s = &exSub{
			dist:       make([]float64, n),
			ver:        make([]int32, n),
			done:       make([]bool, n),
			parentEdge: make([]int32, n),
			parentSub:  make([]uint16, n),
			parentV:    make([]int32, n),
		}
		x.sub[I] = s
	}
	return s
}

// groupDist runs one truncated multi-source backward Dijkstra from the
// group's vertex set, settling every vertex with d ≤ bound. Distances
// are in the contracted graph: a terminal group is a zero-cost clique
// (§2.1), so settling any member relaxes all of them for free.
func (x *Exact) groupDist(t int, sources []int, merged [][]int, cost func(int) float64, bound float64) {
	dist, ver, done := x.tdist[t], x.tver[t], x.tdone[t]
	x.hq = x.hq[:0]
	for _, v := range sources {
		if ver[v] != x.cur || dist[v] != 0 {
			ver[v] = x.cur
			dist[v] = 0
			done[v] = false
			x.hq.push(exItem{0, 0, int32(v), 0})
		}
	}
	for {
		it, nonempty := x.hq.pop()
		if !nonempty {
			break
		}
		v := int(it.v)
		if done[v] || it.l > dist[v] {
			continue
		}
		if it.l > bound {
			break
		}
		done[v] = true
		relax := func(w int, nd float64) {
			if ver[w] != x.cur {
				ver[w] = x.cur
				dist[w] = inf64
				done[w] = false
			}
			if done[w] || nd >= dist[w] {
				return
			}
			dist[w] = nd
			x.hq.push(exItem{nd, nd, int32(w), 0})
		}
		if c := x.pc.compOf(v); c >= 0 {
			for _, w := range merged[c] {
				relax(w, it.l)
			}
		}
		x.g.Neighbors(v, func(e, w int) {
			if c := cost(e); c >= 0 {
				relax(w, it.l+c)
			}
		})
	}
}

// lb is the admissible lower bound on d(v, group t): the settled
// backward distance, or the truncation bound for anything farther.
func (x *Exact) lb(t, v int, bound float64) float64 {
	if x.tver[t][v] == x.cur && x.tdone[t][v] {
		return x.tdist[t][v]
	}
	return bound
}

// pi is the future cost of state (v, I): the completion must still
// connect v to the root group and every group whose bit is clear in I.
func (x *Exact) pi(v, I, k int, bound float64) float64 {
	p := x.lb(0, v, bound)
	for j := 1; j < k; j++ {
		if I&(1<<(j-1)) == 0 {
			if d := x.lb(j, v, bound); d > p {
				p = d
			}
		}
	}
	return p
}

// Tree computes a minimum-cost Steiner tree connecting the terminal
// groups under the given edge costs (semantics as Oracle.Tree: groups
// are zero-cost vertex sets, negative cost marks an edge unusable).
// exact reports whether the returned tree is certified optimal; when
// false (degree above the cap, or the guarded float fallback) the tree
// is the Path Composition answer. In either case the result never
// costs more than Path Composition's on the same costs.
func (x *Exact) Tree(rawCost func(e int) float64, terminals [][]int) (edges []int, exact, ok bool) {
	if len(terminals) <= 1 {
		return nil, true, true
	}
	x.nextEpoch()
	cost := func(e int) float64 { return x.cost(e, rawCost) }

	// Path Composition first: upper bound, fallback, and the terminal
	// merge (x.pc.merged / compOf stay valid for the whole call).
	pcEdges, pcOK := x.pc.Tree(cost, terminals)
	if !pcOK {
		return nil, false, false
	}
	merged := x.pc.merged
	k := len(merged)
	if k <= 1 {
		return nil, true, true
	}
	if k > x.maxTerms {
		return pcEdges, false, true
	}

	var ub float64
	for _, e := range pcEdges {
		ub += cost(e)
	}
	// Everything with key beyond the Path Composition cost is pruned:
	// the optimum costs at most ub, and π is admissible, so no label of
	// an optimal decomposition exceeds it. The epsilon absorbs float
	// accumulation differences between the two searches.
	bound := ub + 1e-9 + math.Abs(ub)*1e-12

	// Goal-oriented lower bounds: one truncated backward Dijkstra per
	// terminal group (root included — it steers the endgame).
	for len(x.tdist) < k {
		n := x.g.NumVertices()
		x.tdist = append(x.tdist, make([]float64, n))
		x.tver = append(x.tver, make([]int32, n))
		x.tdone = append(x.tdone, make([]bool, n))
	}
	for t := 0; t < k; t++ {
		x.groupDist(t, merged[t], merged, cost, bound)
	}

	full := 1<<(k-1) - 1
	for len(x.sub) <= full {
		x.sub = append(x.sub, nil)
	}

	// Initial labels: ℓ(v, {j}) = 0 for every vertex of each non-root
	// group j.
	x.hq = x.hq[:0]
	for j := 1; j < k; j++ {
		I := 1 << (j - 1)
		s := x.touchSub(I)
		for _, v := range merged[j] {
			s.touch(v, x.cur)
			if s.dist[v] != 0 {
				s.dist[v] = 0
				x.hq.push(exItem{x.pi(v, I, k, bound), 0, int32(v), uint16(I)})
			}
		}
	}

	goalV := int32(-1)
	var goalCost float64
	for {
		it, nonempty := x.hq.pop()
		if !nonempty {
			break
		}
		I, v := int(it.sub), int(it.v)
		s := x.sub[I]
		if s.ver[v] != x.cur || s.done[v] || it.l > s.dist[v] {
			continue
		}
		s.done[v] = true
		if I == full && x.pc.compOf(v) == 0 {
			goalV, goalCost = it.v, it.l
			break
		}
		// Merge with every disjoint subset already settled at v.
		if x.slVer[v] != x.cur {
			x.slVer[v] = x.cur
			x.sl[v] = x.sl[v][:0]
		}
		for _, J := range x.sl[v] {
			if int(J)&I != 0 {
				continue
			}
			l2 := it.l + x.sub[J].dist[v]
			S := I | int(J)
			ss := x.touchSub(S)
			ss.touch(v, x.cur)
			if ss.done[v] || l2 >= ss.dist[v] {
				continue
			}
			if key := l2 + x.pi(v, S, k, bound); key <= bound {
				ss.dist[v] = l2
				ss.parentEdge[v] = -2
				ss.parentSub[v] = J
				x.hq.push(exItem{key, l2, it.v, uint16(S)})
			}
		}
		x.sl[v] = append(x.sl[v], uint16(I))
		// Zero-cost clique jumps: terminal groups are contracted
		// super-vertices, so a settled label at one member extends to
		// every member for free (this is what lets the tree be a grid
		// forest stitched together through a group, exactly as Path
		// Composition's group absorption allows).
		if c := x.pc.compOf(v); c >= 0 {
			for _, w := range merged[c] {
				s.touch(w, x.cur)
				if s.done[w] || it.l >= s.dist[w] {
					continue
				}
				if key := it.l + x.pi(w, I, k, bound); key <= bound {
					s.dist[w] = it.l
					s.parentEdge[w] = -3
					s.parentV[w] = it.v
					x.hq.push(exItem{key, it.l, int32(w), uint16(I)})
				}
			}
		}
		// Edge relaxations within the same subset.
		x.g.Neighbors(v, func(e, w int) {
			c := cost(e)
			if c < 0 {
				return
			}
			l2 := it.l + c
			s.touch(w, x.cur)
			if s.done[w] || l2 >= s.dist[w] {
				return
			}
			if key := l2 + x.pi(w, I, k, bound); key <= bound {
				s.dist[w] = l2
				s.parentEdge[w] = int32(e)
				x.hq.push(exItem{key, l2, int32(w), uint16(I)})
			}
		})
	}

	// The optimum never exceeds the Path Composition bound, so the goal
	// is always reachable; these fallbacks only guard float pathology.
	if goalV < 0 || goalCost > ub+1e-9 {
		return pcEdges, false, true
	}

	// Reconstruct by unwinding parent records; the edge stamps dedup
	// shared segments (possible only through zero-cost edges, where the
	// dedup can only cheapen the tree).
	out := x.outBuf[:0]
	stack := append(x.stk[:0], exFrame{goalV, uint16(full)})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s := x.sub[f.sub]
		switch pe := s.parentEdge[f.v]; {
		case pe == -1:
			// Initial terminal label.
		case pe == -2:
			J := s.parentSub[f.v]
			stack = append(stack, exFrame{f.v, J}, exFrame{f.v, f.sub ^ J})
		case pe == -3:
			// Clique jump: no grid edge, continue at the source member.
			stack = append(stack, exFrame{s.parentV[f.v], f.sub})
		default:
			e := int(pe)
			if x.edgeVer[e] != x.cur {
				x.edgeVer[e] = x.cur
				out = append(out, e)
			}
			a, b := x.g.EdgeEndpoints(e)
			w := int32(a)
			if w == f.v {
				w = int32(b)
			}
			stack = append(stack, exFrame{w, f.sub})
		}
	}
	x.outBuf, x.stk = out, stack
	return append([]int(nil), out...), true, true
}

// exItem is one exact-search queue entry: key = ℓ + π orders the heap,
// l carries ℓ for the stale-entry check. Ties break on (subset,
// vertex) so the settle order — and every tree — is deterministic.
type exItem struct {
	key float64
	l   float64
	v   int32
	sub uint16
}

func (a exItem) less(b exItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.sub != b.sub {
		return a.sub < b.sub
	}
	return a.v < b.v
}

// exHeap is the typed binary min-heap of the exact search (no
// container/heap boxing, as oHeap).
type exHeap []exItem

func (h *exHeap) push(it exItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *exHeap) pop() (exItem, bool) {
	s := *h
	if len(s) == 0 {
		return exItem{}, false
	}
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l].less(s[small]) {
			small = l
		}
		if r < n && s[r].less(s[small]) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top, true
}
