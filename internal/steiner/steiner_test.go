package steiner

import (
	"math/rand"
	"testing"

	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
)

func testGrid() *grid.Graph {
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	return grid.New(geom.R(0, 0, 1000, 1000), 100, 100, dirs)
}

func unitCost(g *grid.Graph) func(int) float64 {
	return func(e int) float64 {
		if g.IsVia(e) {
			return 1
		}
		return float64(g.EdgeLength(e))
	}
}

func TestPathCompositionTwoTerminals(t *testing.T) {
	g := testGrid()
	terms := [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(5, 0, 0)}}
	edges, ok := PathComposition(g, unitCost(g), terms)
	if !ok {
		t.Fatal("no tree")
	}
	if !ValidateTree(g, edges, terms) {
		t.Fatal("invalid tree")
	}
	if got := TreeLength(g, edges); got != 500 {
		t.Fatalf("length = %d, want 500", got)
	}
	// Optimal for 2 terminals (Algorithm 1 is exact there).
}

func TestPathCompositionCrossLayer(t *testing.T) {
	g := testGrid()
	terms := [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(3, 4, 1)}}
	edges, ok := PathComposition(g, unitCost(g), terms)
	if !ok || !ValidateTree(g, edges, terms) {
		t.Fatal("no valid tree")
	}
	// Must contain at least one via (layers differ).
	if CountVias(g, edges) == 0 {
		t.Fatal("no vias in cross-layer tree")
	}
	// Preferred directions force: 300 horizontal on z0, 400 vertical on
	// z1, ≥1 via.
	if got := TreeLength(g, edges); got != 700 {
		t.Fatalf("length = %d, want 700", got)
	}
}

func TestPathCompositionMultiTerminal(t *testing.T) {
	g := testGrid()
	terms := [][]int{
		{g.Vertex(0, 0, 0)},
		{g.Vertex(9, 0, 0)},
		{g.Vertex(5, 5, 0)},
	}
	edges, ok := PathComposition(g, unitCost(g), terms)
	if !ok || !ValidateTree(g, edges, terms) {
		t.Fatal("no valid tree")
	}
	length := TreeLength(g, edges)
	// The Steiner tree must be no longer than star wiring and at least
	// the HPWL-ish bound.
	if length > 1900 || length < 1400 {
		t.Fatalf("length = %d out of plausible range", length)
	}
}

func TestPathCompositionVertexSets(t *testing.T) {
	g := testGrid()
	// Terminal 0 occupies a whole row segment (a pre-routed component):
	// the tree may connect anywhere on it at zero cost.
	var comp0 []int
	for tx := 0; tx < 5; tx++ {
		comp0 = append(comp0, g.Vertex(tx, 0, 0))
	}
	terms := [][]int{comp0, {g.Vertex(4, 3, 0)}}
	edges, ok := PathComposition(g, unitCost(g), terms)
	if !ok || !ValidateTree(g, edges, terms) {
		t.Fatal("no valid tree")
	}
	// Best connection: from (4,0) up: 3 vertical edges on layer 1 + 2
	// vias = 302.
	if got := TreeLength(g, edges); got != 300 {
		t.Fatalf("wire length = %d, want 300", got)
	}
}

func TestPathCompositionBlockedEdges(t *testing.T) {
	g := testGrid()
	cost := func(e int) float64 {
		// Block all vias except at tile (9,0): the route must go the long
		// way along row 0 to climb layers there.
		if g.IsVia(e) {
			a, _ := g.EdgeEndpoints(e)
			tx, ty, _ := g.VertexCoords(a)
			if tx != 9 || ty != 0 {
				return -1
			}
			return 1
		}
		return float64(g.EdgeLength(e))
	}
	terms := [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(9, 2, 1)}}
	edges, ok := PathComposition(g, cost, terms)
	if !ok {
		t.Fatal("no tree despite the (9,0) via")
	}
	foundVia := false
	for _, e := range edges {
		if g.IsVia(e) {
			a, _ := g.EdgeEndpoints(e)
			tx, ty, _ := g.VertexCoords(a)
			if tx != 9 || ty != 0 {
				t.Fatal("used a blocked via")
			}
			foundVia = true
		}
	}
	if !foundVia {
		t.Fatal("tree has no via")
	}
}

func TestPathCompositionInfeasible(t *testing.T) {
	g := testGrid()
	cost := func(e int) float64 { return -1 } // everything blocked
	_, ok := PathComposition(g, cost, [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(5, 5, 0)}})
	if ok {
		t.Fatal("expected infeasibility")
	}
}

func TestOracleReuse(t *testing.T) {
	g := testGrid()
	o := NewOracle(g)
	cost := unitCost(g)
	for i := 0; i < 50; i++ {
		a := g.Vertex(i%10, (i*3)%10, 0)
		b := g.Vertex((i*7)%10, (i*5)%10, i%2)
		if a == b {
			continue
		}
		edges, ok := o.Tree(cost, [][]int{{a}, {b}})
		if !ok {
			t.Fatalf("iteration %d: no tree", i)
		}
		if !ValidateTree(g, edges, [][]int{{a}, {b}}) {
			t.Fatalf("iteration %d: invalid tree", i)
		}
	}
}

func TestOracleMatchesFreshRuns(t *testing.T) {
	g := testGrid()
	o := NewOracle(g)
	cost := unitCost(g)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		var terms [][]int
		for i := 0; i < 2+rng.Intn(4); i++ {
			terms = append(terms, []int{g.Vertex(rng.Intn(10), rng.Intn(10), rng.Intn(2))})
		}
		e1, ok1 := o.Tree(cost, terms)
		e2, ok2 := PathComposition(g, cost, terms)
		if ok1 != ok2 {
			t.Fatalf("trial %d: ok mismatch", trial)
		}
		if TreeLength(g, e1) != TreeLength(g, e2) {
			t.Fatalf("trial %d: lengths differ: %d vs %d", trial,
				TreeLength(g, e1), TreeLength(g, e2))
		}
	}
}

func TestRSMTSmallCases(t *testing.T) {
	cases := []struct {
		pts  []geom.Point
		want int64
	}{
		{nil, 0},
		{[]geom.Point{geom.Pt(3, 4)}, 0},
		{[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 5)}, 15},
		{[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 7)}, 17},
		// 4 corners of a square: RSMT = 3 sides worth... actually the
		// optimal is 3*10 = 30 (an "H" or "U" shape).
		{[]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(10, 10)}, 30},
		// Duplicate points collapse.
		{[]geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(4, 0)}, 4},
		// Collinear points: length = extent.
		{[]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(9, 0), geom.Pt(17, 0)}, 17},
	}
	for i, c := range cases {
		if got := RSMTLength(c.pts); got != c.want {
			t.Errorf("case %d: RSMT = %d, want %d", i, got, c.want)
		}
	}
}

func TestRSMTCross(t *testing.T) {
	// A plus sign: center Steiner point saves over the MST.
	pts := []geom.Point{
		geom.Pt(5, 0), geom.Pt(5, 10), geom.Pt(0, 5), geom.Pt(10, 5),
	}
	if got := RSMTLength(pts); got != 20 {
		t.Fatalf("RSMT = %d, want 20", got)
	}
	if mst := mstLength(pts); mst <= 20 {
		t.Fatalf("MST = %d should exceed RSMT 20", mst)
	}
}

// Exact DP must never exceed the MST, and must be at least half of it
// (the classical Steiner ratio bound for rectilinear metric is 2/3).
func TestRSMTAgainstMSTBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		k := 4 + rng.Intn(6) // 4..9 → exact DP
		pts := make([]geom.Point, k)
		for i := range pts {
			pts[i] = geom.Pt(rng.Intn(100), rng.Intn(100))
		}
		rsmt := RSMTLength(pts)
		mst := mstLength(dedupPoints(pts))
		if rsmt > mst {
			t.Fatalf("trial %d: RSMT %d > MST %d", trial, rsmt, mst)
		}
		if 3*rsmt < 2*mst {
			t.Fatalf("trial %d: RSMT %d below 2/3·MST %d (impossible)", trial, rsmt, mst)
		}
		if rsmt < hpwl(dedupPoints(pts)) {
			t.Fatalf("trial %d: RSMT %d below HPWL", trial, rsmt)
		}
	}
}

// The heuristic for >9 terminals stays within the MST bound and above
// HPWL.
func TestOneSteinerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		k := 10 + rng.Intn(10)
		pts := make([]geom.Point, k)
		for i := range pts {
			pts[i] = geom.Pt(rng.Intn(200), rng.Intn(200))
		}
		l := RSMTLength(pts)
		if l > mstLength(dedupPoints(pts)) {
			t.Fatalf("heuristic above MST")
		}
		if l < hpwl(dedupPoints(pts)) {
			t.Fatalf("heuristic below HPWL")
		}
	}
}

// The 1-Steiner heuristic should agree with the exact DP on easy
// configurations.
func TestOneSteinerMatchesExactOnCross(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(5, 0), geom.Pt(5, 10), geom.Pt(0, 5), geom.Pt(10, 5),
	}
	if got := oneSteiner(pts); got != 20 {
		t.Fatalf("oneSteiner = %d, want 20", got)
	}
}

func BenchmarkSteinerOracle(b *testing.B) {
	// The §2.2 statistic: average oracle time (paper: ≈0.3 ms).
	g := grid.New(geom.R(0, 0, 6000, 4000), 200, 200,
		[]geom.Direction{geom.Horizontal, geom.Vertical, geom.Horizontal, geom.Vertical})
	o := NewOracle(g)
	cost := unitCost(g)
	rng := rand.New(rand.NewSource(6))
	type netCase struct{ terms [][]int }
	cases := make([]netCase, 256)
	for i := range cases {
		k := 2
		for k < 8 && rng.Float64() < 0.4 {
			k++
		}
		var terms [][]int
		for j := 0; j < k; j++ {
			terms = append(terms, []int{g.Vertex(rng.Intn(g.NX), rng.Intn(g.NY), rng.Intn(2))})
		}
		cases[i] = netCase{terms}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cases[i%len(cases)]
		if _, ok := o.Tree(cost, c.terms); !ok {
			b.Fatal("oracle failed")
		}
	}
}
