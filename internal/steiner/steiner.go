// Package steiner implements the Steiner-tree machinery of BonnRoute's
// global router: the Path Composition algorithm (paper Algorithm 1) used
// as the min-max resource sharing oracle, and the rectilinear Steiner
// minimum tree baselines the paper uses to define scenic nets and the
// Table II ratios — exact (Dreyfus–Wagner over the Hanan grid) for up to
// 9 terminals, an iterated 1-Steiner heuristic above, matching the
// paper's use of exact FLUTE tables below 10 terminals and heuristics
// beyond.
package steiner

import (
	"bonnroute/internal/grid"
)

// PathComposition is a convenience wrapper running Algorithm 1 with a
// fresh Oracle; prefer a long-lived Oracle when calling repeatedly.
func PathComposition(g *grid.Graph, cost func(e int) float64, terminals [][]int) (edges []int, ok bool) {
	return NewOracle(g).Tree(cost, terminals)
}

// TreeLength sums the lengths of wire edges of a tree (vias excluded).
func TreeLength(g *grid.Graph, edges []int) int64 {
	var total int64
	for _, e := range edges {
		total += int64(g.EdgeLength(e))
	}
	return total
}

// CountVias counts the via edges of a tree.
func CountVias(g *grid.Graph, edges []int) int {
	n := 0
	for _, e := range edges {
		if g.IsVia(e) {
			n++
		}
	}
	return n
}

// ValidateTree checks that edges form a connected acyclic subgraph
// spanning all terminal groups (used by tests and the sharing sanity
// checks). It tolerates zero-length terminal groups spanning one vertex.
func ValidateTree(g *grid.Graph, edges []int, terminals [][]int) bool {
	adj := map[int][]int{}
	for _, e := range edges {
		a, b := g.EdgeEndpoints(e)
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	if len(terminals) == 0 {
		return true
	}
	// BFS from terminal 0 over tree edges plus intra-terminal cliques.
	// A vertex can belong to several groups (duplicate pins), so track
	// all of them — keeping only the last would leave the earlier
	// groups unreachable and misreport a valid tree as invalid.
	group := map[int][]int{}
	for ti, vs := range terminals {
		for _, v := range vs {
			group[v] = append(group[v], ti)
		}
	}
	seen := map[int]bool{}
	grpSeen := make([]bool, len(terminals))
	var stack []int
	push := func(v int) {
		if !seen[v] {
			seen[v] = true
			stack = append(stack, v)
		}
	}
	for _, v := range terminals[0] {
		push(v)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, gi := range group[v] {
			if !grpSeen[gi] {
				grpSeen[gi] = true
				for _, w := range terminals[gi] {
					push(w)
				}
			}
		}
		for _, w := range adj[v] {
			push(w)
		}
	}
	for _, ok := range grpSeen {
		if !ok {
			return false
		}
	}
	return true
}
