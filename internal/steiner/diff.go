package steiner

import (
	"fmt"
	"math/rand"

	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
)

// This file is the differential harness for the exact oracle: an
// independent reference solver plus a seeded random-instance checker.
// It lives outside the _test files so cmd/routefuzz can run the same
// checks in its fixed-seed smoke slice.

// ReferenceTreeCost computes the optimal Steiner tree cost by the plain
// Erickson–Monma–Veinott label algorithm: the same (vertex, subset)
// recurrence as Exact but with no future cost, no pruning, no
// truncation and freshly allocated dense state — deliberately sharing
// none of the production oracle's machinery, so the two only agree when
// both are right. Exponential in terminals and dense in |V|·2^k memory;
// test-sized instances only.
func ReferenceTreeCost(g *grid.Graph, cost func(e int) float64, terminals [][]int) (float64, bool) {
	// Merge terminal groups that share a vertex (independent of
	// Oracle.mergeTerminals).
	comp := make(map[int]int)
	par := make([]int, len(terminals))
	for i := range par {
		par[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for par[x] != x {
			par[x] = par[par[x]]
			x = par[x]
		}
		return x
	}
	for ti, vs := range terminals {
		for _, v := range vs {
			if c, seen := comp[v]; seen {
				par[find(ti)] = find(c)
			} else {
				comp[v] = ti
			}
		}
	}
	dense := make(map[int]int)
	var merged [][]int
	for ti, vs := range terminals {
		r := find(ti)
		id, seen := dense[r]
		if !seen {
			id = len(merged)
			dense[r] = id
			merged = append(merged, nil)
		}
		merged[id] = append(merged[id], vs...)
	}
	k := len(merged)
	if k <= 1 {
		return 0, true
	}
	n := g.NumVertices()
	// Contracted-graph semantics: each merged group is a zero-cost
	// clique, so labels teleport between group members for free.
	compAt := make([]int, n)
	for v := range compAt {
		compAt[v] = -1
	}
	for ci, vs := range merged {
		for _, v := range vs {
			compAt[v] = ci
		}
	}
	full := 1<<(k-1) - 1
	dist := make([][]float64, full+1)
	done := make([][]bool, full+1)
	for I := 1; I <= full; I++ {
		dist[I] = make([]float64, n)
		for v := range dist[I] {
			dist[I][v] = inf64
		}
		done[I] = make([]bool, n)
	}
	var hq exHeap
	for j := 1; j < k; j++ {
		I := 1 << (j - 1)
		for _, v := range merged[j] {
			if dist[I][v] != 0 {
				dist[I][v] = 0
				hq.push(exItem{0, 0, int32(v), uint16(I)})
			}
		}
	}
	for {
		it, nonempty := hq.pop()
		if !nonempty {
			break
		}
		I, v := int(it.sub), int(it.v)
		if done[I][v] || it.l > dist[I][v] {
			continue
		}
		done[I][v] = true
		if I == full && compAt[v] == 0 {
			return it.l, true
		}
		for J := 1; J <= full; J++ {
			if J&I != 0 || !done[J][v] {
				continue
			}
			S := I | J
			if l2 := it.l + dist[J][v]; !done[S][v] && l2 < dist[S][v] {
				dist[S][v] = l2
				hq.push(exItem{l2, l2, int32(v), uint16(S)})
			}
		}
		relax := func(w int, l2 float64) {
			if !done[I][w] && l2 < dist[I][w] {
				dist[I][w] = l2
				hq.push(exItem{l2, l2, int32(w), uint16(I)})
			}
		}
		if c := compAt[v]; c >= 0 {
			for _, w := range merged[c] {
				relax(w, it.l)
			}
		}
		g.Neighbors(v, func(e, w int) {
			if c := cost(e); c >= 0 {
				relax(w, it.l+c)
			}
		})
	}
	return 0, false
}

// TreeCost sums cost over edges (negative costs are a caller bug —
// trees never contain unusable edges).
func TreeCost(cost func(e int) float64, edges []int) float64 {
	var s float64
	for _, e := range edges {
		s += cost(e)
	}
	return s
}

// DiffInstance is one randomly generated differential instance.
type DiffInstance struct {
	G         *grid.Graph
	Cost      func(e int) float64
	Terminals [][]int
}

// GenDiffInstance builds a random small instance from rng: a 2–3 layer
// grid, per-edge costs jittered around geometry (with a small chance of
// blocked edges), and 2–9 single-vertex terminal groups (occasionally
// multi-vertex, occasionally duplicated across groups to exercise the
// merge path).
func GenDiffInstance(rng *rand.Rand) DiffInstance {
	nx := 3 + rng.Intn(5)
	ny := 3 + rng.Intn(5)
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	if rng.Intn(2) == 0 {
		dirs = append(dirs, geom.Horizontal)
	}
	g := grid.New(geom.R(0, 0, nx*100, ny*100), 100, 100, dirs)

	costs := make([]float64, g.NumEdges())
	for e := range costs {
		base := 1.0
		if !g.IsVia(e) {
			base = float64(g.EdgeLength(e))
		}
		costs[e] = base * (0.5 + rng.Float64())
		if rng.Intn(40) == 0 {
			costs[e] = -1 // blocked
		}
	}
	cost := func(e int) float64 { return costs[e] }

	k := 2 + rng.Intn(8)
	terms := make([][]int, k)
	for i := range terms {
		v := g.Vertex(rng.Intn(nx), rng.Intn(ny), rng.Intn(g.NZ))
		terms[i] = []int{v}
		if rng.Intn(6) == 0 {
			terms[i] = append(terms[i], g.Vertex(rng.Intn(nx), rng.Intn(ny), rng.Intn(g.NZ)))
		}
	}
	return DiffInstance{G: g, Cost: cost, Terminals: terms}
}

// CheckDifferential runs one instance through the exact oracle, Path
// Composition and the reference solver and cross-checks every contract:
// exact == reference optimum, exact ≤ Path Composition, both trees
// valid. Returns a descriptive error on the first violation.
func CheckDifferential(inst DiffInstance, ex *Exact) error {
	if ex == nil {
		ex = NewExact(inst.G, 0)
	}
	pcEdges, pcOK := PathComposition(inst.G, inst.Cost, inst.Terminals)
	edges, isExact, ok := ex.Tree(inst.Cost, inst.Terminals)
	if ok != pcOK {
		return fmt.Errorf("feasibility disagrees: exact ok=%v, path composition ok=%v", ok, pcOK)
	}
	refCost, refOK := ReferenceTreeCost(inst.G, inst.Cost, inst.Terminals)
	if refOK != ok {
		return fmt.Errorf("feasibility disagrees: exact ok=%v, reference ok=%v", ok, refOK)
	}
	if !ok {
		return nil
	}
	if !ValidateTree(inst.G, edges, inst.Terminals) {
		return fmt.Errorf("exact oracle tree does not span the terminals")
	}
	exCost := TreeCost(inst.Cost, edges)
	pcCost := TreeCost(inst.Cost, pcEdges)
	const eps = 1e-6
	if exCost > pcCost+eps {
		return fmt.Errorf("exact tree costs %.9f > path composition %.9f", exCost, pcCost)
	}
	if !isExact {
		return fmt.Errorf("oracle declined exactness on a %d-terminal instance", len(inst.Terminals))
	}
	if exCost > refCost+eps || exCost < refCost-eps {
		return fmt.Errorf("exact tree costs %.9f, reference optimum %.9f", exCost, refCost)
	}
	return nil
}

// RunDifferential checks n seeded instances (deterministic per seed) and
// returns the first failure, wrapped with its instance index.
func RunDifferential(seed int64, n int) error {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		inst := GenDiffInstance(rng)
		if err := CheckDifferential(inst, nil); err != nil {
			return fmt.Errorf("differential instance %d (seed %d): %w", i, seed, err)
		}
	}
	return nil
}
