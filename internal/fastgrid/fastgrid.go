// Package fastgrid implements BonnRoute's fast grid (paper §3.6): a
// per-track cache of bit-packed legality data for a small set of
// frequently used wire types, so that on-track path search almost never
// has to consult the (much slower) distance rule checking module.
//
// Layout follows the paper: on wiring layers, 12 bits per wire type and
// interval encode the minimal rip-up level (3 bits, eight levels) at which
// each of four shape kinds can be placed — the preferred-direction wire
// model, the non-preferred (jog) model, and the bottom and top pads of
// vias. On via layers, 6 bits per wire type encode cut and inter-layer
// projection legality. A 64-bit word therefore caches five wire types.
// Intervals of equal words along a track are run-length compressed
// (package intervalmap).
//
// One refinement relative to the paper's vertex storage: the jog field at
// a position caches the legality of the whole jog segment from this track
// to the next track above, so adjacent-track jog edges are decided
// entirely from the cache and no "ask the shape grid" escape bit is
// needed for them. Queries for uncached wire types or off-track
// locations fall back to the rule checker and are counted as misses,
// reproducing the hit-rate statistic of §3.6.
package fastgrid

import (
	"sync/atomic"

	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
	"bonnroute/internal/intervalmap"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
	"bonnroute/internal/tracks"
)

// MaxWireTypes is the number of wire types one 64-bit word can cache.
const MaxWireTypes = 5

// Shape kinds cached per wiring-layer position.
const (
	KindPref   = 0 // preferred-direction wire model placement
	KindJogUp  = 1 // jog segment from this track to the next track above
	KindBotPad = 2 // bottom pad of a via to the layer above
	KindTopPad = 3 // top pad of a via to the layer below
)

// Grid is the fast grid of one chip. Per-track interval maps are striped
// along the track axis (package intervalmap): legality reads go through
// atomically published snapshots and never take a lock, while commits
// lock only the stripes their dirty region overlaps — the concurrency
// design behind §5.1's parallel detailed routing.
type Grid struct {
	space *drc.Space
	tg    *tracks.Graph
	wts   []*rules.WireType

	// wiring[z][t] maps along-track positions of track t on layer z to
	// packed words.
	wiring [][]*intervalmap.Striped
	// cuts[v][t] maps along-track positions (tracks of wiring layer v)
	// to packed via-layer words.
	cuts [][]*intervalmap.Striped

	// Counters for the §3.6 statistic (updated atomically: parallel
	// detailed routing queries the grid concurrently).
	Hits, Misses int64
}

// shardBudgetPerLayer caps the total stripe count summed over one
// layer's tracks. Striping a track pays off only when concurrent writers
// hit that same track, which becomes vanishingly rare as track counts
// grow into the tens of thousands, while the fixed per-shard cost
// (mutex, node arena, published snapshot) does not shrink. Small chips
// (≤ 256 tracks per layer) keep the full 16-way striping; a 10⁵-net
// chip's layers collapse toward one stripe per track.
const shardBudgetPerLayer = 4096

// stripesFor picks the shard count of one track's interval map: roughly
// one stripe per 32 pitches of track length, capped so tiny chips stay
// unsharded, huge ones don't fragment runs needlessly, and the layer as
// a whole stays inside shardBudgetPerLayer. Finer than the routing
// scheduler's strips, so a strip always spans whole stripes.
func stripesFor(span geom.Interval, pitch, nTracks int) int {
	if pitch <= 0 {
		return 1
	}
	limit := 16
	if nTracks > 0 && shardBudgetPerLayer/nTracks < limit {
		limit = shardBudgetPerLayer / nTracks
	}
	if limit < 1 {
		limit = 1
	}
	n := span.Len() / (32 * pitch)
	if n < 1 {
		n = 1
	}
	if n > limit {
		n = limit
	}
	return n
}

// New builds the fast grid for up to MaxWireTypes wire types and performs
// the initial full sweep.
func New(space *drc.Space, tg *tracks.Graph, wts []*rules.WireType) *Grid {
	if len(wts) > MaxWireTypes {
		wts = wts[:MaxWireTypes]
	}
	g := &Grid{space: space, tg: tg, wts: wts}
	g.wiring = make([][]*intervalmap.Striped, tg.NumLayers())
	g.cuts = make([][]*intervalmap.Striped, tg.NumLayers()-1)
	for z := range g.wiring {
		span := tg.Area.Span(tg.Layers[z].Dir)
		n := stripesFor(span, space.Deck.Layers[z].Pitch, len(tg.Layers[z].Coords))
		g.wiring[z] = make([]*intervalmap.Striped, len(tg.Layers[z].Coords))
		for t := range g.wiring[z] {
			g.wiring[z][t] = intervalmap.NewStriped(span.Lo, span.Hi, n)
		}
	}
	for v := range g.cuts {
		span := tg.Area.Span(tg.Layers[v].Dir)
		n := stripesFor(span, space.Deck.Layers[v].Pitch, len(tg.Layers[v].Coords))
		g.cuts[v] = make([]*intervalmap.Striped, len(tg.Layers[v].Coords))
		for t := range g.cuts[v] {
			g.cuts[v][t] = intervalmap.NewStriped(span.Lo, span.Hi, n)
		}
	}
	for z := range g.wiring {
		for t := range g.wiring[z] {
			g.rebuildWiringTrack(z, t, tg.Area.Span(tg.Layers[z].Dir))
		}
	}
	for v := range g.cuts {
		for t := range g.cuts[v] {
			g.rebuildCutTrack(v, t, tg.Area.Span(tg.Layers[v].Dir))
		}
	}
	return g
}

// wtIndex returns the cache slot of wt, or -1 if uncached.
func (g *Grid) wtIndex(wt *rules.WireType) int {
	for i, w := range g.wts {
		if w == wt {
			return i
		}
	}
	return -1
}

// field computes the bit offset of (wire type slot, kind).
func field(slot, kind int) uint { return uint(slot*12 + kind*3) }

func cutField(slot int, proj bool) uint {
	o := uint(slot * 6)
	if proj {
		o += 3
	}
	return o
}

// setField returns w with the 3-bit field at off set to max(old, need)
// ... no: rebuilds overwrite, so plain set.
func setField(w uint64, off uint, need drc.Need) uint64 {
	return (w &^ (7 << off)) | uint64(need)<<off
}

func getField(w uint64, off uint) drc.Need { return drc.Need(w>>off) & 7 }

// rebuildWiringTrack recomputes all fields of track t on layer z within
// span (along-track coordinates). Each overlapped stripe is swept and
// republished independently (one snapshot rebuild per stripe).
func (g *Grid) rebuildWiringTrack(z, t int, span geom.Interval) {
	layer := &g.tg.Layers[z]
	coord := layer.Coords[t]
	g.wiring[z][t].Edit(span.Lo, span.Hi, func(m *intervalmap.Map, elo, ehi int) {
		sub := geom.Interval{Lo: elo, Hi: ehi}
		// Clear all fields in the sub-span, then OR in each sweep.
		m.SetRange(sub.Lo, sub.Hi, 0)
		apply := func(off uint, lo, hi int, need drc.Need) {
			if need == 0 {
				return
			}
			m.Update(lo, hi, func(old uint64) uint64 { return setField(old, off, need) })
		}
		for slot, wt := range g.wts {
			// Preferred wire model.
			pm := wt.Oriented(z, layer.Dir, layer.Dir)
			g.space.TrackNeeds(z, layer.Dir, coord, sub, pm, drc.AnyNet, func(lo, hi int, need drc.Need) {
				apply(field(slot, KindPref), lo, hi, need)
			})
			// Jog segment to the next track above.
			if t+1 < len(layer.Coords) {
				jm := wt.Oriented(z, layer.Dir.Perp(), layer.Dir)
				gap := layer.Coords[t+1] - coord
				span2 := jogSpanModel(jm, layer.Dir, gap)
				g.space.TrackNeeds(z, layer.Dir, coord, sub, span2, drc.AnyNet, func(lo, hi int, need drc.Need) {
					apply(field(slot, KindJogUp), lo, hi, need)
				})
			}
			// Via pads.
			if z+1 < g.tg.NumLayers() {
				vm := wt.Via(z, g.tg.Layers[z].Dir)
				bm := rules.WireModel{Shape: vm.Bot, Class: vm.BotClass}
				g.space.TrackNeeds(z, layer.Dir, coord, sub, bm, drc.AnyNet, func(lo, hi int, need drc.Need) {
					apply(field(slot, KindBotPad), lo, hi, need)
				})
			}
			if z > 0 {
				vm := wt.Via(z-1, g.tg.Layers[z-1].Dir)
				tm := rules.WireModel{Shape: vm.Top, Class: vm.TopClass}
				g.space.TrackNeeds(z, layer.Dir, coord, sub, tm, drc.AnyNet, func(lo, hi int, need drc.Need) {
					apply(field(slot, KindTopPad), lo, hi, need)
				})
			}
		}
	})
}

// jogSpanModel builds a synthetic wire model whose metal, placed at a
// track position, covers the whole jog segment from this track to the
// track gap away (in +ortho direction).
func jogSpanModel(jm rules.WireModel, dir geom.Direction, gap int) rules.WireModel {
	s := jm.Shape
	if dir == geom.Horizontal {
		// Track runs in x; jog extends in +y by gap.
		s.YMax += gap
	} else {
		s.XMax += gap
	}
	return rules.WireModel{Shape: s, Class: jm.Class}
}

// rebuildCutTrack recomputes via-layer fields of track t (tracks of the
// lower wiring layer v) within span.
func (g *Grid) rebuildCutTrack(v, t int, span geom.Interval) {
	layer := &g.tg.Layers[v]
	coord := layer.Coords[t]
	g.cuts[v][t].Edit(span.Lo, span.Hi, func(m *intervalmap.Map, elo, ehi int) {
		sub := geom.Interval{Lo: elo, Hi: ehi}
		m.SetRange(sub.Lo, sub.Hi, 0)
		apply := func(off uint, lo, hi int, need drc.Need) {
			if need == 0 {
				return
			}
			m.Update(lo, hi, func(old uint64) uint64 { return setField(old, off, need) })
		}
		for slot, wt := range g.wts {
			vm := wt.Via(v, layer.Dir)
			g.space.TrackCutNeeds(v, layer.Dir, coord, sub, vm.Cut, drc.AnyNet, false, func(lo, hi int, need drc.Need) {
				apply(cutField(slot, false), lo, hi, need)
			})
			if vm.HasProjection && v+1 < len(g.space.Cuts) {
				g.space.TrackCutNeeds(v+1, layer.Dir, coord, sub, vm.Cut, drc.AnyNet, true, func(lo, hi int, need drc.Need) {
					apply(cutField(slot, true), lo, hi, need)
				})
			}
		}
	})
}

// OnWiringChange re-sweeps the cached data invalidated by a shape change
// (insertion or removal) on wiring layer z covering rect.
func (g *Grid) OnWiringChange(z int, rect geom.Rect) {
	layer := &g.tg.Layers[z]
	margin := g.space.Deck.MaxSpacing(z) + 4*g.space.Deck.Layers[z].Pitch
	dirty := rect.Expanded(margin)
	ortho := dirty.Span(layer.Dir.Perp())
	along := dirty.Span(layer.Dir)
	for t, c := range layer.Coords {
		// The jog field of a track extends up to the next track; extend
		// the orthogonal reach accordingly.
		reach := ortho
		if t+1 < len(layer.Coords) {
			reach = geom.Interval{Lo: ortho.Lo - (layer.Coords[t+1] - c), Hi: ortho.Hi}
		}
		if c >= reach.Lo && c < reach.Hi {
			g.rebuildWiringTrack(z, t, along)
		}
	}
}

// OnCutChange re-sweeps via-layer data invalidated by a cut change in via
// layer v covering rect.
func (g *Grid) OnCutChange(v int, rect geom.Rect) {
	vr := g.space.Deck.ViaLayers[v]
	margin := max(vr.CutSpacing, vr.InterLayerSpacing) + 4*g.space.Deck.Layers[v].Pitch
	dirty := rect.Expanded(margin)
	// Cuts in layer v are cached on layer-v tracks, and (as projections)
	// influence layer v-1 caches.
	for _, lv := range []int{v, v - 1} {
		if lv < 0 || lv >= len(g.cuts) {
			continue
		}
		layer := &g.tg.Layers[lv]
		ortho := dirty.Span(layer.Dir.Perp())
		along := dirty.Span(layer.Dir)
		for t, c := range layer.Coords {
			if c >= ortho.Lo && c < ortho.Hi {
				g.rebuildCutTrack(lv, t, along)
			}
		}
	}
}

// WireNeed returns the rip-up Need for placing a preferred-direction wire
// of wt at the track-graph vertex (trackIdx, along) of layer z. ok is
// false when the wire type is not cached; the caller must fall back to
// the rule checker (counted as a miss).
func (g *Grid) WireNeed(z, trackIdx, along int, wt *rules.WireType) (need drc.Need, ok bool) {
	slot := g.wtIndex(wt)
	if slot < 0 {
		atomic.AddInt64(&g.Misses, 1)
		return 0, false
	}
	atomic.AddInt64(&g.Hits, 1)
	w := g.wiring[z][trackIdx].Get(along)
	return getField(w, field(slot, KindPref)), true
}

// JogUpNeed returns the Need of the jog segment from vertex (trackIdx,
// along) of layer z to the next track above.
func (g *Grid) JogUpNeed(z, trackIdx, along int, wt *rules.WireType) (need drc.Need, ok bool) {
	slot := g.wtIndex(wt)
	if slot < 0 || trackIdx+1 >= len(g.tg.Layers[z].Coords) {
		atomic.AddInt64(&g.Misses, 1)
		return 0, false
	}
	atomic.AddInt64(&g.Hits, 1)
	w := g.wiring[z][trackIdx].Get(along)
	return getField(w, field(slot, KindJogUp)), true
}

// ViaNeed returns the Need of a via of wt between layers v and v+1 whose
// position is at along-track coordinate `along` of track botTrack on
// layer v and track topTrack on layer v+1 (the caller resolves the
// geometry). It combines bottom pad, top pad, cut and projection fields.
func (g *Grid) ViaNeed(v, botTrack, topTrack int, pos geom.Point, wt *rules.WireType) (need drc.Need, ok bool) {
	slot := g.wtIndex(wt)
	if slot < 0 {
		atomic.AddInt64(&g.Misses, 1)
		return 0, false
	}
	atomic.AddInt64(&g.Hits, 1)
	botDir := g.tg.Layers[v].Dir
	alongBot := pos.Coord(botDir)
	alongTop := pos.Coord(botDir.Perp())
	wBot := g.wiring[v][botTrack].Get(alongBot)
	need = getField(wBot, field(slot, KindBotPad))
	wTop := g.wiring[v+1][topTrack].Get(alongTop)
	if n := getField(wTop, field(slot, KindTopPad)); n > need {
		need = n
	}
	wCut := g.cuts[v][botTrack].Get(alongBot)
	if n := getField(wCut, cutField(slot, false)); n > need {
		need = n
	}
	if n := getField(wCut, cutField(slot, true)); n > need {
		need = n
	}
	return need, true
}

// Runs exposes the packed runs of one track (used by the interval-based
// path search to enumerate legality intervals, and by tests).
func (g *Grid) Runs(z, trackIdx int, lo, hi int, visit func(lo, hi int, word uint64) bool) {
	g.wiring[z][trackIdx].Runs(lo, hi, visit)
}

// Word returns the raw packed word at a position.
func (g *Grid) Word(z, trackIdx, along int) uint64 { return g.wiring[z][trackIdx].Get(along) }

// PrefNeedAt decodes the preferred-wire Need for slot from a packed word.
func PrefNeedAt(word uint64, slot int) drc.Need { return getField(word, field(slot, KindPref)) }

// JogUpNeedAt decodes the jog-up Need for slot from a packed word.
func JogUpNeedAt(word uint64, slot int) drc.Need { return getField(word, field(slot, KindJogUp)) }

// Slot returns the cache slot of wt, or -1.
func (g *Grid) Slot(wt *rules.WireType) int { return g.wtIndex(wt) }

// IntervalCount returns the total stored runs (the §3.6 interval count).
func (g *Grid) IntervalCount() int {
	n := 0
	for z := range g.wiring {
		for t := range g.wiring[z] {
			n += g.wiring[z][t].Len()
		}
	}
	for v := range g.cuts {
		for t := range g.cuts[v] {
			n += g.cuts[v][t].Len()
		}
	}
	return n
}

// Mem returns the approximate heap bytes held by the per-track interval
// maps (node arenas + published snapshots), derived from element counts
// so the scale-tier byte-budget tests can pin it deterministically.
func (g *Grid) Mem() int64 {
	var b int64
	for z := range g.wiring {
		b += int64(len(g.wiring[z])) * 8
		for t := range g.wiring[z] {
			b += g.wiring[z][t].Footprint()
		}
	}
	for v := range g.cuts {
		b += int64(len(g.cuts[v])) * 8
		for t := range g.cuts[v] {
			b += g.cuts[v][t].Footprint()
		}
	}
	return b
}

// HitRate returns the fraction of legality queries answered from the
// cache (the 97.89 % statistic of §3.6).
func (g *Grid) HitRate() float64 {
	h := atomic.LoadInt64(&g.Hits)
	m := atomic.LoadInt64(&g.Misses)
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// maxField raises the 3-bit field at off to at least need.
func maxField(w uint64, off uint, need drc.Need) uint64 {
	if getField(w, off) >= need {
		return w
	}
	return setField(w, off, need)
}

// OnShapeAdded incrementally folds a newly inserted wiring-layer shape
// into the cache: adding a shape can only raise Needs, so its forbidden
// intervals are maxed into the affected fields — far cheaper than the
// full re-sweep needed after removals.
func (g *Grid) OnShapeAdded(z int, sh shapegrid.Shape) {
	layer := &g.tg.Layers[z]
	margin := g.space.Deck.MaxSpacing(z) + 4*g.space.Deck.Layers[z].Pitch
	dirty := sh.Rect.Expanded(margin)
	ortho := dirty.Span(layer.Dir.Perp())
	along := dirty.Span(layer.Dir)
	for t, c := range layer.Coords {
		reach := ortho
		if t+1 < len(layer.Coords) {
			reach = geom.Interval{Lo: ortho.Lo - (layer.Coords[t+1] - c), Hi: ortho.Hi}
		}
		if c < reach.Lo || c >= reach.Hi {
			continue
		}
		g.wiring[z][t].Edit(along.Lo, along.Hi, func(m *intervalmap.Map, elo, ehi int) {
			sub := geom.Interval{Lo: elo, Hi: ehi}
			apply := func(off uint) func(lo, hi int, need drc.Need) {
				return func(lo, hi int, need drc.Need) {
					if need == 0 {
						return
					}
					m.Update(lo, hi, func(old uint64) uint64 { return maxField(old, off, need) })
				}
			}
			for slot, wt := range g.wts {
				pm := wt.Oriented(z, layer.Dir, layer.Dir)
				g.space.ShapeWireNeeds(z, layer.Dir, c, sub, pm, sh, apply(field(slot, KindPref)))
				if t+1 < len(layer.Coords) {
					jm := wt.Oriented(z, layer.Dir.Perp(), layer.Dir)
					gap := layer.Coords[t+1] - c
					g.space.ShapeWireNeeds(z, layer.Dir, c, sub, jogSpanModel(jm, layer.Dir, gap), sh, apply(field(slot, KindJogUp)))
				}
				if z+1 < g.tg.NumLayers() {
					vm := wt.Via(z, g.tg.Layers[z].Dir)
					g.space.ShapeWireNeeds(z, layer.Dir, c, sub,
						rules.WireModel{Shape: vm.Bot, Class: vm.BotClass}, sh, apply(field(slot, KindBotPad)))
				}
				if z > 0 {
					vm := wt.Via(z-1, g.tg.Layers[z-1].Dir)
					g.space.ShapeWireNeeds(z, layer.Dir, c, sub,
						rules.WireModel{Shape: vm.Top, Class: vm.TopClass}, sh, apply(field(slot, KindTopPad)))
				}
			}
		})
	}
}

// OnCutAdded incrementally folds a newly inserted via-layer shape (cut or
// projection) into the via-layer cache.
func (g *Grid) OnCutAdded(v int, sh shapegrid.Shape) {
	vr := g.space.Deck.ViaLayers[v]
	margin := max(vr.CutSpacing, vr.InterLayerSpacing) + 4*g.space.Deck.Layers[v].Pitch
	dirty := sh.Rect.Expanded(margin)
	for _, lv := range []int{v, v - 1} {
		if lv < 0 || lv >= len(g.cuts) {
			continue
		}
		layer := &g.tg.Layers[lv]
		ortho := dirty.Span(layer.Dir.Perp())
		along := dirty.Span(layer.Dir)
		for t, c := range layer.Coords {
			if c < ortho.Lo || c >= ortho.Hi {
				continue
			}
			g.cuts[lv][t].Edit(along.Lo, along.Hi, func(m *intervalmap.Map, elo, ehi int) {
				sub := geom.Interval{Lo: elo, Hi: ehi}
				for slot, wt := range g.wts {
					vm := wt.Via(lv, layer.Dir)
					slotV := slot
					// Candidate cut on layer lv versus the new shape: the new
					// shape lives in layer v; when lv == v it is a same-layer
					// conflict, when lv == v-1 the candidate's projection (in
					// layer v) conflicts with it.
					proj := lv != v
					g.space.ShapeCutNeeds(v, layer.Dir, c, sub, vm.Cut, sh, proj, func(lo, hi int, need drc.Need) {
						if need == 0 {
							return
						}
						off := cutField(slotV, proj)
						m.Update(lo, hi, func(old uint64) uint64 { return maxField(old, off, need) })
					})
				}
			})
		}
	}
}
