package fastgrid

import (
	"runtime"
	"sync"
	"testing"

	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
	"bonnroute/internal/tracks"
)

// fixture builds a 4-layer space with uniform tracks and a fast grid.
type fixture struct {
	space *drc.Space
	tg    *tracks.Graph
	fg    *Grid
	wt    *rules.WireType
	wide  *rules.WireType
}

func newFixture(t *testing.T) *fixture {
	deck := rules.DefaultDeck(rules.DeckParams{NumLayers: 4, Pitch: 40})
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical, geom.Horizontal, geom.Vertical}
	area := geom.R(0, 0, 1200, 1200)
	space := drc.NewSpace(deck, area, dirs)
	coords := make([][]int, 4)
	for z := range coords {
		for c := 20; c < 1200; c += 40 {
			coords[z] = append(coords[z], c)
		}
	}
	tg := tracks.BuildGraph(area, dirs, coords)
	wt := deck.StandardWireType()
	wide := deck.WideWireType(2)
	fg := New(space, tg, []*rules.WireType{wt, wide})
	return &fixture{space: space, tg: tg, fg: fg, wt: wt, wide: wide}
}

func TestEmptySpaceAllFree(t *testing.T) {
	f := newFixture(t)
	for z := 0; z < 4; z++ {
		for ti := range f.tg.Layers[z].Coords {
			need, ok := f.fg.WireNeed(z, ti, 600, f.wt)
			if !ok || need != 0 {
				t.Fatalf("layer %d track %d: need=%d ok=%v", z, ti, need, ok)
			}
		}
	}
	if f.fg.IntervalCount() != 0 {
		t.Fatalf("interval count on empty space = %d", f.fg.IntervalCount())
	}
}

func TestUncachedWireTypeMisses(t *testing.T) {
	f := newFixture(t)
	other := f.space.Deck.WideWireType(3)
	if _, ok := f.fg.WireNeed(0, 0, 600, other); ok {
		t.Fatal("uncached wire type must miss")
	}
	if f.fg.Misses != 1 {
		t.Fatalf("misses = %d", f.fg.Misses)
	}
	if f.fg.HitRate() != 0 {
		t.Fatalf("hit rate = %f", f.fg.HitRate())
	}
	f.fg.WireNeed(0, 0, 600, f.wt)
	if f.fg.HitRate() != 0.5 {
		t.Fatalf("hit rate = %f, want 0.5", f.fg.HitRate())
	}
}

// TestCacheMatchesChecker is the central consistency property: for every
// vertex and cached wire type, the fast grid answer equals a direct rule
// checker query — after arbitrary shape insertions and removals.
func TestCacheMatchesChecker(t *testing.T) {
	f := newFixture(t)

	mutate := func(do func()) { do() }
	// A batch of shape changes with invalidation, exercising all planes.
	obst := geom.R(300, 90, 500, 150)
	mutate(func() {
		f.space.AddObstacle(0, obst)
		f.fg.OnWiringChange(0, obst)
	})
	wA, wB := geom.Pt(200, 500), geom.Pt(800, 500)
	mutate(func() {
		f.space.AddWire(0, wA, wB, f.wt, 9, shapegrid.RipupStandard)
		f.fg.OnWiringChange(0, geom.R(wA.X, wA.Y, wB.X, wB.Y).Expanded(60))
	})
	viaP := geom.Pt(620, 740)
	mutate(func() {
		f.space.AddVia(0, viaP, f.wt, 9, shapegrid.RipupCritical)
		f.fg.OnWiringChange(0, geom.R(viaP.X, viaP.Y, viaP.X, viaP.Y).Expanded(80))
		f.fg.OnWiringChange(1, geom.R(viaP.X, viaP.Y, viaP.X, viaP.Y).Expanded(80))
		f.fg.OnCutChange(0, geom.R(viaP.X, viaP.Y, viaP.X, viaP.Y).Expanded(80))
	})
	// Remove the wire again: cache must follow.
	mutate(func() {
		f.space.RemoveWire(0, wA, wB, f.wt, 9, shapegrid.RipupStandard)
		f.fg.OnWiringChange(0, geom.R(wA.X, wA.Y, wB.X, wB.Y).Expanded(60))
	})

	for z := 0; z < 2; z++ {
		layer := &f.tg.Layers[z]
		pm := f.wt.Oriented(z, layer.Dir, layer.Dir)
		for ti, c := range layer.Coords {
			for along := 0; along < 1200; along += 20 {
				var pt geom.Point
				if layer.Dir == geom.Horizontal {
					pt = geom.Pt(along, c)
				} else {
					pt = geom.Pt(c, along)
				}
				want := f.space.RectNeed(z, pm.Shape.Translated(pt), pm.Class, drc.AnyNet)
				got, ok := f.fg.WireNeed(z, ti, along, f.wt)
				if !ok || got != want {
					t.Fatalf("layer %d track %d along %d: cache %d checker %d", z, ti, along, got, want)
				}
			}
		}
	}
}

func TestViaNeedMatchesChecker(t *testing.T) {
	f := newFixture(t)
	p := geom.Pt(420, 580)
	f.space.AddVia(0, p, f.wt, 9, shapegrid.RipupStandard)
	f.fg.OnWiringChange(0, geom.R(p.X, p.Y, p.X, p.Y).Expanded(100))
	f.fg.OnWiringChange(1, geom.R(p.X, p.Y, p.X, p.Y).Expanded(100))
	f.fg.OnCutChange(0, geom.R(p.X, p.Y, p.X, p.Y).Expanded(100))

	l0, l1 := &f.tg.Layers[0], &f.tg.Layers[1]
	for _, y := range l0.Coords {
		for _, x := range l1.Coords {
			want := f.space.ViaNeed(0, geom.Pt(x, y), f.wt, drc.AnyNet)
			got, ok := f.fg.ViaNeed(0, l0.TrackAt(y), l1.TrackAt(x), geom.Pt(x, y), f.wt)
			if !ok {
				t.Fatal("cached type must hit")
			}
			if got != want {
				t.Fatalf("via at (%d,%d): cache %d checker %d", x, y, got, want)
			}
		}
	}
}

func TestJogUpNeed(t *testing.T) {
	f := newFixture(t)
	// An obstacle straddling the gap between tracks y=500 (idx 12) and
	// y=540 (idx 13). (At minimum pitch the inter-track gap equals the
	// spacing, so anything in the gap also blocks the track wires — the
	// reason the paper's "not deducible from vertices" escape bit is
	// rarely needed.)
	f.space.AddObstacle(0, geom.R(590, 516, 620, 526))
	f.fg.OnWiringChange(0, geom.R(590, 516, 620, 526))

	// The jog from track 12 up to track 13 at x=600 must be blocked.
	need, ok := f.fg.JogUpNeed(0, 12, 600, f.wt)
	if !ok || need != drc.NeedNever {
		t.Fatalf("jog over obstacle: need=%d ok=%v", need, ok)
	}
	// Cached jog data must agree with the rule checker segment query at
	// every sampled position.
	for x := 0; x < 1200; x += 30 {
		want := f.space.SegmentNeed(0, geom.Pt(x, 500), geom.Pt(x, 540), f.wt, drc.AnyNet)
		got, ok := f.fg.JogUpNeed(0, 12, x, f.wt)
		if !ok || got != want {
			t.Fatalf("jog at x=%d: cache %d checker %d", x, got, want)
		}
	}
	// A jog far from the obstacle is free.
	if n, _ := f.fg.JogUpNeed(0, 12, 100, f.wt); n != 0 {
		t.Fatalf("distant jog need = %d", n)
	}
	// Topmost track has no jog-up.
	last := len(f.tg.Layers[0].Coords) - 1
	if _, ok := f.fg.JogUpNeed(0, last, 100, f.wt); ok {
		t.Fatal("topmost track cannot answer jog-up")
	}
}

// TestFigure4Style reproduces the structure of paper Fig. 4: blockage
// near tracks produces a small number of intervals encoding where wires
// and jogs may start.
func TestFigure4Style(t *testing.T) {
	f := newFixture(t)
	f.space.AddObstacle(0, geom.R(400, 490, 700, 550)) // covers tracks y=500,540
	f.fg.OnWiringChange(0, geom.R(400, 490, 700, 550))

	// Track y=500 (idx 12): blocked interval around [400,700), free
	// elsewhere; the packed runs must reflect that with few intervals.
	runs := 0
	blockedSeen := false
	f.fg.Runs(0, 12, 0, 1200, func(lo, hi int, w uint64) bool {
		runs++
		if PrefNeedAt(w, 0) == drc.NeedNever && lo <= 500 && hi >= 600 {
			blockedSeen = true
		}
		return true
	})
	if !blockedSeen {
		t.Fatal("blocked interval not found on track 12")
	}
	// Different shape kinds have different clearances, so the blocked
	// region decomposes into a handful of runs (pad-only fringes around
	// an all-blocked core) — but never one run per vertex.
	if runs > 7 {
		t.Fatalf("track 12 stores %d runs; interval compression broken", runs)
	}
	// Wire need on a track far away is unaffected (0 runs there).
	if n, _ := f.fg.WireNeed(0, 2, 550, f.wt); n != 0 {
		t.Fatalf("distant track polluted: need %d", n)
	}
}

func TestWideTypeSlots(t *testing.T) {
	f := newFixture(t)
	if f.fg.Slot(f.wt) != 0 || f.fg.Slot(f.wide) != 1 {
		t.Fatalf("slots: %d %d", f.fg.Slot(f.wt), f.fg.Slot(f.wide))
	}
	// A wide wire demands more clearance: positions legal for standard
	// but not for wide must exist next to an obstacle.
	f.space.AddObstacle(0, geom.R(300, 420, 600, 460))
	f.fg.OnWiringChange(0, geom.R(300, 420, 600, 460))
	// Track y=500 (one pitch above the obstacle edge at 460).
	nStd, _ := f.fg.WireNeed(0, 12, 450, f.wt)
	nWide, _ := f.fg.WireNeed(0, 12, 450, f.wide)
	if nStd != 0 {
		t.Fatalf("standard wire near obstacle: need %d", nStd)
	}
	if nWide == 0 {
		t.Fatal("wide wire near obstacle must conflict")
	}
}

func TestWordPacking(t *testing.T) {
	var w uint64
	w = setField(w, field(2, KindJogUp), 5)
	w = setField(w, field(2, KindPref), 3)
	w = setField(w, field(4, KindTopPad), 7)
	if getField(w, field(2, KindJogUp)) != 5 ||
		getField(w, field(2, KindPref)) != 3 ||
		getField(w, field(4, KindTopPad)) != 7 {
		t.Fatal("packing roundtrip failed")
	}
	// Overwrite clears previous bits.
	w = setField(w, field(2, KindJogUp), 1)
	if getField(w, field(2, KindJogUp)) != 1 {
		t.Fatal("overwrite failed")
	}
	// Five wire types fit in 60 bits; slot 4 kind 3 uses bits 57..59.
	if field(4, KindTopPad)+3 > 64 {
		t.Fatal("layout exceeds word")
	}
	if cutField(4, true)+3 > 64 {
		t.Fatal("cut layout exceeds word")
	}
}

func TestMoreThanFiveTypesTruncated(t *testing.T) {
	deck := rules.DefaultDeck(rules.DeckParams{NumLayers: 2, Pitch: 40})
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	area := geom.R(0, 0, 200, 200)
	space := drc.NewSpace(deck, area, dirs)
	coords := [][]int{{20, 60, 100, 140, 180}, {20, 60, 100, 140, 180}}
	tg := tracks.BuildGraph(area, dirs, coords)
	var wts []*rules.WireType
	for i := 1; i <= 7; i++ {
		wts = append(wts, deck.WideWireType(i))
	}
	fg := New(space, tg, wts)
	if fg.Slot(wts[4]) != 4 {
		t.Fatal("fifth type must be cached")
	}
	if fg.Slot(wts[5]) != -1 {
		t.Fatal("sixth type must be dropped")
	}
}

// TestIncrementalAddMatchesRebuild checks that OnShapeAdded/OnCutAdded
// leave the cache exactly as a full rebuild would.
func TestIncrementalAddMatchesRebuild(t *testing.T) {
	f := newFixture(t)
	g := newFixture(t) // reference, rebuilt via OnWiringChange

	w1 := f.space.AddWire(0, geom.Pt(200, 500), geom.Pt(800, 500), f.wt, 9, shapegrid.RipupStandard)
	f.fg.OnShapeAdded(0, w1)
	w2 := g.space.AddWire(0, geom.Pt(200, 500), geom.Pt(800, 500), g.wt, 9, shapegrid.RipupStandard)
	g.fg.OnWiringChange(0, w2.Rect)

	p := geom.Pt(620, 740)
	bot, top, cut, proj := f.space.ViaShapes(0, p, f.wt, 9, shapegrid.RipupCritical)
	f.space.AddVia(0, p, f.wt, 9, shapegrid.RipupCritical)
	f.fg.OnShapeAdded(0, bot)
	f.fg.OnShapeAdded(1, top)
	f.fg.OnCutAdded(0, cut)
	if proj != nil {
		f.fg.OnCutAdded(1, *proj)
	}
	g.space.AddVia(0, p, g.wt, 9, shapegrid.RipupCritical)
	dirty := geom.R(p.X, p.Y, p.X, p.Y).Expanded(120)
	g.fg.OnWiringChange(0, dirty)
	g.fg.OnWiringChange(1, dirty)
	g.fg.OnCutChange(0, dirty)
	g.fg.OnCutChange(1, dirty)

	for z := 0; z < 2; z++ {
		for ti := range f.tg.Layers[z].Coords {
			for along := 0; along < 1200; along += 10 {
				if f.fg.Word(z, ti, along) != g.fg.Word(z, ti, along) {
					t.Fatalf("layer %d track %d along %d: incremental %x vs rebuild %x",
						z, ti, along, f.fg.Word(z, ti, along), g.fg.Word(z, ti, along))
				}
			}
		}
	}
}

// TestConcurrentReadsDuringCommits is the §5.1 concurrency contract: the
// fast grid must answer legality queries lock-free WHILE another
// goroutine commits shapes, with (a) no torn words and (b) answers in
// regions away from the commits identical to the pre-commit state; and
// after the writer finishes, the whole grid must equal one built by the
// serial path. Run under -race this also proves the snapshot publication
// is properly synchronized.
func TestConcurrentReadsDuringCommits(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	f := newFixture(t)
	// Static geometry in the read region [700, 1200) so readers verify
	// nontrivial stable words, not just zeros.
	obst := geom.R(800, 490, 1000, 550)
	f.space.AddObstacle(0, obst)
	f.fg.OnWiringChange(0, obst)

	type probe struct {
		z, ti, along int
		want         uint64
	}
	var probes []probe
	for z := 0; z < 2; z++ {
		for ti := range f.tg.Layers[z].Coords {
			for along := 700; along < 1200; along += 60 {
				probes = append(probes, probe{z, ti, along, f.fg.Word(z, ti, along)})
			}
		}
	}

	// Writer: commit wires confined to x,y < 450; with the deck's worst
	// dirty margin well under 250 DBU, their cache invalidation cannot
	// reach the probed region.
	type commit struct {
		a, b geom.Point
	}
	var commits []commit
	for i := 0; i < 12; i++ {
		y := 60 + (i%5)*80
		commits = append(commits, commit{geom.Pt(40+10*i, y), geom.Pt(400, y)})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, c := range commits {
			sh := f.space.AddWire(0, c.a, c.b, f.wt, int32(20+i), shapegrid.RipupStandard)
			f.fg.OnShapeAdded(0, sh)
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, p := range probes {
					if got := f.fg.Word(p.z, p.ti, p.along); got != p.want {
						t.Errorf("mid-commit read changed: layer %d track %d along %d: %x vs %x",
							p.z, p.ti, p.along, got, p.want)
						return
					}
				}
				runtime.Gosched()
			}
		}()
	}
	<-done
	wg.Wait()

	// Reference: identical geometry applied serially.
	g := newFixture(t)
	g.space.AddObstacle(0, obst)
	g.fg.OnWiringChange(0, obst)
	for i, c := range commits {
		sh := g.space.AddWire(0, c.a, c.b, g.wt, int32(20+i), shapegrid.RipupStandard)
		g.fg.OnShapeAdded(0, sh)
	}
	for z := 0; z < 2; z++ {
		for ti := range f.tg.Layers[z].Coords {
			for along := 0; along < 1200; along += 20 {
				if f.fg.Word(z, ti, along) != g.fg.Word(z, ti, along) {
					t.Fatalf("post-commit divergence at layer %d track %d along %d: %x vs %x",
						z, ti, along, f.fg.Word(z, ti, along), g.fg.Word(z, ti, along))
				}
			}
		}
	}
}
