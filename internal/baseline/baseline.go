// Package baseline implements the "industry standard router" (ISR)
// stand-in of the paper's evaluation (§5.3): a classical sequential
// architecture — net-at-a-time global routing with negotiation-based
// (history-cost) rip-up and reroute, greedy track assignment through
// uniform tracks, greedy pin access, and node-based maze routing. It is
// the comparator for Tables I and III; the architectural differences from
// BonnRoute (no resource sharing, no interval labelling, no fast grid, no
// conflict-free access, no track optimization) are exactly the paper's.
package baseline

import (
	"context"
	"time"

	"bonnroute/internal/chip"
	"bonnroute/internal/detail"
	"bonnroute/internal/grid"
	"bonnroute/internal/obs"
	"bonnroute/internal/steiner"
)

// GlobalOptions tune the sequential global router.
type GlobalOptions struct {
	// MaxIterations bounds the negotiation loop. Default 12.
	MaxIterations int
	// HistoryStep is the per-iteration history cost added to overflowed
	// edges. Default 0.5.
	HistoryStep float64
}

// GlobalResult carries the ISR-like global routing outcome.
type GlobalResult struct {
	// Trees[ni] holds the tree edges per net (nil when unrouted).
	Trees [][]int32
	// Iterations used by the negotiation loop.
	Iterations int
	// Overflowed is the number of edges above capacity at the end.
	Overflowed int
	// Cancelled reports that the negotiation loop stopped early because
	// the context was cancelled; Trees holds the partial state.
	Cancelled bool
	Runtime   time.Duration
}

// GlobalRoute runs the classical negotiated-congestion global router: all
// nets are routed one at a time by the Steiner oracle under congestion
// costs; edges that end up overloaded accumulate history cost and their
// nets are ripped and rerouted until clean or out of iterations.
//
// ctx carries cancellation (checked between negotiation iterations) and
// the parent span for per-iteration "negotiate.iter" events.
func GlobalRoute(ctx context.Context, g *grid.Graph, nets []GNet, opt GlobalOptions) *GlobalResult {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.SpanFrom(ctx)
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 12
	}
	if opt.HistoryStep <= 0 {
		opt.HistoryStep = 0.5
	}
	start := time.Now()
	oracle := steiner.NewOracle(g)
	res := &GlobalResult{Trees: make([][]int32, len(nets))}

	load := make([]float64, g.NumEdges())
	history := make([]float64, g.NumEdges())

	cost := func(n *GNet) func(int) float64 {
		return func(e int) float64 {
			cap := g.Cap[e]
			if cap <= 0 || n.Width > cap {
				return -1
			}
			base := float64(g.EdgeLength(e)) + 1
			// Present congestion + accumulated history (negotiation).
			over := (load[e] + n.Width) / cap
			pen := 1.0
			if over > 0.8 {
				pen += 4 * (over - 0.8)
			}
			if load[e]+n.Width > cap {
				pen += 10 + 10*(load[e]+n.Width-cap)
			}
			return base*pen + base*history[e]
		}
	}

	route := func(ni int) {
		n := &nets[ni]
		edges, ok := oracle.Tree(cost(n), n.Terminals)
		if !ok {
			res.Trees[ni] = nil
			return
		}
		t := make([]int32, len(edges))
		for i, e := range edges {
			t[i] = int32(e)
			load[e] += n.Width
		}
		res.Trees[ni] = t
	}
	unroute := func(ni int) {
		for _, e := range res.Trees[ni] {
			load[e] -= nets[ni].Width
		}
		res.Trees[ni] = nil
	}

	for ni := range nets {
		route(ni)
	}
	for iter := 0; iter < opt.MaxIterations; iter++ {
		if ctx.Err() != nil {
			res.Cancelled = true
			break
		}
		res.Iterations = iter + 1
		// Collect overflowed edges and the nets using them. overNets is a
		// slice in net-ID order: reroute order feeds back into congestion,
		// so map iteration here would make results run-dependent.
		var overNets []int
		overEdges := 0
		for e := 0; e < g.NumEdges(); e++ {
			if load[e] > g.Cap[e]+1e-9 {
				overEdges++
				history[e] += opt.HistoryStep
			}
		}
		if overEdges == 0 {
			break
		}
		for ni := range nets {
			for _, e := range res.Trees[ni] {
				if load[int(e)] > g.Cap[e]+1e-9 {
					overNets = append(overNets, ni)
					break
				}
			}
		}
		for _, ni := range overNets {
			unroute(ni)
		}
		for _, ni := range overNets {
			route(ni)
		}
		span.Event("negotiate.iter",
			obs.Int("iter", res.Iterations),
			obs.Int("overflowed_edges", overEdges),
			obs.Int("rerouted_nets", len(overNets)))
	}
	for e := 0; e < g.NumEdges(); e++ {
		if load[e] > g.Cap[e]+1e-9 {
			res.Overflowed++
		}
	}
	res.Runtime = time.Since(start)
	return res
}

// GNet is the baseline's net description (it mirrors sharing.NetSpec
// without importing the resource-sharing package).
type GNet struct {
	ID        int
	Terminals [][]int
	Width     float64
}

// DetailOptions returns the detail-engine configuration that turns it
// into the ISR-like detailed router.
func DetailOptions(workers int) detail.Options {
	return detail.Options{
		Workers:       workers,
		NodeSearch:    true,
		NoFastGrid:    true,
		UniformTracks: true,
		GreedyAccess:  true,
		// Classical cost choices: cheap jogs and vias → the zigzaggy,
		// via-heavy routes the paper's via counts reflect.
		BetaJog: 2,
	}
}

// NewDetail builds the ISR-like detailed router for a chip.
func NewDetail(c *chip.Chip, workers int) *detail.Router {
	return detail.New(c, DetailOptions(workers))
}
