package baseline

import (
	"context"

	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
	"bonnroute/internal/steiner"
)

func testGrid(cap float64) *grid.Graph {
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 1000, 1000), 100, 100, dirs)
	for e := range g.Cap {
		g.Cap[e] = cap
	}
	return g
}

func TestGlobalRouteBasic(t *testing.T) {
	g := testGrid(8)
	var nets []GNet
	for i := 0; i < 10; i++ {
		nets = append(nets, GNet{
			ID:        i,
			Terminals: [][]int{{g.Vertex(0, i%10, 0)}, {g.Vertex(9, i%10, 0)}},
			Width:     1,
		})
	}
	res := GlobalRoute(context.Background(), g, nets, GlobalOptions{})
	if res.Overflowed != 0 {
		t.Fatalf("overflowed = %d", res.Overflowed)
	}
	for ni, tr := range res.Trees {
		if tr == nil {
			t.Fatalf("net %d unrouted", ni)
		}
		edges := make([]int, len(tr))
		for i, e := range tr {
			edges[i] = int(e)
		}
		if !steiner.ValidateTree(g, edges, nets[ni].Terminals) {
			t.Fatalf("net %d invalid tree", ni)
		}
	}
}

func TestGlobalRouteNegotiation(t *testing.T) {
	// Contention: 6 identical nets over capacity-2 rows; negotiation must
	// spread them to a zero-overflow solution.
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 1000, 300), 100, 100, dirs)
	for e := range g.Cap {
		if g.IsVia(e) || g.EdgeLayer(e) == 1 {
			g.Cap[e] = 8
		} else {
			g.Cap[e] = 2
		}
	}
	var nets []GNet
	for i := 0; i < 6; i++ {
		nets = append(nets, GNet{
			ID:        i,
			Terminals: [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(g.NX-1, 0, 0)}},
			Width:     1,
		})
	}
	res := GlobalRoute(context.Background(), g, nets, GlobalOptions{})
	if res.Overflowed != 0 {
		t.Fatalf("negotiation left %d edges overflowed after %d iterations",
			res.Overflowed, res.Iterations)
	}
	// The nets must have spread over several rows (row 0 fits only 2).
	rows := map[int]bool{}
	for _, tr := range res.Trees {
		for _, e := range tr {
			if !g.IsVia(int(e)) && g.EdgeLayer(int(e)) == 0 {
				a, _ := g.EdgeEndpoints(int(e))
				_, ty, _ := g.VertexCoords(a)
				rows[ty] = true
			}
		}
	}
	if len(rows) < 2 {
		t.Fatalf("nets did not spread: rows used = %v", rows)
	}
}

func TestGlobalRouteInfeasible(t *testing.T) {
	g := testGrid(0)
	nets := []GNet{{ID: 0, Terminals: [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(5, 0, 0)}}, Width: 1}}
	res := GlobalRoute(context.Background(), g, nets, GlobalOptions{})
	if res.Trees[0] != nil {
		t.Fatal("expected unrouted net on zero-capacity grid")
	}
}

func TestNewDetailIsClassicalConfig(t *testing.T) {
	c := chip.Generate(chip.GenParams{Seed: 1, Rows: 3, Cols: 8, NumNets: 8})
	r := NewDetail(c, 1)
	// Uniform tracks: evenly pitched on every layer.
	for z := 0; z < c.NumLayers(); z++ {
		coords := r.TG.Layers[z].Coords
		pitch := c.Deck.Layers[z].Pitch
		for i := 1; i < len(coords); i++ {
			if coords[i]-coords[i-1] != pitch {
				t.Fatalf("layer %d not uniformly pitched: %d", z, coords[i]-coords[i-1])
			}
		}
	}
	res := r.Route(context.Background())
	if res.Routed == 0 {
		t.Fatal("baseline router routed nothing")
	}
}
