package blockgrid

import (
	"math/rand"
	"testing"

	"bonnroute/internal/geom"
)

func TestCoordinatesBasic(t *testing.T) {
	// A single base coordinate produces a τ-lattice ±2τ around it.
	got := Coordinates([]int{100}, 10, geom.Iv(0, 200))
	want := map[int]bool{80: true, 90: true, 100: true, 110: true, 120: true}
	for _, x := range got {
		if !want[x] {
			t.Fatalf("unexpected coordinate %d in %v", x, got)
		}
		delete(want, x)
	}
	if len(want) != 0 {
		t.Fatalf("missing coordinates %v (got %v)", want, got)
	}
}

func TestCoordinatesClustering(t *testing.T) {
	// Two coordinates closer than 4τ cluster: fill spans both ±2τ with
	// both phases.
	got := Coordinates([]int{100, 115}, 10, geom.Iv(0, 300))
	has := func(x int) bool {
		for _, g := range got {
			if g == x {
				return true
			}
		}
		return false
	}
	for _, x := range []int{80, 90, 100, 110, 120, 130, 95, 105, 115, 125, 135, 85} {
		if !has(x) {
			t.Fatalf("missing %d in %v", x, got)
		}
	}
	// Two far-apart coordinates do not bridge.
	got = Coordinates([]int{0, 1000}, 10, geom.Iv(-100, 1100))
	for _, x := range got {
		if x > 20 && x < 980 {
			t.Fatalf("fill leaked into the gap: %d", x)
		}
	}
}

func TestCoordinatesDegenerate(t *testing.T) {
	if got := Coordinates([]int{5}, 0, geom.Iv(0, 10)); got != nil {
		t.Fatal("τ=0 must return nil")
	}
	if got := Coordinates([]int{5}, 3, geom.Iv(10, 10)); got != nil {
		t.Fatal("empty span must return nil")
	}
	// Clipping respects the span.
	got := Coordinates([]int{0}, 10, geom.Iv(0, 10))
	for _, x := range got {
		if x < 0 || x > 10 {
			t.Fatalf("coordinate %d outside span", x)
		}
	}
}

func TestSearchStraight(t *testing.T) {
	pts, length, ok := Search(nil, geom.Pt(0, 0), geom.Pt(50, 0), 10, geom.R(-50, -50, 150, 100))
	if !ok {
		t.Fatal("no path")
	}
	if length != 50 {
		t.Fatalf("length = %d", length)
	}
	if !SegmentsOK(pts, 10, nil) {
		t.Fatalf("path %v violates τ", pts)
	}
}

func TestSearchBend(t *testing.T) {
	pts, length, ok := Search(nil, geom.Pt(0, 0), geom.Pt(40, 30), 10, geom.R(-50, -50, 150, 150))
	if !ok {
		t.Fatal("no path")
	}
	if length != 70 {
		t.Fatalf("length = %d, want 70", length)
	}
	if !SegmentsOK(pts, 10, nil) {
		t.Fatalf("path %v violates τ", pts)
	}
}

// TestFigure5Scenario is the paper's Fig. 5: a target closer than τ in
// one axis forces a longer approach so that all segments stay ≥ τ.
func TestFigure5Scenario(t *testing.T) {
	tau := 20
	s := geom.Pt(0, 0)
	tgt := geom.Pt(50, 5) // Δy = 5 < τ
	pts, length, ok := Search(nil, s, tgt, tau, geom.R(-100, -100, 200, 200))
	if !ok {
		t.Fatal("no τ-feasible path")
	}
	if !SegmentsOK(pts, tau, nil) {
		t.Fatalf("segments violate τ: %v", pts)
	}
	// The geometric shortest path has length 55 but needs a 5-long
	// segment; τ-feasible must detour: length ≥ 50 + 2·τ − ... at least
	// strictly above 55 unless it overshoots smartly: going up ≥τ and
	// back down ≥τ costs ≥ 50 + τ + (τ−5)... any feasible solution is
	// longer than 55.
	if length <= 55 {
		t.Fatalf("length = %d: τ-infeasible shortcut taken", length)
	}
	// And it must be bounded: a simple overshoot solution exists with
	// length 50 + 20 + 15 = 85.
	if length > 95 {
		t.Fatalf("length = %d: detour unreasonably long", length)
	}
}

func TestSearchAvoidsObstacles(t *testing.T) {
	obst := []geom.Rect{geom.R(20, -40, 30, 40)}
	pts, length, ok := Search(obst, geom.Pt(0, 0), geom.Pt(60, 0), 10, geom.R(-100, -100, 200, 200))
	if !ok {
		t.Fatal("no path")
	}
	if !SegmentsOK(pts, 10, obst) {
		t.Fatalf("path %v enters obstacle", pts)
	}
	if length <= 60 {
		t.Fatalf("length = %d: obstacle ignored", length)
	}
}

func TestSearchInfeasible(t *testing.T) {
	// Box around the source with walls thicker than the bounds allow
	// escaping.
	obst := []geom.Rect{
		geom.R(-30, -30, 30, -10),
		geom.R(-30, 10, 30, 30),
		geom.R(-30, -30, -10, 30),
		geom.R(10, -30, 30, 30),
	}
	_, _, ok := Search(obst, geom.Pt(0, 0), geom.Pt(100, 0), 15, geom.R(-50, -50, 150, 50))
	if ok {
		t.Fatal("expected no path out of the box")
	}
}

func TestSearchSameSourceTarget(t *testing.T) {
	pts, length, ok := Search(nil, geom.Pt(5, 5), geom.Pt(5, 5), 10, geom.R(0, 0, 10, 10))
	if !ok || length != 0 || len(pts) != 1 {
		t.Fatalf("self path: %v %d %v", pts, length, ok)
	}
}

// Property: on random instances, found paths are always τ-feasible and
// obstacle-free; and when a wide-open straight corridor exists, the path
// is found.
func TestSearchRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		tau := 5 + rng.Intn(15)
		bounds := geom.R(-200, -200, 200, 200)
		var obst []geom.Rect
		for i := 0; i < rng.Intn(6); i++ {
			x, y := rng.Intn(200)-100, rng.Intn(200)-100
			obst = append(obst, geom.R(x, y, x+10+rng.Intn(60), y+10+rng.Intn(60)))
		}
		s := geom.Pt(-150, -150)
		tgt := geom.Pt(150, 150)
		insideObst := false
		for _, o := range obst {
			if o.Contains(s) || o.Contains(tgt) {
				insideObst = true
			}
		}
		if insideObst {
			continue
		}
		pts, length, ok := Search(obst, s, tgt, tau, bounds)
		if !ok {
			t.Fatalf("trial %d: no path despite open borders", trial)
		}
		if !SegmentsOK(pts, tau, obst) {
			t.Fatalf("trial %d: infeasible path %v", trial, pts)
		}
		if length < s.Dist1(tgt) {
			t.Fatalf("trial %d: length %d below ℓ1 distance", trial, length)
		}
		if pts[0] != s || pts[len(pts)-1] != tgt {
			t.Fatalf("trial %d: endpoints wrong", trial)
		}
	}
}

func TestSegmentsOK(t *testing.T) {
	obst := []geom.Rect{geom.R(10, 10, 20, 20)}
	// Non-rectilinear.
	if SegmentsOK([]geom.Point{geom.Pt(0, 0), geom.Pt(5, 5)}, 1, nil) {
		t.Fatal("diagonal accepted")
	}
	// Short segment.
	if SegmentsOK([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}, 5, nil) {
		t.Fatal("short segment accepted")
	}
	// Through obstacle.
	if SegmentsOK([]geom.Point{geom.Pt(0, 15), geom.Pt(30, 15)}, 5, obst) {
		t.Fatal("obstacle crossing accepted")
	}
	// Along the border is fine.
	if !SegmentsOK([]geom.Point{geom.Pt(0, 10), geom.Pt(30, 10)}, 5, obst) {
		t.Fatal("border run rejected")
	}
	// Empty path.
	if !SegmentsOK(nil, 5, obst) {
		t.Fatal("empty path rejected")
	}
}
