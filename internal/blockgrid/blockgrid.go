// Package blockgrid implements BonnRoute's blockage grid for off-track
// wiring (paper §3.8): Algorithm 3 generates the candidate coordinates,
// and a path-preserving digraph — four direction-tagged copies of each
// grid vertex, with straight arcs between neighbors and post-bend arcs
// that jump at least τ — lets a plain Dijkstra find shortest rectilinear
// paths whose every segment has length at least τ (the minimum-segment-
// length abstraction of the same-net rules, §3.7), avoiding all obstacle
// interiors. By the theorem of Maßberg–Nieberg the grid contains an
// optimal τ-feasible path whenever one exists.
//
// Obstacles must be pre-inflated by the caller (wire half-width plus
// required spacing), as usual in gridless routing.
package blockgrid

import (
	"container/heap"
	"sort"

	"bonnroute/internal/geom"
)

// Coordinates runs Algorithm 3 on one axis: base holds the obstacle
// border coordinates plus the source/target coordinates; the result adds
// τ-spaced fill around every cluster of base coordinates closer than 4τ,
// extended 2τ beyond, clipped to span.
func Coordinates(base []int, tau int, span geom.Interval) []int {
	if tau <= 0 || span.Empty() {
		return nil
	}
	sorted := append([]int(nil), base...)
	sort.Ints(sorted)
	sorted = dedup(sorted)

	out := map[int]bool{}
	add := func(x int) {
		if x >= span.Lo && x <= span.Hi {
			out[x] = true
		}
	}
	for _, x := range sorted {
		add(x)
	}
	for i, x := range sorted {
		// Cluster extent around i: extend while consecutive gaps < 4τ.
		lo, hi := i, i
		for lo > 0 && sorted[lo]-sorted[lo-1] < 4*tau {
			lo--
		}
		for hi+1 < len(sorted) && sorted[hi+1]-sorted[hi] < 4*tau {
			hi++
		}
		from, to := sorted[lo]-2*tau, sorted[hi]+2*tau
		// Anchor the τ-lattice at x (phases matter for optimality).
		start := x - ((x-from)/tau+1)*tau
		for p := start; p <= to; p += tau {
			if p >= from {
				add(p)
			}
		}
	}
	res := make([]int, 0, len(out))
	for x := range out {
		res = append(res, x)
	}
	sort.Ints(res)
	return res
}

func dedup(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Search finds a shortest τ-feasible rectilinear path from s to t within
// bounds, avoiding the interiors of the obstacles. It returns the
// waypoints (including s and t) and the ℓ1 length. ok is false when no
// τ-feasible path exists on the blockage grid.
func Search(obstacles []geom.Rect, s, t geom.Point, tau int, bounds geom.Rect) (pts []geom.Point, length int, ok bool) {
	if s == t {
		return []geom.Point{s}, 0, true
	}
	var xs, ys []int
	xs = append(xs, s.X, t.X, bounds.XMin, bounds.XMax)
	ys = append(ys, s.Y, t.Y, bounds.YMin, bounds.YMax)
	for _, o := range obstacles {
		xs = append(xs, o.XMin, o.XMax)
		ys = append(ys, o.YMin, o.YMax)
	}
	gx := Coordinates(xs, tau, geom.Interval{Lo: bounds.XMin, Hi: bounds.XMax})
	gy := Coordinates(ys, tau, geom.Interval{Lo: bounds.YMin, Hi: bounds.YMax})
	g := &bgraph{
		xs: gx, ys: gy, tau: tau,
		obstacles: obstacles,
	}
	si, ok1 := g.vertexOf(s)
	ti, ok2 := g.vertexOf(t)
	if !ok1 || !ok2 {
		return nil, 0, false
	}
	return g.dijkstra(si, ti)
}

// Directions of travel.
const (
	dirNone = iota // at the source, no incoming direction
	dirE
	dirW
	dirN
	dirS
	numDirs
)

type bgraph struct {
	xs, ys    []int
	tau       int
	obstacles []geom.Rect
}

type bvertex struct {
	xi, yi int
}

func (g *bgraph) vertexOf(p geom.Point) (bvertex, bool) {
	xi := sort.SearchInts(g.xs, p.X)
	yi := sort.SearchInts(g.ys, p.Y)
	if xi >= len(g.xs) || g.xs[xi] != p.X || yi >= len(g.ys) || g.ys[yi] != p.Y {
		return bvertex{}, false
	}
	return bvertex{xi, yi}, true
}

// segmentFree reports whether the axis-parallel segment between grid
// points a and b avoids all obstacle interiors. Running exactly along an
// obstacle border is allowed (the obstacles arrive pre-inflated).
func (g *bgraph) segmentFree(ax, ay, bx, by int) bool {
	seg := geom.R(ax, ay, bx, by)
	for _, o := range g.obstacles {
		if !segAvoidsInterior(seg, o) {
			return false
		}
	}
	return true
}

func segAvoidsInterior(seg, o geom.Rect) bool {
	if seg.YMin == seg.YMax { // horizontal (or degenerate point)
		if seg.YMin <= o.YMin || seg.YMin >= o.YMax {
			return true
		}
		return seg.XMax <= o.XMin || seg.XMin >= o.XMax
	}
	// Vertical.
	if seg.XMin <= o.XMin || seg.XMin >= o.XMax {
		return true
	}
	return seg.YMax <= o.YMin || seg.YMin >= o.YMax
}

type bstate struct {
	v   bvertex
	dir uint8
}

// sid maps a state to a dense index for the array-based Dijkstra.
func (g *bgraph) sid(st bstate) int {
	return (st.v.xi*len(g.ys)+st.v.yi)*int(numDirs) + int(st.dir)
}

func (g *bgraph) dijkstra(s, t bvertex) ([]geom.Point, int, bool) {
	n := len(g.xs) * len(g.ys) * int(numDirs)
	const unset = int(^uint(0) >> 2)
	dist := make([]int, n)
	parent := make([]int32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = unset
		parent[i] = -1
	}
	stateOf := func(id int) bstate {
		d := uint8(id % int(numDirs))
		id /= int(numDirs)
		return bstate{bvertex{id / len(g.ys), id % len(g.ys)}, d}
	}
	pq := &bheap{}
	relax := func(st bstate, d int, from int32) {
		id := g.sid(st)
		if dist[id] <= d {
			return
		}
		dist[id] = d
		parent[id] = from
		heap.Push(pq, bitem{d, int32(id)})
	}
	relax(bstate{s, dirNone}, 0, -1)

	for pq.Len() > 0 {
		it := heap.Pop(pq).(bitem)
		id := int(it.id)
		if done[id] || it.d > dist[id] {
			continue
		}
		done[id] = true
		st := stateOf(id)
		if st.v == t {
			// Reconstruct.
			var pts []geom.Point
			for cur := int32(id); cur >= 0; cur = parent[cur] {
				cs := stateOf(int(cur))
				p := geom.Pt(g.xs[cs.v.xi], g.ys[cs.v.yi])
				if len(pts) == 0 || pts[len(pts)-1] != p {
					pts = append(pts, p)
				}
			}
			for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
				pts[i], pts[j] = pts[j], pts[i]
			}
			return pts, it.d, true
		}
		g.neighbors(st, func(nb bstate, cost int) {
			relax(nb, it.d+cost, int32(id))
		})
	}
	return nil, 0, false
}

// neighbors enumerates arcs: straight continuation to the adjacent grid
// coordinate, and — from a bend (or the source) — jumps of length ≥ τ in
// each perpendicular (resp. every) direction.
func (g *bgraph) neighbors(st bstate, visit func(nb bstate, cost int)) {
	x, y := g.xs[st.v.xi], g.ys[st.v.yi]

	straight := func(dir uint8) {
		switch dir {
		case dirE:
			if st.v.xi+1 < len(g.xs) {
				nx := g.xs[st.v.xi+1]
				if g.segmentFree(x, y, nx, y) {
					visit(bstate{bvertex{st.v.xi + 1, st.v.yi}, dirE}, nx-x)
				}
			}
		case dirW:
			if st.v.xi > 0 {
				nx := g.xs[st.v.xi-1]
				if g.segmentFree(nx, y, x, y) {
					visit(bstate{bvertex{st.v.xi - 1, st.v.yi}, dirW}, x-nx)
				}
			}
		case dirN:
			if st.v.yi+1 < len(g.ys) {
				ny := g.ys[st.v.yi+1]
				if g.segmentFree(x, y, x, ny) {
					visit(bstate{bvertex{st.v.xi, st.v.yi + 1}, dirN}, ny-y)
				}
			}
		case dirS:
			if st.v.yi > 0 {
				ny := g.ys[st.v.yi-1]
				if g.segmentFree(x, ny, x, y) {
					visit(bstate{bvertex{st.v.xi, st.v.yi - 1}, dirS}, y-ny)
				}
			}
		}
	}

	// jump emits the post-bend arc: the nearest vertex at distance ≥ τ.
	jump := func(dir uint8) {
		switch dir {
		case dirE:
			for xi := st.v.xi + 1; xi < len(g.xs); xi++ {
				if g.xs[xi]-x >= g.tau {
					if g.segmentFree(x, y, g.xs[xi], y) {
						visit(bstate{bvertex{xi, st.v.yi}, dirE}, g.xs[xi]-x)
					}
					return
				}
			}
		case dirW:
			for xi := st.v.xi - 1; xi >= 0; xi-- {
				if x-g.xs[xi] >= g.tau {
					if g.segmentFree(g.xs[xi], y, x, y) {
						visit(bstate{bvertex{xi, st.v.yi}, dirW}, x-g.xs[xi])
					}
					return
				}
			}
		case dirN:
			for yi := st.v.yi + 1; yi < len(g.ys); yi++ {
				if g.ys[yi]-y >= g.tau {
					if g.segmentFree(x, y, x, g.ys[yi]) {
						visit(bstate{bvertex{st.v.xi, yi}, dirN}, g.ys[yi]-y)
					}
					return
				}
			}
		case dirS:
			for yi := st.v.yi - 1; yi >= 0; yi-- {
				if y-g.ys[yi] >= g.tau {
					if g.segmentFree(x, g.ys[yi], x, y) {
						visit(bstate{bvertex{st.v.xi, yi}, dirS}, y-g.ys[yi])
					}
					return
				}
			}
		}
	}

	switch st.dir {
	case dirNone:
		// First segment must also be ≥ τ.
		jump(dirE)
		jump(dirW)
		jump(dirN)
		jump(dirS)
	case dirE, dirW:
		straight(st.dir)
		jump(dirN)
		jump(dirS)
	case dirN, dirS:
		straight(st.dir)
		jump(dirE)
		jump(dirW)
	}
}

type bitem struct {
	d  int
	id int32
}

type bheap []bitem

func (h bheap) Len() int            { return len(h) }
func (h bheap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h bheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bheap) Push(x interface{}) { *h = append(*h, x.(bitem)) }
func (h *bheap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// MergeCollinear merges consecutive waypoints that continue in the same
// signed direction into single segments (a segment is a maximal straight
// piece; waypoint lists may subdivide it).
func MergeCollinear(pts []geom.Point) []geom.Point {
	if len(pts) <= 2 {
		return pts
	}
	out := pts[:1:1]
	for i := 1; i < len(pts); i++ {
		p := pts[i]
		last := out[len(out)-1]
		if p == last {
			continue
		}
		if len(out) >= 2 {
			prev := out[len(out)-2]
			sameDir := (prev.X == last.X && last.X == p.X && sign(last.Y-prev.Y) == sign(p.Y-last.Y)) ||
				(prev.Y == last.Y && last.Y == p.Y && sign(last.X-prev.X) == sign(p.X-last.X))
			if sameDir {
				out[len(out)-1] = p
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// SegmentsOK verifies that every maximal segment of a rectilinear path
// has length ≥ τ and avoids obstacle interiors (the τ-feasibility audit
// used in tests and by pin access). Collinear waypoint runs are merged
// first.
func SegmentsOK(pts []geom.Point, tau int, obstacles []geom.Rect) bool {
	pts = MergeCollinear(pts)
	if len(pts) < 2 {
		return true
	}
	g := &bgraph{obstacles: obstacles}
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.X != b.X && a.Y != b.Y {
			return false // not rectilinear
		}
		if a.Dist1(b) < tau {
			return false
		}
		if !g.segmentFree(min(a.X, b.X), min(a.Y, b.Y), max(a.X, b.X), max(a.Y, b.Y)) {
			return false
		}
	}
	return true
}
