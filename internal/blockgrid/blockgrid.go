// Package blockgrid implements BonnRoute's blockage grid for off-track
// wiring (paper §3.8): Algorithm 3 generates the candidate coordinates,
// and a path-preserving digraph — four direction-tagged copies of each
// grid vertex, with straight arcs between neighbors and post-bend arcs
// that jump at least τ — lets a plain Dijkstra find shortest rectilinear
// paths whose every segment has length at least τ (the minimum-segment-
// length abstraction of the same-net rules, §3.7), avoiding all obstacle
// interiors. By the theorem of Maßberg–Nieberg the grid contains an
// optimal τ-feasible path whenever one exists.
//
// Obstacles must be pre-inflated by the caller (wire half-width plus
// required spacing), as usual in gridless routing.
package blockgrid

import (
	"sort"
	"sync"

	"bonnroute/internal/geom"
)

// Coordinates runs Algorithm 3 on one axis: base holds the obstacle
// border coordinates plus the source/target coordinates; the result adds
// τ-spaced fill around every cluster of base coordinates closer than 4τ,
// extended 2τ beyond, clipped to span.
func Coordinates(base []int, tau int, span geom.Interval) []int {
	var s Searcher
	return s.coords(nil, base, tau, span)
}

// coords is Coordinates writing into dst, with the sorted base copy held
// in the searcher's scratch buffer so repeated searches don't reallocate.
func (s *Searcher) coords(dst []int, base []int, tau int, span geom.Interval) []int {
	dst = dst[:0]
	if tau <= 0 || span.Empty() {
		return dst
	}
	s.sortBuf = append(s.sortBuf[:0], base...)
	sort.Ints(s.sortBuf)
	sorted := dedup(s.sortBuf)

	add := func(x int) {
		if x >= span.Lo && x <= span.Hi {
			dst = append(dst, x)
		}
	}
	for _, x := range sorted {
		add(x)
	}
	for i, x := range sorted {
		// Cluster extent around i: extend while consecutive gaps < 4τ.
		lo, hi := i, i
		for lo > 0 && sorted[lo]-sorted[lo-1] < 4*tau {
			lo--
		}
		for hi+1 < len(sorted) && sorted[hi+1]-sorted[hi] < 4*tau {
			hi++
		}
		from, to := sorted[lo]-2*tau, sorted[hi]+2*tau
		// Anchor the τ-lattice at x (phases matter for optimality).
		start := x - ((x-from)/tau+1)*tau
		for p := start; p <= to; p += tau {
			if p >= from {
				add(p)
			}
		}
	}
	sort.Ints(dst)
	return dedup(dst)
}

func dedup(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Searcher owns the buffers of the τ-feasible path search — grid
// coordinates, Dijkstra state arrays, and the priority queue — so
// repeated searches (pin-access catalogues probe many endpoints per pin)
// reuse memory instead of rebuilding it per call. One Searcher serves one
// goroutine at a time.
type Searcher struct {
	g       bgraph
	sortBuf []int
	xbase   []int
	ybase   []int
	dist    []int
	parent  []int32
	done    []bool
	pq      bheap
}

// NewSearcher returns an empty searcher; buffers grow on demand.
func NewSearcher() *Searcher { return &Searcher{} }

// searcherPool backs the package-level Search so one-shot callers still
// amortize buffer memory across calls.
var searcherPool = sync.Pool{New: func() interface{} { return NewSearcher() }}

// Search finds a shortest τ-feasible rectilinear path from s to t within
// bounds, avoiding the interiors of the obstacles. It returns the
// waypoints (including s and t) and the ℓ1 length. ok is false when no
// τ-feasible path exists on the blockage grid.
func Search(obstacles []geom.Rect, s, t geom.Point, tau int, bounds geom.Rect) (pts []geom.Point, length int, ok bool) {
	sr := searcherPool.Get().(*Searcher)
	pts, length, ok = sr.Search(obstacles, s, t, tau, bounds)
	searcherPool.Put(sr)
	return pts, length, ok
}

// Search is the pooled-buffer form of the package-level Search.
func (s *Searcher) Search(obstacles []geom.Rect, from, to geom.Point, tau int, bounds geom.Rect) (pts []geom.Point, length int, ok bool) {
	if from == to {
		return []geom.Point{from}, 0, true
	}
	s.xbase = append(s.xbase[:0], from.X, to.X, bounds.XMin, bounds.XMax)
	s.ybase = append(s.ybase[:0], from.Y, to.Y, bounds.YMin, bounds.YMax)
	for _, o := range obstacles {
		s.xbase = append(s.xbase, o.XMin, o.XMax)
		s.ybase = append(s.ybase, o.YMin, o.YMax)
	}
	s.g.xs = s.coords(s.g.xs, s.xbase, tau, geom.Interval{Lo: bounds.XMin, Hi: bounds.XMax})
	s.g.ys = s.coords(s.g.ys, s.ybase, tau, geom.Interval{Lo: bounds.YMin, Hi: bounds.YMax})
	s.g.tau = tau
	s.g.obstacles = obstacles
	si, ok1 := s.g.vertexOf(from)
	ti, ok2 := s.g.vertexOf(to)
	if !ok1 || !ok2 {
		s.g.obstacles = nil
		return nil, 0, false
	}
	pts, length, ok = s.dijkstra(si, ti)
	s.g.obstacles = nil // don't retain caller memory in the pool
	return pts, length, ok
}

// Directions of travel.
const (
	dirNone = iota // at the source, no incoming direction
	dirE
	dirW
	dirN
	dirS
	numDirs
)

type bgraph struct {
	xs, ys    []int
	tau       int
	obstacles []geom.Rect
}

type bvertex struct {
	xi, yi int
}

func (g *bgraph) vertexOf(p geom.Point) (bvertex, bool) {
	xi := sort.SearchInts(g.xs, p.X)
	yi := sort.SearchInts(g.ys, p.Y)
	if xi >= len(g.xs) || g.xs[xi] != p.X || yi >= len(g.ys) || g.ys[yi] != p.Y {
		return bvertex{}, false
	}
	return bvertex{xi, yi}, true
}

// segmentFree reports whether the axis-parallel segment between grid
// points a and b avoids all obstacle interiors. Running exactly along an
// obstacle border is allowed (the obstacles arrive pre-inflated).
func (g *bgraph) segmentFree(ax, ay, bx, by int) bool {
	seg := geom.R(ax, ay, bx, by)
	for _, o := range g.obstacles {
		if !segAvoidsInterior(seg, o) {
			return false
		}
	}
	return true
}

func segAvoidsInterior(seg, o geom.Rect) bool {
	if seg.YMin == seg.YMax { // horizontal (or degenerate point)
		if seg.YMin <= o.YMin || seg.YMin >= o.YMax {
			return true
		}
		return seg.XMax <= o.XMin || seg.XMin >= o.XMax
	}
	// Vertical.
	if seg.XMin <= o.XMin || seg.XMin >= o.XMax {
		return true
	}
	return seg.YMax <= o.YMin || seg.YMin >= o.YMax
}

type bstate struct {
	v   bvertex
	dir uint8
}

// sid maps a state to a dense index for the array-based Dijkstra.
func (g *bgraph) sid(st bstate) int {
	return (st.v.xi*len(g.ys)+st.v.yi)*int(numDirs) + int(st.dir)
}

// stateOf inverts sid.
func (g *bgraph) stateOf(id int) bstate {
	d := uint8(id % int(numDirs))
	id /= int(numDirs)
	return bstate{bvertex{id / len(g.ys), id % len(g.ys)}, d}
}

func (s *Searcher) dijkstra(from, to bvertex) ([]geom.Point, int, bool) {
	g := &s.g
	n := len(g.xs) * len(g.ys) * int(numDirs)
	const unset = int(^uint(0) >> 2)
	if cap(s.dist) < n {
		s.dist = make([]int, n)
		s.parent = make([]int32, n)
		s.done = make([]bool, n)
	}
	dist, parent, done := s.dist[:n], s.parent[:n], s.done[:n]
	for i := range dist {
		dist[i] = unset
		parent[i] = -1
		done[i] = false
	}
	pq := s.pq[:0]
	relax := func(st bstate, d int, fromID int32) {
		id := g.sid(st)
		if dist[id] <= d {
			return
		}
		dist[id] = d
		parent[id] = fromID
		pq.push(bitem{d, int32(id)})
	}
	relax(bstate{from, dirNone}, 0, -1)

	for len(pq) > 0 {
		it := pq.pop()
		id := int(it.id)
		if done[id] || it.d > dist[id] {
			continue
		}
		done[id] = true
		st := g.stateOf(id)
		if st.v == to {
			// Reconstruct.
			var pts []geom.Point
			for cur := int32(id); cur >= 0; cur = parent[cur] {
				cs := g.stateOf(int(cur))
				p := geom.Pt(g.xs[cs.v.xi], g.ys[cs.v.yi])
				if len(pts) == 0 || pts[len(pts)-1] != p {
					pts = append(pts, p)
				}
			}
			for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
				pts[i], pts[j] = pts[j], pts[i]
			}
			s.pq = pq[:0]
			return pts, it.d, true
		}
		g.neighbors(st, func(nb bstate, cost int) {
			relax(nb, it.d+cost, int32(id))
		})
	}
	s.pq = pq[:0]
	return nil, 0, false
}

// neighbors enumerates arcs: straight continuation to the adjacent grid
// coordinate, and — from a bend (or the source) — jumps of length ≥ τ in
// each perpendicular (resp. every) direction.
func (g *bgraph) neighbors(st bstate, visit func(nb bstate, cost int)) {
	x, y := g.xs[st.v.xi], g.ys[st.v.yi]

	straight := func(dir uint8) {
		switch dir {
		case dirE:
			if st.v.xi+1 < len(g.xs) {
				nx := g.xs[st.v.xi+1]
				if g.segmentFree(x, y, nx, y) {
					visit(bstate{bvertex{st.v.xi + 1, st.v.yi}, dirE}, nx-x)
				}
			}
		case dirW:
			if st.v.xi > 0 {
				nx := g.xs[st.v.xi-1]
				if g.segmentFree(nx, y, x, y) {
					visit(bstate{bvertex{st.v.xi - 1, st.v.yi}, dirW}, x-nx)
				}
			}
		case dirN:
			if st.v.yi+1 < len(g.ys) {
				ny := g.ys[st.v.yi+1]
				if g.segmentFree(x, y, x, ny) {
					visit(bstate{bvertex{st.v.xi, st.v.yi + 1}, dirN}, ny-y)
				}
			}
		case dirS:
			if st.v.yi > 0 {
				ny := g.ys[st.v.yi-1]
				if g.segmentFree(x, ny, x, y) {
					visit(bstate{bvertex{st.v.xi, st.v.yi - 1}, dirS}, y-ny)
				}
			}
		}
	}

	// jump emits the post-bend arc: the nearest vertex at distance ≥ τ.
	jump := func(dir uint8) {
		switch dir {
		case dirE:
			for xi := st.v.xi + 1; xi < len(g.xs); xi++ {
				if g.xs[xi]-x >= g.tau {
					if g.segmentFree(x, y, g.xs[xi], y) {
						visit(bstate{bvertex{xi, st.v.yi}, dirE}, g.xs[xi]-x)
					}
					return
				}
			}
		case dirW:
			for xi := st.v.xi - 1; xi >= 0; xi-- {
				if x-g.xs[xi] >= g.tau {
					if g.segmentFree(g.xs[xi], y, x, y) {
						visit(bstate{bvertex{xi, st.v.yi}, dirW}, x-g.xs[xi])
					}
					return
				}
			}
		case dirN:
			for yi := st.v.yi + 1; yi < len(g.ys); yi++ {
				if g.ys[yi]-y >= g.tau {
					if g.segmentFree(x, y, x, g.ys[yi]) {
						visit(bstate{bvertex{st.v.xi, yi}, dirN}, g.ys[yi]-y)
					}
					return
				}
			}
		case dirS:
			for yi := st.v.yi - 1; yi >= 0; yi-- {
				if y-g.ys[yi] >= g.tau {
					if g.segmentFree(x, g.ys[yi], x, y) {
						visit(bstate{bvertex{st.v.xi, yi}, dirS}, y-g.ys[yi])
					}
					return
				}
			}
		}
	}

	switch st.dir {
	case dirNone:
		// First segment must also be ≥ τ.
		jump(dirE)
		jump(dirW)
		jump(dirN)
		jump(dirS)
	case dirE, dirW:
		straight(st.dir)
		jump(dirN)
		jump(dirS)
	case dirN, dirS:
		straight(st.dir)
		jump(dirE)
		jump(dirW)
	}
}

type bitem struct {
	d  int
	id int32
}

// bheap is a concrete-typed binary min-heap on d. The sift order matches
// container/heap's exactly (left child preferred on ties), so replacing
// the interface-based heap — which boxed one allocation per Push — left
// pop sequences, and therefore found paths, unchanged.
type bheap []bitem

func (h *bheap) push(it bitem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[i].d >= s[p].d {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *bheap) pop() bitem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l].d < s[m].d {
			m = l
		}
		if r < n && s[r].d < s[m].d {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// MergeCollinear merges consecutive waypoints that continue in the same
// signed direction into single segments (a segment is a maximal straight
// piece; waypoint lists may subdivide it).
func MergeCollinear(pts []geom.Point) []geom.Point {
	if len(pts) <= 2 {
		return pts
	}
	out := pts[:1:1]
	for i := 1; i < len(pts); i++ {
		p := pts[i]
		last := out[len(out)-1]
		if p == last {
			continue
		}
		if len(out) >= 2 {
			prev := out[len(out)-2]
			sameDir := (prev.X == last.X && last.X == p.X && sign(last.Y-prev.Y) == sign(p.Y-last.Y)) ||
				(prev.Y == last.Y && last.Y == p.Y && sign(last.X-prev.X) == sign(p.X-last.X))
			if sameDir {
				out[len(out)-1] = p
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// SegmentsOK verifies that every maximal segment of a rectilinear path
// has length ≥ τ and avoids obstacle interiors (the τ-feasibility audit
// used in tests and by pin access). Collinear waypoint runs are merged
// first.
func SegmentsOK(pts []geom.Point, tau int, obstacles []geom.Rect) bool {
	pts = MergeCollinear(pts)
	if len(pts) < 2 {
		return true
	}
	g := &bgraph{obstacles: obstacles}
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.X != b.X && a.Y != b.Y {
			return false // not rectilinear
		}
		if a.Dist1(b) < tau {
			return false
		}
		if !g.segmentFree(min(a.X, b.X), min(a.Y, b.Y), max(a.X, b.X), max(a.Y, b.Y)) {
			return false
		}
	}
	return true
}
