package incremental

import (
	"context"
	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/geom"
)

func routeSmall(t *testing.T, seed int64) (*chip.Chip, *core.Result) {
	t.Helper()
	c := chip.Generate(chip.GenParams{
		Seed: seed, Rows: 5, Cols: 20, NumNets: 36, NumLayers: 4, LocalityRadius: 3,
	})
	return c, core.RouteBonnRoute(context.Background(), c, core.Options{Seed: seed, Workers: 1})
}

// TestEmptyDeltaIsNoOp pins the satellite fix: Reroute of an empty
// delta must return prev itself — the same pointer, hence bit-identical
// — and report NoOp without touching any pipeline stage.
func TestEmptyDeltaIsNoOp(t *testing.T) {
	_, prev := routeSmall(t, 21)
	res, st, err := Reroute(context.Background(), prev, Delta{}, core.Options{Seed: 21})
	if err != nil {
		t.Fatalf("Reroute(empty) error: %v", err)
	}
	if res != prev {
		t.Fatal("Reroute(empty) must return prev itself")
	}
	if !st.NoOp {
		t.Fatal("Reroute(empty) must report NoOp")
	}
	if st.DirtyNets != 0 || st.ReplayedNets != 0 || st.FellBack {
		t.Fatalf("no-op touched the pipeline: %+v", st)
	}
}

// TestApplyMapsAndOrder checks the delta materialization invariants the
// dirty-set rules depend on: surviving nets and their pins keep their
// relative order, index maps are mutually consistent, added nets append
// at the end, and the mutated chip validates.
func TestApplyMapsAndOrder(t *testing.T) {
	c := chip.Generate(chip.GenParams{
		Seed: 5, Rows: 4, Cols: 12, NumNets: 20, NumLayers: 4, LocalityRadius: 3,
	})
	pitch := c.Deck.Layers[0].Pitch
	w := c.Deck.Layers[0].MinWidth
	mid := c.Area.Center()
	d := Delta{
		RemoveNets: []int{3, 11},
		AddNets: []NewNet{{
			Name: "added",
			Pins: [][]chip.PinShape{
				{{Rect: geom.R(mid.X, mid.Y, mid.X+w, mid.Y+3*w), Layer: 0}},
				{{Rect: geom.R(mid.X+8*pitch, mid.Y, mid.X+8*pitch+w, mid.Y+3*w), Layer: 0}},
			},
		}},
		AddBlockages: []chip.Obstacle{
			{Rect: geom.R(mid.X-6*pitch, mid.Y-6*pitch, mid.X-3*pitch, mid.Y-4*pitch), Layer: 1},
		},
	}
	c2, nm, err := Apply(c, &d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got, want := len(c2.Nets), len(c.Nets)-2+1; got != want {
		t.Fatalf("net count %d, want %d", got, want)
	}
	if nm.OldToNew[3] != -1 || nm.OldToNew[11] != -1 {
		t.Fatal("removed nets must map to -1")
	}
	if nm.NewToOld[len(c2.Nets)-1] != -1 {
		t.Fatal("added net must map back to -1")
	}
	// Order preservation: surviving old indices appear strictly
	// increasing under the map, and every mapped pin keeps its geometry.
	last := -1
	for newNi, oldNi := range nm.NewToOld {
		if oldNi < 0 {
			continue
		}
		if oldNi <= last {
			t.Fatalf("surviving net order broken: old %d after %d", oldNi, last)
		}
		last = oldNi
		if nm.OldToNew[oldNi] != newNi {
			t.Fatalf("map inconsistency: old %d -> new %d -> old %d", oldNi, nm.OldToNew[oldNi], newNi)
		}
		op, np := c.Nets[oldNi].Pins, c2.Nets[newNi].Pins
		if len(op) != len(np) {
			t.Fatalf("net %d pin count changed", oldNi)
		}
		for k := range op {
			if c.Pins[op[k]].Shapes[0].Rect != c2.Pins[np[k]].Shapes[0].Rect {
				t.Fatalf("net %d pin %d geometry changed", oldNi, k)
			}
		}
	}
	if err := c2.Validate(); err != nil {
		t.Fatalf("mutated chip invalid: %v", err)
	}
	// The input chip is untouched.
	if err := c.Validate(); err != nil {
		t.Fatalf("input chip corrupted: %v", err)
	}
	if len(c.Nets) != 20 || len(c.Obstacles) != len(c2.Obstacles)-1 {
		t.Fatal("Apply mutated its input")
	}
}

// TestApplyRejectsBadDeltas exercises the validation errors.
func TestApplyRejectsBadDeltas(t *testing.T) {
	c := chip.Generate(chip.GenParams{
		Seed: 5, Rows: 4, Cols: 12, NumNets: 10, NumLayers: 4, LocalityRadius: 3,
	})
	bad := []Delta{
		{RemoveNets: []int{99}},
		{RemoveNets: []int{2, 2}},
		{MovePins: []PinMove{{Net: 2, Pin: 99}}},
		{MovePins: []PinMove{{Net: 2, Pin: 0}}, RemoveNets: []int{2}},
		{AddNets: []NewNet{{Pins: [][]chip.PinShape{{{Rect: geom.R(0, 0, 10, 10)}}}}}},
		{AddBlockages: []chip.Obstacle{{Rect: geom.R(0, 0, 10, 10), Layer: 99}}},
	}
	for i, d := range bad {
		if _, _, err := Apply(c, &d); err == nil {
			t.Errorf("bad delta %d accepted", i)
		}
	}
}

// TestMovedPinDetaches checks that a moved pin loses its cell binding
// (its catalogue access no longer matches) and its shapes translate.
func TestMovedPinDetaches(t *testing.T) {
	c := chip.Generate(chip.GenParams{
		Seed: 7, Rows: 4, Cols: 12, NumNets: 16, NumLayers: 4, LocalityRadius: 3,
	})
	pitch := c.Deck.Layers[0].Pitch
	var m PinMove
	found := false
	for ni := range c.Nets {
		for k, pi := range c.Nets[ni].Pins {
			p := &c.Pins[pi]
			moved := p.Shapes[0].Rect.Translated(geom.Pt(pitch, 0))
			if p.Cell >= 0 && c.Area.ContainsRect(moved) {
				m = PinMove{Net: ni, Pin: k, By: geom.Pt(pitch, 0)}
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no movable cell pin")
	}
	c2, nm, err := Apply(c, &Delta{MovePins: []PinMove{m}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	np := &c2.Pins[c2.Nets[nm.OldToNew[m.Net]].Pins[m.Pin]]
	op := &c.Pins[c.Nets[m.Net].Pins[m.Pin]]
	if np.Cell != -1 {
		t.Fatal("moved pin must detach from its cell")
	}
	if np.Shapes[0].Rect != op.Shapes[0].Rect.Translated(m.By) {
		t.Fatal("moved pin geometry not translated")
	}
	if op.Cell < 0 {
		t.Fatal("input pin mutated")
	}
}

// TestRandomDeltaIsDeterministic pins the scenario generator: same seed
// same delta, different seeds different deltas, and every generated
// delta applies cleanly.
func TestRandomDeltaIsDeterministic(t *testing.T) {
	c := chip.Generate(chip.GenParams{
		Seed: 9, Rows: 5, Cols: 20, NumNets: 40, NumLayers: 4, LocalityRadius: 3,
	})
	a := RandomDelta(c, 42, GenConfig{})
	b := RandomDelta(c, 42, GenConfig{})
	if len(a.AddNets) != len(b.AddNets) || len(a.RemoveNets) != len(b.RemoveNets) ||
		len(a.MovePins) != len(b.MovePins) || len(a.AddBlockages) != len(b.AddBlockages) {
		t.Fatal("same seed produced different deltas")
	}
	for i := range a.RemoveNets {
		if a.RemoveNets[i] != b.RemoveNets[i] {
			t.Fatal("same seed produced different removals")
		}
	}
	for seed := int64(1); seed <= 5; seed++ {
		d := RandomDelta(c, seed, GenConfig{})
		if d.Empty() {
			t.Fatalf("seed %d produced an empty delta", seed)
		}
		if _, _, err := Apply(c, &d); err != nil {
			t.Fatalf("seed %d delta does not apply: %v", seed, err)
		}
	}
}

// TestRerouteSmoke drives one full incremental run end to end and
// sanity-checks the stats: some nets dirty, most nets replayed, no
// fallback, and the result describes the mutated chip.
func TestRerouteSmoke(t *testing.T) {
	c, prev := routeSmall(t, 33)
	d := RandomDelta(c, 101, GenConfig{})
	res, st, err := Reroute(context.Background(), prev, d, core.Options{Seed: 33, Workers: 1})
	if err != nil {
		t.Fatalf("Reroute: %v", err)
	}
	if st.FellBack || st.NoOp {
		t.Fatalf("unexpected path: %+v", st)
	}
	if st.DirtyNets == 0 {
		t.Fatal("delta dirtied nothing")
	}
	if st.ReplayedNets == 0 {
		t.Fatal("nothing replayed — dirty set is not incremental")
	}
	if st.ReplayedNets+st.DirtyNets > st.TotalNets {
		t.Fatalf("replayed %d + dirty %d > total %d", st.ReplayedNets, st.DirtyNets, st.TotalNets)
	}
	if res.Chip == prev.Chip || len(res.Chip.Nets) != st.TotalNets {
		t.Fatal("result does not describe the mutated chip")
	}
	if res.Flow != "BR+eco" {
		t.Fatalf("flow label %q", res.Flow)
	}
	if prev.Flow != "BR+cleanup" {
		t.Fatal("prev mutated")
	}
}

// TestRerouteFallback forces the threshold and requires the full
// from-scratch fallback to engage.
func TestRerouteFallback(t *testing.T) {
	c, prev := routeSmall(t, 33)
	d := RandomDelta(c, 101, GenConfig{})
	opt := core.Options{Seed: 33, Workers: 1}
	opt.EcoThreshold = 1e-9 // anything dirty at all falls back
	res, st, err := Reroute(context.Background(), prev, d, opt)
	if err != nil {
		t.Fatalf("Reroute: %v", err)
	}
	if !st.FellBack {
		t.Fatal("threshold not honoured")
	}
	if res.Flow != "BR+cleanup" {
		t.Fatalf("fallback must run the full flow, got %q", res.Flow)
	}
}
