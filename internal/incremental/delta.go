// Package incremental is the ECO (engineering change order) engine: it
// takes a finished routing Result plus a scenario delta — nets added or
// removed, pins moved, new blockages — and produces the routing of the
// mutated chip by reusing everything the delta did not touch. Committed
// wiring of clean nets is replayed verbatim into a fresh router, only
// the affected global edges are re-priced, and only the dirty set goes
// back through the detail pipeline. Above a dirty-fraction threshold
// the engine falls back to a full from-scratch run.
//
// The dirty-set rules and the equivalence contract (incremental and
// from-scratch results of the same mutated chip must both clear every
// internal/verify pass) are documented in DESIGN.md §10.
package incremental

import (
	"fmt"
	"math/rand"

	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
)

// NewNet describes a net a delta adds: its pins are free-standing metal
// (no owning cell — the router connects them via dynamic pin access).
//
// The JSON field names of NewNet, PinMove and Delta are the service
// wire schema (cmd/routed accepts deltas over HTTP); they are pinned by
// golden-file tests and must stay stable.
type NewNet struct {
	Name     string `json:"name,omitempty"`
	WireType int    `json:"wire_type,omitempty"`
	Critical bool   `json:"critical,omitempty"`
	// Pins[k] is the shape list of the k-th pin (at least two pins,
	// each with at least one shape).
	Pins [][]chip.PinShape `json:"pins"`
}

// PinMove translates every shape of one existing pin. The pin detaches
// from its cell prototype (the reserved catalogue access no longer
// matches the moved geometry), so the router connects it dynamically.
type PinMove struct {
	// Net is the net index in the previous chip; Pin the slot within
	// that net's pin list.
	Net int `json:"net"`
	Pin int `json:"pin"`
	// By is the translation vector.
	By geom.Point `json:"by"`
}

// Delta is one ECO scenario against a previously routed chip.
type Delta struct {
	AddNets      []NewNet        `json:"add_nets,omitempty"`
	RemoveNets   []int           `json:"remove_nets,omitempty"`
	MovePins     []PinMove       `json:"move_pins,omitempty"`
	AddBlockages []chip.Obstacle `json:"add_blockages,omitempty"`
}

// Empty reports a delta with no changes at all.
func (d *Delta) Empty() bool {
	return len(d.AddNets) == 0 && len(d.RemoveNets) == 0 &&
		len(d.MovePins) == 0 && len(d.AddBlockages) == 0
}

// NetMap relates net indices across a delta. Removed nets map to -1 in
// OldToNew; added nets map to -1 in NewToOld.
type NetMap struct {
	OldToNew []int
	NewToOld []int
}

// Apply materializes the delta as a brand-new chip: surviving nets keep
// their relative order (and their pins keep their relative order in
// Chip.Pins — pin order drives deterministic access reservation), added
// nets append at the end, blockages append to Obstacles. The input chip
// is not modified; immutable parts (deck, layers, prototypes, cells)
// are shared. The result passes chip.Validate.
func Apply(c *chip.Chip, d *Delta) (*chip.Chip, *NetMap, error) {
	removed := make(map[int]bool, len(d.RemoveNets))
	for _, ni := range d.RemoveNets {
		if ni < 0 || ni >= len(c.Nets) {
			return nil, nil, fmt.Errorf("delta: remove net %d out of range [0,%d)", ni, len(c.Nets))
		}
		if removed[ni] {
			return nil, nil, fmt.Errorf("delta: net %d removed twice", ni)
		}
		removed[ni] = true
	}
	moved := make(map[[2]int]geom.Point, len(d.MovePins))
	for _, m := range d.MovePins {
		if m.Net < 0 || m.Net >= len(c.Nets) {
			return nil, nil, fmt.Errorf("delta: move pin of net %d out of range", m.Net)
		}
		if removed[m.Net] {
			return nil, nil, fmt.Errorf("delta: net %d both moved and removed", m.Net)
		}
		if m.Pin < 0 || m.Pin >= len(c.Nets[m.Net].Pins) {
			return nil, nil, fmt.Errorf("delta: net %d has no pin %d", m.Net, m.Pin)
		}
		key := [2]int{m.Net, m.Pin}
		if _, dup := moved[key]; dup {
			return nil, nil, fmt.Errorf("delta: pin %d of net %d moved twice", m.Pin, m.Net)
		}
		moved[key] = m.By
	}
	for i, b := range d.AddBlockages {
		if b.Layer < 0 || b.Layer >= c.NumLayers() {
			return nil, nil, fmt.Errorf("delta: blockage %d on bad layer %d", i, b.Layer)
		}
		if b.Rect.Empty() || !c.Area.ContainsRect(b.Rect) {
			return nil, nil, fmt.Errorf("delta: blockage %d outside chip area", i)
		}
	}
	for i, nn := range d.AddNets {
		if len(nn.Pins) < 2 {
			return nil, nil, fmt.Errorf("delta: new net %d needs >= 2 pins", i)
		}
		if nn.WireType < 0 || nn.WireType >= len(c.WireTypes) {
			return nil, nil, fmt.Errorf("delta: new net %d has bad wire type %d", i, nn.WireType)
		}
		for k, shapes := range nn.Pins {
			if len(shapes) == 0 {
				return nil, nil, fmt.Errorf("delta: new net %d pin %d has no shapes", i, k)
			}
			for _, s := range shapes {
				if s.Layer < 0 || s.Layer >= c.NumLayers() {
					return nil, nil, fmt.Errorf("delta: new net %d pin %d on bad layer %d", i, k, s.Layer)
				}
				if s.Rect.Empty() || !c.Area.ContainsRect(s.Rect) {
					return nil, nil, fmt.Errorf("delta: new net %d pin %d outside chip area", i, k)
				}
			}
		}
	}

	c2 := &chip.Chip{
		Name:      c.Name,
		Area:      c.Area,
		Deck:      c.Deck,
		Layers:    c.Layers,
		WireTypes: c.WireTypes,
		Protos:    c.Protos,
		Cells:     c.Cells,
		Obstacles: append(append([]chip.Obstacle{}, c.Obstacles...), d.AddBlockages...),
	}
	nm := &NetMap{OldToNew: make([]int, len(c.Nets))}

	// Surviving nets first, in old order, with old→new index maps for
	// both nets and pins.
	pinMap := make([]int, len(c.Pins))
	for i := range pinMap {
		pinMap[i] = -1
	}
	for oldNi := range c.Nets {
		if removed[oldNi] {
			nm.OldToNew[oldNi] = -1
			continue
		}
		nm.OldToNew[oldNi] = len(c2.Nets)
		nm.NewToOld = append(nm.NewToOld, oldNi)
		n := c.Nets[oldNi]
		n.ID = nm.OldToNew[oldNi]
		n.Pins = nil
		c2.Nets = append(c2.Nets, n)
	}
	// Global pin order of survivors is preserved: iterate old Chip.Pins
	// in order and keep pins whose net survives.
	for oldPi := range c.Pins {
		p := c.Pins[oldPi]
		newNi := nm.OldToNew[p.Net]
		if newNi < 0 {
			continue
		}
		pinMap[oldPi] = len(c2.Pins)
		p.Net = newNi
		p.Shapes = append([]chip.PinShape(nil), p.Shapes...)
		c2.Pins = append(c2.Pins, p)
	}
	for oldNi := range c.Nets {
		newNi := nm.OldToNew[oldNi]
		if newNi < 0 {
			continue
		}
		for slot, oldPi := range c.Nets[oldNi].Pins {
			newPi := pinMap[oldPi]
			c2.Nets[newNi].Pins = append(c2.Nets[newNi].Pins, newPi)
			if by, ok := moved[[2]int{oldNi, slot}]; ok {
				p := &c2.Pins[newPi]
				for si := range p.Shapes {
					r := p.Shapes[si].Rect.Translated(by)
					if r.Empty() || !c.Area.ContainsRect(r) {
						return nil, nil, fmt.Errorf("delta: moved pin %d of net %d leaves chip area", slot, oldNi)
					}
					p.Shapes[si].Rect = r
				}
				// The reserved catalogue access of the cell pin no
				// longer matches the moved metal: detach.
				p.Cell, p.ProtoPin = -1, 0
			}
		}
	}
	// Added nets append after every survivor.
	for _, nn := range d.AddNets {
		ni := len(c2.Nets)
		nm.NewToOld = append(nm.NewToOld, -1)
		n := chip.Net{ID: ni, Name: nn.Name, WireType: nn.WireType, Critical: nn.Critical}
		for _, shapes := range nn.Pins {
			n.Pins = append(n.Pins, len(c2.Pins))
			c2.Pins = append(c2.Pins, chip.Pin{
				Net:    ni,
				Shapes: append([]chip.PinShape(nil), shapes...),
				Cell:   -1,
			})
		}
		c2.Nets = append(c2.Nets, n)
	}
	if err := c2.Validate(); err != nil {
		return nil, nil, fmt.Errorf("delta: mutated chip invalid: %w", err)
	}
	return c2, nm, nil
}

// GenConfig sizes RandomDelta. Zero values scale with the chip: roughly
// 3% of nets added and removed (at least one each), one pin move, one
// blockage.
type GenConfig struct {
	AddNets, RemoveNets, MovePins, AddBlockages int
}

func (g *GenConfig) setDefaults(nets int) {
	frac := nets / 32
	if frac < 1 {
		frac = 1
	}
	if g.AddNets == 0 {
		g.AddNets = frac
	}
	if g.RemoveNets == 0 {
		g.RemoveNets = frac
	}
	if g.MovePins == 0 {
		g.MovePins = 1
	}
	if g.AddBlockages == 0 {
		g.AddBlockages = 1
	}
	for _, p := range []*int{&g.AddNets, &g.RemoveNets, &g.MovePins, &g.AddBlockages} {
		if *p < 0 {
			*p = 0
		}
	}
}

// RandomDelta builds a seeded random ECO scenario against c: remove a
// few nets, add a few local 2–3 pin nets of free-standing metal, move
// one pin, drop one mid-stack blockage. All placements keep clearance
// from existing pins and obstacles so the mutated chip stays routable —
// the generator is for equivalence testing, where both the incremental
// and the from-scratch route must fully succeed to be comparable.
func RandomDelta(c *chip.Chip, seed int64, cfg GenConfig) Delta {
	cfg.setDefaults(len(c.Nets))
	rng := rand.New(rand.NewSource(seed))
	pitch := c.Deck.Layers[0].Pitch
	w := c.Deck.Layers[0].MinWidth
	obstacles := c.AllObstacles()

	clear := func(r geom.Rect, layer, margin int) bool {
		rr := r.Expanded(margin)
		for i := range c.Pins {
			for _, s := range c.Pins[i].Shapes {
				if !s.Rect.Intersection(rr).Empty() {
					return false
				}
			}
		}
		for _, o := range obstacles {
			if o.Layer == layer && !o.Rect.Intersection(rr).Empty() {
				return false
			}
		}
		return true
	}
	randPoint := func(in geom.Rect) geom.Point {
		x := in.XMin + pitch*(1+rng.Intn(max(1, in.W()/pitch-2)))
		y := in.YMin + pitch*(1+rng.Intn(max(1, in.H()/pitch-2)))
		return geom.Point{X: x, Y: y}
	}

	var d Delta
	perm := rng.Perm(len(c.Nets))
	for _, ni := range perm {
		if len(d.RemoveNets) >= cfg.RemoveNets {
			break
		}
		d.RemoveNets = append(d.RemoveNets, ni)
	}
	removed := map[int]bool{}
	for _, ni := range d.RemoveNets {
		removed[ni] = true
	}

	for n := 0; n < cfg.AddNets; n++ {
		deg := 2 + rng.Intn(2)
		var pins [][]chip.PinShape
		anchor := randPoint(c.Area)
		box := geom.Rect{
			XMin: anchor.X - 12*pitch, YMin: anchor.Y - 12*pitch,
			XMax: anchor.X + 12*pitch, YMax: anchor.Y + 12*pitch,
		}.Intersection(c.Area)
		if box.W() < 6*pitch || box.H() < 6*pitch {
			continue
		}
		for k := 0; k < deg; k++ {
			placed := false
			for try := 0; try < 60 && !placed; try++ {
				at := randPoint(box)
				r := geom.Rect{XMin: at.X, YMin: at.Y, XMax: at.X + w, YMax: at.Y + 3*w}
				if !c.Area.ContainsRect(r) || !clear(r, 0, 3*pitch) {
					continue
				}
				pins = append(pins, []chip.PinShape{{Rect: r, Layer: 0}})
				placed = true
			}
			if !placed {
				break
			}
		}
		if len(pins) >= 2 {
			d.AddNets = append(d.AddNets, NewNet{
				Name: fmt.Sprintf("eco%d", n),
				Pins: pins,
			})
		}
	}

	for m := 0; m < cfg.MovePins; m++ {
		for try := 0; try < 60; try++ {
			ni := rng.Intn(len(c.Nets))
			if removed[ni] {
				continue
			}
			slot := rng.Intn(len(c.Nets[ni].Pins))
			by := geom.Point{
				X: pitch * (rng.Intn(7) - 3),
				Y: pitch * (rng.Intn(7) - 3),
			}
			if by.X == 0 && by.Y == 0 {
				continue
			}
			p := &c.Pins[c.Nets[ni].Pins[slot]]
			ok := true
			for _, s := range p.Shapes {
				r := s.Rect.Translated(by)
				if !c.Area.ContainsRect(r) || !clear(r, s.Layer, 2*pitch) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			d.MovePins = append(d.MovePins, PinMove{Net: ni, Pin: slot, By: by})
			break
		}
	}

	for b := 0; b < cfg.AddBlockages; b++ {
		layer := 1 + rng.Intn(max(1, c.NumLayers()-1))
		for try := 0; try < 60; try++ {
			at := randPoint(c.Area)
			r := geom.Rect{
				XMin: at.X, YMin: at.Y,
				XMax: at.X + (3+rng.Intn(4))*pitch, YMax: at.Y + (2+rng.Intn(3))*pitch,
			}
			if !c.Area.ContainsRect(r) || !clear(r, layer, 4*pitch) {
				continue
			}
			d.AddBlockages = append(d.AddBlockages, chip.Obstacle{Rect: r, Layer: layer})
			break
		}
	}
	return d
}
