package incremental

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"bonnroute/internal/capest"
	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/detail"
	"bonnroute/internal/geom"
	"bonnroute/internal/obs"
	"bonnroute/internal/pinaccess"
	"bonnroute/internal/sharing"
	"bonnroute/internal/steiner"
)

// Stats reports what one incremental run reused and what it redid. The
// JSON field names are the service wire schema (EcoStats rides in every
// cmd/routed reroute response), pinned by golden-file tests; durations
// serialize as nanoseconds (encoding/json's time.Duration form).
type Stats struct {
	// TotalNets is the net count of the mutated chip; DirtyNets how
	// many of them went back through the detail pipeline.
	TotalNets int `json:"total_nets"`
	DirtyNets int `json:"dirty_nets"`
	// AddedNets/RemovedNets/MovedPins echo the delta size.
	AddedNets   int `json:"added_nets"`
	RemovedNets int `json:"removed_nets"`
	MovedPins   int `json:"moved_pins"`
	// ReplayedNets is the clean wiring carried over verbatim.
	ReplayedNets int `json:"replayed_nets"`
	// RepricedEdges counts global-grid edges whose load the restricted
	// global solve changed (0 when the previous run skipped global).
	RepricedEdges int `json:"repriced_edges"`
	// DirtyByRule breaks DirtyNets down by the first dirty-set rule
	// (DESIGN.md §10) that caught each net: added, moved pin, previously
	// unrouted, access drift, impact region.
	DirtyByRule [5]int `json:"dirty_by_rule"`
	// DirtyFraction is DirtyNets/TotalNets.
	DirtyFraction float64 `json:"dirty_fraction"`
	// FellBack reports that the dirty fraction exceeded
	// Options.EcoThreshold and a full from-scratch run was used.
	FellBack bool `json:"fell_back,omitempty"`
	// NoOp reports an empty delta: the previous Result was returned
	// unchanged.
	NoOp bool `json:"no_op,omitempty"`
	// Stage timings.
	ApplyTime   time.Duration `json:"apply_ns"`
	PrepTime    time.Duration `json:"prep_ns"`
	DirtyTime   time.Duration `json:"dirty_ns"`
	ReplayTime  time.Duration `json:"replay_ns"`
	GlobalTime  time.Duration `json:"global_ns"`
	DetailTime  time.Duration `json:"detail_ns"`
	CleanupTime time.Duration `json:"cleanup_ns"`
	Total       time.Duration `json:"total_ns"`
}

// Reroute applies an ECO delta to a finished routing run. The previous
// Result (its chip, router and wiring) is read, never modified; the
// returned Result describes the mutated chip.
//
// An empty delta returns prev itself (bit-identical no-op). Otherwise
// the dirty set — see dirtySet for the rules — is re-routed through the
// normal global/detail pipeline while every clean net's wiring is
// replayed verbatim; when the dirty fraction exceeds opt.EcoThreshold
// the whole mutated chip is routed from scratch instead (Stats.FellBack).
//
// Determinism contract: like RouteBonnRoute, the result depends only on
// (prev, delta, opt.Seed) — never on opt.Workers.
func Reroute(ctx context.Context, prev *core.Result, delta Delta, opt core.Options) (*core.Result, *Stats, error) {
	opt.SetDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	if prev == nil || prev.Router == nil || prev.Chip == nil {
		return nil, nil, errors.New("incremental: prev must be a finished routing Result")
	}
	start := time.Now()
	st := &Stats{TotalNets: len(prev.Chip.Nets)}
	if delta.Empty() {
		st.NoOp = true
		st.Total = time.Since(start)
		return prev, st, nil
	}
	st.RemovedNets = len(delta.RemoveNets)
	st.MovedPins = len(delta.MovePins)

	root := opt.Tracer.Start("flow.eco",
		obs.Int("prev_nets", len(prev.Chip.Nets)), obs.Int("workers", opt.Workers))
	cancelled := false
	defer func() { root.End(obs.Bool("cancelled", cancelled)) }()
	ctx = obs.ContextWithSpan(ctx, root)

	aStart := time.Now()
	aSpan := root.Child("eco.apply",
		obs.Int("add_nets", len(delta.AddNets)), obs.Int("remove_nets", len(delta.RemoveNets)),
		obs.Int("move_pins", len(delta.MovePins)), obs.Int("blockages", len(delta.AddBlockages)))
	c2, nm, err := Apply(prev.Chip, &delta)
	aSpan.End()
	if err != nil {
		return nil, nil, err
	}
	st.ApplyTime = time.Since(aStart)
	st.TotalNets = len(c2.Nets)
	for _, oldNi := range nm.NewToOld {
		if oldNi < 0 {
			st.AddedNets++
		}
	}

	pStart := time.Now()
	prepSpan := root.Child("eco.prep")
	// Access hints: every surviving, unmoved pin proposes the access path
	// the previous run reserved for it. Hints that are no longer legal
	// (the delta changed the space nearby, or the track graph shifted)
	// fall back to the catalogue; the rest keep their reservation
	// bit-identical, which keeps dirty-set rule 4 (access drift) scoped
	// to genuine changes.
	moved := make(map[[2]int]bool, len(delta.MovePins))
	for _, m := range delta.MovePins {
		moved[[2]int{m.Net, m.Pin}] = true
	}
	hints := make(map[int]*pinaccess.AccessPath)
	for newNi, oldNi := range nm.NewToOld {
		if oldNi < 0 {
			continue
		}
		for k, pi := range c2.Nets[newNi].Pins {
			if moved[[2]int{oldNi, k}] {
				continue
			}
			if ap := prev.Router.AccessPath(oldNi, k); ap != nil {
				hints[pi] = ap
			}
		}
	}
	// The previous run's track graph is reused outright: a small delta
	// does not justify re-optimizing track positions, replayed wiring
	// stays on-track by construction, and stable vertices keep the access
	// hints below verifiable. Legality around the delta's new geometry is
	// enforced by the routing space, not by track placement.
	//
	// Dirty nets route in reuse-mode goal-oriented search: unless the
	// caller pinned a future-cost mode explicitly, the dirty-net router
	// runs FutureAuto, so large dirty nets get the reduced-graph π_R and
	// its rip-up retries hit the engine's π cache (DESIGN.md §12). The
	// mode changes exploration order only — path costs, and hence the
	// equivalence contract against a from-scratch run (§9/§10 verifier
	// passes, identical opens/overflow), are unaffected.
	fm := opt.FutureMode
	if fm == detail.FutureDefault && !opt.UsePFuture {
		fm = detail.FutureAuto
	}
	r2 := detail.New(c2, detail.Options{
		Workers: opt.Workers, UsePFuture: opt.UsePFuture, FutureMode: fm,
		TrackGraph:  prev.Router.TG,
		AccessCache: prev.Router.AccessCache(),
		AccessHints: func(pi int) *pinaccess.AccessPath { return hints[pi] },
	})
	as := r2.AccessStats()
	prepSpan.End(obs.Int("access_catalogues", as.Catalogues),
		obs.Int("access_catalogues_reused", as.CataloguesReused),
		obs.Int("access_hinted", as.Hinted),
		obs.Int("access_reserved", as.Reserved))
	st.PrepTime = time.Since(pStart)

	dStart := time.Now()
	dirtySpan := root.Child("eco.dirty")
	dirty, byRule := dirtySet(prev, c2, nm, r2, &delta)
	st.DirtyByRule = byRule
	dirtySpan.End(obs.Int("dirty", len(dirty)),
		obs.Int("dirty_added", byRule[0]), obs.Int("dirty_moved", byRule[1]),
		obs.Int("dirty_unrouted", byRule[2]), obs.Int("dirty_access", byRule[3]),
		obs.Int("dirty_impact", byRule[4]))
	st.DirtyTime = time.Since(dStart)
	st.DirtyNets = len(dirty)
	if len(c2.Nets) > 0 {
		st.DirtyFraction = float64(len(dirty)) / float64(len(c2.Nets))
	}

	if opt.EcoThreshold >= 0 && st.DirtyFraction > opt.EcoThreshold {
		st.FellBack = true
		root.Event("eco.fallback", obs.F64("dirty_fraction", st.DirtyFraction),
			obs.F64("threshold", opt.EcoThreshold))
		res := core.RouteBonnRoute(ctx, c2, opt)
		cancelled = res.Cancelled
		st.Total = time.Since(start)
		return res, st, nil
	}

	res := &core.Result{Flow: "BR+eco", Chip: c2, Router: r2}

	// Replay: every clean surviving net's committed wiring, verbatim.
	rStart := time.Now()
	rSpan := root.Child("eco.replay")
	inDirty := make(map[int]bool, len(dirty))
	for _, ni := range dirty {
		inDirty[ni] = true
	}
	for newNi, oldNi := range nm.NewToOld {
		if oldNi < 0 || inDirty[newNi] {
			continue
		}
		r2.ReplayNet(newNi, prev.Router.ExportNet(oldNi))
		st.ReplayedNets++
	}
	rSpan.End(obs.Int("replayed", st.ReplayedNets))
	st.ReplayTime = time.Since(rStart)

	// Incremental global routing: surviving nets keep their trees (and
	// their loads become the fixed base); only added nets, moved-pin
	// nets and previously tree-less nets are re-priced.
	if prev.Assignment != nil && ctx.Err() == nil {
		gStart := time.Now()
		gSpan := root.Child("eco.global")
		g2 := core.BuildGlobalGraph(c2, opt.TileTracks)
		capest.Compute(c2, r2.TG, g2, capest.Params{})
		capest.ReduceForIntraTile(c2, g2)
		E := g2.NumEdges()
		if E != prev.Assignment.Graph.NumEdges() {
			return nil, nil, fmt.Errorf("incremental: global grid changed across delta (%d vs %d edges)",
				E, prev.Assignment.Graph.NumEdges())
		}
		specs := core.NetSpecs(c2, g2)

		movedNew := make(map[int]bool, len(delta.MovePins))
		for _, m := range delta.MovePins {
			if ni := nm.OldToNew[m.Net]; ni >= 0 {
				movedNew[ni] = true
			}
		}
		trees := make([][]int32, len(c2.Nets))
		extras := make([][]float32, len(c2.Nets))
		widths := make([]float64, len(c2.Nets))
		base := make([]float64, E)
		var needTree []int
		for newNi := range c2.Nets {
			widths[newNi] = specs[newNi].Width
			oldNi := nm.NewToOld[newNi]
			if oldNi < 0 || movedNew[newNi] || len(prev.Assignment.Trees[oldNi]) == 0 {
				needTree = append(needTree, newNi)
				continue
			}
			trees[newNi] = prev.Assignment.Trees[oldNi]
			if prev.Assignment.Extras != nil {
				extras[newNi] = prev.Assignment.Extras[oldNi]
			}
			for i, e := range trees[newNi] {
				base[e] += widths[newNi]
				if extras[newNi] != nil {
					base[e] += float64(extras[newNi][i])
				}
			}
		}
		rr := sharing.RouteRestricted(g2, specs, base, needTree)
		for i, ni := range needTree {
			trees[ni] = rr.Trees[i]
		}
		st.RepricedEdges = rr.RepricedEdges

		loads := make([]float64, E)
		gs := &core.GlobalStats{OracleCalls: int64(rr.OracleCalls)}
		if prev.Global != nil {
			// The λ certificate describes the previous full solve; the
			// restricted solve does not recompute it.
			gs.Lambda = prev.Global.Lambda
			gs.LambdaHistory = prev.Global.LambdaHistory
		}
		gs.PerNetLength = make([]int64, len(c2.Nets))
		gs.PerNetVias = make([]int, len(c2.Nets))
		for ni := range trees {
			if len(trees[ni]) == 0 {
				gs.Unrouted++
			}
			edges := make([]int, len(trees[ni]))
			for i, e := range trees[ni] {
				edges[i] = int(e)
				loads[e] += widths[ni]
				if extras[ni] != nil {
					loads[e] += float64(extras[ni][i])
				}
			}
			gs.PerNetLength[ni] = steiner.TreeLength(g2, edges)
			gs.PerNetVias[ni] = steiner.CountVias(g2, edges)
		}
		for e := 0; e < E; e++ {
			if loads[e] > g2.Cap[e]+1e-9 {
				gs.Overflowed++
			}
		}
		gs.Total = time.Since(gStart)
		res.Global = gs
		res.Assignment = &core.GlobalAssignment{
			Graph: g2, Trees: trees, Extras: extras, Widths: widths, Loads: loads,
		}
		r2.SetGlobalCorridors(g2, trees)
		gSpan.End(obs.Int("repriced_edges", rr.RepricedEdges),
			obs.Int("oracle_calls", rr.OracleCalls),
			obs.Int("overflowed", gs.Overflowed))
		st.GlobalTime = time.Since(gStart)
	}

	// Detail: only the dirty set searches; replayed wiring participates
	// as obstacles and rip-up victims.
	dtStart := time.Now()
	dtSpan := root.Child("eco.detail", obs.Int("nets", len(dirty)))
	res.Detail = r2.RouteNets(obs.ContextWithSpan(ctx, dtSpan), dirty)
	dtSpan.End(obs.Int("routed", res.Detail.Routed),
		obs.Int("failed", res.Detail.Failed),
		obs.Int("ripups", res.Detail.RipupEvents))
	res.DetailTime = time.Since(dtStart)
	st.DetailTime = res.DetailTime
	if res.Detail.Cancelled {
		res.Cancelled = true
	}

	cStart := time.Now()
	clSpan := root.Child("eco.cleanup")
	res.CleanupFixed = core.Cleanup(obs.ContextWithSpan(ctx, clSpan), r2, 2)
	clSpan.End(obs.Int("fixed", res.CleanupFixed))
	res.CleanupTime = time.Since(cStart)
	st.CleanupTime = res.CleanupTime

	res.Finalize(ctx, time.Since(start))
	if ctx.Err() != nil {
		res.Cancelled = true
	}
	cancelled = res.Cancelled
	st.Total = time.Since(start)
	return res, st, nil
}

// dirtySet decides which nets of the mutated chip must be re-routed.
// A net is dirty when any of these hold (DESIGN.md §10):
//
//  1. it was added by the delta;
//  2. one of its pins moved;
//  3. it survived but had no committed route in prev (unrouted nets
//     always get another chance);
//  4. its fresh pin-access paths differ geometrically from the previous
//     run's (the delta changed the space near a pin, a catalogue class,
//     or the previous run replaced the reservation mid-flight);
//  5. any of its committed shapes or pins lies within the interaction
//     margin of delta-added geometry: new blockages, new nets' pin metal,
//     moved pins' new metal, and the access stubs the fresh router
//     actually reserved for those pins (known exactly, so no theoretical
//     reach is needed).
//
// Removed nets only free space, so removal alone dirties nothing —
// neighbors of vanished wiring stay legal (rule 4 still catches access
// reservations that shift because reserved stubs disappeared).
//
// The returned slice is sorted; everything here depends only on
// (prev, delta), never on worker count.
func dirtySet(prev *core.Result, c2 *chip.Chip, nm *NetMap, r2 *detail.Router, d *Delta) ([]int, [5]int) {
	r1 := prev.Router
	dirty := make(map[int]int) // net -> first rule (1-based) that caught it

	for newNi, oldNi := range nm.NewToOld {
		if oldNi < 0 {
			dirty[newNi] = 1 // rule 1
			continue
		}
		if !r1.NetStats(oldNi).Routed {
			dirty[newNi] = 3 // rule 3
		}
	}
	for _, m := range d.MovePins {
		if ni := nm.OldToNew[m.Net]; ni >= 0 && dirty[ni] == 0 {
			dirty[ni] = 2 // rule 2
		}
	}

	// Rule 4: access drift.
	for newNi, oldNi := range nm.NewToOld {
		if oldNi < 0 || dirty[newNi] != 0 {
			continue
		}
		for k := range c2.Nets[newNi].Pins {
			if !sameAccess(r1.AccessPath(oldNi, k), r2.AccessPath(newNi, k)) {
				dirty[newNi] = 4
				break
			}
		}
	}

	// Rule 5: impact region of added geometry. The geometry a new or
	// moved pin adds to the space is its metal plus the access stub the
	// fresh router actually reserved for it — both are known exactly (r2
	// committed them at construction), so the impact is their rects
	// expanded by the interaction margin, not a theoretical reach.
	margin := r2.InteractionMargin()
	var impact []geom.Rect
	stubImpact := func(newNi, k int) {
		ap := r2.AccessPath(newNi, k)
		if ap == nil || len(ap.Points) == 0 {
			return
		}
		bb := geom.Rect{XMin: ap.End.X, YMin: ap.End.Y, XMax: ap.End.X, YMax: ap.End.Y}
		for _, p := range ap.Points {
			bb.XMin = min(bb.XMin, p.X)
			bb.YMin = min(bb.YMin, p.Y)
			bb.XMax = max(bb.XMax, p.X)
			bb.YMax = max(bb.YMax, p.Y)
		}
		// Points are stick coordinates; pad by the stub metal's extent.
		lr := &c2.Deck.Layers[ap.Layer]
		pad := lr.MinWidth/2 + lr.LineEndSpacing
		impact = append(impact, bb.Expanded(pad+margin))
	}
	pinImpact := func(newNi, k int) {
		p := &c2.Pins[c2.Nets[newNi].Pins[k]]
		for _, s := range p.Shapes {
			impact = append(impact, s.Rect.Expanded(margin))
		}
		stubImpact(newNi, k)
	}
	for _, b := range d.AddBlockages {
		impact = append(impact, b.Rect.Expanded(margin))
	}
	for newNi, oldNi := range nm.NewToOld {
		if oldNi >= 0 {
			continue
		}
		for k := range c2.Nets[newNi].Pins {
			pinImpact(newNi, k)
		}
	}
	for _, m := range d.MovePins {
		if newNi := nm.OldToNew[m.Net]; newNi >= 0 {
			pinImpact(newNi, m.Pin)
		}
	}
	if len(impact) > 0 {
		hits := func(r geom.Rect) bool {
			for _, ir := range impact {
				if !ir.Intersection(r).Empty() {
					return true
				}
			}
			return false
		}
		for newNi, oldNi := range nm.NewToOld {
			if oldNi < 0 || dirty[newNi] != 0 {
				continue
			}
			found := false
			for _, sr := range r1.CommittedShapes(oldNi) {
				if hits(sr.Shape.Rect) {
					found = true
					break
				}
			}
			if !found {
				for _, pi := range c2.Nets[newNi].Pins {
					for _, s := range c2.Pins[pi].Shapes {
						if hits(s.Rect) {
							found = true
							break
						}
					}
					if found {
						break
					}
				}
			}
			if found {
				dirty[newNi] = 5
			}
		}
	}

	var byRule [5]int
	out := make([]int, 0, len(dirty))
	for ni, rule := range dirty {
		out = append(out, ni)
		byRule[rule-1]++
	}
	sort.Ints(out)
	return out, byRule
}

// sameAccess compares two access paths geometrically.
func sameAccess(a, b *pinaccess.AccessPath) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Layer != b.Layer || a.End != b.End || len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}
