package incremental

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
)

// wireDelta is a fixed delta exercising every field of the wire schema.
func wireDelta() Delta {
	return Delta{
		AddNets: []NewNet{{
			Name:     "eco0",
			WireType: 1,
			Critical: true,
			Pins: [][]chip.PinShape{
				{{Rect: geom.R(100, 200, 140, 320), Layer: 0}},
				{{Rect: geom.R(500, 200, 540, 320), Layer: 0},
					{Rect: geom.R(500, 200, 540, 240), Layer: 1}},
			},
		}},
		RemoveNets: []int{3, 7},
		MovePins:   []PinMove{{Net: 2, Pin: 1, By: geom.Pt(-40, 80)}},
		AddBlockages: []chip.Obstacle{
			{Rect: geom.R(900, 900, 1100, 1000), Layer: 2},
		},
	}
}

// wireStats is a fixed Stats value with every field populated.
func wireStats() Stats {
	return Stats{
		TotalNets: 120, DirtyNets: 9,
		AddedNets: 3, RemovedNets: 2, MovedPins: 1,
		ReplayedNets: 108, RepricedEdges: 44,
		DirtyByRule:   [5]int{3, 1, 0, 2, 3},
		DirtyFraction: 0.075,
		ApplyTime:     1_000_000, PrepTime: 2_000_000, DirtyTime: 500_000,
		ReplayTime: 3_000_000, GlobalTime: 4_000_000, DetailTime: 25_000_000,
		CleanupTime: 1_500_000, Total: 37_000_000,
	}
}

// checkGolden marshals v, compares against the committed golden file
// (regenerate with UPDATE_GOLDEN=1 go test ./internal/incremental), and
// round-trips the golden bytes back into a fresh value that must equal
// v — together this pins the wire schema: any field rename, type change
// or dropped field fails here first.
func checkGolden(t *testing.T, name string, v, fresh any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run UPDATE_GOLDEN=1 go test): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire schema drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
	if err := json.Unmarshal(want, fresh); err != nil {
		t.Fatalf("golden does not unmarshal: %v", err)
	}
	if !reflect.DeepEqual(reflect.ValueOf(fresh).Elem().Interface(), v) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", fresh, v)
	}
}

func TestDeltaWireSchema(t *testing.T) {
	var fresh Delta
	checkGolden(t, "wire_delta.golden.json", wireDelta(), &fresh)
}

func TestStatsWireSchema(t *testing.T) {
	var fresh Stats
	checkGolden(t, "wire_stats.golden.json", wireStats(), &fresh)
}

// An empty delta must serialize to the empty object — the omitempty
// contract clients rely on for terse requests.
func TestEmptyDeltaWire(t *testing.T) {
	data, err := json.Marshal(Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}" {
		t.Fatalf("empty delta = %s, want {}", data)
	}
	var d Delta
	if err := json.Unmarshal([]byte("{}"), &d); err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatal("round-tripped empty delta must be Empty")
	}
}
