// Package chip defines the design model routed by BonnRoute — layers,
// cells, pins, blockages, and nets — plus a deterministic synthetic
// generator that stands in for the proprietary IBM designs of the paper's
// evaluation (§5.3). The generator produces standard-cell rows built from
// a small prototype library (so pin-access preprocessing can exploit
// circuit classes exactly as §4.3 describes), power rails and stripes as
// blockages, and Rent-style locality-clustered netlists.
package chip

import (
	"fmt"

	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
)

// Layer is one wiring layer of the stack.
type Layer struct {
	// Z is the layer index, 0 = lowest.
	Z int
	// Dir is the preferred routing direction. Horizontal and vertical
	// layers alternate (paper §1.1).
	Dir geom.Direction
}

// PinShape is one rectangle of pin metal. The JSON field names are part
// of the service wire schema (ECO deltas travel over HTTP).
type PinShape struct {
	Rect  geom.Rect `json:"rect"`
	Layer int       `json:"layer"`
}

// Pin is a connection point of a net: one or more metal shapes, usually on
// the lowest layers, often not aligned with routing tracks.
type Pin struct {
	// Net is the index of the owning net in Chip.Nets.
	Net int
	// Shapes are the pin's metal rectangles.
	Shapes []PinShape
	// Cell is the index of the owning cell in Chip.Cells, or -1 for an
	// I/O pin not belonging to a placed cell.
	Cell int
	// ProtoPin is the pin index within the cell prototype (meaningful
	// when Cell >= 0); pin-access catalogues are keyed per prototype pin.
	ProtoPin int
}

// Center returns a representative point of the pin (center of its first
// shape).
func (p *Pin) Center() geom.Point { return p.Shapes[0].Rect.Center() }

// Net is a set of pins to be connected.
type Net struct {
	ID   int
	Name string
	// Pins are indices into Chip.Pins.
	Pins []int
	// WireType indexes Chip.WireTypes; 0 is the standard type.
	WireType int
	// Critical nets are routed first by the detailed router (paper §5.1).
	Critical bool
}

// Obstacle is fixed blockage metal (power rails/stripes, macros). The
// JSON field names are part of the service wire schema.
type Obstacle struct {
	Rect  geom.Rect `json:"rect"`
	Layer int       `json:"layer"`
}

// CellProto is a library cell prototype. Instances of the same prototype
// in geometrically equal surroundings form the circuit classes of §4.3.
type CellProto struct {
	Name string
	// Size is the cell footprint with origin at (0,0).
	Size geom.Rect
	// Pins are the prototype pin geometries relative to the origin.
	Pins [][]PinShape
	// Blockages are internal blockage shapes relative to the origin.
	Blockages []Obstacle
}

// Cell is a placed instance of a prototype.
type Cell struct {
	Proto  int // index into Chip.Protos
	Origin geom.Point
	// Mirrored instances flip in x; the generator uses this in alternate
	// rows like real placements, which multiplies circuit classes.
	Mirrored bool
}

// Chip is a complete routing instance.
type Chip struct {
	Name string
	// Area is the routable die area.
	Area geom.Rect
	// Deck holds the design rules.
	Deck *rules.Deck
	// Layers is the wiring stack, Layers[z].Z == z.
	Layers []Layer
	// WireTypes available to nets; index 0 must be the standard type.
	WireTypes []*rules.WireType
	Protos    []CellProto
	Cells     []Cell
	Pins      []Pin
	Nets      []Net
	Obstacles []Obstacle
}

// Dir returns the preferred direction of wiring layer z.
func (c *Chip) Dir(z int) geom.Direction { return c.Layers[z].Dir }

// NumLayers returns the number of wiring layers.
func (c *Chip) NumLayers() int { return len(c.Layers) }

// PinsOf returns the pins of net n.
func (c *Chip) PinsOf(n *Net) []*Pin {
	out := make([]*Pin, len(n.Pins))
	for i, pi := range n.Pins {
		out[i] = &c.Pins[pi]
	}
	return out
}

// CellShape materializes the placed geometry of a prototype shape.
func (c *Chip) cellRect(cell *Cell, r geom.Rect) geom.Rect {
	if cell.Mirrored {
		proto := &c.Protos[cell.Proto]
		w := proto.Size.XMax
		r = geom.Rect{XMin: w - r.XMax, YMin: r.YMin, XMax: w - r.XMin, YMax: r.YMax}
	}
	return r.Translated(cell.Origin)
}

// AllObstacles returns the chip-level obstacles plus the materialized
// blockages of every placed cell.
func (c *Chip) AllObstacles() []Obstacle {
	out := make([]Obstacle, 0, len(c.Obstacles))
	out = append(out, c.Obstacles...)
	for i := range c.Cells {
		cell := &c.Cells[i]
		for _, b := range c.Protos[cell.Proto].Blockages {
			out = append(out, Obstacle{Rect: c.cellRect(cell, b.Rect), Layer: b.Layer})
		}
	}
	return out
}

// Validate performs structural sanity checks and returns the first
// problem found, or nil.
func (c *Chip) Validate() error {
	if c.Area.Empty() {
		return fmt.Errorf("chip %s: empty area", c.Name)
	}
	if len(c.Layers) < 2 {
		return fmt.Errorf("chip %s: need at least 2 layers", c.Name)
	}
	if len(c.WireTypes) == 0 {
		return fmt.Errorf("chip %s: no wire types", c.Name)
	}
	for z, l := range c.Layers {
		if l.Z != z {
			return fmt.Errorf("layer %d has Z=%d", z, l.Z)
		}
		if z > 0 && c.Layers[z-1].Dir == l.Dir {
			return fmt.Errorf("layers %d and %d share direction %v", z-1, z, l.Dir)
		}
	}
	for i := range c.Nets {
		n := &c.Nets[i]
		if n.ID != i {
			return fmt.Errorf("net %q: ID %d at index %d", n.Name, n.ID, i)
		}
		if len(n.Pins) < 2 {
			return fmt.Errorf("net %q: %d pins", n.Name, len(n.Pins))
		}
		if n.WireType < 0 || n.WireType >= len(c.WireTypes) {
			return fmt.Errorf("net %q: wire type %d out of range", n.Name, n.WireType)
		}
		for _, pi := range n.Pins {
			if pi < 0 || pi >= len(c.Pins) {
				return fmt.Errorf("net %q: pin index %d out of range", n.Name, pi)
			}
			if c.Pins[pi].Net != i {
				return fmt.Errorf("net %q: pin %d back-reference is %d", n.Name, pi, c.Pins[pi].Net)
			}
			for _, s := range c.Pins[pi].Shapes {
				if s.Layer < 0 || s.Layer >= len(c.Layers) {
					return fmt.Errorf("pin %d: layer %d out of range", pi, s.Layer)
				}
				if s.Rect.Empty() {
					return fmt.Errorf("pin %d: empty shape", pi)
				}
			}
		}
	}
	for _, o := range c.Obstacles {
		if o.Layer < 0 || o.Layer >= len(c.Layers) {
			return fmt.Errorf("obstacle on layer %d out of range", o.Layer)
		}
	}
	return nil
}
