package chip

import (
	"encoding/binary"
	"hash/fnv"
	"testing"
)

// fingerprint hashes every field of the generated chip that downstream
// stages consume, so two chips hash equal iff they are bit-identical.
func fingerprint(c *Chip) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	putRect := func(r [4]int) {
		for _, v := range r {
			put(v)
		}
	}
	put(len(c.Cells))
	for _, cell := range c.Cells {
		put(cell.Proto)
		put(cell.Origin.X)
		put(cell.Origin.Y)
		if cell.Mirrored {
			put(1)
		} else {
			put(0)
		}
	}
	put(len(c.Pins))
	for _, pin := range c.Pins {
		put(pin.Net)
		put(pin.Cell)
		put(pin.ProtoPin)
		put(len(pin.Shapes))
		for _, s := range pin.Shapes {
			putRect([4]int{s.Rect.XMin, s.Rect.YMin, s.Rect.XMax, s.Rect.YMax})
			put(s.Layer)
		}
	}
	put(len(c.Nets))
	for _, n := range c.Nets {
		put(n.ID)
		h.Write([]byte(n.Name))
		put(n.WireType)
		if n.Critical {
			put(1)
		} else {
			put(0)
		}
		put(len(n.Pins))
		for _, pi := range n.Pins {
			put(pi)
		}
	}
	put(len(c.Obstacles))
	for _, o := range c.Obstacles {
		putRect([4]int{o.Rect.XMin, o.Rect.YMin, o.Rect.XMax, o.Rect.YMax})
		put(o.Layer)
	}
	return h.Sum64()
}

// TestGenerateGolden pins the exact output of the generator for a fixed
// parameter set. The slice-indexed streaming rewrite (scale tier) must
// keep the RNG call sequence — and therefore every emitted chip —
// bit-identical to the original map-backed generator; this hash was
// recorded against the original and proves it stays that way.
func TestGenerateGolden(t *testing.T) {
	c := Generate(GenParams{Name: "golden", Seed: 12345, Rows: 12, Cols: 24, NumNets: 120,
		PowerStripePeriod: 8, WideNetPct: 10, CriticalPct: 10})
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	const want = 0x379914591590e05b
	if got := fingerprint(c); got != want {
		t.Fatalf("generator output drifted: fingerprint = %#x, want %#x", got, want)
	}
}

// TestGenerateDeterministic1e5 re-generates the full 10⁵-net huge chip
// twice and requires bit-identical output.
func TestGenerateDeterministic1e5(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-net generation skipped in -short mode")
	}
	p := ScaledParams("huge", 777, 100000)
	a := Generate(p)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(a.Nets) != p.NumNets {
		t.Fatalf("generated %d nets, want %d (grid sized by ScaledParams exhausted early)", len(a.Nets), p.NumNets)
	}
	b := Generate(p)
	if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
		t.Fatalf("same seed produced different chips: %#x vs %#x", fa, fb)
	}
}

// degreeStats returns the net-degree histogram and mean.
func degreeStats(c *Chip) (hist map[int]int, mean float64) {
	hist = map[int]int{}
	total := 0
	for _, n := range c.Nets {
		hist[len(n.Pins)]++
		total += len(n.Pins)
	}
	return hist, float64(total) / float64(len(c.Nets))
}

// TestScaledDegreeDistribution checks the pin-degree mix stays
// Rent-like across three orders of magnitude: concentrated on 2–4 pins
// with a geometric tail (Table II's terminal mix), a stable mean, and
// never exceeding MaxDegree. (chip_test.go checks the same property at
// one small size; this sweeps the ScaledParams curve.)
func TestScaledDegreeDistribution(t *testing.T) {
	sizes := []int{1000, 10000}
	if !testing.Short() {
		sizes = append(sizes, 100000)
	}
	var means []float64
	for _, nets := range sizes {
		c := Generate(ScaledParams("deg", 42, nets))
		if len(c.Nets) != nets {
			t.Fatalf("size %d: generated %d nets", nets, len(c.Nets))
		}
		hist, mean := degreeStats(c)
		if mean < 2.3 || mean > 3.2 {
			t.Errorf("size %d: mean degree %.2f outside [2.3, 3.2]", nets, mean)
		}
		low := hist[2] + hist[3] + hist[4]
		if frac := float64(low) / float64(nets); frac < 0.8 {
			t.Errorf("size %d: only %.0f%% of nets have 2–4 pins", nets, 100*frac)
		}
		if hist[2] < hist[3] || hist[3] < hist[4] {
			t.Errorf("size %d: degree histogram not decreasing on 2..4: %v", nets, hist)
		}
		for d := range hist {
			if d < 2 || d > 24 {
				t.Errorf("size %d: net with degree %d outside [2, MaxDegree]", nets, d)
			}
		}
		means = append(means, mean)
	}
	for i := 1; i < len(means); i++ {
		if d := means[i] - means[0]; d < -0.3 || d > 0.3 {
			t.Errorf("mean degree drifts across sizes: %v", means)
		}
	}
}

// TestGenerateIndexBounds walks every cross-reference in a mid-size
// generated chip: pin→net, pin→cell, net→pin, cell→proto, and the
// proto-pin index every pin-access catalogue is keyed by.
func TestGenerateIndexBounds(t *testing.T) {
	c := Generate(ScaledParams("bounds", 9, 10000))
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i, cell := range c.Cells {
		if cell.Proto < 0 || cell.Proto >= len(c.Protos) {
			t.Fatalf("cell %d: proto %d out of range", i, cell.Proto)
		}
	}
	for i, pin := range c.Pins {
		if pin.Net < 0 || pin.Net >= len(c.Nets) {
			t.Fatalf("pin %d: net %d out of range", i, pin.Net)
		}
		if pin.Cell < -1 || pin.Cell >= len(c.Cells) {
			t.Fatalf("pin %d: cell %d out of range", i, pin.Cell)
		}
		if pin.Cell >= 0 {
			proto := &c.Protos[c.Cells[pin.Cell].Proto]
			if pin.ProtoPin < 0 || pin.ProtoPin >= len(proto.Pins) {
				t.Fatalf("pin %d: proto pin %d out of range for %s", i, pin.ProtoPin, proto.Name)
			}
		}
		if len(pin.Shapes) == 0 {
			t.Fatalf("pin %d: no shapes", i)
		}
	}
	seen := make([]bool, len(c.Pins))
	for ni, n := range c.Nets {
		if n.ID != ni {
			t.Fatalf("net %d: ID %d", ni, n.ID)
		}
		if len(n.Pins) < 2 {
			t.Fatalf("net %d: degree %d", ni, len(n.Pins))
		}
		for _, pi := range n.Pins {
			if pi < 0 || pi >= len(c.Pins) {
				t.Fatalf("net %d: pin index %d out of range", ni, pi)
			}
			if seen[pi] {
				t.Fatalf("pin %d appears in more than one net", pi)
			}
			seen[pi] = true
			if c.Pins[pi].Net != ni {
				t.Fatalf("net %d: pin %d back-reference is net %d", ni, pi, c.Pins[pi].Net)
			}
		}
	}
}
