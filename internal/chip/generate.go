package chip

import (
	"fmt"
	"math"
	"math/rand"

	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
)

// GenParams parameterize the synthetic chip generator. All randomness
// derives from Seed, so a given parameter set is fully reproducible.
type GenParams struct {
	Name string
	Seed int64
	// Rows and Cols define the placement grid of cell slots.
	Rows, Cols int
	// NumLayers is the wiring stack height (≥ 2, default 6).
	NumLayers int
	// Pitch is the minimum pitch of the lower layers (default 40 DBU).
	Pitch int
	// NumNets is the number of nets to generate.
	NumNets int
	// MaxDegree caps pins per net (default 24). Degrees follow a
	// geometric-ish distribution concentrated on 2–4 pins, matching the
	// terminal-count mix of Table II.
	MaxDegree int
	// Utilization is the fraction of slots filled with cells, in percent
	// (default 70).
	Utilization int
	// LocalityRadius is the slot radius within which net pins cluster
	// (default 8). A 5% tail of nets is drawn chip-wide, producing the
	// long-distance connections that exercise interval path search.
	LocalityRadius int
	// PowerStripePeriod places a vertical wide stripe blockage on layer 3
	// every this many columns (0 disables).
	PowerStripePeriod int
	// WideNetPct is the percentage of nets using the 2x-wide wire type.
	WideNetPct int
	// CriticalPct is the percentage of nets flagged critical.
	CriticalPct int
}

func (p *GenParams) setDefaults() {
	if p.Name == "" {
		p.Name = "synthetic"
	}
	if p.Rows <= 0 {
		p.Rows = 8
	}
	if p.Cols <= 0 {
		p.Cols = 16
	}
	if p.NumLayers < 2 {
		p.NumLayers = 6
	}
	if p.Pitch <= 0 {
		p.Pitch = 40
	}
	if p.MaxDegree < 2 {
		p.MaxDegree = 24
	}
	if p.Utilization <= 0 || p.Utilization > 100 {
		p.Utilization = 70
	}
	if p.LocalityRadius <= 0 {
		p.LocalityRadius = 8
	}
}

// ScaledParams sizes a generator parameter set for a target net count:
// the placement grid is made just large enough (with slack) that the
// netlist loop reaches nets before exhausting free pins, and the aspect
// ratio tracks the 8×12-pitch slot geometry so chips come out roughly
// square in DBU. This is the sizing rule behind the scale tier — the
// same curve produces the 10³-net budget chips, the 10⁴-net smoke
// slice, and the 10⁵-net huge bench chip. Deterministic in (seed, nets).
func ScaledParams(name string, seed int64, nets int) GenParams {
	// The 5-proto library yields ≈1.2 placeable pins per slot at 70%
	// utilization and nets consume ≈2.6 pins each; 3 slots per net
	// leaves headroom for pins stranded in unreachable rings.
	slots := nets * 3
	rows := int(math.Ceil(math.Sqrt(float64(slots) / 1.5)))
	if rows < 4 {
		rows = 4
	}
	cols := (slots + rows - 1) / rows
	if cols < 8 {
		cols = 8
	}
	return GenParams{
		Name:              name,
		Seed:              seed,
		Rows:              rows,
		Cols:              cols,
		NumNets:           nets,
		PowerStripePeriod: 64,
		WideNetPct:        10,
		CriticalPct:       10,
	}
}

// Generate builds a synthetic chip. The result always passes Validate.
func Generate(p GenParams) *Chip {
	p.setDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	deck := rules.DefaultDeck(rules.DeckParams{NumLayers: p.NumLayers, Pitch: p.Pitch})
	w := deck.Layers[0].MinWidth
	pitch := deck.Layers[0].Pitch
	slotW := 8 * pitch
	rowH := 12 * pitch

	c := &Chip{
		Name: p.Name,
		Deck: deck,
		Area: geom.Rect{XMin: 0, YMin: 0, XMax: p.Cols * slotW, YMax: p.Rows * rowH},
		WireTypes: []*rules.WireType{
			deck.StandardWireType(),
			deck.WideWireType(2),
		},
	}
	for z := 0; z < p.NumLayers; z++ {
		dir := geom.Horizontal
		if z%2 == 1 {
			dir = geom.Vertical
		}
		c.Layers = append(c.Layers, Layer{Z: z, Dir: dir})
	}

	c.Protos = makeProtoLibrary(pitch, w, rng)

	// Place cells row by row; alternate rows mirror (as real placements
	// flip for power-rail sharing), multiplying circuit classes.
	//
	// Everything here is slice-indexed — per-slot pin lists addressed by
	// row-major slot index, a flat occupancy bitmap, a flat used bitmap
	// over pin endpoints — so generation at 10⁵ nets streams with memory
	// proportional to the emitted chip (no maps, no quadratic candidate
	// sets). The RNG call sequence is identical to the original
	// map-backed generator, so fixed seeds produce bit-identical chips.
	type slotPin struct {
		cell int32
		pin  int16
		idx  int32 // index into the used bitmap below
	}
	nFree := 0                                 // placeable pin endpoints
	bySlot := make([][]slotPin, p.Rows*p.Cols) // row*Cols+col -> pins
	for row := 0; row < p.Rows; row++ {
		for col := 0; col < p.Cols; {
			proto := rng.Intn(len(c.Protos))
			wSlots := c.Protos[proto].Size.XMax / slotW
			if col+wSlots > p.Cols {
				col++
				continue
			}
			if rng.Intn(100) >= p.Utilization {
				col += wSlots
				continue
			}
			cellIdx := len(c.Cells)
			c.Cells = append(c.Cells, Cell{
				Proto:    proto,
				Origin:   geom.Pt(col*slotW, row*rowH),
				Mirrored: row%2 == 1,
			})
			si := row*p.Cols + col
			for pi := range c.Protos[proto].Pins {
				bySlot[si] = append(bySlot[si], slotPin{int32(cellIdx), int16(pi), int32(nFree)})
				nFree++
			}
			col += wSlots
		}
	}

	// Power rails: horizontal blockage strips on layer 0 at each row
	// boundary, leaving the cell-internal area routable.
	railH := 2 * w
	for row := 0; row <= p.Rows; row++ {
		y := row * rowH
		c.Obstacles = append(c.Obstacles, Obstacle{
			Rect:  geom.Rect{XMin: 0, YMin: y - railH/2, XMax: c.Area.XMax, YMax: y + railH/2},
			Layer: 0,
		})
	}
	// Vertical power stripes on layer 3 (if present).
	if p.PowerStripePeriod > 0 && p.NumLayers > 3 {
		stripeW := 3 * w
		for col := p.PowerStripePeriod; col < p.Cols; col += p.PowerStripePeriod {
			x := col * slotW
			c.Obstacles = append(c.Obstacles, Obstacle{
				Rect:  geom.Rect{XMin: x - stripeW/2, YMin: 0, XMax: x + stripeW/2, YMax: c.Area.YMax},
				Layer: 3,
			})
		}
	}

	// Netlist: locality-clustered pin groups over the free pins.
	used := make([]bool, nFree)
	takeFrom := func(si int) (slotPin, bool) {
		for _, sp := range bySlot[si] {
			if !used[sp.idx] {
				used[sp.idx] = true
				return sp, true
			}
		}
		return slotPin{}, false
	}
	degreeOf := func() int {
		// Concentrated on 2–4 with a geometric tail, as in Table II.
		d := 2
		for d < p.MaxDegree && rng.Float64() < 0.38 {
			d++
		}
		return d
	}
	unused := nFree
	c.Nets = make([]Net, 0, p.NumNets)
	var ringBuf [][2]int // ring scratch, reused across nets
	var members []slotPin
	for netID := 0; len(c.Nets) < p.NumNets && unused >= 2; netID++ {
		if netID > 20*p.NumNets {
			break // placement exhausted
		}
		deg := degreeOf()
		radius := p.LocalityRadius
		if rng.Intn(100) < 5 {
			radius = max(p.Cols, p.Rows) // chip-spanning net
		}
		seedCol, seedRow := rng.Intn(p.Cols), rng.Intn(p.Rows)
		members = members[:0]
		for r := 0; r <= radius && len(members) < deg; r++ {
			// Visit the ring of slots at Chebyshev radius r in random
			// phase so nets do not all grow the same way.
			ring := ringSlots(ringBuf[:0], seedCol, seedRow, r, p.Cols, p.Rows)
			ringBuf = ring
			rng.Shuffle(len(ring), func(i, j int) { ring[i], ring[j] = ring[j], ring[i] })
			for _, key := range ring {
				si := key[1]*p.Cols + key[0]
				for len(members) < deg {
					sp, ok := takeFrom(si)
					if !ok {
						break
					}
					members = append(members, sp)
				}
			}
		}
		if len(members) < 2 {
			for _, sp := range members {
				used[sp.idx] = false // return to pool
			}
			continue
		}
		unused -= len(members)
		n := Net{
			ID:   len(c.Nets),
			Name: fmt.Sprintf("n%d", len(c.Nets)),
		}
		if rng.Intn(100) < p.WideNetPct {
			n.WireType = 1
		}
		if rng.Intn(100) < p.CriticalPct {
			n.Critical = true
		}
		for _, sp := range members {
			cell := &c.Cells[sp.cell]
			proto := &c.Protos[cell.Proto]
			pin := Pin{Net: n.ID, Cell: int(sp.cell), ProtoPin: int(sp.pin)}
			for _, ps := range proto.Pins[sp.pin] {
				pin.Shapes = append(pin.Shapes, PinShape{
					Rect:  c.cellRect(cell, ps.Rect),
					Layer: ps.Layer,
				})
			}
			n.Pins = append(n.Pins, len(c.Pins))
			c.Pins = append(c.Pins, pin)
		}
		c.Nets = append(c.Nets, n)
	}

	return c
}

// ringSlots appends to out the slot coordinates at Chebyshev distance r
// from (col,row) clipped to the grid; r == 0 returns the center itself.
// Callers pass a reused scratch slice to keep generation allocation-light.
func ringSlots(out [][2]int, col, row, r, cols, rows int) [][2]int {
	add := func(cx, cy int) {
		if cx >= 0 && cx < cols && cy >= 0 && cy < rows {
			out = append(out, [2]int{cx, cy})
		}
	}
	if r == 0 {
		add(col, row)
		return out
	}
	for d := -r; d <= r; d++ {
		add(col+d, row-r)
		add(col+d, row+r)
	}
	for d := -r + 1; d <= r-1; d++ {
		add(col-r, row+d)
		add(col+r, row+d)
	}
	return out
}

// makeProtoLibrary builds a small standard-cell library. Pin geometries
// are deliberately irregular — off the track grid, multiple rects,
// internal blockages — to exercise off-track pin access (§4.3). Every
// pin position is jittered by a per-proto sub-pitch offset so pins align
// with no fixed track lattice, as on real chips.
func makeProtoLibrary(pitch, w int, rng *rand.Rand) []CellProto {
	slotW := 8 * pitch
	rowH := 12 * pitch
	pinRect := func(x, y int) geom.Rect {
		jx := rng.Intn(2*w+1) - w
		jy := rng.Intn(2*w+1) - w
		x, y = x+jx, y+jy
		return geom.Rect{XMin: x, YMin: y, XMax: x + w, YMax: y + 3*w}
	}
	lib := []CellProto{
		{
			// INV-like: 2 pins, 1 slot.
			Name: "inv",
			Size: geom.Rect{XMax: slotW, YMax: rowH},
			Pins: [][]PinShape{
				{{Rect: pinRect(2*pitch, 3*pitch), Layer: 0}},
				{{Rect: pinRect(5*pitch+w/3, 6*pitch), Layer: 0}},
			},
			Blockages: []Obstacle{
				{Rect: geom.Rect{XMin: 3 * pitch, YMin: 2 * pitch, XMax: 3*pitch + w, YMax: 9 * pitch}, Layer: 0},
			},
		},
		{
			// NAND2-like: 3 pins, 1 slot, one pin off-track.
			Name: "nand2",
			Size: geom.Rect{XMax: slotW, YMax: rowH},
			Pins: [][]PinShape{
				{{Rect: pinRect(pitch+w/2, 3*pitch), Layer: 0}},
				{{Rect: pinRect(4*pitch, 7*pitch), Layer: 0}},
				{{Rect: pinRect(6*pitch+w/4, 4*pitch+w/2), Layer: 0}},
			},
			Blockages: []Obstacle{
				{Rect: geom.Rect{XMin: 2*pitch + w, YMin: 5 * pitch, XMax: 5 * pitch, YMax: 5*pitch + w}, Layer: 0},
			},
		},
		{
			// AOI-like: 4 pins, 2 slots, L-shaped pin (two rects).
			Name: "aoi22",
			Size: geom.Rect{XMax: 2 * slotW, YMax: rowH},
			Pins: [][]PinShape{
				{{Rect: pinRect(2*pitch, 3*pitch), Layer: 0},
					{Rect: geom.Rect{XMin: 2 * pitch, YMin: 3 * pitch, XMax: 2*pitch + 3*w, YMax: 3*pitch + w}, Layer: 0}},
				{{Rect: pinRect(6*pitch, 6*pitch), Layer: 0}},
				{{Rect: pinRect(10*pitch+w/2, 4*pitch), Layer: 0}},
				{{Rect: pinRect(13*pitch, 7*pitch+w/3), Layer: 0}},
			},
			Blockages: []Obstacle{
				{Rect: geom.Rect{XMin: 8 * pitch, YMin: 2 * pitch, XMax: 8*pitch + w, YMax: 10 * pitch}, Layer: 0},
				{Rect: geom.Rect{XMin: 4 * pitch, YMin: 9 * pitch, XMax: 12 * pitch, YMax: 9*pitch + w}, Layer: 1},
			},
		},
		{
			// FF-like: 3 pins, 3 slots, pin on layer 1.
			Name: "dff",
			Size: geom.Rect{XMax: 3 * slotW, YMax: rowH},
			Pins: [][]PinShape{
				{{Rect: pinRect(3*pitch, 4*pitch), Layer: 0}},
				{{Rect: pinRect(12*pitch, 5*pitch), Layer: 1}},
				{{Rect: pinRect(20*pitch+w/2, 6*pitch), Layer: 0}},
			},
			Blockages: []Obstacle{
				{Rect: geom.Rect{XMin: 6 * pitch, YMin: 3 * pitch, XMax: 18 * pitch, YMax: 3*pitch + w}, Layer: 0},
				{Rect: geom.Rect{XMin: 9 * pitch, YMin: 2 * pitch, XMax: 9*pitch + w, YMax: 10 * pitch}, Layer: 1},
			},
		},
		{
			// BUF-like: 2 pins, 1 slot, clean geometry (on-track friendly).
			Name: "buf",
			Size: geom.Rect{XMax: slotW, YMax: rowH},
			Pins: [][]PinShape{
				{{Rect: pinRect(2*pitch, 4*pitch), Layer: 0}},
				{{Rect: pinRect(6*pitch, 8*pitch), Layer: 0}},
			},
		},
	}
	return lib
}
