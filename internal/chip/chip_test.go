package chip

import (
	"testing"

	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
)

func TestGenerateValid(t *testing.T) {
	c := Generate(GenParams{Seed: 1, Rows: 10, Cols: 24, NumNets: 80})
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(c.Nets) != 80 {
		t.Fatalf("nets = %d, want 80", len(c.Nets))
	}
	if len(c.Cells) == 0 || len(c.Pins) == 0 {
		t.Fatal("no cells or pins generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := GenParams{Seed: 7, Rows: 4, Cols: 8, NumNets: 30, PowerStripePeriod: 4}
	a, b := Generate(p), Generate(p)
	if len(a.Nets) != len(b.Nets) || len(a.Cells) != len(b.Cells) || len(a.Pins) != len(b.Pins) {
		t.Fatal("same seed produced different structure")
	}
	for i := range a.Pins {
		if a.Pins[i].Shapes[0] != b.Pins[i].Shapes[0] {
			t.Fatalf("pin %d differs", i)
		}
	}
	c := Generate(GenParams{Seed: 8, Rows: 4, Cols: 8, NumNets: 30, PowerStripePeriod: 4})
	same := len(a.Pins) == len(c.Pins)
	if same {
		diff := false
		for i := range a.Pins {
			if a.Pins[i].Shapes[0] != c.Pins[i].Shapes[0] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical pins")
	}
}

func TestGenerateGeometryInsideArea(t *testing.T) {
	c := Generate(GenParams{Seed: 3, Rows: 6, Cols: 14, NumNets: 50, PowerStripePeriod: 3})
	for i := range c.Pins {
		for _, s := range c.Pins[i].Shapes {
			if !c.Area.ContainsRect(s.Rect) {
				t.Errorf("pin %d shape %v escapes area %v", i, s.Rect, c.Area)
			}
		}
	}
	for i := range c.Cells {
		cell := &c.Cells[i]
		footprint := c.Protos[cell.Proto].Size.Translated(cell.Origin)
		if !c.Area.ContainsRect(footprint) {
			t.Errorf("cell %d footprint %v escapes area", i, footprint)
		}
	}
}

func TestGenerateDegreeDistribution(t *testing.T) {
	c := Generate(GenParams{Seed: 11, Rows: 16, Cols: 32, NumNets: 150})
	counts := map[int]int{}
	for i := range c.Nets {
		counts[len(c.Nets[i].Pins)]++
	}
	if counts[2] == 0 || counts[3] == 0 {
		t.Fatalf("degree distribution degenerate: %v", counts)
	}
	// Two-pin nets must dominate, as in real designs and Table II.
	if counts[2] < counts[4] {
		t.Errorf("2-pin nets (%d) should outnumber 4-pin nets (%d)", counts[2], counts[4])
	}
	for d := range counts {
		if d > 24 {
			t.Errorf("degree %d exceeds MaxDegree default", d)
		}
	}
}

func TestPinDisjointAcrossNets(t *testing.T) {
	c := Generate(GenParams{Seed: 5, Rows: 8, Cols: 16, NumNets: 60})
	type key struct{ cell, pin int }
	seen := map[key]int{}
	for i := range c.Pins {
		p := &c.Pins[i]
		if p.Cell < 0 {
			continue
		}
		k := key{p.Cell, p.ProtoPin}
		if prev, ok := seen[k]; ok {
			t.Fatalf("cell pin %v used by nets %d and %d", k, prev, p.Net)
		}
		seen[k] = p.Net
	}
}

func TestMirroredCells(t *testing.T) {
	c := Generate(GenParams{Seed: 2, Rows: 4, Cols: 8, NumNets: 20})
	sawMirror := false
	for i := range c.Cells {
		if c.Cells[i].Mirrored {
			sawMirror = true
			// Mirrored pin shapes still land inside the cell footprint.
			cell := &c.Cells[i]
			proto := &c.Protos[cell.Proto]
			fp := proto.Size.Translated(cell.Origin)
			for _, pinShapes := range proto.Pins {
				for _, ps := range pinShapes {
					r := c.cellRect(cell, ps.Rect)
					if !fp.ContainsRect(r) {
						t.Fatalf("mirrored pin %v escapes footprint %v", r, fp)
					}
				}
			}
		}
	}
	if !sawMirror {
		t.Fatal("no mirrored cells in a multi-row placement")
	}
}

func TestAllObstacles(t *testing.T) {
	c := Generate(GenParams{Seed: 4, Rows: 3, Cols: 6, NumNets: 10, PowerStripePeriod: 2})
	obs := c.AllObstacles()
	if len(obs) <= len(c.Obstacles) {
		t.Fatal("AllObstacles must include cell-internal blockages")
	}
	for _, o := range obs {
		if o.Layer < 0 || o.Layer >= c.NumLayers() {
			t.Errorf("obstacle layer %d out of range", o.Layer)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Chip { return Generate(GenParams{Seed: 1, Rows: 3, Cols: 6, NumNets: 10}) }

	c := fresh()
	c.Nets[0].WireType = 99
	if c.Validate() == nil {
		t.Error("bad wire type not caught")
	}

	c = fresh()
	c.Nets[0].Pins = c.Nets[0].Pins[:1]
	if c.Validate() == nil {
		t.Error("single-pin net not caught")
	}

	c = fresh()
	c.Pins[c.Nets[0].Pins[0]].Net = 1
	if c.Validate() == nil {
		t.Error("broken back-reference not caught")
	}

	c = fresh()
	c.Layers[1].Dir = c.Layers[0].Dir
	if c.Validate() == nil {
		t.Error("same-direction adjacent layers not caught")
	}

	c = fresh()
	c.Area = geom.Rect{}
	if c.Validate() == nil {
		t.Error("empty area not caught")
	}
}

func TestPinsOfAndDir(t *testing.T) {
	c := Generate(GenParams{Seed: 1, Rows: 3, Cols: 6, NumNets: 10})
	n := &c.Nets[0]
	pins := c.PinsOf(n)
	if len(pins) != len(n.Pins) {
		t.Fatal("PinsOf length mismatch")
	}
	for i, p := range pins {
		if p != &c.Pins[n.Pins[i]] {
			t.Fatal("PinsOf returned wrong pin")
		}
	}
	if c.Dir(0) != geom.Horizontal || c.Dir(1) != geom.Vertical {
		t.Fatal("layer direction convention broken")
	}
	if _, ok := interface{}(c.Deck).(*rules.Deck); !ok {
		t.Fatal("deck type")
	}
	if pins[0].Center() == (geom.Point{}) {
		t.Fatal("pin center degenerate")
	}
}
