//go:build scale

package scale

import (
	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/detail"
	"bonnroute/internal/intervalmap"
)

// Memory budgets, bytes per net (shape grid and fast grid, measured on
// the freshly built routing space of a ScaledParams chip: pins,
// obstacles, power stripes, tracks — the structures the footprint work
// of the scale tier compacted) and bytes per run (interval map). The
// accounting is deterministic — Mem()/Footprint() derive from element
// counts, not heap sampling — so growth beyond the +10% headroom is a
// regression in the data-structure layout, not measurement noise.
const (
	budgetShapeGridPerNet1e3 = 8200
	budgetShapeGridPerNet1e4 = 7600
	budgetFastGridPerNet1e3  = 10600
	budgetFastGridPerNet1e4  = 9400
	budgetIntervalMapPerRun  = 38
)

// buildSpace constructs the routing space (no routing) for a
// ScaledParams chip of the given net count and returns the per-net
// footprints of the shape grids and the fast grid.
func buildSpace(t *testing.T, nets int) (shapePerNet, fastPerNet int64) {
	t.Helper()
	c := chip.Generate(chip.ScaledParams("mem", 777, nets))
	if len(c.Nets) != nets {
		t.Fatalf("generated %d nets, want %d", len(c.Nets), nets)
	}
	r := detail.New(c, detail.Options{})
	var shapeBytes int64
	for z := range r.Space.Wiring {
		shapeBytes += r.Space.Wiring[z].Mem().Total()
	}
	for v := range r.Space.Cuts {
		shapeBytes += r.Space.Cuts[v].Mem().Total()
	}
	return shapeBytes / int64(nets), r.FG.Mem() / int64(nets)
}

func checkBudget(t *testing.T, name string, got, budget int64) {
	t.Helper()
	limit := budget + budget/10
	if got > limit {
		t.Errorf("%s: %d bytes/net exceeds budget %d (+10%% = %d) — a footprint regression",
			name, got, budget, limit)
	} else {
		t.Logf("%s: %d bytes/net (budget %d)", name, got, budget)
	}
	if got < budget/4 {
		t.Errorf("%s: %d bytes/net is under a quarter of budget %d — the accounting likely broke",
			name, got, budget)
	}
}

// TestBytesPerNetBudget1e3 pins the per-net footprint of the compact
// structures at the 10³-net tier.
func TestBytesPerNetBudget1e3(t *testing.T) {
	shape, fast := buildSpace(t, 1000)
	checkBudget(t, "shapegrid@1e3", shape, budgetShapeGridPerNet1e3)
	checkBudget(t, "fastgrid@1e3", fast, budgetFastGridPerNet1e3)
}

// TestBytesPerNetBudget1e4 pins the same budgets at 10⁴ nets, where
// per-net cost must not grow with design size (the structures are
// linear in content, and the fast grid amortizes better as tracks
// lengthen).
func TestBytesPerNetBudget1e4(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁴-net space build skipped in -short mode")
	}
	shape, fast := buildSpace(t, 10000)
	checkBudget(t, "shapegrid@1e4", shape, budgetShapeGridPerNet1e4)
	checkBudget(t, "fastgrid@1e4", fast, budgetFastGridPerNet1e4)
}

// TestIntervalMapBytesPerRun pins the arena cost of the offset-indexed
// AVL interval map: a 10⁴-run workload with churn (overlapping
// re-writes exercising node reuse through the free list) must stay
// within the per-run budget. Footprint counts arena capacity, so the
// budget covers append growth slack too.
func TestIntervalMapBytesPerRun(t *testing.T) {
	var m intervalmap.Map
	const n = 10000
	for i := 0; i < n; i++ {
		lo := (i * 7) % (4 * n)
		m.SetRange(lo, lo+5, uint64(i%13))
	}
	runs := int64(m.Len())
	if runs < n/4 {
		t.Fatalf("workload collapsed to %d runs — not a meaningful budget point", runs)
	}
	perRun := m.Footprint() / runs
	limit := int64(budgetIntervalMapPerRun) + int64(budgetIntervalMapPerRun)/10
	if perRun > limit {
		t.Errorf("intervalmap: %d bytes/run exceeds budget %d (+10%% = %d)",
			perRun, budgetIntervalMapPerRun, limit)
	} else {
		t.Logf("intervalmap: %d bytes/run over %d runs (budget %d)", perRun, runs, budgetIntervalMapPerRun)
	}
}
