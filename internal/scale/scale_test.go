//go:build scale

package scale

import (
	"context"
	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/verify"
)

// TestScaleSmoke routes a 10⁴-net chip end to end and requires the
// sampled verifier matrix to come back clean: conservation and
// connectivity exhaustive, spacing capped per plane with a recorded
// seed, the fast-grid differential strided. This is the order-of-
// magnitude gate below the 10⁵-net benchmark run (cmd/routebench
// -suite huge), sized to run under go test.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁴-net route skipped in -short mode")
	}
	const nets = 10000
	p := chip.ScaledParams("smoke10k", 777, nets)
	c := chip.Generate(p)
	if len(c.Nets) != nets {
		t.Fatalf("generated %d nets, want %d", len(c.Nets), nets)
	}
	res := core.RouteBonnRoute(context.Background(), c, core.Options{
		Seed: 777, Workers: 1,
	})
	rep := verify.Run(res, verify.Options{
		SpacingSampleCap:    200,
		SpacingSampleSeed:   777,
		FastGridStride:      8 * c.Deck.Layers[0].Pitch,
		FastGridTrackStride: 4,
	})
	for _, v := range rep.Violations {
		t.Errorf("%s", v)
	}
	if !rep.SpacingSampled {
		t.Error("a 10⁴-net chip should exceed the spacing sample cap")
	}
	if rep.ShapesChecked == 0 || rep.PairsChecked == 0 || rep.NetsChecked == 0 {
		t.Errorf("a verifier pass did no work: %+v", rep)
	}
	t.Logf("routed %d nets: netlength=%d vias=%d errors=%d unrouted=%d",
		nets, res.Metrics.Netlength, res.Metrics.Vias, res.Metrics.Errors, res.Metrics.Unrouted)
}

// TestShardedFlowBitIdentity runs the full flow — global sharded by
// congestion-region tiles at four workers vs. unsharded serial — on the
// same seed and requires every observable of the two results to be
// identical (the acceptance contract: fixed-seed bit-identity at any
// worker count with sharding on).
func TestShardedFlowBitIdentity(t *testing.T) {
	nets := 1500
	if testing.Short() {
		nets = 400
	}
	p := chip.ScaledParams("shardid", 4242, nets)
	a := core.RouteBonnRoute(context.Background(), chip.Generate(p),
		core.Options{Seed: 4242, Workers: 1})
	for _, shardTiles := range []int{1, 4} {
		b := core.RouteBonnRoute(context.Background(), chip.Generate(p),
			core.Options{Seed: 4242, Workers: 4, ShardTiles: shardTiles})
		for _, v := range verify.CompareResults(a, b) {
			t.Errorf("ShardTiles=%d: %s", shardTiles, v)
		}
	}
}
