// Package scale holds the scale-tier test lanes: the 10⁴-net routed
// and verified smoke run, the full-flow sharded-vs-unsharded worker
// bit-identity check, and the bytes-per-net memory-budget regressions
// for the shape grid, fast grid, and interval maps.
//
// Every test in this package is behind the `scale` build tag — the
// tier-1 suite (`go test ./...`) never pays for routing a 10⁴-net
// chip. Run the lanes with:
//
//	go test -tags scale ./internal/scale              (make scale-smoke)
//	go test -tags scale -run BytesPerNet ./internal/scale  (part of make alloc-guard)
//
// The -short flag skips the 10⁴-net route and shrinks the budget sweep
// to its 10³-net point.
package scale
