package capest

import (
	"math"

	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
)

// Assessment is the outcome of a capacity-only routability pre-screen:
// a comparison of per-edge loads against per-edge capacities with no
// routing at all. The service daemon uses it to answer "would this
// delta plausibly fit?" orders of magnitude cheaper than an ECO
// reroute; the tradeoff is that it sees congestion, not connectivity.
type Assessment struct {
	// Edges is the number of edges compared.
	Edges int `json:"edges"`
	// Overloaded counts edges whose load exceeds capacity.
	Overloaded int `json:"overloaded"`
	// Overflow sums load-over-capacity across overloaded edges.
	Overflow float64 `json:"overflow"`
	// WorstRatio is the maximum load/capacity over edges with positive
	// capacity (+Inf when a zero-capacity edge carries load).
	WorstRatio float64 `json:"worst_ratio"`
	// TotalCap and TotalLoad are the grid-wide sums.
	TotalCap  float64 `json:"total_cap"`
	TotalLoad float64 `json:"total_load"`
}

// Routable reports whether no edge is overloaded.
func (a Assessment) Routable() bool { return a.Overloaded == 0 }

// Assess compares per-edge loads against capacities. The slices must
// have equal length (edges beyond the shorter slice are ignored). A
// small relative tolerance absorbs float accumulation noise so an edge
// loaded exactly to capacity does not flap.
func Assess(caps, loads []float64) Assessment {
	n := len(caps)
	if len(loads) < n {
		n = len(loads)
	}
	a := Assessment{Edges: n}
	for e := 0; e < n; e++ {
		c, l := caps[e], loads[e]
		a.TotalCap += c
		a.TotalLoad += l
		if c > 0 {
			if r := l / c; r > a.WorstRatio {
				a.WorstRatio = r
			}
			if l > c*(1+1e-9) {
				a.Overloaded++
				a.Overflow += l - c
			}
		} else if l > 1e-9 {
			a.Overloaded++
			a.Overflow += l
			a.WorstRatio = math.Inf(1)
		}
	}
	return a
}

// wireEdgeRegion is the inter-center region a wire edge's capacity was
// counted over in Compute: from tile (tx,ty)'s center to its successor
// in the layer's preferred direction, full tile extent orthogonally.
func wireEdgeRegion(g *grid.Graph, tx, ty, z int) geom.Rect {
	t0 := g.TileRect(tx, ty)
	if g.Dirs[z] == geom.Horizontal {
		t1 := g.TileRect(tx+1, ty)
		return geom.Rect{XMin: t0.Center().X, XMax: t1.Center().X, YMin: t0.YMin, YMax: t0.YMax}
	}
	t1 := g.TileRect(tx, ty+1)
	return geom.Rect{XMin: t0.XMin, XMax: t0.XMax, YMin: t0.Center().Y, YMax: t1.Center().Y}
}

// AddNetDemand spreads a net's estimated routing demand over the wire
// edges of its terminal bounding box and adds it to loads, returning
// the total demand added. The model is the classic probabilistic
// congestion map: the net crosses every tile-boundary cut inside its
// bounding box once, at an unknown row (or column), so each cut's
// width-weighted crossing is spread uniformly over the bbox's rows
// (columns) and over the layers running that direction. Terminals in a
// single tile add nothing — their wiring is intra-tile and already
// modelled by ReduceForIntraTile.
func AddNetDemand(g *grid.Graph, terminals []geom.Point, width float64, loads []float64) float64 {
	if len(terminals) == 0 || width <= 0 {
		return 0
	}
	txMin, tyMin := g.TileOf(terminals[0])
	txMax, tyMax := txMin, tyMin
	for _, p := range terminals[1:] {
		tx, ty := g.TileOf(p)
		if tx < txMin {
			txMin = tx
		}
		if tx > txMax {
			txMax = tx
		}
		if ty < tyMin {
			tyMin = ty
		}
		if ty > tyMax {
			tyMax = ty
		}
	}
	nH, nV := 0, 0
	for z := 0; z < g.NZ; z++ {
		if g.Dirs[z] == geom.Horizontal {
			nH++
		} else {
			nV++
		}
	}
	var added float64
	rows := tyMax - tyMin + 1
	cols := txMax - txMin + 1
	if txMax > txMin && nH > 0 {
		// One horizontal crossing per vertical cut, spread over bbox
		// rows and horizontal layers.
		per := width / (float64(rows) * float64(nH))
		for z := 0; z < g.NZ; z++ {
			if g.Dirs[z] != geom.Horizontal {
				continue
			}
			for ty := tyMin; ty <= tyMax; ty++ {
				for tx := txMin; tx < txMax; tx++ {
					if e := g.WireEdge(tx, ty, z); e >= 0 {
						loads[e] += per
						added += per
					}
				}
			}
		}
	}
	if tyMax > tyMin && nV > 0 {
		per := width / (float64(cols) * float64(nV))
		for z := 0; z < g.NZ; z++ {
			if g.Dirs[z] != geom.Vertical {
				continue
			}
			for tx := txMin; tx <= txMax; tx++ {
				for ty := tyMin; ty < tyMax; ty++ {
					if e := g.WireEdge(tx, ty, z); e >= 0 {
						loads[e] += per
						added += per
					}
				}
			}
		}
	}
	return added
}

// ReduceCapsForObstacle lowers the capacities of wire edges on one
// layer overlapped by a new obstacle, without recounting tracks: each
// affected edge loses the area fraction of its inter-center region the
// extended obstacle covers. ext extends the obstacle in the layer's
// preferred direction first, matching Compute's blockage extension; it
// is a fast proxy for a full Compute rerun, biased pessimistic (track
// counting could find detours the area model does not).
func ReduceCapsForObstacle(g *grid.Graph, layer int, r geom.Rect, ext int, caps []float64) {
	if layer < 0 || layer >= g.NZ || r.Empty() {
		return
	}
	dir := g.Dirs[layer]
	obs := r.ExpandedDir(dir, ext)
	txLo, tyLo := g.TileOf(geom.Pt(obs.XMin, obs.YMin))
	txHi, tyHi := g.TileOf(geom.Pt(obs.XMax-1, obs.YMax-1))
	// An inter-center region extends half a tile beyond the obstacle's
	// tiles in the preferred direction; widen the scan by one tile.
	for ty := tyLo - 1; ty <= tyHi; ty++ {
		for tx := txLo - 1; tx <= txHi; tx++ {
			e := g.WireEdge(tx, ty, layer)
			if e < 0 {
				continue
			}
			region := wireEdgeRegion(g, tx, ty, layer)
			inter := region.Intersection(obs)
			if inter.Empty() {
				continue
			}
			frac := float64(inter.Area()) / float64(region.Area())
			caps[e] *= 1 - frac
			if caps[e] < 0 {
				caps[e] = 0
			}
		}
	}
}
