package capest

import (
	"math"
	"testing"

	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
)

func assessGrid(t *testing.T) *grid.Graph {
	t.Helper()
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical, geom.Horizontal}
	g := grid.New(geom.R(0, 0, 800, 600), 100, 100, dirs)
	if g.NX != 8 || g.NY != 6 {
		t.Fatalf("unexpected grid %dx%d", g.NX, g.NY)
	}
	return g
}

func TestAssess(t *testing.T) {
	caps := []float64{2, 1, 0, 4, 0}
	loads := []float64{1, 1.5, 0, 4, 0.5}
	a := Assess(caps, loads)
	if a.Edges != 5 {
		t.Fatalf("edges = %d", a.Edges)
	}
	// Edge 1 overflows by 0.5; edge 4 has load on zero capacity; edge 3
	// is exactly at capacity and must not count.
	if a.Overloaded != 2 {
		t.Fatalf("overloaded = %d, want 2", a.Overloaded)
	}
	if math.Abs(a.Overflow-1.0) > 1e-12 {
		t.Fatalf("overflow = %g, want 1", a.Overflow)
	}
	if !math.IsInf(a.WorstRatio, 1) {
		t.Fatalf("worst ratio = %g, want +Inf", a.WorstRatio)
	}
	if a.Routable() {
		t.Fatal("overloaded assessment claims routable")
	}
	clean := Assess(caps, []float64{1, 0.5, 0, 4, 0})
	if !clean.Routable() || clean.WorstRatio != 1 {
		t.Fatalf("clean assessment: %+v", clean)
	}
}

func TestAddNetDemandConservation(t *testing.T) {
	g := assessGrid(t)
	loads := make([]float64, g.NumEdges())

	// Terminals spanning tiles (1,1)..(4,3): 3 vertical cuts, 2
	// horizontal cuts, width 1.
	terms := []geom.Point{geom.Pt(150, 150), geom.Pt(450, 350)}
	added := AddNetDemand(g, terms, 1, loads)

	// Expected crossings: 3 cuts * width 1 horizontally + 2 vertically.
	want := 5.0
	if math.Abs(added-want) > 1e-9 {
		t.Fatalf("added = %g, want %g", added, want)
	}
	var sum float64
	for e, l := range loads {
		sum += l
		if l > 0 && g.IsVia(e) {
			t.Fatalf("via edge %d loaded", e)
		}
	}
	if math.Abs(sum-added) > 1e-9 {
		t.Fatalf("loads sum %g != added %g", sum, added)
	}

	// Horizontal demand is split over the two horizontal layers and the
	// three bbox rows: each loaded horizontal edge carries 1/(3*2).
	e := g.WireEdge(1, 1, 0)
	if math.Abs(loads[e]-1.0/6) > 1e-9 {
		t.Fatalf("edge load %g, want %g", loads[e], 1.0/6)
	}
	// Edges outside the bbox carry nothing.
	if out := g.WireEdge(5, 1, 0); loads[out] != 0 {
		t.Fatalf("edge outside bbox loaded: %g", loads[out])
	}
}

func TestAddNetDemandSingleTile(t *testing.T) {
	g := assessGrid(t)
	loads := make([]float64, g.NumEdges())
	added := AddNetDemand(g, []geom.Point{geom.Pt(10, 10), geom.Pt(20, 30)}, 1, loads)
	if added != 0 {
		t.Fatalf("single-tile net added %g demand", added)
	}
}

func TestReduceCapsForObstacle(t *testing.T) {
	g := assessGrid(t)
	caps := make([]float64, g.NumEdges())
	for i := range caps {
		caps[i] = 10
	}
	before := append([]float64(nil), caps...)

	// Obstacle covering the right half of tile (2,2) on layer 0
	// (horizontal): the edge region (2,2)->(3,2) spans x 250..350.
	ReduceCapsForObstacle(g, 0, geom.R(250, 200, 300, 300), 0, caps)

	e := g.WireEdge(2, 2, 0)
	if math.Abs(caps[e]-5) > 1e-9 {
		t.Fatalf("half-covered edge cap %g, want 5", caps[e])
	}
	// The region (1,2)->(2,2) spans x 150..250: untouched.
	if e2 := g.WireEdge(1, 2, 0); caps[e2] != 10 {
		t.Fatalf("neighboring edge reduced to %g", caps[e2])
	}
	// Other layers untouched.
	if e3 := g.WireEdge(2, 2, 2); caps[e3] != 10 {
		t.Fatalf("layer-2 edge reduced to %g", caps[e3])
	}
	// Nothing increased anywhere.
	for i := range caps {
		if caps[i] > before[i] {
			t.Fatalf("cap %d increased %g -> %g", i, before[i], caps[i])
		}
	}

	// A full-coverage obstacle zeroes the edge; repeat application
	// cannot go negative.
	ReduceCapsForObstacle(g, 0, geom.R(200, 200, 400, 300), 0, caps)
	ReduceCapsForObstacle(g, 0, geom.R(200, 200, 400, 300), 0, caps)
	if caps[e] != 0 {
		t.Fatalf("fully covered edge cap %g, want 0", caps[e])
	}
}
