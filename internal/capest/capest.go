// Package capest computes global routing edge capacities (paper §2.5):
// usable-track counting between tile centers with blockage extension for
// wire edges, crossing counting for via edges, capacity reduction for
// intra-tile connections (pre-routed short nets and Steiner-length
// estimates of longer nets' local wiring), and the stacked-via capacity
// model.
package capest

import (
	"math/rand"

	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
	"bonnroute/internal/steiner"
	"bonnroute/internal/tracks"
)

// Params tune the estimation.
type Params struct {
	// BlockageExtension extends each blockage in preferred direction
	// before counting usable track length (§2.5); 0 uses one pitch of
	// the blockage's own layer (upper layers have coarser pitches, so a
	// single global extension would under-expand them).
	BlockageExtension int
	// ViaSpacingFactor divides the raw crossing count of a tile to get
	// via capacity (cut spacing consumes roughly every other crossing);
	// 0 uses 2.
	ViaSpacingFactor float64
	// StackedViaDensity is the expected number of stacked vias per tile
	// per layer, as a fraction of the tile's track count, fed into the
	// lattice model; 0 uses 0.05.
	StackedViaDensity float64
	// ViaPadBlocking scales capacity loss on layers whose via pads extend
	// to neighboring tracks (§2.5 last paragraph); 0 uses 1 (no extra
	// blocking).
	ViaPadBlocking float64
}

func (p *Params) setDefaults() {
	if p.ViaSpacingFactor <= 0 {
		p.ViaSpacingFactor = 2
	}
	if p.StackedViaDensity <= 0 {
		p.StackedViaDensity = 0.05
	}
	if p.ViaPadBlocking <= 0 {
		p.ViaPadBlocking = 1
	}
}

// Compute fills g.Cap from the chip's obstacles and track graph.
func Compute(c *chip.Chip, tg *tracks.Graph, g *grid.Graph, p Params) {
	p.setDefaults()

	// Per-layer obstacle lists with the §2.5 extension in preferred
	// direction. The default extension is each layer's own pitch: decks
	// with coarser upper-layer pitches need proportionally larger
	// expansions there (a layer-0 pitch would undercount the blocked
	// track length on thick upper metal).
	obstacles := make([][]geom.Rect, c.NumLayers())
	for _, o := range c.AllObstacles() {
		ext := p.BlockageExtension
		if ext <= 0 {
			ext = c.Deck.Layers[o.Layer].Pitch
		}
		obstacles[o.Layer] = append(obstacles[o.Layer],
			o.Rect.ExpandedDir(c.Dir(o.Layer), ext))
	}

	// Wire edges: sum over tracks crossing the inter-center region of
	// the usable fraction.
	for z := 0; z < g.NZ; z++ {
		dir := g.Dirs[z]
		layer := &tg.Layers[z]
		stacked := stackedViaReduction(p.StackedViaDensity, len(layer.Coords))
		for ty := 0; ty < g.NY; ty++ {
			for tx := 0; tx < g.NX; tx++ {
				e := g.WireEdge(tx, ty, z)
				if e < 0 {
					continue
				}
				var region geom.Rect
				t0 := g.TileRect(tx, ty)
				if dir == geom.Horizontal {
					t1 := g.TileRect(tx+1, ty)
					region = geom.Rect{
						XMin: t0.Center().X, XMax: t1.Center().X,
						YMin: t0.YMin, YMax: t0.YMax,
					}
				} else {
					t1 := g.TileRect(tx, ty+1)
					region = geom.Rect{
						XMin: t0.XMin, XMax: t0.XMax,
						YMin: t0.Center().Y, YMax: t1.Center().Y,
					}
				}
				usable := geom.SubtractRects(region, obstacles[z])
				regionLen := region.Span(dir).Len()
				if regionLen <= 0 {
					continue
				}
				cap := 0.0
				ortho := region.Span(dir.Perp())
				for _, tc := range layer.TracksRange(ortho.Lo, ortho.Hi-1) {
					cov := geom.CoveredLength(usable, dir, tc)
					cap += float64(cov) / float64(regionLen)
				}
				cap *= stacked
				if z > 0 && z+1 < g.NZ {
					cap /= p.ViaPadBlocking
				}
				g.Cap[e] = cap
			}
		}
	}

	// Via edges: usable crossings in the tile divided by the spacing
	// factor.
	for z := 0; z+1 < g.NZ; z++ {
		lo, hi := &tg.Layers[z], &tg.Layers[z+1]
		for ty := 0; ty < g.NY; ty++ {
			for tx := 0; tx < g.NX; tx++ {
				tile := g.TileRect(tx, ty)
				loTracks := tracksIn(lo, tile)
				hiTracks := tracksIn(hi, tile)
				free := 0
				for _, a := range loTracks {
					for _, b := range hiTracks {
						var pt geom.Point
						if lo.Dir == geom.Horizontal {
							pt = geom.Pt(b, a)
						} else {
							pt = geom.Pt(a, b)
						}
						if !pointBlocked(obstacles[z], pt) && !pointBlocked(obstacles[z+1], pt) {
							free++
						}
					}
				}
				g.Cap[g.ViaEdge(tx, ty, z)] = float64(free) / p.ViaSpacingFactor
			}
		}
	}
}

func tracksIn(l *tracks.Layer, tile geom.Rect) []int {
	s := tile.Span(l.Dir.Perp())
	return l.TracksRange(s.Lo, s.Hi-1)
}

func pointBlocked(obst []geom.Rect, p geom.Point) bool {
	for _, r := range obst {
		if r.ContainsClosed(p) {
			return true
		}
	}
	return false
}

// ReduceForIntraTile lowers edge capacities around tiles with local
// wiring: nets fully inside one tile are "pre-routed" (§2.5) and their
// Steiner length converted into an equivalent number of blocked tracks;
// multi-tile nets reduce capacity by their estimated intra-tile stub
// lengths (the GLARE-style correction). It must run after Compute.
func ReduceForIntraTile(c *chip.Chip, g *grid.Graph) {
	// Intra-tile demand in DBU of wiring per (tile, 2D).
	demand := make([]float64, g.NX*g.NY)
	idx := func(tx, ty int) int { return ty*g.NX + tx }

	for ni := range c.Nets {
		n := &c.Nets[ni]
		var pts []geom.Point
		tiles := map[[2]int]bool{}
		for _, pi := range n.Pins {
			ctr := c.Pins[pi].Center()
			pts = append(pts, ctr)
			tx, ty := g.TileOf(ctr)
			tiles[[2]int{tx, ty}] = true
		}
		if len(tiles) == 1 {
			// Fully local: whole Steiner length is intra-tile.
			for t := range tiles {
				demand[idx(t[0], t[1])] += float64(steiner.RSMTLength(pts))
			}
			continue
		}
		// Multi-tile: each pin contributes a stub from the pin to its
		// tile center (the expected local wiring of the global route).
		for _, pi := range n.Pins {
			ctr := c.Pins[pi].Center()
			tx, ty := g.TileOf(ctr)
			tc := g.TileRect(tx, ty).Center()
			demand[idx(tx, ty)] += float64(ctr.Dist1(tc)) * 0.5
		}
	}

	// Convert demand to capacity reduction: a tile with D DBU of local
	// wiring across NZ layers loses D / (tileSpan · NZ) tracks on each
	// incident wire edge.
	for ty := 0; ty < g.NY; ty++ {
		for tx := 0; tx < g.NX; tx++ {
			d := demand[idx(tx, ty)]
			if d == 0 {
				continue
			}
			for z := 0; z < g.NZ; z++ {
				span := float64(g.TileW)
				if g.Dirs[z] == geom.Vertical {
					span = float64(g.TileH)
				}
				loss := d / (span * float64(g.NZ))
				for _, e := range incidentWireEdges(g, tx, ty, z) {
					g.Cap[e] = maxf(0, g.Cap[e]-loss/2)
				}
			}
		}
	}
}

func incidentWireEdges(g *grid.Graph, tx, ty, z int) []int {
	var out []int
	if e := g.WireEdge(tx, ty, z); e >= 0 {
		out = append(out, e)
	}
	if g.Dirs[z] == geom.Horizontal {
		if e := g.WireEdge(tx-1, ty, z); e >= 0 {
			out = append(out, e)
		}
	} else {
		if e := g.WireEdge(tx, ty-1, z); e >= 0 {
			out = append(out, e)
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// stackedViaReduction evaluates the §2.5 stacked-via model: the expected
// fraction of per-track capacity that survives k stacked vias of
// footprint p placed uniformly in a tile with the given track count. It
// wraps StackedViaColumnLoad with the default footprint.
func stackedViaReduction(density float64, trackCount int) float64 {
	if trackCount <= 0 {
		return 1
	}
	k := int(density * float64(trackCount))
	if k <= 0 {
		return 1
	}
	load := StackedViaColumnLoad(k, 2, trackCount, trackCount)
	frac := load / float64(trackCount)
	if frac > 0.9 {
		frac = 0.9
	}
	return 1 - frac
}

// StackedViaColumnLoad estimates, for k disjoint stacked vias each
// occupying p consecutive sites in x-direction placed uniformly at random
// in an m×rows lattice, the expected maximum number of occupied sites in
// any column — the paper's §2.5 proxy for the capacity a population of
// stacked vias destroys. The estimate is a deterministic seeded Monte
// Carlo (the paper precomputes the same quantity by counting).
func StackedViaColumnLoad(k, p, m, rows int) float64 {
	if k <= 0 || p <= 0 || m < p || rows <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(int64(k)*1_000_003 + int64(p)*10_007 + int64(m)*101 + int64(rows)))
	const trials = 200
	total := 0.0
	col := make([]int, m)
	rowFree := make([][]bool, rows)
	for i := range rowFree {
		rowFree[i] = make([]bool, m)
	}
	for t := 0; t < trials; t++ {
		for i := range col {
			col[i] = 0
		}
		for r := range rowFree {
			for x := range rowFree[r] {
				rowFree[r][x] = true
			}
		}
		placed := 0
		for attempt := 0; attempt < 50*k && placed < k; attempt++ {
			r := rng.Intn(rows)
			x := rng.Intn(m - p + 1)
			ok := true
			for d := 0; d < p; d++ {
				if !rowFree[r][x+d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for d := 0; d < p; d++ {
				rowFree[r][x+d] = false
				col[x+d]++
			}
			placed++
		}
		maxLoad := 0
		for _, cnt := range col {
			if cnt > maxLoad {
				maxLoad = cnt
			}
		}
		total += float64(maxLoad)
	}
	return total / trials
}
