package capest

import (
	"testing"

	"bonnroute/internal/chip"
	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
	"bonnroute/internal/tracks"
)

// buildWorld makes a small chip, its tracks and an empty grid.
func buildWorld(t *testing.T, p chip.GenParams) (*chip.Chip, *tracks.Graph, *grid.Graph) {
	t.Helper()
	c := chip.Generate(p)
	tg := buildTracks(c)
	tileW := 8 * c.Deck.Layers[0].Pitch
	g := grid.New(c.Area, tileW, tileW, layerDirs(c))
	return c, tg, g
}

func layerDirs(c *chip.Chip) []geom.Direction {
	dirs := make([]geom.Direction, c.NumLayers())
	for z := range dirs {
		dirs[z] = c.Dir(z)
	}
	return dirs
}

func buildTracks(c *chip.Chip) *tracks.Graph {
	obstacles := make([][]geom.Rect, c.NumLayers())
	for _, o := range c.AllObstacles() {
		obstacles[o.Layer] = append(obstacles[o.Layer], o.Rect)
	}
	coords := make([][]int, c.NumLayers())
	for z := 0; z < c.NumLayers(); z++ {
		lr := c.Deck.Layers[z]
		clear := lr.MinWidth/2 + lr.Spacing[0].Spacing
		usable := tracks.UsableAreas(c.Area, obstacles[z], clear)
		span := c.Area.Span(c.Dir(z).Perp())
		coords[z], _ = tracks.Optimize(usable, c.Dir(z), lr.Pitch, span)
	}
	return tracks.BuildGraph(c.Area, layerDirs(c), coords)
}

func TestComputeProducesPositiveCapacities(t *testing.T) {
	c, tg, g := buildWorld(t, chip.GenParams{Seed: 1, Rows: 4, Cols: 8, NumNets: 20})
	Compute(c, tg, g, Params{})
	pos, zero := 0, 0
	for _, cp := range g.Cap {
		if cp > 0 {
			pos++
		} else {
			zero++
		}
	}
	if pos == 0 {
		t.Fatal("no positive capacities")
	}
	// Upper layers are mostly free: their edges should be near the track
	// count per tile.
	z := c.NumLayers() - 1
	e := g.WireEdge(g.NX/2, g.NY/2, z)
	if e < 0 {
		t.Fatal("no edge")
	}
	if g.Cap[e] < 2 {
		t.Fatalf("free layer capacity = %f, implausibly low", g.Cap[e])
	}
}

func TestBlockageReducesCapacity(t *testing.T) {
	c, tg, g := buildWorld(t, chip.GenParams{Seed: 2, Rows: 4, Cols: 8, NumNets: 10})
	Compute(c, tg, g, Params{})
	z := 3 // layer with power stripes potential; add our own blockage
	e := g.WireEdge(2, 2, z)
	before := g.Cap[e]

	// Add a blockage covering the edge region and recompute.
	t0 := g.TileRect(2, 2)
	c.Obstacles = append(c.Obstacles, chip.Obstacle{
		Rect:  t0.Union(g.TileRect(2, 3)).Union(g.TileRect(3, 2)),
		Layer: z,
	})
	tg2 := buildTracks(c)
	g2 := grid.New(c.Area, g.TileW, g.TileH, layerDirs(c))
	Compute(c, tg2, g2, Params{})
	after := g2.Cap[e]
	if after >= before {
		t.Fatalf("blockage did not reduce capacity: %f -> %f", before, after)
	}
}

func TestBlockageExtensionUsesOwnLayerPitch(t *testing.T) {
	// The default deck doubles the pitch on layers ≥ 4, so on a 6-layer
	// chip the default blockage extension must be the upper layer's own
	// (coarser) pitch, not layer 0's. Compare against a run that forces
	// the old behavior (extension = Layers[0].Pitch everywhere): the
	// per-layer default expands upper-layer blockages further along the
	// preferred direction, so the blocked layer loses more capacity,
	// while layers whose pitch equals layer 0's are unchanged.
	c, tg, g := buildWorld(t, chip.GenParams{Seed: 5, Rows: 4, Cols: 8, NumNets: 10, NumLayers: 6})
	z := 5
	if p0, pz := c.Deck.Layers[0].Pitch, c.Deck.Layers[z].Pitch; pz <= p0 {
		t.Fatalf("test premise broken: layer %d pitch %d not coarser than layer 0 pitch %d", z, pz, p0)
	}
	// A blockage in the middle of the chip on the coarse layer, covering
	// a partial stretch of several tiles so the extension length matters.
	mid := g.TileRect(g.NX/2, g.NY/2)
	c.Obstacles = append(c.Obstacles, chip.Obstacle{Rect: mid, Layer: z})

	sumLayer := func(gr *grid.Graph, z int) float64 {
		s := 0.0
		for ty := 0; ty < gr.NY; ty++ {
			for tx := 0; tx < gr.NX; tx++ {
				if e := gr.WireEdge(tx, ty, z); e >= 0 {
					s += gr.Cap[e]
				}
			}
		}
		return s
	}

	gOwn := grid.New(c.Area, g.TileW, g.TileH, layerDirs(c))
	Compute(c, tg, gOwn, Params{}) // per-layer default
	gOld := grid.New(c.Area, g.TileW, g.TileH, layerDirs(c))
	Compute(c, tg, gOld, Params{BlockageExtension: c.Deck.Layers[0].Pitch})

	if own, old := sumLayer(gOwn, z), sumLayer(gOld, z); own >= old {
		t.Fatalf("layer %d: per-layer extension should block more than layer-0 pitch: %f >= %f", z, own, old)
	}
	// Layer 0 has identical pitch either way: capacities must match.
	for ty := 0; ty < g.NY; ty++ {
		for tx := 0; tx < g.NX; tx++ {
			e := gOwn.WireEdge(tx, ty, 0)
			if e >= 0 && gOwn.Cap[e] != gOld.Cap[e] {
				t.Fatalf("layer 0 edge (%d,%d) differs: %f vs %f", tx, ty, gOwn.Cap[e], gOld.Cap[e])
			}
		}
	}
}

func TestViaEdgeCapacities(t *testing.T) {
	c, tg, g := buildWorld(t, chip.GenParams{Seed: 3, Rows: 4, Cols: 8, NumNets: 10})
	Compute(c, tg, g, Params{})
	// Via capacity in an upper, free tile must be positive.
	e := g.ViaEdge(g.NX/2, g.NY/2, c.NumLayers()-2)
	if g.Cap[e] <= 0 {
		t.Fatalf("via capacity = %f", g.Cap[e])
	}
}

func TestReduceForIntraTile(t *testing.T) {
	c, tg, g := buildWorld(t, chip.GenParams{Seed: 4, Rows: 4, Cols: 8, NumNets: 40, LocalityRadius: 1})
	Compute(c, tg, g, Params{})
	before := append([]float64(nil), g.Cap...)
	ReduceForIntraTile(c, g)
	reduced, increased := 0, 0
	for e := range g.Cap {
		switch {
		case g.Cap[e] < before[e]-1e-12:
			reduced++
		case g.Cap[e] > before[e]+1e-12:
			increased++
		}
	}
	if reduced == 0 {
		t.Fatal("intra-tile correction reduced nothing")
	}
	if increased > 0 {
		t.Fatal("correction must never increase capacity")
	}
	for _, cp := range g.Cap {
		if cp < 0 {
			t.Fatal("negative capacity")
		}
	}
}

func TestStackedViaColumnLoadMonotone(t *testing.T) {
	// More stacked vias → higher expected max column load.
	prev := 0.0
	for k := 1; k <= 8; k *= 2 {
		l := StackedViaColumnLoad(k, 2, 20, 20)
		if l < prev {
			t.Fatalf("column load not monotone in k: k=%d %f < %f", k, l, prev)
		}
		prev = l
	}
	// Degenerate inputs.
	if StackedViaColumnLoad(0, 2, 20, 20) != 0 {
		t.Fatal("k=0 must be 0")
	}
	if StackedViaColumnLoad(3, 5, 4, 4) != 0 {
		t.Fatal("m < p must be 0")
	}
	// Sub-linearity (§2.5: "expected capacity reduction is sublinear in
	// the number of stacked vias"): doubling k must not double the load
	// once the lattice is busy.
	l8 := StackedViaColumnLoad(8, 2, 10, 10)
	l16 := StackedViaColumnLoad(16, 2, 10, 10)
	if l16 >= 2*l8 {
		t.Fatalf("column load not sublinear: k=8 %f, k=16 %f", l8, l16)
	}
}

func TestStackedViaDeterministic(t *testing.T) {
	a := StackedViaColumnLoad(5, 2, 30, 30)
	b := StackedViaColumnLoad(5, 2, 30, 30)
	if a != b {
		t.Fatal("Monte Carlo must be deterministic for fixed parameters")
	}
}
