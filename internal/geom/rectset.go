package geom

import "sort"

// SubtractRects computes base minus the union of holes as a set of
// disjoint rectangles. It is the workhorse behind usable-area
// computations: routing-track optimization and global-routing capacity
// estimation both start from "chip area minus blockages".
//
// The decomposition is the classical y-slab sweep: the y-coordinates of
// all inputs partition base into horizontal slabs, and within each slab
// the free x-ranges are emitted as maximal rectangles. Vertically
// adjacent rectangles with identical x-ranges are merged so the output is
// canonical for a given input set.
func SubtractRects(base Rect, holes []Rect) []Rect {
	if base.Empty() {
		return nil
	}
	ys := make([]int, 0, 2*len(holes)+2)
	ys = append(ys, base.YMin, base.YMax)
	clipped := make([]Rect, 0, len(holes))
	for _, h := range holes {
		h = h.Intersection(base)
		if h.Empty() {
			continue
		}
		clipped = append(clipped, h)
		ys = append(ys, h.YMin, h.YMax)
	}
	sort.Ints(ys)
	ys = dedupInts(ys)

	var out []Rect
	for i := 0; i+1 < len(ys); i++ {
		y0, y1 := ys[i], ys[i+1]
		if y0 >= y1 {
			continue
		}
		// Collect x-intervals blocked in this slab.
		var blocked []Interval
		for _, h := range clipped {
			if h.YMin <= y0 && h.YMax >= y1 {
				blocked = append(blocked, Interval{h.XMin, h.XMax})
			}
		}
		free := complementIntervals(Interval{base.XMin, base.XMax}, blocked)
		for _, iv := range free {
			out = mergeAppend(out, Rect{iv.Lo, y0, iv.Hi, y1})
		}
	}
	return out
}

// UnionArea returns the total area covered by the union of rects.
func UnionArea(rects []Rect) int64 {
	if len(rects) == 0 {
		return 0
	}
	bbox := rects[0]
	for _, r := range rects[1:] {
		bbox = bbox.Union(r)
	}
	free := SubtractRects(bbox, rects)
	area := bbox.Area()
	for _, f := range free {
		area -= f.Area()
	}
	return area
}

// CoveredLength returns the total length of line ∩ (∪ rects), where line
// is the horizontal line y = c if d == Horizontal (vertical line x = c
// otherwise). This is the objective evaluated per candidate position by
// the track optimization problem (paper §3.5).
func CoveredLength(rects []Rect, d Direction, c int) int {
	var ivs []Interval
	for _, r := range rects {
		if d == Horizontal {
			if c >= r.YMin && c < r.YMax {
				ivs = append(ivs, Interval{r.XMin, r.XMax})
			}
		} else {
			if c >= r.XMin && c < r.XMax {
				ivs = append(ivs, Interval{r.YMin, r.YMax})
			}
		}
	}
	return unionLength(ivs)
}

func unionLength(ivs []Interval) int {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	total, curLo, curHi := 0, ivs[0].Lo, ivs[0].Hi
	for _, iv := range ivs[1:] {
		if iv.Lo > curHi {
			total += curHi - curLo
			curLo, curHi = iv.Lo, iv.Hi
		} else if iv.Hi > curHi {
			curHi = iv.Hi
		}
	}
	return total + (curHi - curLo)
}

// complementIntervals returns span minus the union of cuts, as sorted
// disjoint intervals.
func complementIntervals(span Interval, cuts []Interval) []Interval {
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].Lo < cuts[j].Lo })
	var out []Interval
	cur := span.Lo
	for _, c := range cuts {
		if c.Hi <= cur {
			continue
		}
		if c.Lo > cur {
			out = append(out, Interval{cur, min(c.Lo, span.Hi)})
		}
		cur = max(cur, c.Hi)
		if cur >= span.Hi {
			return out
		}
	}
	if cur < span.Hi {
		out = append(out, Interval{cur, span.Hi})
	}
	return out
}

// mergeAppend appends r, merging it with a previous rectangle when the two
// share the same x-range and abut vertically (keeps output canonical).
func mergeAppend(out []Rect, r Rect) []Rect {
	for i := range out {
		o := &out[i]
		if o.XMin == r.XMin && o.XMax == r.XMax && o.YMax == r.YMin {
			o.YMax = r.YMax
			return out
		}
	}
	return append(out, r)
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
