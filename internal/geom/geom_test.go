package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirectionPerp(t *testing.T) {
	if Horizontal.Perp() != Vertical || Vertical.Perp() != Horizontal {
		t.Fatalf("Perp is not an involution swap")
	}
	if Horizontal.String() != "horizontal" || Vertical.String() != "vertical" {
		t.Fatalf("unexpected String: %q %q", Horizontal, Vertical)
	}
}

func TestPointOps(t *testing.T) {
	p, q := Pt(3, -2), Pt(-1, 5)
	if got := p.Add(q); got != Pt(2, 3) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, -7) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Dist1(q); got != 4+7 {
		t.Errorf("Dist1 = %d", got)
	}
	if p.Coord(Horizontal) != 3 || p.Coord(Vertical) != -2 {
		t.Errorf("Coord wrong: %d %d", p.Coord(Horizontal), p.Coord(Vertical))
	}
}

func TestPoint3(t *testing.T) {
	p := Pt3(1, 2, 3)
	if p.XY() != Pt(1, 2) {
		t.Errorf("XY = %v", p.XY())
	}
	if got := p.Dist1(Pt3(4, 6, 0)); got != 7 {
		t.Errorf("Dist1 = %d", got)
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(5, 7, 1, 2)
	if r != (Rect{1, 2, 5, 7}) {
		t.Fatalf("R did not normalize: %+v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 10, 4)
	if r.W() != 10 || r.H() != 4 || r.Area() != 40 || r.Width() != 4 {
		t.Fatalf("basics wrong: %v %v %v %v", r.W(), r.H(), r.Area(), r.Width())
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if !(Rect{3, 3, 3, 9}).Empty() {
		t.Fatal("degenerate rect not empty")
	}
	if (Rect{3, 3, 3, 9}).Area() != 0 {
		t.Fatal("empty rect with nonzero area")
	}
	if r.Center() != Pt(5, 2) {
		t.Fatalf("Center = %v", r.Center())
	}
	if r.Span(Horizontal) != Iv(0, 10) || r.Span(Vertical) != Iv(0, 4) {
		t.Fatal("Span wrong")
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p        Point
		in, inCl bool
	}{
		{Pt(0, 0), true, true},
		{Pt(10, 10), false, true},
		{Pt(9, 9), true, true},
		{Pt(10, 0), false, true},
		{Pt(11, 5), false, false},
		{Pt(-1, 5), false, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.in {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.in)
		}
		if got := r.ContainsClosed(c.p); got != c.inCl {
			t.Errorf("ContainsClosed(%v) = %v, want %v", c.p, got, c.inCl)
		}
	}
	if !r.ContainsRect(R(2, 2, 8, 8)) || r.ContainsRect(R(2, 2, 12, 8)) {
		t.Error("ContainsRect wrong")
	}
}

func TestIntersectTouch(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(10, 0, 20, 10) // abuts a
	c := R(5, 5, 15, 15)  // overlaps a
	d := R(30, 30, 40, 40)
	if a.Intersects(b) {
		t.Error("abutting rects must not Intersect")
	}
	if !a.Touches(b) {
		t.Error("abutting rects must Touch")
	}
	if !a.Intersects(c) || a.Intersection(c) != R(5, 5, 10, 10) {
		t.Error("overlap wrong")
	}
	if a.Touches(d) {
		t.Error("distant rects must not Touch")
	}
	if !a.Intersection(d).Empty() {
		t.Error("empty intersection expected")
	}
}

func TestUnionExpand(t *testing.T) {
	a, b := R(0, 0, 2, 2), R(5, 5, 6, 9)
	if a.Union(b) != R(0, 0, 6, 9) {
		t.Errorf("Union = %v", a.Union(b))
	}
	var e Rect
	if e.Union(a) != a || a.Union(e) != a {
		t.Error("Union must ignore empty inputs")
	}
	if a.Expanded(3) != R(-3, -3, 5, 5) {
		t.Errorf("Expanded = %v", a.Expanded(3))
	}
	if a.ExpandedDir(Horizontal, 4) != R(-4, 0, 6, 2) {
		t.Errorf("ExpandedDir H = %v", a.ExpandedDir(Horizontal, 4))
	}
	if a.ExpandedDir(Vertical, 4) != R(0, -4, 2, 6) {
		t.Errorf("ExpandedDir V = %v", a.ExpandedDir(Vertical, 4))
	}
	if a.Translated(Pt(7, -1)) != R(7, -1, 9, 1) {
		t.Error("Translated wrong")
	}
	if a.MinkowskiPt(Pt(1, 1)) != a.Translated(Pt(1, 1)) {
		t.Error("MinkowskiPt must equal Translated")
	}
}

func TestMinkowskiSeg(t *testing.T) {
	model := R(-2, -1, 2, 1) // wire half-width 1, end extension 2
	// A horizontal stick from (10,5) to (20,5).
	got := MinkowskiSeg(model, Pt(10, 5), Pt(20, 5))
	want := R(8, 4, 22, 6)
	if got != want {
		t.Fatalf("MinkowskiSeg = %v, want %v", got, want)
	}
	// Degenerate stick (a via location).
	if MinkowskiSeg(model, Pt(3, 3), Pt(3, 3)) != R(1, 2, 5, 4) {
		t.Fatal("point stick wrong")
	}
	// Order of endpoints must not matter.
	if MinkowskiSeg(model, Pt(20, 5), Pt(10, 5)) != want {
		t.Fatal("MinkowskiSeg must be symmetric in endpoints")
	}
}

func TestRunLengthAndDistances(t *testing.T) {
	a := R(0, 0, 10, 2)
	b := R(4, 5, 20, 7) // above a, x-overlap [4,10)
	if rl := a.RunLength(b, Horizontal); rl != 6 {
		t.Errorf("RunLength H = %d", rl)
	}
	if rl := a.RunLength(b, Vertical); rl != -3 {
		t.Errorf("RunLength V = %d (want -3: disjoint by 3)", rl)
	}
	if a.DistX(b) != 0 || a.DistY(b) != 3 {
		t.Errorf("DistX/DistY = %d/%d", a.DistX(b), a.DistY(b))
	}
	if a.Dist2Sq(b) != 9 {
		t.Errorf("Dist2Sq = %d", a.Dist2Sq(b))
	}
	c := R(13, 6, 15, 8)
	if a.DistX(c) != 3 || a.DistY(c) != 4 || a.Dist2Sq(c) != 25 {
		t.Errorf("diagonal distances wrong: %d %d %d", a.DistX(c), a.DistY(c), a.Dist2Sq(c))
	}
}

func TestDist1Pt(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p Point
		d int
	}{
		{Pt(5, 5), 0}, {Pt(0, 0), 0}, {Pt(10, 10), 0},
		{Pt(12, 5), 2}, {Pt(-3, -4), 7}, {Pt(5, 13), 3},
	}
	for _, c := range cases {
		if got := r.Dist1Pt(c.p); got != c.d {
			t.Errorf("Dist1Pt(%v) = %d, want %d", c.p, got, c.d)
		}
	}
}

func TestIntervalOps(t *testing.T) {
	a, b := Iv(0, 10), Iv(10, 20)
	if a.Intersects(b) {
		t.Error("half-open abutting intervals must not intersect")
	}
	if !a.Intersects(Iv(9, 11)) {
		t.Error("overlapping intervals must intersect")
	}
	if a.Intersection(Iv(5, 15)) != Iv(5, 10) {
		t.Error("Intersection wrong")
	}
	if a.Union(b) != Iv(0, 20) {
		t.Error("Union wrong")
	}
	var e Interval
	if e.Union(a) != a || a.Union(e) != a {
		t.Error("Union must ignore empty")
	}
	if !e.Empty() || e.Len() != 0 || a.Len() != 10 {
		t.Error("Len/Empty wrong")
	}
	if !a.Contains(0) || a.Contains(10) || a.Contains(-1) {
		t.Error("Contains wrong")
	}
}

func TestAbs(t *testing.T) {
	if Abs(-7) != 7 || Abs(7) != 7 || Abs(0) != 0 {
		t.Fatal("Abs wrong")
	}
}

// Property: Intersects is symmetric and consistent with Intersection.
func TestQuickIntersection(t *testing.T) {
	f := func(x0, y0, w0, h0, x1, y1, w1, h1 int16) bool {
		a := R(int(x0), int(y0), int(x0)+int(w0%100), int(y0)+int(h0%100))
		b := R(int(x1), int(y1), int(x1)+int(w1%100), int(y1)+int(h1%100))
		inter := a.Intersection(b)
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		if a.Empty() || b.Empty() {
			return !a.Intersects(b)
		}
		return a.Intersects(b) == !inter.Empty() &&
			(inter.Empty() || (a.ContainsRect(inter) && b.ContainsRect(inter)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dist2Sq is zero iff rects touch, and symmetric.
func TestQuickDist(t *testing.T) {
	f := func(x0, y0, x1, y1 int8) bool {
		a := R(int(x0), int(y0), int(x0)+5, int(y0)+5)
		b := R(int(x1), int(y1), int(x1)+5, int(y1)+5)
		if a.Dist2Sq(b) != b.Dist2Sq(a) {
			return false
		}
		return (a.Dist2Sq(b) == 0) == a.Touches(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dist1Pt(p) == 0 iff ContainsClosed(p).
func TestQuickDist1Pt(t *testing.T) {
	f := func(px, py int8) bool {
		r := R(-10, -10, 10, 10)
		p := Pt(int(px)/2, int(py)/2)
		return (r.Dist1Pt(p) == 0) == r.ContainsClosed(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubtractRectsBasic(t *testing.T) {
	base := R(0, 0, 10, 10)
	// Punch a hole in the middle.
	out := SubtractRects(base, []Rect{R(4, 4, 6, 6)})
	var area int64
	for _, r := range out {
		area += r.Area()
		if !base.ContainsRect(r) {
			t.Fatalf("output %v escapes base", r)
		}
		if r.Intersects(R(4, 4, 6, 6)) {
			t.Fatalf("output %v overlaps hole", r)
		}
	}
	if area != 100-4 {
		t.Fatalf("area = %d, want 96", area)
	}
}

func TestSubtractRectsEdgeCases(t *testing.T) {
	if out := SubtractRects(Rect{}, []Rect{R(0, 0, 1, 1)}); out != nil {
		t.Fatal("empty base must yield nil")
	}
	base := R(0, 0, 4, 4)
	if out := SubtractRects(base, []Rect{R(-5, -5, 20, 20)}); len(out) != 0 {
		t.Fatalf("fully covered base must yield nothing, got %v", out)
	}
	out := SubtractRects(base, nil)
	if len(out) != 1 || out[0] != base {
		t.Fatalf("no holes must return base, got %v", out)
	}
	// Holes outside base are ignored.
	out = SubtractRects(base, []Rect{R(100, 100, 110, 110)})
	if len(out) != 1 || out[0] != base {
		t.Fatalf("outside hole must be ignored, got %v", out)
	}
}

// Property: SubtractRects output is disjoint, avoids all holes, and has
// complementary area.
func TestQuickSubtractRects(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		base := R(0, 0, 50, 50)
		n := rng.Intn(6)
		holes := make([]Rect, n)
		for i := range holes {
			x, y := rng.Intn(50), rng.Intn(50)
			holes[i] = R(x, y, x+1+rng.Intn(20), y+1+rng.Intn(20))
		}
		out := SubtractRects(base, holes)
		var freeArea int64
		for i, r := range out {
			if r.Empty() {
				t.Fatalf("empty output rect %v", r)
			}
			freeArea += r.Area()
			for _, h := range holes {
				if r.Intersects(h) {
					t.Fatalf("output %v overlaps hole %v", r, h)
				}
			}
			for j := i + 1; j < len(out); j++ {
				if r.Intersects(out[j]) {
					t.Fatalf("outputs %v and %v overlap", r, out[j])
				}
			}
		}
		clipped := make([]Rect, 0, len(holes))
		for _, h := range holes {
			if hh := h.Intersection(base); !hh.Empty() {
				clipped = append(clipped, hh)
			}
		}
		holeArea := UnionArea(clipped)
		if freeArea+holeArea != base.Area() {
			t.Fatalf("area mismatch: free %d + holes %d != %d", freeArea, holeArea, base.Area())
		}
	}
}

func TestUnionArea(t *testing.T) {
	if UnionArea(nil) != 0 {
		t.Fatal("empty union area must be 0")
	}
	rects := []Rect{R(0, 0, 10, 10), R(5, 5, 15, 15)}
	if got := UnionArea(rects); got != 175 {
		t.Fatalf("UnionArea = %d, want 175", got)
	}
	// Duplicates must not double count.
	if got := UnionArea([]Rect{R(0, 0, 4, 4), R(0, 0, 4, 4)}); got != 16 {
		t.Fatalf("UnionArea dup = %d, want 16", got)
	}
}

func TestCoveredLength(t *testing.T) {
	rects := []Rect{R(0, 0, 10, 5), R(20, 0, 30, 5), R(5, 2, 25, 3)}
	// Line y=1 hits first two rects: lengths 10 + 10.
	if got := CoveredLength(rects, Horizontal, 1); got != 20 {
		t.Fatalf("y=1: %d, want 20", got)
	}
	// Line y=2 hits all three; union of [0,10),[20,30),[5,25) = [0,30).
	if got := CoveredLength(rects, Horizontal, 2); got != 30 {
		t.Fatalf("y=2: %d, want 30", got)
	}
	// Outside all rects.
	if got := CoveredLength(rects, Horizontal, 7); got != 0 {
		t.Fatalf("y=7: %d, want 0", got)
	}
	// Vertical line x=7 hits rects 1 and 3: [0,5) ∪ [2,3) = 5.
	if got := CoveredLength(rects, Vertical, 7); got != 5 {
		t.Fatalf("x=7: %d, want 5", got)
	}
}
