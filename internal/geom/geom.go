// Package geom provides the integer geometry substrate used throughout
// BonnRoute: points, axis-parallel rectangles, one-dimensional intervals,
// and the ℓ1/ℓ∞ distance helpers that the routing-space data structures
// and design-rule checks are built on.
//
// All coordinates are integer database units (DBU). Rectangles are
// half-open boxes [XMin, XMax) × [YMin, YMax), the convention used by
// most layout databases: a rectangle with XMin == XMax is empty, and two
// rectangles that merely share an edge do not intersect but do touch.
package geom

// Direction is an axis of Manhattan routing. Every wiring layer has a
// preferred direction; wires running orthogonally are jogs.
type Direction uint8

const (
	// Horizontal means wires run parallel to the x-axis.
	Horizontal Direction = iota
	// Vertical means wires run parallel to the y-axis.
	Vertical
)

// Perp returns the orthogonal direction.
func (d Direction) Perp() Direction {
	if d == Horizontal {
		return Vertical
	}
	return Horizontal
}

func (d Direction) String() string {
	if d == Horizontal {
		return "horizontal"
	}
	return "vertical"
}

// Point is a point in one routing plane. The JSON field names are part
// of the service wire schema (see DESIGN.md §11); don't rename them.
type Point struct {
	X int `json:"x"`
	Y int `json:"y"`
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist1 returns the ℓ1 (Manhattan) distance between p and q.
func (p Point) Dist1(q Point) int { return Abs(p.X-q.X) + Abs(p.Y-q.Y) }

// Coord returns the coordinate of p along d: X for Horizontal, Y for
// Vertical.
func (p Point) Coord(d Direction) int {
	if d == Horizontal {
		return p.X
	}
	return p.Y
}

// Point3 is a point in the three-dimensional routing space; Z indexes a
// wiring layer (0 = lowest).
type Point3 struct {
	X, Y, Z int
}

// Pt3 is shorthand for Point3{x, y, z}.
func Pt3(x, y, z int) Point3 { return Point3{x, y, z} }

// XY projects p to its routing plane.
func (p Point3) XY() Point { return Point{p.X, p.Y} }

// Dist1 returns the ℓ1 distance of the plane projections (vias are costed
// separately by the path search).
func (p Point3) Dist1(q Point3) int { return Abs(p.X-q.X) + Abs(p.Y-q.Y) }

// Rect is a half-open axis-parallel rectangle [XMin, XMax) × [YMin, YMax).
// The JSON field names are part of the service wire schema.
type Rect struct {
	XMin int `json:"xmin"`
	YMin int `json:"ymin"`
	XMax int `json:"xmax"`
	YMax int `json:"ymax"`
}

// R builds a rectangle from two corner coordinates, normalizing the order.
func R(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// Empty reports whether r encloses no area.
func (r Rect) Empty() bool { return r.XMin >= r.XMax || r.YMin >= r.YMax }

// W returns the extent of r along the x-axis.
func (r Rect) W() int { return r.XMax - r.XMin }

// H returns the extent of r along the y-axis.
func (r Rect) H() int { return r.YMax - r.YMin }

// Area returns the area of r; an empty rectangle has area 0.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return int64(r.W()) * int64(r.H())
}

// Width returns the smaller of the two extents. For design-rule purposes
// the width of a rectangle is the edge length of the largest enclosed
// square, which for a single rectangle is exactly min(W, H).
func (r Rect) Width() int { return min(r.W(), r.H()) }

// Span returns the interval covered by r along d.
func (r Rect) Span(d Direction) Interval {
	if d == Horizontal {
		return Interval{r.XMin, r.XMax}
	}
	return Interval{r.YMin, r.YMax}
}

// Center returns the center point of r, rounding down.
func (r Rect) Center() Point { return Point{(r.XMin + r.XMax) / 2, (r.YMin + r.YMax) / 2} }

// Contains reports whether p lies in the half-open box.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.XMin && p.X < r.XMax && p.Y >= r.YMin && p.Y < r.YMax
}

// ContainsClosed reports whether p lies in the closure of r, i.e. border
// points count. Track endpoints frequently sit on shape borders, so the
// routing-space queries need this variant.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.XMin && p.X <= r.XMax && p.Y >= r.YMin && p.Y <= r.YMax
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.XMin >= r.XMin && s.XMax <= r.XMax && s.YMin >= r.YMin && s.YMax <= r.YMax
}

// Intersects reports whether r and s share interior area.
func (r Rect) Intersects(s Rect) bool {
	return r.XMin < s.XMax && s.XMin < r.XMax && r.YMin < s.YMax && s.YMin < r.YMax
}

// Touches reports whether the closures of r and s intersect, i.e. the
// rectangles overlap or abut (zero spacing).
func (r Rect) Touches(s Rect) bool {
	return r.XMin <= s.XMax && s.XMin <= r.XMax && r.YMin <= s.YMax && s.YMin <= r.YMax
}

// Intersection returns the common area of r and s; it may be empty.
func (r Rect) Intersection(s Rect) Rect {
	return Rect{
		max(r.XMin, s.XMin), max(r.YMin, s.YMin),
		min(r.XMax, s.XMax), min(r.YMax, s.YMax),
	}
}

// Union returns the bounding box of r and s. Empty inputs are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		min(r.XMin, s.XMin), min(r.YMin, s.YMin),
		max(r.XMax, s.XMax), max(r.YMax, s.YMax),
	}
}

// Expanded returns r grown by d on every side (shrunk for negative d).
func (r Rect) Expanded(d int) Rect {
	return Rect{r.XMin - d, r.YMin - d, r.XMax + d, r.YMax + d}
}

// ExpandedDir returns r grown by d at both ends of direction dir only.
// BonnRoute uses this for line-end extensions in preferred direction.
func (r Rect) ExpandedDir(dir Direction, d int) Rect {
	if dir == Horizontal {
		return Rect{r.XMin - d, r.YMin, r.XMax + d, r.YMax}
	}
	return Rect{r.XMin, r.YMin - d, r.XMax, r.YMax + d}
}

// Translated returns r shifted by p.
func (r Rect) Translated(p Point) Rect {
	return Rect{r.XMin + p.X, r.YMin + p.Y, r.XMax + p.X, r.YMax + p.Y}
}

// MinkowskiPt returns the Minkowski sum of r with the single point p; this
// is just translation and exists for symmetry with MinkowskiSeg.
func (r Rect) MinkowskiPt(p Point) Rect { return r.Translated(p) }

// MinkowskiSeg returns the Minkowski sum of r with the axis-parallel
// segment from a to b. This is how a wire model rectangle is swept along a
// stick figure to produce the metal shape (paper §3.2).
func MinkowskiSeg(model Rect, a, b Point) Rect {
	return Rect{
		min(a.X, b.X) + model.XMin, min(a.Y, b.Y) + model.YMin,
		max(a.X, b.X) + model.XMax, max(a.Y, b.Y) + model.YMax,
	}
}

// RunLength returns the common run-length of r and s along d: the length
// of the intersection of their projections onto the d axis. A negative
// value means the projections are disjoint and its magnitude is the gap.
func (r Rect) RunLength(s Rect, d Direction) int {
	a, b := r.Span(d), s.Span(d)
	return min(a.Hi, b.Hi) - max(a.Lo, b.Lo)
}

// DistX returns the horizontal gap between r and s (0 if the projections
// overlap).
func (r Rect) DistX(s Rect) int {
	if d := max(r.XMin, s.XMin) - min(r.XMax, s.XMax); d > 0 {
		return d
	}
	return 0
}

// DistY returns the vertical gap between r and s (0 if the projections
// overlap).
func (r Rect) DistY(s Rect) int {
	if d := max(r.YMin, s.YMin) - min(r.YMax, s.YMax); d > 0 {
		return d
	}
	return 0
}

// Dist2Sq returns the squared Euclidean distance between r and s; 0 when
// they touch or overlap. Minimum-distance rules in the ℓ2 metric compare
// against this to stay in integer arithmetic.
func (r Rect) Dist2Sq(s Rect) int64 {
	dx, dy := int64(r.DistX(s)), int64(r.DistY(s))
	return dx*dx + dy*dy
}

// Dist1Pt returns the ℓ1 distance from p to (the closure of) r.
func (r Rect) Dist1Pt(p Point) int {
	var dx, dy int
	if p.X < r.XMin {
		dx = r.XMin - p.X
	} else if p.X > r.XMax {
		dx = p.X - r.XMax
	}
	if p.Y < r.YMin {
		dy = r.YMin - p.Y
	} else if p.Y > r.YMax {
		dy = p.Y - r.YMax
	}
	return dx + dy
}

// Interval is a half-open integer interval [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Iv is shorthand for Interval{lo, hi}.
func Iv(lo, hi int) Interval { return Interval{lo, hi} }

// Empty reports whether the interval contains no integer point.
func (i Interval) Empty() bool { return i.Lo >= i.Hi }

// Len returns Hi-Lo, or 0 for an empty interval.
func (i Interval) Len() int {
	if i.Empty() {
		return 0
	}
	return i.Hi - i.Lo
}

// Contains reports whether x lies in [Lo, Hi).
func (i Interval) Contains(x int) bool { return x >= i.Lo && x < i.Hi }

// Intersects reports whether i and j overlap.
func (i Interval) Intersects(j Interval) bool { return i.Lo < j.Hi && j.Lo < i.Hi }

// Intersection returns the overlap of i and j (possibly empty).
func (i Interval) Intersection(j Interval) Interval {
	return Interval{max(i.Lo, j.Lo), min(i.Hi, j.Hi)}
}

// Union returns the smallest interval containing both i and j; empty
// inputs are ignored.
func (i Interval) Union(j Interval) Interval {
	if i.Empty() {
		return j
	}
	if j.Empty() {
		return i
	}
	return Interval{min(i.Lo, j.Lo), max(i.Hi, j.Hi)}
}

// Abs returns |x|.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
