package drc

import (
	"math/rand"
	"testing"

	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
)

// TestTrackCutNeedsMatchesPointQueries fuzzes the via-layer sweep against
// the point-wise cutNeed on random cut populations.
func TestTrackCutNeedsMatchesPointQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s := testSpace()
		wt := std(s)
		// Scatter vias of random nets.
		for i := 0; i < 6; i++ {
			p := geom.Pt(100+rng.Intn(1700), 100+rng.Intn(1700))
			s.AddVia(0, p, wt, int32(10+i), shapegrid.RipupStandard)
		}
		m := wt.Via(0, s.Dirs[0])
		span := geom.Iv(0, 2000)
		coord := 100 + 40*rng.Intn(40)
		dense := make([]Need, span.Len())
		s.TrackCutNeeds(0, geom.Horizontal, coord, span, m.Cut, 1, false, func(lo, hi int, need Need) {
			for x := lo; x < hi; x++ {
				dense[x] = need
			}
		})
		for x := 0; x < 2000; x += 13 {
			want := s.cutNeed(0, m.Cut.Translated(geom.Pt(x, coord)), rules.ClassViaCut, 1)
			if dense[x] != want {
				t.Fatalf("trial %d x=%d coord=%d: sweep %d point %d", trial, x, coord, dense[x], want)
			}
		}
	}
}

// TestShapeWireNeedsSubsetOfTrackNeeds: the single-shape sweep never
// reports more restriction than the full sweep and covers exactly that
// shape's contribution.
func TestShapeWireNeedsSubsetOfTrackNeeds(t *testing.T) {
	s := testSpace()
	wt := std(s)
	sh := s.AddWire(0, geom.Pt(300, 300), geom.Pt(900, 300), wt, 5, shapegrid.RipupCritical)
	m := wt.Oriented(0, geom.Horizontal, geom.Horizontal)
	span := geom.Iv(0, 2000)

	full := make([]Need, span.Len())
	s.TrackNeeds(0, geom.Horizontal, 340, span, m, AnyNet, func(lo, hi int, need Need) {
		for x := lo; x < hi; x++ {
			full[x] = need
		}
	})
	single := make([]Need, span.Len())
	s.ShapeWireNeeds(0, geom.Horizontal, 340, span, m, sh, func(lo, hi int, need Need) {
		for x := lo; x < hi; x++ {
			if need > single[x] {
				single[x] = need
			}
		}
	})
	for x := range full {
		if single[x] > full[x] {
			t.Fatalf("x=%d: single-shape %d exceeds full %d", x, single[x], full[x])
		}
	}
	// With only one shape in the space, the two must be identical.
	for x := range full {
		if single[x] != full[x] {
			t.Fatalf("x=%d: single %d != full %d (only shape present)", x, single[x], full[x])
		}
	}
}

// TestRectNeedSymmetry: need is determined by geometry, not insertion
// order.
func TestRectNeedOrderIndependence(t *testing.T) {
	build := func(order []int) *Space {
		s := testSpace()
		wt := std(s)
		shapes := []struct {
			a, b geom.Point
			net  int32
			lvl  uint8
		}{
			{geom.Pt(100, 100), geom.Pt(700, 100), 1, shapegrid.RipupStandard},
			{geom.Pt(100, 180), geom.Pt(700, 180), 2, shapegrid.RipupCritical},
			{geom.Pt(100, 260), geom.Pt(700, 260), 3, shapegrid.RipupStandard},
		}
		for _, i := range order {
			sh := shapes[i]
			s.AddWire(0, sh.a, sh.b, wt, sh.net, sh.lvl)
		}
		return s
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	wt := std(a)
	m := wt.Oriented(0, geom.Horizontal, geom.Horizontal)
	for y := 80; y <= 300; y += 20 {
		for x := 50; x < 800; x += 50 {
			r := m.Shape.Translated(geom.Pt(x, y))
			if a.RectNeed(0, r, m.Class, 9) != b.RectNeed(0, r, m.Class, 9) {
				t.Fatalf("order dependence at (%d,%d)", x, y)
			}
		}
	}
}

func TestViolatingNetPairs(t *testing.T) {
	s := testSpace()
	wt := std(s)
	s.AddWire(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 1, shapegrid.RipupStandard)
	s.AddWire(0, geom.Pt(100, 112), geom.Pt(500, 112), wt, 2, shapegrid.RipupStandard)
	s.AddWire(0, geom.Pt(100, 400), geom.Pt(500, 400), wt, 3, shapegrid.RipupStandard)
	pairs := s.ViolatingNetPairs(geom.R(0, 0, 2000, 2000))
	if len(pairs) != 1 || pairs[0] != [2]int32{1, 2} {
		t.Fatalf("pairs = %v, want [[1 2]]", pairs)
	}
}

func TestGapBox(t *testing.T) {
	// Horizontal separation.
	a, b := geom.R(0, 0, 10, 20), geom.R(16, 5, 30, 25)
	box := GapBox(a, b)
	if box != geom.R(10, 5, 16, 20) {
		t.Fatalf("x gap box = %v", box)
	}
	// Order independence.
	if GapBox(b, a) != box {
		t.Fatal("GapBox not symmetric")
	}
	// Vertical separation.
	c := geom.R(2, 26, 8, 40)
	if GapBox(a, c) != geom.R(2, 20, 8, 26) {
		t.Fatalf("y gap box = %v", GapBox(a, c))
	}
	// Diagonal: empty.
	d := geom.R(20, 30, 25, 40)
	if !GapBox(a, d).Empty() {
		t.Fatalf("diagonal gap box = %v", GapBox(a, d))
	}
}

// TestAuditNotchFilledGap: a filled slot between same-net shapes is not a
// notch.
func TestAuditNotchFilledGap(t *testing.T) {
	s := testSpace()
	wt := std(s)
	s.AddWire(0, geom.Pt(100, 100), geom.Pt(300, 100), wt, 1, shapegrid.RipupStandard)
	s.AddWire(0, geom.Pt(100, 130), geom.Pt(300, 130), wt, 1, shapegrid.RipupStandard)
	res := s.Audit(geom.R(0, 0, 2000, 2000), nil)
	if res.NotchViolations == 0 {
		t.Fatal("open slot must be a notch")
	}
	// Fill the slot.
	s.AddShape(0, shapegrid.Shape{
		Rect: geom.R(80, 108, 320, 122), Net: 1,
		Class: rules.ClassStandard, Ripup: shapegrid.RipupStandard, Kind: shapegrid.KindWire,
	})
	res = s.Audit(geom.R(0, 0, 2000, 2000), nil)
	if res.NotchViolations != 0 {
		t.Fatalf("filled slot still counts %d notches", res.NotchViolations)
	}
}
