package drc

import (
	"bonnroute/internal/geom"
	"bonnroute/internal/intervalmap"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
)

// TrackNeeds computes, for a zero-length stick of wire model m placed at
// positions p along the track {ortho == trackCoord} of wiring layer z,
// the Need value as a function of p over span, emitted as maximal runs in
// ascending order (gaps between runs are Need 0). This is the bulk query
// the fast grid is rebuilt from (§3.6): instead of asking the rule checker
// per vertex, one sweep produces the legality of an entire track.
//
// dir is the axis the track runs along (the layer's preferred direction
// for wire tracks). net's own shapes never conflict.
func (s *Space) TrackNeeds(z int, dir geom.Direction, trackCoord int, span geom.Interval,
	m rules.WireModel, net int32, emit func(lo, hi int, need Need)) {
	if span.Empty() {
		return
	}
	// Metal of the stick point at position p: model translated so that
	// along-track coordinate is p and orthogonal coordinate trackCoord.
	// Extents of the model along/orthogonal to the track:
	along := m.Shape.Span(dir)
	ortho := m.Shape.Span(dir.Perp())

	margin := s.Deck.MaxSpacing(z) + geom.Abs(along.Lo) + along.Hi + 1
	var window geom.Rect
	if dir == geom.Horizontal {
		window = geom.Rect{
			XMin: span.Lo - margin, XMax: span.Hi + margin,
			YMin: trackCoord + ortho.Lo - margin, YMax: trackCoord + ortho.Hi + margin,
		}
	} else {
		window = geom.Rect{
			XMin: trackCoord + ortho.Lo - margin, XMax: trackCoord + ortho.Hi + margin,
			YMin: span.Lo - margin, YMax: span.Hi + margin,
		}
	}

	var needs intervalmap.Map
	s.Wiring[z].Query(window, func(sh shapegrid.Shape) bool {
		if sh.Net == net && sh.Net != shapegrid.NoNet {
			return true
		}
		n := needOf(sh)
		s.forbiddenAlongTrack(z, dir, trackCoord, along, ortho, m.Class, sh, func(lo, hi int) {
			lo, hi = max(lo, span.Lo), min(hi, span.Hi)
			if lo < hi {
				needs.Update(lo, hi, func(old uint64) uint64 {
					if uint64(n) > old {
						return uint64(n)
					}
					return old
				})
			}
		})
		return true
	})
	needs.Runs(span.Lo, span.Hi, func(lo, hi int, v uint64) bool {
		emit(lo, hi, Need(v))
		return true
	})
}

// forbiddenAlongTrack computes the positions p where metal
// (p+along) × (trackCoord+ortho) conflicts with shape sh, calling emitted
// for each forbidden interval. Intervals may overlap; the caller merges.
func (s *Space) forbiddenAlongTrack(z int, dir geom.Direction, trackCoord int,
	along, orthoSpan geom.Interval, class rules.ShapeClass, sh shapegrid.Shape, emitted func(lo, hi int)) {

	// Shape extents in track coordinates.
	shAlong := sh.Rect.Span(dir)
	shOrtho := sh.Rect.Span(dir.Perp())

	metalOrtho := geom.Interval{Lo: trackCoord + orthoSpan.Lo, Hi: trackCoord + orthoSpan.Hi}
	// Orthogonal gap between the (fixed) metal band and the shape.
	dOrtho := 0
	if g := max(metalOrtho.Lo, shOrtho.Lo) - min(metalOrtho.Hi, shOrtho.Hi); g > 0 {
		dOrtho = g
	}
	rlOrtho := min(metalOrtho.Hi, shOrtho.Hi) - max(metalOrtho.Lo, shOrtho.Lo)

	metalW := min(along.Len(), orthoSpan.Len())
	widthBound := min(metalW, sh.Rect.Width())

	// Candidate spacing values: evaluate the table per run-length regime.
	// For each spacing-table row we get one forbidden interval; their
	// union is the exact forbidden set because spacing is nondecreasing
	// in run-length.
	lr := &s.Deck.Layers[z]
	type regime struct {
		minRL   int // along-track run-length needed for this row
		spacing int
	}
	var regimes []regime
	baseSp := s.Deck.Spacing(z, class, sh.Class, widthBound, widthBound, rlOrtho)
	regimes = append(regimes, regime{0, baseSp})
	for _, row := range lr.Spacing {
		if row.RunLengthAtLeast > 0 && widthBound >= row.WidthAtLeast {
			sp := s.Deck.Spacing(z, class, sh.Class, widthBound, widthBound, row.RunLengthAtLeast)
			regimes = append(regimes, regime{row.RunLengthAtLeast, sp})
		}
	}

	for _, rg := range regimes {
		var maxDAlong int // largest along-track gap still conflicting
		if dOrtho == 0 {
			// Shapes side by side along the track (or ortho-overlapping):
			// run-length for the spacing lookup is the orthogonal overlap,
			// conflict iff along-track gap < spacing. Run-length regimes
			// beyond the base only matter for the ortho axis, which is
			// fixed; regime rows model along-track run-length and need
			// ortho separation, so only the base row applies here.
			if rg.minRL > 0 {
				if rlOrtho < rg.minRL {
					continue
				}
				// Ortho run-length qualifies: same as base with higher sp.
			}
			maxDAlong = rg.spacing - 1
			// Forbidden: along-track gap ≤ maxDAlong. Inclusive position
			// bounds, emitted half-open.
			lo := shAlong.Lo - along.Hi - maxDAlong
			hi := shAlong.Hi - along.Lo + maxDAlong + 1
			if lo < hi {
				emitted(lo, hi)
			}
			continue
		}
		// Ortho-separated: conflict iff dAlong² + dOrtho² < sp² and, for
		// regime rows, the along-track run-length ≥ minRL.
		sp2 := int64(rg.spacing) * int64(rg.spacing)
		dO2 := int64(dOrtho) * int64(dOrtho)
		if dO2 >= sp2 {
			continue // ortho distance alone satisfies this regime
		}
		maxDAlong = isqrt(sp2 - dO2 - 1) // largest d with d² < sp² - dOrtho²
		lo := shAlong.Lo - along.Hi - maxDAlong
		hi := shAlong.Hi - along.Lo + maxDAlong + 1
		if rg.minRL > 0 {
			// Along-track run-length of metal [p+along] vs shape must be
			// ≥ minRL: p+along.Hi ≥ shAlong.Lo+minRL etc. Intersect.
			rlLo := shAlong.Lo + rg.minRL - along.Hi
			rlHi := shAlong.Hi - rg.minRL - along.Lo
			lo, hi = max(lo, rlLo), min(hi, rlHi+1)
		}
		if lo < hi {
			emitted(lo, hi)
		}
	}
}

// isqrt returns floor(sqrt(x)) for x ≥ 0.
func isqrt(x int64) int {
	if x < 0 {
		return 0
	}
	r := int64(0)
	bit := int64(1) << 62
	for bit > x {
		bit >>= 2
	}
	for bit != 0 {
		if x >= r+bit {
			x -= r + bit
			r = r>>1 + bit
		} else {
			r >>= 1
		}
		bit >>= 2
	}
	return int(r)
}

// TrackCutNeeds computes, for a via cut of model rect cut (relative to
// the via position) placed along the track {ortho == trackCoord} in via
// layer v, the Need as a function of the along-track position, emitted as
// runs. proj selects whether the candidate is an actual cut (false) or an
// inter-layer projection from below (true); projections only conflict
// with cuts under the inter-layer rule.
func (s *Space) TrackCutNeeds(v int, dir geom.Direction, trackCoord int, span geom.Interval,
	cut geom.Rect, net int32, proj bool, emit func(lo, hi int, need Need)) {
	if span.Empty() {
		return
	}
	vr := s.Deck.ViaLayers[v]
	along := cut.Span(dir)
	ortho := cut.Span(dir.Perp())
	margin := max(vr.CutSpacing, vr.InterLayerSpacing) + geom.Abs(along.Lo) + along.Hi + 1
	var window geom.Rect
	if dir == geom.Horizontal {
		window = geom.Rect{
			XMin: span.Lo - margin, XMax: span.Hi + margin,
			YMin: trackCoord + ortho.Lo - margin, YMax: trackCoord + ortho.Hi + margin,
		}
	} else {
		window = geom.Rect{
			XMin: trackCoord + ortho.Lo - margin, XMax: trackCoord + ortho.Hi + margin,
			YMin: span.Lo - margin, YMax: span.Hi + margin,
		}
	}
	var needs intervalmap.Map
	s.Cuts[v].Query(window, func(sh shapegrid.Shape) bool {
		if sh.Net == net && sh.Net != shapegrid.NoNet {
			return true
		}
		// Rule selection mirrors cutNeed.
		shIsCut := sh.Class == rules.ClassViaCut
		var sp int
		switch {
		case !proj && shIsCut:
			sp = vr.CutSpacing
		case proj && !shIsCut:
			return true // projection vs projection: checked in layer below
		default:
			sp = vr.InterLayerSpacing
		}
		if sp <= 0 {
			return true
		}
		n := needOf(sh)
		shAlong := sh.Rect.Span(dir)
		shOrtho := sh.Rect.Span(dir.Perp())
		metalOrtho := geom.Interval{Lo: trackCoord + ortho.Lo, Hi: trackCoord + ortho.Hi}
		dOrtho := 0
		if g := max(metalOrtho.Lo, shOrtho.Lo) - min(metalOrtho.Hi, shOrtho.Hi); g > 0 {
			dOrtho = g
		}
		sp2 := int64(sp) * int64(sp)
		dO2 := int64(dOrtho) * int64(dOrtho)
		if dO2 >= sp2 {
			return true
		}
		maxD := isqrt(sp2 - dO2 - 1)
		lo := max(shAlong.Lo-along.Hi-maxD, span.Lo)
		hi := min(shAlong.Hi-along.Lo+maxD+1, span.Hi)
		if lo < hi {
			needs.Update(lo, hi, func(old uint64) uint64 {
				if uint64(n) > old {
					return uint64(n)
				}
				return old
			})
		}
		return true
	})
	needs.Runs(span.Lo, span.Hi, func(lo, hi int, v uint64) bool {
		emit(lo, hi, Need(v))
		return true
	})
}

// TrackViaNeeds sweeps via legality along a track: for each position p on
// the track of wiring layer z (between layers v=z-1 below and v=z above,
// whichever exists and is selected by up), the Need of placing a via of
// wt there. Unlike wires, via legality spans three planes, so the sweep
// simply evaluates candidate positions; callers pass the discrete
// crossing coordinates rather than a continuous span.
func (s *Space) TrackViaNeeds(v int, dir geom.Direction, trackCoord int, positions []int,
	wt *rules.WireType, net int32) []Need {
	out := make([]Need, len(positions))
	for i, p := range positions {
		var pt geom.Point
		if dir == geom.Horizontal {
			pt = geom.Pt(p, trackCoord)
		} else {
			pt = geom.Pt(trackCoord, p)
		}
		out[i] = s.ViaNeed(v, pt, wt, net)
	}
	return out
}

// ShapeWireNeeds computes the Need contribution of the single shape sh to
// placements of wire model m along the track {ortho == trackCoord} of
// layer z within span, emitted as forbidden runs. It is the incremental
// counterpart of TrackNeeds used by fast-grid updates on shape insertion
// (adding a shape can only raise Needs, so the caller maxes the runs into
// its fields).
func (s *Space) ShapeWireNeeds(z int, dir geom.Direction, trackCoord int, span geom.Interval,
	m rules.WireModel, sh shapegrid.Shape, emit func(lo, hi int, need Need)) {
	if span.Empty() {
		return
	}
	along := m.Shape.Span(dir)
	ortho := m.Shape.Span(dir.Perp())
	n := needOf(sh)
	s.forbiddenAlongTrack(z, dir, trackCoord, along, ortho, m.Class, sh, func(lo, hi int) {
		lo, hi = max(lo, span.Lo), min(hi, span.Hi)
		if lo < hi {
			emit(lo, hi, n)
		}
	})
}

// ShapeCutNeeds is the incremental counterpart of TrackCutNeeds for a
// single cut-layer shape.
func (s *Space) ShapeCutNeeds(v int, dir geom.Direction, trackCoord int, span geom.Interval,
	cut geom.Rect, sh shapegrid.Shape, proj bool, emit func(lo, hi int, need Need)) {
	if span.Empty() {
		return
	}
	vr := s.Deck.ViaLayers[v]
	shIsCut := sh.Class == rules.ClassViaCut
	var sp int
	switch {
	case !proj && shIsCut:
		sp = vr.CutSpacing
	case proj && !shIsCut:
		return
	default:
		sp = vr.InterLayerSpacing
	}
	if sp <= 0 {
		return
	}
	along := cut.Span(dir)
	ortho := cut.Span(dir.Perp())
	shAlong := sh.Rect.Span(dir)
	shOrtho := sh.Rect.Span(dir.Perp())
	metalOrtho := geom.Interval{Lo: trackCoord + ortho.Lo, Hi: trackCoord + ortho.Hi}
	dOrtho := 0
	if g := max(metalOrtho.Lo, shOrtho.Lo) - min(metalOrtho.Hi, shOrtho.Hi); g > 0 {
		dOrtho = g
	}
	sp2 := int64(sp) * int64(sp)
	dO2 := int64(dOrtho) * int64(dOrtho)
	if dO2 >= sp2 {
		return
	}
	maxD := isqrt(sp2 - dO2 - 1)
	lo := max(shAlong.Lo-along.Hi-maxD, span.Lo)
	hi := min(shAlong.Hi-along.Lo+maxD+1, span.Hi)
	if lo < hi {
		emit(lo, hi, needOf(sh))
	}
}
