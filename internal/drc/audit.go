package drc

import (
	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
)

// AuditResult collects the error classes counted in the paper's Table I:
// design-rule violations (diff-net spacing, same-net minimum area and
// notch rules) plus opens (connected components minus nets).
type AuditResult struct {
	DiffNetViolations int
	MinAreaViolations int
	NotchViolations   int
	ShortEdgeShapes   int // tiny metal fragments (short-edge rule proxy)
	Opens             int
}

// Errors returns the total error count (the "Errors" column of Table I).
func (a AuditResult) Errors() int {
	return a.DiffNetViolations + a.MinAreaViolations + a.NotchViolations + a.ShortEdgeShapes + a.Opens
}

// Audit checks the entire routing space for rule violations, and
// connectivity of the given nets. netPins[i] lists, for net i, a
// representative rectangle per pin on its layer; a net is open if its
// shapes plus pins form more than one connected component.
func (s *Space) Audit(area geom.Rect, netPins map[int32][]LayerRect) AuditResult {
	var res AuditResult
	perNetShapes := map[int32][]indexedShape{}

	for z := range s.Wiring {
		margin := s.Deck.MaxSpacing(z)
		shapes := s.Wiring[z].QueryAll(area.Expanded(margin))
		// Diff-net: neighborhood query per shape; each unordered pair is
		// counted once (only when the neighbor sorts after the anchor).
		// Violations between two pieces of fixed pre-routing geometry
		// (pins, blockages) are the placement's, not the router's, and
		// are excluded as the paper's DRC flow does.
		for _, a := range shapes {
			if a.Net != shapegrid.NoNet {
				perNetShapes[a.Net] = append(perNetShapes[a.Net], indexedShape{z, a})
			}
			a := a
			s.Wiring[z].Query(a.Rect.Expanded(margin), func(b shapegrid.Shape) bool {
				if !shapeBefore(a, b) {
					return true
				}
				if a.Net == b.Net && a.Net != shapegrid.NoNet {
					return true
				}
				routedA := a.Kind == shapegrid.KindWire || a.Kind == shapegrid.KindVia
				routedB := b.Kind == shapegrid.KindWire || b.Kind == shapegrid.KindVia
				if !routedA && !routedB {
					return true
				}
				if s.pairViolates(z, a, b) {
					res.DiffNetViolations++
				}
				return true
			})
		}
	}

	// Same-net rules and opens, per net.
	for net, shapes := range perNetShapes {
		comps := newDSU(len(shapes))
		for i := range shapes {
			for j := i + 1; j < len(shapes); j++ {
				a, b := shapes[i], shapes[j]
				if a.z == b.z && a.s.Rect.Touches(b.s.Rect) {
					comps.union(i, j)
				}
			}
			// Notch: same-layer same-net shapes separated by less than the
			// notch spacing with positive run-length — but only when the
			// gap slot is not itself filled with same-net metal (filled
			// gaps are solid polygon, not a notch).
			for j := i + 1; j < len(shapes); j++ {
				a, b := shapes[i], shapes[j]
				if a.z != b.z {
					continue
				}
				gap2 := a.s.Rect.Dist2Sq(b.s.Rect)
				ns := int64(s.Deck.Layers[a.z].NotchSpacing)
				if gap2 > 0 && gap2 < ns*ns && positiveRunLength(a.s.Rect, b.s.Rect) {
					if !s.gapFilled(a, b, shapes) {
						res.NotchViolations++
					}
				}
			}
		}
		// Vias join layers: any cut of this net unions the shapes its
		// rectangle touches on the two adjacent wiring layers.
		for v := range s.Cuts {
			for _, cut := range s.Cuts[v].QueryAll(area) {
				if cut.Net != net || cut.Class != rules.ClassViaCut {
					continue
				}
				var first = -1
				for i := range shapes {
					if (shapes[i].z == v || shapes[i].z == v+1) && shapes[i].s.Rect.Touches(cut.Rect) {
						if first < 0 {
							first = i
						} else {
							comps.union(first, i)
						}
					}
				}
			}
		}
		// Minimum area per connected metal polygon.
		groups := map[int][]geom.Rect{}
		groupLayer := map[int]int{}
		for i := range shapes {
			r := comps.find(i)
			groups[r] = append(groups[r], shapes[i].s.Rect)
			groupLayer[r] = shapes[i].z // polygons per layer: see below
		}
		for root, rects := range groups {
			// A cross-layer component has vias, whose pads individually
			// satisfy min-area by construction; check only single-layer
			// groups strictly (conservative proxy for polygon area).
			singleLayer := true
			for i := range shapes {
				if comps.find(i) == root && shapes[i].z != groupLayer[root] {
					singleLayer = false
					break
				}
			}
			if !singleLayer {
				continue
			}
			if geom.UnionArea(rects) < s.Deck.Layers[groupLayer[root]].MinArea {
				res.MinAreaViolations++
			}
		}
		// Short-edge proxy: fragments tiny in both dimensions that do not
		// merge into larger metal.
		for i := range shapes {
			lr := &s.Deck.Layers[shapes[i].z]
			r := shapes[i].s.Rect
			if r.W() < lr.MinEdge && r.H() < lr.MinEdge && len(groups[comps.find(i)]) == 1 {
				res.ShortEdgeShapes++
			}
		}
		// Opens: components containing pins or wiring must all connect.
		// Nets missing from netPins (or with an empty pin list) are
		// skipped — with no pin set there is no connectivity obligation
		// to count against.
		pins := netPins[net]
		if len(pins) > 0 {
			res.Opens += s.openCount(shapes, comps, pins)
		}
	}

	// Nets with pins but zero committed shapes never enter perNetShapes,
	// yet their disconnected pins are still opens: a net with k mutually
	// untouching pins and no wiring is k-1 opens (and a single-pin net
	// with no wiring is none).
	for net, pins := range netPins {
		if len(pins) == 0 {
			continue
		}
		if _, ok := perNetShapes[net]; ok {
			continue
		}
		res.Opens += s.openCount(nil, newDSU(0), pins)
	}
	return res
}

// LayerRect is a rectangle on a wiring layer.
type LayerRect struct {
	Rect  geom.Rect
	Layer int
}

// openCount returns (connected components containing a pin) - 1, where a
// pin joins the component of any net shape touching it; pins with no
// touching shape each count as their own component.
func (s *Space) openCount(shapes []indexedShape, comps *dsu, pins []LayerRect) int {
	// Extend the DSU with one element per pin.
	n := len(shapes)
	ext := newDSU(n + len(pins))
	for i := 0; i < n; i++ {
		ext.parent[i] = comps.find(i)
	}
	for pi, p := range pins {
		for i := range shapes {
			if shapes[i].z == p.Layer && shapes[i].s.Rect.Touches(p.Rect) {
				ext.union(n+pi, i)
			}
		}
		// Pins of the same net touching each other are connected in the
		// placement (same cell metal); approximate by rect touch.
		for qi := 0; qi < pi; qi++ {
			if pins[qi].Layer == p.Layer && pins[qi].Rect.Touches(p.Rect) {
				ext.union(n+pi, n+qi)
			}
		}
	}
	roots := map[int]bool{}
	for pi := range pins {
		roots[ext.find(n+pi)] = true
	}
	if len(roots) == 0 {
		return 0
	}
	return len(roots) - 1
}

func (s *Space) pairViolates(z int, a, b shapegrid.Shape) bool {
	if a.Rect.Intersects(b.Rect) {
		return true
	}
	var rl int
	switch {
	case a.Rect.DistY(b.Rect) > 0 && a.Rect.DistX(b.Rect) == 0:
		rl = a.Rect.RunLength(b.Rect, geom.Horizontal)
	case a.Rect.DistX(b.Rect) > 0 && a.Rect.DistY(b.Rect) == 0:
		rl = a.Rect.RunLength(b.Rect, geom.Vertical)
	}
	sp := s.Deck.Spacing(z, a.Class, b.Class, a.Rect.Width(), b.Rect.Width(), rl)
	return a.Rect.Dist2Sq(b.Rect) < int64(sp)*int64(sp)
}

// shapeBefore imposes a strict total order on shapes so each unordered
// pair is visited exactly once.
func shapeBefore(a, b shapegrid.Shape) bool {
	if a.Rect != b.Rect {
		if a.Rect.XMin != b.Rect.XMin {
			return a.Rect.XMin < b.Rect.XMin
		}
		if a.Rect.YMin != b.Rect.YMin {
			return a.Rect.YMin < b.Rect.YMin
		}
		if a.Rect.XMax != b.Rect.XMax {
			return a.Rect.XMax < b.Rect.XMax
		}
		return a.Rect.YMax < b.Rect.YMax
	}
	if a.Net != b.Net {
		return a.Net < b.Net
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Ripup != b.Ripup {
		return a.Ripup < b.Ripup
	}
	return a.Kind < b.Kind
}

// GapBox returns the open slot between two axis-separated rectangles
// over their projection overlap (empty when they overlap diagonally).
func GapBox(a, b geom.Rect) geom.Rect {
	switch {
	case a.DistX(b) > 0 && a.RunLength(b, geom.Vertical) > 0:
		return geom.Rect{
			XMin: min(a.XMax, b.XMax), XMax: max(a.XMin, b.XMin),
			YMin: max(a.YMin, b.YMin), YMax: min(a.YMax, b.YMax),
		}
	case a.DistY(b) > 0 && a.RunLength(b, geom.Horizontal) > 0:
		return geom.Rect{
			XMin: max(a.XMin, b.XMin), XMax: min(a.XMax, b.XMax),
			YMin: min(a.YMax, b.YMax), YMax: max(a.YMin, b.YMin),
		}
	}
	return geom.Rect{}
}

// gapFilled reports whether the slot between a and b is fully covered by
// other same-net shapes on the same layer.
func (s *Space) gapFilled(a, b indexedShape, shapes []indexedShape) bool {
	box := GapBox(a.s.Rect, b.s.Rect)
	if box.Empty() {
		return true // diagonal separation: no parallel-edge slot
	}
	var cover []geom.Rect
	for _, o := range shapes {
		if o.z == a.z {
			cover = append(cover, o.s.Rect)
		}
	}
	return len(geom.SubtractRects(box, cover)) == 0
}

func positiveRunLength(a, b geom.Rect) bool {
	return a.RunLength(b, geom.Horizontal) > 0 || a.RunLength(b, geom.Vertical) > 0
}

type indexedShape struct {
	z int
	s shapegrid.Shape
}

// dsu is a plain union-find.
type dsu struct {
	parent []int
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d.parent[ra] = rb
	}
}

// PairViolatesForTest exposes the pairwise check to integration tests.
func (s *Space) PairViolatesForTest(z int, a, b shapegrid.Shape) bool {
	return s.pairViolates(z, a, b)
}

// ViolatingNetPairs returns the distinct net pairs involved in diff-net
// violations where at least one shape is routed wiring (the input to the
// DRC cleanup pass). Fixed-geometry partners are reported as NoNet.
func (s *Space) ViolatingNetPairs(area geom.Rect) [][2]int32 {
	seen := map[[2]int32]bool{}
	var out [][2]int32
	for z := range s.Wiring {
		margin := s.Deck.MaxSpacing(z)
		for _, a := range s.Wiring[z].QueryAll(area.Expanded(margin)) {
			a := a
			s.Wiring[z].Query(a.Rect.Expanded(margin), func(b shapegrid.Shape) bool {
				if !shapeBefore(a, b) {
					return true
				}
				if a.Net == b.Net && a.Net != shapegrid.NoNet {
					return true
				}
				routedA := a.Kind == shapegrid.KindWire || a.Kind == shapegrid.KindVia
				routedB := b.Kind == shapegrid.KindWire || b.Kind == shapegrid.KindVia
				if !routedA && !routedB {
					return true
				}
				if !s.pairViolates(z, a, b) {
					return true
				}
				key := [2]int32{a.Net, b.Net}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
				return true
			})
		}
	}
	return out
}

// DebugNotches prints up to limit same-net notch pairs (test helper).
func (s *Space) DebugNotches(area geom.Rect, limit int) {
	printed := 0
	perNet := map[int32][]indexedShape{}
	for z := range s.Wiring {
		for _, sh := range s.Wiring[z].QueryAll(area.Expanded(100)) {
			if sh.Net != shapegrid.NoNet {
				perNet[sh.Net] = append(perNet[sh.Net], indexedShape{z, sh})
			}
		}
	}
	for net, shapes := range perNet {
		for i := range shapes {
			for j := i + 1; j < len(shapes); j++ {
				a, b := shapes[i], shapes[j]
				if a.z != b.z {
					continue
				}
				gap2 := a.s.Rect.Dist2Sq(b.s.Rect)
				ns := int64(s.Deck.Layers[a.z].NotchSpacing)
				if gap2 > 0 && gap2 < ns*ns && positiveRunLength(a.s.Rect, b.s.Rect) {
					if printed < limit {
						println("notch net", net, "z", a.z,
							"A", a.s.Rect.XMin, a.s.Rect.YMin, a.s.Rect.XMax, a.s.Rect.YMax, "kind", int(a.s.Kind),
							"B", b.s.Rect.XMin, b.s.Rect.YMin, b.s.Rect.XMax, b.s.Rect.YMax, "kind", int(b.s.Kind))
						printed++
					}
				}
			}
		}
	}
}
