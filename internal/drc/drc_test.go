package drc

import (
	"testing"

	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
)

func testSpace() *Space {
	deck := rules.DefaultDeck(rules.DeckParams{NumLayers: 4, Pitch: 40})
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical, geom.Horizontal, geom.Vertical}
	return NewSpace(deck, geom.R(0, 0, 2000, 2000), dirs)
}

func std(s *Space) *rules.WireType { return s.Deck.StandardWireType() }

func TestEmptySpaceIsFree(t *testing.T) {
	s := testSpace()
	wt := std(s)
	if n := s.SegmentNeed(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 1); n != 0 {
		t.Fatalf("need = %d on empty space", n)
	}
	if n := s.ViaNeed(0, geom.Pt(200, 200), wt, 1); n != 0 {
		t.Fatalf("via need = %d on empty space", n)
	}
}

func TestBlockageBlocksForever(t *testing.T) {
	s := testSpace()
	wt := std(s)
	s.AddObstacle(0, geom.R(300, 80, 400, 140))
	// Segment through the blockage.
	if n := s.SegmentNeed(0, geom.Pt(100, 100), geom.Pt(600, 100), wt, 1); n != NeedNever {
		t.Fatalf("need = %d, want NeedNever", n)
	}
	// Segment one full pitch away (edge-to-edge distance ≥ spacing).
	if n := s.SegmentNeed(0, geom.Pt(100, 200), geom.Pt(600, 200), wt, 1); n != 0 {
		t.Fatalf("distant segment need = %d, want 0", n)
	}
}

func TestOwnNetNeverConflicts(t *testing.T) {
	s := testSpace()
	wt := std(s)
	s.AddWire(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 7, shapegrid.RipupStandard)
	if n := s.SegmentNeed(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 7); n != 0 {
		t.Fatalf("own wire conflicts: need = %d", n)
	}
	// A different net overlapping the same stick is blocked but rippable.
	if n := s.SegmentNeed(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 8); n != shapegrid.RipupStandard+1 {
		t.Fatalf("other net need = %d, want %d", n, shapegrid.RipupStandard+1)
	}
}

func TestSpacingEnforcedBetweenTracks(t *testing.T) {
	s := testSpace()
	wt := std(s)
	// Wire at y=100 on layer 0 (horizontal). Pitch 40, width 20, space 20.
	s.AddWire(0, geom.Pt(100, 100), geom.Pt(900, 100), wt, 1, shapegrid.RipupStandard)
	// A parallel wire one pitch away must be legal.
	if n := s.SegmentNeed(0, geom.Pt(100, 140), geom.Pt(900, 140), wt, 2); n != 0 {
		t.Fatalf("pitch-separated wire need = %d", n)
	}
	// A parallel wire half a pitch away must conflict.
	if n := s.SegmentNeed(0, geom.Pt(100, 120), geom.Pt(900, 120), wt, 2); n == 0 {
		t.Fatal("half-pitch wire must conflict")
	}
}

func TestLongRunSpacing(t *testing.T) {
	s := testSpace()
	lr := s.Deck.Layers[0]
	wide := s.Deck.WideWireType(2)
	// Wide-wide: base 30→45 (class mult), RL≥pitch: 45, RL≥20·pitch: 53.
	// Two wide wires with an edge gap of 50: legal for a short parallel
	// run, illegal for a very long one.
	gap := 50
	y2 := 100 + 2*lr.MinWidth + gap // edge-to-edge gap between 2x wires
	long := 25 * lr.Pitch
	s.AddWire(0, geom.Pt(0, 100), geom.Pt(long, 100), wide, 1, shapegrid.RipupStandard)
	if n := s.SegmentNeed(0, geom.Pt(0, y2), geom.Pt(long, y2), wide, 2); n == 0 {
		t.Fatal("very long wide parallel run at gap 50 must conflict")
	}
	if n := s.SegmentNeed(0, geom.Pt(0, y2), geom.Pt(2*lr.Pitch, y2), wide, 2); n != 0 {
		t.Fatalf("short wide parallel stub need = %d", n)
	}
	// Minimum-width wires at one pitch stay legal however long they run.
	s2 := testSpace()
	wt := std(s2)
	s2.AddWire(0, geom.Pt(0, 100), geom.Pt(long, 100), wt, 1, shapegrid.RipupStandard)
	if n := s2.SegmentNeed(0, geom.Pt(0, 100+lr.Pitch), geom.Pt(long, 100+lr.Pitch), wt, 2); n != 0 {
		t.Fatalf("min-width parallel wires at pitch: need = %d", n)
	}
}

func TestViaNeedChecksAllPlanes(t *testing.T) {
	s := testSpace()
	wt := std(s)
	p := geom.Pt(400, 400)
	if n := s.ViaNeed(0, p, wt, 1); n != 0 {
		t.Fatalf("empty via need = %d", n)
	}
	s.AddVia(0, p, wt, 1, shapegrid.RipupStandard)
	// Same net re-check: free.
	if n := s.ViaNeed(0, p, wt, 1); n != 0 {
		t.Fatalf("own via need = %d", n)
	}
	// Another net at the same spot conflicts.
	if n := s.ViaNeed(0, p, wt, 2); n == 0 {
		t.Fatal("overlapping via of other net must conflict")
	}
	// Another net's via a cut-spacing away in x still conflicts via cut
	// rule; far away is free.
	if n := s.ViaNeed(0, geom.Pt(400+3*s.Deck.Layers[0].Pitch, 400), wt, 2); n != 0 {
		t.Fatalf("distant via need = %d", n)
	}
}

func TestInterLayerViaRule(t *testing.T) {
	s := testSpace()
	wt := std(s)
	p := geom.Pt(400, 400)
	s.AddVia(0, p, wt, 1, shapegrid.RipupStandard) // via layers 0-1, projects into via layer 1
	// A stacked via of another net directly above (via layer 1) at the
	// same x/y: pads on layer 1 overlap — and even at a spot where pads
	// would clear, the inter-layer rule fires. Test the projection
	// directly: cutNeed in via layer 1 near the projected cut.
	m := wt.Via(1, s.Dirs[1])
	cutRect := m.Cut.Translated(geom.Pt(p.X+s.Deck.ViaLayers[1].InterLayerSpacing/2, p.Y))
	if n := s.cutNeed(1, cutRect, rules.ClassViaCut, 2); n == 0 {
		t.Fatal("inter-layer via rule must fire near projected cut")
	}
	far := m.Cut.Translated(geom.Pt(p.X+200, p.Y))
	if n := s.cutNeed(1, far, rules.ClassViaCut, 2); n != 0 {
		t.Fatalf("distant stacked cut need = %d", n)
	}
}

func TestAddRemoveWireRoundTrip(t *testing.T) {
	s := testSpace()
	wt := std(s)
	a, b := geom.Pt(100, 100), geom.Pt(500, 100)
	s.AddWire(0, a, b, wt, 1, shapegrid.RipupStandard)
	if !s.RemoveWire(0, a, b, wt, 1, shapegrid.RipupStandard) {
		t.Fatal("RemoveWire failed")
	}
	if n := s.SegmentNeed(0, a, b, wt, 2); n != 0 {
		t.Fatalf("need after removal = %d", n)
	}
}

func TestAddRemoveViaRoundTrip(t *testing.T) {
	s := testSpace()
	wt := std(s)
	p := geom.Pt(400, 400)
	s.AddVia(0, p, wt, 1, shapegrid.RipupStandard)
	if !s.RemoveVia(0, p, wt, 1, shapegrid.RipupStandard) {
		t.Fatal("RemoveVia failed")
	}
	if n := s.ViaNeed(0, p, wt, 2); n != 0 {
		t.Fatalf("via need after removal = %d", n)
	}
}

func TestBlockerNets(t *testing.T) {
	s := testSpace()
	wt := std(s)
	s.AddWire(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 3, shapegrid.RipupStandard)
	s.AddWire(0, geom.Pt(100, 120), geom.Pt(500, 120), wt, 4, shapegrid.RipupCritical)
	rect := wt.Oriented(0, geom.Horizontal, geom.Horizontal).Metal(geom.Pt(100, 110), geom.Pt(500, 110))
	// At standard effort only net 3 is removable.
	got := s.BlockerNets(0, rect, rules.ClassStandard, 9, shapegrid.RipupStandard)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("blockers = %v, want [3]", got)
	}
	// At critical effort both.
	got = s.BlockerNets(0, rect, rules.ClassStandard, 9, shapegrid.RipupCritical)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("blockers = %v, want [3 4]", got)
	}
}

func TestRipupLevelsInNeed(t *testing.T) {
	s := testSpace()
	wt := std(s)
	s.AddWire(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 3, shapegrid.RipupCritical)
	n := s.SegmentNeed(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 9)
	if n != shapegrid.RipupCritical+1 {
		t.Fatalf("need = %d, want %d", n, shapegrid.RipupCritical+1)
	}
	// Pins are never rippable.
	s2 := testSpace()
	s2.AddPin(0, 3, geom.R(100, 90, 120, 150))
	if n := s2.SegmentNeed(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 9); n != NeedNever {
		t.Fatalf("pin conflict need = %d, want NeedNever", n)
	}
}

func TestTrackNeedsMatchesPointQueries(t *testing.T) {
	s := testSpace()
	wt := std(s)
	// Scatter blocking geometry around track y=300 on layer 0.
	s.AddObstacle(0, geom.R(200, 280, 260, 320))
	s.AddWire(0, geom.Pt(500, 300), geom.Pt(700, 300), wt, 5, shapegrid.RipupStandard)
	s.AddWire(0, geom.Pt(900, 340), geom.Pt(1200, 340), wt, 6, shapegrid.RipupCritical)
	s.AddPin(0, 7, geom.R(1500, 290, 1520, 350))

	m := wt.Oriented(0, geom.Horizontal, geom.Horizontal)
	span := geom.Iv(0, 2000)
	// Collect sweep result into a dense array.
	dense := make([]Need, span.Len())
	s.TrackNeeds(0, geom.Horizontal, 300, span, m, 1, func(lo, hi int, need Need) {
		for x := lo; x < hi; x++ {
			dense[x] = need
		}
	})
	// Compare against per-point RectNeed at a sample of positions.
	for x := 0; x < 2000; x += 7 {
		rect := m.Shape.Translated(geom.Pt(x, 300))
		want := s.RectNeed(0, rect, m.Class, 1)
		if dense[x] != want {
			t.Fatalf("x=%d: sweep %d, point query %d", x, dense[x], want)
		}
	}
}

func TestTrackNeedsVerticalLayer(t *testing.T) {
	s := testSpace()
	wt := std(s)
	s.AddObstacle(1, geom.R(280, 200, 320, 260))
	m := wt.Oriented(1, geom.Vertical, geom.Vertical)
	span := geom.Iv(0, 1000)
	dense := make([]Need, span.Len())
	s.TrackNeeds(1, geom.Vertical, 300, span, m, 1, func(lo, hi int, need Need) {
		for y := lo; y < hi; y++ {
			dense[y] = need
		}
	})
	for y := 0; y < 1000; y += 11 {
		rect := m.Shape.Translated(geom.Pt(300, y))
		want := s.RectNeed(1, rect, m.Class, 1)
		if dense[y] != want {
			t.Fatalf("y=%d: sweep %d, point query %d", y, dense[y], want)
		}
	}
}

func TestTrackViaNeeds(t *testing.T) {
	s := testSpace()
	wt := std(s)
	s.AddVia(0, geom.Pt(400, 300), wt, 9, shapegrid.RipupStandard)
	needs := s.TrackViaNeeds(0, geom.Horizontal, 300, []int{100, 400, 800}, wt, 1)
	if needs[0] != 0 || needs[2] != 0 {
		t.Fatalf("distant via positions must be free: %v", needs)
	}
	if needs[1] == 0 {
		t.Fatal("overlapping via position must conflict")
	}
}

func TestAuditCleanRouting(t *testing.T) {
	s := testSpace()
	wt := std(s)
	// Net 1: pin at (100,100), wire to (500,100), via up, wire on layer 1.
	pin1 := geom.R(90, 90, 110, 110)
	s.AddPin(0, 1, pin1)
	s.AddWire(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 1, shapegrid.RipupStandard)
	s.AddVia(0, geom.Pt(500, 100), wt, 1, shapegrid.RipupStandard)
	s.AddWire(1, geom.Pt(500, 100), geom.Pt(500, 500), wt, 1, shapegrid.RipupStandard)
	pin2 := geom.R(490, 490, 510, 510)
	// (second pin on layer 1 touching the wire end)
	s.AddPin(1, 1, pin2)

	res := s.Audit(geom.R(0, 0, 2000, 2000), map[int32][]LayerRect{
		1: {{Rect: pin1, Layer: 0}, {Rect: pin2, Layer: 1}},
	})
	if res.DiffNetViolations != 0 {
		t.Errorf("diff-net violations = %d", res.DiffNetViolations)
	}
	if res.Opens != 0 {
		t.Errorf("opens = %d", res.Opens)
	}
	if res.Errors() != 0 {
		t.Errorf("errors = %+v", res)
	}
}

func TestAuditDetectsDiffNetViolation(t *testing.T) {
	s := testSpace()
	wt := std(s)
	s.AddWire(0, geom.Pt(100, 100), geom.Pt(500, 100), wt, 1, shapegrid.RipupStandard)
	s.AddWire(0, geom.Pt(100, 110), geom.Pt(500, 110), wt, 2, shapegrid.RipupStandard) // way too close
	res := s.Audit(geom.R(0, 0, 2000, 2000), nil)
	if res.DiffNetViolations == 0 {
		t.Fatal("expected a diff-net violation")
	}
}

func TestAuditDetectsOpen(t *testing.T) {
	s := testSpace()
	wt := std(s)
	pinA := geom.R(90, 90, 110, 110)
	pinB := geom.R(990, 90, 1010, 110)
	s.AddPin(0, 1, pinA)
	s.AddPin(0, 1, pinB)
	// Wire touches only pin A.
	s.AddWire(0, geom.Pt(100, 100), geom.Pt(400, 100), wt, 1, shapegrid.RipupStandard)
	res := s.Audit(geom.R(0, 0, 2000, 2000), map[int32][]LayerRect{
		1: {{Rect: pinA, Layer: 0}, {Rect: pinB, Layer: 0}},
	})
	if res.Opens != 1 {
		t.Fatalf("opens = %d, want 1", res.Opens)
	}
}

func TestAuditDetectsMinArea(t *testing.T) {
	s := testSpace()
	// A lone tiny same-net fragment: area below MinArea.
	s.AddShape(0, shapegrid.Shape{
		Rect:  geom.R(100, 100, 110, 110),
		Net:   1,
		Class: rules.ClassStandard,
		Ripup: shapegrid.RipupStandard,
		Kind:  shapegrid.KindWire,
	})
	res := s.Audit(geom.R(0, 0, 2000, 2000), nil)
	if res.MinAreaViolations == 0 {
		t.Fatal("expected min-area violation")
	}
	if res.ShortEdgeShapes == 0 {
		t.Fatal("expected short-edge fragment")
	}
}

func TestAuditDetectsNotch(t *testing.T) {
	s := testSpace()
	wt := std(s)
	// Two same-net parallel wires with a 10-DBU metal gap: a notch
	// (NotchSpacing is 20). Diff-net rules do not fire on the same net.
	s.AddWire(0, geom.Pt(100, 100), geom.Pt(300, 100), wt, 1, shapegrid.RipupStandard)
	s.AddWire(0, geom.Pt(100, 130), geom.Pt(300, 130), wt, 1, shapegrid.RipupStandard)
	res := s.Audit(geom.R(0, 0, 2000, 2000), nil)
	if res.NotchViolations == 0 {
		t.Fatal("expected notch violation")
	}
}

func TestAuditIgnoresFixedGeometryPairs(t *testing.T) {
	s := testSpace()
	// Two blockages on top of each other: placement geometry, not routing
	// errors.
	s.AddObstacle(0, geom.R(100, 100, 300, 200))
	s.AddObstacle(0, geom.R(150, 100, 350, 200))
	s.AddPin(0, 1, geom.R(150, 150, 170, 210))
	res := s.Audit(geom.R(0, 0, 2000, 2000), nil)
	if res.DiffNetViolations != 0 {
		t.Fatalf("fixed-geometry pairs must not count: %d", res.DiffNetViolations)
	}
}

func TestAuditOpensCounting(t *testing.T) {
	// Opens accounting at the edges: nets whose pins exist only in the
	// netPins argument (zero committed shapes in the space), nets with
	// shapes but no netPins entry, and ordinary multi-pin nets.
	pinAt := func(x, y int) geom.Rect { return geom.R(x-10, y-10, x+10, y+10) }
	cases := []struct {
		name  string
		build func(s *Space) map[int32][]LayerRect
		want  int
	}{
		{
			name: "no shapes, missing netPins entry",
			build: func(s *Space) map[int32][]LayerRect {
				return map[int32][]LayerRect{}
			},
			want: 0,
		},
		{
			name: "no shapes, empty pin list",
			build: func(s *Space) map[int32][]LayerRect {
				return map[int32][]LayerRect{1: {}}
			},
			want: 0,
		},
		{
			name: "no shapes, single pin is not an open",
			build: func(s *Space) map[int32][]LayerRect {
				return map[int32][]LayerRect{1: {{Rect: pinAt(100, 100), Layer: 0}}}
			},
			want: 0,
		},
		{
			name: "no shapes, two disconnected pins",
			build: func(s *Space) map[int32][]LayerRect {
				return map[int32][]LayerRect{1: {
					{Rect: pinAt(100, 100), Layer: 0},
					{Rect: pinAt(900, 100), Layer: 0},
				}}
			},
			want: 1,
		},
		{
			name: "no shapes, three disconnected pins",
			build: func(s *Space) map[int32][]LayerRect {
				return map[int32][]LayerRect{1: {
					{Rect: pinAt(100, 100), Layer: 0},
					{Rect: pinAt(900, 100), Layer: 0},
					{Rect: pinAt(100, 900), Layer: 1},
				}}
			},
			want: 2,
		},
		{
			name: "no shapes, two touching pins share cell metal",
			build: func(s *Space) map[int32][]LayerRect {
				return map[int32][]LayerRect{1: {
					{Rect: pinAt(100, 100), Layer: 0},
					{Rect: pinAt(120, 100), Layer: 0}, // abuts the first
				}}
			},
			want: 0,
		},
		{
			name: "shapes but no netPins entry is skipped",
			build: func(s *Space) map[int32][]LayerRect {
				s.AddWire(0, geom.Pt(100, 100), geom.Pt(500, 100), std(s), 7, shapegrid.RipupStandard)
				return map[int32][]LayerRect{}
			},
			want: 0,
		},
		{
			name: "mixed: routed net closed, shapeless net open",
			build: func(s *Space) map[int32][]LayerRect {
				pinA, pinB := pinAt(100, 100), pinAt(500, 100)
				s.AddPin(0, 1, pinA)
				s.AddPin(0, 1, pinB)
				s.AddWire(0, geom.Pt(100, 100), geom.Pt(500, 100), std(s), 1, shapegrid.RipupStandard)
				return map[int32][]LayerRect{
					1: {{Rect: pinA, Layer: 0}, {Rect: pinB, Layer: 0}},
					2: {{Rect: pinAt(100, 900), Layer: 0}, {Rect: pinAt(900, 900), Layer: 0}},
				}
			},
			want: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpace()
			netPins := tc.build(s)
			res := s.Audit(geom.R(0, 0, 2000, 2000), netPins)
			if res.Opens != tc.want {
				t.Fatalf("opens = %d, want %d", res.Opens, tc.want)
			}
		})
	}
}
