// Package drc implements BonnRoute's distance rule checking module
// (paper §3.4): the interface between the shape grid and the routing
// algorithms. It owns the per-plane shape grids (wiring layers and via
// layers), answers "can this wire/via model be placed here, and at what
// ripup effort" queries, computes the forbidden-interval sweeps that the
// fast grid is built from, and audits finished routings for diff-net,
// same-net, and connectivity errors (§5.2/§5.3 error counts).
package drc

import (
	"bonnroute/internal/geom"
	"bonnroute/internal/rules"
	"bonnroute/internal/shapegrid"
)

// Need encodes the rip-up effort required to legally place a shape:
//
//	0           — free, no conflicts;
//	k in 1..6   — conflicts exist, all removable when the search may rip
//	              shapes of level ≤ k-1;
//	NeedNever=7 — conflicts with fixed geometry (pins, blockages).
//
// Three bits, exactly the eight levels the fast grid packs (§3.6).
type Need = uint8

// NeedNever marks placements blocked by unremovable shapes.
const NeedNever Need = 7

// AnyNet is a net id matching no stored shape: queries with AnyNet treat
// every net's shapes as potential conflicts. The fast grid caches
// net-independent data this way; the detailed router makes it usable by
// temporarily removing the active net's own component shapes from the
// routing space during a search, exactly as §4.4 prescribes.
const AnyNet int32 = -2

// needOf converts a conflicting shape's ripup level into a Need.
func needOf(s shapegrid.Shape) Need {
	if s.Ripup >= shapegrid.RipupNever-1 || s.Net == shapegrid.NoNet {
		return NeedNever
	}
	return s.Ripup + 1
}

// Space is the complete routing space of a chip: one shape grid per
// wiring layer and one per via layer, plus the rule deck and layer
// directions needed to evaluate distance rules.
type Space struct {
	Deck *rules.Deck
	// Dirs[z] is the preferred direction of wiring layer z.
	Dirs []geom.Direction
	// Wiring[z] stores wire, pin, pad and blockage shapes of layer z.
	Wiring []*shapegrid.Grid
	// Cuts[v] stores via cut shapes of via layer v plus, when inter-layer
	// via rules apply, the projections of the cuts of layer v-1.
	Cuts []*shapegrid.Grid
}

// NewSpace creates an empty routing space over area.
func NewSpace(deck *rules.Deck, area geom.Rect, dirs []geom.Direction) *Space {
	s := &Space{Deck: deck, Dirs: dirs}
	for z := 0; z < deck.NumWiringLayers(); z++ {
		cell := deck.Layers[z].Pitch
		s.Wiring = append(s.Wiring, shapegrid.NewGrid(area, dirs[z], cell))
		if z+1 < deck.NumWiringLayers() {
			s.Cuts = append(s.Cuts, shapegrid.NewGrid(area, dirs[z], cell))
		}
	}
	return s
}

// AddShape stores one wiring-layer shape.
func (s *Space) AddShape(z int, sh shapegrid.Shape) { s.Wiring[z].Add(sh) }

// RemoveShape removes one wiring-layer shape.
func (s *Space) RemoveShape(z int, sh shapegrid.Shape) bool { return s.Wiring[z].Remove(sh) }

// AddObstacle stores a blockage rectangle on wiring layer z.
func (s *Space) AddObstacle(z int, r geom.Rect) {
	s.Wiring[z].Add(shapegrid.Shape{
		Rect:  r,
		Net:   shapegrid.NoNet,
		Class: rules.ClassBlockage,
		Ripup: shapegrid.RipupNever,
		Kind:  shapegrid.KindBlockage,
	})
}

// AddPin stores a pin shape of net on wiring layer z. Pins are never
// rippable.
func (s *Space) AddPin(z int, net int32, r geom.Rect) {
	s.Wiring[z].Add(shapegrid.Shape{
		Rect:  r,
		Net:   net,
		Class: rules.ClassStandard,
		Ripup: shapegrid.RipupNever,
		Kind:  shapegrid.KindPin,
	})
}

// wireShape materializes the metal of a stick segment.
func (s *Space) wireShape(z int, a, b geom.Point, wt *rules.WireType, net int32, ripup uint8) shapegrid.Shape {
	dir := geom.Horizontal
	if a.X == b.X && a.Y != b.Y {
		dir = geom.Vertical
	}
	m := wt.Oriented(z, dir, s.Dirs[z])
	return shapegrid.Shape{
		Rect:  m.Metal(a, b),
		Net:   net,
		Class: m.Class,
		Ripup: ripup,
		Kind:  shapegrid.KindWire,
	}
}

// WireShape returns the shape AddWire would store for the same
// arguments without adding it — verification uses it to reconstruct a
// net's committed geometry from its segment list alone.
func (s *Space) WireShape(z int, a, b geom.Point, wt *rules.WireType, net int32, ripup uint8) shapegrid.Shape {
	return s.wireShape(z, a, b, wt, net, ripup)
}

// AddWire inserts the metal of a stick segment from a to b on layer z.
// It returns the stored shape so the caller can remove it later.
func (s *Space) AddWire(z int, a, b geom.Point, wt *rules.WireType, net int32, ripup uint8) shapegrid.Shape {
	sh := s.wireShape(z, a, b, wt, net, ripup)
	s.Wiring[z].Add(sh)
	return sh
}

// ViaShapes materializes the shapes of a via at p between layers v and
// v+1: bottom pad, top pad, cut, and optional inter-layer projection.
func (s *Space) ViaShapes(v int, p geom.Point, wt *rules.WireType, net int32, ripup uint8) (bot, top, cut shapegrid.Shape, proj *shapegrid.Shape) {
	m := wt.Via(v, s.Dirs[v])
	bot = shapegrid.Shape{Rect: m.Bot.Translated(p), Net: net, Class: m.BotClass, Ripup: ripup, Kind: shapegrid.KindVia}
	top = shapegrid.Shape{Rect: m.Top.Translated(p), Net: net, Class: m.TopClass, Ripup: ripup, Kind: shapegrid.KindVia}
	cut = shapegrid.Shape{Rect: m.Cut.Translated(p), Net: net, Class: m.CutClass, Ripup: ripup, Kind: shapegrid.KindVia}
	if m.HasProjection && v+1 < len(s.Cuts) {
		pr := shapegrid.Shape{Rect: m.Cut.Translated(p), Net: net, Class: rules.ClassViaProj, Ripup: ripup, Kind: shapegrid.KindVia}
		proj = &pr
	}
	return bot, top, cut, proj
}

// AddVia inserts a via at p between wiring layers v and v+1.
func (s *Space) AddVia(v int, p geom.Point, wt *rules.WireType, net int32, ripup uint8) {
	bot, top, cut, proj := s.ViaShapes(v, p, wt, net, ripup)
	s.Wiring[v].Add(bot)
	s.Wiring[v+1].Add(top)
	s.Cuts[v].Add(cut)
	if proj != nil {
		s.Cuts[v+1].Add(*proj)
	}
}

// RemoveVia removes the via inserted by AddVia with identical arguments.
func (s *Space) RemoveVia(v int, p geom.Point, wt *rules.WireType, net int32, ripup uint8) bool {
	bot, top, cut, proj := s.ViaShapes(v, p, wt, net, ripup)
	ok := s.Wiring[v].Remove(bot)
	ok = s.Wiring[v+1].Remove(top) && ok
	ok = s.Cuts[v].Remove(cut) && ok
	if proj != nil {
		ok = s.Cuts[v+1].Remove(*proj) && ok
	}
	return ok
}

// RemoveWire removes the wire inserted by AddWire with identical
// arguments.
func (s *Space) RemoveWire(z int, a, b geom.Point, wt *rules.WireType, net int32, ripup uint8) bool {
	return s.Wiring[z].Remove(s.wireShape(z, a, b, wt, net, ripup))
}

// conflictNeed evaluates whether candidate metal (rect, class) on wiring
// layer z conflicts with stored shape sh under the deck's diff-net rules,
// returning the Need contribution (0 when compatible).
func (s *Space) conflictNeed(z int, rect geom.Rect, class rules.ShapeClass, net int32, sh shapegrid.Shape) Need {
	if sh.Net == net && sh.Net != shapegrid.NoNet {
		return 0 // same net: diff-net rules do not apply
	}
	if rect.Intersects(sh.Rect) {
		return needOf(sh)
	}
	// Run-length is measured along the axis orthogonal to the separation.
	var rl int
	if rect.DistY(sh.Rect) > 0 && rect.DistX(sh.Rect) == 0 {
		rl = rect.RunLength(sh.Rect, geom.Horizontal)
	} else if rect.DistX(sh.Rect) > 0 && rect.DistY(sh.Rect) == 0 {
		rl = rect.RunLength(sh.Rect, geom.Vertical)
	} else {
		// Diagonal separation: no positive run-length on either axis.
		rl = 0
	}
	sp := s.Deck.Spacing(z, class, sh.Class, rect.Width(), sh.Rect.Width(), rl)
	if rect.Dist2Sq(sh.Rect) < int64(sp)*int64(sp) {
		return needOf(sh)
	}
	return 0
}

// RectNeed returns the rip-up effort needed to place metal rect of class
// on wiring layer z for net.
func (s *Space) RectNeed(z int, rect geom.Rect, class rules.ShapeClass, net int32) Need {
	margin := s.Deck.MaxSpacing(z)
	var need Need
	s.Wiring[z].Query(rect.Expanded(margin), func(sh shapegrid.Shape) bool {
		if n := s.conflictNeed(z, rect, class, net, sh); n > need {
			need = n
			if need == NeedNever {
				return false
			}
		}
		return true
	})
	return need
}

// SegmentNeed returns the rip-up effort needed to route the stick segment
// a-b on layer z with wire type wt for net.
func (s *Space) SegmentNeed(z int, a, b geom.Point, wt *rules.WireType, net int32) Need {
	sh := s.wireShape(z, a, b, wt, net, 0)
	return s.RectNeed(z, sh.Rect, sh.Class, net)
}

// cutNeed evaluates a via-layer conflict: cut-to-cut spacing within the
// layer, cut-to-projection spacing for inter-layer via rules.
func (s *Space) cutNeed(v int, rect geom.Rect, class rules.ShapeClass, net int32) Need {
	vr := s.Deck.ViaLayers[v]
	margin := vr.CutSpacing
	if vr.InterLayerSpacing > margin {
		margin = vr.InterLayerSpacing
	}
	var need Need
	s.Cuts[v].Query(rect.Expanded(margin), func(sh shapegrid.Shape) bool {
		if sh.Net == net {
			return true
		}
		var sp int
		switch {
		case class == rules.ClassViaCut && sh.Class == rules.ClassViaCut:
			sp = vr.CutSpacing
		case class != sh.Class: // cut vs projection (either order)
			sp = vr.InterLayerSpacing
		default:
			return true // projection vs projection: checked in layer below
		}
		if rect.Dist2Sq(sh.Rect) < int64(sp)*int64(sp) {
			if n := needOf(sh); n > need {
				need = n
			}
		}
		return need < NeedNever
	})
	return need
}

// ViaNeed returns the rip-up effort needed to place a via of wt at p
// between wiring layers v and v+1 for net: the maximum over bottom pad,
// top pad, cut (and inter-layer projection checks).
func (s *Space) ViaNeed(v int, p geom.Point, wt *rules.WireType, net int32) Need {
	bot, top, cut, proj := s.ViaShapes(v, p, wt, net, 0)
	need := s.RectNeed(v, bot.Rect, bot.Class, net)
	if need == NeedNever {
		return need
	}
	if n := s.RectNeed(v+1, top.Rect, top.Class, net); n > need {
		need = n
	}
	if need == NeedNever {
		return need
	}
	if n := s.cutNeed(v, cut.Rect, cut.Class, net); n > need {
		need = n
	}
	if proj != nil && need < NeedNever {
		if n := s.cutNeed(v+1, proj.Rect, proj.Class, net); n > need {
			need = n
		}
	}
	return need
}

// BlockerNets returns the nets whose removal would reduce the Need of
// placing rect on layer z (the shape grid's removable-net service used by
// rip-up and reroute). A net is a blocker when any of its conflicting
// shapes is rippable at ≤ maxRipup; its other, fixed shapes (pins) do
// not disqualify it — the path search already avoided positions those
// block.
func (s *Space) BlockerNets(z int, rect geom.Rect, class rules.ShapeClass, net int32, maxRipup uint8) []int32 {
	margin := s.Deck.MaxSpacing(z)
	blockers := map[int32]bool{}
	s.Wiring[z].Query(rect.Expanded(margin), func(sh shapegrid.Shape) bool {
		if s.conflictNeed(z, rect, class, net, sh) == 0 {
			return true
		}
		if sh.Net == shapegrid.NoNet || sh.Ripup > maxRipup {
			return true
		}
		blockers[sh.Net] = true
		return true
	})
	out := make([]int32, 0, len(blockers))
	for n := range blockers {
		out = append(out, n)
	}
	sortInt32s(out)
	return out
}

func sortInt32s(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
