package core

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bonnroute/internal/chip"
)

// wireSummary is a fixed ResultSummary with every field populated.
func wireSummary() ResultSummary {
	return ResultSummary{
		Flow: "BR+eco", Nets: 4, RuntimeMS: 123.456,
		Netlength: 48061, Vias: 321, Scenic25: 2, Scenic50: 1,
		Errors: 1, Unrouted: 1,
		Audit: AuditSummary{DiffNet: 1, MinArea: 0, Notch: 0, ShortEdge: 0, Opens: 0, Total: 1},
		Global: &GlobalSummary{
			Lambda: 0.8125, Overflowed: 2, Unrouted: 0, Violations: 1,
		},
		PerNet: []NetStatus{
			{ID: 0, Routed: true, Length: 1200, Vias: 4},
			{ID: 1, Routed: true, Length: 800, Vias: 2},
			{ID: 2, Routed: false},
			{ID: 3, Routed: true, Length: 46061, Vias: 315},
		},
	}
}

// TestSummaryWireSchema pins the ResultSummary wire schema with a
// golden file (regenerate with UPDATE_GOLDEN=1 go test ./internal/core)
// and requires a clean JSON round-trip.
func TestSummaryWireSchema(t *testing.T) {
	v := wireSummary()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "wire_summary.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run UPDATE_GOLDEN=1 go test): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire schema drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	var fresh ResultSummary
	if err := json.Unmarshal(want, &fresh); err != nil {
		t.Fatalf("golden does not unmarshal: %v", err)
	}
	if !reflect.DeepEqual(fresh, v) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", fresh, v)
	}
}

// Summarize must agree with the Result it trims.
func TestSummarizeAgreesWithResult(t *testing.T) {
	c := chip.Generate(chip.GenParams{Seed: 5, Rows: 4, Cols: 10, NumNets: 20, NumLayers: 4})
	res := RouteBonnRoute(context.Background(), c, Options{Seed: 5})
	s := Summarize(res)

	if s.Flow != res.Flow || s.Nets != len(c.Nets) {
		t.Fatalf("headline mismatch: %+v", s)
	}
	if s.Netlength != res.Metrics.Netlength || s.Vias != res.Metrics.Vias ||
		s.Errors != res.Metrics.Errors || s.Unrouted != res.Metrics.Unrouted {
		t.Fatalf("metrics mismatch: summary %+v, result %+v", s, res.Metrics)
	}
	if s.Audit.Total != res.Audit.Errors() {
		t.Fatalf("audit total %d != %d", s.Audit.Total, res.Audit.Errors())
	}
	if s.Global == nil {
		t.Fatal("global summary missing for a run with global routing")
	}
	if len(s.PerNet) != len(c.Nets) {
		t.Fatalf("per-net status length %d != %d", len(s.PerNet), len(c.Nets))
	}
	var routed int
	for ni, ns := range s.PerNet {
		if ns.ID != ni {
			t.Fatalf("per-net ID %d at index %d", ns.ID, ni)
		}
		if ns.Routed {
			routed++
		}
	}
	if routed+s.Unrouted != len(c.Nets) {
		t.Fatalf("routed %d + unrouted %d != nets %d", routed, s.Unrouted, len(c.Nets))
	}
}
