package core

// ResultSummary is the trimmed, wire-ready view of a Result: the
// Table-I metrics, the audit breakdown, the global-routing headline
// numbers, and per-net status — no geometry, no router, no chip. It is
// what the service daemon returns for a session; the JSON field names
// are the wire schema, pinned by golden-file tests.
type ResultSummary struct {
	Flow      string  `json:"flow"`
	Nets      int     `json:"nets"`
	RuntimeMS float64 `json:"runtime_ms"`
	Netlength int64   `json:"netlength"`
	Vias      int     `json:"vias"`
	Scenic25  int     `json:"scenic25"`
	Scenic50  int     `json:"scenic50"`
	Errors    int     `json:"errors"`
	Unrouted  int     `json:"unrouted"`
	Cancelled bool    `json:"cancelled,omitempty"`

	Audit AuditSummary `json:"audit"`

	// Global is present when the run included global routing.
	Global *GlobalSummary `json:"global,omitempty"`

	// PerNet is the per-net routing status, indexed by net ID.
	PerNet []NetStatus `json:"per_net,omitempty"`
}

// AuditSummary is the DRC audit breakdown of a summary.
type AuditSummary struct {
	DiffNet   int `json:"diff_net"`
	MinArea   int `json:"min_area"`
	Notch     int `json:"notch"`
	ShortEdge int `json:"short_edge"`
	Opens     int `json:"opens"`
	Total     int `json:"total"`
}

// GlobalSummary is the global-routing headline of a summary.
type GlobalSummary struct {
	Lambda     float64 `json:"lambda"`
	Overflowed int     `json:"overflowed_edges"`
	Unrouted   int     `json:"unrouted"`
	Violations int     `json:"violations"`
}

// NetStatus is one net's routing outcome.
type NetStatus struct {
	ID     int   `json:"id"`
	Routed bool  `json:"routed"`
	Length int64 `json:"length"`
	Vias   int   `json:"vias"`
}

// Summarize builds the wire view of a finished (or partial) Result.
func Summarize(res *Result) ResultSummary {
	s := ResultSummary{
		Flow:      res.Flow,
		Nets:      res.Metrics.Nets,
		RuntimeMS: float64(res.Metrics.Runtime.Microseconds()) / 1000,
		Netlength: res.Metrics.Netlength,
		Vias:      res.Metrics.Vias,
		Scenic25:  res.Metrics.Scenic25,
		Scenic50:  res.Metrics.Scenic50,
		Errors:    res.Metrics.Errors,
		Unrouted:  res.Metrics.Unrouted,
		Cancelled: res.Cancelled,
		Audit: AuditSummary{
			DiffNet:   res.Audit.DiffNetViolations,
			MinArea:   res.Audit.MinAreaViolations,
			Notch:     res.Audit.NotchViolations,
			ShortEdge: res.Audit.ShortEdgeShapes,
			Opens:     res.Audit.Opens,
			Total:     res.Audit.Errors(),
		},
	}
	if res.Global != nil {
		s.Global = &GlobalSummary{
			Lambda:     res.Global.Lambda,
			Overflowed: res.Global.Overflowed,
			Unrouted:   res.Global.Unrouted,
			Violations: res.Global.Violations,
		}
	}
	s.PerNet = make([]NetStatus, len(res.PerNet))
	for ni, nl := range res.PerNet {
		s.PerNet[ni] = NetStatus{ID: ni, Routed: nl.Routed, Length: nl.Length, Vias: nl.Vias}
	}
	return s
}
