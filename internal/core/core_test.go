package core

import (
	"context"

	"testing"

	"bonnroute/internal/chip"
)

func testChip(seed int64, nets int) *chip.Chip {
	return chip.Generate(chip.GenParams{
		Seed: seed, Rows: 4, Cols: 10, NumNets: nets, LocalityRadius: 3,
	})
}

func TestBonnRouteFlow(t *testing.T) {
	c := testChip(1, 15)
	res := RouteBonnRoute(context.Background(), c, Options{Seed: 1})
	if res.Detail.Routed < len(c.Nets)*8/10 {
		t.Fatalf("routed %d/%d", res.Detail.Routed, len(c.Nets))
	}
	if res.Global == nil {
		t.Fatal("no global stats")
	}
	if res.Global.Lambda <= 0 {
		t.Fatalf("λ = %f", res.Global.Lambda)
	}
	if res.Metrics.Netlength == 0 || res.Metrics.Vias == 0 {
		t.Fatalf("metrics empty: %+v", res.Metrics)
	}
	// The flagship §5.2 claim: almost no diff-net violations — with "very
	// few exceptions", which on this chip are proximity violations of
	// access stubs squeezed between pins and cell blockages.
	if res.Audit.DiffNetViolations > 6 {
		t.Fatalf("diff-net violations = %d", res.Audit.DiffNetViolations)
	}
	if res.FastGridHitRate < 0.5 {
		t.Fatalf("fast grid hit rate %.3f", res.FastGridHitRate)
	}
}

func TestBaselineFlow(t *testing.T) {
	c := testChip(1, 15)
	res := RouteBaseline(context.Background(), c, Options{Seed: 1})
	if res.Detail.Routed < len(c.Nets)*7/10 {
		t.Fatalf("routed %d/%d", res.Detail.Routed, len(c.Nets))
	}
	if res.Flow != "ISR" {
		t.Fatalf("flow name %q", res.Flow)
	}
}

func TestFlowsComparableAndBRBetter(t *testing.T) {
	// The Table I shape on one chip: BonnRoute routes at least as many
	// nets with no more vias-per-net inflation and fewer scenic nets.
	c1 := testChip(2, 20)
	br := RouteBonnRoute(context.Background(), c1, Options{Seed: 2})
	c2 := testChip(2, 20)
	isr := RouteBaseline(context.Background(), c2, Options{Seed: 2})

	if br.Detail.Routed < isr.Detail.Routed {
		t.Fatalf("BR routed %d < ISR %d", br.Detail.Routed, isr.Detail.Routed)
	}
	// Netlength comparison is only meaningful over common routed nets.
	var brLen, isrLen int64
	for ni := range c1.Nets {
		if br.PerNet[ni].Routed && isr.PerNet[ni].Routed {
			brLen += br.PerNet[ni].Length
			isrLen += isr.PerNet[ni].Length
		}
	}
	if brLen > isrLen*12/10 {
		t.Fatalf("BR netlength %d vs ISR %d: BonnRoute should not be >20%% longer", brLen, isrLen)
	}
}

func TestSkipGlobal(t *testing.T) {
	c := testChip(3, 10)
	res := RouteBonnRoute(context.Background(), c, Options{Seed: 3, SkipGlobal: true})
	if res.Global != nil {
		t.Fatal("global stats must be nil in detailed-only mode")
	}
	if res.Detail.Routed < len(c.Nets)*8/10 {
		t.Fatalf("routed %d/%d", res.Detail.Routed, len(c.Nets))
	}
}

func TestGlobalCorridorsImproveNothingBroken(t *testing.T) {
	// Corridor restriction must not break routability relative to
	// detailed-only mode.
	c1 := testChip(4, 15)
	with := RouteBonnRoute(context.Background(), c1, Options{Seed: 4})
	c2 := testChip(4, 15)
	without := RouteBonnRoute(context.Background(), c2, Options{Seed: 4, SkipGlobal: true})
	if with.Detail.Routed < without.Detail.Routed-1 {
		t.Fatalf("corridors hurt: %d vs %d", with.Detail.Routed, without.Detail.Routed)
	}
}

func TestCleanupReducesViolations(t *testing.T) {
	c := testChip(5, 15)
	res := RouteBonnRoute(context.Background(), c, Options{Seed: 5})
	// After cleanup there must be no more violating routed pairs than
	// before (idempotence check: a second cleanup finds nothing new).
	n := Cleanup(context.Background(), res.Router, 1)
	if n > 2 {
		t.Fatalf("second cleanup pass still fixed %d nets", n)
	}
}
