package core

import (
	"context"

	"testing"

	"bonnroute/internal/capest"
	"bonnroute/internal/chip"
	"bonnroute/internal/detail"
)

func TestPowerCapFlow(t *testing.T) {
	c := testChip(9, 12)
	res := RouteBonnRoute(context.Background(), c, Options{Seed: 9, PowerCap: 100})
	if res.Detail.Routed < len(c.Nets)*7/10 {
		t.Fatalf("routed %d/%d with power resource", res.Detail.Routed, len(c.Nets))
	}
	if res.Global == nil || res.Global.Lambda <= 0 {
		t.Fatal("global stats missing")
	}
}

func TestParallelFlow(t *testing.T) {
	c := testChip(10, 20)
	res := RouteBonnRoute(context.Background(), c, Options{Seed: 10, Workers: 4})
	if res.Detail.Routed < len(c.Nets)*8/10 {
		t.Fatalf("parallel flow routed %d/%d", res.Detail.Routed, len(c.Nets))
	}
	if res.Audit.Opens != 0 {
		t.Fatalf("parallel flow produced %d opens", res.Audit.Opens)
	}
}

func TestNetSpecs(t *testing.T) {
	c := testChip(11, 10)
	g := BuildGlobalGraph(c, 8)
	specs := NetSpecs(c, g)
	if len(specs) != len(c.Nets) {
		t.Fatalf("specs = %d", len(specs))
	}
	for ni, s := range specs {
		if len(s.Terminals) != len(c.Nets[ni].Pins) {
			t.Fatalf("net %d: terminals %d != pins %d", ni, len(s.Terminals), len(c.Nets[ni].Pins))
		}
		for _, vs := range s.Terminals {
			for _, v := range vs {
				if v < 0 || v >= g.NumVertices() {
					t.Fatalf("net %d: vertex %d out of range", ni, v)
				}
			}
		}
		if c.Nets[ni].WireType != 0 && s.Width != 2 {
			t.Fatalf("wide net %d width %f", ni, s.Width)
		}
	}
}

func TestGlobalOverflowReported(t *testing.T) {
	// Degenerate: capacities near zero force overflow/unrouted reporting
	// rather than silent success.
	c := testChip(12, 10)
	r := detail.New(c, detail.Options{})
	g := BuildGlobalGraph(c, 8)
	capest.Compute(c, r.TG, g, capest.Params{})
	// Sanity: the real capacities route cleanly (no overflow) on this
	// small chip.
	res := RouteBonnRoute(context.Background(), c, Options{Seed: 12})
	if res.Global.Overflowed != 0 {
		t.Fatalf("overflowed = %d on an easy chip", res.Global.Overflowed)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Result {
		return RouteBonnRoute(context.Background(), chip.Generate(chip.GenParams{
			Seed: 13, Rows: 4, Cols: 10, NumNets: 12, LocalityRadius: 3,
		}), Options{Seed: 13})
	}
	a, b := mk(), mk()
	if a.Metrics.Netlength != b.Metrics.Netlength || a.Metrics.Vias != b.Metrics.Vias {
		t.Fatalf("serial flow not deterministic: %d/%d vs %d/%d",
			a.Metrics.Netlength, a.Metrics.Vias, b.Metrics.Netlength, b.Metrics.Vias)
	}
}

// TestWorkerCountEquivalence extends the determinism contract to the
// full BonnRoute flow: the global solver applies price updates in
// serial net order at phase barriers and the detail router's strip
// schedule is geometry-derived, so fixed seed + any worker count must
// give identical quality metrics and per-net geometry end to end.
func TestWorkerCountEquivalence(t *testing.T) {
	run := func(workers int) *Result {
		return RouteBonnRoute(context.Background(), chip.Generate(chip.GenParams{
			Seed: 17, Rows: 5, Cols: 24, NumNets: 40, NumLayers: 4, LocalityRadius: 3,
		}), Options{Seed: 17, Workers: workers})
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.Metrics.Netlength != ref.Metrics.Netlength ||
			got.Metrics.Vias != ref.Metrics.Vias ||
			got.Metrics.Errors != ref.Metrics.Errors ||
			got.Metrics.Unrouted != ref.Metrics.Unrouted ||
			got.Metrics.Scenic25 != ref.Metrics.Scenic25 ||
			got.Metrics.Scenic50 != ref.Metrics.Scenic50 {
			t.Fatalf("Workers=%d: metrics %+v, want %+v", workers, got.Metrics, ref.Metrics)
		}
		if got.Global.Lambda != ref.Global.Lambda {
			t.Fatalf("Workers=%d: lambda %v, want %v", workers, got.Global.Lambda, ref.Global.Lambda)
		}
		for ni := range ref.PerNet {
			if got.PerNet[ni] != ref.PerNet[ni] {
				t.Fatalf("Workers=%d: net %d geometry %+v, want %+v",
					workers, ni, got.PerNet[ni], ref.PerNet[ni])
			}
		}
	}
}
