// Package core is the public façade of the BonnRoute reproduction: it
// wires the substrates into the two flows of the paper's evaluation —
// the BonnRoute flow (min-max resource sharing global routing, capacity
// estimation, interval-based detailed routing with fast grid and
// conflict-free pin access, plus a DRC cleanup pass) and the ISR-like
// baseline flow (sequential negotiated global routing, node-based maze
// detailed routing) — and computes the §5.3 metrics for both.
package core

import (
	"context"
	"runtime"
	"time"

	"bonnroute/internal/baseline"
	"bonnroute/internal/capest"
	"bonnroute/internal/chip"
	"bonnroute/internal/detail"
	"bonnroute/internal/drc"
	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
	"bonnroute/internal/obs"
	"bonnroute/internal/report"
	"bonnroute/internal/sharing"
	"bonnroute/internal/steiner"
)

// Options tune a routing run.
type Options struct {
	// Workers is the parallelism for both stages. Default 1.
	Workers int
	// GlobalPhases is Algorithm 2's t. Default 32.
	GlobalPhases int
	// TileTracks sets the global tile size in tracks (the paper uses
	// 50–100; the synthetic chips are smaller, default 8).
	TileTracks int
	// Seed drives randomized rounding.
	Seed int64
	// PowerCap enables the power resource in global routing.
	PowerCap float64
	// SkipGlobal routes without global guidance (detailed-only mode).
	SkipGlobal bool
	// UsePFuture enables the blockage-aware future cost in detailed
	// routing.
	UsePFuture bool
	// FutureMode selects the detailed-routing future-cost family
	// (detail.FutureDefault/Auto/Reduced). The zero value keeps the
	// legacy π_H / UsePFuture behavior bit-identical.
	FutureMode detail.FutureMode
	// EcoThreshold is the dirty-fraction above which incremental
	// rerouting falls back to a full from-scratch run (see package
	// incremental). Default 0.35; negative disables the fallback.
	EcoThreshold float64
	// ExactSteinerMax is the net-degree threshold for the exact
	// goal-oriented Steiner oracle in global routing (see
	// sharing.Options.ExactSteinerMax): 0 selects the default (exact for
	// nets of ≤ 9 merged terminal groups), negative disables it so every
	// oracle call uses Path Composition.
	ExactSteinerMax int
	// ShardTiles shards the global-routing phase work by
	// congestion-region tiles of this many grid tiles per side (see
	// sharing.Options.ShardTiles). Pure work decomposition — results are
	// bit-identical with sharding on or off at any worker count. 0
	// disables sharding.
	ShardTiles int
	// Tracer receives spans, counters and events for the whole flow. A
	// nil tracer is a no-op and costs nothing on the hot path.
	Tracer *obs.Tracer
}

func (o *Options) setDefaults() {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.GlobalPhases <= 0 {
		o.GlobalPhases = 32
	}
	if o.TileTracks <= 0 {
		o.TileTracks = 8
	}
	if o.EcoThreshold == 0 {
		o.EcoThreshold = 0.35
	}
}

// SetDefaults fills zero-valued options in place (exported for flows —
// like package incremental — assembled outside this package).
func (o *Options) SetDefaults() { o.setDefaults() }

// GlobalStats reports the global routing stage.
type GlobalStats struct {
	Lambda        float64
	LambdaHistory []float64
	OracleCalls   int64
	OracleReuses  int64
	// Oracle attribution: calls, summed tree wire length and wall time
	// per oracle (exact goal-oriented vs. Path Composition).
	ExactCalls, PCCalls           int64
	ExactTreeLength, PCTreeLength int64
	ExactOracleTime, PCOracleTime time.Duration
	Rechosen                      int
	Rerouted                      int
	Violations                    int
	Unrouted                      int
	Overflowed                    int
	// Iterations is the baseline flow's negotiation iteration count.
	Iterations int
	// PerNetLength and PerNetVias are the global-route geometry per net.
	PerNetLength []int64
	PerNetVias   []int
	// AlgTime is the Algorithm 2 (or negotiation) time; RRTime the
	// rounding/repair time.
	AlgTime, RRTime, Total time.Duration
}

// GlobalAssignment exposes the global routing solution for independent
// verification: the grid graph with its capest capacities, the rounded
// tree (edge list) per net, the per-edge extra widths of each chosen
// candidate (nil entries when the solver granted none), the per-net
// capacity widths, and — when the flow computed them — the reported
// per-edge loads the overflow count was derived from.
type GlobalAssignment struct {
	Graph  *grid.Graph
	Trees  [][]int32
	Extras [][]float32
	Widths []float64
	Loads  []float64
}

// Result is a complete flow outcome.
type Result struct {
	Flow   string
	Chip   *chip.Chip
	Global *GlobalStats
	// Assignment carries the raw global routing solution (nil when the
	// flow ran with SkipGlobal).
	Assignment *GlobalAssignment
	Detail     *detail.Result
	Router     *detail.Router
	Audit      drc.AuditResult
	PerNet     []report.NetLength
	Metrics    report.Metrics
	// CleanupTime is the DRC cleanup pass duration (BonnRoute flow).
	CleanupTime time.Duration
	// DetailTime is the detailed routing duration.
	DetailTime time.Duration
	// FastGridHitRate is the §3.6 statistic.
	FastGridHitRate float64
	// CleanupFixed counts nets repaired by the DRC cleanup pass.
	CleanupFixed int
	// Cancelled reports that the flow stopped early because the context
	// was cancelled; all populated fields describe the partial run.
	Cancelled bool
}

// BuildGlobalGraph constructs the global routing grid for a chip.
func BuildGlobalGraph(c *chip.Chip, tileTracks int) *grid.Graph {
	pitch := c.Deck.Layers[0].Pitch
	tile := tileTracks * pitch
	dirs := make([]geom.Direction, c.NumLayers())
	for z := range dirs {
		dirs[z] = c.Dir(z)
	}
	return grid.New(c.Area, tile, tile, dirs)
}

// NetSpecs derives the global routing net descriptions: one terminal
// vertex set per pin at the pin's tile and layer; wide nets get width 2
// and may take extra space.
func NetSpecs(c *chip.Chip, g *grid.Graph) []sharing.NetSpec {
	specs := make([]sharing.NetSpec, len(c.Nets))
	for ni := range c.Nets {
		n := &c.Nets[ni]
		spec := sharing.NetSpec{ID: ni, Width: 1}
		if n.WireType != 0 {
			spec.Width = 2
			spec.AllowExtra = true
		}
		for _, pi := range n.Pins {
			p := &c.Pins[pi]
			tx, ty := g.TileOf(p.Center())
			spec.Terminals = append(spec.Terminals, []int{g.Vertex(tx, ty, p.Shapes[0].Layer)})
		}
		specs[ni] = spec
	}
	return specs
}

// RouteBonnRoute runs the full BonnRoute flow. ctx cancellation is
// honoured at stage, phase and round boundaries; a cancelled run still
// returns a partial Result with Cancelled set. Spans for every stage are
// emitted on opt.Tracer (nil = off).
func RouteBonnRoute(ctx context.Context, c *chip.Chip, opt Options) *Result {
	opt.setDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{Flow: "BR+cleanup", Chip: c}
	start := time.Now()

	root := opt.Tracer.Start("flow.br",
		obs.Int("nets", len(c.Nets)), obs.Int("workers", opt.Workers))
	defer func() { root.End(obs.Bool("cancelled", res.Cancelled)) }()
	ctx = obs.ContextWithSpan(ctx, root)

	// Detailed-router construction first: it owns routing space, tracks
	// and the fast grid, which capacity estimation also needs. Pin-access
	// catalogues (§4.3) are built here, so the prep span carries the
	// branch-and-bound effort.
	prepSpan := root.Child("stage.prep")
	r := detail.New(c, detail.Options{Workers: opt.Workers, UsePFuture: opt.UsePFuture, FutureMode: opt.FutureMode})
	as := r.AccessStats()
	prepSpan.End(obs.Int("access_catalogues", as.Catalogues),
		obs.Int("access_bb_nodes", as.BBNodes),
		obs.Int("access_reserved", as.Reserved))
	res.Router = r

	var trees [][]int32
	if !opt.SkipGlobal && ctx.Err() == nil {
		g := BuildGlobalGraph(c, opt.TileTracks)
		ceSpan := root.Child("stage.capest")
		capest.Compute(c, r.TG, g, capest.Params{})
		capest.ReduceForIntraTile(c, g)
		ceSpan.End(obs.Int("edges", g.NumEdges()))

		specs := NetSpecs(c, g)
		algStart := time.Now()
		gSpan := root.Child("stage.global", obs.Int("phases", opt.GlobalPhases))
		solver := sharing.New(g, specs, sharing.Options{
			Phases:          opt.GlobalPhases,
			Workers:         opt.Workers,
			Seed:            opt.Seed,
			PowerCap:        opt.PowerCap,
			ExactSteinerMax: opt.ExactSteinerMax,
			ShardTiles:      opt.ShardTiles,
		})
		sres := solver.Run(obs.ContextWithSpan(ctx, gSpan))
		total := time.Since(algStart)
		gSpan.End(obs.F64("lambda", sres.LambdaFrac),
			obs.Int64("oracle_calls", sres.OracleCalls),
			obs.Int64("oracle_reuses", sres.OracleReuses),
			obs.Int64("oracle_exact", sres.ExactCalls),
			obs.Int64("oracle_pc", sres.PCCalls),
			obs.Int("violations", sres.RoundingViolations),
			obs.Int("unrouted", sres.Unrouted))
		if sres.Cancelled {
			res.Cancelled = true
		}

		gs := &GlobalStats{
			Lambda:          sres.LambdaFrac,
			LambdaHistory:   sres.LambdaHistory,
			OracleCalls:     sres.OracleCalls,
			OracleReuses:    sres.OracleReuses,
			ExactCalls:      sres.ExactCalls,
			PCCalls:         sres.PCCalls,
			ExactTreeLength: sres.ExactTreeLength,
			PCTreeLength:    sres.PCTreeLength,
			ExactOracleTime: sres.ExactOracleTime,
			PCOracleTime:    sres.PCOracleTime,
			Rechosen:        sres.RechooseChanges,
			Rerouted:        sres.Rerouted,
			Violations:      sres.RoundingViolations,
			Unrouted:        sres.Unrouted,
			AlgTime:         sres.AlgTime,
			RRTime:          sres.RepairTime,
			Total:           total,
		}
		gs.PerNetLength = make([]int64, len(c.Nets))
		gs.PerNetVias = make([]int, len(c.Nets))
		trees = make([][]int32, len(c.Nets))
		loads := solver.EdgeLoads(sres)
		for e, l := range loads {
			if l > g.Cap[e]+1e-9 {
				gs.Overflowed++
			}
		}
		extras := make([][]float32, len(c.Nets))
		widths := make([]float64, len(c.Nets))
		for ni := range sres.Nets {
			nr := &sres.Nets[ni]
			t := nr.Tree()
			trees[ni] = t
			if nr.Chosen >= 0 && nr.Chosen < len(nr.Candidates) {
				extras[ni] = nr.Candidates[nr.Chosen].Extra
			}
			widths[ni] = specs[ni].Width
			edges := make([]int, len(t))
			for i, e := range t {
				edges[i] = int(e)
			}
			gs.PerNetLength[ni] = steiner.TreeLength(g, edges)
			gs.PerNetVias[ni] = steiner.CountVias(g, edges)
		}
		res.Global = gs
		res.Assignment = &GlobalAssignment{
			Graph: g, Trees: trees, Extras: extras, Widths: widths, Loads: loads,
		}
		r.SetGlobalCorridors(g, trees)
	}

	dStart := time.Now()
	dSpan := root.Child("stage.detail")
	res.Detail = r.Route(obs.ContextWithSpan(ctx, dSpan))
	dSpan.End(obs.Int("routed", res.Detail.Routed),
		obs.Int("failed", res.Detail.Failed),
		obs.Int("rounds", res.Detail.Rounds),
		obs.Int("ripups", res.Detail.RipupEvents),
		obs.Int("access_dynamic", r.AccessStats().Dynamic))
	res.DetailTime = time.Since(dStart)
	if res.Detail.Cancelled {
		res.Cancelled = true
	}

	// DRC cleanup pass (§5.2): rip and reroute nets implicated in
	// remaining violations.
	cStart := time.Now()
	clSpan := root.Child("stage.cleanup")
	res.CleanupFixed = Cleanup(obs.ContextWithSpan(ctx, clSpan), r, 2)
	clSpan.End(obs.Int("fixed", res.CleanupFixed))
	res.CleanupTime = time.Since(cStart)

	res.finish(ctx, c, r, time.Since(start))
	if ctx.Err() != nil {
		res.Cancelled = true
	}
	return res
}

// RouteBaseline runs the ISR-like flow. ctx and tracing behave as in
// RouteBonnRoute.
func RouteBaseline(ctx context.Context, c *chip.Chip, opt Options) *Result {
	opt.setDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{Flow: "ISR", Chip: c}
	start := time.Now()

	root := opt.Tracer.Start("flow.isr",
		obs.Int("nets", len(c.Nets)), obs.Int("workers", opt.Workers))
	defer func() { root.End(obs.Bool("cancelled", res.Cancelled)) }()
	ctx = obs.ContextWithSpan(ctx, root)

	prepSpan := root.Child("stage.prep")
	r := baseline.NewDetail(c, opt.Workers)
	prepSpan.End()
	res.Router = r

	if !opt.SkipGlobal && ctx.Err() == nil {
		g := BuildGlobalGraph(c, opt.TileTracks)
		ceSpan := root.Child("stage.capest")
		capest.Compute(c, r.TG, g, capest.Params{})
		ceSpan.End(obs.Int("edges", g.NumEdges()))

		var gnets []baseline.GNet
		for _, spec := range NetSpecs(c, g) {
			gnets = append(gnets, baseline.GNet{ID: spec.ID, Terminals: spec.Terminals, Width: spec.Width})
		}
		gSpan := root.Child("stage.global")
		gres := baseline.GlobalRoute(obs.ContextWithSpan(ctx, gSpan), g, gnets, baseline.GlobalOptions{})
		if gres.Cancelled {
			res.Cancelled = true
		}
		gs := &GlobalStats{
			Overflowed: gres.Overflowed,
			Iterations: gres.Iterations,
			Total:      gres.Runtime,
		}
		for _, t := range gres.Trees {
			if t == nil {
				gs.Unrouted++
			}
		}
		gSpan.End(obs.Int("iterations", gres.Iterations),
			obs.Int("overflowed", gres.Overflowed),
			obs.Int("unrouted", gs.Unrouted))
		gs.PerNetLength = make([]int64, len(c.Nets))
		gs.PerNetVias = make([]int, len(c.Nets))
		for ni, t := range gres.Trees {
			edges := make([]int, len(t))
			for i, e := range t {
				edges[i] = int(e)
			}
			gs.PerNetLength[ni] = steiner.TreeLength(g, edges)
			gs.PerNetVias[ni] = steiner.CountVias(g, edges)
		}
		res.Global = gs
		widths := make([]float64, len(gnets))
		for _, gn := range gnets {
			widths[gn.ID] = gn.Width
		}
		res.Assignment = &GlobalAssignment{Graph: g, Trees: gres.Trees, Widths: widths}
		r.SetGlobalCorridors(g, gres.Trees)
	}

	dStart := time.Now()
	dSpan := root.Child("stage.detail")
	res.Detail = r.Route(obs.ContextWithSpan(ctx, dSpan))
	dSpan.End(obs.Int("routed", res.Detail.Routed),
		obs.Int("failed", res.Detail.Failed),
		obs.Int("rounds", res.Detail.Rounds))
	res.DetailTime = time.Since(dStart)
	if res.Detail.Cancelled {
		res.Cancelled = true
	}

	res.finish(ctx, c, r, time.Since(start))
	if ctx.Err() != nil {
		res.Cancelled = true
	}
	return res
}

// Finalize computes the PerNet report, full-chip DRC audit and §5.3
// metrics for a Result whose stages were run outside this package (the
// incremental ECO flow assembles Chip/Router/Global/Assignment/Detail
// itself and then calls Finalize). total is the flow wall time recorded
// in Metrics.Runtime.
func (res *Result) Finalize(ctx context.Context, total time.Duration) {
	if ctx == nil {
		ctx = context.Background()
	}
	res.finish(ctx, res.Chip, res.Router, total)
}

// finish computes metrics shared by both flows and runs the final DRC
// audit under a "stage.audit" span.
func (res *Result) finish(ctx context.Context, c *chip.Chip, r *detail.Router, total time.Duration) {
	res.PerNet = make([]report.NetLength, len(c.Nets))
	var totalLen int64
	vias := 0
	unrouted := 0
	for ni := range c.Nets {
		st := r.NetStats(ni)
		res.PerNet[ni] = report.NetLength{Length: st.Length, Vias: st.Vias, Routed: st.Routed}
		if st.Routed {
			totalLen += st.Length
			vias += st.Vias
		} else {
			unrouted++
		}
	}
	aSpan := obs.SpanFrom(ctx).Child("stage.audit")
	res.Audit = auditRouter(r)
	aSpan.End(obs.Int("errors", res.Audit.Errors()))
	res.FastGridHitRate = r.FastGridHitRate()

	baselines := report.SteinerBaselines(c)
	s25, s50 := report.Scenic(res.PerNet, baselines)
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	res.Metrics = report.Metrics{
		Name:      res.Flow,
		Nets:      len(c.Nets),
		Runtime:   total,
		RuntimeBR: res.DetailTime,
		Netlength: totalLen,
		Vias:      vias,
		Scenic25:  s25,
		Scenic50:  s50,
		Errors:    res.Audit.Errors(),
		Unrouted:  unrouted,
	}
}

// auditRouter runs the full-chip audit with each routed net's pins.
func auditRouter(r *detail.Router) drc.AuditResult {
	c := r.Chip
	netPins := map[int32][]drc.LayerRect{}
	for ni := range c.Nets {
		if !r.NetStats(ni).Routed {
			continue
		}
		for _, pi := range c.Nets[ni].Pins {
			p := &c.Pins[pi]
			netPins[int32(ni)] = append(netPins[int32(ni)], drc.LayerRect{
				Rect: p.Shapes[0].Rect, Layer: p.Shapes[0].Layer,
			})
		}
	}
	return r.Space.Audit(c.Area, netPins)
}

// Cleanup is the external-DRC-cleanup stand-in (§5.2): nets owning
// shapes in diff-net violations are ripped and rerouted, up to `passes`
// times. ctx cancellation is honoured between nets; one "cleanup.pass"
// event per pass goes to the span carried by ctx.
func Cleanup(ctx context.Context, r *detail.Router, passes int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.SpanFrom(ctx)
	fixed := 0
	for pass := 0; pass < passes; pass++ {
		if ctx.Err() != nil {
			break
		}
		bad := violatingNets(r)
		if len(bad) == 0 {
			break
		}
		passFixed := 0
		for _, ni := range bad {
			if ctx.Err() != nil {
				break
			}
			r.Unroute(ni)
			if r.RouteNet(ni, 1) {
				passFixed++
			}
		}
		fixed += passFixed
		span.Event("cleanup.pass", obs.Int("pass", pass),
			obs.Int("violating_nets", len(bad)), obs.Int("fixed", passFixed))
	}
	return fixed
}

// violatingNets lists routed nets involved in diff-net violations.
func violatingNets(r *detail.Router) []int {
	c := r.Chip
	pairs := r.Space.ViolatingNetPairs(c.Area)
	seen := map[int]bool{}
	var out []int
	for _, p := range pairs {
		for _, ni := range p {
			if ni >= 0 && !seen[int(ni)] {
				seen[int(ni)] = true
				out = append(out, int(ni))
			}
		}
	}
	return out
}
