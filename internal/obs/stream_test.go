package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// A ChanSink must deliver records in order, never block the emitter
// when full (counting drops instead), and survive Close racing Emit.
func TestChanSinkDeliveryAndDrops(t *testing.T) {
	s := NewChanSink(2)
	tr := New(s)
	sp := tr.Start("flow", Int("nets", 3))
	sp.Event("e1")
	sp.Event("e2") // third emit into a cap-2 buffer: dropped
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1 (third emit into cap-2 buffer)", s.Dropped())
	}
	s.Close()
	var names []string
	for r := range s.Records() {
		names = append(names, r.Name)
	}
	if len(names) != 2 || names[0] != "flow" || names[1] != "e1" {
		t.Fatalf("buffered records = %v", names)
	}
	// Emit after close: counted drop, no panic.
	sp.Event("late")
	if s.Dropped() != 2 {
		t.Fatalf("dropped after close = %d, want 2", s.Dropped())
	}
}

func TestChanSinkCloseRacesEmit(t *testing.T) {
	s := NewChanSink(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := Record{Kind: RecEvent, Name: "x"}
		for {
			select {
			case <-stop:
				return
			default:
				s.Emit(&r)
			}
		}
	}()
	go func() {
		for range s.Records() {
		}
	}()
	time.Sleep(2 * time.Millisecond)
	s.Close()
	close(stop)
	wg.Wait()
}

// MarshalRecord must produce the same wire form JSONLSink writes.
func TestMarshalRecordSchema(t *testing.T) {
	epoch := time.Now()
	r := Record{
		Kind: RecSpanEnd, Time: epoch.Add(1500 * time.Microsecond),
		Span: 2, Parent: 1, Name: "stage.detail",
		Dur:   time.Millisecond,
		Attrs: []Attr{Int("routed", 12), Bool("cancelled", false)},
	}
	data, err := MarshalRecord(&r, epoch)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "span_end" || m["name"] != "stage.detail" {
		t.Fatalf("bad record: %s", data)
	}
	if m["t_us"] != float64(1500) || m["dur_us"] != float64(1000) {
		t.Fatalf("bad timing fields: %s", data)
	}
	attrs := m["attrs"].(map[string]any)
	if attrs["routed"] != float64(12) || attrs["cancelled"] != false {
		t.Fatalf("bad attrs: %s", data)
	}
}
