package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanTree(t *testing.T) {
	mem := NewMemorySink()
	tr := New(mem)

	flow := tr.Start("flow", Int("nets", 3))
	stage := flow.Child("stage.a")
	stage.Event("tick", Int("i", 1))
	stage.Count("widgets", 2)
	stage.Count("widgets", 3)
	stage.End(F64("score", 0.5))
	flow.Child("stage.b").End()
	flow.End(Bool("ok", true))

	roots := mem.Roots()
	if len(roots) != 1 || roots[0].Name != "flow" {
		t.Fatalf("roots = %+v", roots)
	}
	root := roots[0]
	if len(root.Children) != 2 {
		t.Fatalf("children = %d", len(root.Children))
	}
	if root.Children[0].Name != "stage.a" || root.Children[1].Name != "stage.b" {
		t.Fatalf("child order: %s, %s", root.Children[0].Name, root.Children[1].Name)
	}
	if !root.Ended || !root.Children[0].Ended {
		t.Fatal("spans not marked ended")
	}
	if v := root.Attr("nets"); v != int64(3) {
		t.Fatalf("nets attr = %v", v)
	}
	if v := root.Children[0].Attr("score"); v != 0.5 {
		t.Fatalf("end attr not merged: %v", v)
	}
	if n := mem.Counter("widgets"); n != 5 {
		t.Fatalf("counter sum = %d", n)
	}
	if got := root.Find("stage.b"); got == nil {
		t.Fatal("Find failed")
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", Int("a", 1))
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	// All of these must be safe on the nil span.
	child := sp.Child("y")
	child.Event("e", F64("v", 1))
	child.Count("c", 1)
	child.Gauge("g", 2)
	child.End()
	sp.End(Bool("done", true))
	if New() != nil {
		t.Fatal("New with no sinks must be the nil tracer")
	}
}

// TestNoopTracerAllocs is the hot-path guard of the tentpole: with
// tracing disabled (nil tracer / nil span), instrumentation points must
// not allocate.
func TestNoopTracerAllocs(t *testing.T) {
	var tr *Tracer
	if got := testing.AllocsPerRun(100, func() {
		sp := tr.Start("flow", Int("nets", 60))
		child := sp.Child("stage", Int("round", 1))
		child.Event("tick", F64("lambda", 0.9), Int("calls", 12))
		child.Count("oracle_calls", 7)
		child.Gauge("hit_rate", 0.97)
		child.End(Int("routed", 59))
		sp.End()
	}); got != 0 {
		t.Errorf("no-op tracer instrumentation: %v allocs/op, want 0", got)
	}
	// Span extraction from a span-free context is also allocation-free.
	ctx := context.Background()
	if got := testing.AllocsPerRun(100, func() {
		sp := SpanFrom(ctx)
		sp.Event("tick")
		sp.End()
	}); got != 0 {
		t.Errorf("SpanFrom on plain context: %v allocs/op, want 0", got)
	}
}

func TestContextSpan(t *testing.T) {
	mem := NewMemorySink()
	tr := New(mem)
	sp := tr.Start("root")
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFrom(ctx); got != sp {
		t.Fatal("span did not round-trip through context")
	}
	if got := SpanFrom(context.Background()); got != nil {
		t.Fatal("expected nil span from bare context")
	}
	if got := SpanFrom(nil); got != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatal("expected nil span from nil context")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("nil span must not wrap the context")
	}
	sp.End()
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink)
	flow := tr.Start("flow", Int("nets", 2), Str("chip", "tiny"))
	flow.Count("oracle_calls", 5)
	flow.Gauge("lambda", 0.75)
	flow.Event("phase", Int("i", 0))
	flow.End(Bool("cancelled", false))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var kinds []string
	for sc.Scan() {
		line := sc.Text()
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		kind, _ := m["kind"].(string)
		if kind == "" {
			t.Fatalf("line %q: missing kind", line)
		}
		if _, ok := m["name"].(string); !ok {
			t.Fatalf("line %q: missing name", line)
		}
		kinds = append(kinds, kind)
	}
	want := []string{"span_start", "counter", "gauge", "event", "span_end"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
}

func TestProgressSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewProgressSink(&buf))
	flow := tr.Start("flow")
	st := flow.Child("stage.detail")
	st.Event("round", Int("routed", 10))
	st.End()
	flow.End()
	out := buf.String()
	for _, want := range []string{"> flow", "> stage.detail", "· round routed=10", "< stage.detail", "< flow"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}
	// Child lines are indented deeper than the root.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !(strings.Index(lines[1], ">") > strings.Index(lines[0], ">")) {
		t.Fatalf("child span not indented:\n%s", out)
	}
}

func TestSinkFunc(t *testing.T) {
	var names []string
	tr := New(SinkFunc(func(r *Record) { names = append(names, string(r.Kind)+":"+r.Name) }))
	sp := tr.Start("a")
	sp.End()
	if len(names) != 2 || names[0] != "span_start:a" || names[1] != "span_end:a" {
		t.Fatalf("names = %v", names)
	}
}
