package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// --- MemorySink ---

// MemorySink records every emitted record; tests query the records, the
// reconstructed span tree, and aggregated counters.
type MemorySink struct {
	mu   sync.Mutex
	recs []Record
}

// NewMemorySink builds an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit appends a deep-enough copy of the record (attrs are cloned so the
// caller's variadic slice can be reused).
func (m *MemorySink) Emit(r *Record) {
	cp := *r
	if len(r.Attrs) > 0 {
		cp.Attrs = append([]Attr(nil), r.Attrs...)
	}
	m.mu.Lock()
	m.recs = append(m.recs, cp)
	m.mu.Unlock()
}

// Records returns a copy of everything recorded so far.
func (m *MemorySink) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record(nil), m.recs...)
}

// Counter sums all counter records with the given name.
func (m *MemorySink) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for i := range m.recs {
		if m.recs[i].Kind == RecCounter && m.recs[i].Name == name {
			total += int64(m.recs[i].Value)
		}
	}
	return total
}

// SpanNode is one span of the reconstructed trace tree.
type SpanNode struct {
	ID       uint64
	Parent   uint64
	Name     string
	Dur      time.Duration
	Ended    bool
	Attrs    []Attr // start attrs followed by end attrs
	Events   []Record
	Children []*SpanNode
}

// Attr returns the value of the named attribute (nil when absent).
func (n *SpanNode) Attr(key string) any {
	for i := range n.Attrs {
		if n.Attrs[i].Key == key {
			return n.Attrs[i].Value()
		}
	}
	return nil
}

// Find returns the first descendant (depth-first, including n) with the
// given span name, or nil.
func (n *SpanNode) Find(name string) *SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if got := c.Find(name); got != nil {
			return got
		}
	}
	return nil
}

// Roots reconstructs the span forest from the recorded stream: one node
// per span ID, children ordered by start time.
func (m *MemorySink) Roots() []*SpanNode {
	m.mu.Lock()
	recs := append([]Record(nil), m.recs...)
	m.mu.Unlock()

	nodes := map[uint64]*SpanNode{}
	var order []uint64
	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case RecSpanStart:
			nodes[r.Span] = &SpanNode{ID: r.Span, Parent: r.Parent, Name: r.Name,
				Attrs: append([]Attr(nil), r.Attrs...)}
			order = append(order, r.Span)
		case RecSpanEnd:
			if n := nodes[r.Span]; n != nil {
				n.Dur = r.Dur
				n.Ended = true
				n.Attrs = append(n.Attrs, r.Attrs...)
			}
		case RecEvent, RecCounter, RecGauge:
			if n := nodes[r.Span]; n != nil {
				n.Events = append(n.Events, *r)
			}
		}
	}
	var roots []*SpanNode
	for _, id := range order {
		n := nodes[id]
		if p := nodes[n.Parent]; p != nil {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// SpanNames lists all span names seen, sorted and deduplicated.
func (m *MemorySink) SpanNames() []string {
	m.mu.Lock()
	seen := map[string]bool{}
	for i := range m.recs {
		if m.recs[i].Kind == RecSpanStart {
			seen[m.recs[i].Name] = true
		}
	}
	m.mu.Unlock()
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- JSONLSink ---

// jsonRecord is the wire form of one JSONL trace line. Times are
// microseconds since the sink was created, so traces diff cleanly.
type jsonRecord struct {
	Kind   RecordKind     `json:"kind"`
	TUS    int64          `json:"t_us"`
	Span   uint64         `json:"span"`
	Parent uint64         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	DurUS  int64          `json:"dur_us,omitempty"`
	Value  *float64       `json:"value,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// JSONLSink serializes each record as one JSON line — the machine-
// readable trace file behind the -trace flag.
type JSONLSink struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	start time.Time
	err   error
}

// NewJSONLSink wraps a writer. If w is also an io.Closer, Close closes
// it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes the record as one JSON line. Errors are sticky and
// surfaced by Close.
func (s *JSONLSink) Emit(r *Record) {
	data, err := MarshalRecord(r, s.start)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	if s.err == nil {
		_, err = s.w.Write(append(data, '\n'))
		if err != nil {
			s.err = err
		}
	}
}

// Flush drains the buffer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes and closes the underlying writer (when closable),
// returning the first error seen on the sink.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// --- ProgressSink ---

// ProgressSink renders span starts/ends and events as an indented,
// timestamped, human-readable log — the -progress flag's live view of a
// routing run.
type ProgressSink struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	depth map[uint64]int
}

// NewProgressSink writes human-readable progress lines to w.
func NewProgressSink(w io.Writer) *ProgressSink {
	return &ProgressSink{w: w, start: time.Now(), depth: map[uint64]int{}}
}

func formatAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		switch a.Kind {
		case KindFloat:
			fmt.Fprintf(&b, "%.4g", a.Float)
		case KindString:
			b.WriteString(a.Str)
		case KindBool:
			fmt.Fprintf(&b, "%v", a.Int != 0)
		default:
			fmt.Fprintf(&b, "%d", a.Int)
		}
	}
	return b.String()
}

// Emit prints one progress line per record.
func (p *ProgressSink) Emit(r *Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	at := float64(r.Time.Sub(p.start).Microseconds()) / 1000
	switch r.Kind {
	case RecSpanStart:
		d := p.depth[r.Parent] + 1
		p.depth[r.Span] = d
		fmt.Fprintf(p.w, "[%9.1fms]%s> %s%s\n", at, strings.Repeat("  ", d-1), r.Name, formatAttrs(r.Attrs))
	case RecSpanEnd:
		d := p.depth[r.Span]
		if d == 0 {
			d = 1
		}
		delete(p.depth, r.Span)
		fmt.Fprintf(p.w, "[%9.1fms]%s< %s (%.1fms)%s\n", at, strings.Repeat("  ", d-1), r.Name,
			float64(r.Dur.Microseconds())/1000, formatAttrs(r.Attrs))
	case RecEvent:
		fmt.Fprintf(p.w, "[%9.1fms]%s· %s%s\n", at, strings.Repeat("  ", p.depth[r.Span]), r.Name, formatAttrs(r.Attrs))
	case RecCounter, RecGauge:
		fmt.Fprintf(p.w, "[%9.1fms]%s· %s=%g\n", at, strings.Repeat("  ", p.depth[r.Span]), r.Name, r.Value)
	}
}
