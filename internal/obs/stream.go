package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// ChanSink buffers trace records in a bounded channel for a live
// streaming consumer — the sink behind the service daemon's
// server-sent-events progress stream. Emit never blocks the routing hot
// path: when the consumer falls behind and the buffer is full, records
// are dropped and counted instead of applying back-pressure to the
// flow. Close is safe against concurrent Emit; records emitted after
// Close are dropped silently (a session's tracer outlives the one
// streamed request that attached the sink).
type ChanSink struct {
	mu      sync.RWMutex
	ch      chan Record
	closed  bool
	dropped atomic.Int64
}

// NewChanSink builds a streaming sink buffering up to buf records
// (minimum 1).
func NewChanSink(buf int) *ChanSink {
	if buf < 1 {
		buf = 1
	}
	return &ChanSink{ch: make(chan Record, buf)}
}

// Emit enqueues a deep-enough copy of the record, dropping it (and
// counting the drop) when the buffer is full or the sink is closed.
func (s *ChanSink) Emit(r *Record) {
	cp := *r
	if len(r.Attrs) > 0 {
		cp.Attrs = append([]Attr(nil), r.Attrs...)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.dropped.Add(1)
		return
	}
	select {
	case s.ch <- cp:
	default:
		s.dropped.Add(1)
	}
}

// Records returns the stream; it is closed by Close. Buffered records
// remain readable after Close.
func (s *ChanSink) Records() <-chan Record { return s.ch }

// Dropped reports how many records were discarded because the buffer
// was full or the sink closed.
func (s *ChanSink) Dropped() int64 { return s.dropped.Load() }

// Close ends the stream. Idempotent; concurrent Emit calls turn into
// counted drops.
func (s *ChanSink) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// MarshalRecord serializes one record in the same wire form JSONLSink
// writes (kind, t_us relative to epoch, span/parent IDs, name, dur_us,
// value, attrs) — so streamed progress events and -trace files share
// one schema.
func MarshalRecord(r *Record, epoch time.Time) ([]byte, error) {
	jr := jsonRecord{
		Kind: r.Kind, TUS: r.Time.Sub(epoch).Microseconds(),
		Span: r.Span, Parent: r.Parent, Name: r.Name,
		DurUS: r.Dur.Microseconds(),
	}
	if r.Kind == RecCounter || r.Kind == RecGauge {
		v := r.Value
		jr.Value = &v
	}
	if len(r.Attrs) > 0 {
		jr.Attrs = make(map[string]any, len(r.Attrs))
		for _, a := range r.Attrs {
			jr.Attrs[a.Key] = a.Value()
		}
	}
	return json.Marshal(&jr)
}
