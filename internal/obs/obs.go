// Package obs is the observability layer of the routing flows: a
// nil-safe, allocation-conscious tracer producing hierarchical spans
// (flow → stage → phase/round → net batch), point-in-time events, and
// named counters and gauges, all delivered to pluggable sinks (in-memory
// for tests, JSONL trace files, a human-readable progress writer).
//
// The nil tracer is the no-op: every method on a nil *Tracer or nil
// *Span returns immediately, so instrumented code needs no guards and
// the disabled path costs nothing on the routing hot paths (enforced by
// TestNoopTracerAllocs). Spans travel between flow stages via
// context.Context (ContextWithSpan / SpanFrom), which is also how the
// stages observe cancellation.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Kind discriminates Attr values.
type Kind uint8

const (
	KindInt Kind = iota
	KindFloat
	KindString
	KindBool
)

// Attr is one key/value annotation on a span, event, or metric. It is a
// plain value type so attribute lists build without boxing.
type Attr struct {
	Key   string
	Kind  Kind
	Int   int64
	Float float64
	Str   string
}

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Kind: KindInt, Int: int64(v)} }

// Int64 builds an int64 attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, Int: v} }

// F64 builds a float attribute.
func F64(key string, v float64) Attr { return Attr{Key: key, Kind: KindFloat, Float: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: KindString, Str: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: KindBool}
	if v {
		a.Int = 1
	}
	return a
}

// Value returns the attribute's value for generic consumers (JSON).
func (a Attr) Value() any {
	switch a.Kind {
	case KindInt:
		return a.Int
	case KindFloat:
		return a.Float
	case KindString:
		return a.Str
	default:
		return a.Int != 0
	}
}

// RecordKind tags a Record.
type RecordKind string

const (
	RecSpanStart RecordKind = "span_start"
	RecSpanEnd   RecordKind = "span_end"
	RecEvent     RecordKind = "event"
	RecCounter   RecordKind = "counter"
	RecGauge     RecordKind = "gauge"
)

// Record is the unit of telemetry delivered to sinks. Span and Parent
// are tracer-unique span IDs (Parent 0 = root). Value carries counter
// deltas and gauge readings.
type Record struct {
	Kind   RecordKind
	Time   time.Time
	Span   uint64
	Parent uint64
	Name   string
	Dur    time.Duration
	Value  float64
	Attrs  []Attr
}

// Sink consumes telemetry records. Emit may be called from multiple
// goroutines; implementations synchronize internally. Records and their
// Attrs must not be retained mutably past the call unless copied —
// MemorySink copies, streaming sinks serialize immediately.
type Sink interface {
	Emit(r *Record)
}

// SinkFunc adapts a function to the Sink interface (test hooks,
// cancellation triggers).
type SinkFunc func(r *Record)

// Emit calls f.
func (f SinkFunc) Emit(r *Record) { f(r) }

// Tracer fans records out to its sinks. The nil *Tracer is the no-op
// tracer: Start returns a nil span and everything downstream vanishes.
type Tracer struct {
	sinks  []Sink
	nextID atomic.Uint64
}

// New builds a tracer over the given sinks. With no sinks it returns
// nil — the no-op tracer — so callers can write
// obs.New(maybeSinks()...) without guarding.
func New(sinks ...Sink) *Tracer {
	if len(sinks) == 0 {
		return nil
	}
	return &Tracer{sinks: sinks}
}

func (t *Tracer) emit(r *Record) {
	for _, s := range t.sinks {
		s.Emit(r)
	}
}

// Span is one node of the trace hierarchy. The nil *Span is a no-op.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
}

// Start opens a root span. Nil-safe.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.startSpan(0, name, attrs)
}

// cloneAttrs copies the caller's (possibly stack-allocated) variadic
// attr slice into the record. Reading values without retaining the
// parameter keeps instrumentation call sites allocation-free when the
// tracer is nil — the whole point of the nil-safe design.
func cloneAttrs(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	cp := make([]Attr, len(attrs))
	copy(cp, attrs)
	return cp
}

func (t *Tracer) startSpan(parent uint64, name string, attrs []Attr) *Span {
	sp := &Span{t: t, id: t.nextID.Add(1), parent: parent, name: name, start: time.Now()}
	t.emit(&Record{Kind: RecSpanStart, Time: sp.start, Span: sp.id, Parent: parent, Name: name, Attrs: cloneAttrs(attrs)})
	return sp
}

// Child opens a sub-span. Nil-safe.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(s.id, name, attrs)
}

// End closes the span, attaching final attributes (stage statistics are
// usually only known at the end). Nil-safe; ending twice emits twice —
// don't.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	s.endSlow(attrs)
}

func (s *Span) endSlow(attrs []Attr) {
	now := time.Now()
	s.t.emit(&Record{Kind: RecSpanEnd, Time: now, Span: s.id, Parent: s.parent,
		Name: s.name, Dur: now.Sub(s.start), Attrs: cloneAttrs(attrs)})
}

// Event emits a point-in-time annotation under the span. Nil-safe.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.eventSlow(name, attrs)
}

func (s *Span) eventSlow(name string, attrs []Attr) {
	s.t.emit(&Record{Kind: RecEvent, Time: time.Now(), Span: s.id, Parent: s.parent,
		Name: name, Attrs: cloneAttrs(attrs)})
}

// Count emits a named counter increment under the span. Nil-safe.
func (s *Span) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.t.emit(&Record{Kind: RecCounter, Time: time.Now(), Span: s.id, Parent: s.parent,
		Name: name, Value: float64(delta)})
}

// Gauge emits a named instantaneous reading under the span. Nil-safe.
func (s *Span) Gauge(name string, v float64) {
	if s == nil {
		return
	}
	s.t.emit(&Record{Kind: RecGauge, Time: time.Now(), Span: s.id, Parent: s.parent,
		Name: name, Value: v})
}

// Name returns the span's name ("" for the nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

type spanCtxKey struct{}

// ContextWithSpan threads a span through a context so downstream stages
// can hang their own children under it. A nil span yields ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom extracts the current span from a context (nil when absent or
// when ctx is nil), giving the nil-safe no-op span.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
