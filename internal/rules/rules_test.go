package rules

import (
	"testing"
	"testing/quick"

	"bonnroute/internal/geom"
)

func testDeck() *Deck {
	return DefaultDeck(DeckParams{NumLayers: 6, Pitch: 40})
}

func TestDefaultDeckShape(t *testing.T) {
	d := testDeck()
	if d.NumWiringLayers() != 6 {
		t.Fatalf("layers = %d", d.NumWiringLayers())
	}
	if len(d.ViaLayers) != 5 {
		t.Fatalf("via layers = %d", len(d.ViaLayers))
	}
	for z, lr := range d.Layers {
		if lr.MinWidth <= 0 || lr.Pitch <= lr.MinWidth {
			t.Errorf("layer %d: width %d pitch %d", z, lr.MinWidth, lr.Pitch)
		}
		if lr.Spacing[0].WidthAtLeast != 0 || lr.Spacing[0].RunLengthAtLeast != 0 {
			t.Errorf("layer %d: first spacing rule must be unconditional", z)
		}
		if lr.MinArea <= 0 || lr.MinSegLen <= 0 || lr.MinEdge <= 0 {
			t.Errorf("layer %d: same-net rules not set", z)
		}
	}
	// Upper layers are coarser.
	if d.Layers[5].Pitch <= d.Layers[0].Pitch {
		t.Errorf("expected thicker upper metal")
	}
}

func TestDefaultDeckPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for <2 layers")
		}
	}()
	DefaultDeck(DeckParams{NumLayers: 1})
}

func TestSpacingMonotone(t *testing.T) {
	d := testDeck()
	// Spacing must be nondecreasing in width and run-length (paper §3.1).
	f := func(w1, w2, rl1, rl2 uint16) bool {
		wA, wB := int(w1%200), int(w2%200)
		rA, rB := int(rl1%2000), int(rl2%2000)
		if wA > wB {
			wA, wB = wB, wA
		}
		if rA > rB {
			rA, rB = rB, rA
		}
		sA := d.Spacing(0, ClassStandard, ClassStandard, wA, wA, rA)
		sB := d.Spacing(0, ClassStandard, ClassStandard, wB, wB, rB)
		return sA <= sB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpacingRules(t *testing.T) {
	d := testDeck()
	lr := d.Layers[0]
	base := lr.Spacing[0].Spacing
	// Minimum-width short-run wires get base spacing.
	if got := d.Spacing(0, ClassStandard, ClassStandard, lr.MinWidth, lr.MinWidth, 0); got != base {
		t.Errorf("base spacing = %d, want %d", got, base)
	}
	// Negative run-length (disjoint projections) also gets base spacing.
	if got := d.Spacing(0, ClassStandard, ClassStandard, lr.MinWidth, lr.MinWidth, -5); got != base {
		t.Errorf("negative-runlength spacing = %d, want %d", got, base)
	}
	// Wide parallel wires get the wide rule.
	wide := d.Spacing(0, ClassStandard, ClassStandard, 2*lr.MinWidth, 2*lr.MinWidth, lr.Pitch)
	if wide != base*3/2 {
		t.Errorf("wide spacing = %d, want %d", wide, base*3/2)
	}
	// A wide and a narrow shape: the narrower limits the width rule, but
	// the class multiplier still applies.
	mixed := d.Spacing(0, ClassWide, ClassStandard, 2*lr.MinWidth, lr.MinWidth, lr.Pitch)
	if mixed != (base*125+99)/100 {
		t.Errorf("mixed class spacing = %d, want %d", mixed, (base*125+99)/100)
	}
	// Minimum-width wires are exempt from run-length escalation: tracks
	// at minimum pitch stay legal for arbitrarily long parallel wires.
	long := d.Spacing(0, ClassStandard, ClassStandard, lr.MinWidth, lr.MinWidth, 100*lr.Pitch)
	if long != base {
		t.Errorf("long-run min-width spacing = %d, want %d", long, base)
	}
	// Very long parallel wide runs escalate beyond the wide rule.
	vlong := d.Spacing(0, ClassStandard, ClassStandard, 2*lr.MinWidth, 2*lr.MinWidth, 20*lr.Pitch)
	if vlong != base*7/4 {
		t.Errorf("very-long wide spacing = %d, want %d", vlong, base*7/4)
	}
}

func TestMaxSpacing(t *testing.T) {
	d := testDeck()
	for z := range d.Layers {
		ms := d.MaxSpacing(z)
		for _, r := range d.Layers[z].Spacing {
			if r.Spacing > ms {
				t.Errorf("layer %d: MaxSpacing %d below table entry %d", z, ms, r.Spacing)
			}
		}
		// With 150% class multiplier the bound must cover it.
		worst := d.Spacing(z, ClassWide, ClassWide, 1000, 1000, 100000)
		if worst > ms {
			t.Errorf("layer %d: MaxSpacing %d below worst case %d", z, ms, worst)
		}
	}
}

func TestClassMultDefaults(t *testing.T) {
	d := testDeck()
	// Unset pairs default to 100%.
	a := d.Spacing(0, ClassViaPad, ClassViaPad, 20, 20, 0)
	b := d.Spacing(0, ClassStandard, ClassStandard, 20, 20, 0)
	if a != b {
		t.Errorf("unset class pair must use 100%%: %d vs %d", a, b)
	}
	d.SetClassMult(ClassViaPad, ClassViaPad, 200)
	if got := d.Spacing(0, ClassViaPad, ClassViaPad, 20, 20, 0); got != 2*b {
		t.Errorf("after SetClassMult: %d, want %d", got, 2*b)
	}
	// Symmetry.
	if d.Spacing(0, ClassStandard, ClassWide, 20, 20, 0) != d.Spacing(0, ClassWide, ClassStandard, 20, 20, 0) {
		t.Error("class multiplier must be symmetric")
	}
}

func TestWireModelMetal(t *testing.T) {
	d := testDeck()
	wt := d.StandardWireType()
	hw := d.Layers[0].MinWidth / 2
	ext := d.Layers[0].LineEndSpacing

	// Horizontal stick on a horizontal layer: preferred model with
	// line-end extension baked in.
	m := wt.Oriented(0, geom.Horizontal, geom.Horizontal)
	metal := m.Metal(geom.Pt(100, 50), geom.Pt(200, 50))
	want := geom.Rect{XMin: 100 - hw - ext, YMin: 50 - hw, XMax: 200 + hw + ext, YMax: 50 + hw}
	if metal != want {
		t.Errorf("pref metal = %v, want %v", metal, want)
	}

	// Vertical stick on a horizontal layer: jog model, no extension.
	j := wt.Oriented(0, geom.Vertical, geom.Horizontal)
	metal = j.Metal(geom.Pt(100, 50), geom.Pt(100, 90))
	want = geom.Rect{XMin: 100 - hw, YMin: 50 - hw, XMax: 100 + hw, YMax: 90 + hw}
	if metal != want {
		t.Errorf("jog metal = %v, want %v", metal, want)
	}

	// Vertical stick on a vertical layer: preferred model, extension in y.
	v := wt.Oriented(1, geom.Vertical, geom.Vertical)
	metal = v.Metal(geom.Pt(100, 50), geom.Pt(100, 90))
	want = geom.Rect{XMin: 100 - hw, YMin: 50 - hw - ext, XMax: 100 + hw, YMax: 90 + hw + ext}
	if metal != want {
		t.Errorf("vertical pref metal = %v, want %v", metal, want)
	}
}

// TestFigure2LineEndPolicy reproduces the policy of paper Fig. 2: wires in
// preferred direction are pessimistically extended (assumed line-ends),
// jogs are not. The consequence tested: a preferred wire followed by a
// continuation wire has its extension contained in the continuation (no
// extra space consumed), while a bare line-end does consume the extension.
func TestFigure2LineEndPolicy(t *testing.T) {
	d := testDeck()
	wt := d.StandardWireType()
	pref := wt.Oriented(0, geom.Horizontal, geom.Horizontal)
	jog := wt.Oriented(0, geom.Vertical, geom.Horizontal)

	// Two collinear abutting wires: extension of the first lies inside the
	// metal of the second.
	w1 := pref.Metal(geom.Pt(0, 0), geom.Pt(100, 0))
	w2 := pref.Metal(geom.Pt(100, 0), geom.Pt(200, 0))
	extension := geom.Rect{XMin: 100, YMin: w1.YMin, XMax: w1.XMax, YMax: w1.YMax}
	if !w2.ContainsRect(extension) {
		t.Errorf("continuation must cover line-end extension: ext %v, w2 %v", extension, w2)
	}

	// The jog model must be strictly smaller along its stick than the
	// preferred model is along its own (no line-end pessimism on jogs).
	prefLen := pref.Shape.W()
	jogLen := jog.Shape.H()
	if jogLen >= prefLen {
		t.Errorf("jog endcap %d must be smaller than pref endcap %d", jogLen, prefLen)
	}
	// And a jog must not reach a neighboring track: its half-extent
	// orthogonal to the track is under one pitch.
	if jog.Shape.W()/2 >= d.Layers[0].Pitch {
		t.Error("jog interferes with neighboring track")
	}
}

func TestViaModelOrientation(t *testing.T) {
	d := testDeck()
	wt := d.StandardWireType()
	for v := range wt.Vias {
		m := wt.Via(v, geom.Horizontal)
		// Bottom pad elongated along bottom (horizontal) layer.
		if m.Bot.W() <= m.Bot.H() {
			t.Errorf("via %d: bottom pad not elongated horizontally: %v", v, m.Bot)
		}
		if m.Top.H() <= m.Top.W() {
			t.Errorf("via %d: top pad not elongated vertically: %v", v, m.Top)
		}
		// Cut must be inside both pads.
		if !m.Bot.ContainsRect(m.Cut) || !m.Top.ContainsRect(m.Cut) {
			t.Errorf("via %d: cut not enclosed: %+v", v, m)
		}
		// Swapped orientation transposes the pads.
		s := wt.Via(v, geom.Vertical)
		if s.Bot.W() != m.Bot.H() || s.Bot.H() != m.Bot.W() {
			t.Errorf("via %d: vertical orientation must transpose bottom pad", v)
		}
		if s.Cut != m.Cut {
			t.Errorf("via %d: square cut must be invariant", v)
		}
	}
}

func TestWideWireType(t *testing.T) {
	d := testDeck()
	std := d.StandardWireType()
	wide := d.WideWireType(2)
	if wide.Pref[0].Class != ClassWide {
		t.Errorf("2x wire type must be ClassWide, got %v", wide.Pref[0].Class)
	}
	if wide.Pref[0].HalfWidth() != 2*std.Pref[0].HalfWidth() {
		t.Errorf("2x half-width = %d, want %d", wide.Pref[0].HalfWidth(), 2*std.Pref[0].HalfWidth())
	}
	// factor < 1 clamps to standard.
	if d.WideWireType(0).Pref[0].HalfWidth() != std.Pref[0].HalfWidth() {
		t.Error("factor 0 must clamp to 1")
	}
	if d.WideWireType(1).Pref[0].Class != ClassStandard {
		t.Error("1x remains standard class")
	}
}

func TestShapeClassString(t *testing.T) {
	for c := ShapeClass(0); c < NumShapeClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
	if ShapeClass(99).String() != "class(99)" {
		t.Errorf("unknown class name: %s", ShapeClass(99))
	}
}
