// Package rules models the design-rule content of BonnRoute: wire and via
// models mapping one-dimensional stick figures to metal shapes (paper
// §3.2), diff-net minimum-distance rules as nondecreasing functions of
// width and common run-length (§3.1) including the line-end extension
// policy, inter-layer via rules, and the same-net rule families (notch,
// short-edge, minimum-area, minimum segment length; §3.7).
//
// A Deck bundles the rules of one technology. Decks here are synthetic
// (the paper's foundry decks are proprietary) but structurally identical:
// every rule family the paper discusses is present and exercised.
package rules

import (
	"fmt"

	"bonnroute/internal/geom"
)

// ShapeClass indexes a row/column of the spacing matrix. Two shapes'
// required spacing depends on their classes plus width and run-length.
// Classes let one rule deck distinguish e.g. standard wires from wide
// wires or via pads without enumerating geometry.
type ShapeClass uint8

const (
	// ClassStandard is a minimum-width wire shape.
	ClassStandard ShapeClass = iota
	// ClassWide is a wire shape of at least double width.
	ClassWide
	// ClassViaPad is the landing pad of a via in a wiring layer.
	ClassViaPad
	// ClassViaCut is the cut shape in a via layer.
	ClassViaCut
	// ClassBlockage is fixed blockage metal (power rails, macros).
	ClassBlockage
	// ClassViaProj is the projection of a via cut into the next higher
	// via layer, used to check inter-layer via rules within one layer
	// (paper §3.2).
	ClassViaProj
	// NumShapeClasses is the number of defined classes.
	NumShapeClasses
)

func (c ShapeClass) String() string {
	switch c {
	case ClassStandard:
		return "standard"
	case ClassWide:
		return "wide"
	case ClassViaPad:
		return "viapad"
	case ClassViaCut:
		return "viacut"
	case ClassBlockage:
		return "blockage"
	case ClassViaProj:
		return "viaproj"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// WireModel maps a stick figure to metal: the metal shape of a wire is the
// Minkowski sum of the stick figure with Shape (paper §3.2). Class
// selects the spacing rules the resulting shape is checked against.
type WireModel struct {
	// Shape is the rectangle swept along the stick figure. For a
	// horizontal wire of width w with end extension e this is
	// [-e, -w/2, e, w/2].
	Shape geom.Rect
	// Class is the shape class of the produced metal.
	Class ShapeClass
}

// Metal returns the metal shape of a stick figure from a to b under m.
func (m WireModel) Metal(a, b geom.Point) geom.Rect {
	return geom.MinkowskiSeg(m.Shape, a, b)
}

// HalfWidth returns half the wire width orthogonal to a horizontal stick.
// Models are symmetric in this implementation, so this is YMax.
func (m WireModel) HalfWidth() int { return m.Shape.YMax }

// ViaModel describes a via: pads in the two adjacent wiring layers, the
// cut in the via layer in between, and (when an inter-layer via rule
// applies) the projection of the cut into the next higher via layer so
// that via-to-via rules can be checked within a single layer (§3.2).
type ViaModel struct {
	Bot, Cut, Top geom.Rect
	BotClass      ShapeClass
	CutClass      ShapeClass
	TopClass      ShapeClass
	// HasProjection indicates an inter-layer via rule applies; the cut is
	// then also registered (as Cut translated) one via layer up.
	HasProjection bool
}

// WireType maps wiring layers to wire models for preferred and
// non-preferred direction, and via layers to via models (§3.2). All
// wires and vias of a net are represented by stick figures plus a
// WireType, which supports nonstandard widths and spacings per layer.
type WireType struct {
	// Name identifies the wire type in reports.
	Name string
	// Pref[z] and NonPref[z] are the wire models on wiring layer z.
	Pref, NonPref []WireModel
	// Vias[v] is the via model for via layer v (between wiring layers v
	// and v+1).
	Vias []ViaModel
}

// SpacingRule is one entry of a diff-net minimum-distance table: it
// applies when both shapes have width ≥ WidthAtLeast and common
// run-length ≥ RunLengthAtLeast, and then requires Spacing.
type SpacingRule struct {
	WidthAtLeast     int
	RunLengthAtLeast int // may be 0 (always applies) or >0 (parallel only)
	Spacing          int
}

// LayerRules bundles per-layer design rules.
type LayerRules struct {
	// Pitch is the minimum wiring pitch: minimum wire width plus minimum
	// same-class spacing. Routing tracks are placed at this pitch.
	Pitch int
	// MinWidth is the minimum legal wire width.
	MinWidth int
	// Spacing is the width/run-length spacing table, sorted by
	// (WidthAtLeast, RunLengthAtLeast). The largest applicable entry
	// wins; entry 0 must have WidthAtLeast == 0 && RunLengthAtLeast == 0.
	Spacing []SpacingRule
	// LineEndSpacing is the extra extension assumed at wire line-ends in
	// preferred direction (§3.1): BonnRoute pessimistically extends every
	// preferred-direction wire shape by this amount at both ends, and
	// optimistically does not extend jogs.
	LineEndSpacing int
	// Same-net rules (§3.7):
	// MinArea is the minimum metal polygon area.
	MinArea int64
	// MinEdge is the short-edge rule: of any two adjacent boundary
	// edges, at least one must be at least this long.
	MinEdge int
	// NotchSpacing is the minimum distance between non-adjacent segments
	// of the same net (a notch narrower than this is illegal).
	NotchSpacing int
	// MinSegLen is τ, the minimum length of any wire segment; off-track
	// path search enforces it via the blockage grid (§3.8).
	MinSegLen int
}

// ViaLayerRules bundles per-via-layer rules.
type ViaLayerRules struct {
	// CutSpacing is the minimum distance between via cuts in this layer.
	CutSpacing int
	// InterLayerSpacing is the minimum distance between cuts of this
	// layer and cuts of the layer below (checked via projections); 0
	// disables the rule.
	InterLayerSpacing int
}

// Deck is a complete synthetic rule deck for a layer stack.
type Deck struct {
	// Layers[z] are the rules of wiring layer z.
	Layers []LayerRules
	// ViaLayers[v] are the rules of via layer v (between z=v and z=v+1).
	ViaLayers []ViaLayerRules
	// classMult[a][b] scales table spacing between classes a and b in
	// percent (100 = unchanged). Wide and blockage shapes demand more.
	classMult [NumShapeClasses][NumShapeClasses]int
}

// NumWiringLayers returns the number of wiring layers in the deck.
func (d *Deck) NumWiringLayers() int { return len(d.Layers) }

// Spacing returns the required minimum ℓ2 distance between two shapes on
// wiring layer z given their classes, widths and common run-length
// (the maximum of run-lengths in x and y). It is nondecreasing in width
// and run-length as the paper requires.
func (d *Deck) Spacing(z int, ca, cb ShapeClass, widthA, widthB, runLength int) int {
	lr := &d.Layers[z]
	w := min(widthA, widthB) // the narrower shape limits which width rows apply
	base := 0
	for _, r := range lr.Spacing {
		// A RunLengthAtLeast of 0 means the rule is unconditional in
		// run-length and applies even to shapes with disjoint projections
		// (negative run-length).
		if w >= r.WidthAtLeast && (r.RunLengthAtLeast == 0 || runLength >= r.RunLengthAtLeast) {
			if r.Spacing > base {
				base = r.Spacing
			}
		}
	}
	m := d.classMult[ca][cb]
	if m == 0 {
		m = 100
	}
	return (base*m + 99) / 100
}

// MaxSpacing returns an upper bound on any spacing this deck can demand on
// wiring layer z; query windows are expanded by this margin.
func (d *Deck) MaxSpacing(z int) int {
	lr := &d.Layers[z]
	maxBase := 0
	for _, r := range lr.Spacing {
		if r.Spacing > maxBase {
			maxBase = r.Spacing
		}
	}
	maxMult := 100
	for a := 0; a < int(NumShapeClasses); a++ {
		for b := 0; b < int(NumShapeClasses); b++ {
			if d.classMult[a][b] > maxMult {
				maxMult = d.classMult[a][b]
			}
		}
	}
	s := (maxBase*maxMult + 99) / 100
	if lr.LineEndSpacing > s {
		s = lr.LineEndSpacing
	}
	return s
}

// SetClassMult sets the symmetric spacing multiplier (percent) between two
// shape classes.
func (d *Deck) SetClassMult(a, b ShapeClass, percent int) {
	d.classMult[a][b] = percent
	d.classMult[b][a] = percent
}

// DeckParams parameterize the synthetic deck generator.
type DeckParams struct {
	// NumLayers is the number of wiring layers (≥ 2).
	NumLayers int
	// Pitch is the minimum pitch on the lowest layers; upper layers get
	// progressively coarser pitch (as in real stacks).
	Pitch int
	// WidthFraction is wire width as fraction of pitch in percent
	// (typically 50: width == spacing == pitch/2).
	WidthFraction int
}

// DefaultDeck builds the synthetic rule deck used across tests, examples
// and benchmarks. With Pitch=40 it loosely resembles a 22 nm metal stack
// expressed in half-nanometer DBU, but nothing downstream depends on the
// absolute scale.
func DefaultDeck(p DeckParams) *Deck {
	if p.NumLayers < 2 {
		panic("rules: DefaultDeck requires at least 2 wiring layers")
	}
	if p.Pitch <= 0 {
		p.Pitch = 40
	}
	if p.WidthFraction <= 0 {
		p.WidthFraction = 50
	}
	d := &Deck{}
	for z := 0; z < p.NumLayers; z++ {
		pitch := p.Pitch
		if z >= 4 {
			pitch *= 2 // thick upper metal
		}
		w := pitch * p.WidthFraction / 100
		s := pitch - w
		d.Layers = append(d.Layers, LayerRules{
			Pitch:    pitch,
			MinWidth: w,
			Spacing: []SpacingRule{
				{WidthAtLeast: 0, RunLengthAtLeast: 0, Spacing: s},
				// Wide-wire rule: shapes at least double width need 1.5×
				// spacing when running in parallel beyond one pitch.
				{WidthAtLeast: 2 * w, RunLengthAtLeast: pitch, Spacing: s * 3 / 2},
				// Very long parallel runs of wide shapes need still more.
				// (Minimum-width wires are exempt: tracks at minimum pitch
				// must remain legal for arbitrarily long parallel wires.)
				{WidthAtLeast: 2 * w, RunLengthAtLeast: 20 * pitch, Spacing: s * 7 / 4},
			},
			LineEndSpacing: s / 2,
			MinArea:        int64(w) * int64(3*w),
			MinEdge:        w,
			NotchSpacing:   s,
			MinSegLen:      2 * w,
		})
	}
	for v := 0; v+1 < p.NumLayers; v++ {
		cutSp := d.Layers[v].Pitch - d.Layers[v].MinWidth
		d.ViaLayers = append(d.ViaLayers, ViaLayerRules{
			CutSpacing:        cutSp,
			InterLayerSpacing: cutSp / 2,
		})
	}
	d.SetClassMult(ClassWide, ClassStandard, 125)
	d.SetClassMult(ClassWide, ClassWide, 150)
	d.SetClassMult(ClassBlockage, ClassStandard, 100)
	return d
}

// StandardWireType returns the minimum-width wire type for the deck: on
// every wiring layer the preferred-direction model already includes the
// pessimistic line-end extension (§3.1), while the non-preferred (jog)
// model optimistically does not.
func (d *Deck) StandardWireType() *WireType {
	return d.makeWireType("standard", 1, ClassStandard)
}

// WideWireType returns a wire type with width multiplied by factor
// (factor ≥ 2 shapes are classed wide and demand larger spacing). Such
// types model the paper's timing-critical nets with nonstandard widths.
func (d *Deck) WideWireType(factor int) *WireType {
	if factor < 1 {
		factor = 1
	}
	class := ClassStandard
	if factor >= 2 {
		class = ClassWide
	}
	return d.makeWireType(fmt.Sprintf("wide%dx", factor), factor, class)
}

func (d *Deck) makeWireType(name string, widthFactor int, class ShapeClass) *WireType {
	wt := &WireType{Name: name}
	for z := range d.Layers {
		lr := &d.Layers[z]
		hw := lr.MinWidth * widthFactor / 2
		ext := lr.LineEndSpacing
		// Preferred-direction model for a horizontal stick: half-width in
		// y, end extension (pessimistic line-end) in x. The caller
		// orients it; models are stored in canonical horizontal form and
		// transposed by Oriented.
		wt.Pref = append(wt.Pref, WireModel{
			Shape: geom.Rect{XMin: -ext - hw, YMin: -hw, XMax: ext + hw, YMax: hw},
			Class: class,
		})
		// Jog model: no line-end extension (optimistic, §3.1/Fig. 2).
		wt.NonPref = append(wt.NonPref, WireModel{
			Shape: geom.Rect{XMin: -hw, YMin: -hw, XMax: hw, YMax: hw},
			Class: class,
		})
	}
	for v := 0; v+1 < len(d.Layers); v++ {
		lo, hi := &d.Layers[v], &d.Layers[v+1]
		hwB := lo.MinWidth * widthFactor / 2
		hwT := hi.MinWidth * widthFactor / 2
		cut := min(hwB, hwT)
		padB := hwB + lo.MinWidth/2
		padT := hwT + hi.MinWidth/2
		wt.Vias = append(wt.Vias, ViaModel{
			Bot:           geom.Rect{XMin: -padB, YMin: -hwB, XMax: padB, YMax: hwB},
			Cut:           geom.Rect{XMin: -cut, YMin: -cut, XMax: cut, YMax: cut},
			Top:           geom.Rect{XMin: -hwT, YMin: -padT, XMax: hwT, YMax: padT},
			BotClass:      ClassViaPad,
			CutClass:      ClassViaCut,
			TopClass:      ClassViaPad,
			HasProjection: d.ViaLayers[v].InterLayerSpacing > 0,
		})
	}
	return wt
}

// Via returns the via model for via layer v oriented for a stack whose
// bottom wiring layer has preferred direction botPref. Models are stored
// for a horizontal bottom layer (pads elongated along their layer's
// preferred direction); a vertical bottom layer swaps the elongations.
func (wt *WireType) Via(v int, botPref geom.Direction) ViaModel {
	m := wt.Vias[v]
	if botPref == geom.Vertical {
		m.Bot = transpose(m.Bot)
		m.Top = transpose(m.Top)
	}
	return m
}

// Oriented returns the wire model of wt for wiring layer z when the stick
// runs in direction dir and the layer's preferred direction is pref.
// Models are stored for horizontal sticks; a vertical stick transposes
// the shape.
func (wt *WireType) Oriented(z int, dir, pref geom.Direction) WireModel {
	var m WireModel
	if dir == pref {
		m = wt.Pref[z]
	} else {
		m = wt.NonPref[z]
	}
	if dir == geom.Vertical {
		m.Shape = transpose(m.Shape)
	}
	return m
}

func transpose(r geom.Rect) geom.Rect {
	return geom.Rect{XMin: r.YMin, YMin: r.XMin, XMax: r.YMax, YMax: r.XMax}
}
