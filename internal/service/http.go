package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bonnroute"
	"bonnroute/internal/obs"
)

// ChipWire is the JSON form of the synthetic chip parameters a session
// is created from (chip.GenParams; zero fields take that type's
// defaults).
type ChipWire struct {
	Name              string `json:"name,omitempty"`
	Seed              int64  `json:"seed,omitempty"`
	Rows              int    `json:"rows,omitempty"`
	Cols              int    `json:"cols,omitempty"`
	NumLayers         int    `json:"num_layers,omitempty"`
	Pitch             int    `json:"pitch,omitempty"`
	NumNets           int    `json:"num_nets,omitempty"`
	MaxDegree         int    `json:"max_degree,omitempty"`
	Utilization       int    `json:"utilization,omitempty"`
	LocalityRadius    int    `json:"locality_radius,omitempty"`
	PowerStripePeriod int    `json:"power_stripe_period,omitempty"`
	WideNetPct        int    `json:"wide_net_pct,omitempty"`
	CriticalPct       int    `json:"critical_pct,omitempty"`
}

func (c ChipWire) params() bonnroute.ChipParams {
	return bonnroute.ChipParams{
		Name: c.Name, Seed: c.Seed, Rows: c.Rows, Cols: c.Cols,
		NumLayers: c.NumLayers, Pitch: c.Pitch, NumNets: c.NumNets,
		MaxDegree: c.MaxDegree, Utilization: c.Utilization,
		LocalityRadius: c.LocalityRadius, PowerStripePeriod: c.PowerStripePeriod,
		WideNetPct: c.WideNetPct, CriticalPct: c.CriticalPct,
	}
}

// OptionsWire is the JSON form of the routing options pinned by a
// session (core.Options minus the tracer; zero fields take defaults).
type OptionsWire struct {
	Seed         int64   `json:"seed,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	GlobalPhases int     `json:"global_phases,omitempty"`
	TileTracks   int     `json:"tile_tracks,omitempty"`
	PowerCap     float64 `json:"power_cap,omitempty"`
	SkipGlobal   bool    `json:"skip_global,omitempty"`
	UsePFuture   bool    `json:"use_pfuture,omitempty"`
	// FutureMode selects the detailed-routing future-cost family:
	// 0 legacy π_H, 1 per-net auto (reduced-graph π_R for large nets),
	// 2 always reduced-graph.
	FutureMode   int     `json:"future_mode,omitempty"`
	EcoThreshold float64 `json:"eco_threshold,omitempty"`
	// ExactSteinerMax is the net-degree threshold for the exact
	// goal-oriented Steiner oracle in global routing (0 = default 9,
	// negative = Path Composition only).
	ExactSteinerMax int `json:"exact_steiner_max,omitempty"`
}

func (o OptionsWire) toOptions() bonnroute.Options {
	return bonnroute.Options{
		Seed: o.Seed, Workers: o.Workers, GlobalPhases: o.GlobalPhases,
		TileTracks: o.TileTracks, PowerCap: o.PowerCap,
		SkipGlobal: o.SkipGlobal, UsePFuture: o.UsePFuture,
		FutureMode:      bonnroute.FutureMode(o.FutureMode),
		EcoThreshold:    o.EcoThreshold,
		ExactSteinerMax: o.ExactSteinerMax,
	}
}

type createRequest struct {
	// Name identifies the session; empty auto-assigns s1, s2, ...
	Name    string      `json:"name,omitempty"`
	Chip    ChipWire    `json:"chip"`
	Options OptionsWire `json:"options,omitempty"`
	// Stream switches the response to a server-sent-events progress
	// stream (also triggered by Accept: text/event-stream).
	Stream bool `json:"stream,omitempty"`
	// TimeoutMS bounds the routing flow; 0 means no server-side bound
	// (the request context still applies).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

type createResponse struct {
	Name       string                  `json:"name"`
	Generation uint64                  `json:"generation"`
	Summary    bonnroute.ResultSummary `json:"summary"`
	// DroppedTraceRecords counts progress records the SSE buffer shed
	// because the client read too slowly (streaming creates only).
	DroppedTraceRecords int64 `json:"dropped_trace_records,omitempty"`
}

type rerouteRequest struct {
	// FromGeneration is the optimistic concurrency token: the result
	// generation the delta was built against. Non-zero and stale →
	// 409 with the current generation; 0 skips the check.
	FromGeneration uint64          `json:"from_generation,omitempty"`
	Delta          bonnroute.Delta `json:"delta"`
	TimeoutMS      int             `json:"timeout_ms,omitempty"`
}

type rerouteResponse struct {
	Generation uint64                  `json:"generation"`
	NoOp       bool                    `json:"no_op,omitempty"`
	Eco        *bonnroute.EcoStats     `json:"eco,omitempty"`
	Summary    bonnroute.ResultSummary `json:"summary"`
}

type assessRequest struct {
	Delta bonnroute.Delta `json:"delta"`
}

type resultResponse struct {
	Name       string                  `json:"name"`
	Generation uint64                  `json:"generation"`
	Summary    bonnroute.ResultSummary `json:"summary"`
	Eco        *bonnroute.EcoStats     `json:"eco,omitempty"`
}

type sessionMeta struct {
	Name       string `json:"name"`
	Generation uint64 `json:"generation"`
	Nets       int    `json:"nets"`
	Creating   bool   `json:"creating,omitempty"`
}

type errorResponse struct {
	Error      string `json:"error"`
	Generation uint64 `json:"generation,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("GET /sessions/{name}", s.handleMeta)
	mux.HandleFunc("GET /sessions/{name}/result", s.handleResult)
	mux.HandleFunc("POST /sessions/{name}/reroute", s.handleReroute)
	mux.HandleFunc("POST /sessions/{name}/assess", s.handleAssess)
	mux.HandleFunc("DELETE /sessions/{name}", s.handleDelete)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.isClosed() {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"sessions": len(s.names()),
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var metas []sessionMeta
	for _, name := range s.names() {
		if ss := s.lookup(name); ss != nil {
			metas = append(metas, ss.meta())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": metas})
}

func (ss *session) meta() sessionMeta {
	m := sessionMeta{Name: ss.name}
	if sess := ss.sess.Load(); sess != nil {
		res, _, gen := sess.Snapshot()
		m.Generation = gen
		m.Nets = len(res.Chip.Nets)
	} else {
		m.Creating = true
	}
	return m
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(r.PathValue("name"))
	if ss == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, ss.meta())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(r.PathValue("name"))
	if ss == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	sess := ss.sess.Load()
	if sess == nil {
		writeError(w, http.StatusConflict, "session still being created")
		return
	}
	res, eco, gen := sess.Snapshot()
	writeJSON(w, http.StatusOK, resultResponse{
		Name: ss.name, Generation: gen,
		Summary: bonnroute.Summarize(res), Eco: eco,
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.sessions[name]
	delete(s.sessions, name)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func validSessionName(n string) bool {
	return n != "" && len(n) <= 128 && !strings.ContainsAny(n, "/ \t\n")
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Name != "" && !validSessionName(req.Name) {
		writeError(w, http.StatusBadRequest, "bad session name")
		return
	}

	// Reserve the name before routing so a concurrent create of the
	// same name conflicts now, not after minutes of routing.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	name := req.Name
	if name == "" {
		for {
			s.nextID++
			name = fmt.Sprintf("s%d", s.nextID)
			if _, taken := s.sessions[name]; !taken {
				break
			}
		}
	} else if _, taken := s.sessions[name]; taken {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "session exists")
		return
	}
	ss := &session{name: name}
	s.sessions[name] = ss
	s.mu.Unlock()
	committed := false
	defer func() {
		if !committed {
			s.mu.Lock()
			if s.sessions[name] == ss {
				delete(s.sessions, name)
			}
			s.mu.Unlock()
		}
	}()

	ctx, cancel := s.flowContext(r, req.TimeoutMS)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.writeAdmitError(w, err)
		return
	}
	defer release()
	if s.cfg.BeforeRoute != nil {
		s.cfg.BeforeRoute("create")
	}

	c := bonnroute.GenerateChip(req.Chip.params())
	opt := req.Options.toOptions()

	if req.Stream || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		committed = s.createStreaming(ctx, w, ss, c, opt)
		return
	}

	sess, err := bonnroute.NewSession(ctx, c, bonnroute.WithOptions(opt))
	if err != nil {
		s.writeFlowError(w, err)
		return
	}
	ss.sess.Store(sess)
	committed = true
	res, _, gen := sess.Snapshot()
	writeJSON(w, http.StatusCreated, createResponse{
		Name: name, Generation: gen, Summary: bonnroute.Summarize(res),
	})
}

// createStreaming routes with a streaming tracer attached and renders
// progress as server-sent events: one "trace" event per record (same
// JSON schema as -trace files), then a terminal "done" or "error"
// event. Returns whether the session committed.
func (s *Server) createStreaming(ctx context.Context, w http.ResponseWriter, ss *session, c *bonnroute.Chip, opt bonnroute.Options) bool {
	fl, _ := w.(http.Flusher)
	sink := obs.NewChanSink(s.cfg.StreamBuffer)
	opt.Tracer = obs.New(sink)
	epoch := time.Now()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if fl != nil {
		fl.Flush()
	}

	type outcome struct {
		sess *bonnroute.Session
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		sess, err := bonnroute.NewSession(ctx, c, bonnroute.WithOptions(opt))
		if sess != nil {
			// The streaming sink dies with this request; detach it so
			// later reroutes don't emit into a closed stream.
			sess.SetTracer(nil)
		}
		sink.Close()
		done <- outcome{sess, err}
	}()
	for rec := range sink.Records() {
		data, err := obs.MarshalRecord(&rec, epoch)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "event: trace\ndata: %s\n\n", data)
		if fl != nil {
			fl.Flush()
		}
	}
	out := <-done
	if out.err != nil {
		data, _ := json.Marshal(errorResponse{Error: out.err.Error()})
		fmt.Fprintf(w, "event: error\ndata: %s\n\n", data)
		if fl != nil {
			fl.Flush()
		}
		return false
	}
	ss.sess.Store(out.sess)
	res, _, gen := out.sess.Snapshot()
	data, _ := json.Marshal(createResponse{
		Name: ss.name, Generation: gen, Summary: bonnroute.Summarize(res),
		DroppedTraceRecords: sink.Dropped(),
	})
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
	if fl != nil {
		fl.Flush()
	}
	return true
}

func (s *Server) handleReroute(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(r.PathValue("name"))
	if ss == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	sess := ss.sess.Load()
	if sess == nil {
		writeError(w, http.StatusConflict, "session still being created")
		return
	}
	var req rerouteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if s.isClosed() {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}

	ctx, cancel := s.flowContext(r, req.TimeoutMS)
	defer cancel()

	// FIFO first: concurrent deltas against one session apply in
	// arrival order, each against the previous one's committed result.
	if err := ss.fifo.Acquire(ctx); err != nil {
		s.writeFlowError(w, err)
		return
	}
	defer ss.fifo.Release()

	// Fail stale tokens fast — before burning an admission slot on a
	// reroute that is doomed to be rejected.
	if req.FromGeneration != 0 {
		if gen := sess.Generation(); req.FromGeneration != gen {
			writeJSON(w, http.StatusConflict, errorResponse{
				Error: "stale generation", Generation: gen,
			})
			return
		}
	}

	release, err := s.admit(ctx)
	if err != nil {
		s.writeAdmitError(w, err)
		return
	}
	defer release()
	if s.cfg.BeforeRoute != nil {
		s.cfg.BeforeRoute("reroute")
	}

	res, st, gen, err := sess.RerouteAt(ctx, req.FromGeneration, req.Delta)
	switch {
	case errors.Is(err, bonnroute.ErrStaleGeneration):
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: "stale generation", Generation: gen,
		})
		return
	case errors.Is(err, bonnroute.ErrCancelled):
		s.writeFlowError(w, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rerouteResponse{
		Generation: gen, NoOp: st.NoOp, Eco: st,
		Summary: bonnroute.Summarize(res),
	})
}

func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(r.PathValue("name"))
	if ss == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	if ss.sess.Load() == nil {
		writeError(w, http.StatusConflict, "session still being created")
		return
	}
	var req assessRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	resp, err := ss.assess(req.Delta)
	if err != nil {
		if errors.Is(err, errNoAssessment) {
			writeError(w, http.StatusUnprocessableEntity, err.Error())
		} else {
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeAdmitError maps admission failures: capacity → 429 with a
// Retry-After hint, cancelled-while-queued → timeout, shutdown → 503.
func (s *Server) writeAdmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "at capacity")
	case errors.Is(err, errShutdown):
		writeError(w, http.StatusServiceUnavailable, "shutting down")
	default:
		s.writeFlowError(w, err)
	}
}

// writeFlowError maps a cancelled or timed-out routing flow: server
// shutdown → 503, request deadline → 504. Nothing was committed either
// way.
func (s *Server) writeFlowError(w http.ResponseWriter, err error) {
	if s.baseCtx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	writeError(w, http.StatusGatewayTimeout, "routing cancelled: "+err.Error())
}
