package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bonnroute"
	"bonnroute/internal/verify"
)

// testChip are the synthetic-chip parameters shared by every test; the
// matching local reproduction in the differential test must use the
// same values.
var testChip = ChipWire{Seed: 31, Rows: 4, Cols: 12, NumNets: 28, NumLayers: 4, LocalityRadius: 4}

var tinyChip = ChipWire{Seed: 7, Rows: 3, Cols: 8, NumNets: 12, NumLayers: 3, LocalityRadius: 3}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	Event string
	Data  []byte
}

func parseSSE(t *testing.T, body []byte) []sseEvent {
	t.Helper()
	var events []sseEvent
	for _, block := range strings.Split(string(body), "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			if v, ok := strings.CutPrefix(line, "event: "); ok {
				ev.Event = v
			} else if v, ok := strings.CutPrefix(line, "data: "); ok {
				ev.Data = []byte(v)
			}
		}
		if ev.Event == "" {
			t.Fatalf("SSE block without event: %q", block)
		}
		events = append(events, ev)
	}
	return events
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (network pollers etc. wind down asynchronously).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutine leak: %d > baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// TestServiceEndToEnd walks the whole API surface against a live
// httptest server: plain create, streamed create, concurrent reroutes,
// stale-generation rejection, assessment, deletion, graceful shutdown
// — and asserts no goroutines leak once the server is gone.
func TestServiceEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()
	svc := New(Config{MaxInFlight: 2})
	ts := httptest.NewServer(svc)
	client := ts.Client()

	// Plain create.
	resp, body := postJSON(t, client, ts.URL+"/sessions", createRequest{
		Name: "a", Chip: testChip, Options: OptionsWire{Seed: 31},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var created createResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.Name != "a" || created.Generation != 1 || created.Summary.Nets == 0 {
		t.Fatalf("create response: %+v", created)
	}

	// Duplicate name conflicts.
	resp, _ = postJSON(t, client, ts.URL+"/sessions", createRequest{Name: "a", Chip: tinyChip})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d", resp.StatusCode)
	}

	// Streamed create: trace events followed by a terminal done event.
	resp, body = postJSON(t, client, ts.URL+"/sessions", createRequest{
		Name: "b", Chip: tinyChip, Options: OptionsWire{Seed: 7}, Stream: true,
	})
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("streamed create: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	events := parseSSE(t, body)
	if len(events) < 2 {
		t.Fatalf("streamed create produced %d events", len(events))
	}
	var traces, spanNames = 0, map[string]bool{}
	for _, ev := range events[:len(events)-1] {
		if ev.Event != "trace" {
			t.Fatalf("unexpected event %q mid-stream", ev.Event)
		}
		traces++
		var rec struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(ev.Data, &rec); err != nil {
			t.Fatalf("trace event does not parse: %v: %s", err, ev.Data)
		}
		if rec.Kind == "span_start" {
			spanNames[rec.Name] = true
		}
	}
	if !spanNames["flow.br"] || !spanNames["stage.detail"] {
		t.Fatalf("stream misses flow spans, got %v", spanNames)
	}
	last := events[len(events)-1]
	if last.Event != "done" {
		t.Fatalf("terminal event %q: %s", last.Event, last.Data)
	}
	var streamed createResponse
	if err := json.Unmarshal(last.Data, &streamed); err != nil {
		t.Fatal(err)
	}
	if streamed.Name != "b" || streamed.Generation != 1 {
		t.Fatalf("streamed done: %+v", streamed)
	}

	// Concurrent reroutes serialize and both commit.
	chipA := bonnroute.GenerateChip(testChip.params())
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			delta := bonnroute.RandomDelta(chipA, int64(100+i), bonnroute.EcoGenConfig{})
			resp, body := postJSON(t, client, ts.URL+"/sessions/a/reroute", rerouteRequest{Delta: delta})
			codes[i] = resp.StatusCode
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent reroute %d: %d %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	resp, body = getJSON(t, client, ts.URL+"/sessions/a/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	var result resultResponse
	if err := json.Unmarshal(body, &result); err != nil {
		t.Fatal(err)
	}
	if result.Generation != 3 {
		t.Fatalf("generation after two reroutes = %d, want 3", result.Generation)
	}
	if result.Eco == nil {
		t.Fatal("result misses the last reroute's eco stats")
	}

	// Stale generation token → 409 carrying the current generation.
	delta := bonnroute.RandomDelta(chipA, 200, bonnroute.EcoGenConfig{})
	resp, body = postJSON(t, client, ts.URL+"/sessions/a/reroute", rerouteRequest{
		FromGeneration: 1, Delta: delta,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale reroute: %d %s", resp.StatusCode, body)
	}
	var stale errorResponse
	if err := json.Unmarshal(body, &stale); err != nil {
		t.Fatal(err)
	}
	if stale.Generation != 3 {
		t.Fatalf("stale response generation = %d, want 3", stale.Generation)
	}

	// Assessment answers without routing.
	resp, body = postJSON(t, client, ts.URL+"/sessions/b/assess", assessRequest{
		Delta: bonnroute.RandomDelta(bonnroute.GenerateChip(tinyChip.params()), 5, bonnroute.EcoGenConfig{}),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assess: %d %s", resp.StatusCode, body)
	}
	var assessed AssessResponse
	if err := json.Unmarshal(body, &assessed); err != nil {
		t.Fatal(err)
	}
	if assessed.Generation != 1 || assessed.Before.Edges == 0 || assessed.After.Edges != assessed.Before.Edges {
		t.Fatalf("assess response: %+v", assessed)
	}

	// Listing and deletion.
	resp, body = getJSON(t, client, ts.URL+"/sessions")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"a"`)) || !bytes.Contains(body, []byte(`"b"`)) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/b", nil)
	dresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	if resp, _ := getJSON(t, client, ts.URL+"/sessions/b"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session still answers: %d", resp.StatusCode)
	}

	// Graceful shutdown: new work refused, nothing leaks.
	svc.Close()
	resp, _ = postJSON(t, client, ts.URL+"/sessions", createRequest{Name: "c", Chip: tinyChip})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create after shutdown: %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, client, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: %d", resp.StatusCode)
	}
	client.CloseIdleConnections()
	ts.Close()
	waitGoroutines(t, baseline)
}

// TestAdmissionControl fills every running slot with gated flows and
// asserts the contract: exactly MaxInFlight flows ever run at once,
// the next request queues and is served when a slot frees, the one
// after that is rejected immediately with 429 + Retry-After, and a
// queued flow whose deadline expires gets 504 without committing.
func TestAdmissionControl(t *testing.T) {
	baseline := runtime.NumGoroutine()
	gate := make(chan struct{})
	var entered atomic.Int32
	svc := New(Config{
		MaxInFlight: 2,
		MaxQueue:    1,
		BeforeRoute: func(string) { entered.Add(1); <-gate },
	})
	ts := httptest.NewServer(svc)
	client := ts.Client()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Two creates occupy both running slots (parked in the gate).
	results := make(chan int, 3)
	for i := 0; i < 2; i++ {
		go func(i int) {
			resp, _ := postJSON(t, client, ts.URL+"/sessions", createRequest{
				Name: fmt.Sprintf("g%d", i), Chip: tinyChip,
			})
			results <- resp.StatusCode
		}(i)
	}
	waitFor("both slots running", func() bool { return entered.Load() == 2 })

	// A queued flow whose deadline expires while waiting gets 504 and
	// commits nothing (both slots are parked, so it must wait).
	resp2, body := postJSON(t, client, ts.URL+"/sessions", createRequest{
		Name: "deadline", Chip: tinyChip, TimeoutMS: 50,
	})
	if resp2.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-exceeded create: %d %s", resp2.StatusCode, body)
	}
	if resp3, _ := getJSON(t, client, ts.URL+"/sessions/deadline"); resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("timed-out session persisted: %d", resp3.StatusCode)
	}

	// Third admitted into the queue (holds a pending slot, no token).
	go func() {
		resp, _ := postJSON(t, client, ts.URL+"/sessions", createRequest{
			Name: "queued", Chip: tinyChip,
		})
		results <- resp.StatusCode
	}()
	waitFor("third flow queued", func() bool { return svc.pending.Load() == 3 })

	// Fourth overflows pending: immediate 429 with a Retry-After hint.
	data, _ := json.Marshal(createRequest{Name: "rejected", Chip: tinyChip})
	resp, err := client.Post(ts.URL+"/sessions", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp4, _ := getJSON(t, client, ts.URL+"/sessions/rejected"); resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected session persisted: %d", resp4.StatusCode)
	}

	// Open the gate: the two running and the one queued flow finish.
	close(gate)
	for i := 0; i < 3; i++ {
		if code := <-results; code != http.StatusCreated {
			t.Fatalf("gated flow %d finished with %d", i, code)
		}
	}
	if hw := svc.RunningHighWater(); hw != 2 {
		t.Fatalf("running high-water = %d, want exactly MaxInFlight = 2", hw)
	}

	svc.Close()
	client.CloseIdleConnections()
	ts.Close()
	waitGoroutines(t, baseline)
}

// TestServiceEcoBitIdentical is the differential test: an ECO applied
// through the daemon (JSON over HTTP, session machinery, admission)
// must produce the bit-identical result of a direct bonnroute.Reroute
// with the same seed and options.
func TestServiceEcoBitIdentical(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	resp, body := postJSON(t, client, ts.URL+"/sessions", createRequest{
		Name: "diff", Chip: testChip, Options: OptionsWire{Seed: 31},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}

	c := bonnroute.GenerateChip(testChip.params())
	delta := bonnroute.RandomDelta(c, 77, bonnroute.EcoGenConfig{})
	resp, body = postJSON(t, client, ts.URL+"/sessions/diff/reroute", rerouteRequest{
		FromGeneration: 1, Delta: delta,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reroute: %d %s", resp.StatusCode, body)
	}

	// The same flow, directly: route the same chip with the same
	// options, apply the same delta (after a JSON round-trip, to prove
	// the wire encoding loses nothing).
	wire, err := json.Marshal(delta)
	if err != nil {
		t.Fatal(err)
	}
	var delta2 bonnroute.Delta
	if err := json.Unmarshal(wire, &delta2); err != nil {
		t.Fatal(err)
	}
	direct := bonnroute.Route(context.Background(), c, bonnroute.WithSeed(31))
	directEco, _, err := bonnroute.Reroute(context.Background(), direct, delta2, bonnroute.WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}

	served := svc.lookup("diff").sess.Load().Result()
	if v := verify.CompareResults(served, directEco); len(v) != 0 {
		t.Fatalf("daemon ECO diverges from direct Reroute: %v", v)
	}
}
