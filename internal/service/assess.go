package service

import (
	"errors"
	"fmt"

	"bonnroute"
	"bonnroute/internal/capest"
	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
)

// errNoAssessment marks sessions the cheap pre-screen cannot serve:
// routed without global routing, there are no capacity estimates to
// assess against.
var errNoAssessment = errors.New("assessment needs a session routed with global routing (not skip_global)")

// AssessResponse is the outcome of the capacity-only routability
// pre-screen: the congestion assessment of the session's current
// result, the assessment after applying the delta's estimated demand
// and capacity changes, and the verdict. It is computed from the
// capest capacity estimates and demand arithmetic alone — no routing —
// which is what makes it orders of magnitude cheaper than a reroute.
type AssessResponse struct {
	Generation uint64            `json:"generation"`
	Before     capest.Assessment `json:"before"`
	After      capest.Assessment `json:"after"`
	// Routable is the pre-screen verdict: the delta does not increase
	// the number of overloaded global edges. A true verdict is a
	// plausibility statement, not a guarantee — it sees congestion, not
	// connectivity.
	Routable bool `json:"routable"`
}

// assessBase is the per-generation baseline the pre-screen diffs
// against: the global grid with its estimated capacities, and per-edge
// loads recomputed from the rounded global trees (so removing a net
// subtracts exactly what it contributed).
type assessBase struct {
	graph  *grid.Graph
	caps   []float64
	loads  []float64
	trees  [][]int32
	widths []float64
}

func buildAssessBase(res *bonnroute.Result) (*assessBase, error) {
	a := res.Assignment
	if a == nil || a.Graph == nil {
		return nil, errNoAssessment
	}
	b := &assessBase{
		graph:  a.Graph,
		caps:   append([]float64(nil), a.Graph.Cap...),
		loads:  make([]float64, a.Graph.NumEdges()),
		trees:  a.Trees,
		widths: a.Widths,
	}
	for ni, tree := range a.Trees {
		w := netWidth(b, ni)
		for _, e := range tree {
			b.loads[e] += w
		}
	}
	return b, nil
}

func netWidth(b *assessBase, ni int) float64 {
	if ni < len(b.widths) && b.widths[ni] > 0 {
		return b.widths[ni]
	}
	return 1
}

// subtractNet removes a net's exact global-tree contribution from
// loads.
func (b *assessBase) subtractNet(ni int, loads []float64) {
	if ni >= len(b.trees) {
		return
	}
	w := netWidth(b, ni)
	for _, e := range b.trees[ni] {
		loads[e] -= w
		if loads[e] < 0 {
			loads[e] = 0
		}
	}
}

// assess runs the pre-screen for one delta against the session's
// current generation. The baseline is cached per generation; the
// per-call work is two O(E) copies plus bbox-local demand arithmetic.
func (ss *session) assess(delta bonnroute.Delta) (AssessResponse, error) {
	sess := ss.sess.Load()
	res, _, gen := sess.Snapshot()

	ss.assessMu.Lock()
	defer ss.assessMu.Unlock()
	if ss.assessGen != gen || (ss.base == nil && ss.assessErr == nil) {
		ss.base, ss.assessErr = buildAssessBase(res)
		ss.assessGen = gen
	}
	if ss.assessErr != nil {
		return AssessResponse{}, ss.assessErr
	}
	b := ss.base
	c := res.Chip

	caps := append([]float64(nil), b.caps...)
	loads := append([]float64(nil), b.loads...)

	removed := make(map[int]bool, len(delta.RemoveNets))
	for _, ni := range delta.RemoveNets {
		if ni < 0 || ni >= len(c.Nets) {
			return AssessResponse{}, fmt.Errorf("remove net %d out of range [0,%d)", ni, len(c.Nets))
		}
		removed[ni] = true
		b.subtractNet(ni, loads)
	}

	// Moved pins: drop the net's exact tree contribution, re-add its
	// demand estimate with the moved terminal positions.
	movedBy := map[int]map[int]geom.Point{}
	for _, m := range delta.MovePins {
		if m.Net < 0 || m.Net >= len(c.Nets) {
			return AssessResponse{}, fmt.Errorf("move pin of net %d out of range", m.Net)
		}
		if m.Pin < 0 || m.Pin >= len(c.Nets[m.Net].Pins) {
			return AssessResponse{}, fmt.Errorf("net %d has no pin %d", m.Net, m.Pin)
		}
		if removed[m.Net] {
			continue
		}
		if movedBy[m.Net] == nil {
			movedBy[m.Net] = map[int]geom.Point{}
		}
		movedBy[m.Net][m.Pin] = m.By
	}
	for ni, moves := range movedBy {
		b.subtractNet(ni, loads)
		terms := make([]geom.Point, len(c.Nets[ni].Pins))
		for slot, pi := range c.Nets[ni].Pins {
			p := c.Pins[pi].Center()
			if by, ok := moves[slot]; ok {
				p = p.Add(by)
			}
			terms[slot] = p
		}
		capest.AddNetDemand(b.graph, terms, netWidth(b, ni), loads)
	}

	for i, nn := range delta.AddNets {
		if len(nn.Pins) < 2 {
			return AssessResponse{}, fmt.Errorf("new net %d needs >= 2 pins", i)
		}
		terms := make([]geom.Point, 0, len(nn.Pins))
		for k, shapes := range nn.Pins {
			if len(shapes) == 0 {
				return AssessResponse{}, fmt.Errorf("new net %d pin %d has no shapes", i, k)
			}
			terms = append(terms, shapes[0].Rect.Center())
		}
		capest.AddNetDemand(b.graph, terms, 1, loads)
	}

	for i, o := range delta.AddBlockages {
		if o.Layer < 0 || o.Layer >= c.NumLayers() {
			return AssessResponse{}, fmt.Errorf("blockage %d on bad layer %d", i, o.Layer)
		}
		capest.ReduceCapsForObstacle(b.graph, o.Layer, o.Rect, c.Deck.Layers[o.Layer].Pitch, caps)
	}

	before := capest.Assess(b.caps, b.loads)
	after := capest.Assess(caps, loads)
	return AssessResponse{
		Generation: gen,
		Before:     before,
		After:      after,
		Routable:   after.Overloaded <= before.Overloaded,
	}, nil
}
