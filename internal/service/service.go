// Package service implements the routing-as-a-service layer behind
// cmd/routed: named sessions pinning a chip and its finished routing
// result in memory (bonnroute.Session), an HTTP JSON API to create
// sessions, apply concurrent ECO deltas, fetch results and run cheap
// capacity-only routability assessments, and the robustness machinery a
// long-lived daemon needs — admission control bounding concurrent
// routing flows, per-session FIFO serialization with optimistic
// generation tokens, context-deadline propagation from request
// timeouts, and graceful shutdown that cancels in-flight flows and
// persists nothing partial.
package service

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bonnroute"
)

// Config tunes the server.
type Config struct {
	// MaxInFlight bounds concurrently running routing flows (session
	// creation and reroutes; assessments are exempt — they exist to be
	// cheap). Default 2.
	MaxInFlight int
	// MaxQueue bounds additionally admitted waiting flows; a request
	// arriving beyond MaxInFlight+MaxQueue is rejected immediately with
	// 429. Default 2*MaxInFlight.
	MaxQueue int
	// RetryAfter is the hint sent with 429 responses. Default 1s.
	RetryAfter time.Duration
	// StreamBuffer is the per-request trace-record buffer of the SSE
	// progress stream; when the client falls behind, records are
	// dropped, never blocking the routing flow. Default 256.
	StreamBuffer int
	// BeforeRoute, when non-nil, runs after a flow is admitted and
	// serialized, immediately before routing starts — a test hook for
	// deterministic concurrency tests.
	BeforeRoute func(kind string)
}

func (c *Config) setDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 256
	}
}

var (
	errBusy     = errors.New("service: at capacity")
	errShutdown = errors.New("service: shutting down")
)

// Server is the routing service: a session store plus the HTTP API over
// it. It implements http.Handler.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	baseCtx context.Context
	stop    context.CancelFunc

	// Admission: tokens holds one slot per running flow; pending counts
	// running plus queued flows so overflow is rejected without ever
	// blocking. running/runHigh instrument the "never more than k
	// concurrent flows" invariant for tests.
	tokens  chan struct{}
	pending atomic.Int64
	running atomic.Int64
	runHigh atomic.Int64

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	closed   bool
}

// session is one named entry of the store: the pinned routing session
// plus its FIFO reroute queue and the cached assessment baseline. sess
// is nil while the initial route is still running — the name is
// reserved first so concurrent creates conflict deterministically.
type session struct {
	name string
	sess atomic.Pointer[bonnroute.Session]
	fifo fifoQueue

	// Assessment baseline, cached per result generation (see assess.go).
	assessMu  sync.Mutex
	assessGen uint64
	assessErr error
	base      *assessBase
}

// New builds a server. Close must be called to release it.
func New(cfg Config) *Server {
	cfg.setDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		baseCtx:  ctx,
		stop:     cancel,
		tokens:   make(chan struct{}, cfg.MaxInFlight),
		sessions: map[string]*session{},
	}
	s.mux = s.routes()
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close initiates graceful shutdown: new work is refused with 503 and
// every in-flight routing flow is cancelled at its next boundary.
// Cancelled flows commit nothing — sessions keep their last finished
// result. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
}

// RunningHighWater reports the maximum number of routing flows that
// were ever running concurrently — tests assert it never exceeds
// Config.MaxInFlight.
func (s *Server) RunningHighWater() int64 { return s.runHigh.Load() }

// admit acquires a routing-flow slot. It rejects immediately with
// errBusy when MaxInFlight+MaxQueue flows are already admitted, else
// waits for a running slot (honouring ctx and shutdown). The returned
// release is idempotent.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	limit := int64(s.cfg.MaxInFlight + s.cfg.MaxQueue)
	if s.pending.Add(1) > limit {
		s.pending.Add(-1)
		return nil, errBusy
	}
	select {
	case s.tokens <- struct{}{}:
	case <-ctx.Done():
		s.pending.Add(-1)
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		s.pending.Add(-1)
		return nil, errShutdown
	}
	r := s.running.Add(1)
	for {
		h := s.runHigh.Load()
		if r <= h || s.runHigh.CompareAndSwap(h, r) {
			break
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			s.running.Add(-1)
			<-s.tokens
			s.pending.Add(-1)
		})
	}, nil
}

// flowContext derives the context a routing flow runs under: the
// request's (so client disconnects cancel), bounded by timeoutMS when
// positive, and additionally cancelled by server shutdown.
func (s *Server) flowContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	var cancels []context.CancelFunc
	if timeoutMS > 0 {
		var c context.CancelFunc
		ctx, c = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		cancels = append(cancels, c)
	}
	ctx, c := context.WithCancel(ctx)
	cancels = append(cancels, c)
	stop := context.AfterFunc(s.baseCtx, c)
	return ctx, func() {
		stop()
		for _, c := range cancels {
			c()
		}
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// lookup returns the named session or nil.
func (s *Server) lookup(name string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[name]
}

// names lists the session names, sorted.
func (s *Server) names() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.sessions))
	for n := range s.sessions {
		out = append(out, n)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// fifoQueue serializes the reroutes of one session in strict arrival
// order. A plain mutex would serialize too, but grants in unspecified
// order under contention; the explicit queue makes "concurrent deltas
// are applied first-come-first-served" a guarantee, and lets a waiter
// abandon its place when its request context dies.
type fifoQueue struct {
	mu   sync.Mutex
	busy bool
	q    []chan struct{}
}

// Acquire blocks until the caller reaches the front of the queue (or
// ctx is done, in which case the place is given up).
func (f *fifoQueue) Acquire(ctx context.Context) error {
	f.mu.Lock()
	if !f.busy {
		f.busy = true
		f.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	f.q = append(f.q, ch)
	f.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		f.mu.Lock()
		for i, c := range f.q {
			if c == ch {
				f.q = append(f.q[:i], f.q[i+1:]...)
				f.mu.Unlock()
				return ctx.Err()
			}
		}
		f.mu.Unlock()
		// The grant raced the cancellation and we already own the
		// queue: pass ownership straight to the next waiter.
		f.Release()
		return ctx.Err()
	}
}

// Release hands the queue to the next waiter, if any.
func (f *fifoQueue) Release() {
	f.mu.Lock()
	if len(f.q) > 0 {
		ch := f.q[0]
		f.q = f.q[1:]
		f.mu.Unlock()
		close(ch)
		return
	}
	f.busy = false
	f.mu.Unlock()
}
