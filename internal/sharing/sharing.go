// Package sharing implements BonnRoute's global routing core: the
// min-max resource sharing approximation scheme (paper §2.2–§2.3,
// Algorithm 2 after Müller–Radke–Vygen), with the Steiner-tree oracle of
// Algorithm 1, convex resource-consumption functions with extra space
// assignment (Fig. 1), the oracle-reuse speed-up of §2.3, the parallel
// block solve of §5.1 — here in a deterministic phase-snapshot variant:
// workers price nets against frozen phase-start prices and the updates
// are applied serially in net order at the phase barrier, so any worker
// count computes the identical solution — and the randomized rounding
// plus rechoose/reroute repair of §2.4.
package sharing

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bonnroute/internal/grid"
	"bonnroute/internal/obs"
	"bonnroute/internal/steiner"
)

// NetSpec describes one net of the global routing instance.
type NetSpec struct {
	ID int
	// Terminals are the vertex sets V_p of the net's pins (§2.1).
	Terminals [][]int
	// Width is w(n, e): wire width plus minimum spacing in capacity
	// units (1.0 = one standard track).
	Width float64
	// AllowExtra permits assigning extra space s(n, e) > 0 (§2.1); the
	// solver weighs reduced power against capacity consumption.
	AllowExtra bool
}

// Options tune the solver.
type Options struct {
	// Phases is t of Algorithm 2 (paper: t = 125 works well; smaller
	// values trade quality for time). Default 48.
	Phases int
	// Epsilon is the price growth exponent (paper: ε = 1). Default 1.
	Epsilon float64
	// LengthCap is the guessed achievable total netlength u^len (§2.1);
	// 0 derives it as 1.15 × the sum of terminal bounding boxes.
	LengthCap float64
	// PowerCap enables the convex power resource when > 0 (arbitrary
	// power units; the γ curves follow Fig. 1).
	PowerCap float64
	// Workers is the number of parallel block solvers (§5.1); ≤ 1 is
	// serial. The result is identical for every value (phase-snapshot
	// pricing); Workers only changes wall time.
	Workers int
	// Seed drives randomized rounding.
	Seed int64
	// ReuseSlack is the oracle-reuse tolerance: the previous tree is kept
	// while its re-priced cost stays within (1+ReuseSlack) of the cost it
	// had when computed. Negative disables reuse. Default 0.25.
	ReuseSlack float64
	// ExtraLevels are the candidate extra-space values (fractions of a
	// track) evaluated in the edge-cost minimization of eq. (1).
	// Default {0, 0.5, 1}.
	ExtraLevels []float64
	// ViaLengthEquiv charges each via this much wire length in the
	// netlength objective (the paper optimizes wire length AND via
	// count); 0 derives half a tile.
	ViaLengthEquiv float64
	// ExactSteinerMax is the net-degree threshold for the exact
	// goal-oriented Steiner oracle ("Dijkstra meets Steiner"): nets
	// whose terminals merge to at most this many groups are answered
	// with a provably minimum tree, larger nets with Path Composition.
	// 0 selects steiner.DefaultExactMax (9); negative disables the
	// exact oracle entirely. The choice depends only on the net, so the
	// phase-snapshot determinism across worker counts is unaffected.
	ExactSteinerMax int
	// ShardTiles shards the per-phase pricing work by congestion-region
	// tiles: the NX×NY tile array is covered with square regions of
	// ShardTiles×ShardTiles tiles, nets are bucketed by the region
	// holding their terminal bounding-box center, and workers drain the
	// region list — ordered by (region row, region col), nets in net-index
	// order within a region — through an atomic cursor. Spatially close
	// nets then price on the same worker (shared oracle search windows,
	// warm caches) and the queue balances hot regions across workers,
	// unlike the static contiguous chunking used when sharding is off.
	// This is pure work decomposition: every net is still priced exactly
	// once per phase against the frozen phase-start snapshot and prices
	// are applied serially in net order at the barrier, so the solution
	// is bit-identical at any worker count, sharding on or off.
	// 0 disables sharding (static chunks).
	ShardTiles int
}

func (o *Options) setDefaults() {
	if o.Phases <= 0 {
		o.Phases = 48
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.ReuseSlack == 0 {
		o.ReuseSlack = 0.25
	}
	if len(o.ExtraLevels) == 0 {
		o.ExtraLevels = []float64{0, 0.5, 1}
	}
	if o.ExactSteinerMax == 0 {
		o.ExactSteinerMax = steiner.DefaultExactMax
	}
}

// Candidate is one integral solution b ∈ B_n^int with its convex weight.
type Candidate struct {
	Edges []int32
	// Extra[i] is the extra space on Edges[i].
	Extra []float32
	// Weight is x_{n,b} after normalization (sums to 1 per net).
	Weight float64
}

// NetResult is the per-net outcome.
type NetResult struct {
	Candidates []Candidate
	// Chosen indexes Candidates after rounding/repair; -1 if unrouted.
	Chosen int
}

// Tree returns the chosen tree's edges (nil when unrouted).
func (n *NetResult) Tree() []int32 {
	if n.Chosen < 0 || n.Chosen >= len(n.Candidates) {
		return nil
	}
	return n.Candidates[n.Chosen].Edges
}

// Result is the global routing solution.
type Result struct {
	Nets []NetResult
	// LambdaFrac is max_r Σ_n g_n^r of the fractional (averaged)
	// solution — the approximation quality certificate.
	LambdaFrac float64
	// LambdaHistory records the per-phase maximum load.
	LambdaHistory []float64
	// OracleCalls and OracleReuses count oracle invocations vs. reuses.
	OracleCalls, OracleReuses int64
	// Per-oracle attribution: calls answered by the exact goal-oriented
	// oracle vs. Path Composition (including the exact oracle's own
	// above-threshold fallbacks), the summed wire length of the returned
	// trees, and the oracle wall time. Observational only — no solver
	// decision reads these, so determinism across worker counts holds.
	ExactCalls, PCCalls           int64
	ExactTreeLength, PCTreeLength int64
	ExactOracleTime, PCOracleTime time.Duration
	// RoundingViolations is the number of overloaded resources right
	// after randomized rounding; RepairedByRechoose and Rerouted count
	// the §2.4 repair actions.
	RoundingViolations int
	RechooseChanges    int
	Rerouted           int
	// Unrouted counts nets without a feasible tree.
	Unrouted int
	// AlgTime is the Algorithm 2 phase-loop time; RepairTime covers
	// randomized rounding plus rechoose/reroute (the "R&R" column of
	// Table III).
	AlgTime, RepairTime time.Duration
	// Cancelled reports that the context was cancelled mid-run; the
	// result covers only the phases completed before cancellation (the
	// repair pipeline is skipped, so rounding uses partial weights).
	Cancelled bool
}

// Solver holds the problem and workspaces.
type Solver struct {
	G    *grid.Graph
	Nets []NetSpec
	Opt  Options

	// prices holds the resource prices (edges, then [len] [power]).
	// During a phase the workers read it as an immutable snapshot; the
	// price updates of the phase are applied serially, in net order, at
	// the phase barrier (see Run), so the solve is deterministic for any
	// worker count.
	prices   []float64
	lenCap   float64
	powerCap float64
	viaLen   float64
	nRes     int
	// Per-worker oracles: exacts when the exact oracle is enabled
	// (each embeds its own Path Composition fallback), plain Path
	// Composition oracles otherwise. Neither is concurrency-safe, hence
	// one per worker.
	oracles []*steiner.Oracle
	exacts  []*steiner.Exact
	calls   int64
	reuses  int64
	// Oracle attribution (atomics; see Result).
	exactCalls, pcCalls int64
	exactLen, pcLen     int64
	exactNanos, pcNanos int64
	// shards groups net indices by congestion-region tile when
	// Opt.ShardTiles > 0 (see Options.ShardTiles); nil otherwise.
	shards [][]int32
}

const (
	resLenOffset = 0 // prices[E+0]
	resPowOffset = 1
)

// New creates a solver. Edge capacities are read from g.Cap; capacity 0
// edges are unusable.
func New(g *grid.Graph, nets []NetSpec, opt Options) *Solver {
	opt.setDefaults()
	s := &Solver{G: g, Nets: nets, Opt: opt}
	s.nRes = g.NumEdges() + 2
	s.prices = make([]float64, s.nRes)
	for i := range s.prices {
		s.prices[i] = 1
	}
	s.lenCap = opt.LengthCap
	if s.lenCap <= 0 {
		var sum float64
		for i := range nets {
			sum += float64(terminalBBoxLength(g, nets[i].Terminals))
		}
		s.lenCap = 1.15 * math.Max(sum, 1)
	}
	s.powerCap = opt.PowerCap
	s.viaLen = opt.ViaLengthEquiv
	if s.viaLen <= 0 {
		s.viaLen = float64(g.TileW) / 2
	}
	if opt.ExactSteinerMax > 0 {
		s.exacts = make([]*steiner.Exact, opt.Workers)
		for i := range s.exacts {
			s.exacts[i] = steiner.NewExact(g, opt.ExactSteinerMax)
		}
	} else {
		s.oracles = make([]*steiner.Oracle, opt.Workers)
		for i := range s.oracles {
			s.oracles[i] = steiner.NewOracle(g)
		}
	}
	if opt.ShardTiles > 0 {
		s.shards = buildShards(g, nets, opt.ShardTiles)
	}
	return s
}

// buildShards buckets nets into congestion-region tiles: square regions
// of st×st grid tiles, keyed by the region containing the net's
// terminal bounding-box center. The returned shard order — (region row,
// region col) major, net index within a region — is a pure function of
// the instance, independent of worker count and scheduling.
func buildShards(g *grid.Graph, nets []NetSpec, st int) [][]int32 {
	rx := (g.NX + st - 1) / st
	ry := (g.NY + st - 1) / st
	buckets := make([][]int32, rx*ry)
	for ni := range nets {
		first := true
		var minX, maxX, minY, maxY int
		for _, vs := range nets[ni].Terminals {
			for _, v := range vs {
				tx, ty, _ := g.VertexCoords(v)
				if first {
					minX, maxX, minY, maxY = tx, tx, ty, ty
					first = false
				} else {
					minX, maxX = min(minX, tx), max(maxX, tx)
					minY, maxY = min(minY, ty), max(maxY, ty)
				}
			}
		}
		cx, cy := 0, 0
		if !first {
			cx, cy = (minX+maxX)/2/st, (minY+maxY)/2/st
		}
		key := cy*rx + cx
		buckets[key] = append(buckets[key], int32(ni))
	}
	shards := buckets[:0]
	for _, b := range buckets {
		if len(b) > 0 {
			shards = append(shards, b)
		}
	}
	return shards
}

// treeFor answers one Steiner oracle call on worker w's oracle pair,
// attributing wire length and wall time to the oracle that actually
// produced the tree (the exact oracle reports its own above-threshold
// Path Composition fallbacks as such).
func (s *Solver) treeFor(w int, cost func(e int) float64, terminals [][]int) ([]int, bool) {
	start := time.Now()
	var edges []int
	var isExact, ok bool
	if s.exacts != nil {
		edges, isExact, ok = s.exacts[w].Tree(cost, terminals)
	} else {
		edges, ok = s.oracles[w].Tree(cost, terminals)
	}
	dt := time.Since(start).Nanoseconds()
	if isExact {
		atomic.AddInt64(&s.exactCalls, 1)
		atomic.AddInt64(&s.exactNanos, dt)
		if ok {
			atomic.AddInt64(&s.exactLen, int64(steiner.TreeLength(s.G, edges)))
		}
	} else {
		atomic.AddInt64(&s.pcCalls, 1)
		atomic.AddInt64(&s.pcNanos, dt)
		if ok {
			atomic.AddInt64(&s.pcLen, int64(steiner.TreeLength(s.G, edges)))
		}
	}
	return edges, ok
}

// terminalBBoxLength estimates the Steiner lower bound of a net as the
// half-perimeter of its terminal tiles.
func terminalBBoxLength(g *grid.Graph, terminals [][]int) int {
	first := true
	var minX, maxX, minY, maxY int
	for _, vs := range terminals {
		for _, v := range vs {
			tx, ty, _ := g.VertexCoords(v)
			if first {
				minX, maxX, minY, maxY = tx, tx, ty, ty
				first = false
			} else {
				minX, maxX = min(minX, tx), max(maxX, tx)
				minY, maxY = min(minY, ty), max(maxY, ty)
			}
		}
	}
	if first {
		return 0
	}
	return (maxX-minX)*g.TileW + (maxY-minY)*g.TileH
}

func (s *Solver) price(r int) float64 { return s.prices[r] }

// bumpPrice multiplies price r by factor. Only called from the serial
// phase-barrier sweep, never concurrently — phases read prices as an
// immutable snapshot, which is what makes the parallel solve
// deterministic (§5.1's volatility-tolerant updates traded determinism
// for freshness; the snapshot variant gives up within-phase freshness
// and keeps results identical for every worker count).
func (s *Solver) bumpPrice(r int, factor float64) { s.prices[r] *= factor }

// powerOf is the convex power consumption per unit length at extra space
// s (Fig. 1's dashed curve): coupling falls off as space grows.
func powerOf(extra float64) float64 { return 0.7/(1+extra) + 0.3 }

// edgeCost evaluates eq. (1): the total priced cost of net n using edge
// e with the best extra-space level, returning cost and the minimizing
// level. A negative cost marks the edge unusable.
func (s *Solver) edgeCost(n *NetSpec, e int) (float64, float64) {
	cap := s.G.Cap[e]
	if cap <= 0 {
		return -1, 0
	}
	if n.Width > cap {
		return -1, 0
	}
	length := float64(s.G.EdgeLength(e))
	if s.G.IsVia(e) {
		length = s.viaLen // vias are charged equivalent wire length
	}
	yLen := s.price(s.G.NumEdges() + resLenOffset)
	yPow := 0.0
	if s.powerCap > 0 {
		yPow = s.price(s.G.NumEdges() + resPowOffset)
	}
	yE := s.price(e)

	levels := s.Opt.ExtraLevels
	if !n.AllowExtra {
		levels = levels[:1]
	}
	bestCost := math.Inf(1)
	bestLevel := 0.0
	for _, lv := range levels {
		use := n.Width + lv
		if use > cap {
			continue
		}
		c := yE * use / cap
		c += yLen * length / s.lenCap
		if yPow > 0 {
			c += yPow * length * powerOf(lv) / s.powerCap
		}
		// Vias get a base cost so trees do not zigzag between layers.
		if s.G.IsVia(e) {
			c += yE * 0.05
		}
		if c < bestCost {
			bestCost = c
			bestLevel = lv
		}
	}
	if math.IsInf(bestCost, 1) {
		return -1, 0
	}
	return bestCost, bestLevel
}

// netLoads computes g_n^r(b) for all resources a candidate touches,
// invoking visit(resource, load).
func (s *Solver) netLoads(n *NetSpec, c *Candidate, visit func(r int, g float64)) {
	var lenSum, powSum float64
	for i, e := range c.Edges {
		cap := s.G.Cap[e]
		use := n.Width + float64(c.Extra[i])
		visit(int(e), use/cap)
		l := float64(s.G.EdgeLength(int(e)))
		if s.G.IsVia(int(e)) {
			l = s.viaLen
		}
		lenSum += l
		powSum += l * powerOf(float64(c.Extra[i]))
	}
	if lenSum > 0 {
		visit(s.G.NumEdges()+resLenOffset, lenSum/s.lenCap)
	}
	if s.powerCap > 0 && powSum > 0 {
		visit(s.G.NumEdges()+resPowOffset, powSum/s.powerCap)
	}
}

// Run executes Algorithm 2 and the §2.4 rounding/repair pipeline.
//
// ctx carries cancellation (checked at phase boundaries and between
// nets inside a phase) and, via obs.SpanFrom, the parent span under
// which per-phase child spans are emitted: one "global.phase" span per
// phase with λ, oracle-call/reuse deltas, and the price-update count,
// plus a "global.repair" span covering rounding/rechoose/reroute. On
// cancellation Run returns a partial Result with Cancelled set.
func (s *Solver) Run(ctx context.Context) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	span := obs.SpanFrom(ctx)
	algStart := time.Now()
	res := &Result{Nets: make([]NetResult, len(s.Nets))}
	type netState struct {
		lastCand int     // candidate index computed last
		lastCost float64 // its priced cost when computed
		counts   []float64
	}
	states := make([]netState, len(s.Nets))
	for i := range states {
		states[i].lastCand = -1
	}
	// addCandidate dedups by edge-set signature (with an exact
	// comparison fallback on hash equality, see findCandidate).
	addCandidate := func(ni int, edges []int, extras []float32) int {
		nr := &res.Nets[ni]
		if ci := findCandidate(nr.Candidates, edges, extras); ci >= 0 {
			return ci
		}
		es := make([]int32, len(edges))
		for i, e := range edges {
			es[i] = int32(e)
		}
		nr.Candidates = append(nr.Candidates, Candidate{Edges: es, Extra: extras})
		states[ni].counts = append(states[ni].counts, 0)
		return len(nr.Candidates) - 1
	}

	fracLoad := make([]float64, s.nRes)

	for phase := 0; phase < s.Opt.Phases; phase++ {
		if ctx.Err() != nil {
			res.Cancelled = true
			break
		}
		phSpan := span.Child("global.phase", obs.Int("phase", phase))
		callsBefore, reusesBefore := atomic.LoadInt64(&s.calls), atomic.LoadInt64(&s.reuses)
		exactBefore, pcBefore := atomic.LoadInt64(&s.exactCalls), atomic.LoadInt64(&s.pcCalls)
		phaseLoad := make([]float64, s.nRes)
		var priceUpdates int64

		// Workers price every net against the phase-start snapshot of
		// s.prices and record their choice in chosen[ni]; the actual
		// price updates happen after the barrier, serially in net order,
		// so both the candidate selection and the floating-point
		// accumulation order are independent of the worker count and of
		// goroutine scheduling.
		chosen := make([]int, len(s.Nets))
		priceNet := func(worker, ni int) {
			chosen[ni] = -1
			if ctx.Err() != nil {
				return
			}
			n := &s.Nets[ni]
			st := &states[ni]
			nr := &res.Nets[ni]

			ci := -1
			// Oracle reuse (§2.3): keep the previous tree while its
			// re-priced cost has not degraded too much.
			if st.lastCand >= 0 && s.Opt.ReuseSlack >= 0 {
				c := &nr.Candidates[st.lastCand]
				cost := s.candCost(n, c)
				if cost >= 0 && cost <= (1+s.Opt.ReuseSlack)*st.lastCost {
					ci = st.lastCand
					atomic.AddInt64(&s.reuses, 1)
				}
			}
			if ci < 0 {
				extras := map[int]float64{}
				edges, ok := s.treeFor(worker, func(e int) float64 {
					c, lv := s.edgeCost(n, e)
					if c >= 0 {
						extras[e] = lv
					}
					return c
				}, n.Terminals)
				atomic.AddInt64(&s.calls, 1)
				if !ok {
					return
				}
				ex := make([]float32, len(edges))
				for i, e := range edges {
					ex[i] = float32(extras[e])
				}
				ci = addCandidate(ni, edges, ex)
				st.lastCand = ci
				st.lastCost = s.candCost(n, &nr.Candidates[ci])
			}
			chosen[ni] = ci
		}

		switch {
		case s.Opt.Workers <= 1:
			for ni := range s.Nets {
				priceNet(0, ni)
			}
		case s.shards != nil:
			// Congestion-region shard queue: workers take whole regions
			// in the fixed buildShards order through an atomic cursor.
			// Which worker prices which net affects only scheduling —
			// chosen[ni] slots and per-net state keep the outcome
			// independent of the interleaving.
			var cursor atomic.Int64
			drain := func(w int) {
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(s.shards) {
						return
					}
					for _, ni := range s.shards[i] {
						priceNet(w, int(ni))
					}
				}
			}
			var wg sync.WaitGroup
			for w := 1; w < s.Opt.Workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					drain(w)
				}(w)
			}
			drain(0)
			wg.Wait()
		default:
			// The calling goroutine handles the first chunk itself and
			// spawns only the rest, so Workers>1 on a single-core host
			// costs at most the chunk bookkeeping over the serial path.
			var wg sync.WaitGroup
			chunk := (len(s.Nets) + s.Opt.Workers - 1) / s.Opt.Workers
			for w := 1; w < s.Opt.Workers; w++ {
				lo := w * chunk
				hi := min(lo+chunk, len(s.Nets))
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					for ni := lo; ni < hi; ni++ {
						priceNet(w, ni)
					}
				}(w, lo, hi)
			}
			for ni := 0; ni < min(chunk, len(s.Nets)); ni++ {
				priceNet(0, ni)
			}
			wg.Wait()
		}

		// Serial price application in net order (the phase barrier).
		for ni := range s.Nets {
			ci := chosen[ni]
			if ci < 0 {
				continue
			}
			st := &states[ni]
			st.counts[ci]++
			c := &res.Nets[ni].Candidates[ci]
			s.netLoads(&s.Nets[ni], c, func(r int, g float64) {
				s.bumpPrice(r, math.Exp(s.Opt.Epsilon*g))
				phaseLoad[r] += g
				priceUpdates++
			})
		}

		lambda := 0.0
		for r := range phaseLoad {
			if phaseLoad[r] > lambda {
				lambda = phaseLoad[r]
			}
			fracLoad[r] += phaseLoad[r]
		}
		res.LambdaHistory = append(res.LambdaHistory, lambda)
		phSpan.End(obs.F64("lambda", lambda),
			obs.Int64("oracle_calls", atomic.LoadInt64(&s.calls)-callsBefore),
			obs.Int64("oracle_reuses", atomic.LoadInt64(&s.reuses)-reusesBefore),
			obs.Int64("oracle_exact", atomic.LoadInt64(&s.exactCalls)-exactBefore),
			obs.Int64("oracle_pc", atomic.LoadInt64(&s.pcCalls)-pcBefore),
			obs.Int64("price_updates", priceUpdates))
	}

	// Normalize weights; fractional λ.
	for ni := range res.Nets {
		st := &states[ni]
		total := 0.0
		for _, c := range st.counts {
			total += c
		}
		if total == 0 {
			res.Nets[ni].Chosen = -1
			res.Unrouted++
			continue
		}
		for ci := range res.Nets[ni].Candidates {
			res.Nets[ni].Candidates[ci].Weight = st.counts[ci] / total
		}
	}
	for r := range fracLoad {
		if l := fracLoad[r] / float64(s.Opt.Phases); l > res.LambdaFrac {
			res.LambdaFrac = l
		}
	}

	res.AlgTime = time.Since(algStart)
	repairStart := time.Now()
	rrSpan := span.Child("global.repair")
	s.roundAndRepair(ctx, rrSpan, res)
	rrSpan.End(obs.Int("violations", res.RoundingViolations),
		obs.Int("rechosen", res.RechooseChanges),
		obs.Int("rerouted", res.Rerouted))
	res.RepairTime = time.Since(repairStart)
	res.OracleCalls = s.calls
	res.OracleReuses = s.reuses
	res.ExactCalls = s.exactCalls
	res.PCCalls = s.pcCalls
	res.ExactTreeLength = s.exactLen
	res.PCTreeLength = s.pcLen
	res.ExactOracleTime = time.Duration(s.exactNanos)
	res.PCOracleTime = time.Duration(s.pcNanos)
	if ctx.Err() != nil {
		res.Cancelled = true
	}
	return res
}

// candCost prices a full candidate under current prices.
func (s *Solver) candCost(n *NetSpec, c *Candidate) float64 {
	total := 0.0
	for i, e := range c.Edges {
		cap := s.G.Cap[e]
		if cap <= 0 || n.Width+float64(c.Extra[i]) > cap {
			return -1
		}
		total += s.price(int(e)) * (n.Width + float64(c.Extra[i])) / cap
		l := float64(s.G.EdgeLength(int(e)))
		if s.G.IsVia(int(e)) {
			l = s.viaLen
		}
		total += s.price(s.G.NumEdges()+resLenOffset) * l / s.lenCap
		if s.powerCap > 0 {
			total += s.price(s.G.NumEdges()+resPowOffset) * l * powerOf(float64(c.Extra[i])) / s.powerCap
		}
	}
	return total
}

// findCandidate returns the index of an existing candidate identical
// to (edges, extras), or -1. Candidates are screened by their 64-bit
// signature; on signature equality the edge and extra slices are then
// compared exactly, so a hash collision can never alias two distinct
// candidates (dropping one would silently shrink the oracle's choice
// set for the rest of the run).
func findCandidate(cands []Candidate, edges []int, extras []float32) int {
	sig := signature(edges, extras)
	for ci := range cands {
		c := &cands[ci]
		if signature32(c.Edges, c.Extra) == sig && sameCandidate(c, edges, extras) {
			return ci
		}
	}
	return -1
}

// sameCandidate reports whether the stored candidate is exactly the
// proposed (edges, extras) pair — the collision fallback behind the
// signature screen in findCandidate.
func sameCandidate(c *Candidate, edges []int, extras []float32) bool {
	if len(c.Edges) != len(edges) || len(c.Extra) != len(extras) {
		return false
	}
	for i, e := range edges {
		if int(c.Edges[i]) != e {
			return false
		}
	}
	for i, x := range extras {
		if math.Float32bits(c.Extra[i]) != math.Float32bits(x) {
			return false
		}
	}
	return true
}

func signature(edges []int, extras []float32) uint64 {
	var h uint64 = 1469598103934665603
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	for i, e := range edges {
		mix(uint64(e))
		mix(uint64(math.Float32bits(extras[i])))
	}
	return h
}

func signature32(edges []int32, extras []float32) uint64 {
	var h uint64 = 1469598103934665603
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	for i, e := range edges {
		mix(uint64(e))
		mix(uint64(math.Float32bits(extras[i])))
	}
	return h
}

// roundAndRepair implements §2.4: randomized rounding, rechoosing
// among existing candidates, and rerouting the few remaining nets.
// Randomized rounding always runs (it is cheap and gives the partial
// result integral trees); the rechoose/reroute repair loops observe ctx
// and stop at pass boundaries. Repair events are emitted on span.
func (s *Solver) roundAndRepair(ctx context.Context, span *obs.Span, res *Result) {
	rng := rand.New(rand.NewSource(s.Opt.Seed))
	E := s.G.NumEdges()
	load := make([]float64, E) // capacity-resource loads only

	apply := func(ni, ci int, sign float64) {
		n := &s.Nets[ni]
		c := &res.Nets[ni].Candidates[ci]
		for i, e := range c.Edges {
			load[e] += sign * (n.Width + float64(c.Extra[i]))
		}
	}

	// Randomized rounding.
	for ni := range res.Nets {
		nr := &res.Nets[ni]
		if len(nr.Candidates) == 0 {
			nr.Chosen = -1
			continue
		}
		x := rng.Float64()
		acc := 0.0
		nr.Chosen = len(nr.Candidates) - 1
		for ci := range nr.Candidates {
			acc += nr.Candidates[ci].Weight
			if x <= acc {
				nr.Chosen = ci
				break
			}
		}
		apply(ni, nr.Chosen, +1)
	}

	overflow := func(e int) float64 { return math.Max(0, load[e]-s.G.Cap[e]) }
	totalOverflow := func() (float64, int) {
		t, cnt := 0.0, 0
		for e := 0; e < E; e++ {
			if o := overflow(e); o > 1e-9 {
				t += o
				cnt++
			}
		}
		return t, cnt
	}
	_, res.RoundingViolations = totalOverflow()
	span.Event("rounding", obs.Int("violations", res.RoundingViolations))

	// Rechoose: local search over existing candidates.
	for pass := 0; pass < 4; pass++ {
		if ctx.Err() != nil {
			return
		}
		improved := false
		for ni := range res.Nets {
			nr := &res.Nets[ni]
			if nr.Chosen < 0 || len(nr.Candidates) < 2 {
				continue
			}
			// Only consider nets touching an overloaded edge.
			touches := false
			for _, e := range nr.Candidates[nr.Chosen].Edges {
				if overflow(int(e)) > 1e-9 {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			cur, _ := totalOverflow()
			best := nr.Chosen
			for ci := range nr.Candidates {
				if ci == nr.Chosen {
					continue
				}
				apply(ni, nr.Chosen, -1)
				apply(ni, ci, +1)
				if t, _ := totalOverflow(); t < cur-1e-9 {
					cur = t
					best = ci
				}
				apply(ni, ci, -1)
				apply(ni, nr.Chosen, +1)
			}
			if best != nr.Chosen {
				apply(ni, nr.Chosen, -1)
				nr.Chosen = best
				apply(ni, best, +1)
				res.RechooseChanges++
				improved = true
			}
		}
		if t, _ := totalOverflow(); t < 1e-9 || !improved {
			break
		}
	}
	if res.RechooseChanges > 0 {
		span.Event("rechoose", obs.Int("changes", res.RechooseChanges))
	}

	// Reroute: for nets still on overloaded edges, one oracle call with
	// overflow-penalized prices.
	if t, _ := totalOverflow(); t > 1e-9 {
		for ni := range res.Nets {
			if ctx.Err() != nil {
				return
			}
			nr := &res.Nets[ni]
			if nr.Chosen < 0 {
				continue
			}
			bad := false
			for _, e := range nr.Candidates[nr.Chosen].Edges {
				if overflow(int(e)) > 1e-9 {
					bad = true
					break
				}
			}
			if !bad {
				continue
			}
			n := &s.Nets[ni]
			apply(ni, nr.Chosen, -1)
			edges, ok := s.treeFor(0, func(e int) float64 {
				cap := s.G.Cap[e]
				if cap <= 0 || n.Width > cap {
					return -1
				}
				c := float64(s.G.EdgeLength(e)) + 1
				if load[e]+n.Width > cap {
					c += 1e6 * (load[e] + n.Width - cap)
				}
				return c
			}, n.Terminals)
			if !ok {
				apply(ni, nr.Chosen, +1)
				continue
			}
			ex := make([]float32, len(edges))
			es := make([]int32, len(edges))
			for i, e := range edges {
				es[i] = int32(e)
			}
			nr.Candidates = append(nr.Candidates, Candidate{Edges: es, Extra: ex})
			nr.Chosen = len(nr.Candidates) - 1
			apply(ni, nr.Chosen, +1)
			res.Rerouted++
			if t, _ := totalOverflow(); t < 1e-9 {
				break
			}
		}
	}
}

// EdgeLoads returns the final per-edge capacity loads of the chosen
// trees (for reporting and capacity checks).
func (s *Solver) EdgeLoads(res *Result) []float64 {
	load := make([]float64, s.G.NumEdges())
	for ni := range res.Nets {
		nr := &res.Nets[ni]
		if nr.Chosen < 0 {
			continue
		}
		c := &nr.Candidates[nr.Chosen]
		for i, e := range c.Edges {
			load[e] += s.Nets[ni].Width + float64(c.Extra[i])
		}
	}
	return load
}
