package sharing

import (
	"context"
	"math/rand"
	"testing"

	"bonnroute/internal/geom"
	"bonnroute/internal/grid"
	"bonnroute/internal/steiner"
)

// congestedInstance builds a grid with a capacity bottleneck and nets
// forced to share it.
func congestedInstance(nNets int, capPerEdge float64) (*grid.Graph, []NetSpec) {
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 1000, 1000), 100, 100, dirs)
	for e := range g.Cap {
		g.Cap[e] = capPerEdge
	}
	var nets []NetSpec
	for i := 0; i < nNets; i++ {
		y := i % g.NY
		nets = append(nets, NetSpec{
			ID:        i,
			Terminals: [][]int{{g.Vertex(0, y, 0)}, {g.Vertex(g.NX-1, y, 0)}},
			Width:     1,
		})
	}
	return g, nets
}

func TestSolverBasic(t *testing.T) {
	g, nets := congestedInstance(5, 10)
	s := New(g, nets, Options{Phases: 8, Seed: 1})
	res := s.Run(context.Background())
	if res.Unrouted != 0 {
		t.Fatalf("unrouted = %d", res.Unrouted)
	}
	for ni := range res.Nets {
		tree := res.Nets[ni].Tree()
		if tree == nil {
			t.Fatalf("net %d has no tree", ni)
		}
		terms := nets[ni].Terminals
		edges := make([]int, len(tree))
		for i, e := range tree {
			edges[i] = int(e)
		}
		if !steiner.ValidateTree(g, edges, terms) {
			t.Fatalf("net %d: invalid tree", ni)
		}
	}
	// Uncongested straight shots: netlength equals tile distance.
	load := s.EdgeLoads(res)
	for e, l := range load {
		if l > g.Cap[e]+1e-9 {
			t.Fatalf("edge %d overloaded: %f > %f", e, l, g.Cap[e])
		}
	}
}

func TestCongestionForcesSpread(t *testing.T) {
	// 12 nets all want row y=0 essentially; cap 2 per edge forces most
	// onto other rows/layers.
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 1000, 300), 100, 100, dirs)
	// Horizontal capacity 2 per row — the contended resource. Vertical
	// and via edges are roomy, so the instance is feasible (2 nets per
	// row across 3 rows) but spreading is forced.
	for e := range g.Cap {
		if g.IsVia(e) || g.EdgeLayer(e) == 1 {
			g.Cap[e] = 8
		} else {
			g.Cap[e] = 2
		}
	}
	var nets []NetSpec
	for i := 0; i < 6; i++ {
		nets = append(nets, NetSpec{
			ID:        i,
			Terminals: [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(g.NX-1, 0, 0)}},
			Width:     1,
		})
	}
	s := New(g, nets, Options{Phases: 24, Seed: 2})
	res := s.Run(context.Background())
	load := s.EdgeLoads(res)
	for e, l := range load {
		if l > g.Cap[e]+1e-9 {
			t.Fatalf("edge %d overloaded after repair: %f > %f", e, l, g.Cap[e])
		}
	}
	if res.Unrouted != 0 {
		t.Fatalf("unrouted = %d", res.Unrouted)
	}
	// The fractional optimum must acknowledge congestion: λ should be
	// noticeably positive (6 nets × 1 wide over a cut of 3 rows × cap 2).
	if res.LambdaFrac < 0.5 {
		t.Fatalf("λ = %f implausibly low", res.LambdaFrac)
	}
}

func TestLambdaConverges(t *testing.T) {
	g, nets := congestedInstance(12, 3)
	s := New(g, nets, Options{Phases: 32, Seed: 3})
	res := s.Run(context.Background())
	h := res.LambdaHistory
	if len(h) != 32 {
		t.Fatalf("history length %d", len(h))
	}
	// Late phases must not be wildly worse than early ones (prices steer
	// the oracle away from overload).
	early := (h[0] + h[1] + h[2] + h[3]) / 4
	late := (h[28] + h[29] + h[30] + h[31]) / 4
	if late > 2*early+1 {
		t.Fatalf("λ diverges: early %f late %f", early, late)
	}
}

func TestOracleReuseCounts(t *testing.T) {
	g, nets := congestedInstance(8, 10)
	s := New(g, nets, Options{Phases: 16, Seed: 4, ReuseSlack: 0.5})
	res := s.Run(context.Background())
	if res.OracleReuses == 0 {
		t.Fatal("expected oracle reuses on an uncontended instance")
	}
	if res.OracleCalls+res.OracleReuses != int64(16*len(nets)) {
		t.Fatalf("calls %d + reuses %d != %d", res.OracleCalls, res.OracleReuses, 16*len(nets))
	}
	// Reuse disabled: all calls.
	s2 := New(g, nets, Options{Phases: 16, Seed: 4, ReuseSlack: -1})
	res2 := s2.Run(context.Background())
	if res2.OracleReuses != 0 {
		t.Fatal("reuse must be disabled")
	}
	if res2.OracleCalls != int64(16*len(nets)) {
		t.Fatalf("calls = %d", res2.OracleCalls)
	}
}

func TestParallelMatchesQuality(t *testing.T) {
	g, nets := congestedInstance(16, 3)
	serial := New(g, nets, Options{Phases: 16, Seed: 5, Workers: 1}).Run(context.Background())
	parallel := New(g, nets, Options{Phases: 16, Seed: 5, Workers: 4}).Run(context.Background())
	if parallel.Unrouted != 0 || serial.Unrouted != 0 {
		t.Fatal("unrouted nets")
	}
	// Phase-snapshot pricing makes the parallel solve deterministic:
	// identical λ, not merely the same regime.
	if parallel.LambdaFrac != serial.LambdaFrac {
		t.Fatalf("parallel λ %f vs serial %f", parallel.LambdaFrac, serial.LambdaFrac)
	}
}

// TestWorkerCountDeterminism pins the determinism contract of the
// phase-snapshot parallel solve: for a fixed seed, every worker count
// must produce identical chosen trees, λ history, and repair counts.
func TestWorkerCountDeterminism(t *testing.T) {
	run := func(workers int) *Result {
		g, nets := congestedInstance(24, 2)
		return New(g, nets, Options{Phases: 16, Seed: 9, Workers: workers}).Run(context.Background())
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.LambdaFrac != ref.LambdaFrac {
			t.Fatalf("Workers=%d: λ %v, want %v", workers, got.LambdaFrac, ref.LambdaFrac)
		}
		for p := range ref.LambdaHistory {
			if got.LambdaHistory[p] != ref.LambdaHistory[p] {
				t.Fatalf("Workers=%d: phase %d λ %v, want %v",
					workers, p, got.LambdaHistory[p], ref.LambdaHistory[p])
			}
		}
		if got.RoundingViolations != ref.RoundingViolations ||
			got.RechooseChanges != ref.RechooseChanges || got.Rerouted != ref.Rerouted {
			t.Fatalf("Workers=%d: repair counts differ", workers)
		}
		for ni := range ref.Nets {
			gt, rt := got.Nets[ni].Tree(), ref.Nets[ni].Tree()
			if len(gt) != len(rt) {
				t.Fatalf("Workers=%d: net %d tree size %d, want %d", workers, ni, len(gt), len(rt))
			}
			for i := range rt {
				if gt[i] != rt[i] {
					t.Fatalf("Workers=%d: net %d edge %d differs", workers, ni, i)
				}
			}
		}
	}
}

func TestExtraSpaceAssignment(t *testing.T) {
	// With a power resource and plenty of capacity, nets should take
	// extra space to cut power.
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 500, 300), 100, 100, dirs)
	for e := range g.Cap {
		g.Cap[e] = 50
	}
	nets := []NetSpec{{
		ID:         0,
		Terminals:  [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(4, 0, 0)}},
		Width:      1,
		AllowExtra: true,
	}}
	s := New(g, nets, Options{Phases: 8, Seed: 6, PowerCap: 100})
	res := s.Run(context.Background())
	tree := res.Nets[0]
	if tree.Chosen < 0 {
		t.Fatal("unrouted")
	}
	sawExtra := false
	for _, x := range tree.Candidates[tree.Chosen].Extra {
		if x > 0 {
			sawExtra = true
		}
	}
	if !sawExtra {
		t.Fatal("expected extra space assignment under a power resource")
	}
}

func TestNoExtraWhenDisallowed(t *testing.T) {
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 500, 300), 100, 100, dirs)
	for e := range g.Cap {
		g.Cap[e] = 50
	}
	nets := []NetSpec{{
		ID:        0,
		Terminals: [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(4, 0, 0)}},
		Width:     1,
	}}
	res := New(g, nets, Options{Phases: 4, Seed: 7, PowerCap: 100}).Run(context.Background())
	for _, c := range res.Nets[0].Candidates {
		for _, x := range c.Extra {
			if x != 0 {
				t.Fatal("extra space assigned to AllowExtra=false net")
			}
		}
	}
}

func TestInfeasibleNet(t *testing.T) {
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 500, 300), 100, 100, dirs)
	// All capacities zero: nothing routable.
	nets := []NetSpec{{
		ID:        0,
		Terminals: [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(4, 0, 0)}},
		Width:     1,
	}}
	res := New(g, nets, Options{Phases: 2, Seed: 8}).Run(context.Background())
	if res.Unrouted != 1 || res.Nets[0].Tree() != nil {
		t.Fatalf("expected unrouted net: %+v", res)
	}
}

func TestWideNets(t *testing.T) {
	g, _ := congestedInstance(0, 3)
	nets := []NetSpec{
		{ID: 0, Terminals: [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(9, 0, 0)}}, Width: 2},
		{ID: 1, Terminals: [][]int{{g.Vertex(0, 0, 0)}, {g.Vertex(9, 0, 0)}}, Width: 2},
	}
	s := New(g, nets, Options{Phases: 16, Seed: 9})
	res := s.Run(context.Background())
	load := s.EdgeLoads(res)
	for e, l := range load {
		if l > g.Cap[e]+1e-9 {
			t.Fatalf("edge %d overloaded: %f", e, l)
		}
	}
}

func TestRoundingRepairStatistics(t *testing.T) {
	// A contended instance that produces rounding violations repaired by
	// rechoosing (§2.4: "less than 10% of nets ... at most five new
	// routes").
	rng := rand.New(rand.NewSource(10))
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical, geom.Horizontal, geom.Vertical}
	g := grid.New(geom.R(0, 0, 2000, 2000), 100, 100, dirs)
	for e := range g.Cap {
		g.Cap[e] = 4
	}
	var nets []NetSpec
	for i := 0; i < 120; i++ {
		x0, y0 := rng.Intn(g.NX), rng.Intn(g.NY)
		x1, y1 := rng.Intn(g.NX), rng.Intn(g.NY)
		if x0 == x1 && y0 == y1 {
			continue
		}
		nets = append(nets, NetSpec{
			ID:        len(nets),
			Terminals: [][]int{{g.Vertex(x0, y0, 0)}, {g.Vertex(x1, y1, rng.Intn(2))}},
			Width:     1,
		})
	}
	s := New(g, nets, Options{Phases: 24, Seed: 11})
	res := s.Run(context.Background())
	if res.Unrouted != 0 {
		t.Fatalf("unrouted = %d", res.Unrouted)
	}
	load := s.EdgeLoads(res)
	over := 0
	for e, l := range load {
		if l > g.Cap[e]+1e-9 {
			over++
		}
	}
	if over > 1 {
		t.Fatalf("%d edges remain overloaded after repair", over)
	}
	changes := res.RechooseChanges + res.Rerouted
	if changes > len(nets)/5 {
		t.Fatalf("repair touched %d of %d nets (paper: <10%%)", changes, len(nets))
	}
}

func TestFindCandidateSurvivesSignatureCollision(t *testing.T) {
	// Construct a genuine FNV-1a collision. The hash mixes each edge as
	// a full 64-bit word, so for two 2-edge candidates with zero extras
	// the state after (edge0, extra0) is s = ((off^e0)*p)*p and the
	// final hash is ((s^e1)*p)*p — choosing e1' = e1 ^ s ^ s' makes two
	// candidates with different edges hash identically.
	const off uint64 = 1469598103934665603
	const p uint64 = 1099511628211
	state := func(e0 uint64) uint64 { return (off ^ e0) * p * p }
	ea0, ea1, eb0 := uint64(1), uint64(2), uint64(3)
	eb1 := ea1 ^ state(ea0) ^ state(eb0)

	aEdges := []int{int(ea0), int(ea1)}
	bEdges := []int{int(eb0), int(int64(eb1))}
	extras := []float32{0, 0}
	if signature(aEdges, extras) != signature(bEdges, extras) {
		t.Fatal("test premise broken: crafted candidates do not collide")
	}

	toC := func(edges []int) Candidate {
		es := make([]int32, len(edges))
		for i, e := range edges {
			es[i] = int32(e)
		}
		return Candidate{Edges: es, Extra: append([]float32(nil), extras...)}
	}
	// Store A as the solver would (int32 edges; A's edges fit) and query
	// with both the identical and the colliding candidate.
	cands := []Candidate{toC(aEdges)}
	if ci := findCandidate(cands, aEdges, extras); ci != 0 {
		t.Fatalf("identical candidate not found: got %d", ci)
	}
	if ci := findCandidate(cands, bEdges, extras); ci != -1 {
		t.Fatalf("distinct colliding candidate aliased to %d; collision fallback missing", ci)
	}
	if sameCandidate(&cands[0], bEdges, extras) {
		t.Fatal("sameCandidate must distinguish different edge slices")
	}
	if !sameCandidate(&cands[0], aEdges, extras) {
		t.Fatal("sameCandidate must accept identical candidates")
	}
}

func TestSameCandidateComparesExtras(t *testing.T) {
	c := Candidate{Edges: []int32{1, 2}, Extra: []float32{0, 1.5}}
	if sameCandidate(&c, []int{1, 2}, []float32{0, 2.5}) {
		t.Fatal("differing extras must not match")
	}
	if !sameCandidate(&c, []int{1, 2}, []float32{0, 1.5}) {
		t.Fatal("equal extras must match")
	}
	if sameCandidate(&c, []int{1}, []float32{0}) {
		t.Fatal("differing lengths must not match")
	}
}

// TestShardedDeterminism extends the worker-count determinism contract
// to congestion-region sharding: for a fixed seed, every combination of
// worker count and shard size must produce the identical solution the
// unsharded serial solve does — trees, λ history, and repair counts.
func TestShardedDeterminism(t *testing.T) {
	run := func(workers, shardTiles int) *Result {
		g, nets := congestedInstance(24, 2)
		return New(g, nets, Options{Phases: 16, Seed: 9, Workers: workers,
			ShardTiles: shardTiles}).Run(context.Background())
	}
	ref := run(1, 0)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, st := range []int{1, 2, 5} {
			got := run(workers, st)
			if got.LambdaFrac != ref.LambdaFrac {
				t.Fatalf("Workers=%d ShardTiles=%d: λ %v, want %v", workers, st, got.LambdaFrac, ref.LambdaFrac)
			}
			for p := range ref.LambdaHistory {
				if got.LambdaHistory[p] != ref.LambdaHistory[p] {
					t.Fatalf("Workers=%d ShardTiles=%d: phase %d λ differs", workers, st, p)
				}
			}
			if got.RoundingViolations != ref.RoundingViolations ||
				got.RechooseChanges != ref.RechooseChanges || got.Rerouted != ref.Rerouted {
				t.Fatalf("Workers=%d ShardTiles=%d: repair counts differ", workers, st)
			}
			for ni := range ref.Nets {
				gt, rt := got.Nets[ni].Tree(), ref.Nets[ni].Tree()
				if len(gt) != len(rt) {
					t.Fatalf("Workers=%d ShardTiles=%d: net %d tree size differs", workers, st, ni)
				}
				for i := range rt {
					if gt[i] != rt[i] {
						t.Fatalf("Workers=%d ShardTiles=%d: net %d edge %d differs", workers, st, ni, i)
					}
				}
			}
		}
	}
}

// TestBuildShardsCoversAllNets checks the shard partition: every net
// appears in exactly one shard and shards are non-empty.
func TestBuildShardsCoversAllNets(t *testing.T) {
	g, nets := congestedInstance(24, 2)
	for _, st := range []int{1, 2, 3, 7, 100} {
		shards := buildShards(g, nets, st)
		seen := make([]bool, len(nets))
		for si, sh := range shards {
			if len(sh) == 0 {
				t.Fatalf("ShardTiles=%d: shard %d empty", st, si)
			}
			for _, ni := range sh {
				if seen[ni] {
					t.Fatalf("ShardTiles=%d: net %d in two shards", st, ni)
				}
				seen[ni] = true
			}
		}
		for ni, ok := range seen {
			if !ok {
				t.Fatalf("ShardTiles=%d: net %d missing from shards", st, ni)
			}
		}
	}
}
