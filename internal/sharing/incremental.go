// Incremental (ECO) global routing: instead of re-running the full
// min-max resource sharing solve when a scenario delta dirties a few
// nets, RouteRestricted re-prices only the edges those nets can touch.
// Surviving nets keep their trees (their loads enter as a fixed base),
// and each dirty net gets an overflow-penalized shortest Steiner tree
// against that base — the same repair pricing §2.4 uses for the last
// few nets of the from-scratch flow, which is exactly the regime an ECO
// delta puts us in.

package sharing

import (
	"bonnroute/internal/grid"
	"bonnroute/internal/steiner"
)

// RestrictedResult is the outcome of an incremental global solve.
type RestrictedResult struct {
	// Trees[i] is the tree of nets[i] as grid-edge indices (nil when no
	// feasible tree exists).
	Trees [][]int32
	// RepricedEdges counts the distinct edges whose load this call
	// changed — the "how little did we touch" certificate.
	RepricedEdges int
	// OracleCalls counts Steiner oracle invocations (includes repair).
	OracleCalls int
	// Overflow is the total capacity overflow left on the combined
	// base+new loads.
	Overflow float64
}

// RouteRestricted routes only the nets listed in nets (indices into
// specs) against the fixed base loads of every other net. Nets are
// priced serially in ascending index order and each sees the loads of
// the ones before it, so the result is deterministic regardless of how
// the caller parallelizes everything else. base is not modified.
//
// A short repair loop then re-routes any of the new trees that sit on
// an overflowed edge, again with the §2.4 overflow penalty, stopping
// as soon as a pass fixes nothing.
func RouteRestricted(g *grid.Graph, specs []NetSpec, base []float64, nets []int) RestrictedResult {
	E := g.NumEdges()
	load := make([]float64, E)
	copy(load, base)
	// Plain Path Composition, deliberately: these are single dirty nets
	// under a frozen residual capacity, where the composition-order
	// degeneracy the exact oracle removes does not arise, and ECO
	// latency is the budget (DESIGN.md §13).
	oracle := steiner.NewOracle(g)
	res := RestrictedResult{Trees: make([][]int32, len(nets))}
	touched := make(map[int32]struct{})

	cost := func(width float64) func(e int) float64 {
		return func(e int) float64 {
			cap := g.Cap[e]
			if cap <= 0 || width > cap {
				return -1
			}
			c := float64(g.EdgeLength(e)) + 1
			if load[e]+width > cap {
				c += 1e6 * (load[e] + width - cap)
			}
			return c
		}
	}
	apply := func(tree []int32, width, sign float64) {
		for _, e := range tree {
			load[e] += sign * width
			touched[e] = struct{}{}
		}
	}
	route := func(i int) {
		n := &specs[nets[i]]
		res.OracleCalls++
		edges, ok := oracle.Tree(cost(n.Width), n.Terminals)
		if !ok {
			res.Trees[i] = nil
			return
		}
		tree := make([]int32, len(edges))
		for k, e := range edges {
			tree[k] = int32(e)
		}
		res.Trees[i] = tree
		apply(tree, n.Width, +1)
	}

	for i := range nets {
		route(i)
	}

	// Repair: re-route new trees that landed on overflowed edges. The
	// loop observes only its own trees — base loads are someone else's
	// committed wiring and stay fixed.
	overflowed := func() map[int32]bool {
		m := map[int32]bool{}
		for e := 0; e < E; e++ {
			if g.Cap[e] > 0 && load[e] > g.Cap[e]+1e-9 {
				m[int32(e)] = true
			}
		}
		return m
	}
	for pass := 0; pass < 3; pass++ {
		bad := overflowed()
		if len(bad) == 0 {
			break
		}
		fixed := false
		for i := range nets {
			tree := res.Trees[i]
			if tree == nil {
				continue
			}
			hit := false
			for _, e := range tree {
				if bad[e] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			n := &specs[nets[i]]
			apply(tree, n.Width, -1)
			res.OracleCalls++
			edges, ok := oracle.Tree(cost(n.Width), n.Terminals)
			if !ok {
				apply(tree, n.Width, +1)
				continue
			}
			nt := make([]int32, len(edges))
			for k, e := range edges {
				nt[k] = int32(e)
			}
			res.Trees[i] = nt
			apply(nt, n.Width, +1)
			fixed = true
		}
		if !fixed {
			break
		}
	}

	for e := range touched {
		if load[e] != base[e] {
			res.RepricedEdges++
		}
	}
	for e := 0; e < E; e++ {
		if g.Cap[e] > 0 && load[e] > g.Cap[e] {
			res.Overflow += load[e] - g.Cap[e]
		}
	}
	return res
}
