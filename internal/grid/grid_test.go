package grid

import (
	"testing"

	"bonnroute/internal/geom"
)

func testGraph() *Graph {
	dirs := []geom.Direction{geom.Horizontal, geom.Vertical, geom.Horizontal}
	return New(geom.R(0, 0, 400, 300), 100, 100, dirs)
}

func TestDimensions(t *testing.T) {
	g := testGraph()
	if g.NX != 4 || g.NY != 3 || g.NZ != 3 {
		t.Fatalf("dims: %d %d %d", g.NX, g.NY, g.NZ)
	}
	if g.NumVertices() != 36 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Edges: z0 horizontal: 3*3=9; z1 vertical: 4*2=8; z2 horizontal: 9;
	// vias: 4*3*2=24. Total 50.
	if g.NumEdges() != 50 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestVertexRoundTrip(t *testing.T) {
	g := testGraph()
	for z := 0; z < g.NZ; z++ {
		for ty := 0; ty < g.NY; ty++ {
			for tx := 0; tx < g.NX; tx++ {
				v := g.Vertex(tx, ty, z)
				gx, gy, gz := g.VertexCoords(v)
				if gx != tx || gy != ty || gz != z {
					t.Fatalf("roundtrip (%d,%d,%d) -> %d -> (%d,%d,%d)", tx, ty, z, v, gx, gy, gz)
				}
			}
		}
	}
}

func TestEdgeEndpoints(t *testing.T) {
	g := testGraph()
	seen := map[int]bool{}
	for z := 0; z < g.NZ; z++ {
		for ty := 0; ty < g.NY; ty++ {
			for tx := 0; tx < g.NX; tx++ {
				if e := g.WireEdge(tx, ty, z); e >= 0 {
					if seen[e] {
						t.Fatalf("duplicate edge id %d", e)
					}
					seen[e] = true
					a, b := g.EdgeEndpoints(e)
					if a != g.Vertex(tx, ty, z) {
						t.Fatalf("edge %d endpoint a wrong", e)
					}
					var want int
					if g.Dirs[z] == geom.Horizontal {
						want = g.Vertex(tx+1, ty, z)
					} else {
						want = g.Vertex(tx, ty+1, z)
					}
					if b != want {
						t.Fatalf("edge %d endpoint b wrong", e)
					}
					if g.IsVia(e) {
						t.Fatalf("wire edge %d flagged as via", e)
					}
					if g.EdgeLayer(e) != z {
						t.Fatalf("edge %d layer %d != %d", e, g.EdgeLayer(e), z)
					}
				}
				if z+1 < g.NZ {
					e := g.ViaEdge(tx, ty, z)
					if seen[e] {
						t.Fatalf("duplicate via id %d", e)
					}
					seen[e] = true
					a, b := g.EdgeEndpoints(e)
					if a != g.Vertex(tx, ty, z) || b != g.Vertex(tx, ty, z+1) {
						t.Fatalf("via %d endpoints wrong", e)
					}
					if !g.IsVia(e) || g.EdgeLength(e) != 0 {
						t.Fatalf("via %d misclassified", e)
					}
				}
			}
		}
	}
	if len(seen) != g.NumEdges() {
		t.Fatalf("enumerated %d edges, want %d", len(seen), g.NumEdges())
	}
}

func TestEdgeBoundaries(t *testing.T) {
	g := testGraph()
	if g.WireEdge(3, 0, 0) != -1 { // last column, horizontal layer
		t.Fatal("edge past right border")
	}
	if g.WireEdge(0, 2, 1) != -1 { // last row, vertical layer
		t.Fatal("edge past top border")
	}
	if g.ViaEdge(0, 0, 2) != -1 {
		t.Fatal("via above top layer")
	}
	if g.ViaEdge(4, 0, 0) != -1 || g.ViaEdge(0, 3, 0) != -1 {
		t.Fatal("via outside tile array")
	}
}

func TestNeighbors(t *testing.T) {
	g := testGraph()
	count := func(v int) int {
		n := 0
		g.Neighbors(v, func(e, w int) {
			if e < 0 || e >= g.NumEdges() {
				t.Fatalf("bad edge id %d", e)
			}
			a, b := g.EdgeEndpoints(e)
			if a != v && b != v {
				t.Fatalf("edge %d does not touch %d", e, v)
			}
			if w == v {
				t.Fatalf("self loop at %d", v)
			}
			n++
		})
		return n
	}
	// Corner of layer 0 (horizontal): right neighbor + via up = 2.
	if n := count(g.Vertex(0, 0, 0)); n != 2 {
		t.Fatalf("corner degree = %d, want 2", n)
	}
	// Middle of layer 1 (vertical): up+down + via down + via up = 4.
	if n := count(g.Vertex(1, 1, 1)); n != 4 {
		t.Fatalf("middle degree = %d, want 4", n)
	}
}

func TestTileMapping(t *testing.T) {
	g := testGraph()
	tx, ty := g.TileOf(geom.Pt(250, 199))
	if tx != 2 || ty != 1 {
		t.Fatalf("TileOf = (%d,%d)", tx, ty)
	}
	// Clipping.
	tx, ty = g.TileOf(geom.Pt(-5, 999))
	if tx != 0 || ty != 2 {
		t.Fatalf("clipped TileOf = (%d,%d)", tx, ty)
	}
	r := g.TileRect(3, 2)
	if r != geom.R(300, 200, 400, 300) {
		t.Fatalf("TileRect = %v", r)
	}
}

func TestEdgeLength(t *testing.T) {
	g := New(geom.R(0, 0, 400, 300), 100, 50,
		[]geom.Direction{geom.Horizontal, geom.Vertical})
	if g.EdgeLength(g.WireEdge(0, 0, 0)) != 100 {
		t.Fatal("horizontal edge length")
	}
	if g.EdgeLength(g.WireEdge(0, 0, 1)) != 50 {
		t.Fatal("vertical edge length")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(geom.Rect{}, 10, 10, []geom.Direction{geom.Horizontal})
}
