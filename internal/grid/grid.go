// Package grid models the global routing graph of BonnRoute (paper
// §2.1): the chip area is divided into an array of tiles, with one vertex
// per (tile, wiring layer) and edges between adjacent tiles along each
// layer's preferred direction plus via edges between layers. Capacities
// live on the edges; package capest computes them.
package grid

import (
	"fmt"

	"bonnroute/internal/geom"
)

// Graph is the three-dimensional global routing graph. Vertices and
// edges are identified by dense integer ids.
type Graph struct {
	// NX, NY are the tile array dimensions; NZ the number of layers.
	NX, NY, NZ int
	// Area is the chip area covered by the tiles.
	Area geom.Rect
	// TileW, TileH are the tile dimensions (the last row/column may be
	// clipped by Area).
	TileW, TileH int
	// Dirs[z] is the preferred direction of layer z; edges within layer z
	// connect tiles adjacent along Dirs[z] only.
	Dirs []geom.Direction

	// Cap[e] is the capacity u(e) of edge e.
	Cap []float64

	wireBase []int // first wire-edge id per layer
	viaBase  int   // first via-edge id
}

// New builds the graph over area with the given tile size and layer
// directions. Capacities are initialized to zero.
func New(area geom.Rect, tileW, tileH int, dirs []geom.Direction) *Graph {
	if area.Empty() || tileW <= 0 || tileH <= 0 || len(dirs) == 0 {
		panic("grid: invalid parameters")
	}
	g := &Graph{
		NX:   (area.W() + tileW - 1) / tileW,
		NY:   (area.H() + tileH - 1) / tileH,
		NZ:   len(dirs),
		Area: area, TileW: tileW, TileH: tileH,
		Dirs: dirs,
	}
	g.wireBase = make([]int, g.NZ+1)
	id := 0
	for z := 0; z < g.NZ; z++ {
		g.wireBase[z] = id
		if dirs[z] == geom.Horizontal {
			id += (g.NX - 1) * g.NY
		} else {
			id += g.NX * (g.NY - 1)
		}
	}
	g.wireBase[g.NZ] = id
	g.viaBase = id
	id += g.NX * g.NY * (g.NZ - 1)
	g.Cap = make([]float64, id)
	return g
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.NX * g.NY * g.NZ }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Cap) }

// Vertex returns the id of tile (tx, ty) on layer z.
func (g *Graph) Vertex(tx, ty, z int) int { return (z*g.NY+ty)*g.NX + tx }

// VertexCoords inverts Vertex.
func (g *Graph) VertexCoords(v int) (tx, ty, z int) {
	tx = v % g.NX
	ty = (v / g.NX) % g.NY
	z = v / (g.NX * g.NY)
	return
}

// TileOf returns the tile containing p (clipped to the array).
func (g *Graph) TileOf(p geom.Point) (tx, ty int) {
	tx = (p.X - g.Area.XMin) / g.TileW
	ty = (p.Y - g.Area.YMin) / g.TileH
	tx = min(max(tx, 0), g.NX-1)
	ty = min(max(ty, 0), g.NY-1)
	return
}

// TileRect returns the area of tile (tx, ty), clipped to the chip.
func (g *Graph) TileRect(tx, ty int) geom.Rect {
	r := geom.Rect{
		XMin: g.Area.XMin + tx*g.TileW,
		YMin: g.Area.YMin + ty*g.TileH,
		XMax: g.Area.XMin + (tx+1)*g.TileW,
		YMax: g.Area.YMin + (ty+1)*g.TileH,
	}
	return r.Intersection(g.Area)
}

// WireEdge returns the id of the wire edge on layer z from tile (tx, ty)
// to the next tile in preferred direction, or -1 if out of range.
func (g *Graph) WireEdge(tx, ty, z int) int {
	if z < 0 || z >= g.NZ || tx < 0 || ty < 0 {
		return -1
	}
	if g.Dirs[z] == geom.Horizontal {
		if tx >= g.NX-1 || ty >= g.NY {
			return -1
		}
		return g.wireBase[z] + ty*(g.NX-1) + tx
	}
	if tx >= g.NX || ty >= g.NY-1 {
		return -1
	}
	return g.wireBase[z] + ty*g.NX + tx
}

// ViaEdge returns the id of the via edge at tile (tx, ty) between layers
// z and z+1, or -1.
func (g *Graph) ViaEdge(tx, ty, z int) int {
	if z < 0 || z >= g.NZ-1 || tx < 0 || tx >= g.NX || ty < 0 || ty >= g.NY {
		return -1
	}
	return g.viaBase + (z*g.NY+ty)*g.NX + tx
}

// IsVia reports whether edge e is a via edge.
func (g *Graph) IsVia(e int) bool { return e >= g.viaBase }

// EdgeEndpoints returns the two vertex ids of edge e.
func (g *Graph) EdgeEndpoints(e int) (int, int) {
	if e >= g.viaBase {
		r := e - g.viaBase
		tx := r % g.NX
		ty := (r / g.NX) % g.NY
		z := r / (g.NX * g.NY)
		return g.Vertex(tx, ty, z), g.Vertex(tx, ty, z+1)
	}
	z := 0
	for g.wireBase[z+1] <= e {
		z++
	}
	r := e - g.wireBase[z]
	if g.Dirs[z] == geom.Horizontal {
		tx := r % (g.NX - 1)
		ty := r / (g.NX - 1)
		return g.Vertex(tx, ty, z), g.Vertex(tx+1, ty, z)
	}
	tx := r % g.NX
	ty := r / g.NX
	return g.Vertex(tx, ty, z), g.Vertex(tx, ty+1, z)
}

// EdgeLayer returns the wiring layer of a wire edge, or the lower layer
// of a via edge.
func (g *Graph) EdgeLayer(e int) int {
	if e >= g.viaBase {
		return (e - g.viaBase) / (g.NX * g.NY)
	}
	z := 0
	for g.wireBase[z+1] <= e {
		z++
	}
	return z
}

// EdgeLength returns the center-to-center length of a wire edge in DBU
// (0 for vias).
func (g *Graph) EdgeLength(e int) int {
	if g.IsVia(e) {
		return 0
	}
	if g.Dirs[g.EdgeLayer(e)] == geom.Horizontal {
		return g.TileW
	}
	return g.TileH
}

// Neighbors visits the edges incident to vertex v as (edge id, other
// vertex id) pairs.
func (g *Graph) Neighbors(v int, visit func(e, w int)) {
	tx, ty, z := g.VertexCoords(v)
	if g.Dirs[z] == geom.Horizontal {
		if e := g.WireEdge(tx, ty, z); e >= 0 {
			visit(e, g.Vertex(tx+1, ty, z))
		}
		if tx > 0 {
			if e := g.WireEdge(tx-1, ty, z); e >= 0 {
				visit(e, g.Vertex(tx-1, ty, z))
			}
		}
	} else {
		if e := g.WireEdge(tx, ty, z); e >= 0 {
			visit(e, g.Vertex(tx, ty+1, z))
		}
		if ty > 0 {
			if e := g.WireEdge(tx, ty-1, z); e >= 0 {
				visit(e, g.Vertex(tx, ty-1, z))
			}
		}
	}
	if z+1 < g.NZ {
		visit(g.ViaEdge(tx, ty, z), g.Vertex(tx, ty, z+1))
	}
	if z > 0 {
		visit(g.ViaEdge(tx, ty, z-1), g.Vertex(tx, ty, z-1))
	}
}

// String describes the graph size.
func (g *Graph) String() string {
	return fmt.Sprintf("grid %dx%dx%d (%d vertices, %d edges)",
		g.NX, g.NY, g.NZ, g.NumVertices(), g.NumEdges())
}
