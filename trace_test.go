package bonnroute_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"bonnroute"
)

func traceChip() *bonnroute.Chip {
	return bonnroute.GenerateChip(bonnroute.ChipParams{
		Seed: 42, Rows: 4, Cols: 10, NumNets: 24, PowerStripePeriod: 6,
	})
}

// A traced BonnRoute run must produce the documented span tree: one
// flow.br root whose children are the four stages (plus prep and audit),
// with per-phase spans under stage.global and per-round spans under
// stage.detail.
func TestTraceSpanTree(t *testing.T) {
	mem := bonnroute.NewMemorySink()
	res := bonnroute.Route(context.Background(), traceChip(),
		bonnroute.WithSeed(1),
		bonnroute.WithTracer(bonnroute.NewTracer(mem)))
	if res.Cancelled {
		t.Fatal("uncancelled run reported Cancelled")
	}

	roots := mem.Roots()
	if len(roots) != 1 {
		t.Fatalf("want exactly one root span, got %d", len(roots))
	}
	root := roots[0]
	if root.Name != "flow.br" || !root.Ended {
		t.Fatalf("root = %q (ended=%v), want ended flow.br", root.Name, root.Ended)
	}
	for _, stage := range []string{
		"stage.prep", "stage.capest", "stage.global",
		"stage.detail", "stage.cleanup", "stage.audit",
	} {
		n := root.Find(stage)
		if n == nil {
			t.Fatalf("stage span %q missing from trace", stage)
		}
		if !n.Ended {
			t.Fatalf("stage span %q never ended", stage)
		}
		if n.Parent != root.ID {
			t.Fatalf("stage span %q is not a direct child of the flow root", stage)
		}
	}

	global := root.Find("stage.global")
	if global.Find("global.phase") == nil {
		t.Fatal("no global.phase span under stage.global")
	}
	if global.Attr("lambda") == nil {
		t.Fatal("stage.global span missing lambda attr")
	}
	detail := root.Find("stage.detail")
	rounds := 0
	for _, c := range detail.Children {
		if c.Name == "detail.round" {
			rounds++
			if c.Attr("kind") == nil || c.Attr("failed") == nil {
				t.Fatalf("detail.round span missing kind/failed attrs: %+v", c.Attrs)
			}
		}
	}
	if rounds == 0 {
		t.Fatal("no detail.round span under stage.detail")
	}
	if rounds != res.Detail.Rounds {
		t.Fatalf("trace shows %d rounds, Result says %d", rounds, res.Detail.Rounds)
	}
}

// cancelOnSpan returns a sink that cancels the run the first time a span
// with the given name starts — a deterministic way to cancel mid-stage.
func cancelOnSpan(name string, cancel context.CancelFunc) bonnroute.SinkFunc {
	return func(r *bonnroute.Record) {
		if r.Kind == "span_start" && r.Name == name {
			cancel()
		}
	}
}

func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Cancelling while a global-routing phase is running must still return a
// complete (partial) Result with Cancelled set and leak no goroutines.
func TestCancelDuringGlobal(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := bonnroute.Route(ctx, traceChip(),
		bonnroute.WithSeed(1),
		bonnroute.WithWorkers(4),
		bonnroute.WithTracer(bonnroute.NewTracer(cancelOnSpan("global.phase", cancel))))
	if res == nil {
		t.Fatal("cancelled run returned nil Result")
	}
	if !res.Cancelled {
		t.Fatal("cancelled run did not set Cancelled")
	}
	if res.Detail == nil || res.Metrics.Nets == 0 {
		t.Fatal("cancelled run must still carry partial detail stats and metrics")
	}
	checkNoGoroutineLeak(t, before)
}

// Cancelling during a detailed-routing round behaves the same way.
func TestCancelDuringDetail(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := bonnroute.Route(ctx, traceChip(),
		bonnroute.WithSeed(1),
		bonnroute.WithWorkers(4),
		bonnroute.WithTracer(bonnroute.NewTracer(cancelOnSpan("detail.round", cancel))))
	if !res.Cancelled || !res.Detail.Cancelled {
		t.Fatalf("Cancelled flags not set: flow=%v detail=%v", res.Cancelled, res.Detail.Cancelled)
	}
	// Global routing completed before the cancel hit.
	if res.Global == nil {
		t.Fatal("global stats missing from partially-cancelled run")
	}
	checkNoGoroutineLeak(t, before)
}
