// Command routefuzz sweeps the full BonnRoute flow over a matrix of
// seeded random scenarios and runs every independent verifier on each
// result: shape conservation, brute-force diff-net spacing,
// union-find connectivity, global capacity conservation, the
// fast-grid-vs-rule-checker differential, and a same-seed
// different-worker-count determinism double-run.
//
// On the first failing scenario it shrinks the reproducer — halving
// the net count while the failure persists, then the placement grid —
// and prints the minimal scenario as a ready-to-paste Go test before
// exiting non-zero.
//
// With -eco each scenario additionally derives a seeded random ECO
// delta (nets added/removed, a pin moved, a blockage dropped in) and
// runs the differential equivalence check: the delta applied
// incrementally (bonnroute.Reroute) and from scratch must both clear
// every verifier pass with identical opens/overflow counts, and the
// incremental route must be bit-identical across worker counts. The
// shrinker then minimizes ECO scenarios too: after the chip, it drops
// delta mutation classes one by one while the failure persists.
//
// Before the scenario sweep, a seeded Steiner-oracle differential slice
// (-steiner-diff, 0 disables) proves the exact goal-oriented oracle
// optimal against an independent reference solver and never costlier
// than Path Composition on random small instances.
//
// Usage:
//
//	routefuzz [-seeds N] [-base-seed N] [-rows N] [-cols N] [-nets N]
//	          [-layers N] [-workers N] [-eco] [-skip-fastgrid]
//	          [-steiner-diff N] [-v]
//
// Every scenario derives its geometry deterministically from its seed,
// so a failure report's seed is a complete reproducer.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"bonnroute/internal/chip"
	"bonnroute/internal/core"
	"bonnroute/internal/incremental"
	"bonnroute/internal/steiner"
	"bonnroute/internal/verify"
)

type scenario struct {
	params   chip.GenParams
	workersA int
	workersB int
	// eco enables the differential ECO equivalence check; ecoSeed
	// derives the delta and ecoCfg sizes it (negative fields drop a
	// mutation class — the shrinker's knob).
	eco     bool
	ecoSeed int64
	ecoCfg  incremental.GenConfig
	// scale enables the sharded-vs-unsharded equivalence slice: the
	// same chip routed unsharded at one worker and sharded (shardTiles
	// congestion-region tiles) at workersB must be bit-identical, and
	// the unsharded result must clear the sampled verifier matrix.
	scale      bool
	shardTiles int
}

func main() {
	var (
		seeds    = flag.Int("seeds", 10, "number of scenarios (one seed each)")
		baseSeed = flag.Int64("base-seed", 1000, "seed of the first scenario")
		rows     = flag.Int("rows", 5, "max placement rows")
		cols     = flag.Int("cols", 16, "max placement columns")
		nets     = flag.Int("nets", 48, "max number of nets")
		layers   = flag.Int("layers", 6, "max wiring layers")
		workers  = flag.Int("workers", 4, "worker count of the determinism double run")
		eco      = flag.Bool("eco", false, "fuzz ECO deltas: differential incremental-vs-scratch equivalence")
		scale    = flag.Bool("scale", false, "fuzz the scale tier: sharded-vs-unsharded global-routing bit-identity plus the sampled verifier matrix")
		skipFG   = flag.Bool("skip-fastgrid", false, "skip the fast-grid differential pass")
		stDiff   = flag.Int("steiner-diff", 64, "seeded Steiner-oracle differential instances run before the scenarios (0 disables)")
		verbose  = flag.Bool("v", false, "print per-scenario pass counters")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The Steiner oracle differential slice runs first: cheap seeded
	// instances proving the exact oracle optimal (vs. an independent
	// reference) and never costlier than Path Composition. The seed is
	// derived from -base-seed, so a failure report is self-reproducing
	// via RunDifferential(seed, n).
	if *stDiff > 0 {
		start := time.Now()
		if err := steiner.RunDifferential(*baseSeed, *stDiff); err != nil {
			fmt.Printf("steiner differential seed=%d n=%d: FAIL\n  %v\n", *baseSeed, *stDiff, err)
			os.Exit(1)
		}
		fmt.Printf("steiner differential seed=%d: %d instances clean (%.1fs)\n",
			*baseSeed, *stDiff, time.Since(start).Seconds())
	}

	failures := 0
	for i := 0; i < *seeds; i++ {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "routefuzz: interrupted")
			os.Exit(1)
		}
		sc := makeScenario(*baseSeed+int64(i), i, *rows, *cols, *nets, *layers, *workers)
		if *eco {
			sc.eco = true
			sc.ecoSeed = sc.params.Seed*3 + 1
		}
		if *scale {
			sc.scale = true
			sc.shardTiles = 1 + int(sc.params.Seed)%8
		}
		start := time.Now()
		viol, rep := runScenario(ctx, sc, *skipFG)
		if len(viol) == 0 {
			status := "ok"
			if *verbose && rep != nil {
				status = fmt.Sprintf(
					"ok  shapes=%d pairs=%d nets=%d edges=%d samples=%d",
					rep.ShapesChecked, rep.PairsChecked, rep.NetsChecked,
					rep.EdgesChecked, rep.SamplesChecked)
			}
			fmt.Printf("scenario %2d seed=%d %dx%d nets=%d layers=%d: %s (%.1fs)\n",
				i, sc.params.Seed, sc.params.Rows, sc.params.Cols,
				sc.params.NumNets, sc.params.NumLayers, status,
				time.Since(start).Seconds())
			continue
		}
		failures++
		fmt.Printf("scenario %2d seed=%d %dx%d nets=%d layers=%d: FAIL\n",
			i, sc.params.Seed, sc.params.Rows, sc.params.Cols,
			sc.params.NumNets, sc.params.NumLayers)
		for _, v := range viol {
			fmt.Printf("  %s\n", v)
		}
		min := shrink(ctx, sc, *skipFG)
		printReproducer(min)
		break
	}
	if failures > 0 {
		os.Exit(1)
	}
	fmt.Printf("routefuzz: %d scenarios clean\n", *seeds)
}

// makeScenario derives one scenario from its seed: sizes cycle through
// the allowed ranges so the sweep covers small/large grids, differing
// layer counts (exercising the pitch-doubling upper deck), and both
// worker pairings.
func makeScenario(seed int64, i, maxRows, maxCols, maxNets, maxLayers, workers int) scenario {
	rows := 3 + int(seed)%max(1, maxRows-2)
	cols := 8 + int(seed*7)%max(1, maxCols-7)
	nets := 16 + int(seed*13)%max(1, maxNets-15)
	layers := 4
	if maxLayers > 4 && i%2 == 1 {
		layers = maxLayers
	}
	stripes := 0
	if i%3 == 0 {
		stripes = 6
	}
	return scenario{
		params: chip.GenParams{
			Seed: seed, Rows: rows, Cols: cols, NumNets: nets,
			NumLayers: layers, LocalityRadius: 3 + i%5,
			PowerStripePeriod: stripes,
		},
		workersA: 1,
		workersB: workers,
	}
}

// runScenario routes the scenario once, applies every in-process
// verifier pass, then performs the determinism double-run. In ECO mode
// it instead runs the differential equivalence check (which verifies
// both the incremental and the from-scratch result).
func runScenario(ctx context.Context, sc scenario, skipFG bool) ([]verify.Violation, *verify.Report) {
	if sc.eco {
		viol := verify.ECOEquivalence(ctx, sc.params,
			core.Options{Seed: sc.params.Seed, Workers: sc.workersA},
			verify.ECOOptions{
				DeltaSeed:    sc.ecoSeed,
				Gen:          sc.ecoCfg,
				WorkersB:     sc.workersB,
				SkipFastGrid: skipFG,
			})
		return viol, nil
	}
	if sc.scale {
		return runScaleScenario(ctx, sc, skipFG)
	}
	c := chip.Generate(sc.params)
	res := core.RouteBonnRoute(ctx, c, core.Options{Seed: sc.params.Seed, Workers: sc.workersA})
	rep := verify.Run(res, verify.Options{SkipFastGrid: skipFG})
	viol := rep.Violations
	viol = append(viol, verify.Determinism(ctx, sc.params,
		core.Options{Seed: sc.params.Seed}, sc.workersA, sc.workersB)...)
	return viol, rep
}

// runScaleScenario is the scale-tier slice: the identical seed routed
// unsharded serial and sharded parallel must produce bit-identical
// results (the congestion-region sharding is pure work decomposition),
// and the unsharded result must clear the verifier with the sampled
// spacing mode engaged — the same seeded sampling the huge benchmark
// records in its artifact.
func runScaleScenario(ctx context.Context, sc scenario, skipFG bool) ([]verify.Violation, *verify.Report) {
	a := core.RouteBonnRoute(ctx, chip.Generate(sc.params),
		core.Options{Seed: sc.params.Seed, Workers: sc.workersA})
	b := core.RouteBonnRoute(ctx, chip.Generate(sc.params),
		core.Options{Seed: sc.params.Seed, Workers: sc.workersB, ShardTiles: sc.shardTiles})
	viol := verify.CompareResults(a, b)
	for i := range viol {
		viol[i].Detail = fmt.Sprintf("unsharded/w%d vs ShardTiles=%d/w%d: %s",
			sc.workersA, sc.shardTiles, sc.workersB, viol[i].Detail)
	}
	rep := verify.Run(a, verify.Options{
		SkipFastGrid:      skipFG,
		SpacingSampleCap:  64,
		SpacingSampleSeed: sc.params.Seed,
	})
	return append(viol, rep.Violations...), rep
}

// shrink reduces a failing scenario while it still fails: first halve
// the net count, then the placement grid. The failure predicate is the
// full verifier battery, so the minimal scenario fails for the same
// class of reason.
func shrink(ctx context.Context, sc scenario, skipFG bool) scenario {
	fails := func(s scenario) bool {
		if ctx.Err() != nil {
			return false
		}
		v, _ := runScenario(ctx, s, skipFG)
		return len(v) > 0
	}
	fmt.Println("shrinking...")
	for sc.params.NumNets > 2 {
		cand := sc
		cand.params.NumNets = sc.params.NumNets / 2
		if !fails(cand) {
			break
		}
		sc = cand
		fmt.Printf("  nets -> %d still fails\n", sc.params.NumNets)
	}
	for sc.params.Rows > 2 || sc.params.Cols > 4 {
		cand := sc
		cand.params.Rows = max(2, sc.params.Rows/2)
		cand.params.Cols = max(4, sc.params.Cols/2)
		if cand.params == sc.params || !fails(cand) {
			break
		}
		sc = cand
		fmt.Printf("  grid -> %dx%d still fails\n", sc.params.Rows, sc.params.Cols)
	}
	// ECO scenarios shrink further: drop whole delta mutation classes
	// (negative GenConfig fields generate none of that class) while the
	// equivalence failure persists.
	if sc.eco {
		drop := []struct {
			name  string
			apply func(*incremental.GenConfig)
		}{
			{"blockages", func(g *incremental.GenConfig) { g.AddBlockages = -1 }},
			{"pin moves", func(g *incremental.GenConfig) { g.MovePins = -1 }},
			{"added nets", func(g *incremental.GenConfig) { g.AddNets = -1 }},
			{"removed nets", func(g *incremental.GenConfig) { g.RemoveNets = -1 }},
		}
		for _, d := range drop {
			cand := sc
			d.apply(&cand.ecoCfg)
			if fails(cand) {
				sc = cand
				fmt.Printf("  delta without %s still fails\n", d.name)
			}
		}
	}
	return sc
}

// printReproducer emits the minimal failing scenario as a Go test the
// developer can paste into internal/verify and run directly.
func printReproducer(sc scenario) {
	if sc.eco {
		fmt.Println("\nminimal ECO reproducer (paste into internal/verify):")
		fmt.Printf(`
func TestFuzzEcoRepro(t *testing.T) {
	viol := ECOEquivalence(context.Background(), chip.GenParams{
		Seed: %d, Rows: %d, Cols: %d, NumNets: %d,
		NumLayers: %d, LocalityRadius: %d, PowerStripePeriod: %d,
	}, core.Options{Seed: %d, Workers: %d}, ECOOptions{
		DeltaSeed: %d,
		Gen: incremental.GenConfig{AddNets: %d, RemoveNets: %d, MovePins: %d, AddBlockages: %d},
		WorkersB:  %d,
	})
	for _, v := range viol {
		t.Errorf("%%s", v)
	}
}
`, sc.params.Seed, sc.params.Rows, sc.params.Cols, sc.params.NumNets,
			sc.params.NumLayers, sc.params.LocalityRadius, sc.params.PowerStripePeriod,
			sc.params.Seed, sc.workersA,
			sc.ecoSeed,
			sc.ecoCfg.AddNets, sc.ecoCfg.RemoveNets, sc.ecoCfg.MovePins, sc.ecoCfg.AddBlockages,
			sc.workersB)
		return
	}
	if sc.scale {
		fmt.Println("\nminimal scale reproducer (paste into internal/verify):")
		fmt.Printf(`
func TestFuzzScaleRepro(t *testing.T) {
	params := chip.GenParams{
		Seed: %d, Rows: %d, Cols: %d, NumNets: %d,
		NumLayers: %d, LocalityRadius: %d, PowerStripePeriod: %d,
	}
	a := core.RouteBonnRoute(context.Background(), chip.Generate(params),
		core.Options{Seed: %d, Workers: %d})
	b := core.RouteBonnRoute(context.Background(), chip.Generate(params),
		core.Options{Seed: %d, Workers: %d, ShardTiles: %d})
	for _, v := range CompareResults(a, b) {
		t.Errorf("%%s", v)
	}
	for _, v := range Run(a, Options{SpacingSampleCap: 64, SpacingSampleSeed: %d}).Violations {
		t.Errorf("%%s", v)
	}
}
`, sc.params.Seed, sc.params.Rows, sc.params.Cols, sc.params.NumNets,
			sc.params.NumLayers, sc.params.LocalityRadius, sc.params.PowerStripePeriod,
			sc.params.Seed, sc.workersA,
			sc.params.Seed, sc.workersB, sc.shardTiles,
			sc.params.Seed)
		return
	}
	fmt.Println("\nminimal reproducer (paste into internal/verify):")
	fmt.Printf(`
func TestFuzzRepro(t *testing.T) {
	params := chip.GenParams{
		Seed: %d, Rows: %d, Cols: %d, NumNets: %d,
		NumLayers: %d, LocalityRadius: %d, PowerStripePeriod: %d,
	}
	res := core.RouteBonnRoute(context.Background(), chip.Generate(params),
		core.Options{Seed: %d, Workers: %d})
	for _, v := range Run(res, Options{}).Violations {
		t.Errorf("%%s", v)
	}
	for _, v := range Determinism(context.Background(), params,
		core.Options{Seed: %d}, %d, %d) {
		t.Errorf("%%s", v)
	}
}
`, sc.params.Seed, sc.params.Rows, sc.params.Cols, sc.params.NumNets,
		sc.params.NumLayers, sc.params.LocalityRadius, sc.params.PowerStripePeriod,
		sc.params.Seed, sc.workersA,
		sc.params.Seed, sc.workersA, sc.workersB)
}
